file(REMOVE_RECURSE
  "CMakeFiles/example_subdivnet.dir/subdivnet.cpp.o"
  "CMakeFiles/example_subdivnet.dir/subdivnet.cpp.o.d"
  "example_subdivnet"
  "example_subdivnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_subdivnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
