# Empty dependencies file for example_subdivnet.
# This may be replaced when dependencies are built.
