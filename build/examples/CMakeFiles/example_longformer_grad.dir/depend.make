# Empty dependencies file for example_longformer_grad.
# This may be replaced when dependencies are built.
