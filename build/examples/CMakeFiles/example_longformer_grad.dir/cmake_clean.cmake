file(REMOVE_RECURSE
  "CMakeFiles/example_longformer_grad.dir/longformer_grad.cpp.o"
  "CMakeFiles/example_longformer_grad.dir/longformer_grad.cpp.o.d"
  "example_longformer_grad"
  "example_longformer_grad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_longformer_grad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
