file(REMOVE_RECURSE
  "CMakeFiles/example_manual_schedule.dir/manual_schedule.cpp.o"
  "CMakeFiles/example_manual_schedule.dir/manual_schedule.cpp.o.d"
  "example_manual_schedule"
  "example_manual_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_manual_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
