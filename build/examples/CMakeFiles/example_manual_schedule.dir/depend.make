# Empty dependencies file for example_manual_schedule.
# This may be replaced when dependencies are built.
