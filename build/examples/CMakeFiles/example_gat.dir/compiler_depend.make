# Empty compiler generated dependencies file for example_gat.
# This may be replaced when dependencies are built.
