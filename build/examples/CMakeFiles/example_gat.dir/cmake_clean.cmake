file(REMOVE_RECURSE
  "CMakeFiles/example_gat.dir/gat.cpp.o"
  "CMakeFiles/example_gat.dir/gat.cpp.o.d"
  "example_gat"
  "example_gat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
