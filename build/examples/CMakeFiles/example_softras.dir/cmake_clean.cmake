file(REMOVE_RECURSE
  "CMakeFiles/example_softras.dir/softras.cpp.o"
  "CMakeFiles/example_softras.dir/softras.cpp.o.d"
  "example_softras"
  "example_softras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_softras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
