# Empty dependencies file for example_softras.
# This may be replaced when dependencies are built.
