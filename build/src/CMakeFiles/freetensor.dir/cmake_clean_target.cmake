file(REMOVE_RECURSE
  "libfreetensor.a"
)
