# Empty dependencies file for freetensor.
# This may be replaced when dependencies are built.
