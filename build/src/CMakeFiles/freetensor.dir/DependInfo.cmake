
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/access.cpp" "src/CMakeFiles/freetensor.dir/analysis/access.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/analysis/access.cpp.o.d"
  "/root/repo/src/analysis/affine.cpp" "src/CMakeFiles/freetensor.dir/analysis/affine.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/analysis/affine.cpp.o.d"
  "/root/repo/src/analysis/bounds.cpp" "src/CMakeFiles/freetensor.dir/analysis/bounds.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/analysis/bounds.cpp.o.d"
  "/root/repo/src/analysis/deps.cpp" "src/CMakeFiles/freetensor.dir/analysis/deps.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/analysis/deps.cpp.o.d"
  "/root/repo/src/autodiff/grad.cpp" "src/CMakeFiles/freetensor.dir/autodiff/grad.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/autodiff/grad.cpp.o.d"
  "/root/repo/src/autoschedule/autoschedule.cpp" "src/CMakeFiles/freetensor.dir/autoschedule/autoschedule.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/autoschedule/autoschedule.cpp.o.d"
  "/root/repo/src/codegen/codegen.cpp" "src/CMakeFiles/freetensor.dir/codegen/codegen.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/codegen/codegen.cpp.o.d"
  "/root/repo/src/codegen/jit.cpp" "src/CMakeFiles/freetensor.dir/codegen/jit.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/codegen/jit.cpp.o.d"
  "/root/repo/src/frontend/builder.cpp" "src/CMakeFiles/freetensor.dir/frontend/builder.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/frontend/builder.cpp.o.d"
  "/root/repo/src/frontend/libop.cpp" "src/CMakeFiles/freetensor.dir/frontend/libop.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/frontend/libop.cpp.o.d"
  "/root/repo/src/interp/interp.cpp" "src/CMakeFiles/freetensor.dir/interp/interp.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/interp/interp.cpp.o.d"
  "/root/repo/src/ir/compare.cpp" "src/CMakeFiles/freetensor.dir/ir/compare.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/ir/compare.cpp.o.d"
  "/root/repo/src/ir/data_type.cpp" "src/CMakeFiles/freetensor.dir/ir/data_type.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/ir/data_type.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/CMakeFiles/freetensor.dir/ir/expr.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/ir/expr.cpp.o.d"
  "/root/repo/src/ir/func.cpp" "src/CMakeFiles/freetensor.dir/ir/func.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/ir/func.cpp.o.d"
  "/root/repo/src/ir/mutator.cpp" "src/CMakeFiles/freetensor.dir/ir/mutator.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/ir/mutator.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/freetensor.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/stmt.cpp" "src/CMakeFiles/freetensor.dir/ir/stmt.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/ir/stmt.cpp.o.d"
  "/root/repo/src/ir/visitor.cpp" "src/CMakeFiles/freetensor.dir/ir/visitor.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/ir/visitor.cpp.o.d"
  "/root/repo/src/math/affine_set.cpp" "src/CMakeFiles/freetensor.dir/math/affine_set.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/math/affine_set.cpp.o.d"
  "/root/repo/src/math/linear.cpp" "src/CMakeFiles/freetensor.dir/math/linear.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/math/linear.cpp.o.d"
  "/root/repo/src/opframework/eager.cpp" "src/CMakeFiles/freetensor.dir/opframework/eager.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/opframework/eager.cpp.o.d"
  "/root/repo/src/pass/const_fold.cpp" "src/CMakeFiles/freetensor.dir/pass/const_fold.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/pass/const_fold.cpp.o.d"
  "/root/repo/src/pass/flatten.cpp" "src/CMakeFiles/freetensor.dir/pass/flatten.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/pass/flatten.cpp.o.d"
  "/root/repo/src/pass/make_reduction.cpp" "src/CMakeFiles/freetensor.dir/pass/make_reduction.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/pass/make_reduction.cpp.o.d"
  "/root/repo/src/pass/remove_writes.cpp" "src/CMakeFiles/freetensor.dir/pass/remove_writes.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/pass/remove_writes.cpp.o.d"
  "/root/repo/src/pass/replace.cpp" "src/CMakeFiles/freetensor.dir/pass/replace.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/pass/replace.cpp.o.d"
  "/root/repo/src/pass/scalar_prop.cpp" "src/CMakeFiles/freetensor.dir/pass/scalar_prop.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/pass/scalar_prop.cpp.o.d"
  "/root/repo/src/pass/shrink_var.cpp" "src/CMakeFiles/freetensor.dir/pass/shrink_var.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/pass/shrink_var.cpp.o.d"
  "/root/repo/src/pass/simplify.cpp" "src/CMakeFiles/freetensor.dir/pass/simplify.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/pass/simplify.cpp.o.d"
  "/root/repo/src/pass/sink_var.cpp" "src/CMakeFiles/freetensor.dir/pass/sink_var.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/pass/sink_var.cpp.o.d"
  "/root/repo/src/schedule/schedule.cpp" "src/CMakeFiles/freetensor.dir/schedule/schedule.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/schedule/schedule.cpp.o.d"
  "/root/repo/src/support/error.cpp" "src/CMakeFiles/freetensor.dir/support/error.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/support/error.cpp.o.d"
  "/root/repo/src/support/string_utils.cpp" "src/CMakeFiles/freetensor.dir/support/string_utils.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/support/string_utils.cpp.o.d"
  "/root/repo/src/workloads/workloads.cpp" "src/CMakeFiles/freetensor.dir/workloads/workloads.cpp.o" "gcc" "src/CMakeFiles/freetensor.dir/workloads/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
