file(REMOVE_RECURSE
  "CMakeFiles/ftc.dir/ftc.cpp.o"
  "CMakeFiles/ftc.dir/ftc.cpp.o.d"
  "ftc"
  "ftc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
