# Empty compiler generated dependencies file for table2_compile_time.
# This may be replaced when dependencies are built.
