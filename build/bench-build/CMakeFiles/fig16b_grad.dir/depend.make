# Empty dependencies file for fig16b_grad.
# This may be replaced when dependencies are built.
