file(REMOVE_RECURSE
  "../bench/fig16b_grad"
  "../bench/fig16b_grad.pdb"
  "CMakeFiles/fig16b_grad.dir/fig16b_grad.cpp.o"
  "CMakeFiles/fig16b_grad.dir/fig16b_grad.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16b_grad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
