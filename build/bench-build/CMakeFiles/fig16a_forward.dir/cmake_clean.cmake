file(REMOVE_RECURSE
  "../bench/fig16a_forward"
  "../bench/fig16a_forward.pdb"
  "CMakeFiles/fig16a_forward.dir/fig16a_forward.cpp.o"
  "CMakeFiles/fig16a_forward.dir/fig16a_forward.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16a_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
