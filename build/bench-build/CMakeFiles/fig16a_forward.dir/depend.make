# Empty dependencies file for fig16a_forward.
# This may be replaced when dependencies are built.
