# Empty dependencies file for fig17_metrics.
# This may be replaced when dependencies are built.
