file(REMOVE_RECURSE
  "../bench/fig17_metrics"
  "../bench/fig17_metrics.pdb"
  "CMakeFiles/fig17_metrics.dir/fig17_metrics.cpp.o"
  "CMakeFiles/fig17_metrics.dir/fig17_metrics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
