file(REMOVE_RECURSE
  "../bench/fig18_ad_ablation"
  "../bench/fig18_ad_ablation.pdb"
  "CMakeFiles/fig18_ad_ablation.dir/fig18_ad_ablation.cpp.o"
  "CMakeFiles/fig18_ad_ablation.dir/fig18_ad_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_ad_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
