# Empty dependencies file for pass2_test.
# This may be replaced when dependencies are built.
