file(REMOVE_RECURSE
  "CMakeFiles/pass2_test.dir/pass2_test.cpp.o"
  "CMakeFiles/pass2_test.dir/pass2_test.cpp.o.d"
  "pass2_test"
  "pass2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pass2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
