# Empty dependencies file for schedule_errors_test.
# This may be replaced when dependencies are built.
