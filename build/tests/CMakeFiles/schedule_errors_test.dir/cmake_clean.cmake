file(REMOVE_RECURSE
  "CMakeFiles/schedule_errors_test.dir/schedule_errors_test.cpp.o"
  "CMakeFiles/schedule_errors_test.dir/schedule_errors_test.cpp.o.d"
  "schedule_errors_test"
  "schedule_errors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_errors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
