file(REMOVE_RECURSE
  "CMakeFiles/autoschedule_test.dir/autoschedule_test.cpp.o"
  "CMakeFiles/autoschedule_test.dir/autoschedule_test.cpp.o.d"
  "autoschedule_test"
  "autoschedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoschedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
