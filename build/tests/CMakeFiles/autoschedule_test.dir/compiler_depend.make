# Empty compiler generated dependencies file for autoschedule_test.
# This may be replaced when dependencies are built.
