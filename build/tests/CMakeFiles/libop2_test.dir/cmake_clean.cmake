file(REMOVE_RECURSE
  "CMakeFiles/libop2_test.dir/libop2_test.cpp.o"
  "CMakeFiles/libop2_test.dir/libop2_test.cpp.o.d"
  "libop2_test"
  "libop2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libop2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
