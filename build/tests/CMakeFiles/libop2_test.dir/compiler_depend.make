# Empty compiler generated dependencies file for libop2_test.
# This may be replaced when dependencies are built.
