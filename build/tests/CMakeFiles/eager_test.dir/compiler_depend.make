# Empty compiler generated dependencies file for eager_test.
# This may be replaced when dependencies are built.
