# Empty dependencies file for grad_fuzz_test.
# This may be replaced when dependencies are built.
