file(REMOVE_RECURSE
  "CMakeFiles/grad_fuzz_test.dir/grad_fuzz_test.cpp.o"
  "CMakeFiles/grad_fuzz_test.dir/grad_fuzz_test.cpp.o.d"
  "grad_fuzz_test"
  "grad_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grad_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
