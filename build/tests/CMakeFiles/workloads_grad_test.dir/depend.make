# Empty dependencies file for workloads_grad_test.
# This may be replaced when dependencies are built.
