file(REMOVE_RECURSE
  "CMakeFiles/workloads_grad_test.dir/workloads_grad_test.cpp.o"
  "CMakeFiles/workloads_grad_test.dir/workloads_grad_test.cpp.o.d"
  "workloads_grad_test"
  "workloads_grad_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_grad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
