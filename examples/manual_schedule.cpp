//===- examples/manual_schedule.cpp - Hand-tuning with schedules -----------===//
//
// The paper exposes every transformation to users who want manual control
// (§4.3: "users are free to override them and manually apply other
// transformations"). This example hand-tunes a stencil the way a
// performance engineer would, printing the IR after each step, and shows
// the dependence analysis rejecting an illegal request along the way.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "codegen/jit.h"
#include "frontend/libop.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "schedule/schedule.h"

using namespace ft;

int main() {
  const int64_t N = 64, M = 64;
  // out[i, j] = (in[i, j] + in[i, j+1] + in[i+1, j]) / 3 over an (N-1) x
  // (M-1) interior, followed by a row-sum reduction.
  FunctionBuilder B("stencil");
  View In = B.input("in", {makeIntConst(N), makeIntConst(M)});
  View Out = B.output("out", {makeIntConst(N - 1), makeIntConst(M - 1)});
  View RowSum = B.output("rowsum", {makeIntConst(N - 1)});
  B.loop(
      "i", 0, N - 1,
      [&](Expr I) {
        B.loop(
            "j", 0, M - 1,
            [&](Expr J) {
              Out[I][J].assign((In[I][J].load() + In[I][J + 1].load() +
                                In[I + 1][J].load()) /
                               makeFloatConst(3.0));
            },
            "cols");
      },
      "rows");
  B.loop(
      "i", 0, N - 1,
      [&](Expr I) {
        RowSum[I].assign(0.0);
        B.loop("j", 0, M - 1,
               [&](Expr J) { RowSum[I] += Out[I][J].load(); });
      },
      "sumrows");
  Func F = B.build();

  Schedule S(F);
  int64_t Rows = *S.findByLabel("rows");
  int64_t Cols = *S.findByLabel("cols");
  int64_t SumRows = *S.findByLabel("sumrows");

  std::printf("step 1: reorder(cols, rows) — legal, no carried "
              "dependence in either direction\n");
  Status R1 = S.reorder({Cols, Rows});
  std::printf("  -> %s\n", R1.ok() ? "accepted" : R1.message().c_str());
  std::printf("step 2: reorder back\n");
  Status R2 = S.reorder({Rows, Cols});
  std::printf("  -> %s\n", R2.ok() ? "accepted" : R2.message().c_str());

  std::printf("step 3: fuse the stencil rows with the reduction rows\n");
  auto Fused = S.fuse(Rows, SumRows);
  std::printf("  -> %s\n",
              Fused.ok() ? "accepted (producer/consumer at equal rows)"
                         : Fused.message().c_str());

  std::printf("step 4: try to fuse a loop with itself — rejected\n");
  if (Fused.ok()) {
    auto Bad = S.fuse(*Fused, *Fused);
    std::printf("  -> %s\n", Bad.ok() ? "?!" : Bad.message().c_str());
  }

  std::printf("step 5: split the fused row loop by 8 and unroll-mark the "
              "inner\n");
  if (Fused.ok()) {
    auto Ids = S.split(*Fused, 8);
    if (Ids.ok()) {
      (void)S.unroll(Ids->Second, /*Full=*/false);
      std::printf("  -> outer %lld, inner %lld\n",
                  static_cast<long long>(Ids->First),
                  static_cast<long long>(Ids->Second));
    }
  }
  S.cleanup();

  std::printf("\n=== final IR ===\n%s\n", toString(S.ast()).c_str());

  // Prove the hand-tuned program still computes the same thing.
  Buffer BIn(DataType::Float32, {N, M});
  for (int64_t I = 0; I < BIn.numel(); ++I)
    BIn.setF(I, 0.01 * double(I % 101));
  Buffer O1(DataType::Float32, {N - 1, M - 1});
  Buffer O2(DataType::Float32, {N - 1, M - 1});
  Buffer S1(DataType::Float32, {N - 1}), S2(DataType::Float32, {N - 1});
  interpret(F, {{"in", &BIn}, {"out", &O1}, {"rowsum", &S1}});
  interpret(S.func(), {{"in", &BIn}, {"out", &O2}, {"rowsum", &S2}});
  double MaxErr = 0;
  for (int64_t I = 0; I < O1.numel(); ++I)
    MaxErr = std::max(MaxErr, std::abs(O1.getF(I) - O2.getF(I)));
  for (int64_t I = 0; I < S1.numel(); ++I)
    MaxErr = std::max(MaxErr, std::abs(S1.getF(I) - S2.getF(I)));
  std::printf("max |difference| after 5 scheduling steps: %.2e\n", MaxErr);

  auto K = Kernel::compile(S.func());
  if (K.ok())
    std::printf("hand-tuned kernel compiled natively in %.2f s\n",
                K->compileSeconds());
  return MaxErr < 1e-5 ? 0 : 1;
}
