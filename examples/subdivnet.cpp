//===- examples/subdivnet.cpp - Mesh convolution (paper §2) -----------------===//
//
// The motivating example of the paper: SubdivNet's circular-difference
// mesh convolution, written with fine-grained control flow, auto-scheduled
// and JIT-compiled, and compared against the operator-based baseline.
//
//===----------------------------------------------------------------------===//

#include <chrono>
#include <cstdio>

#include "autoschedule/autoschedule.h"
#include "codegen/jit.h"
#include "workloads/workloads.h"

using namespace ft;
using namespace ft::workloads;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

int main() {
  SubdivNetConfig C{2048, 32};
  SubdivNetData D = makeSubdivNetData(C);
  std::printf("SubdivNet mesh convolution: %lld faces x %lld features\n",
              static_cast<long long>(C.NFaces),
              static_cast<long long>(C.Feats));

  // FreeTensor: one fused kernel for the whole layer.
  Func F = buildSubdivNet(C);
  AutoScheduleReport R;
  Func Opt = autoScheduleFunc(F, {}, &R);
  std::printf("auto-schedule: fused=%d vectorized=%d parallel=%d "
              "localized=%d unrolled=%d\n",
              R.Fused, R.Vectorized, R.Parallelized, R.Localized,
              R.Unrolled);
  auto K = Kernel::compile(Opt);
  if (!K.ok()) {
    std::printf("compile failed: %s\n", K.message().c_str());
    return 1;
  }

  Buffer Y(DataType::Float32, {C.NFaces, C.Feats});
  std::map<std::string, Buffer *> Args{
      {"e", &D.E}, {"adj", &D.Adj}, {"y", &Y}};
  K->run(Args); // Warm up.
  double T0 = now();
  const int Reps = 50;
  for (int I = 0; I < Reps; ++I)
    K->run(Args);
  double FtMs = (now() - T0) / Reps * 1e3;

  // Operator-based baseline: gather + roll + abs + reductions.
  eager::resetStats();
  eager::clearTape();
  eager::Tensor E = eager::Tensor::fromVec(
      {C.NFaces, C.Feats},
      std::vector<float>(D.E.as<float>(), D.E.as<float>() + D.E.numel()));
  eager::IndexTensor Adj = eager::IndexTensor::fromVec(
      {C.NFaces, 3},
      std::vector<int64_t>(D.Adj.as<int64_t>(),
                           D.Adj.as<int64_t>() + D.Adj.numel()));
  eager::Tensor YE = subdivnetEager(E, Adj, C); // Warm up + count kernels.
  int64_t Kernels = eager::stats().KernelLaunches;
  double T1 = now();
  for (int I = 0; I < Reps; ++I) {
    eager::clearTape();
    YE = subdivnetEager(E, Adj, C);
  }
  double EagerMs = (now() - T1) / Reps * 1e3;

  // Verify agreement.
  double MaxErr = 0;
  for (int64_t I = 0; I < Y.numel(); ++I)
    MaxErr = std::max(MaxErr,
                      std::abs(double(Y.as<float>()[I]) - YE.data()[I]));

  std::printf("\nFreeTensor (1 kernel):        %8.3f ms\n", FtMs);
  std::printf("operator baseline (%2lld kernels): %8.3f ms\n",
              static_cast<long long>(Kernels), EagerMs);
  std::printf("speedup: %.2fx   max |diff| = %.2e\n", EagerMs / FtMs,
              MaxErr);
  return MaxErr < 1e-3 ? 0 : 1;
}
