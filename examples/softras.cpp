//===- examples/softras.cpp - Differentiable rendering ---------------------===//
//
// Runs the SoftRas soft rasterizer (paper §6.1) through the compiler and
// prints the rendered silhouette as ASCII art, then differentiates the
// image w.r.t. the triangle vertices — the use case differentiable
// renderers exist for.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <cstdio>

#include "autodiff/grad.h"
#include "autoschedule/autoschedule.h"
#include "codegen/jit.h"
#include "workloads/workloads.h"

using namespace ft;
using namespace ft::workloads;

int main() {
  SoftRasConfig C{24, 28, 56, 0.02f};
  SoftRasData D = makeSoftRasData(C);

  Func F = buildSoftRas(C);
  auto K = Kernel::compile(autoScheduleFunc(F));
  if (!K.ok()) {
    std::printf("compile failed: %s\n", K.message().c_str());
    return 1;
  }
  Buffer Img(DataType::Float32, {C.numPixels()});
  std::map<std::string, Buffer *> Args{
      {"verts", &D.Verts}, {"px", &D.Px}, {"py", &D.Py}, {"img", &Img}};
  Status S = K->run(Args);
  if (!S.ok()) {
    std::printf("run failed: %s\n", S.message().c_str());
    return 1;
  }

  std::printf("soft rasterization of %lld triangles (%lldx%lld):\n\n",
              static_cast<long long>(C.NFaces),
              static_cast<long long>(C.ImgW),
              static_cast<long long>(C.ImgH));
  const char *Shades = " .:-=+*#%@";
  for (int64_t Y = 0; Y < C.ImgH; ++Y) {
    for (int64_t X = 0; X < C.ImgW; ++X) {
      float V = Img.as<float>()[Y * C.ImgW + X];
      int Level = std::min(9, std::max(0, int(V * 9.99f)));
      std::putchar(Shades[Level]);
    }
    std::putchar('\n');
  }

  // Differentiate the silhouette w.r.t. the vertices.
  auto G = grad(F, {"verts"});
  if (!G.ok()) {
    std::printf("grad failed: %s\n", G.message().c_str());
    return 1;
  }
  auto FwdK = Kernel::compile(autoScheduleFunc(G->Forward));
  auto BwdK = Kernel::compile(autoScheduleFunc(G->Backward));
  std::map<std::string, Buffer> Store;
  Store.emplace("verts", std::move(D.Verts));
  Store.emplace("px", std::move(D.Px));
  Store.emplace("py", std::move(D.Py));
  Store.emplace("img", std::move(Img));
  for (const std::string &T : G->Tapes) {
    auto Def = findVarDef(G->Forward.Body, T);
    std::vector<int64_t> Shape;
    for (const Expr &E : Def->Info.Shape)
      Shape.push_back(cast<IntConstNode>(E)->Val);
    Store.emplace(T, Buffer(DataType::Float32, Shape));
  }
  Buffer Seed(DataType::Float32, {C.numPixels()});
  for (int64_t I = 0; I < Seed.numel(); ++I)
    Seed.setF(I, 1.0);
  Store.emplace(G->SeedNames.at("img"), std::move(Seed));
  Store.emplace(G->GradNames.at("verts"),
                Buffer(DataType::Float32, {C.NFaces, 3, 2}));
  std::map<std::string, Buffer *> FwdArgs, BwdArgs;
  for (const std::string &P : G->Forward.Params)
    FwdArgs[P] = &Store.at(P);
  for (const std::string &P : G->Backward.Params)
    BwdArgs[P] = &Store.at(P);
  FwdK->run(FwdArgs);
  BwdK->run(BwdArgs);

  const Buffer &DV = Store.at(G->GradNames.at("verts"));
  double Norm = 0;
  for (int64_t I = 0; I < DV.numel(); ++I)
    Norm += double(DV.getF(I)) * DV.getF(I);
  std::printf("\n|d image / d verts| = %.4f  (%lld vertex coordinates)\n",
              std::sqrt(Norm), static_cast<long long>(DV.numel()));
  return 0;
}
