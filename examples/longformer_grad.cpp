//===- examples/longformer_grad.cpp - Attention + AD (paper §5) ------------===//
//
// Differentiates the Longformer sliding-window attention with the
// fine-grained AD pass, compiles forward and backward to native code, and
// reports the selective-materialization decisions and gradient norms.
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <cstdio>

#include "autodiff/grad.h"
#include "autoschedule/autoschedule.h"
#include "codegen/jit.h"
#include "workloads/workloads.h"

using namespace ft;
using namespace ft::workloads;

int main() {
  LongformerConfig C{128, 32, 8};
  std::printf("Longformer attention: seq=%lld feat=%lld window=+-%lld\n",
              static_cast<long long>(C.SeqLen),
              static_cast<long long>(C.Feats),
              static_cast<long long>(C.W));

  Func F = buildLongformer(C);
  auto G = grad(F, {"Q", "K", "V"}, TapeStrategy::Selective);
  if (!G.ok()) {
    std::printf("grad failed: %s\n", G.message().c_str());
    return 1;
  }
  std::printf("selective materialization kept %zu tape(s):",
              G->Tapes.size());
  for (const std::string &T : G->Tapes)
    std::printf(" %s", T.c_str());
  std::printf("\n(everything else is recomputed in the backward pass)\n");

  auto FwdK = Kernel::compile(autoScheduleFunc(G->Forward));
  auto BwdK = Kernel::compile(autoScheduleFunc(G->Backward));
  if (!FwdK.ok() || !BwdK.ok()) {
    std::printf("compile failed\n");
    return 1;
  }

  // Bind buffers.
  LongformerData D = makeLongformerData(C);
  std::map<std::string, Buffer> Store;
  Store.emplace("Q", std::move(D.Q));
  Store.emplace("K", std::move(D.K));
  Store.emplace("V", std::move(D.V));
  Store.emplace("y", Buffer(DataType::Float32, {C.SeqLen, C.Feats}));
  for (const std::string &T : G->Tapes) {
    auto Def = findVarDef(G->Forward.Body, T);
    std::vector<int64_t> Shape;
    for (const Expr &E : Def->Info.Shape)
      Shape.push_back(cast<IntConstNode>(E)->Val);
    Store.emplace(T, Buffer(DataType::Float32, Shape));
  }
  for (const auto &[Y, Seed] : G->SeedNames) {
    Buffer B(DataType::Float32, Store.at(Y).shape());
    for (int64_t I = 0; I < B.numel(); ++I)
      B.setF(I, 1.0);
    Store.emplace(Seed, std::move(B));
  }
  for (const auto &[X, GradName] : G->GradNames)
    Store.emplace(GradName, Buffer(DataType::Float32, Store.at(X).shape()));

  std::map<std::string, Buffer *> FwdArgs, BwdArgs;
  for (const std::string &P : G->Forward.Params)
    FwdArgs[P] = &Store.at(P);
  for (const std::string &P : G->Backward.Params)
    BwdArgs[P] = &Store.at(P);

  Status S1 = FwdK->run(FwdArgs);
  Status S2 = BwdK->run(BwdArgs);
  if (!S1.ok() || !S2.ok()) {
    std::printf("execution failed\n");
    return 1;
  }

  auto Norm = [&](const std::string &N) {
    const Buffer &B = Store.at(N);
    double S = 0;
    for (int64_t I = 0; I < B.numel(); ++I)
      S += double(B.getF(I)) * B.getF(I);
    return std::sqrt(S);
  };
  std::printf("\n|y|        = %10.4f\n", Norm("y"));
  for (const std::string &X : {"Q", "K", "V"})
    std::printf("|d%s|       = %10.4f\n", X.c_str(),
                Norm(G->GradNames.at(X)));
  std::printf("\nforward + backward compiled and ran natively; gradients "
              "are non-trivial.\n");
  return 0;
}
