//===- examples/gat.cpp - Graph attention layer -----------------------------===//
//
// The GAT workload (paper §6.1): irregular, indirectly-indexed graph
// aggregation that operator frameworks struggle to fuse. Compares the
// single compiled FreeTensor kernel against the 10-operator eager chain.
//
//===----------------------------------------------------------------------===//

#include <chrono>
#include <cmath>
#include <cstdio>

#include "autoschedule/autoschedule.h"
#include "codegen/jit.h"
#include "workloads/workloads.h"

using namespace ft;
using namespace ft::workloads;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

int main() {
  GATConfig C{4096, 32, 8};
  GATData D = makeGATData(C);
  std::printf("GAT layer: %lld nodes, degree %lld, %lld features\n",
              static_cast<long long>(C.NNodes),
              static_cast<long long>(C.Degree),
              static_cast<long long>(C.Feats));

  Func F = buildGAT(C);
  auto K = Kernel::compile(autoScheduleFunc(F));
  if (!K.ok()) {
    std::printf("compile failed: %s\n", K.message().c_str());
    return 1;
  }
  Buffer Y(DataType::Float32, {C.NNodes, C.Feats});
  std::map<std::string, Buffer *> Args{{"h", &D.H},
                                       {"adj", &D.Adj},
                                       {"a1", &D.A1},
                                       {"a2", &D.A2},
                                       {"y", &Y}};
  K->run(Args);
  const int Reps = 30;
  double T0 = now();
  for (int I = 0; I < Reps; ++I)
    K->run(Args);
  double FtMs = (now() - T0) / Reps * 1e3;

  // Eager chain.
  eager::resetStats();
  eager::clearTape();
  eager::Tensor H = eager::Tensor::fromVec(
      {C.NNodes, C.Feats},
      std::vector<float>(D.H.as<float>(), D.H.as<float>() + D.H.numel()));
  eager::Tensor A1 = eager::Tensor::fromVec(
      {C.Feats},
      std::vector<float>(D.A1.as<float>(), D.A1.as<float>() + C.Feats));
  eager::Tensor A2 = eager::Tensor::fromVec(
      {C.Feats},
      std::vector<float>(D.A2.as<float>(), D.A2.as<float>() + C.Feats));
  std::vector<int64_t> AdjV(D.Adj.as<int64_t>(),
                            D.Adj.as<int64_t>() + D.Adj.numel());
  std::vector<int64_t> SelfV(C.NNodes * C.Degree);
  for (int64_t I = 0; I < C.NNodes; ++I)
    for (int64_t M = 0; M < C.Degree; ++M)
      SelfV[I * C.Degree + M] = I;
  eager::IndexTensor AdjFlat =
      eager::IndexTensor::fromVec({C.NNodes * C.Degree}, AdjV);
  eager::IndexTensor SelfFlat =
      eager::IndexTensor::fromVec({C.NNodes * C.Degree}, SelfV);
  eager::Tensor YE = gatEager(H, AdjFlat, SelfFlat, A1, A2, C);
  int64_t Kernels = eager::stats().KernelLaunches;
  double T1 = now();
  for (int I = 0; I < Reps; ++I) {
    eager::clearTape();
    YE = gatEager(H, AdjFlat, SelfFlat, A1, A2, C);
  }
  double EagerMs = (now() - T1) / Reps * 1e3;

  double MaxErr = 0;
  for (int64_t I = 0; I < Y.numel(); ++I)
    MaxErr = std::max(MaxErr,
                      std::abs(double(Y.as<float>()[I]) - YE.data()[I]));

  std::printf("FreeTensor (1 kernel):           %8.3f ms\n", FtMs);
  std::printf("operator chain (%2lld kernels):     %8.3f ms\n",
              static_cast<long long>(Kernels), EagerMs);
  std::printf("speedup %.2fx, max |diff| = %.2e\n", EagerMs / FtMs, MaxErr);
  return MaxErr < 1e-3 ? 0 : 1;
}
