//===- examples/quickstart.cpp - FreeTensor reproduction in 5 minutes ------===//
//
// Build a free-form tensor program, inspect its IR, schedule it with
// dependence-checked transformations, JIT-compile it to native code, and
// run it.
//
//   $ ./example_quickstart
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "codegen/jit.h"
#include "frontend/libop.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "schedule/schedule.h"

using namespace ft;

int main() {
  // 1. Stage a program: a sliding-window average with a boundary guard —
  //    the kind of fine-grained control flow operator libraries can't
  //    express without padding and copying (paper §1).
  const int64_t N = 16, W = 2;
  FunctionBuilder B("smooth");
  View X = B.input("x", {makeIntConst(N)});
  View Y = B.output("y", {makeIntConst(N)});
  B.loop(
      "i", 0, N,
      [&](Expr I) {
        View Acc = B.local("acc", {});
        Acc.assign(0.0);
        B.loop("k", -W, W + 1, [&](Expr K) {
          B.ifThen(I + K >= 0 && I + K < N,
                   [&] { Acc += X[I + K].load(); });
        });
        Y[I].assign(Acc.load() / makeFloatConst(2 * W + 1));
      },
      "rows");
  Func F = B.build();

  std::printf("=== staged IR ===\n%s\n", toString(F.Body).c_str());

  // 2. Schedule it. Transformations verify legality via dependence
  //    analysis; an illegal request returns an error instead of
  //    miscompiling.
  Schedule S(F);
  int64_t Rows = *S.findByLabel("rows");
  Status Par = S.parallelize(Rows);
  std::printf("parallelize(rows): %s\n",
              Par.ok() ? "ok" : Par.message().c_str());
  auto Tail = S.separateTail(Rows); // Peels the boundary iterations.
  std::printf("separate_tail(rows): %s\n",
              Tail.ok() ? "ok" : Tail.message().c_str());
  std::printf("\n=== scheduled IR ===\n%s\n", toString(S.ast()).c_str());

  // 3. Compile to native code through the host compiler and run.
  auto K = Kernel::compile(S.func());
  if (!K.ok()) {
    std::printf("compile failed: %s\n", K.message().c_str());
    return 1;
  }
  std::printf("JIT compile took %.2f s\n", K->compileSeconds());

  Buffer BX(DataType::Float32, {N}), BY(DataType::Float32, {N});
  for (int64_t I = 0; I < N; ++I)
    BX.setF(I, static_cast<double>(I));
  Status Run = K->run({{"x", &BX}, {"y", &BY}});
  if (!Run.ok()) {
    std::printf("run failed: %s\n", Run.message().c_str());
    return 1;
  }

  // 4. Cross-check against the reference interpreter.
  Buffer BYRef(DataType::Float32, {N});
  interpret(F, {{"x", &BX}, {"y", &BYRef}});
  std::printf("y (native vs interpreter):\n");
  for (int64_t I = 0; I < N; ++I)
    std::printf("  y[%2lld] = %7.3f  %7.3f\n", static_cast<long long>(I),
                BY.as<float>()[I], BYRef.as<float>()[I]);
  return 0;
}
