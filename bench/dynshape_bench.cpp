//===- bench/dynshape_bench.cpp - Shape-generic serving benchmark ---------===//
//
// The two economics of shape-generic kernels (DESIGN.md §16), against the
// acceptance criteria of the dynamic-shape serving plane:
//
//  (a) compile amortization: 100 distinct request shapes through the
//      serving executor perform exactly ONE generic background compile
//      (the fingerprint never sees a literal extent), where a per-shape
//      deployment would have needed one compile per distinct shape — the
//      bench counts the distinct specialized fingerprints to show the
//      avoided work rather than paying ~100 host-compiler runs;
//
//  (b) specialization payoff: for each of the four paper workloads, the
//      two executor tiers are timed on the same hot shape exactly as they
//      serve a raw submission — the generic tier compiles the submitted
//      program as-is at -O2 (no rescheduling on the serving path), the
//      specialization tier constant-folds the bucket's extents,
//      re-autoschedules with literal trip counts, and compiles at -O3.
//      The specialized kernel must win by >= 1.2x on at least two
//      workloads (reported as "second_best_speedup"); outputs are
//      cross-checked first.
//
// Results land in BENCH_dynshape.json and are guarded by bench_guard.py.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <unistd.h>
#include <vector>

#include "autoschedule/autoschedule.h"
#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "frontend/builder.h"
#include "pass/simplify.h"
#include "pass/specialize.h"
#include "serve/serve.h"
#include "serve/telemetry.h"
#include "support/error.h"
#include "workloads/workloads.h"

using namespace ft;
using namespace ft::serve;
using namespace ft::workloads;

namespace {

double seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// y[i] = x[i] * 2 + 1 over the symbolic extent `n` — the ragged request
/// stream for phase (a). The program is deliberately tiny: the phase
/// measures cache behavior, not kernel runtime.
Func makeRagged() {
  FunctionBuilder B("ragged");
  Expr N = B.scalarInput("n");
  View X = B.input("x", {N});
  View Y = B.output("y", {N});
  B.loop("i", makeIntConst(0), N, [&](Expr I) {
    Y[I].assign(X[I].load() * makeFloatConst(2.0) + makeFloatConst(1.0));
  });
  return B.build();
}

/// Median-of-reps wall time of one Kernel::run, seconds. Two warm-up runs,
/// then enough reps to accumulate ~80 ms of measurement.
double timeKernel(const Kernel &K, const std::map<std::string, Buffer *> &A) {
  for (int I = 0; I < 2; ++I)
    ftAssert(K.run(A).ok(), "warmup run failed");
  std::vector<double> Times;
  double Budget = 0;
  while ((Budget < 0.08 || Times.size() < 5) && Times.size() < 200) {
    double T0 = seconds();
    ftAssert(K.run(A).ok(), "timed run failed");
    double Dt = seconds() - T0;
    Times.push_back(Dt);
    Budget += Dt;
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

struct WorkloadRow {
  std::string Name;
  double GenericMs = 0, SpecMs = 0, Speedup = 0, MaxDiff = 0;
};

/// One workload's argument store at its hot benchmark shape: bound extent
/// scalars, deterministic inputs, zeroed output. Mirrors `ftc --dyn`.
struct DynCase {
  std::string Name;
  Func F;                                ///< shape-generic program
  std::map<std::string, Buffer> Store;   ///< bound arguments
  std::map<std::string, int64_t> Extents; ///< hot-shape extent bindings
  std::string OutName;
};

std::vector<DynCase> makeCases() {
  std::vector<DynCase> Out;
  {
    DynCase C;
    C.Name = "subdivnet";
    SubdivNetConfig W;
    W.NFaces = 2048;
    C.F = buildSubdivNetDyn(W);
    SubdivNetData D = makeSubdivNetData(W);
    C.Store.emplace("n", Buffer::scalarI64(W.NFaces));
    C.Store.emplace("e", std::move(D.E));
    C.Store.emplace("adj", std::move(D.Adj));
    C.Store.emplace("y", Buffer(DataType::Float32, {W.NFaces, W.Feats}));
    C.Extents = {{"n", W.NFaces}};
    C.OutName = "y";
    Out.push_back(std::move(C));
  }
  {
    DynCase C;
    C.Name = "longformer";
    LongformerConfig W;
    W.SeqLen = 512;
    C.F = buildLongformerDyn(W);
    LongformerData D = makeLongformerData(W);
    C.Store.emplace("n", Buffer::scalarI64(W.SeqLen));
    C.Store.emplace("Q", std::move(D.Q));
    C.Store.emplace("K", std::move(D.K));
    C.Store.emplace("V", std::move(D.V));
    C.Store.emplace("y", Buffer(DataType::Float32, {W.SeqLen, W.Feats}));
    C.Extents = {{"n", W.SeqLen}};
    C.OutName = "y";
    Out.push_back(std::move(C));
  }
  {
    DynCase C;
    C.Name = "softras";
    SoftRasConfig W;
    W.NFaces = 64;
    W.ImgH = 32;
    W.ImgW = 32;
    C.F = buildSoftRasDyn(W);
    SoftRasData D = makeSoftRasData(W);
    C.Store.emplace("nf", Buffer::scalarI64(W.NFaces));
    C.Store.emplace("np", Buffer::scalarI64(W.numPixels()));
    C.Store.emplace("verts", std::move(D.Verts));
    C.Store.emplace("px", std::move(D.Px));
    C.Store.emplace("py", std::move(D.Py));
    C.Store.emplace("img", Buffer(DataType::Float32, {W.numPixels()}));
    C.Extents = {{"nf", W.NFaces}, {"np", W.numPixels()}};
    C.OutName = "img";
    Out.push_back(std::move(C));
  }
  {
    DynCase C;
    C.Name = "gat";
    GATConfig W;
    W.NNodes = 2048;
    C.F = buildGATDyn(W);
    GATData D = makeGATData(W);
    C.Store.emplace("n", Buffer::scalarI64(W.NNodes));
    C.Store.emplace("h", std::move(D.H));
    C.Store.emplace("adj", std::move(D.Adj));
    C.Store.emplace("a1", std::move(D.A1));
    C.Store.emplace("a2", std::move(D.A2));
    C.Store.emplace("y", Buffer(DataType::Float32, {W.NNodes, W.Feats}));
    C.Extents = {{"n", W.NNodes}};
    C.OutName = "y";
    Out.push_back(std::move(C));
  }
  return Out;
}

std::map<std::string, Buffer *> argPtrs(std::map<std::string, Buffer> &S) {
  std::map<std::string, Buffer *> A;
  for (auto &[N, B] : S)
    A[N] = &B;
  return A;
}

} // namespace

int main() {
  char Tmpl[] = "/tmp/ftdynbench.XXXXXX";
  ftAssert(::mkdtemp(Tmpl) != nullptr, "mkdtemp failed");
  ::setenv("FT_CACHE_DIR", Tmpl, 1);
  ::setenv("FT_CACHE", "1", 1);
  telemetry::setEnabled(false);
  telemetry::reset();
  kernel_cache::memReset();

  bool Ok = true;

  //===------------------------------------------------------------------===//
  // (a) 100 distinct shapes, one compile.
  //===------------------------------------------------------------------===//
  const int kShapes = 100;
  Func Ragged = makeRagged();
  uint64_t GenericCompiles = 0, SpecCompiles = 0, RunErrors = 0;
  {
    Config C;
    C.BatchWindowUs = 0;
    Executor Ex(C);
    for (int K = 0; K < kShapes; ++K) {
      int64_t N = 16 + 7 * K; // all distinct
      Buffer NB = Buffer::scalarI64(N);
      Buffer X(DataType::Float32, {N}), Y(DataType::Float32, {N});
      for (int64_t I = 0; I < N; ++I)
        X.setF(I, std::sin(0.13 * double(I + K)));
      auto R = Ex.submit(Ragged, {{"n", &NB}, {"x", &X}, {"y", &Y}});
      ftAssert(R.ok(), R.message());
      Response Resp = R->get();
      ftAssert(Resp.S.ok(), Resp.S.message());
    }
    Ex.drain();
    ServeStats St = Ex.stats();
    GenericCompiles = St.CompilesStarted;
    SpecCompiles = St.SpecCompilesStarted;
    RunErrors = St.RunErrors;
    Ex.shutdown();
    Ok = Ok && GenericCompiles == 1 && RunErrors == 0;
  }

  // The per-shape baseline: every distinct shape is a distinct specialized
  // fingerprint, i.e. a distinct host-compiler run. Counted, not paid.
  std::set<uint64_t> PerShapeFps;
  for (int K = 0; K < kShapes; ++K)
    PerShapeFps.insert(
        kernel_cache::cacheKey(specializeFunc(Ragged, {{"n", 16 + 7 * K}}),
                               {}, "-O2")
            .Full);
  size_t PerShapeCompiles = PerShapeFps.size();
  Ok = Ok && PerShapeCompiles == kShapes;

  std::printf("ragged: %d distinct shapes -> %llu generic compile(s) "
              "(+%llu specialized); per-shape deployment would need %zu\n",
              kShapes, (unsigned long long)GenericCompiles,
              (unsigned long long)SpecCompiles, PerShapeCompiles);

  //===------------------------------------------------------------------===//
  // (b) Specialized vs generic on the four workloads.
  //===------------------------------------------------------------------===//
  std::vector<WorkloadRow> Rows;
  for (DynCase &C : makeCases()) {
    // Generic tier: the executor compiles the submitted program as-is at
    // the compile-latency-friendly -O2 — it never reschedules on the
    // generic path, so this is exactly what a raw submission is served
    // until its bucket gets hot.
    auto GK = Kernel::compile(C.F, CodegenOptions{}, "-O2");
    ftAssert(GK.ok(), GK.message());
    // Specialization tier: exactly the executor's background pipeline —
    // constant-fold the hot bucket's extents, simplify, re-autoschedule
    // (now with literal trip counts), compile at -O3.
    Func SpecIn = autoScheduleFunc(simplify(specializeFunc(C.F, C.Extents)));
    auto SK = Kernel::compile(SpecIn, CodegenOptions{}, "-O3");
    ftAssert(SK.ok(), SK.message());

    auto Args = argPtrs(C.Store);
    WorkloadRow R;
    R.Name = C.Name;

    // Cross-check before timing: the hot swap must not change results.
    Buffer &Out = C.Store.at(C.OutName);
    ftAssert(GK->run(Args).ok(), "generic run failed");
    std::vector<float> YG(Out.as<float>(), Out.as<float>() + Out.numel());
    ftAssert(SK->run(Args).ok(), "specialized run failed");
    for (int64_t I = 0; I < Out.numel(); ++I)
      R.MaxDiff = std::max(
          R.MaxDiff, double(std::fabs(Out.as<float>()[I] - YG[I])));
    Ok = Ok && R.MaxDiff <= 1e-3;

    R.GenericMs = timeKernel(*GK, Args) * 1e3;
    R.SpecMs = timeKernel(*SK, Args) * 1e3;
    R.Speedup = R.GenericMs / R.SpecMs;
    std::printf("%-10s generic %8.3f ms | specialized %8.3f ms | "
                "speedup %.2fx | maxdiff %.2e\n",
                R.Name.c_str(), R.GenericMs, R.SpecMs, R.Speedup, R.MaxDiff);
    Rows.push_back(R);
  }

  std::vector<double> Speedups;
  for (const WorkloadRow &R : Rows)
    Speedups.push_back(R.Speedup);
  std::sort(Speedups.rbegin(), Speedups.rend());
  double SecondBest = Speedups.size() >= 2 ? Speedups[1] : 0;
  Ok = Ok && SecondBest >= 1.2;
  std::printf("second-best speedup %.2fx (acceptance: >= 1.20x)\n",
              SecondBest);

  std::FILE *F = std::fopen("BENCH_dynshape.json", "w");
  ftAssert(F != nullptr, "could not open BENCH_dynshape.json");
  std::fprintf(F, "{\n  \"benchmark\": \"dynshape\",\n");
  std::fprintf(F,
               "  \"shapes\": {\"distinct_shapes\": %d, "
               "\"generic_compiles\": %llu, \"spec_compiles\": %llu, "
               "\"per_shape_compiles\": %zu},\n",
               kShapes, (unsigned long long)GenericCompiles,
               (unsigned long long)SpecCompiles, PerShapeCompiles);
  std::fprintf(F, "  \"workloads\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I)
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"generic_ms\": %.4f, "
                 "\"specialized_ms\": %.4f, \"speedup\": %.4f, "
                 "\"max_diff\": %.3e}%s\n",
                 Rows[I].Name.c_str(), Rows[I].GenericMs, Rows[I].SpecMs,
                 Rows[I].Speedup, Rows[I].MaxDiff,
                 I + 1 < Rows.size() ? "," : "");
  std::fprintf(F, "  ],\n");
  std::fprintf(F, "  \"second_best_speedup\": %.4f,\n", SecondBest);
  std::fprintf(F, "  \"pass\": %s\n}\n", Ok ? "true" : "false");
  std::fclose(F);

  std::system(("rm -rf '" + std::string(Tmpl) + "'").c_str());
  std::printf("%s\n", Ok ? "PASS" : "FAIL");
  return Ok ? 0 : 1;
}
