//===- bench/table2_compile_time.cpp - Paper Table 2 -------------------------===//
//
// Compiling time (paper §6.5): FreeTensor's analysis-driven auto-transform
// + code generation, measured end-to-end, versus a *measurement-driven
// auto-tuner* in the style of Ansor/TVM, simulated honestly: each tuning
// round mutates the schedule randomly (split factors / parallelization
// choices), really compiles the candidate with the host compiler, and
// really executes it to measure it. The paper's point — analytical
// scheduling costs seconds while tuning costs rounds x seconds-per-round —
// is reproduced structurally; we run a reduced number of rounds and also
// report the extrapolated cost at the paper's round counts.
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <unistd.h>

#include "bench_common.h"
#include "codegen/kernel_cache.h"
#include "support/stats.h"

using namespace ftb;

namespace {

double seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct WorkloadCase {
  const char *Name;
  Func F;
  std::map<std::string, Buffer> Store;
  int64_t PaperRounds; ///< TVM tuning rounds reported in Table 2 (CPU).
};

std::vector<WorkloadCase> makeCases() {
  std::vector<WorkloadCase> Out;
  {
    SubdivNetConfig C{1024, 32};
    SubdivNetData D = makeSubdivNetData(C);
    WorkloadCase W{"SubdivNet", buildSubdivNet(C), {}, 54};
    W.Store.emplace("e", std::move(D.E));
    W.Store.emplace("adj", std::move(D.Adj));
    W.Store.emplace("y", Buffer(DataType::Float32, {C.NFaces, C.Feats}));
    Out.push_back(std::move(W));
  }
  {
    LongformerConfig C{128, 32, 16};
    LongformerData D = makeLongformerData(C);
    WorkloadCase W{"Longformer", buildLongformer(C), {}, 2944};
    W.Store.emplace("Q", std::move(D.Q));
    W.Store.emplace("K", std::move(D.K));
    W.Store.emplace("V", std::move(D.V));
    W.Store.emplace("y", Buffer(DataType::Float32, {C.SeqLen, C.Feats}));
    Out.push_back(std::move(W));
  }
  {
    SoftRasConfig C{32, 16, 16, 0.05f};
    SoftRasData D = makeSoftRasData(C);
    WorkloadCase W{"SoftRas", buildSoftRas(C), {}, 1024};
    W.Store.emplace("verts", std::move(D.Verts));
    W.Store.emplace("px", std::move(D.Px));
    W.Store.emplace("py", std::move(D.Py));
    W.Store.emplace("img", Buffer(DataType::Float32, {C.numPixels()}));
    Out.push_back(std::move(W));
  }
  {
    GATConfig C{256, 16, 6};
    GATData D = makeGATData(C);
    WorkloadCase W{"GAT", buildGAT(C), {}, 1024};
    W.Store.emplace("h", std::move(D.H));
    W.Store.emplace("adj", std::move(D.Adj));
    W.Store.emplace("a1", std::move(D.A1));
    W.Store.emplace("a2", std::move(D.A2));
    W.Store.emplace("y", Buffer(DataType::Float32, {C.NNodes, C.Feats}));
    Out.push_back(std::move(W));
  }
  return Out;
}

/// FreeTensor end-to-end compile: auto-transform + codegen + host compiler.
double freeTensorCompileSeconds(const Func &F) {
  double T0 = seconds();
  Func Opt = autoScheduleFunc(F);
  auto K = Kernel::compile(Opt);
  ftAssert(K.ok(), K.message());
  return seconds() - T0;
}

/// One simulated tuning round: random schedule mutation + compile + run.
double tunerRoundSeconds(const WorkloadCase &W, uint64_t &Rng) {
  double T0 = seconds();
  Schedule S(W.F);
  // Random mutations: try a split with a random factor on each loop, and
  // random parallelization, like a random-search tuner exploring the
  // schedule space.
  auto Rand = [&Rng](uint64_t Mod) {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng % Mod;
  };
  std::vector<int64_t> LoopIds;
  std::function<void(const Stmt &)> Collect = [&](const Stmt &St) {
    if (auto L = dyn_cast<ForNode>(St)) {
      LoopIds.push_back(L->Id);
      Collect(L->Body);
      return;
    }
    if (auto Seq = dyn_cast<StmtSeqNode>(St)) {
      for (const Stmt &Sub : Seq->Stmts)
        Collect(Sub);
      return;
    }
    if (auto D = dyn_cast<VarDefNode>(St))
      return Collect(D->Body);
    if (auto I = dyn_cast<IfNode>(St)) {
      Collect(I->Then);
      if (I->Else)
        Collect(I->Else);
    }
  };
  Collect(S.ast());
  if (!LoopIds.empty()) {
    int64_t Target = LoopIds[Rand(LoopIds.size())];
    static const int64_t Factors[] = {2, 4, 8, 16};
    (void)S.split(Target, Factors[Rand(4)]); // May fail; tuners retry.
    if (Rand(2) == 0 && !LoopIds.empty())
      (void)S.parallelize(LoopIds[Rand(LoopIds.size())]);
  }
  S.cleanup();
  auto K = Kernel::compile(S.func());
  ftAssert(K.ok(), K.message());
  // "Measure" the candidate: one real execution.
  std::map<std::string, Buffer *> Args;
  for (auto &KV : const_cast<WorkloadCase &>(W).Store)
    Args[KV.first] = &KV.second;
  Status St = K->run(Args);
  ftAssert(St.ok(), St.message());
  return seconds() - T0;
}

void printTable() {
  constexpr int SimRounds = 5;
  std::printf("\n=== Table 2: compiling time ===\n");
  std::printf("%-12s %14s %14s %14s %16s %22s\n", "workload", "FreeTensor(s)",
              "warm-cache(s)", "tuner s/round", "tuner rounds*",
              "tuner total extrapolated(s)");
  uint64_t Rng = 0x12345678;
  for (WorkloadCase &W : makeCases()) {
    // Per-case counter deltas: without the reset, FT_STATS / FT_METRICS
    // numbers accumulate across workloads and mean nothing per case.
    ft::stats::reset();
    double FtSec = freeTensorCompileSeconds(W.F);
    // The same compile against a now-populated kernel cache: scheduling
    // and codegen still run, the host compiler does not.
    double WarmSec = freeTensorCompileSeconds(W.F);
    double RoundSec = 0;
    for (int R = 0; R < SimRounds; ++R) {
      ft::stats::reset();
      RoundSec += tunerRoundSeconds(W, Rng);
    }
    RoundSec /= SimRounds;
    std::printf("%-12s %14.2f %14.3f %14.2f %16lld %22.0f\n", W.Name, FtSec,
                WarmSec, RoundSec, static_cast<long long>(W.PaperRounds),
                RoundSec * double(W.PaperRounds));
  }
  std::printf("* rounds: the CPU tuning-round counts of the paper's "
              "Table 2.\n"
              "paper: FreeTensor needs 0.13%%-22.92%% of TVM's tuning "
              "time.\n\n");
}

void Table2_CompileTime(benchmark::State &State) {
  // The table is produced once in main(); this registered benchmark times
  // one representative FreeTensor end-to-end compile so the binary also
  // reports through the google-benchmark channel.
  static Func F = [] {
    SubdivNetConfig C{1024, 32};
    return buildSubdivNet(C);
  }();
  for (auto _ : State) {
    ft::stats::reset();
    double Sec = freeTensorCompileSeconds(F);
    State.SetIterationTime(Sec);
    State.counters["dep_queries"] =
        double(ft::stats::counters().DepQueries.load());
  }
}
BENCHMARK(Table2_CompileTime)->UseManualTime()->Iterations(1);

} // namespace

int main(int argc, char **argv) {
  // Keep the bench hermetic unless the caller pinned a cache dir: a private
  // per-process directory makes "FreeTensor(s)" a true cold compile and the
  // warm-cache column a true first rerun.
  bool OwnCacheDir = !std::getenv("FT_CACHE_DIR");
  std::string CacheDir = "/tmp/fttable2." + std::to_string(::getpid());
  if (OwnCacheDir)
    ::setenv("FT_CACHE_DIR", CacheDir.c_str(), 1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  // The registered benchmark above already compiled SubdivNet; point the
  // table at a fresh subdirectory so its cold column stays cold.
  if (OwnCacheDir)
    ::setenv("FT_CACHE_DIR", (CacheDir + "/table").c_str(), 1);
  ft::kernel_cache::memReset();
  printTable();
  if (OwnCacheDir)
    std::system(("rm -rf '" + CacheDir + "'").c_str());
  return 0;
}
