//===- bench/serve_bench.cpp - Serving-runtime latency benchmark ----------===//
//
// The kernel-serving runtime (serve/serve.h) against its three acceptance
// criteria, on a fresh private kernel-cache directory:
//
//  (a) cold first-request latency (interpreter tier) is far below the
//      synchronous JIT compile time it hides;
//  (b) after warm-up, >= 95% of a closed-loop request stream is served by
//      the JIT tier;
//  (c) under a 10x open-loop overload burst against a small queue, the
//      bounded queue rejects (reject policy) instead of growing without
//      bound, and every accepted request still completes.
//
// Latencies are recorded per tier and reported as p50/p95/p99 in
// BENCH_serve.json.
//
// The bench also runs with the telemetry hooks enabled and acts as the
// differential test for the histogram estimator: the p50/p95/p99 read from
// the in-process "serve/..." histograms must agree with the raw-timestamp
// computation (same rank convention) to within one log2 bucket — the
// estimator's resolution bound. Queue-wait percentiles from the histogram
// are reported alongside the per-tier latencies.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>
#include <vector>

#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "frontend/builder.h"
#include "serve/serve.h"
#include "serve/telemetry.h"
#include "support/error.h"
#include "support/metrics.h"

using namespace ft;
using namespace ft::serve;

namespace {

double seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int64_t kN = 4096;

/// Distinct \p Scale values give distinct fingerprints — one serving
/// "model" per scale.
Func makeWorkload(double Scale) {
  FunctionBuilder B("servek");
  View X = B.input("x", {makeIntConst(kN)});
  View Y = B.output("y", {makeIntConst(kN)});
  B.loop("i", 0, kN, [&](Expr I) {
    Y[I].assign(X[I].load() * makeFloatConst(Scale) + makeFloatConst(1.0));
  });
  return B.build();
}

struct Slot {
  Buffer X{DataType::Float32, {kN}};
  Buffer Y{DataType::Float32, {kN}};
  std::future<Response> Fut;

  std::map<std::string, Buffer *> args(const Func &F) {
    return {{F.Params[0], &X}, {F.Params[1], &Y}};
  }
};

struct Percentiles {
  double P50Us = 0, P95Us = 0, P99Us = 0;
  size_t Count = 0;
};

Percentiles percentiles(std::vector<double> LatSec) {
  Percentiles P;
  P.Count = LatSec.size();
  if (LatSec.empty())
    return P;
  std::sort(LatSec.begin(), LatSec.end());
  auto At = [&](double Q) {
    size_t I = static_cast<size_t>(Q * double(LatSec.size() - 1));
    return LatSec[I] * 1e6;
  };
  P.P50Us = At(0.50);
  P.P95Us = At(0.95);
  P.P99Us = At(0.99);
  return P;
}

void jsonTier(std::FILE *F, const char *Name, const Percentiles &P,
              bool TrailingComma) {
  std::fprintf(F,
               "    \"%s\": {\"count\": %zu, \"p50_us\": %.1f, "
               "\"p95_us\": %.1f, \"p99_us\": %.1f}%s\n",
               Name, P.Count, P.P50Us, P.P95Us, P.P99Us,
               TrailingComma ? "," : "");
}

//===------------------------------------------------------------------===//
// Histogram-vs-raw differential
//===------------------------------------------------------------------===//

/// Raw nanosecond samples, reconstructed from each Response with the same
/// time points the telemetry hooks recorded. The histogram estimates must
/// land in the same (or an adjacent) log2 bucket as these.
std::vector<uint64_t> RawQueueNs, RawRunJitNs, RawRunInterpNs;

void noteRaw(const Response &R) {
  RawQueueNs.push_back(uint64_t(R.QueueSec * 1e9));
  double RunSec = R.LatencySec - R.QueueSec;
  if (RunSec < 0)
    RunSec = 0;
  if (R.ServedBy == Tier::Jit)
    RawRunJitNs.push_back(uint64_t(RunSec * 1e9));
  else
    RawRunInterpNs.push_back(uint64_t(RunSec * 1e9));
}

uint64_t rawQuantile(std::vector<uint64_t> V, double Q) {
  std::sort(V.begin(), V.end());
  return V[size_t(Q * double(V.size() - 1))];
}

/// Compares the histogram's pXX estimates against the raw computation;
/// agreement = within one bucket index. Returns the max bucket delta seen.
int checkAgreement(const char *Name, const metrics::HistogramSnapshot &H,
                   const std::vector<uint64_t> &Raw, bool &Ok) {
  using HS = metrics::HistogramSnapshot;
  if (Raw.empty())
    return 0;
  if (H.Count != Raw.size()) {
    std::printf("%s: histogram count %llu != raw count %zu\n", Name,
                (unsigned long long)H.Count, Raw.size());
    Ok = false;
  }
  int MaxDelta = 0;
  for (double Q : {0.50, 0.95, 0.99}) {
    int HB = HS::bucketOf(uint64_t(H.quantile(Q)));
    int RB = HS::bucketOf(rawQuantile(Raw, Q));
    int D = HB > RB ? HB - RB : RB - HB;
    MaxDelta = std::max(MaxDelta, D);
    if (D > 1) {
      std::printf("%s p%.0f: hist bucket %d vs raw bucket %d (delta %d)\n",
                  Name, Q * 100, HB, RB, D);
      Ok = false;
    }
  }
  return MaxDelta;
}

} // namespace

int main() {
  char Tmpl[] = "/tmp/ftservebench.XXXXXX";
  ftAssert(::mkdtemp(Tmpl) != nullptr, "mkdtemp failed");
  ::setenv("FT_CACHE_DIR", Tmpl, 1);
  ::setenv("FT_CACHE", "1", 1);
  kernel_cache::memReset();

  // Telemetry on (hooks only, no exporter): the serve/ histograms fill in
  // parallel with the raw Response samples this bench already collects.
  telemetry::setEnabled(true);
  telemetry::reset();
  metrics::resetPrefix("serve/");

  bool Ok = true;

  //===------------------------------------------------------------------===//
  // Reference: what a request would wait on without the interpreter tier.
  // A structurally identical program with a fingerprint the serving phases
  // never use, so the cache directory stays cold for them.
  //===------------------------------------------------------------------===//
  Config Cfg; // defaults; OptFlags matches what the executor compiles with
  double T0 = seconds();
  auto Ref = Kernel::compile(makeWorkload(99.0), CodegenOptions{}, Cfg.OptFlags);
  double CompileRefSec = seconds() - T0;
  ftAssert(Ref.ok(), Ref.message());

  std::vector<double> InterpLat, JitLat;

  //===------------------------------------------------------------------===//
  // (a) Cold start: the first request is served now, not post-compile.
  //===------------------------------------------------------------------===//
  const int kModels = 4;
  std::vector<Func> Models;
  for (int M = 0; M < kModels; ++M)
    Models.push_back(makeWorkload(1.0 + M));

  double ColdFirstSec = 0;
  uint64_t WarmJit = 0, WarmTotal = 0;
  {
    Config C;
    C.Threads = 2;
    Executor Ex(C);

    Slot First;
    auto R = Ex.submit(Models[0], First.args(Models[0]));
    ftAssert(R.ok(), R.message());
    Response Resp = R->get();
    ftAssert(Resp.S.ok(), Resp.S.message());
    ColdFirstSec = Resp.LatencySec;
    noteRaw(Resp);
    if (Resp.ServedBy == Tier::Interp)
      InterpLat.push_back(Resp.LatencySec);
    Ok = Ok && Resp.ServedBy == Tier::Interp && ColdFirstSec < CompileRefSec;

    // Warm-up: touch every model once, then wait for the compiles.
    for (int M = 1; M < kModels; ++M) {
      Slot S;
      auto R2 = Ex.submit(Models[M], S.args(Models[M]));
      ftAssert(R2.ok(), R2.message());
      Response Resp2 = R2->get();
      ftAssert(Resp2.S.ok(), Resp2.S.message());
      noteRaw(Resp2);
      if (Resp2.ServedBy == Tier::Interp)
        InterpLat.push_back(Resp2.LatencySec);
      else
        JitLat.push_back(Resp2.LatencySec);
    }
    Ex.drain();

    //===----------------------------------------------------------------===//
    // (b) Closed loop over warm models: >= 95% JIT tier.
    //===----------------------------------------------------------------===//
    ServeStats Before = Ex.stats();
    const int kWarmReqs = 400;
    for (int I = 0; I < kWarmReqs; ++I) {
      const Func &F = Models[I % kModels];
      Slot S;
      auto R2 = Ex.submit(F, S.args(F));
      ftAssert(R2.ok(), R2.message());
      Response Resp2 = R2->get();
      ftAssert(Resp2.S.ok(), Resp2.S.message());
      noteRaw(Resp2);
      if (Resp2.ServedBy == Tier::Jit)
        JitLat.push_back(Resp2.LatencySec);
      else
        InterpLat.push_back(Resp2.LatencySec);
    }
    ServeStats After = Ex.stats();
    WarmJit = After.JitServed - Before.JitServed;
    WarmTotal = kWarmReqs;
    Ok = Ok && WarmJit * 100 >= WarmTotal * 95;
    Ex.shutdown();
  }

  //===------------------------------------------------------------------===//
  // (c) Open-loop 10x overload against a small queue: bounded, not broken.
  //===------------------------------------------------------------------===//
  uint64_t Offered = 0, Accepted = 0, RejectedCnt = 0;
  size_t OverloadQueueCap = 0;
  {
    Config C;
    C.Threads = 2;
    C.QueueCap = 16;
    C.BlockOnFull = false; // reject policy is the point of this phase
    OverloadQueueCap = C.QueueCap;
    Executor Ex(C);
    // A fresh fingerprint: requests are interpreter-tier (the compile is
    // still in flight), i.e. slow relative to the burst — a genuine
    // overload.
    Func F = makeWorkload(77.0);

    Offered = 10 * C.QueueCap;
    std::vector<Slot> Slots(Offered);
    for (Slot &S : Slots) {
      auto R = Ex.submit(F, S.args(F));
      if (R.ok()) {
        S.Fut = std::move(*R);
        ++Accepted;
      } else {
        ++RejectedCnt;
      }
    }
    for (Slot &S : Slots)
      if (S.Fut.valid()) {
        Response Resp = S.Fut.get();
        ftAssert(Resp.S.ok(), Resp.S.message());
        noteRaw(Resp);
        if (Resp.ServedBy == Tier::Jit)
          JitLat.push_back(Resp.LatencySec);
        else
          InterpLat.push_back(Resp.LatencySec);
      }
    ServeStats St = Ex.stats();
    Ok = Ok && RejectedCnt > 0 && St.Rejected == RejectedCnt &&
         St.Submitted == Accepted;
    Ex.shutdown();
  }

  Percentiles PI = percentiles(InterpLat);
  Percentiles PJ = percentiles(JitLat);

  //===------------------------------------------------------------------===//
  // Histogram vs raw: the telemetry estimates must agree with the
  // raw-timestamp percentiles within one log2 bucket.
  //===------------------------------------------------------------------===//
  metrics::HistogramSnapshot QH =
      metrics::histogram("serve/queue_wait_ns").snapshot();
  metrics::HistogramSnapshot RJH =
      metrics::histogram("serve/run_ns_jit").snapshot();
  metrics::HistogramSnapshot RIH =
      metrics::histogram("serve/run_ns_interp").snapshot();
  int MaxDelta = 0;
  MaxDelta = std::max(MaxDelta, checkAgreement("queue_wait", QH, RawQueueNs, Ok));
  MaxDelta = std::max(MaxDelta, checkAgreement("run_jit", RJH, RawRunJitNs, Ok));
  MaxDelta =
      std::max(MaxDelta, checkAgreement("run_interp", RIH, RawRunInterpNs, Ok));

  std::printf("compile ref %.3f s | cold first request %.6f s (%s, %.0fx "
              "faster)\n",
              CompileRefSec, ColdFirstSec,
              ColdFirstSec < CompileRefSec ? "hidden" : "NOT HIDDEN",
              CompileRefSec / ColdFirstSec);
  std::printf("warm closed loop: %llu/%llu jit-tier (%.1f%%)\n",
              (unsigned long long)WarmJit, (unsigned long long)WarmTotal,
              100.0 * double(WarmJit) / double(WarmTotal));
  std::printf("overload 10x: offered %llu accepted %llu rejected %llu\n",
              (unsigned long long)Offered, (unsigned long long)Accepted,
              (unsigned long long)RejectedCnt);
  std::printf("interp tier: n=%zu p50 %.1fus p95 %.1fus p99 %.1fus\n",
              PI.Count, PI.P50Us, PI.P95Us, PI.P99Us);
  std::printf("jit tier:    n=%zu p50 %.1fus p95 %.1fus p99 %.1fus\n",
              PJ.Count, PJ.P50Us, PJ.P95Us, PJ.P99Us);
  std::printf("queue wait (hist): n=%llu p50 %.1fus p95 %.1fus p99 %.1fus | "
              "hist-vs-raw max bucket delta %d\n",
              (unsigned long long)QH.Count, QH.quantile(0.50) / 1e3,
              QH.quantile(0.95) / 1e3, QH.quantile(0.99) / 1e3, MaxDelta);

  std::FILE *F = std::fopen("BENCH_serve.json", "w");
  ftAssert(F != nullptr, "could not open BENCH_serve.json");
  std::fprintf(F, "{\n  \"benchmark\": \"serve\",\n");
  std::fprintf(F,
               "  \"cold\": {\"compile_ref_sec\": %.6f, "
               "\"first_request_sec\": %.6f, \"hidden\": %s},\n",
               CompileRefSec, ColdFirstSec,
               ColdFirstSec < CompileRefSec ? "true" : "false");
  std::fprintf(F,
               "  \"warm\": {\"requests\": %llu, \"jit_served\": %llu, "
               "\"jit_fraction\": %.4f, \"target_fraction\": 0.95},\n",
               (unsigned long long)WarmTotal, (unsigned long long)WarmJit,
               double(WarmJit) / double(WarmTotal));
  std::fprintf(F,
               "  \"overload\": {\"queue_cap\": %zu, \"offered\": %llu, "
               "\"accepted\": %llu, \"rejected\": %llu},\n",
               OverloadQueueCap, (unsigned long long)Offered,
               (unsigned long long)Accepted, (unsigned long long)RejectedCnt);
  std::fprintf(F, "  \"tiers\": {\n");
  jsonTier(F, "interp", PI, true);
  jsonTier(F, "jit", PJ, false);
  std::fprintf(F, "  },\n");
  std::fprintf(F,
               "  \"queue_wait\": {\"count\": %llu, \"p50_us\": %.1f, "
               "\"p95_us\": %.1f, \"p99_us\": %.1f},\n",
               (unsigned long long)QH.Count, QH.quantile(0.50) / 1e3,
               QH.quantile(0.95) / 1e3, QH.quantile(0.99) / 1e3);
  std::fprintf(F,
               "  \"hist_agreement\": {\"max_bucket_delta\": %d, "
               "\"tolerance\": 1},\n",
               MaxDelta);
  std::fprintf(F, "  \"pass\": %s\n}\n", Ok ? "true" : "false");
  std::fclose(F);

  std::system(("rm -rf '" + std::string(Tmpl) + "'").c_str());
  std::printf("%s\n", Ok ? "PASS" : "FAIL");
  return Ok ? 0 : 1;
}
