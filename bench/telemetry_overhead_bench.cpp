//===- bench/telemetry_overhead_bench.cpp - Telemetry cost budget ---------===//
//
// The telemetry plane's two cost contracts (DESIGN.md §14):
//
//  (a) Disabled: a hook call is a function call + one relaxed load + a
//      branch — no clock read, no lock, no allocation. Measured by a tight
//      cross-TU loop over telemetry::onCompile with telemetry off; the
//      budget is <= 5 ns per skipped call. A second probe covers the
//      request-context additions of DESIGN.md §15: a request-id allocation
//      (one relaxed fetch_add) plus a disabled onRequestComplete carrying
//      the full context (id, tenant, deadline) — same <= 5 ns budget.
//
//  (b) Enabled: serving throughput with the hooks recording (and the
//      snapshot exporter running) stays within 2% of telemetry-off
//      throughput. Measured by interleaved best-of trials of a warm
//      closed-loop request stream, alternating off/on so drift hits both
//      modes equally. Requests carry a deadline so the enabled path pays
//      for shape recording and SLO accounting too.
//
// Results land in BENCH_telemetry_overhead.json.
//
//===----------------------------------------------------------------------===//

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>
#include <vector>

#include "codegen/kernel_cache.h"
#include "frontend/builder.h"
#include "serve/serve.h"
#include "serve/telemetry.h"
#include "support/error.h"
#include "support/metrics.h"

using namespace ft;
using namespace ft::serve;

namespace {

using Clock = std::chrono::steady_clock;

constexpr int64_t kN = 8192;

Func makeWorkload() {
  FunctionBuilder B("telemk");
  View X = B.input("x", {makeIntConst(kN)});
  View Y = B.output("y", {makeIntConst(kN)});
  B.loop("i", 0, kN, [&](Expr I) {
    Y[I].assign(X[I].load() * makeFloatConst(2.0) + makeFloatConst(1.0));
  });
  return B.build();
}

/// One closed-loop trial: \p Reqs requests against a warm executor.
/// Returns requests per second.
double trial(Executor &Ex, const Func &F, std::map<std::string, Buffer *> &Args,
             int Reqs) {
  // A generous deadline every request carries: comfortably met, but the
  // enabled path still pays shape recording + SLO accounting for it.
  SubmitOptions Opts;
  Opts.DeadlineNs = 500'000'000;
  Clock::time_point T0 = Clock::now();
  for (int I = 0; I < Reqs; ++I) {
    auto R = Ex.submit(F, Args, Opts);
    ftAssert(R.ok(), R.message());
    Response Resp = R->get();
    ftAssert(Resp.S.ok(), Resp.S.message());
  }
  double Sec = std::chrono::duration<double>(Clock::now() - T0).count();
  return double(Reqs) / Sec;
}

} // namespace

int main() {
  char Tmpl[] = "/tmp/fttelembench.XXXXXX";
  ftAssert(::mkdtemp(Tmpl) != nullptr, "mkdtemp failed");
  ::setenv("FT_CACHE_DIR", Tmpl, 1);
  ::setenv("FT_CACHE", "1", 1);
  ::unsetenv("FT_TELEMETRY_DIR"); // exporter is started explicitly below
  kernel_cache::memReset();

  bool Ok = true;

  //===------------------------------------------------------------------===//
  // (a) Disabled record path.
  //===------------------------------------------------------------------===//
  telemetry::setEnabled(false);
  const uint64_t kCalls = 50'000'000;
  double BestNs = 1e9;
  for (int Rep = 0; Rep < 3; ++Rep) {
    Clock::time_point T0 = Clock::now();
    for (uint64_t I = 0; I < kCalls; ++I)
      telemetry::onCompile(I, true);
    double Ns = double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Clock::now() - T0)
                           .count()) /
                double(kCalls);
    if (Ns < BestNs)
      BestNs = Ns;
  }
  ftAssert(metrics::histogram("serve/compile_ns").count() == 0,
           "disabled hook recorded");
  Ok = Ok && BestNs <= 5.0;
  std::printf("disabled record path: %.2f ns/call (budget 5 ns)\n", BestNs);

  // Request-context propagation: id allocation (one relaxed fetch_add)
  // plus a disabled onRequestComplete carrying the full context. The
  // sample is prebuilt — the executor only builds shape keys when
  // telemetry is enabled, so the disabled submit path adds exactly this.
  telemetry::RequestSample CtxS;
  CtxS.Fingerprint = 0x1234;
  CtxS.Tenant = "default";
  CtxS.DeadlineNs = 1'000'000;
  CtxS.ShapeKey = "x:f32[8192] y:f32[8192]";
  double BestCtxNs = 1e9;
  for (int Rep = 0; Rep < 3; ++Rep) {
    Clock::time_point T0 = Clock::now();
    for (uint64_t I = 0; I < kCalls; ++I) {
      CtxS.ReqId = nextRequestId();
      telemetry::onRequestComplete(CtxS);
    }
    double Ns = double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Clock::now() - T0)
                           .count()) /
                double(kCalls);
    if (Ns < BestCtxNs)
      BestCtxNs = Ns;
  }
  ftAssert(metrics::histogram("serve/queue_wait_ns").count() == 0,
           "disabled context hook recorded");
  Ok = Ok && BestCtxNs <= 5.0;
  std::printf("disabled context path: %.2f ns/request (budget 5 ns)\n",
              BestCtxNs);

  //===------------------------------------------------------------------===//
  // (b) Enabled serving overhead, interleaved best-of.
  //===------------------------------------------------------------------===//
  Func F = makeWorkload();
  Config C;
  C.Threads = 2;
  Executor Ex(C);
  Buffer X(DataType::Float32, {kN}), Y(DataType::Float32, {kN});
  std::map<std::string, Buffer *> Args = {{F.Params[0], &X},
                                          {F.Params[1], &Y}};

  // Warm up until the JIT tier answers, so trials measure steady state.
  for (int I = 0; I < 50; ++I) {
    auto R = Ex.submit(F, Args);
    ftAssert(R.ok(), R.message());
    (void)R->get();
  }
  Ex.drain();

  telemetry::Config TC;
  TC.Dir = std::string(Tmpl) + "/telemetry";
  TC.IntervalMs = 100;
  TC.Keep = 8;

  // Best-of over enough interleaved trials that both modes reach their
  // steady-state ceiling: the hook cost (~0.1% here) is far below the
  // per-trial scheduler noise, so converging the maxima is what makes the
  // 2% budget check stable.
  const int kReqs = 600;
  const int kTrials = 8;
  double OffRps = 0, OnRps = 0;
  for (int T = 0; T < kTrials; ++T) {
    telemetry::setEnabled(false);
    OffRps = std::max(OffRps, trial(Ex, F, Args, kReqs));

    Status S = telemetry::startExporter(TC);
    ftAssert(S.ok(), S.message());
    OnRps = std::max(OnRps, trial(Ex, F, Args, kReqs));
    telemetry::stopExporter();
  }
  telemetry::setEnabled(false);

  double OverheadFrac = OffRps > 0 ? 1.0 - OnRps / OffRps : 0;
  if (OverheadFrac < 0)
    OverheadFrac = 0;
  uint64_t Snaps = telemetry::snapshotsWritten();
  Ok = Ok && OverheadFrac <= 0.02 && Snaps >= 1;
  std::printf("serving: off %.0f req/s | on %.0f req/s | overhead %.2f%% "
              "(budget 2%%) | %llu snapshots written\n",
              OffRps, OnRps, OverheadFrac * 100,
              (unsigned long long)Snaps);

  std::FILE *Out = std::fopen("BENCH_telemetry_overhead.json", "w");
  ftAssert(Out != nullptr, "could not open BENCH_telemetry_overhead.json");
  std::fprintf(Out,
               "{\n  \"benchmark\": \"telemetry_overhead\",\n"
               "  \"disabled_record_ns\": %.3f,\n"
               "  \"disabled_context_ns\": %.3f,\n"
               "  \"disabled_budget_ns\": 5.0,\n"
               "  \"off_rps\": %.1f,\n"
               "  \"on_rps\": %.1f,\n"
               "  \"overhead_frac\": %.4f,\n"
               "  \"overhead_budget_frac\": 0.02,\n"
               "  \"snapshots_written\": %llu,\n"
               "  \"pass\": %s\n}\n",
               BestNs, BestCtxNs, OffRps, OnRps, OverheadFrac,
               (unsigned long long)Snaps, Ok ? "true" : "false");
  std::fclose(Out);

  Ex.shutdown();
  std::system(("rm -rf '" + std::string(Tmpl) + "'").c_str());
  std::printf("%s\n", Ok ? "PASS" : "FAIL");
  return Ok ? 0 : 1;
}
