//===- bench/deps_bench.cpp - Dependence-query engine benchmark -------------===//
//
// Before/after measurement of the dependence-query engine accelerations
// (constraint canonicalization + interval/GCD pre-filter + memoized
// emptiness + per-point domain caching + analyzer reuse): each benchmark
// runs twice, once with the engine as shipped and once under
// stats::BypassGuard, which reproduces the pre-acceleration behaviour.
// Counters report queries/sec and the emptiness-cache hit rate.
//
// Writes BENCH_deps.json (google-benchmark JSON reporter) unless the
// caller passes an explicit --benchmark_out.
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "support/stats.h"

using namespace ftb;

namespace {

std::vector<int64_t> allLoops(const Stmt &S) {
  std::vector<int64_t> Out;
  std::function<void(const Stmt &)> Walk = [&](const Stmt &St) {
    if (auto L = dyn_cast<ForNode>(St)) {
      Out.push_back(L->Id);
      return Walk(L->Body);
    }
    if (auto Seq = dyn_cast<StmtSeqNode>(St)) {
      for (const Stmt &Sub : Seq->Stmts)
        Walk(Sub);
      return;
    }
    if (auto D = dyn_cast<VarDefNode>(St))
      return Walk(D->Body);
    if (auto I = dyn_cast<IfNode>(St)) {
      Walk(I->Then);
      if (I->Else)
        Walk(I->Else);
    }
  };
  Walk(S);
  return Out;
}

/// Attaches the per-iteration engine counters to the benchmark report.
/// Each benchmark calls ft::stats::reset() at the top of every iteration,
/// so at destruction time the counter block holds the delta of exactly one
/// iteration — a meaningful per-iteration cost, not a cumulative total
/// that scales with however many iterations the harness chose to run.
struct StatsScope {
  explicit StatsScope(benchmark::State &State) : State(State) {
    ft::stats::reset();
    ft::stats::clearEmptinessCache();
  }
  ~StatsScope() {
    ft::stats::Counters &C = ft::stats::counters();
    State.counters["dep_queries"] = double(C.DepQueries.load());
    uint64_t Hits = C.EmptinessCacheHits.load();
    uint64_t Misses = C.EmptinessCacheMisses.load();
    State.counters["memo_hit_rate"] =
        Hits + Misses ? double(Hits) / double(Hits + Misses) : 0.0;
    State.counters["fm_eliminations"] = double(C.FmEliminations.load());
    State.counters["analyzer_builds"] = double(C.AnalyzerBuilds.load());
  }
  benchmark::State &State;
};

/// The legality-check core: the carriedBy sweeps a schedule session issues
/// against one AST version — parallelize and vectorize probe every loop,
/// and sink_var re-sweeps once per sinking round — served by one analyzer
/// generation. The process-wide emptiness memo additionally persists
/// across generations (iterations), as it does across sessions.
void DepsCarriedBySweep(benchmark::State &State) {
  ft::stats::BypassGuard G(State.range(0) == 0);
  Func F = buildLongformer({128, 32, 16});
  constexpr int SweepsPerVersion = 8;
  StatsScope Scope(State);
  for (auto _ : State) {
    ft::stats::reset();
    DepAnalyzer DA(F.Body);
    int64_t Found = 0;
    for (int Round = 0; Round < SweepsPerVersion; ++Round)
      for (int64_t L : allLoops(F.Body))
        Found += static_cast<int64_t>(DA.carriedBy(L).size());
    benchmark::DoNotOptimize(Found);
  }
}
BENCHMARK(DepsCarriedBySweep)
    ->Arg(1)
    ->ArgName("accel")
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

/// The full analysis-driven auto-transform of a workload (paper §4.3):
/// dominated by legality checks, so it measures the engine end-to-end —
/// analyzer reuse across probed primitives included.
void DepsAutoTransform(benchmark::State &State) {
  ft::stats::BypassGuard G(State.range(0) == 0);
  Func F = buildSubdivNet({1024, 32});
  StatsScope Scope(State);
  for (auto _ : State) {
    ft::stats::reset();
    Func Opt = autoScheduleFunc(F);
    benchmark::DoNotOptimize(Opt);
  }
}
BENCHMARK(DepsAutoTransform)
    ->Arg(1)
    ->ArgName("accel")
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

/// Repeated legality probing of one AST version — the auto-fuse /
/// auto-parallelize retry pattern: many primitives interrogate the same
/// program snapshot through one Schedule.
void DepsScheduleProbing(benchmark::State &State) {
  ft::stats::BypassGuard G(State.range(0) == 0);
  Func F = buildLongformer({128, 32, 16});
  StatsScope Scope(State);
  for (auto _ : State) {
    ft::stats::reset();
    Schedule S(F);
    std::vector<int64_t> Loops = allLoops(S.ast());
    int64_t Accepted = 0;
    // Probe vectorize on every loop (read-only legality checks), then
    // commit one parallelization.
    for (int64_t L : Loops)
      Accepted += S.vectorize(L).ok();
    if (!Loops.empty())
      Accepted += S.parallelize(Loops.front()).ok();
    benchmark::DoNotOptimize(Accepted);
  }
}
BENCHMARK(DepsScheduleProbing)
    ->Arg(1)
    ->ArgName("accel")
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::vector<char *> Args(argv, argv + argc);
  bool HasOut = false;
  for (int I = 1; I < argc; ++I)
    HasOut |= std::string(argv[I]).rfind("--benchmark_out", 0) == 0;
  static std::string OutArg = "--benchmark_out=BENCH_deps.json";
  static std::string FmtArg = "--benchmark_out_format=json";
  if (!HasOut) {
    Args.push_back(OutArg.data());
    Args.push_back(FmtArg.data());
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
