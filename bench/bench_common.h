//===- bench/bench_common.h - Shared benchmark utilities ---------*- C++ -*-===//
///
/// \file
/// Helpers shared by the per-figure benchmark binaries: building +
/// JIT-compiling the FreeTensor implementations of the §6.1 workloads,
/// binding their buffers, and constructing the EagerTensor inputs.
///
//===----------------------------------------------------------------------===//

#ifndef FT_BENCH_BENCH_COMMON_H
#define FT_BENCH_BENCH_COMMON_H

#include <cstdio>

#include "autodiff/grad.h"
#include "autoschedule/autoschedule.h"
#include "codegen/jit.h"
#include "interp/interp.h"
#include "workloads/workloads.h"

namespace ftb {

using namespace ft;
using namespace ft::workloads;

/// A compiled kernel plus owned argument buffers.
struct BoundKernel {
  Kernel K;
  std::map<std::string, Buffer> Store;
  std::map<std::string, Buffer *> Args;

  void bind() {
    Args.clear();
    for (auto &[N, B] : Store)
      Args[N] = &B;
  }

  void run() {
    Status S = K.run(Args);
    ftAssert(S.ok(), S.message());
  }
};

/// Auto-schedules and JIT-compiles \p F; aborts on failure (benchmarks
/// must not silently skip).
inline Kernel compileAuto(Func F) {
  Func Opt = autoScheduleFunc(std::move(F));
  auto K = Kernel::compile(Opt);
  ftAssert(K.ok(), K.message());
  return *K;
}

/// Same, with explicit codegen options (e.g. profile instrumentation).
inline Kernel compileAuto(Func F, const CodegenOptions &Opts) {
  Func Opt = autoScheduleFunc(std::move(F));
  auto K = Kernel::compile(Opt, Opts);
  ftAssert(K.ok(), K.message());
  return *K;
}

/// Allocates buffers for a grad pair (tapes, seeds=1, grads) given the
/// primal data already present in \p Store.
inline void bindGradBuffers(const GradResult &G,
                            std::map<std::string, Buffer> &Store) {
  for (const std::string &T : G.Tapes) {
    auto D = findVarDef(G.Forward.Body, T);
    ftAssert(D != nullptr, "tape def missing");
    std::vector<int64_t> Shape;
    for (const Expr &E : D->Info.Shape) {
      auto IC = dyn_cast<IntConstNode>(E);
      ftAssert(IC != nullptr, "bench tapes must be constant-shaped");
      Shape.push_back(IC->Val);
    }
    Store.emplace(T, Buffer(DataType::Float32, Shape));
  }
  for (const auto &[Y, SeedName] : G.SeedNames) {
    Buffer Seed(DataType::Float32, Store.at(Y).shape());
    for (int64_t I = 0; I < Seed.numel(); ++I)
      Seed.setF(I, 1.0);
    Store.emplace(SeedName, std::move(Seed));
  }
  for (const auto &[X, GradName] : G.GradNames)
    Store.emplace(GradName, Buffer(DataType::Float32, Store.at(X).shape()));
}

/// Converts an interp Buffer into an eager Tensor.
inline eager::Tensor toEager(const Buffer &B, bool RequiresGrad = false) {
  return eager::Tensor::fromVec(
      B.shape(),
      std::vector<float>(B.as<float>(), B.as<float>() + B.numel()),
      RequiresGrad);
}

inline eager::IndexTensor toEagerIdx(const Buffer &B) {
  return eager::IndexTensor::fromVec(
      B.shape(),
      std::vector<int64_t>(B.as<int64_t>(), B.as<int64_t>() + B.numel()));
}

/// The benchmark problem sizes (kept CPU-friendly; the paper's shapes are
/// GPU-scale — see EXPERIMENTS.md).
inline SubdivNetConfig subdivnetCfg() { return {4096, 64}; }
inline LongformerConfig longformerCfg() { return {512, 64, 32}; }
inline SoftRasConfig softrasCfg() { return {128, 32, 32, 0.05f}; }
inline GATConfig gatCfg() { return {2048, 32, 8}; }

} // namespace ftb

#endif // FT_BENCH_BENCH_COMMON_H
