//===- bench/fig18_ad_ablation.cpp - Paper Figure 18 ------------------------===//
//
// Ablation of Selective Intermediate Tensor Materialization (paper §6.4):
// FT(−) materializes every intermediate needed by the backward pass;
// FT(+) recomputes the cheap ones (§5.2). Forward and backward passes are
// timed separately, as in the paper's stacked bars.
//
// Expected shape (paper): FT(+) is 1.21x–6.83x faster overall, with the
// larger win in the forward pass (no tape writes for recomputed tensors).
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace ftb;

namespace {

struct AblationCase {
  Kernel Fwd, Bwd;
  std::map<std::string, Buffer> Store;
  std::map<std::string, Buffer *> FwdArgs, BwdArgs;
  size_t NumTapes = 0;
  int64_t TapeBytes = 0;          ///< Allocated tape buffer bytes.
  uint64_t TapeBytesAnalytic = 0; ///< grad()'s own accounting (GradResult).
  uint64_t PeakFwdBytes = 0;      ///< Peak live kernel-local heap, forward.
  uint64_t PeakBwdBytes = 0;      ///< Same for the backward pass.
};

AblationCase makeCase(const Func &F, const std::vector<std::string> &Wrt,
                      std::map<std::string, Buffer> Primal,
                      TapeStrategy Strategy) {
  auto G = grad(F, Wrt, Strategy);
  ftAssert(G.ok(), G.message());
  AblationCase C;
  C.Store = std::move(Primal);
  C.Fwd = compileAuto(G->Forward);
  C.Bwd = compileAuto(G->Backward);
  bindGradBuffers(*G, C.Store);
  for (const std::string &P : G->Forward.Params)
    C.FwdArgs[P] = &C.Store.at(P);
  for (const std::string &P : G->Backward.Params)
    C.BwdArgs[P] = &C.Store.at(P);
  C.NumTapes = G->Tapes.size();
  C.TapeBytesAnalytic = G->totalTapeBytes();
  for (const std::string &T : G->Tapes)
    C.TapeBytes += static_cast<int64_t>(C.Store.at(T).sizeBytes());
  // Memory accounting runs on separate profile-instrumented compiles of
  // the same scheduled functions, so the timed kernels stay pristine.
  // Peak live bytes covers kernel-allocated (heap) intermediates only;
  // tapes are caller-owned parameters and accounted separately above.
  CodegenOptions ProfOpts;
  ProfOpts.Profile = true;
  Kernel PF = compileAuto(G->Forward, ProfOpts);
  Kernel PB = compileAuto(G->Backward, ProfOpts);
  Status S1 = PF.run(C.FwdArgs);
  ftAssert(S1.ok(), S1.message());
  C.PeakFwdBytes = PF.rtStats().PeakBytes;
  Status S2 = PB.run(C.BwdArgs);
  ftAssert(S2.ok(), S2.message());
  C.PeakBwdBytes = PB.rtStats().PeakBytes;
  return C;
}

std::map<std::string, Buffer> subdivnetPrimal(const SubdivNetConfig &C) {
  SubdivNetData D = makeSubdivNetData(C);
  std::map<std::string, Buffer> P;
  P.emplace("e", std::move(D.E));
  P.emplace("adj", std::move(D.Adj));
  P.emplace("y", Buffer(DataType::Float32, {C.NFaces, C.Feats}));
  return P;
}

std::map<std::string, Buffer> longformerPrimal(const LongformerConfig &C) {
  LongformerData D = makeLongformerData(C);
  std::map<std::string, Buffer> P;
  P.emplace("Q", std::move(D.Q));
  P.emplace("K", std::move(D.K));
  P.emplace("V", std::move(D.V));
  P.emplace("y", Buffer(DataType::Float32, {C.SeqLen, C.Feats}));
  return P;
}

std::map<std::string, Buffer> softrasPrimal(const SoftRasConfig &C) {
  SoftRasData D = makeSoftRasData(C);
  std::map<std::string, Buffer> P;
  P.emplace("verts", std::move(D.Verts));
  P.emplace("px", std::move(D.Px));
  P.emplace("py", std::move(D.Py));
  P.emplace("img", Buffer(DataType::Float32, {C.numPixels()}));
  return P;
}

AblationCase &getCase(const char *Which, TapeStrategy S) {
  static std::map<std::string, AblationCase> Cache;
  std::string Key = std::string(Which) +
                    (S == TapeStrategy::Selective ? "+" : "-");
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  AblationCase C;
  if (std::string(Which) == "subdivnet") {
    SubdivNetConfig Cfg = subdivnetCfg();
    C = makeCase(buildSubdivNet(Cfg), {"e"}, subdivnetPrimal(Cfg), S);
  } else if (std::string(Which) == "longformer") {
    LongformerConfig Cfg = longformerCfg();
    C = makeCase(buildLongformer(Cfg), {"Q", "K", "V"},
                 longformerPrimal(Cfg), S);
  } else {
    SoftRasConfig Cfg = softrasCfg();
    C = makeCase(buildSoftRas(Cfg), {"verts"}, softrasPrimal(Cfg), S);
  }
  std::printf("# %-12s FT(%c): %zu tapes, %lld tape bytes "
              "(%llu analytic), peak live fwd %llu B / bwd %llu B\n",
              Which, S == TapeStrategy::Selective ? '+' : '-', C.NumTapes,
              static_cast<long long>(C.TapeBytes),
              static_cast<unsigned long long>(C.TapeBytesAnalytic),
              static_cast<unsigned long long>(C.PeakFwdBytes),
              static_cast<unsigned long long>(C.PeakBwdBytes));
  return Cache.emplace(Key, std::move(C)).first->second;
}

void runPass(benchmark::State &State, const char *Which, TapeStrategy S,
             bool Backward) {
  AblationCase &C = getCase(Which, S);
  if (Backward) {
    // One forward fill so tapes hold valid data.
    Status St = C.Fwd.run(C.FwdArgs);
    ftAssert(St.ok(), St.message());
  }
  for (auto _ : State) {
    Status St = Backward ? C.Bwd.run(C.BwdArgs) : C.Fwd.run(C.FwdArgs);
    ftAssert(St.ok(), St.message());
  }
  State.counters["tapes"] = static_cast<double>(C.NumTapes);
  State.counters["tape_bytes"] = static_cast<double>(C.TapeBytes);
  State.counters["tape_bytes_analytic"] =
      static_cast<double>(C.TapeBytesAnalytic);
  State.counters["peak_live_bytes"] =
      static_cast<double>(Backward ? C.PeakBwdBytes : C.PeakFwdBytes);
}

#define FT_ABLATION(NAME, KEY)                                                \
  void Fig18_##NAME##_FTplus_Forward(benchmark::State &S) {                   \
    runPass(S, KEY, TapeStrategy::Selective, false);                          \
  }                                                                           \
  BENCHMARK(Fig18_##NAME##_FTplus_Forward);                                   \
  void Fig18_##NAME##_FTminus_Forward(benchmark::State &S) {                  \
    runPass(S, KEY, TapeStrategy::All, false);                                \
  }                                                                           \
  BENCHMARK(Fig18_##NAME##_FTminus_Forward);                                  \
  void Fig18_##NAME##_FTplus_Backward(benchmark::State &S) {                  \
    runPass(S, KEY, TapeStrategy::Selective, true);                           \
  }                                                                           \
  BENCHMARK(Fig18_##NAME##_FTplus_Backward);                                  \
  void Fig18_##NAME##_FTminus_Backward(benchmark::State &S) {                 \
    runPass(S, KEY, TapeStrategy::All, true);                                 \
  }                                                                           \
  BENCHMARK(Fig18_##NAME##_FTminus_Backward);

FT_ABLATION(SubdivNet, "subdivnet")
FT_ABLATION(Longformer, "longformer")
FT_ABLATION(SoftRas, "softras")

} // namespace

// Defaults the JSON report to BENCH_fig18.json so the tape/peak-memory
// counters land next to the other BENCH_*.json artifacts.
int main(int argc, char **argv) {
  std::vector<char *> Args(argv, argv + argc);
  bool HasOut = false;
  for (int I = 1; I < argc; ++I)
    HasOut |= std::string(argv[I]).rfind("--benchmark_out", 0) == 0;
  static std::string OutArg = "--benchmark_out=BENCH_fig18.json";
  static std::string FmtArg = "--benchmark_out_format=json";
  if (!HasOut) {
    Args.push_back(OutArg.data());
    Args.push_back(FmtArg.data());
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
