//===- bench/fig18_ad_ablation.cpp - Paper Figure 18 ------------------------===//
//
// Ablation of Selective Intermediate Tensor Materialization (paper §6.4):
// FT(−) materializes every intermediate needed by the backward pass;
// FT(+) recomputes the cheap ones (§5.2). Forward and backward passes are
// timed separately, as in the paper's stacked bars.
//
// Expected shape (paper): FT(+) is 1.21x–6.83x faster overall, with the
// larger win in the forward pass (no tape writes for recomputed tensors).
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace ftb;

namespace {

struct AblationCase {
  Kernel Fwd, Bwd;
  std::map<std::string, Buffer> Store;
  std::map<std::string, Buffer *> FwdArgs, BwdArgs;
  size_t NumTapes = 0;
  int64_t TapeBytes = 0;
};

AblationCase makeCase(const Func &F, const std::vector<std::string> &Wrt,
                      std::map<std::string, Buffer> Primal,
                      TapeStrategy Strategy) {
  auto G = grad(F, Wrt, Strategy);
  ftAssert(G.ok(), G.message());
  AblationCase C;
  C.Store = std::move(Primal);
  C.Fwd = compileAuto(G->Forward);
  C.Bwd = compileAuto(G->Backward);
  bindGradBuffers(*G, C.Store);
  for (const std::string &P : G->Forward.Params)
    C.FwdArgs[P] = &C.Store.at(P);
  for (const std::string &P : G->Backward.Params)
    C.BwdArgs[P] = &C.Store.at(P);
  C.NumTapes = G->Tapes.size();
  for (const std::string &T : G->Tapes)
    C.TapeBytes += static_cast<int64_t>(C.Store.at(T).sizeBytes());
  return C;
}

std::map<std::string, Buffer> subdivnetPrimal(const SubdivNetConfig &C) {
  SubdivNetData D = makeSubdivNetData(C);
  std::map<std::string, Buffer> P;
  P.emplace("e", std::move(D.E));
  P.emplace("adj", std::move(D.Adj));
  P.emplace("y", Buffer(DataType::Float32, {C.NFaces, C.Feats}));
  return P;
}

std::map<std::string, Buffer> longformerPrimal(const LongformerConfig &C) {
  LongformerData D = makeLongformerData(C);
  std::map<std::string, Buffer> P;
  P.emplace("Q", std::move(D.Q));
  P.emplace("K", std::move(D.K));
  P.emplace("V", std::move(D.V));
  P.emplace("y", Buffer(DataType::Float32, {C.SeqLen, C.Feats}));
  return P;
}

std::map<std::string, Buffer> softrasPrimal(const SoftRasConfig &C) {
  SoftRasData D = makeSoftRasData(C);
  std::map<std::string, Buffer> P;
  P.emplace("verts", std::move(D.Verts));
  P.emplace("px", std::move(D.Px));
  P.emplace("py", std::move(D.Py));
  P.emplace("img", Buffer(DataType::Float32, {C.numPixels()}));
  return P;
}

AblationCase &getCase(const char *Which, TapeStrategy S) {
  static std::map<std::string, AblationCase> Cache;
  std::string Key = std::string(Which) +
                    (S == TapeStrategy::Selective ? "+" : "-");
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  AblationCase C;
  if (std::string(Which) == "subdivnet") {
    SubdivNetConfig Cfg = subdivnetCfg();
    C = makeCase(buildSubdivNet(Cfg), {"e"}, subdivnetPrimal(Cfg), S);
  } else if (std::string(Which) == "longformer") {
    LongformerConfig Cfg = longformerCfg();
    C = makeCase(buildLongformer(Cfg), {"Q", "K", "V"},
                 longformerPrimal(Cfg), S);
  } else {
    SoftRasConfig Cfg = softrasCfg();
    C = makeCase(buildSoftRas(Cfg), {"verts"}, softrasPrimal(Cfg), S);
  }
  std::printf("# %-12s FT(%c): %zu tapes, %lld tape bytes\n", Which,
              S == TapeStrategy::Selective ? '+' : '-', C.NumTapes,
              static_cast<long long>(C.TapeBytes));
  return Cache.emplace(Key, std::move(C)).first->second;
}

void runPass(benchmark::State &State, const char *Which, TapeStrategy S,
             bool Backward) {
  AblationCase &C = getCase(Which, S);
  if (Backward) {
    // One forward fill so tapes hold valid data.
    Status St = C.Fwd.run(C.FwdArgs);
    ftAssert(St.ok(), St.message());
  }
  for (auto _ : State) {
    Status St = Backward ? C.Bwd.run(C.BwdArgs) : C.Fwd.run(C.FwdArgs);
    ftAssert(St.ok(), St.message());
  }
  State.counters["tapes"] = static_cast<double>(C.NumTapes);
  State.counters["tape_bytes"] = static_cast<double>(C.TapeBytes);
}

#define FT_ABLATION(NAME, KEY)                                                \
  void Fig18_##NAME##_FTplus_Forward(benchmark::State &S) {                   \
    runPass(S, KEY, TapeStrategy::Selective, false);                          \
  }                                                                           \
  BENCHMARK(Fig18_##NAME##_FTplus_Forward);                                   \
  void Fig18_##NAME##_FTminus_Forward(benchmark::State &S) {                  \
    runPass(S, KEY, TapeStrategy::All, false);                                \
  }                                                                           \
  BENCHMARK(Fig18_##NAME##_FTminus_Forward);                                  \
  void Fig18_##NAME##_FTplus_Backward(benchmark::State &S) {                  \
    runPass(S, KEY, TapeStrategy::Selective, true);                           \
  }                                                                           \
  BENCHMARK(Fig18_##NAME##_FTplus_Backward);                                  \
  void Fig18_##NAME##_FTminus_Backward(benchmark::State &S) {                 \
    runPass(S, KEY, TapeStrategy::All, true);                                 \
  }                                                                           \
  BENCHMARK(Fig18_##NAME##_FTminus_Backward);

FT_ABLATION(SubdivNet, "subdivnet")
FT_ABLATION(Longformer, "longformer")
FT_ABLATION(SoftRas, "softras")

} // namespace

BENCHMARK_MAIN();
