//===- bench/fig17_metrics.cpp - Paper Figure 17 ----------------------------===//
//
// Analysis of the speedup (paper §6.3): for SubdivNet forward, count
//   - kernel invocations,
//   - DRAM-traffic proxy (bytes moved to/from tensor storage),
//   - cache-traffic proxy (bytes of distinct elements touched),
//   - floating-point operations,
// for the operator-based baseline and for FreeTensor. The paper measures
// these with nvprof on a V100; here the instrumented interpreter and the
// instrumented EagerTensor framework count the same events analytically.
//
// Expected shape (paper): FreeTensor needs 1 kernel vs >= 6; ~3% of the
// baseline's DRAM traffic; <= 100% of the FLOPs.
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace ftb;

namespace {

struct Metrics {
  int64_t Kernels = 0;
  int64_t DramBytes = 0;
  int64_t UniqueBytes = 0;
  int64_t Flops = 0;
};

Metrics measureFreeTensor() {
  SubdivNetConfig C = subdivnetCfg();
  SubdivNetData D = makeSubdivNetData(C);
  // Measure the program as compiled: after auto-scheduling, the temporaries
  // live in registers / scratch-pad (auto_mem_type), so their traffic does
  // not reach DRAM — exactly the effect the paper credits ("intermediate
  // results can now be kept in registers, shared memory or cache").
  Func F = autoScheduleFunc(buildSubdivNet(C));
  Buffer Y(DataType::Float32, {C.NFaces, C.Feats});
  InterpOptions Opts;
  Opts.SimulateCache = true; // LRU model in front of main memory.
  InterpStats S =
      interpret(F, {{"e", &D.E}, {"adj", &D.Adj}, {"y", &Y}}, Opts);
  Metrics M;
  M.Kernels = 1; // The whole layer is one fused kernel.
  M.DramBytes = S.SimDramBytes;
  // Distinct data the kernel must pull: inputs + outputs, once each.
  M.UniqueBytes = static_cast<int64_t>(D.E.sizeBytes() + D.Adj.sizeBytes() +
                                       Y.sizeBytes());
  M.Flops = S.Flops;
  return M;
}

Metrics measureEager() {
  // The baseline launches one kernel per operator; between kernels the
  // multi-MB intermediates do not survive the modeled 1 MiB cache, so its
  // per-kernel streaming traffic IS its DRAM traffic.
  SubdivNetConfig C = subdivnetCfg();
  SubdivNetData D = makeSubdivNetData(C);
  eager::resetStats();
  eager::clearTape();
  eager::Tensor E = toEager(D.E);
  eager::IndexTensor Adj = toEagerIdx(D.Adj);
  eager::Tensor Y = subdivnetEager(E, Adj, C);
  (void)Y;
  Metrics M;
  M.Kernels = eager::stats().KernelLaunches;
  M.DramBytes = eager::stats().bytesMoved();
  // Every materialized intermediate is traffic the caches cannot absorb
  // across kernel boundaries: allocated bytes approximate the distinct
  // footprint.
  M.UniqueBytes = eager::stats().BytesAllocated;
  M.Flops = eager::stats().Flops;
  return M;
}

/// What the auto-scheduler did to get there: the per-rule tried / applied /
/// rejected tally sourced from the schedule decision audit log.
void printRuleTally() {
  SubdivNetConfig C = subdivnetCfg();
  AutoScheduleReport Rep;
  (void)autoScheduleFunc(buildSubdivNet(C), {}, &Rep);
  std::printf("=== auto-schedule rule tally (SubdivNet) ===\n");
  std::printf("%-20s %8s %8s %8s\n", "rule", "tried", "applied", "rejected");
  for (const auto &[Rule, T] : Rep.Rules)
    std::printf("%-20s %8d %8d %8d\n", Rule.c_str(), T.Tried, T.Applied,
                T.Rejected);
}

void printTable(const Metrics &FT, const Metrics &EG) {
  std::printf("\n=== Figure 17: analysis of the SubdivNet speedup ===\n");
  std::printf("%-28s %16s %16s %10s\n", "metric", "baseline(Eager)",
              "FreeTensor", "FT/base");
  auto Row = [](const char *Name, int64_t Base, int64_t Ft) {
    std::printf("%-28s %16lld %16lld %9.2f%%\n", Name,
                static_cast<long long>(Base), static_cast<long long>(Ft),
                100.0 * double(Ft) / double(Base));
  };
  Row("kernel invocations", EG.Kernels, FT.Kernels);
  Row("DRAM bytes (1MiB LRU model)", EG.DramBytes, FT.DramBytes);
  Row("unique footprint bytes", EG.UniqueBytes, FT.UniqueBytes);
  Row("FLOPs", EG.Flops, FT.Flops);
  std::printf("paper (V100): 1 vs >=6 kernels; DRAM 3.31%%; L2 18.38%%; "
              "FLOP 79.72%%\n\n");
}

void Fig17_Metrics(benchmark::State &State) {
  static Metrics FT = measureFreeTensor();
  static Metrics EG = measureEager();
  for (auto _ : State) {
    benchmark::DoNotOptimize(FT.Kernels);
    benchmark::DoNotOptimize(EG.Kernels);
  }
  State.counters["ft_kernels"] = static_cast<double>(FT.Kernels);
  State.counters["eager_kernels"] = static_cast<double>(EG.Kernels);
  State.counters["dram_ratio_pct"] =
      100.0 * double(FT.DramBytes) / double(EG.DramBytes);
  State.counters["flop_ratio_pct"] =
      100.0 * double(FT.Flops) / double(EG.Flops);
}
BENCHMARK(Fig17_Metrics)->Iterations(1);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printTable(measureFreeTensor(), measureEager());
  printRuleTally();
  return 0;
}
