//===- bench/profile_overhead_bench.cpp - Profiler overhead ----------------===//
//
// Cost of statement-level profile instrumentation (ISSUE 3) on the four
// §6.1 forward workloads: each is auto-scheduled once, then JIT-compiled
// twice from the same scheduled Func — profile off and profile on — and
// the two kernels are timed in alternated batches so frequency scaling and
// cache state hit both modes equally. Writes BENCH_profile_overhead.json.
//
// Also asserts the zero-cost-when-off contract: the profile-off emission
// must be byte-identical to a default generateCpp() of the same Func
// (empty diff), so shipping the profiler cannot perturb production code.
//
// Targets (ISSUE 3): instrumented overhead < 10% per workload.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "codegen/codegen.h"

using namespace ftb;

namespace {

double seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Seconds per kernel run over one batch.
double timeRuns(Kernel &K, std::map<std::string, Buffer *> &Args, int Runs) {
  double T0 = seconds();
  for (int I = 0; I < Runs; ++I) {
    Status S = K.run(Args);
    ftAssert(S.ok(), S.message());
  }
  return (seconds() - T0) / Runs;
}

struct WorkloadResult {
  std::string Name;
  double OffMs = 0;
  double OnMs = 0;
  double OverheadPct = 0;
  bool EmissionIdentical = false;
};

/// Schedules \p F once, checks the profile-off emission is byte-identical
/// to the default emission, compiles both modes, and A/Bs them.
WorkloadResult measure(const std::string &Name, Func F,
                       std::map<std::string, Buffer *> Args, int RunsPerBatch) {
  WorkloadResult R;
  R.Name = Name;

  Func Opt = autoScheduleFunc(std::move(F));

  // Zero-cost-when-off: CodegenOptions{} must not change the emission.
  std::string Default = generateCpp(Opt);
  std::string Off = generateCpp(Opt, CodegenOptions{});
  R.EmissionIdentical = (Default == Off);

  auto KOff = Kernel::compile(Opt, CodegenOptions{});
  ftAssert(KOff.ok(), KOff.message());
  CodegenOptions ProfOpts;
  ProfOpts.Profile = true;
  auto KOn = Kernel::compile(Opt, ProfOpts);
  ftAssert(KOn.ok(), KOn.message());

  // Warm up the thread pool and caches in both kernels.
  timeRuns(*KOff, Args, 20);
  timeRuns(*KOn, Args, 20);

  constexpr int Batches = 13;
  double BestOff = 1e30, BestOn = 1e30;
  for (int B = 0; B < Batches; ++B) {
    BestOff = std::min(BestOff, timeRuns(*KOff, Args, RunsPerBatch));
    BestOn = std::min(BestOn, timeRuns(*KOn, Args, RunsPerBatch));
  }

  R.OffMs = BestOff * 1e3;
  R.OnMs = BestOn * 1e3;
  R.OverheadPct = (BestOn - BestOff) / BestOff * 100.0;
  return R;
}

} // namespace

int main() {
  WorkloadResult Results[4];

  {
    SubdivNetConfig C = subdivnetCfg();
    SubdivNetData D = makeSubdivNetData(C);
    Buffer Y(DataType::Float32, {C.NFaces, C.Feats});
    Results[0] = measure(
        "subdivnet", buildSubdivNet(C),
        {{"e", &D.E}, {"adj", &D.Adj}, {"y", &Y}}, 100);
  }
  {
    LongformerConfig C = longformerCfg();
    LongformerData D = makeLongformerData(C);
    Buffer Y(DataType::Float32, {C.SeqLen, C.Feats});
    Results[1] = measure(
        "longformer", buildLongformer(C),
        {{"Q", &D.Q}, {"K", &D.K}, {"V", &D.V}, {"y", &Y}}, 100);
  }
  {
    SoftRasConfig C = softrasCfg();
    SoftRasData D = makeSoftRasData(C);
    Buffer Img(DataType::Float32, {C.numPixels()});
    Results[2] = measure(
        "softras", buildSoftRas(C),
        {{"verts", &D.Verts}, {"px", &D.Px}, {"py", &D.Py}, {"img", &Img}},
        20);
  }
  {
    GATConfig C = gatCfg();
    GATData D = makeGATData(C);
    Buffer Y(DataType::Float32, {C.NNodes, C.Feats});
    Results[3] = measure("gat", buildGAT(C),
                         {{"h", &D.H},
                          {"adj", &D.Adj},
                          {"a1", &D.A1},
                          {"a2", &D.A2},
                          {"y", &Y}},
                         100);
  }

  bool Ok = true;
  double WorstPct = -1e30;
  for (const WorkloadResult &R : Results) {
    std::printf("%-10s off %8.3f ms  on %8.3f ms  overhead %+6.2f%%  "
                "emission-identical %s\n",
                R.Name.c_str(), R.OffMs, R.OnMs, R.OverheadPct,
                R.EmissionIdentical ? "yes" : "NO");
    Ok = Ok && R.EmissionIdentical && R.OverheadPct < 10.0;
    WorstPct = std::max(WorstPct, R.OverheadPct);
  }

  std::FILE *F = std::fopen("BENCH_profile_overhead.json", "w");
  ftAssert(F != nullptr, "could not open BENCH_profile_overhead.json");
  std::fprintf(F, "{\n  \"benchmark\": \"profile_overhead_fig16a_forward\",\n"
                  "  \"target_pct\": 10.0,\n  \"workloads\": [\n");
  for (int I = 0; I < 4; ++I) {
    const WorkloadResult &R = Results[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"run_ms_off\": %.6f, "
                 "\"run_ms_on\": %.6f, \"overhead_pct\": %.4f, "
                 "\"emission_identical\": %s}%s\n",
                 R.Name.c_str(), R.OffMs, R.OnMs, R.OverheadPct,
                 R.EmissionIdentical ? "true" : "false", I < 3 ? "," : "");
  }
  std::fprintf(F, "  ],\n  \"worst_overhead_pct\": %.4f\n}\n", WorstPct);
  std::fclose(F);

  std::printf("%s: worst instrumented overhead %.2f%% (target < 10%%)\n",
              Ok ? "PASS" : "FAIL", WorstPct);
  return Ok ? 0 : 1;
}
