//===- bench/sparse_bench.cpp - Sparse workloads vs eager baselines -------===//
//
// The fig16-style comparison for the ragged subsystem (DESIGN.md §17):
// for each sparse workload — SpMM, SDDMM, segment-softmax — time the
// EagerTensor operator chain (gather / compute / scatter, every step
// materialized at nnz granularity) against the compiled FreeTensor
// program that iterates CSR segments in place with data-dependent loop
// bounds. The DSL side is served exactly as the executor's hot tier
// would serve it: autoscheduled (row loops proven parallel from the
// indptr monotonicity facts) and compiled at -O3.
//
// Outputs are cross-checked against each other before timing; the eager
// segment-softmax is unstabilized, so its tolerance is looser than float
// round-off. Acceptance: >= 1.3x on at least two of the three workloads
// (reported as "second_best_speedup"). Results land in BENCH_sparse.json
// and are guarded by bench_guard.py.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <unistd.h>
#include <vector>

#include "autoschedule/autoschedule.h"
#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "opframework/eager.h"
#include "pass/simplify.h"
#include "serve/telemetry.h"
#include "support/error.h"
#include "workloads/sparse_workloads.h"

using namespace ft;
using namespace ft::workloads;

namespace {

double seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Median-of-reps wall time of one thunk, seconds. Two warm-up runs, then
/// enough reps to accumulate ~80 ms of measurement.
double timeThunk(const std::function<void()> &Run) {
  for (int I = 0; I < 2; ++I)
    Run();
  std::vector<double> Times;
  double Budget = 0;
  while ((Budget < 0.08 || Times.size() < 5) && Times.size() < 200) {
    double T0 = seconds();
    Run();
    double Dt = seconds() - T0;
    Times.push_back(Dt);
    Budget += Dt;
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

double timeKernel(const Kernel &K, const std::map<std::string, Buffer *> &A) {
  return timeThunk([&] { ftAssert(K.run(A).ok(), "timed run failed"); });
}

/// Compiles a sparse program the way the serving plane's hot tier does:
/// simplify, autoschedule (segment loops keep their data-dependent
/// bounds; row loops are parallelized when legal), -O3.
Kernel hotKernel(const Func &F) {
  auto K = Kernel::compile(autoScheduleFunc(simplify(F)), CodegenOptions{},
                           "-O3");
  ftAssert(K.ok(), K.message());
  return *K;
}

double maxAbsDiff(const float *A, const float *B, int64_t N) {
  double M = 0;
  for (int64_t I = 0; I < N; ++I)
    M = std::max(M, double(std::fabs(A[I] - B[I])));
  return M;
}

struct Row {
  std::string Name;
  int64_t Nnz = 0;
  double EagerMs = 0, FtMs = 0, Speedup = 0, MaxDiff = 0;
  bool DiffOk = false;
};

Row runSpMM() {
  SpMMConfig C;
  SpMMData D = makeSpMMData(C);
  Row R;
  R.Name = "spmm";
  R.Nnz = D.A.Nnz;

  // Eager chain: gather X rows at nnz, scale, scatter-add into Y.
  eager::IndexTensor RowIds = csrRowIds(D.A);
  eager::IndexTensor Cols = csrCols(D.A);
  eager::Tensor Val = csrVals(D.A);
  eager::Tensor X = eager::Tensor::fromVec(
      {C.Cols, C.Feats},
      std::vector<float>(D.X.as<float>(), D.X.as<float>() + D.X.numel()));
  eager::Tensor YE;
  R.EagerMs = timeThunk([&] {
                eager::clearTape();
                YE = spmmEager(Val, RowIds, Cols, X, C.Rows);
              }) *
              1e3;

  Kernel K = hotKernel(buildSpMM(C, D.A.Nnz));
  Buffer Y(DataType::Float32, {C.Rows, C.Feats});
  std::map<std::string, Buffer *> Args = {{"indptr", &D.A.Indptr},
                                          {"indices", &D.A.Indices},
                                          {"val", &D.A.Val},
                                          {"x", &D.X},
                                          {"y", &Y}};
  ftAssert(K.run(Args).ok(), "spmm run failed");
  R.MaxDiff = maxAbsDiff(Y.as<float>(), YE.data(), Y.numel());
  R.DiffOk = R.MaxDiff <= 1e-3;
  R.FtMs = timeKernel(K, Args) * 1e3;
  R.Speedup = R.EagerMs / R.FtMs;
  return R;
}

Row runSDDMM() {
  SDDMMConfig C;
  SDDMMData D = makeSDDMMData(C);
  Row R;
  R.Name = "sddmm";
  R.Nnz = D.A.Nnz;

  eager::IndexTensor RowIds = csrRowIds(D.A);
  eager::IndexTensor Cols = csrCols(D.A);
  eager::Tensor Val = csrVals(D.A);
  auto toTensor = [](const Buffer &B, std::vector<int64_t> Shape) {
    return eager::Tensor::fromVec(
        std::move(Shape),
        std::vector<float>(B.as<float>(), B.as<float>() + B.numel()));
  };
  eager::Tensor Da = toTensor(D.Da, {C.Rows, C.Feats});
  eager::Tensor Db = toTensor(D.Db, {C.Cols, C.Feats});
  eager::Tensor OutE;
  R.EagerMs = timeThunk([&] {
                eager::clearTape();
                OutE = sddmmEager(Da, Db, Val, RowIds, Cols);
              }) *
              1e3;

  Kernel K = hotKernel(buildSDDMM(C, D.A.Nnz));
  Buffer Out(DataType::Float32, {D.A.Nnz});
  std::map<std::string, Buffer *> Args = {{"indptr", &D.A.Indptr},
                                          {"indices", &D.A.Indices},
                                          {"val", &D.A.Val},
                                          {"a", &D.Da},
                                          {"b", &D.Db},
                                          {"out_val", &Out}};
  ftAssert(K.run(Args).ok(), "sddmm run failed");
  R.MaxDiff = maxAbsDiff(Out.as<float>(), OutE.data(), Out.numel());
  R.DiffOk = R.MaxDiff <= 1e-3;
  R.FtMs = timeKernel(K, Args) * 1e3;
  R.Speedup = R.EagerMs / R.FtMs;
  return R;
}

Row runSegSoftmax() {
  SegSoftmaxConfig C;
  SegSoftmaxData D = makeSegSoftmaxData(C);
  Row R;
  R.Name = "segsoftmax";
  R.Nnz = D.G.Nnz;

  eager::IndexTensor RowIds = csrRowIds(D.G);
  eager::IndexTensor Src = csrCols(D.G);
  eager::Tensor Logit = csrVals(D.G);
  eager::Tensor H = eager::Tensor::fromVec(
      {C.Nodes, C.Feats},
      std::vector<float>(D.H.as<float>(), D.H.as<float>() + D.H.numel()));
  eager::Tensor YE;
  R.EagerMs = timeThunk([&] {
                eager::clearTape();
                YE = segSoftmaxEager(Logit, RowIds, Src, H, C.Nodes);
              }) *
              1e3;

  Kernel K = hotKernel(buildSegSoftmax(C, D.G.Nnz));
  Buffer Y(DataType::Float32, {C.Nodes, C.Feats});
  std::map<std::string, Buffer *> Args = {{"indptr", &D.G.Indptr},
                                          {"indices", &D.G.Indices},
                                          {"e", &D.G.Val},
                                          {"h", &D.H},
                                          {"y", &Y}};
  ftAssert(K.run(Args).ok(), "segsoftmax run failed");
  // The eager chain skips max-stabilization, so allow looser agreement.
  R.MaxDiff = maxAbsDiff(Y.as<float>(), YE.data(), Y.numel());
  R.DiffOk = R.MaxDiff <= 1e-3;
  R.FtMs = timeKernel(K, Args) * 1e3;
  R.Speedup = R.EagerMs / R.FtMs;
  return R;
}

} // namespace

int main() {
  char Tmpl[] = "/tmp/ftsparsebench.XXXXXX";
  ftAssert(::mkdtemp(Tmpl) != nullptr, "mkdtemp failed");
  ::setenv("FT_CACHE_DIR", Tmpl, 1);
  ::setenv("FT_CACHE", "1", 1);
  serve::telemetry::setEnabled(false);
  serve::telemetry::reset();
  kernel_cache::memReset();

  std::vector<Row> Rows = {runSpMM(), runSDDMM(), runSegSoftmax()};

  bool DiffsOk = true;
  for (const Row &R : Rows) {
    DiffsOk = DiffsOk && R.DiffOk;
    std::printf("%-10s nnz %7lld | eager %8.3f ms | freetensor %8.3f ms | "
                "speedup %.2fx | maxdiff %.2e%s\n",
                R.Name.c_str(), (long long)R.Nnz, R.EagerMs, R.FtMs,
                R.Speedup, R.MaxDiff, R.DiffOk ? "" : " (MISMATCH)");
  }

  std::vector<double> Speedups;
  for (const Row &R : Rows)
    Speedups.push_back(R.Speedup);
  std::sort(Speedups.rbegin(), Speedups.rend());
  double SecondBest = Speedups.size() >= 2 ? Speedups[1] : 0;
  bool Ok = DiffsOk && SecondBest >= 1.3;
  std::printf("second-best speedup %.2fx (acceptance: >= 1.30x on two of "
              "three)\n",
              SecondBest);

  std::FILE *F = std::fopen("BENCH_sparse.json", "w");
  ftAssert(F != nullptr, "could not open BENCH_sparse.json");
  std::fprintf(F, "{\n  \"benchmark\": \"sparse\",\n");
  std::fprintf(F, "  \"workloads\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I)
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"nnz\": %lld, \"eager_ms\": %.4f, "
                 "\"ft_ms\": %.4f, \"speedup\": %.4f, \"max_diff\": "
                 "%.3e}%s\n",
                 Rows[I].Name.c_str(), (long long)Rows[I].Nnz, Rows[I].EagerMs,
                 Rows[I].FtMs, Rows[I].Speedup, Rows[I].MaxDiff,
                 I + 1 < Rows.size() ? "," : "");
  std::fprintf(F, "  ],\n");
  std::fprintf(F, "  \"second_best_speedup\": %.4f,\n", SecondBest);
  std::fprintf(F, "  \"pass\": %s\n}\n", Ok ? "true" : "false");
  std::fclose(F);

  std::system(("rm -rf '" + std::string(Tmpl) + "'").c_str());
  std::printf("%s\n", Ok ? "PASS" : "FAIL");
  return Ok ? 0 : 1;
}
