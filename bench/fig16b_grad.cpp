//===- bench/fig16b_grad.cpp - Paper Figure 16(b) ---------------------------===//
//
// End-to-end time *with* differentiation (forward + backward pass), for
// SubdivNet, Longformer, and SoftRas (the paper omits GAT's gradient).
//
//   FreeTensor : grad() source transformation (selective materialization),
//                both passes auto-scheduled and JIT-compiled
//   Eager      : the operator baseline's tape autograd, which materializes
//                every intermediate (the cause of the paper's up-to-127x
//                gap and of the Longformer OOM on GPU)
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace ftb;

namespace {

/// Compiled forward+backward pair with bound buffers.
struct GradBench {
  Kernel Fwd, Bwd;
  std::map<std::string, Buffer> Store;
  std::map<std::string, Buffer *> FwdArgs, BwdArgs;

  void finalize(const GradResult &G) {
    bindGradBuffers(G, Store);
    for (const std::string &P : G.Forward.Params)
      FwdArgs[P] = &Store.at(P);
    for (const std::string &P : G.Backward.Params)
      BwdArgs[P] = &Store.at(P);
  }

  void runBoth() {
    Status S1 = Fwd.run(FwdArgs);
    ftAssert(S1.ok(), S1.message());
    Status S2 = Bwd.run(BwdArgs);
    ftAssert(S2.ok(), S2.message());
  }
};

GradBench makeGradBench(const Func &F, const std::vector<std::string> &Wrt,
                        std::map<std::string, Buffer> Primal) {
  auto G = grad(F, Wrt, TapeStrategy::Selective);
  ftAssert(G.ok(), G.message());
  GradBench B;
  B.Store = std::move(Primal);
  B.Fwd = compileAuto(G->Forward);
  B.Bwd = compileAuto(G->Backward);
  B.finalize(*G);
  return B;
}

} // namespace

static void Fig16b_SubdivNet_FreeTensor(benchmark::State &State) {
  static GradBench B = [] {
    SubdivNetConfig C = subdivnetCfg();
    SubdivNetData D = makeSubdivNetData(C);
    std::map<std::string, Buffer> P;
    P.emplace("e", std::move(D.E));
    P.emplace("adj", std::move(D.Adj));
    P.emplace("y", Buffer(DataType::Float32, {C.NFaces, C.Feats}));
    return makeGradBench(buildSubdivNet(C), {"e"}, std::move(P));
  }();
  for (auto _ : State)
    B.runBoth();
}
BENCHMARK(Fig16b_SubdivNet_FreeTensor);

static void Fig16b_SubdivNet_Eager(benchmark::State &State) {
  static SubdivNetConfig C = subdivnetCfg();
  static SubdivNetData D = makeSubdivNetData(C);
  static eager::Tensor E = toEager(D.E, /*RequiresGrad=*/true);
  static eager::IndexTensor Adj = toEagerIdx(D.Adj);
  for (auto _ : State) {
    eager::clearTape();
    eager::Tensor Y = subdivnetEager(E, Adj, C);
    eager::backward(Y);
    benchmark::DoNotOptimize(E.grad().data());
  }
}
BENCHMARK(Fig16b_SubdivNet_Eager);

static void Fig16b_Longformer_FreeTensor(benchmark::State &State) {
  static GradBench B = [] {
    LongformerConfig C = longformerCfg();
    LongformerData D = makeLongformerData(C);
    std::map<std::string, Buffer> P;
    P.emplace("Q", std::move(D.Q));
    P.emplace("K", std::move(D.K));
    P.emplace("V", std::move(D.V));
    P.emplace("y", Buffer(DataType::Float32, {C.SeqLen, C.Feats}));
    return makeGradBench(buildLongformer(C), {"Q", "K", "V"}, std::move(P));
  }();
  for (auto _ : State)
    B.runBoth();
}
BENCHMARK(Fig16b_Longformer_FreeTensor);

static void Fig16b_Longformer_Eager(benchmark::State &State) {
  static LongformerConfig C = longformerCfg();
  static LongformerData D = makeLongformerData(C);
  static eager::Tensor Q = toEager(D.Q, true), K = toEager(D.K, true),
                       V = toEager(D.V, true);
  for (auto _ : State) {
    eager::clearTape();
    eager::Tensor Y = longformerEager(Q, K, V, C);
    eager::backward(Y);
    benchmark::DoNotOptimize(Q.grad().data());
  }
}
BENCHMARK(Fig16b_Longformer_Eager);

static void Fig16b_SoftRas_FreeTensor(benchmark::State &State) {
  static GradBench B = [] {
    SoftRasConfig C = softrasCfg();
    SoftRasData D = makeSoftRasData(C);
    std::map<std::string, Buffer> P;
    P.emplace("verts", std::move(D.Verts));
    P.emplace("px", std::move(D.Px));
    P.emplace("py", std::move(D.Py));
    P.emplace("img", Buffer(DataType::Float32, {C.numPixels()}));
    return makeGradBench(buildSoftRas(C), {"verts"}, std::move(P));
  }();
  for (auto _ : State)
    B.runBoth();
}
BENCHMARK(Fig16b_SoftRas_FreeTensor);

static void Fig16b_SoftRas_Eager(benchmark::State &State) {
  static SoftRasConfig C = softrasCfg();
  static SoftRasData D = makeSoftRasData(C);
  static SoftRasEagerInputs In = makeSoftRasEagerInputs(D, true);
  for (auto _ : State) {
    eager::clearTape();
    eager::Tensor Img = softrasEager(In, C);
    eager::backward(Img);
    benchmark::DoNotOptimize(In.Vx[0].grad().data());
  }
}
BENCHMARK(Fig16b_SoftRas_Eager);

BENCHMARK_MAIN();
