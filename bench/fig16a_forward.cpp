//===- bench/fig16a_forward.cpp - Paper Figure 16(a) -----------------------===//
//
// End-to-end time *without* differentiation (paper §6.2, Fig. 16(a)):
// every workload in three implementations —
//   FreeTensor : DSL program, auto-scheduled, JIT-compiled to native code
//   Eager      : the operator-based baseline (PyTorch/JAX stand-in)
//   Naive      : plain single-thread loops (the fine-grained Julia stand-in)
//
// Expected shape (paper: FreeTensor 2.08x geomean over the best baseline):
// FreeTensor beats Eager on every workload by avoiding operator-boundary
// materialization; Naive sits between (no redundancy, no optimization).
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace ftb;

//===----------------------------------------------------------------------===//
// SubdivNet
//===----------------------------------------------------------------------===//

static void Fig16a_SubdivNet_FreeTensor(benchmark::State &State) {
  static SubdivNetConfig C = subdivnetCfg();
  static SubdivNetData D = makeSubdivNetData(C);
  static Kernel K = compileAuto(buildSubdivNet(C));
  static Buffer Y(DataType::Float32, {C.NFaces, C.Feats});
  std::map<std::string, Buffer *> Args{
      {"e", &D.E}, {"adj", &D.Adj}, {"y", &Y}};
  for (auto _ : State) {
    Status S = K.run(Args);
    ftAssert(S.ok(), S.message());
    benchmark::DoNotOptimize(Y.raw());
  }
}
BENCHMARK(Fig16a_SubdivNet_FreeTensor);

static void Fig16a_SubdivNet_Eager(benchmark::State &State) {
  static SubdivNetConfig C = subdivnetCfg();
  static SubdivNetData D = makeSubdivNetData(C);
  static eager::Tensor E = toEager(D.E);
  static eager::IndexTensor Adj = toEagerIdx(D.Adj);
  for (auto _ : State) {
    eager::clearTape();
    eager::Tensor Y = subdivnetEager(E, Adj, C);
    benchmark::DoNotOptimize(Y.data());
  }
}
BENCHMARK(Fig16a_SubdivNet_Eager);

static void Fig16a_SubdivNet_Naive(benchmark::State &State) {
  static SubdivNetConfig C = subdivnetCfg();
  static SubdivNetData D = makeSubdivNetData(C);
  static std::vector<float> Y(C.NFaces * C.Feats);
  for (auto _ : State) {
    subdivnetNaive(C, D.E.as<float>(), D.Adj.as<int64_t>(), Y.data());
    benchmark::DoNotOptimize(Y.data());
  }
}
BENCHMARK(Fig16a_SubdivNet_Naive);

//===----------------------------------------------------------------------===//
// Longformer
//===----------------------------------------------------------------------===//

static void Fig16a_Longformer_FreeTensor(benchmark::State &State) {
  static LongformerConfig C = longformerCfg();
  static LongformerData D = makeLongformerData(C);
  static Kernel K = compileAuto(buildLongformer(C));
  static Buffer Y(DataType::Float32, {C.SeqLen, C.Feats});
  std::map<std::string, Buffer *> Args{
      {"Q", &D.Q}, {"K", &D.K}, {"V", &D.V}, {"y", &Y}};
  for (auto _ : State) {
    Status S = K.run(Args);
    ftAssert(S.ok(), S.message());
    benchmark::DoNotOptimize(Y.raw());
  }
}
BENCHMARK(Fig16a_Longformer_FreeTensor);

static void Fig16a_Longformer_Eager(benchmark::State &State) {
  static LongformerConfig C = longformerCfg();
  static LongformerData D = makeLongformerData(C);
  static eager::Tensor Q = toEager(D.Q), K = toEager(D.K), V = toEager(D.V);
  for (auto _ : State) {
    eager::clearTape();
    eager::Tensor Y = longformerEager(Q, K, V, C);
    benchmark::DoNotOptimize(Y.data());
  }
}
BENCHMARK(Fig16a_Longformer_Eager);

static void Fig16a_Longformer_Naive(benchmark::State &State) {
  static LongformerConfig C = longformerCfg();
  static LongformerData D = makeLongformerData(C);
  static std::vector<float> Y(C.SeqLen * C.Feats);
  for (auto _ : State) {
    longformerNaive(C, D.Q.as<float>(), D.K.as<float>(), D.V.as<float>(),
                    Y.data());
    benchmark::DoNotOptimize(Y.data());
  }
}
BENCHMARK(Fig16a_Longformer_Naive);

//===----------------------------------------------------------------------===//
// SoftRas
//===----------------------------------------------------------------------===//

static void Fig16a_SoftRas_FreeTensor(benchmark::State &State) {
  static SoftRasConfig C = softrasCfg();
  static SoftRasData D = makeSoftRasData(C);
  static Kernel K = compileAuto(buildSoftRas(C));
  static Buffer Img(DataType::Float32, {C.numPixels()});
  std::map<std::string, Buffer *> Args{
      {"verts", &D.Verts}, {"px", &D.Px}, {"py", &D.Py}, {"img", &Img}};
  for (auto _ : State) {
    Status S = K.run(Args);
    ftAssert(S.ok(), S.message());
    benchmark::DoNotOptimize(Img.raw());
  }
}
BENCHMARK(Fig16a_SoftRas_FreeTensor);

static void Fig16a_SoftRas_Eager(benchmark::State &State) {
  static SoftRasConfig C = softrasCfg();
  static SoftRasData D = makeSoftRasData(C);
  static SoftRasEagerInputs In = makeSoftRasEagerInputs(D, false);
  for (auto _ : State) {
    eager::clearTape();
    eager::Tensor Img = softrasEager(In, C);
    benchmark::DoNotOptimize(Img.data());
  }
}
BENCHMARK(Fig16a_SoftRas_Eager);

static void Fig16a_SoftRas_Naive(benchmark::State &State) {
  static SoftRasConfig C = softrasCfg();
  static SoftRasData D = makeSoftRasData(C);
  static std::vector<float> Img(C.numPixels());
  for (auto _ : State) {
    softrasNaive(C, D.Verts.as<float>(), D.Px.as<float>(), D.Py.as<float>(),
                 Img.data());
    benchmark::DoNotOptimize(Img.data());
  }
}
BENCHMARK(Fig16a_SoftRas_Naive);

//===----------------------------------------------------------------------===//
// GAT
//===----------------------------------------------------------------------===//

static void Fig16a_GAT_FreeTensor(benchmark::State &State) {
  static GATConfig C = gatCfg();
  static GATData D = makeGATData(C);
  static Kernel K = compileAuto(buildGAT(C));
  static Buffer Y(DataType::Float32, {C.NNodes, C.Feats});
  std::map<std::string, Buffer *> Args{{"h", &D.H},
                                       {"adj", &D.Adj},
                                       {"a1", &D.A1},
                                       {"a2", &D.A2},
                                       {"y", &Y}};
  for (auto _ : State) {
    Status S = K.run(Args);
    ftAssert(S.ok(), S.message());
    benchmark::DoNotOptimize(Y.raw());
  }
}
BENCHMARK(Fig16a_GAT_FreeTensor);

static void Fig16a_GAT_Eager(benchmark::State &State) {
  static GATConfig C = gatCfg();
  static GATData D = makeGATData(C);
  static eager::Tensor H = toEager(D.H), A1 = toEager(D.A1),
                       A2 = toEager(D.A2);
  static eager::IndexTensor AdjFlat = [] {
    GATConfig C2 = gatCfg();
    GATData D2 = makeGATData(C2);
    return eager::IndexTensor::fromVec(
        {C2.NNodes * C2.Degree},
        std::vector<int64_t>(D2.Adj.as<int64_t>(),
                             D2.Adj.as<int64_t>() + D2.Adj.numel()));
  }();
  static eager::IndexTensor SelfFlat = [] {
    GATConfig C2 = gatCfg();
    std::vector<int64_t> V(C2.NNodes * C2.Degree);
    for (int64_t I = 0; I < C2.NNodes; ++I)
      for (int64_t M = 0; M < C2.Degree; ++M)
        V[I * C2.Degree + M] = I;
    return eager::IndexTensor::fromVec({C2.NNodes * C2.Degree}, V);
  }();
  for (auto _ : State) {
    eager::clearTape();
    eager::Tensor Y = gatEager(H, AdjFlat, SelfFlat, A1, A2, C);
    benchmark::DoNotOptimize(Y.data());
  }
}
BENCHMARK(Fig16a_GAT_Eager);

static void Fig16a_GAT_Naive(benchmark::State &State) {
  static GATConfig C = gatCfg();
  static GATData D = makeGATData(C);
  static std::vector<float> Y(C.NNodes * C.Feats);
  for (auto _ : State) {
    gatNaive(C, D.H.as<float>(), D.Adj.as<int64_t>(), D.A1.as<float>(),
             D.A2.as<float>(), Y.data());
    benchmark::DoNotOptimize(Y.data());
  }
}
BENCHMARK(Fig16a_GAT_Naive);

BENCHMARK_MAIN();
