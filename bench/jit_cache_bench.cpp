//===- bench/jit_cache_bench.cpp - Kernel-cache cold/warm speedup ----------===//
//
// The content-addressed kernel cache (ISSUE 4) on the four §6.1 forward
// workloads: each is auto-scheduled once, then acquired three times against
// a fresh private cache directory — cold (host compiler runs), warm via the
// in-process memory tier, and warm via the on-disk store (memory tier
// dropped first). Outputs of all three kernels must be bit-identical, and
// each warm path must be >= 20x faster than the cold compile.
//
// A second section runs the measurement-driven autoscheduler search twice
// with the same seed — cold and warm — plus once with FT_CACHE=0, showing
// the fingerprint dedup (candidates_deduped > 0) and the wall-clock win of
// searching on a warm cache. Writes BENCH_jit_cache.json.
//
//===----------------------------------------------------------------------===//

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_common.h"
#include "codegen/kernel_cache.h"
#include "frontend/builder.h"

using namespace ftb;

namespace {

double seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CacheResult {
  std::string Name;
  double ColdSec = 0;
  double WarmMemSec = 0;
  double WarmDiskSec = 0;
  bool BitIdentical = false;
  double speedupMem() const { return ColdSec / WarmMemSec; }
  double speedupDisk() const { return ColdSec / WarmDiskSec; }
};

std::vector<char> outputBytes(const std::map<std::string, Buffer *> &Args,
                              const std::vector<std::string> &Outputs) {
  std::vector<char> Out;
  for (const std::string &O : Outputs) {
    Buffer &B = *Args.at(O);
    const char *P = reinterpret_cast<const char *>(B.raw());
    Out.insert(Out.end(), P, P + B.numel() * sizeof(float));
  }
  return Out;
}

/// Compiles \p Opt three ways (cold / mem / disk) against the private cache
/// dir, runs each kernel on \p Args, and bit-compares the outputs.
CacheResult measure(const std::string &Name, const Func &Opt,
                    std::map<std::string, Buffer *> Args,
                    const std::vector<std::string> &Outputs) {
  CacheResult R;
  R.Name = Name;

  kernel_cache::memReset();
  double T0 = seconds();
  auto Cold = Kernel::compile(Opt);
  R.ColdSec = seconds() - T0;
  ftAssert(Cold.ok(), Cold.message());
  ftAssert(Cold->cacheTier() == KernelCacheTier::Compiled,
           Name + ": expected a cold miss on a fresh cache dir");
  ftAssert(Cold->run(Args).ok(), "cold run failed");
  std::vector<char> Want = outputBytes(Args, Outputs);

  T0 = seconds();
  auto Mem = Kernel::compile(Opt);
  R.WarmMemSec = seconds() - T0;
  ftAssert(Mem.ok(), Mem.message());
  ftAssert(Mem->cacheTier() == KernelCacheTier::Memory,
           Name + ": expected a memory-tier hit");
  ftAssert(Mem->run(Args).ok(), "mem run failed");
  std::vector<char> GotMem = outputBytes(Args, Outputs);

  kernel_cache::memReset();
  T0 = seconds();
  auto Disk = Kernel::compile(Opt);
  R.WarmDiskSec = seconds() - T0;
  ftAssert(Disk.ok(), Disk.message());
  ftAssert(Disk->cacheTier() == KernelCacheTier::Disk,
           Name + ": expected a disk-tier hit");
  ftAssert(Disk->run(Args).ok(), "disk run failed");
  std::vector<char> GotDisk = outputBytes(Args, Outputs);

  R.BitIdentical = Want == GotMem && Want == GotDisk;
  return R;
}

struct SearchResult {
  double NoCacheSec = 0;
  double ColdSec = 0;
  double WarmSec = 0;
  int Deduped = 0;
  int Measured = 0;
};

/// The search workload: a fusable two-pass pipeline with enough loops for
/// the mutations to bite, small enough that candidate compiles dominate.
Func makeSearchFunc() {
  FunctionBuilder B("searched");
  View X = B.input("x", {makeIntConst(256), makeIntConst(64)});
  View Y = B.output("y", {makeIntConst(256)});
  View T = B.local("t", {makeIntConst(256), makeIntConst(64)});
  B.loop("i", 0, 256, [&](Expr I) {
    B.loop("j", 0, 64, [&](Expr J) {
      T[I][J].assign(X[I][J].load() * makeFloatConst(1.5) +
                     makeFloatConst(0.25));
    });
  });
  B.loop("i", 0, 256, [&](Expr I) {
    Y[I].assign(0.0);
    B.loop("j", 0, 64, [&](Expr J) { Y[I] += T[I][J].load(); });
  });
  return B.build();
}

SearchResult runSearch() {
  SearchResult R;
  Func F = makeSearchFunc();
  Buffer X(DataType::Float32, {256, 64}), Y(DataType::Float32, {256});
  for (int64_t I = 0; I < X.numel(); ++I)
    X.setF(I, 0.01 * double(I % 97));
  std::map<std::string, Buffer *> Args = {{"x", &X}, {"y", &Y}};

  SearchOptions Opts;
  Opts.Rounds = 12;
  Opts.MeasureRuns = 2;
  Opts.OptFlags = "-O1";

  // Baseline: cache disabled — every unique candidate pays the compiler.
  ::setenv("FT_CACHE", "0", 1);
  double T0 = seconds();
  auto B0 = autoTuneFunc(F, Args, Opts);
  R.NoCacheSec = seconds() - T0;
  ftAssert(B0.ok(), B0.message());
  ::setenv("FT_CACHE", "1", 1);

  // Cold: same walk, now publishing into the (empty) cache dir.
  kernel_cache::memReset();
  AutoScheduleReport Rep;
  T0 = seconds();
  auto B1 = autoTuneFunc(F, Args, Opts, &Rep);
  R.ColdSec = seconds() - T0;
  ftAssert(B1.ok(), B1.message());
  R.Deduped = Rep.CandidatesDeduped;
  R.Measured = Rep.CandidatesMeasured;

  // Warm: identical seed => identical candidates => every compile hits.
  kernel_cache::memReset();
  T0 = seconds();
  auto B2 = autoTuneFunc(F, Args, Opts);
  R.WarmSec = seconds() - T0;
  ftAssert(B2.ok(), B2.message());
  return R;
}

} // namespace

int main() {
  // A fresh private cache directory per invocation: cold means cold, and
  // concurrent bench runs cannot contaminate each other.
  char Tmpl[] = "/tmp/ftjitbench.XXXXXX";
  ftAssert(::mkdtemp(Tmpl) != nullptr, "mkdtemp failed");
  ::setenv("FT_CACHE_DIR", Tmpl, 1);
  ::setenv("FT_CACHE", "1", 1);

  CacheResult Results[4];
  {
    SubdivNetConfig C = subdivnetCfg();
    SubdivNetData D = makeSubdivNetData(C);
    Buffer Y(DataType::Float32, {C.NFaces, C.Feats});
    Results[0] =
        measure("subdivnet", autoScheduleFunc(buildSubdivNet(C)),
                {{"e", &D.E}, {"adj", &D.Adj}, {"y", &Y}}, {"y"});
  }
  {
    LongformerConfig C = longformerCfg();
    LongformerData D = makeLongformerData(C);
    Buffer Y(DataType::Float32, {C.SeqLen, C.Feats});
    Results[1] =
        measure("longformer", autoScheduleFunc(buildLongformer(C)),
                {{"Q", &D.Q}, {"K", &D.K}, {"V", &D.V}, {"y", &Y}}, {"y"});
  }
  {
    SoftRasConfig C = softrasCfg();
    SoftRasData D = makeSoftRasData(C);
    Buffer Img(DataType::Float32, {C.numPixels()});
    Results[2] = measure(
        "softras", autoScheduleFunc(buildSoftRas(C)),
        {{"verts", &D.Verts}, {"px", &D.Px}, {"py", &D.Py}, {"img", &Img}},
        {"img"});
  }
  {
    GATConfig C = gatCfg();
    GATData D = makeGATData(C);
    Buffer Y(DataType::Float32, {C.NNodes, C.Feats});
    Results[3] = measure("gat", autoScheduleFunc(buildGAT(C)),
                         {{"h", &D.H},
                          {"adj", &D.Adj},
                          {"a1", &D.A1},
                          {"a2", &D.A2},
                          {"y", &Y}},
                         {"y"});
  }

  bool Ok = true;
  double WorstSpeedup = 1e30;
  for (const CacheResult &R : Results) {
    std::printf("%-10s cold %7.3f s  mem %9.6f s (%7.1fx)  disk %9.6f s "
                "(%7.1fx)  bit-identical %s\n",
                R.Name.c_str(), R.ColdSec, R.WarmMemSec, R.speedupMem(),
                R.WarmDiskSec, R.speedupDisk(),
                R.BitIdentical ? "yes" : "NO");
    Ok = Ok && R.BitIdentical && R.speedupMem() >= 20.0 &&
         R.speedupDisk() >= 20.0;
    WorstSpeedup = std::min({WorstSpeedup, R.speedupMem(), R.speedupDisk()});
  }

  SearchResult S = runSearch();
  std::printf("search     no-cache %7.3f s  cold %7.3f s  warm %7.3f s  "
              "deduped %d  measured %d\n",
              S.NoCacheSec, S.ColdSec, S.WarmSec, S.Deduped, S.Measured);
  Ok = Ok && S.Deduped > 0 && S.WarmSec < S.NoCacheSec;

  std::FILE *F = std::fopen("BENCH_jit_cache.json", "w");
  ftAssert(F != nullptr, "could not open BENCH_jit_cache.json");
  std::fprintf(F, "{\n  \"benchmark\": \"jit_kernel_cache\",\n"
                  "  \"target_speedup\": 20.0,\n  \"workloads\": [\n");
  for (int I = 0; I < 4; ++I) {
    const CacheResult &R = Results[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"cold_sec\": %.6f, "
                 "\"warm_mem_sec\": %.6f, \"warm_disk_sec\": %.6f, "
                 "\"speedup_mem\": %.2f, \"speedup_disk\": %.2f, "
                 "\"bit_identical\": %s}%s\n",
                 R.Name.c_str(), R.ColdSec, R.WarmMemSec, R.WarmDiskSec,
                 R.speedupMem(), R.speedupDisk(),
                 R.BitIdentical ? "true" : "false", I < 3 ? "," : "");
  }
  std::fprintf(F,
               "  ],\n  \"worst_speedup\": %.2f,\n  \"search\": "
               "{\"no_cache_sec\": %.4f, \"cold_sec\": %.4f, \"warm_sec\": "
               "%.4f, \"candidates_deduped\": %d, \"candidates_measured\": "
               "%d}\n}\n",
               WorstSpeedup, S.NoCacheSec, S.ColdSec, S.WarmSec, S.Deduped,
               S.Measured);
  std::fclose(F);

  std::system(("rm -rf '" + std::string(Tmpl) + "'").c_str());
  std::printf("%s: worst warm speedup %.1fx (target >= 20x)\n",
              Ok ? "PASS" : "FAIL", WorstSpeedup);
  return Ok ? 0 : 1;
}
