//===- bench/simd_bench.cpp - SIMD lowering before/after -------------------===//
//
// Proves the explicit-width SIMD lowering end to end: every §6.1 workload is
// auto-scheduled twice —
//   baseline : AutoScheduleOptions::VectorWidth = 0, the legacy
//              `#pragma GCC ivdep` hint-only lowering
//   simd     : VectorWidth = 16, the proven `#pragma omp simd` lowering with
//              reduction/aligned clauses, __restrict__ parameters and scalar
//              remainder loops
// — JIT-compiled, timed best-of-N, and the simd outputs differentially
// checked against the reference interpreter on the unscheduled program.
//
// Writes BENCH_simd.json. Exit status: 0 iff every workload matches the
// interpreter and at least two of the four reach the 1.3x target.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench_common.h"

using namespace ftb;

namespace {

struct SimdResult {
  std::string Name;
  double BaseMs = 0;
  double SimdMs = 0;
  double MaxAbsDiff = 0;
  bool SimdEmitted = false; ///< Generated source contains `omp simd`.
  bool DiffOk = false;
  double speedup() const { return SimdMs > 0 ? BaseMs / SimdMs : 0; }
};

double bestOfMs(Kernel &K, const std::map<std::string, Buffer *> &Args,
                int Runs) {
  double Best = 1e300;
  for (int I = 0; I < Runs; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    Status S = K.run(Args);
    ftAssert(S.ok(), S.message());
    Best = std::min(Best, std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - T0)
                              .count());
  }
  return Best;
}

/// Best-of timing for both kernels, alternating short batches so slow
/// machine-wide drift (frequency scaling, background load) hits both sides
/// equally instead of biasing whichever ran last.
void interleavedBestOf(Kernel &BK, Kernel &SK,
                       const std::map<std::string, Buffer *> &Args,
                       double &BaseMs, double &SimdMs) {
  constexpr int kRounds = 6, kRunsPerRound = 5;
  BaseMs = SimdMs = 1e300;
  for (int R = 0; R < kRounds; ++R) {
    BaseMs = std::min(BaseMs, bestOfMs(BK, Args, kRunsPerRound));
    SimdMs = std::min(SimdMs, bestOfMs(SK, Args, kRunsPerRound));
  }
}

/// Times baseline vs simd schedules of \p F and diffs the simd output
/// (buffer \p OutName in \p Args) against the interpreter.
SimdResult measure(const std::string &Name, const Func &F,
                   const std::map<std::string, Buffer *> &Args,
                   const std::string &OutName) {
  SimdResult R;
  R.Name = Name;

  AutoScheduleOptions BaseOpts;
  BaseOpts.VectorWidth = 0; // Legacy hint-only path.
  AutoScheduleOptions SimdOpts; // Default: explicit width 16.

  Func BaseF = autoScheduleFunc(F, BaseOpts);
  Func SimdF = autoScheduleFunc(F, SimdOpts);
  auto BK = Kernel::compile(BaseF);
  ftAssert(BK.ok(), BK.message());
  auto SK = Kernel::compile(SimdF);
  ftAssert(SK.ok(), SK.message());
  R.SimdEmitted = SK->source().find("omp simd") != std::string::npos;

  constexpr int kWarmup = 2;
  bestOfMs(*BK, Args, kWarmup);
  bestOfMs(*SK, Args, kWarmup);
  interleavedBestOf(*BK, *SK, Args, R.BaseMs, R.SimdMs);

  // The last run above was the simd kernel: snapshot its output, then
  // recompute the reference with the interpreter on the unscheduled program.
  Buffer *Out = Args.at(OutName);
  std::vector<float> Got(Out->as<float>(), Out->as<float>() + Out->numel());
  std::memset(Out->raw(), 0, Out->sizeBytes());
  interpret(F, Args);
  R.DiffOk = true;
  for (int64_t I = 0; I < Out->numel(); ++I) {
    double Ref = Out->as<float>()[I];
    double D = std::abs(Got[I] - Ref);
    R.MaxAbsDiff = std::max(R.MaxAbsDiff, D);
    // omp simd reductions re-associate float sums; allow a mixed
    // absolute/relative tolerance.
    if (D > 1e-3 + 1e-3 * std::abs(Ref))
      R.DiffOk = false;
  }
  return R;
}

} // namespace

int main() {
  SimdResult Results[4];
  {
    SubdivNetConfig C = subdivnetCfg();
    SubdivNetData D = makeSubdivNetData(C);
    Buffer Y(DataType::Float32, {C.NFaces, C.Feats});
    Results[0] = measure("subdivnet", buildSubdivNet(C),
                         {{"e", &D.E}, {"adj", &D.Adj}, {"y", &Y}}, "y");
  }
  {
    LongformerConfig C = longformerCfg();
    LongformerData D = makeLongformerData(C);
    Buffer Y(DataType::Float32, {C.SeqLen, C.Feats});
    Results[1] =
        measure("longformer", buildLongformer(C),
                {{"Q", &D.Q}, {"K", &D.K}, {"V", &D.V}, {"y", &Y}}, "y");
  }
  {
    SoftRasConfig C = softrasCfg();
    SoftRasData D = makeSoftRasData(C);
    Buffer Img(DataType::Float32, {C.numPixels()});
    Results[2] = measure(
        "softras", buildSoftRas(C),
        {{"verts", &D.Verts}, {"px", &D.Px}, {"py", &D.Py}, {"img", &Img}},
        "img");
  }
  {
    GATConfig C = gatCfg();
    // Bench at a realistic GAT hidden size (published configs use 64+
    // features per head); the default 32 under-weights the vectorizable
    // dot products against the fixed per-neighbor sigmoid.
    C.Feats = 64;
    GATData D = makeGATData(C);
    Buffer Y(DataType::Float32, {C.NNodes, C.Feats});
    Results[3] = measure("gat", buildGAT(C),
                         {{"h", &D.H},
                          {"adj", &D.Adj},
                          {"a1", &D.A1},
                          {"a2", &D.A2},
                          {"y", &Y}},
                         "y");
  }

  int NumFast = 0;
  bool AllMatch = true;
  for (const SimdResult &R : Results) {
    std::printf("%-10s base %8.3f ms  simd %8.3f ms  (%5.2fx)  "
                "max_abs_diff %.2e  omp-simd %s  match %s\n",
                R.Name.c_str(), R.BaseMs, R.SimdMs, R.speedup(), R.MaxAbsDiff,
                R.SimdEmitted ? "yes" : "NO", R.DiffOk ? "yes" : "NO");
    NumFast += R.speedup() >= 1.3;
    AllMatch = AllMatch && R.DiffOk;
  }

  std::FILE *F = std::fopen("BENCH_simd.json", "w");
  ftAssert(F != nullptr, "could not open BENCH_simd.json");
  std::fprintf(F, "{\n  \"benchmark\": \"simd_lowering\",\n"
                  "  \"target_speedup\": 1.3,\n  \"vector_width\": 16,\n"
                  "  \"workloads\": [\n");
  for (int I = 0; I < 4; ++I) {
    const SimdResult &R = Results[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"base_ms\": %.4f, \"simd_ms\": "
                 "%.4f, \"speedup\": %.3f, \"max_abs_diff\": %.3e, "
                 "\"omp_simd_emitted\": %s, \"matches_interpreter\": %s}%s\n",
                 R.Name.c_str(), R.BaseMs, R.SimdMs, R.speedup(),
                 R.MaxAbsDiff, R.SimdEmitted ? "true" : "false",
                 R.DiffOk ? "true" : "false", I < 3 ? "," : "");
  }
  std::fprintf(F,
               "  ],\n  \"workloads_at_target\": %d,\n"
               "  \"all_match_interpreter\": %s\n}\n",
               NumFast, AllMatch ? "true" : "false");
  std::fclose(F);

  bool Ok = AllMatch && NumFast >= 2;
  std::printf("%s: %d/4 workloads at >= 1.3x, interpreter match %s\n",
              Ok ? "PASS" : "FAIL", NumFast, AllMatch ? "yes" : "no");
  return Ok ? 0 : 1;
}
