//===- bench/trace_overhead_bench.cpp - Observability overhead --------------===//
//
// Cost of the tracing layer on the fig16a SubdivNet forward workload,
// compile + run, with tracing disabled vs enabled. Writes
// BENCH_trace_overhead.json.
//
// Methodology: there is no uninstrumented build to diff against, so the
// disabled-mode overhead is measured directly — a microbenchmark of the
// disabled span (one relaxed atomic load + branch) times the number of
// spans on the kernel-run path, expressed as a fraction of the kernel run
// time. The enabled-mode overhead is a straight A/B of the same run loop
// with recording on vs off, alternated in batches so frequency scaling and
// cache state hit both modes equally.
//
// Targets (ISSUE 2): < 2% disabled, < 10% enabled.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "support/trace.h"

using namespace ftb;

namespace {

double seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Seconds per kernel run over one batch.
double timeRuns(Kernel &K, std::map<std::string, Buffer *> &Args, int Runs) {
  double T0 = seconds();
  for (int I = 0; I < Runs; ++I) {
    Status S = K.run(Args);
    ftAssert(S.ok(), S.message());
  }
  return (seconds() - T0) / Runs;
}

/// Nanoseconds for one *disabled* span construct + destroy — the cost every
/// instrumentation site pays in production mode.
double disabledSpanNs() {
  ftAssert(!ft::trace::enabled(), "microbenchmark requires tracing off");
  constexpr int N = 10'000'000;
  double T0 = seconds();
  for (int I = 0; I < N; ++I) {
    FT_SPAN("bench/disabled_probe");
  }
  return (seconds() - T0) / N * 1e9;
}

} // namespace

int main() {
  SubdivNetConfig C = subdivnetCfg();
  SubdivNetData D = makeSubdivNetData(C);
  Buffer Y(DataType::Float32, {C.NFaces, C.Feats});

  // Compile once per mode so the JSON also shows the compile-side cost of
  // enabled tracing (span bookkeeping during passes/scheduling/codegen —
  // the host-compiler invocation dominates both).
  ft::trace::setEnabled(false);
  double Tc0 = seconds();
  Kernel K = compileAuto(buildSubdivNet(C));
  double CompileSecDisabled = seconds() - Tc0;

  double CompileSecEnabled;
  {
    ft::trace::EnabledGuard G;
    Tc0 = seconds();
    Kernel K2 = compileAuto(buildSubdivNet(C));
    CompileSecEnabled = seconds() - Tc0;
  }
  ft::trace::clear();

  std::map<std::string, Buffer *> Args{{"e", &D.E}, {"adj", &D.Adj},
                                       {"y", &Y}};

  // Warm up the thread pool and caches.
  timeRuns(K, Args, 50);

  // Alternate disabled/enabled batches; keep the best (least-noisy) batch
  // of each mode.
  constexpr int Batches = 7;
  constexpr int RunsPerBatch = 200;
  double BestDisabled = 1e30, BestEnabled = 1e30;
  for (int B = 0; B < Batches; ++B) {
    ft::trace::setEnabled(false);
    BestDisabled = std::min(BestDisabled, timeRuns(K, Args, RunsPerBatch));
    {
      ft::trace::EnabledGuard G;
      BestEnabled = std::min(BestEnabled, timeRuns(K, Args, RunsPerBatch));
    }
    ft::trace::clear(); // Bound the span buffer between batches.
  }

  double SpanNs = disabledSpanNs();
  // Spans on the Kernel::run path in disabled mode: the rt/kernel span.
  constexpr double SpansPerRun = 1.0;
  double DisabledPct = SpanNs * SpansPerRun / (BestDisabled * 1e9) * 100.0;
  double EnabledPct = (BestEnabled - BestDisabled) / BestDisabled * 100.0;

  std::printf("fig16a SubdivNet forward, %d runs/batch x %d batches\n",
              RunsPerBatch, Batches);
  std::printf("run (tracing off):  %.3f ms\n", BestDisabled * 1e3);
  std::printf("run (tracing on):   %.3f ms   (+%.2f%%)\n", BestEnabled * 1e3,
              EnabledPct);
  std::printf("disabled span cost: %.2f ns -> %.4f%% of a run\n", SpanNs,
              DisabledPct);
  std::printf("compile: %.2f s off / %.2f s on\n", CompileSecDisabled,
              CompileSecEnabled);

  std::FILE *F = std::fopen("BENCH_trace_overhead.json", "w");
  ftAssert(F != nullptr, "could not open BENCH_trace_overhead.json");
  std::fprintf(F,
               "{\n"
               "  \"benchmark\": \"trace_overhead_fig16a_forward\",\n"
               "  \"runs_per_batch\": %d,\n"
               "  \"batches\": %d,\n"
               "  \"run_ms_disabled\": %.6f,\n"
               "  \"run_ms_enabled\": %.6f,\n"
               "  \"disabled_span_ns\": %.3f,\n"
               "  \"run_overhead_disabled_pct\": %.6f,\n"
               "  \"run_overhead_enabled_pct\": %.4f,\n"
               "  \"compile_sec_disabled\": %.3f,\n"
               "  \"compile_sec_enabled\": %.3f,\n"
               "  \"target_disabled_pct\": 2.0,\n"
               "  \"target_enabled_pct\": 10.0\n"
               "}\n",
               RunsPerBatch, Batches, BestDisabled * 1e3, BestEnabled * 1e3,
               SpanNs, DisabledPct, EnabledPct, CompileSecDisabled,
               CompileSecEnabled);
  std::fclose(F);

  bool Ok = DisabledPct < 2.0;
  std::printf("%s: disabled overhead %.4f%% (target < 2%%), enabled "
              "%.2f%% (target < 10%%)\n",
              Ok ? "PASS" : "FAIL", DisabledPct, EnabledPct);
  return Ok ? 0 : 1;
}
