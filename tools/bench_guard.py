#!/usr/bin/env python3
"""Guard committed benchmark baselines against regressions.

Compares freshly written BENCH_*.json files (from a build tree) against
the committed baselines at the repo root on a small set of key metrics.
A metric regresses when it moves in the bad direction by more than
--tolerance (default 25%) AND by more than its absolute slack — the
slack keeps near-zero baselines (e.g. overhead fractions of a fraction
of a percent) from amplifying scheduler noise into failures.

Fresh files that were not produced in this run are skipped with a note,
so the guard composes with partial bench sweeps.

Key coverage is checked both ways: a guarded key present in the committed
baseline but absent from the fresh run is a hard failure (the bench
stopped emitting a guarded metric — silently skipping it would let a
regression hide behind a rename), and fresh numeric keys no Check covers
are listed as unguarded so new metrics get guards when they land.

Usage:
  tools/bench_guard.py --baseline-dir . --fresh-dir build/bench-build \
      [--tolerance 0.25]

Exit status: 0 = no regression, 1 = at least one metric regressed,
2 = bad invocation.
"""

import argparse
import json
import os
import sys


class Check:
    """One guarded metric inside a bench JSON document.

    path: dot-separated keys; a trailing "[*].key:min" (or ":max")
          segment maps over an array of objects and reduces with min/max
          — the worst workload for higher-is-better (min) or
          lower-is-better (max) metrics.
    direction: "higher" or "lower" — which way is better.
    abs_slack: minimum absolute movement before a relative regression
          counts, in the metric's own unit.
    """

    def __init__(self, path, direction, abs_slack=0.0):
        assert direction in ("higher", "lower")
        self.path = path
        self.direction = direction
        self.abs_slack = abs_slack

    def extract(self, doc):
        # "[*].leaf:min" spans a "." so it must be peeled before the
        # dot-split (splitting first loses the array segment, which made
        # every array check silently unextractable).
        path = self.path
        for suffix, reduce_fn in ((":min", min), (":max", max)):
            if path.endswith(suffix) and "[*]." in path:
                arr_path, leaf = path[: -len(suffix)].split("[*].", 1)
                cur = doc
                for seg in arr_path.split("."):
                    cur = cur[seg]
                vals = [row[leaf] for row in cur]
                if not vals:
                    raise KeyError(f"{self.path}: empty array")
                return reduce_fn(vals)
        cur = doc
        for seg in path.split("."):
            cur = cur[seg]
        return float(cur)

    def verdict(self, base, fresh, tol):
        """Returns (regressed, human_line)."""
        if self.direction == "lower":
            limit = base * (1.0 + tol) + self.abs_slack
            bad = fresh > limit
            delta = fresh - base
        else:
            limit = base / (1.0 + tol) - self.abs_slack
            bad = fresh < limit
            delta = base - fresh
        rel = (delta / base * 100.0) if base else float("inf")
        line = (f"{self.path:42s} base {base:12.4f}  fresh {fresh:12.4f}  "
                f"({'+' if delta >= 0 else ''}{rel:.1f}% worse-dir, "
                f"{self.direction} is better)")
        return bad, line


# The key ratios per bench file. Slack values are sized to the metric's
# unit and the jitter observed on the reference VM (single-socket, no
# cpu pinning): ~100 us on short serve latencies, ~1 ns on the disabled
# hook path, 1.5 percentage points on the telemetry overhead fraction.
# The jit p99 is the 4th-worst of 400 requests with a 200 us batching
# window in the path — repeated quiet-machine runs span ~400-900 us, so
# its slack is sized to that spread rather than the ~100 us p50 jitter.
CHECKS = {
    "BENCH_serve.json": [
        Check("warm.jit_fraction", "higher"),
        Check("tiers.jit.p50_us", "lower", abs_slack=100.0),
        Check("tiers.jit.p99_us", "lower", abs_slack=500.0),
        Check("queue_wait.p50_us", "lower", abs_slack=100.0),
        Check("cold.first_request_sec", "lower", abs_slack=0.05),
    ],
    "BENCH_telemetry_overhead.json": [
        Check("disabled_record_ns", "lower", abs_slack=1.0),
        Check("disabled_context_ns", "lower", abs_slack=1.0),
        Check("overhead_frac", "lower", abs_slack=0.015),
        Check("on_rps", "higher"),
    ],
    "BENCH_jit_cache.json": [
        Check("workloads[*].speedup_mem:min", "higher"),
        Check("workloads[*].speedup_disk:min", "higher"),
    ],
    "BENCH_simd.json": [
        Check("workloads[*].speedup:min", "higher", abs_slack=0.05),
        # How many workloads clear the 1.3x target, and the worst
        # divergence from the interpreter across all of them.
        Check("workloads_at_target", "higher"),
        Check("workloads[*].max_abs_diff:max", "lower", abs_slack=1e-5),
    ],
    "BENCH_dynshape.json": [
        # One generic compile must keep serving every distinct shape; any
        # growth means the fingerprint started seeing literal extents.
        Check("shapes.generic_compiles", "lower"),
        # The acceptance bar: specialization wins >= 1.2x on at least two
        # of the four workloads, i.e. the second-best speedup clears it.
        Check("second_best_speedup", "higher", abs_slack=0.05),
        # The worst workload (softras sits at ~1.0x on the reference VM —
        # specialization must at least never make a bucket slower than
        # generic beyond noise) and the worst generic-vs-specialized
        # output divergence.
        Check("workloads[*].speedup:min", "higher", abs_slack=0.15),
        Check("workloads[*].max_diff:max", "lower", abs_slack=1e-5),
    ],
    "BENCH_sparse.json": [
        # The acceptance bar: the compiled segment-loop programs beat the
        # materializing EagerTensor chains >= 1.3x on at least two of the
        # three sparse workloads.
        Check("second_best_speedup", "higher", abs_slack=0.05),
        # The worst workload must still win (segsoftmax, ~6.7x on the
        # reference VM), and outputs must keep matching the eager chain.
        Check("workloads[*].speedup:min", "higher", abs_slack=0.5),
        Check("workloads[*].max_diff:max", "lower", abs_slack=1e-5),
    ],
}


def numeric_leaf_paths(doc, prefix=""):
    """Dot-paths of every numeric leaf in a parsed JSON doc; array rows
    collapse into one "[*]" segment (matching Check path syntax)."""
    paths = set()
    if isinstance(doc, dict):
        for key, val in doc.items():
            child = f"{prefix}.{key}" if prefix else key
            paths |= numeric_leaf_paths(val, child)
    elif isinstance(doc, list):
        for row in doc:
            paths |= numeric_leaf_paths(row, f"{prefix}[*]")
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        paths.add(prefix)
    return paths


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", default=".",
                    help="directory with committed BENCH_*.json baselines")
    ap.add_argument("--fresh-dir", action="append", default=[],
                    help="directory with freshly written results "
                         "(repeatable; first hit per file wins)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative regression (default 0.25)")
    args = ap.parse_args()
    if not args.fresh_dir:
        ap.error("at least one --fresh-dir is required")

    regressions = 0
    compared = 0
    for fname, checks in sorted(CHECKS.items()):
        base_path = os.path.join(args.baseline_dir, fname)
        fresh_path = next(
            (p for d in args.fresh_dir
             if os.path.exists(p := os.path.join(d, fname))), None)
        if not os.path.exists(base_path):
            print(f"bench_guard: {fname}: no committed baseline, skipping")
            continue
        if fresh_path is None:
            print(f"bench_guard: {fname}: not produced this run, skipping")
            continue
        with open(base_path) as f:
            base_doc = json.load(f)
        with open(fresh_path) as f:
            fresh_doc = json.load(f)
        for chk in checks:
            try:
                base = float(chk.extract(base_doc))
            except KeyError:
                # The committed baseline predates this metric; the next
                # baseline refresh picks it up.
                print(f"bench_guard: {fname}: {chk.path} not in committed "
                      f"baseline yet, skipping metric")
                continue
            try:
                fresh = float(chk.extract(fresh_doc))
            except KeyError:
                print(f"bench_guard: MISSING    {fname}: committed baseline "
                      f"key `{chk.path}` has no matching key in the fresh "
                      f"run — the bench no longer emits it; fix the bench "
                      f"or retire the key from CHECKS and the baseline")
                compared += 1
                regressions += 1
                continue
            bad, line = chk.verdict(base, fresh, args.tolerance)
            compared += 1
            tag = "REGRESSION" if bad else "ok"
            print(f"bench_guard: {tag:10s} {line}")
            regressions += bad

        guarded = {chk.path.split(":")[0] for chk in checks}
        unguarded = sorted(p for p in numeric_leaf_paths(fresh_doc)
                           if p not in guarded)
        if unguarded:
            print(f"bench_guard: note: {fname}: unguarded numeric keys: "
                  + ", ".join(unguarded))

    if compared == 0:
        print("bench_guard: nothing to compare (no fresh results found)")
        return 0
    if regressions:
        print(f"bench_guard: FAIL — {regressions} metric(s) regressed "
              f"beyond {args.tolerance * 100:.0f}%")
        return 1
    print(f"bench_guard: OK — {compared} metric(s) within "
          f"{args.tolerance * 100:.0f}% of committed baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
