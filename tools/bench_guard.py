#!/usr/bin/env python3
"""Guard committed benchmark baselines against regressions.

Compares freshly written BENCH_*.json files (from a build tree) against
the committed baselines at the repo root on a small set of key metrics.
A metric regresses when it moves in the bad direction by more than
--tolerance (default 25%) AND by more than its absolute slack — the
slack keeps near-zero baselines (e.g. overhead fractions of a fraction
of a percent) from amplifying scheduler noise into failures.

Fresh files that were not produced in this run are skipped with a note,
so the guard composes with partial bench sweeps.

Usage:
  tools/bench_guard.py --baseline-dir . --fresh-dir build/bench-build \
      [--tolerance 0.25]

Exit status: 0 = no regression, 1 = at least one metric regressed,
2 = bad invocation.
"""

import argparse
import json
import os
import sys


class Check:
    """One guarded metric inside a bench JSON document.

    path: dot-separated keys; a trailing "[*].key:min" segment maps over
          an array of objects and reduces with min (the worst workload).
    direction: "higher" or "lower" — which way is better.
    abs_slack: minimum absolute movement before a relative regression
          counts, in the metric's own unit.
    """

    def __init__(self, path, direction, abs_slack=0.0):
        assert direction in ("higher", "lower")
        self.path = path
        self.direction = direction
        self.abs_slack = abs_slack

    def extract(self, doc):
        cur = doc
        for seg in self.path.split("."):
            if seg.endswith(":min") and "[*]" in seg:
                arr_key, rest = seg.split("[*].", 1)
                leaf = rest[: -len(":min")]
                vals = [row[leaf] for row in cur[arr_key]]
                if not vals:
                    raise KeyError(f"{self.path}: empty array")
                return min(vals)
            cur = cur[seg]
        return float(cur)

    def verdict(self, base, fresh, tol):
        """Returns (regressed, human_line)."""
        if self.direction == "lower":
            limit = base * (1.0 + tol) + self.abs_slack
            bad = fresh > limit
            delta = fresh - base
        else:
            limit = base / (1.0 + tol) - self.abs_slack
            bad = fresh < limit
            delta = base - fresh
        rel = (delta / base * 100.0) if base else float("inf")
        line = (f"{self.path:42s} base {base:12.4f}  fresh {fresh:12.4f}  "
                f"({'+' if delta >= 0 else ''}{rel:.1f}% worse-dir, "
                f"{self.direction} is better)")
        return bad, line


# The key ratios per bench file. Slack values are sized to the metric's
# unit and the jitter observed on the reference VM (single-socket, no
# cpu pinning): ~100 us on short serve latencies, ~1 ns on the disabled
# hook path, 1.5 percentage points on the telemetry overhead fraction.
CHECKS = {
    "BENCH_serve.json": [
        Check("warm.jit_fraction", "higher"),
        Check("tiers.jit.p50_us", "lower", abs_slack=100.0),
        Check("tiers.jit.p99_us", "lower", abs_slack=200.0),
        Check("queue_wait.p50_us", "lower", abs_slack=100.0),
        Check("cold.first_request_sec", "lower", abs_slack=0.05),
    ],
    "BENCH_telemetry_overhead.json": [
        Check("disabled_record_ns", "lower", abs_slack=1.0),
        Check("overhead_frac", "lower", abs_slack=0.015),
        Check("on_rps", "higher"),
    ],
    "BENCH_jit_cache.json": [
        Check("workloads[*].speedup_mem:min", "higher"),
        Check("workloads[*].speedup_disk:min", "higher"),
    ],
    "BENCH_simd.json": [
        Check("workloads[*].speedup:min", "higher", abs_slack=0.05),
    ],
}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", default=".",
                    help="directory with committed BENCH_*.json baselines")
    ap.add_argument("--fresh-dir", action="append", default=[],
                    help="directory with freshly written results "
                         "(repeatable; first hit per file wins)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative regression (default 0.25)")
    args = ap.parse_args()
    if not args.fresh_dir:
        ap.error("at least one --fresh-dir is required")

    regressions = 0
    compared = 0
    for fname, checks in sorted(CHECKS.items()):
        base_path = os.path.join(args.baseline_dir, fname)
        fresh_path = next(
            (p for d in args.fresh_dir
             if os.path.exists(p := os.path.join(d, fname))), None)
        if not os.path.exists(base_path):
            print(f"bench_guard: {fname}: no committed baseline, skipping")
            continue
        if fresh_path is None:
            print(f"bench_guard: {fname}: not produced this run, skipping")
            continue
        with open(base_path) as f:
            base_doc = json.load(f)
        with open(fresh_path) as f:
            fresh_doc = json.load(f)
        for chk in checks:
            try:
                base = float(chk.extract(base_doc))
                fresh = float(chk.extract(fresh_doc))
            except KeyError as e:
                print(f"bench_guard: {fname}: {e} missing, skipping metric")
                continue
            bad, line = chk.verdict(base, fresh, args.tolerance)
            compared += 1
            tag = "REGRESSION" if bad else "ok"
            print(f"bench_guard: {tag:10s} {line}")
            regressions += bad

    if compared == 0:
        print("bench_guard: nothing to compare (no fresh results found)")
        return 0
    if regressions:
        print(f"bench_guard: FAIL — {regressions} metric(s) regressed "
              f"beyond {args.tolerance * 100:.0f}%")
        return 1
    print(f"bench_guard: OK — {compared} metric(s) within "
          f"{args.tolerance * 100:.0f}% of committed baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
