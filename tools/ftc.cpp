//===- tools/ftc.cpp - FreeTensor compiler driver ---------------------------===//
//
// A command-line front door to the compiler, mirroring how the original
// project is driven from Python:
//
//   ftc --workload subdivnet|longformer|softras|gat
//       [--print-ir]        print the staged IR
//       [--no-autoschedule] skip the rule passes
//       [--print-opt-ir]    print the IR after scheduling
//       [--emit-cpp FILE]   write the generated C++ to FILE ("-" = stdout)
//       [--grad]            also differentiate and report tapes
//       [--run N]           JIT-compile and time N executions
//       [--profile]         instrument the kernel (implies --run) and print
//                           the per-loop profile table; combine with
//                           FT_PROFILE=out.folded/out.json for file sinks
//       [--vectorize-width N] explicit SIMD width for auto_vectorize
//                           (0 = legacy ivdep-hint lowering only)
//       [--no-cache]        disable the kernel cache (sets FT_CACHE=0)
//       [--cache-dir DIR]   use DIR as the kernel cache (sets FT_CACHE_DIR)
//       [--serve N]         push N requests through the serving executor
//                           and report per-tier counts + latency
//                           percentiles (honors the FT_SERVE_* knobs)
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <vector>

#include "autodiff/grad.h"
#include "autoschedule/autoschedule.h"
#include "codegen/codegen.h"
#include "codegen/jit.h"
#include "ir/printer.h"
#include "serve/serve.h"
#include "workloads/workloads.h"

using namespace ft;
using namespace ft::workloads;

namespace {

struct Options {
  std::string Workload = "longformer";
  bool PrintIr = false;
  bool PrintOptIr = false;
  bool AutoScheduleEnabled = true;
  bool Grad = false;
  bool Profile = false;
  int VectorWidth = -1; ///< -1 = keep the AutoScheduleOptions default.
  std::string EmitCpp;
  int Run = 0;
  int Serve = 0;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: ftc --workload subdivnet|longformer|softras|gat\n"
      "           [--print-ir] [--print-opt-ir] [--no-autoschedule]\n"
      "           [--emit-cpp FILE|-] [--grad] [--run N] [--profile]\n"
      "           [--vectorize-width N] [--no-cache] [--cache-dir DIR]\n"
      "           [--serve N]\n");
  return 2;
}

struct Bound {
  Func F;
  std::map<std::string, Buffer> Store;
};

Bound buildWorkload(const std::string &Name) {
  Bound B;
  if (Name == "subdivnet") {
    SubdivNetConfig C;
    SubdivNetData D = makeSubdivNetData(C);
    B.F = buildSubdivNet(C);
    B.Store.emplace("e", std::move(D.E));
    B.Store.emplace("adj", std::move(D.Adj));
    B.Store.emplace("y", Buffer(DataType::Float32, {C.NFaces, C.Feats}));
  } else if (Name == "longformer") {
    LongformerConfig C;
    LongformerData D = makeLongformerData(C);
    B.F = buildLongformer(C);
    B.Store.emplace("Q", std::move(D.Q));
    B.Store.emplace("K", std::move(D.K));
    B.Store.emplace("V", std::move(D.V));
    B.Store.emplace("y", Buffer(DataType::Float32, {C.SeqLen, C.Feats}));
  } else if (Name == "softras") {
    SoftRasConfig C;
    SoftRasData D = makeSoftRasData(C);
    B.F = buildSoftRas(C);
    B.Store.emplace("verts", std::move(D.Verts));
    B.Store.emplace("px", std::move(D.Px));
    B.Store.emplace("py", std::move(D.Py));
    B.Store.emplace("img", Buffer(DataType::Float32, {C.numPixels()}));
  } else if (Name == "gat") {
    GATConfig C;
    GATData D = makeGATData(C);
    B.F = buildGAT(C);
    B.Store.emplace("h", std::move(D.H));
    B.Store.emplace("adj", std::move(D.Adj));
    B.Store.emplace("a1", std::move(D.A1));
    B.Store.emplace("a2", std::move(D.A2));
    B.Store.emplace("y", Buffer(DataType::Float32, {C.NNodes, C.Feats}));
  }
  return B;
}

} // namespace

int main(int argc, char **argv) {
  Options O;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--workload" && I + 1 < argc)
      O.Workload = argv[++I];
    else if (A == "--print-ir")
      O.PrintIr = true;
    else if (A == "--print-opt-ir")
      O.PrintOptIr = true;
    else if (A == "--no-autoschedule")
      O.AutoScheduleEnabled = false;
    else if (A == "--grad")
      O.Grad = true;
    else if (A == "--profile")
      O.Profile = true;
    else if (A == "--emit-cpp" && I + 1 < argc)
      O.EmitCpp = argv[++I];
    else if (A == "--run" && I + 1 < argc)
      O.Run = std::atoi(argv[++I]);
    else if (A == "--serve" && I + 1 < argc)
      O.Serve = std::atoi(argv[++I]);
    else if (A == "--vectorize-width" && I + 1 < argc)
      O.VectorWidth = std::atoi(argv[++I]);
    else if (A == "--no-cache")
      ::setenv("FT_CACHE", "0", /*overwrite=*/1);
    else if (A == "--cache-dir" && I + 1 < argc)
      ::setenv("FT_CACHE_DIR", argv[++I], /*overwrite=*/1);
    else
      return usage();
  }

  Bound B = buildWorkload(O.Workload);
  if (!B.F.Body) {
    std::fprintf(stderr, "unknown workload: %s\n", O.Workload.c_str());
    return usage();
  }
  std::printf("workload %s: %zu parameters, function `%s`\n",
              O.Workload.c_str(), B.F.Params.size(), B.F.Name.c_str());

  if (O.PrintIr)
    std::printf("\n=== staged IR ===\n%s\n", toString(B.F.Body).c_str());

  Func Opt = B.F;
  if (O.AutoScheduleEnabled) {
    AutoScheduleReport R;
    AutoScheduleOptions ASOpts;
    if (O.VectorWidth >= 0)
      ASOpts.VectorWidth = O.VectorWidth;
    Opt = autoScheduleFunc(B.F, ASOpts, &R);
    std::printf("auto-schedule: fused=%d vectorized=%d parallelized=%d "
                "localized=%d lib=%d unrolled=%d\n",
                R.Fused, R.Vectorized, R.Parallelized, R.Localized,
                R.LibCalls, R.Unrolled);
  }
  if (O.PrintOptIr)
    std::printf("\n=== scheduled IR ===\n%s\n", toString(Opt.Body).c_str());

  if (!O.EmitCpp.empty()) {
    std::string Src = generateCpp(Opt);
    if (O.EmitCpp == "-") {
      std::printf("\n=== generated C++ ===\n%s\n", Src.c_str());
    } else {
      std::ofstream Out(O.EmitCpp);
      Out << Src;
      std::printf("wrote %zu bytes of C++ to %s\n", Src.size(),
                  O.EmitCpp.c_str());
    }
  }

  if (O.Grad) {
    auto G = grad(B.F, {B.F.Params[0]});
    if (!G.ok()) {
      std::printf("grad: %s\n", G.message().c_str());
    } else {
      std::printf("grad w.r.t. `%s`: %zu tape(s)", B.F.Params[0].c_str(),
                  G->Tapes.size());
      for (const std::string &T : G->Tapes)
        std::printf(" %s", T.c_str());
      std::printf("\n");
    }
  }

  if (O.Profile && O.Run <= 0)
    O.Run = 1;

  if (O.Run > 0) {
    CodegenOptions CgOpts;
    CgOpts.Profile = O.Profile || profile::envEnabled();
    auto K = Kernel::compile(Opt, CgOpts);
    if (!K.ok()) {
      std::fprintf(stderr, "compile failed: %s\n", K.message().c_str());
      return 1;
    }
    std::printf("JIT compile: %.2f s (cache: %s)\n", K->compileSeconds(),
                nameOf(K->cacheTier()));
    std::map<std::string, Buffer *> Args;
    for (auto &[N, Buf] : B.Store)
      Args[N] = &Buf;
    Status S = K->run(Args); // Warm up.
    if (!S.ok()) {
      std::fprintf(stderr, "run failed: %s\n", S.message().c_str());
      return 1;
    }
    auto T0 = std::chrono::steady_clock::now();
    for (int I = 0; I < O.Run; ++I)
      K->run(Args);
    double Sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
    std::printf("%d runs: %.3f ms each\n", O.Run, Sec / O.Run * 1e3);
    if (K->profiled())
      std::printf("\n%s", profile::formatTable(K->profileNow()).c_str());
  }

  if (O.Serve > 0) {
    // The demo loop: a burst of identical requests against a fresh
    // executor. The first ones are answered by the interpreter while the
    // kernel compiles in the background; the stream then flips to the JIT
    // tier — the serving runtime's cold-start story in one screenful.
    serve::Executor Ex;
    std::map<std::string, Buffer *> Args;
    for (auto &[N, Buf] : B.Store)
      Args[N] = &Buf;

    std::vector<std::future<serve::Response>> Futs;
    std::vector<double> Lat;
    int Rejected = 0;
    for (int I = 0; I < O.Serve; ++I) {
      auto R = Ex.submit(Opt, Args);
      if (R.ok())
        Futs.push_back(std::move(*R));
      else
        ++Rejected;
    }
    serve::Tier PrevTier = serve::Tier::Interp;
    bool First = true;
    for (size_t I = 0; I < Futs.size(); ++I) {
      serve::Response R = Futs[I].get();
      if (!R.S.ok()) {
        std::fprintf(stderr, "request %zu failed: %s\n", I,
                     R.S.message().c_str());
        return 1;
      }
      Lat.push_back(R.LatencySec);
      if (First || R.ServedBy != PrevTier) {
        std::printf("request %4zu: tier flips to %s (%.3f ms)\n", I,
                    serve::nameOf(R.ServedBy), R.LatencySec * 1e3);
        PrevTier = R.ServedBy;
        First = false;
      }
    }
    Ex.drain();

    serve::ServeStats St = Ex.stats();
    std::sort(Lat.begin(), Lat.end());
    auto Pct = [&](double Q) {
      if (Lat.empty())
        return 0.0;
      return Lat[size_t(Q * double(Lat.size() - 1))] * 1e3;
    };
    std::printf("serve: %llu requests (%d rejected) | interp %llu, jit %llu "
                "| compiles %llu (failed %llu, cache hits %llu) | batches "
                "%llu (max %llu)\n",
                (unsigned long long)St.Submitted, Rejected,
                (unsigned long long)St.InterpServed,
                (unsigned long long)St.JitServed,
                (unsigned long long)St.CompilesStarted,
                (unsigned long long)St.CompilesFailed,
                (unsigned long long)St.CacheHits,
                (unsigned long long)St.Batches,
                (unsigned long long)St.MaxBatch);
    std::printf("serve: latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n",
                Pct(0.50), Pct(0.95), Pct(0.99));
  }
  return 0;
}
