//===- tools/ftc.cpp - FreeTensor compiler driver ---------------------------===//
//
// A command-line front door to the compiler, mirroring how the original
// project is driven from Python:
//
//   ftc --workload subdivnet|longformer|softras|gat|spmm|sddmm|segsoftmax
//       [--print-ir]        print the staged IR
//       [--no-autoschedule] skip the rule passes
//       [--print-opt-ir]    print the IR after scheduling
//       [--emit-cpp FILE]   write the generated C++ to FILE ("-" = stdout)
//       [--grad]            also differentiate and report tapes
//       [--run N]           JIT-compile and time N executions
//       [--profile]         instrument the kernel (implies --run) and print
//                           the per-loop profile table; combine with
//                           FT_PROFILE=out.folded/out.json for file sinks
//       [--vectorize-width N] explicit SIMD width for auto_vectorize
//                           (0 = legacy ivdep-hint lowering only)
//       [--no-cache]        disable the kernel cache (sets FT_CACHE=0)
//       [--cache-dir DIR]   use DIR as the kernel cache (sets FT_CACHE_DIR)
//       [--serve N]         push N requests through the serving executor
//                           and report per-tier counts + latency
//                           percentiles (honors the FT_SERVE_* knobs)
//
//   ftc --top [--telemetry-dir DIR] [--watch]
//       text dashboard over the telemetry snapshot directory
//       (FT_TELEMETRY_DIR or --telemetry-dir): serving counters, latency
//       percentiles, per-tenant deadline met/missed, and the hot-kernel
//       ranking with req/s trends computed from the two newest snapshots.
//       --watch refreshes every second. Corrupt or partially-written
//       snapshots, and snapshots with a newer schema than this build
//       understands, are skipped with a one-line warning.
//
//   ftc --advise [--telemetry-dir DIR] [--specialize]
//       workload-characterization advisor: reads the per-fingerprint shape
//       table from the newest snapshot and nominates the (fingerprint,
//       shape) pairs worth specializing — ranked by requests x mean
//       latency (total served ns). With --specialize, nominations whose
//       fingerprint matches a shape-generic workload kernel are compiled
//       ahead of time (constant-folded extents + full autoschedule) into
//       the shared kernel cache, capped at FT_SPECIALIZE_MAX, so the
//       serving process promotes them from a warm cache instead of paying
//       the compile online.
//
//   ftc --dyn --workload W --serve N [--shapes M]
//       dynamic-shape serving demo: the shape-generic variant of the
//       workload (symbolic extents as runtime arguments) serves M distinct
//       shapes from ONE compiled kernel, then hot-bucket traffic triggers
//       a background specialized compile that hot-swaps in. Emits
//       greppable "dynshape:" summary lines.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "analysis/extents.h"
#include "autodiff/grad.h"
#include "autoschedule/autoschedule.h"
#include "codegen/codegen.h"
#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "pass/simplify.h"
#include "pass/specialize.h"
#include "serve/serve.h"
#include "serve/shape_key.h"
#include "support/json.h"
#include "workloads/sparse_workloads.h"
#include "workloads/workloads.h"

using namespace ft;
using namespace ft::workloads;

namespace {

struct Options {
  std::string Workload = "longformer";
  bool PrintIr = false;
  bool PrintOptIr = false;
  bool AutoScheduleEnabled = true;
  bool Grad = false;
  bool Profile = false;
  int VectorWidth = -1; ///< -1 = keep the AutoScheduleOptions default.
  std::string EmitCpp;
  int Run = 0;
  int Serve = 0;
  bool Top = false;
  bool Advise = false;
  bool Watch = false;
  std::string TelemetryDir;
  bool Dyn = false;
  int Shapes = 12;
  bool Specialize = false;
  bool CheckSchedule = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: ftc --workload "
      "subdivnet|longformer|softras|gat|spmm|sddmm|segsoftmax\n"
      "           [--print-ir] [--print-opt-ir] [--no-autoschedule]\n"
      "           [--emit-cpp FILE|-] [--grad] [--run N] [--profile]\n"
      "           [--vectorize-width N] [--no-cache] [--cache-dir DIR]\n"
      "           [--serve N]\n"
      "       ftc --dyn --workload W --serve N [--shapes M]\n"
      "       ftc --top [--telemetry-dir DIR] [--watch]\n"
      "       ftc --advise [--telemetry-dir DIR] [--specialize]\n"
      "       ftc --check-schedule --workload spmm|sddmm|segsoftmax\n");
  return 2;
}

struct Bound {
  Func F;
  std::map<std::string, Buffer> Store;
};

Bound buildWorkload(const std::string &Name) {
  Bound B;
  if (Name == "subdivnet") {
    SubdivNetConfig C;
    SubdivNetData D = makeSubdivNetData(C);
    B.F = buildSubdivNet(C);
    B.Store.emplace("e", std::move(D.E));
    B.Store.emplace("adj", std::move(D.Adj));
    B.Store.emplace("y", Buffer(DataType::Float32, {C.NFaces, C.Feats}));
  } else if (Name == "longformer") {
    LongformerConfig C;
    LongformerData D = makeLongformerData(C);
    B.F = buildLongformer(C);
    B.Store.emplace("Q", std::move(D.Q));
    B.Store.emplace("K", std::move(D.K));
    B.Store.emplace("V", std::move(D.V));
    B.Store.emplace("y", Buffer(DataType::Float32, {C.SeqLen, C.Feats}));
  } else if (Name == "softras") {
    SoftRasConfig C;
    SoftRasData D = makeSoftRasData(C);
    B.F = buildSoftRas(C);
    B.Store.emplace("verts", std::move(D.Verts));
    B.Store.emplace("px", std::move(D.Px));
    B.Store.emplace("py", std::move(D.Py));
    B.Store.emplace("img", Buffer(DataType::Float32, {C.numPixels()}));
  } else if (Name == "gat") {
    GATConfig C;
    GATData D = makeGATData(C);
    B.F = buildGAT(C);
    B.Store.emplace("h", std::move(D.H));
    B.Store.emplace("adj", std::move(D.Adj));
    B.Store.emplace("a1", std::move(D.A1));
    B.Store.emplace("a2", std::move(D.A2));
    B.Store.emplace("y", Buffer(DataType::Float32, {C.NNodes, C.Feats}));
  } else if (Name == "spmm") {
    SpMMConfig C;
    SpMMData D = makeSpMMData(C);
    B.F = buildSpMM(C, D.A.Nnz);
    B.Store.emplace("indptr", std::move(D.A.Indptr));
    B.Store.emplace("indices", std::move(D.A.Indices));
    B.Store.emplace("val", std::move(D.A.Val));
    B.Store.emplace("x", std::move(D.X));
    B.Store.emplace("y", Buffer(DataType::Float32, {C.Rows, C.Feats}));
  } else if (Name == "sddmm") {
    SDDMMConfig C;
    SDDMMData D = makeSDDMMData(C);
    const int64_t Nnz = D.A.Nnz;
    B.F = buildSDDMM(C, Nnz);
    B.Store.emplace("indptr", std::move(D.A.Indptr));
    B.Store.emplace("indices", std::move(D.A.Indices));
    B.Store.emplace("val", std::move(D.A.Val));
    B.Store.emplace("a", std::move(D.Da));
    B.Store.emplace("b", std::move(D.Db));
    B.Store.emplace("out_val", Buffer(DataType::Float32, {Nnz}));
  } else if (Name == "segsoftmax") {
    SegSoftmaxConfig C;
    SegSoftmaxData D = makeSegSoftmaxData(C);
    B.F = buildSegSoftmax(C, D.G.Nnz);
    B.Store.emplace("indptr", std::move(D.G.Indptr));
    B.Store.emplace("indices", std::move(D.G.Indices));
    B.Store.emplace("e", std::move(D.G.Val));
    B.Store.emplace("h", std::move(D.H));
    B.Store.emplace("y", Buffer(DataType::Float32, {C.Nodes, C.Feats}));
  }
  return B;
}

//===----------------------------------------------------------------------===//
// ftc --dyn: shape-generic serving demo
//===----------------------------------------------------------------------===//

/// The shape-generic (symbolic-extent) variant of \p Name with default
/// constant feature dimensions. Body is null for unknown names.
Func buildDynWorkload(const std::string &Name) {
  if (Name == "subdivnet")
    return buildSubdivNetDyn({});
  if (Name == "longformer")
    return buildLongformerDyn({});
  if (Name == "softras")
    return buildSoftRasDyn({});
  if (Name == "gat")
    return buildGATDyn({});
  if (Name == "spmm")
    return buildSpMMDyn({});
  if (Name == "sddmm")
    return buildSDDMMDyn({});
  if (Name == "segsoftmax")
    return buildSegSoftmaxDyn({});
  return {};
}

/// Argument store for the \p K-th distinct shape of the dyn workload:
/// deterministic input data of a size derived from K, the bound extent
/// scalars, and a zeroed output tensor.
std::map<std::string, Buffer> makeDynStore(const std::string &Name,
                                           int64_t K) {
  std::map<std::string, Buffer> S;
  if (Name == "subdivnet") {
    SubdivNetConfig C;
    C.NFaces = 64 + 16 * K;
    SubdivNetData D = makeSubdivNetData(C);
    S.emplace("n", Buffer::scalarI64(C.NFaces));
    S.emplace("e", std::move(D.E));
    S.emplace("adj", std::move(D.Adj));
    S.emplace("y", Buffer(DataType::Float32, {C.NFaces, C.Feats}));
  } else if (Name == "longformer") {
    LongformerConfig C;
    C.SeqLen = 64 + 16 * K;
    LongformerData D = makeLongformerData(C);
    S.emplace("n", Buffer::scalarI64(C.SeqLen));
    S.emplace("Q", std::move(D.Q));
    S.emplace("K", std::move(D.K));
    S.emplace("V", std::move(D.V));
    S.emplace("y", Buffer(DataType::Float32, {C.SeqLen, C.Feats}));
  } else if (Name == "softras") {
    SoftRasConfig C;
    C.NFaces = 16 + 4 * K;
    C.ImgH = 4;
    C.ImgW = 4 + K;
    SoftRasData D = makeSoftRasData(C);
    S.emplace("nf", Buffer::scalarI64(C.NFaces));
    S.emplace("np", Buffer::scalarI64(C.numPixels()));
    S.emplace("verts", std::move(D.Verts));
    S.emplace("px", std::move(D.Px));
    S.emplace("py", std::move(D.Py));
    S.emplace("img", Buffer(DataType::Float32, {C.numPixels()}));
  } else if (Name == "gat") {
    GATConfig C;
    C.NNodes = 128 + 32 * K;
    GATData D = makeGATData(C);
    S.emplace("n", Buffer::scalarI64(C.NNodes));
    S.emplace("h", std::move(D.H));
    S.emplace("adj", std::move(D.Adj));
    S.emplace("a1", std::move(D.A1));
    S.emplace("a2", std::move(D.A2));
    S.emplace("y", Buffer(DataType::Float32, {C.NNodes, C.Feats}));
  } else if (Name == "spmm") {
    SpMMConfig C;
    C.Rows = 64 + 16 * K;
    C.Seed += static_cast<uint64_t>(K); // nnz churns shape-to-shape
    SpMMData D = makeSpMMData(C);
    S.emplace("m", Buffer::scalarI64(C.Rows));
    S.emplace("nnz", Buffer::scalarI64(D.A.Nnz));
    S.emplace("indptr", std::move(D.A.Indptr));
    S.emplace("indices", std::move(D.A.Indices));
    S.emplace("val", std::move(D.A.Val));
    S.emplace("x", std::move(D.X));
    S.emplace("y", Buffer(DataType::Float32, {C.Rows, C.Feats}));
  } else if (Name == "sddmm") {
    SDDMMConfig C;
    C.Rows = 64 + 16 * K;
    C.Seed += static_cast<uint64_t>(K);
    SDDMMData D = makeSDDMMData(C);
    const int64_t Nnz = D.A.Nnz;
    S.emplace("m", Buffer::scalarI64(C.Rows));
    S.emplace("nnz", Buffer::scalarI64(Nnz));
    S.emplace("indptr", std::move(D.A.Indptr));
    S.emplace("indices", std::move(D.A.Indices));
    S.emplace("val", std::move(D.A.Val));
    S.emplace("a", std::move(D.Da));
    S.emplace("b", std::move(D.Db));
    S.emplace("out_val", Buffer(DataType::Float32, {Nnz}));
  } else if (Name == "segsoftmax") {
    SegSoftmaxConfig C;
    C.Nodes = 64 + 16 * K;
    C.Seed += static_cast<uint64_t>(K);
    SegSoftmaxData D = makeSegSoftmaxData(C);
    S.emplace("m", Buffer::scalarI64(C.Nodes));
    S.emplace("nnz", Buffer::scalarI64(D.G.Nnz));
    S.emplace("indptr", std::move(D.G.Indptr));
    S.emplace("indices", std::move(D.G.Indices));
    S.emplace("e", std::move(D.G.Val));
    S.emplace("h", std::move(D.H));
    S.emplace("y", Buffer(DataType::Float32, {C.Nodes, C.Feats}));
  }
  return S;
}

/// Cross-checks the output tensor of \p Store against the plain-C++ naive
/// implementation at the store's bound shape. Returns the max |diff|.
double dynStoreError(const std::string &Name,
                     std::map<std::string, Buffer> &Store) {
  auto MaxDiff = [](const Buffer &Got, const std::vector<float> &Want) {
    double M = 0;
    for (int64_t I = 0; I < Got.numel(); ++I)
      M = std::max(M, double(std::fabs(Got.as<float>()[I] - Want[I])));
    return M;
  };
  if (Name == "subdivnet") {
    SubdivNetConfig C;
    C.NFaces = Store.at("n").getI(0);
    std::vector<float> Y(C.NFaces * C.Feats);
    subdivnetNaive(C, Store.at("e").as<float>(),
                   Store.at("adj").as<int64_t>(), Y.data());
    return MaxDiff(Store.at("y"), Y);
  }
  if (Name == "longformer") {
    LongformerConfig C;
    C.SeqLen = Store.at("n").getI(0);
    std::vector<float> Y(C.SeqLen * C.Feats);
    longformerNaive(C, Store.at("Q").as<float>(), Store.at("K").as<float>(),
                    Store.at("V").as<float>(), Y.data());
    return MaxDiff(Store.at("y"), Y);
  }
  if (Name == "softras") {
    SoftRasConfig C;
    C.NFaces = Store.at("nf").getI(0);
    C.ImgH = 1;
    C.ImgW = Store.at("np").getI(0); // numPixels() is all that matters
    std::vector<float> Img(C.numPixels());
    softrasNaive(C, Store.at("verts").as<float>(),
                 Store.at("px").as<float>(), Store.at("py").as<float>(),
                 Img.data());
    return MaxDiff(Store.at("img"), Img);
  }
  if (Name == "gat") {
    GATConfig C;
    C.NNodes = Store.at("n").getI(0);
    std::vector<float> Y(C.NNodes * C.Feats);
    gatNaive(C, Store.at("h").as<float>(), Store.at("adj").as<int64_t>(),
             Store.at("a1").as<float>(), Store.at("a2").as<float>(),
             Y.data());
    return MaxDiff(Store.at("y"), Y);
  }
  if (Name == "spmm") {
    const int64_t Rows = Store.at("m").getI(0);
    const int64_t Feats = SpMMConfig{}.Feats;
    const int64_t *P = Store.at("indptr").as<int64_t>();
    const int64_t *Ci = Store.at("indices").as<int64_t>();
    const float *V = Store.at("val").as<float>();
    const float *X = Store.at("x").as<float>();
    std::vector<float> Y(Rows * Feats, 0.f);
    for (int64_t I = 0; I < Rows; ++I)
      for (int64_t J = P[I]; J < P[I + 1]; ++J)
        for (int64_t F = 0; F < Feats; ++F)
          Y[I * Feats + F] += V[J] * X[Ci[J] * Feats + F];
    return MaxDiff(Store.at("y"), Y);
  }
  if (Name == "sddmm") {
    const int64_t Rows = Store.at("m").getI(0);
    const int64_t Nnz = Store.at("nnz").getI(0);
    const int64_t Feats = SDDMMConfig{}.Feats;
    const int64_t *P = Store.at("indptr").as<int64_t>();
    const int64_t *Ci = Store.at("indices").as<int64_t>();
    const float *V = Store.at("val").as<float>();
    const float *Da = Store.at("a").as<float>();
    const float *Db = Store.at("b").as<float>();
    std::vector<float> Out(Nnz, 0.f);
    for (int64_t I = 0; I < Rows; ++I)
      for (int64_t J = P[I]; J < P[I + 1]; ++J) {
        float Dot = 0;
        for (int64_t F = 0; F < Feats; ++F)
          Dot += Da[I * Feats + F] * Db[Ci[J] * Feats + F];
        Out[J] = V[J] * Dot;
      }
    return MaxDiff(Store.at("out_val"), Out);
  }
  if (Name == "segsoftmax") {
    const int64_t Nodes = Store.at("m").getI(0);
    const int64_t Feats = SegSoftmaxConfig{}.Feats;
    const int64_t *P = Store.at("indptr").as<int64_t>();
    const int64_t *Ci = Store.at("indices").as<int64_t>();
    const float *E = Store.at("e").as<float>();
    const float *H = Store.at("h").as<float>();
    std::vector<float> Y(Nodes * Feats, 0.f);
    for (int64_t I = 0; I < Nodes; ++I) {
      float Mx = -1e30f;
      for (int64_t J = P[I]; J < P[I + 1]; ++J)
        Mx = std::max(Mx, E[J]);
      float Sum = 0;
      for (int64_t J = P[I]; J < P[I + 1]; ++J)
        Sum += std::exp(E[J] - Mx);
      for (int64_t J = P[I]; J < P[I + 1]; ++J) {
        const float W = std::exp(E[J] - Mx) / Sum;
        for (int64_t F = 0; F < Feats; ++F)
          Y[I * Feats + F] += W * H[Ci[J] * Feats + F];
      }
    }
    return MaxDiff(Store.at("y"), Y);
  }
  return 0;
}

int runDyn(Options &O) {
  Func DynF = buildDynWorkload(O.Workload);
  if (!DynF.Body) {
    std::fprintf(stderr, "unknown workload: %s\n", O.Workload.c_str());
    return usage();
  }
  ExtentSpec Spec = extentParamsOf(DynF);
  std::string ExtNames;
  for (const std::string &N : Spec.Params)
    ExtNames += (ExtNames.empty() ? "" : ",") + N;
  std::printf("workload %s (dyn): %zu parameters, extent args [%s]\n",
              O.Workload.c_str(), DynF.Params.size(), ExtNames.c_str());
  if (O.PrintIr)
    std::printf("\n=== staged IR ===\n%s\n", toString(DynF.Body).c_str());

  Func Opt = DynF;
  if (O.AutoScheduleEnabled) {
    AutoScheduleReport R;
    AutoScheduleOptions ASOpts;
    if (O.VectorWidth >= 0)
      ASOpts.VectorWidth = O.VectorWidth;
    Opt = autoScheduleFunc(DynF, ASOpts, &R);
    std::printf("auto-schedule: fused=%d vectorized=%d parallelized=%d "
                "localized=%d lib=%d unrolled=%d\n",
                R.Fused, R.Vectorized, R.Parallelized, R.Localized,
                R.LibCalls, R.Unrolled);
  }
  if (O.PrintOptIr)
    std::printf("\n=== scheduled IR ===\n%s\n", toString(Opt.Body).c_str());
  if (O.Serve <= 0)
    return 0;

  serve::Config C = serve::Config::fromEnv();
  serve::Executor Ex(C);
  const int M = std::max(1, O.Shapes);
  std::vector<std::map<std::string, Buffer>> Stores;
  std::vector<std::map<std::string, Buffer *>> Args;
  Stores.reserve(M);
  for (int K = 0; K < M; ++K)
    Stores.push_back(makeDynStore(O.Workload, K));
  for (auto &St : Stores) {
    std::map<std::string, Buffer *> A;
    for (auto &[N, Buf] : St)
      A[N] = &Buf;
    Args.push_back(std::move(A));
  }

  // Phase 1 — ragged traffic: one request per distinct shape, all against
  // the single shape-generic fingerprint. Early requests are answered by
  // the interpreter while the ONE generic compile runs in the background.
  auto Await = [&](std::vector<std::future<serve::Response>> &Futs,
                   uint64_t &SpecServed) -> bool {
    for (auto &Fu : Futs) {
      serve::Response R = Fu.get();
      if (!R.S.ok()) {
        std::fprintf(stderr, "dynshape: request failed: %s\n",
                     R.S.message().c_str());
        return false;
      }
      if (R.Specialized)
        ++SpecServed;
    }
    Futs.clear();
    return true;
  };
  uint64_t SpecSeen = 0;
  std::vector<std::future<serve::Response>> Futs;
  for (int K = 0; K < M; ++K) {
    auto R = Ex.submit(Opt, Args[K]);
    if (!R.ok()) {
      std::fprintf(stderr, "dynshape: submit failed: %s\n",
                   R.message().c_str());
      return 1;
    }
    Futs.push_back(std::move(*R));
  }
  if (!Await(Futs, SpecSeen))
    return 1;
  Ex.drain(); // generic compile has landed (or failed to interp-pin)
  serve::ServeStats St1 = Ex.stats();
  std::printf("dynshape: phase1 shapes=%d generic_compiles=%llu "
              "interp=%llu jit=%llu\n",
              M, (unsigned long long)St1.CompilesStarted,
              (unsigned long long)St1.InterpServed,
              (unsigned long long)St1.JitServed);

  // Differential check: every shape's output against the naive C++ loops.
  double MaxErr = 0;
  for (int K = 0; K < M; ++K)
    MaxErr = std::max(MaxErr, dynStoreError(O.Workload, Stores[K]));
  std::printf("dynshape: differential max_err=%.2e over %d shapes (%s)\n",
              MaxErr, M, MaxErr < 1e-3 ? "ok" : "FAIL");

  // Phase 2 — a hot bucket: hammer shape 0 past FT_SPECIALIZE_AFTER so it
  // is nominated, then drain so the specialized compile completes.
  uint64_t Hot = std::max<uint64_t>(C.SpecializeAfter + 1, O.Serve);
  for (uint64_t I = 0; I < Hot; ++I) {
    auto R = Ex.submit(Opt, Args[0]);
    if (R.ok())
      Futs.push_back(std::move(*R));
  }
  if (!Await(Futs, SpecSeen))
    return 1;
  Ex.drain();

  // Phase 3 — the hot bucket again: now served by the specialized kernel.
  for (int I = 0; I < std::max(1, O.Serve); ++I) {
    auto R = Ex.submit(Opt, Args[0]);
    if (R.ok())
      Futs.push_back(std::move(*R));
  }
  if (!Await(Futs, SpecSeen))
    return 1;
  Ex.drain();
  double HotErr = dynStoreError(O.Workload, Stores[0]);

  serve::ServeStats St = Ex.stats();
  std::printf("dynshape: spec_compiles=%llu spec_failed=%llu "
              "spec_served=%llu hot_err=%.2e\n",
              (unsigned long long)St.SpecCompilesStarted,
              (unsigned long long)St.SpecCompilesFailed,
              (unsigned long long)St.SpecServed, HotErr);
  std::printf("dynshape: summary shapes=%d generic_compiles=%llu "
              "spec_compiles=%llu promoted=%d differential=%s\n",
              M, (unsigned long long)St.CompilesStarted,
              (unsigned long long)St.SpecCompilesStarted,
              St.SpecServed > 0 ? 1 : 0,
              MaxErr < 1e-3 && HotErr < 1e-3 ? "ok" : "FAIL");
  return MaxErr < 1e-3 && HotErr < 1e-3 ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// ftc --top: telemetry snapshot dashboard
//===----------------------------------------------------------------------===//

/// Lexicographically sorted snap-*.json names in \p Dir. Snapshot names
/// embed zero-padded epoch-ms + seq, so this is age order.
std::vector<std::string> listSnapshots(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> Names;
  std::error_code Ec;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec)) {
    std::string N = E.path().filename().string();
    if (N.rfind("snap-", 0) == 0 && N.size() > 5 &&
        N.rfind(".json") == N.size() - 5)
      Names.push_back(N);
  }
  std::sort(Names.begin(), Names.end());
  return Names;
}

/// Newest snapshot schema this build understands. Snapshots stamped with a
/// later version are skipped (forward compatibility is not assumed: a v3
/// writer may have changed section shapes under us).
constexpr int kMaxSchema = 2;

/// Schema version of a parsed snapshot document:
/// "freetensor-telemetry/vN" -> N, 0 when missing or malformed.
int schemaVersionOf(const json::Value &S) {
  const std::string &Sc = S.str("schema");
  static const std::string Prefix = "freetensor-telemetry/v";
  if (Sc.rfind(Prefix, 0) != 0)
    return 0;
  int V = std::atoi(Sc.c_str() + Prefix.size());
  return V > 0 ? V : 0;
}

struct LoadedSnapshot {
  std::string Name;
  json::Value V;
};

/// Walks the snapshot directory newest-backwards and returns up to \p Max
/// usable snapshots, newest first. A corrupt or partially-written file
/// (the exporter renames atomically, but a crashed writer or a copying
/// tool can leave a truncated one) and a snapshot with a schema newer
/// than kMaxSchema are each skipped with a one-line warning — the
/// dashboard degrades to older snapshots instead of aborting.
std::vector<LoadedSnapshot> loadSnapshots(const std::string &Dir,
                                          size_t Max) {
  namespace fs = std::filesystem;
  std::vector<std::string> Names = listSnapshots(Dir);
  std::vector<LoadedSnapshot> Out;
  for (auto It = Names.rbegin(); It != Names.rend() && Out.size() < Max;
       ++It) {
    auto P = json::parseFile((fs::path(Dir) / *It).string());
    if (!P.ok()) {
      std::fprintf(stderr, "ftc: skipping %s (corrupt snapshot: %s)\n",
                   It->c_str(), P.message().c_str());
      continue;
    }
    int V = schemaVersionOf(*P);
    if (V == 0 || V > kMaxSchema) {
      std::fprintf(stderr,
                   "ftc: skipping %s (schema \"%s\"; this build reads up "
                   "to freetensor-telemetry/v%d)\n",
                   It->c_str(), P->str("schema").c_str(), kMaxSchema);
      continue;
    }
    Out.push_back({*It, std::move(*P)});
  }
  return Out;
}

/// Renders one dashboard frame from the two newest usable snapshots.
/// Returns false when the directory holds no usable snapshot yet.
bool renderTop(const std::string &Dir) {
  std::vector<LoadedSnapshot> Snaps = loadSnapshots(Dir, 2);
  if (Snaps.empty()) {
    std::fprintf(stderr, "ftc --top: no usable snapshots in %s\n",
                 Dir.c_str());
    return false;
  }
  // Previous snapshot (when present) powers the req/s trend column.
  bool HavePrev = Snaps.size() >= 2;
  const json::Value &Prev = HavePrev ? Snaps[1].V : Snaps[0].V;

  const json::Value &S = Snaps[0].V;
  const std::string &LatestName = Snaps[0].Name;
  double NowMs = double(std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::system_clock::now().time_since_epoch())
                            .count());
  double AgeSec = (NowMs - S.num("wall_unix_ms")) / 1e3;
  std::printf("telemetry %s | %s | seq %.0f | age %.1fs | schema %s\n", Dir.c_str(),
              LatestName.c_str(), S.num("seq"), AgeSec < 0 ? 0 : AgeSec,
              S.str("schema").c_str());

  if (const json::Value *C = S.get("counters")) {
    std::printf("serve: submitted %.0f | interp %.0f, jit %.0f | rejected "
                "%.0f | compiles %.0f (failed %.0f, cache hits %.0f) | "
                "batches %.0f | run errors %.0f\n",
                C->num("serve/submitted"), C->num("serve/interp_served"),
                C->num("serve/jit_served"), C->num("serve/rejected"),
                C->num("serve/compiles_started"),
                C->num("serve/compiles_failed"), C->num("serve/cache_hits"),
                C->num("serve/batches"), C->num("serve/run_errors"));
    // Shape-bucket specialization: generic = jit minus specialized serves.
    std::printf("spec[shape-buckets]: generic %.0f | specialized %.0f | "
                "spec compiles %.0f (failed %.0f)\n",
                C->num("serve/jit_served") - C->num("serve/spec_served"),
                C->num("serve/spec_served"),
                C->num("serve/spec_compiles_started"),
                C->num("serve/spec_compiles_failed"));
  }
  if (const json::Value *Hs = S.get("histograms")) {
    for (const json::Value &H : Hs->items()) {
      const std::string &N = H.str("name");
      if (N != "serve/queue_wait_ns" && N != "serve/run_ns_jit" &&
          N != "serve/run_ns_interp" && N != "serve/compile_ns")
        continue;
      std::printf("%-22s n=%-8.0f p50 %9.3f ms  p95 %9.3f ms  p99 %9.3f ms\n",
                  N.c_str(), H.num("count"), H.num("p50") / 1e6,
                  H.num("p95") / 1e6, H.num("p99") / 1e6);
    }
  }
  if (const json::Value *F = S.get("flight"))
    std::printf("flight: %.0f recorded | ok %.0f | invalid_args %.0f | "
                "run_errors %.0f | rejected %.0f full, %.0f shutdown\n",
                F->num("recorded"), F->num("ok"), F->num("invalid_args"),
                F->num("run_errors"), F->num("rejected_full"),
                F->num("rejected_shutdown"));
  if (const json::Value *Ts = S.get("tenants")) {
    for (const json::Value &T : Ts->items()) {
      double Met = T.num("met"), Missed = T.num("missed");
      const json::Value *Slack = T.get("slack");
      std::printf("slo[%s]: %.0f reqs | deadline met %.0f, missed %.0f",
                  T.str("tenant").c_str(), T.num("requests"), Met, Missed);
      if (Slack && Met > 0)
        std::printf(" | slack p50 %.3f ms, min %.3f ms",
                    Slack->num("p50_ns") / 1e6, Slack->num("min_ns") / 1e6);
      std::printf("\n");
    }
  }

  std::printf("\n%-20s %9s %12s %12s %6s %7s %7s %10s\n", "FINGERPRINT", "REQS",
              "MEAN ms", "TOTAL ms", "ERR", "JIT", "INTERP", "TREND r/s");
  const json::Value *Kernels = S.get("kernels");
  if (!Kernels || Kernels->items().empty()) {
    std::printf("(no kernels served yet)\n");
    return true;
  }
  double DtSec = HavePrev
                     ? (S.num("wall_unix_ms") - Prev.num("wall_unix_ms")) / 1e3
                     : 0;
  size_t Shown = 0;
  for (const json::Value &K : Kernels->items()) {
    if (Shown++ >= 20)
      break;
    std::string Trend = "-";
    if (HavePrev && DtSec > 0) {
      if (const json::Value *PK = Prev.get("kernels")) {
        for (const json::Value &P : PK->items()) {
          if (P.str("fingerprint") != K.str("fingerprint"))
            continue;
          double Dr = K.num("requests") - P.num("requests");
          char Buf[32];
          std::snprintf(Buf, sizeof(Buf), "%+.1f", Dr / DtSec);
          Trend = Buf;
          break;
        }
      }
    }
    std::printf("%-20s %9.0f %12.3f %12.3f %6.0f %7.0f %7.0f %10s\n",
                K.str("fingerprint").c_str(), K.num("requests"),
                K.num("mean_ns") / 1e6, K.num("total_ns") / 1e6,
                K.num("errors"), K.num("jit"), K.num("interp"), Trend.c_str());
  }
  return true;
}

/// --telemetry-dir, falling back to FT_TELEMETRY_DIR ("" when neither).
std::string telemetryDirOf(const Options &O) {
  std::string Dir = O.TelemetryDir;
  if (Dir.empty())
    if (const char *E = std::getenv("FT_TELEMETRY_DIR"))
      Dir = E;
  return Dir;
}

int runTop(const Options &O) {
  std::string Dir = telemetryDirOf(O);
  if (Dir.empty()) {
    std::fprintf(stderr,
                 "ftc --top: no snapshot directory (pass --telemetry-dir or "
                 "set FT_TELEMETRY_DIR)\n");
    return 2;
  }
  if (!O.Watch)
    return renderTop(Dir) ? 0 : 1;
  for (;;) {
    std::printf("\033[2J\033[H");
    renderTop(Dir);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
}

//===----------------------------------------------------------------------===//
// ftc --advise: hot-shape specialization advisor
//===----------------------------------------------------------------------===//

/// One nomination row assembled from the snapshot's "shapes" section.
struct AdviseRow {
  std::string Fingerprint;
  std::string Shape;
  double Requests = 0;
  double TotalNs = 0;
  double MeanNs = 0;
  double P95Ns = 0;
};

int runAdvise(const Options &O) {
  std::string Dir = telemetryDirOf(O);
  if (Dir.empty()) {
    std::fprintf(stderr,
                 "ftc --advise: no snapshot directory (pass --telemetry-dir "
                 "or set FT_TELEMETRY_DIR)\n");
    return 2;
  }
  std::vector<LoadedSnapshot> Snaps = loadSnapshots(Dir, 1);
  if (Snaps.empty()) {
    std::fprintf(stderr, "ftc --advise: no usable snapshots in %s\n",
                 Dir.c_str());
    return 1;
  }
  const json::Value &S = Snaps[0].V;
  const json::Value *Shapes = S.get("shapes");

  std::vector<AdviseRow> Rows;
  // Overflow buckets per fingerprint: shapes the bounded table stopped
  // tracking individually. Reported separately — nominating "other" would
  // be meaningless, but a fat overflow bucket means the cap is hiding the
  // real workload.
  std::vector<std::pair<std::string, double>> Overflow;
  if (Shapes) {
    for (const json::Value &Fp : Shapes->items()) {
      const std::string &F = Fp.str("fingerprint");
      if (const json::Value *Rs = Fp.get("rows"))
        for (const json::Value &R : Rs->items())
          Rows.push_back({F, R.str("shape"), R.num("requests"),
                          R.num("total_ns"), R.num("mean_ns"),
                          R.num("p95_ns")});
      if (const json::Value *Ot = Fp.get("other"))
        if (Ot->num("requests") > 0)
          Overflow.emplace_back(F, Ot->num("requests"));
    }
  }
  std::printf("advise: %s | %s | schema %s\n", Dir.c_str(),
              Snaps[0].Name.c_str(), S.str("schema").c_str());
  if (Rows.empty()) {
    std::printf("advise: no per-shape workload data recorded yet (serve "
                "traffic with FT_TELEMETRY_DIR set)\n");
    return 0;
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const AdviseRow &A, const AdviseRow &B) {
              return A.TotalNs > B.TotalNs;
            });
  size_t N = std::min<size_t>(Rows.size(), 10);
  std::printf("advise: top %zu of %zu (fingerprint, shape) rows by total "
              "served time:\n",
              N, Rows.size());
  for (size_t I = 0; I < N; ++I) {
    const AdviseRow &R = Rows[I];
    std::printf("  %zu. specialize %s at shape `%s` — %.0f reqs, mean "
                "%.3f ms, p95 %.3f ms, total %.1f ms\n",
                I + 1, R.Fingerprint.c_str(), R.Shape.c_str(), R.Requests,
                R.MeanNs / 1e6, R.P95Ns / 1e6, R.TotalNs / 1e6);
  }
  for (const auto &[F, Reqs] : Overflow)
    std::printf("  note: %s served %.0f reqs at shapes beyond the table "
                "cap (raise FT_SHAPE_TABLE_CAP to track them)\n",
                F.c_str(), Reqs);
  if (!O.Specialize)
    return 0;

  // --specialize: pre-compile nominated shape buckets into the shared
  // kernel cache. Only fingerprints we can reconstruct locally — the
  // shape-generic workload kernels, staged exactly as `ftc --dyn` serves
  // them — are actionable; foreign fingerprints are skipped. The compile
  // pipeline replicates the serving executor's specialized path verbatim
  // (specializeFunc -> simplify -> autoScheduleFunc -> compile at
  // FT_SPECIALIZE_OPT_FLAGS) so the published cache entry is keyed
  // identically and the server's own compile becomes a warm cache hit.
  serve::Config SC = serve::Config::fromEnv();
  std::map<std::string, std::pair<std::string, Func>> ByFp;
  for (const char *W : {"subdivnet", "longformer", "softras", "gat", "spmm",
                        "sddmm", "segsoftmax"}) {
    Func DynF = buildDynWorkload(W);
    Func Served = DynF;
    if (O.AutoScheduleEnabled) {
      AutoScheduleOptions ASOpts;
      if (O.VectorWidth >= 0)
        ASOpts.VectorWidth = O.VectorWidth;
      Served = autoScheduleFunc(DynF, ASOpts);
    }
    uint64_t Key = kernel_cache::cacheKey(Served, {}, SC.OptFlags).Full;
    char Hex[24];
    std::snprintf(Hex, sizeof(Hex), "0x%016llx",
                  (unsigned long long)Key);
    ByFp.emplace(Hex, std::make_pair(std::string(W), std::move(Served)));
  }
  size_t Budget = SC.SpecializeMax;
  size_t Compiled = 0;
  for (const AdviseRow &R : Rows) {
    if (Compiled >= Budget)
      break;
    auto It = ByFp.find(R.Fingerprint);
    if (It == ByFp.end())
      continue;
    auto ExtR = serve::parseScalarExtents(R.Shape);
    if (!ExtR.ok()) {
      std::fprintf(stderr, "advise: skipping shape `%s`: %s\n",
                   R.Shape.c_str(), ExtR.message().c_str());
      continue;
    }
    if (ExtR->empty())
      continue;
    Func SF = specializeFunc(It->second.second, *ExtR);
    Func In = autoScheduleFunc(simplify(SF));
    auto K = Kernel::compile(In, {}, SC.SpecOptFlags);
    if (!K.ok()) {
      std::fprintf(stderr,
                   "advise: specialized compile failed for %s at `%s`: %s\n",
                   It->second.first.c_str(), R.Shape.c_str(),
                   K.message().c_str());
      continue;
    }
    ++Compiled;
    std::printf("advise: specialized %s (%s) at `%s`: %.2f s (cache: %s)\n",
                It->second.first.c_str(), R.Fingerprint.c_str(),
                R.Shape.c_str(), K->compileSeconds(),
                nameOf(K->cacheTier()));
  }
  std::printf("advise: %zu specialized kernel(s) in the cache (cap %zu)\n",
              Compiled, Budget);
  return 0;
}

/// `ftc --check-schedule`: drives the two schedule primitives the ragged
/// dependence analysis must decide — parallelize on the dense row loop
/// (legal: indptr monotonicity proves distinct rows touch disjoint
/// segments) and vectorize on the data-dependent segment loop (rejected
/// with a reason) — and prints the audit verdicts for check.sh to grep.
int runCheckSchedule(Options &O) {
  std::string RowLabel = "rows", SegLabel;
  Func F;
  if (O.Workload == "spmm") {
    F = buildSpMMDyn(SpMMConfig{});
    SegLabel = "spmm_seg";
  } else if (O.Workload == "sddmm") {
    F = buildSDDMMDyn(SDDMMConfig{});
    SegLabel = "sddmm_seg";
  } else if (O.Workload == "segsoftmax") {
    F = buildSegSoftmaxDyn(SegSoftmaxConfig{});
    RowLabel = "nodes";
    SegLabel = "seg_agg";
  } else {
    std::fprintf(stderr, "--check-schedule needs a sparse workload "
                         "(spmm|sddmm|segsoftmax), got `%s`\n",
                 O.Workload.c_str());
    return usage();
  }

  trace::setAuditEnabled(true);
  size_t Base = trace::auditSize();
  Schedule S(F);
  auto Row = S.findByLabel(RowLabel);
  if (!Row.ok()) {
    std::fprintf(stderr, "no `%s` loop: %s\n", RowLabel.c_str(),
                 Row.message().c_str());
    return 1;
  }
  Status Par = S.parallelize(*Row);
  auto Seg = S.findByLabel(SegLabel);
  if (!Seg.ok()) {
    std::fprintf(stderr, "no `%s` loop: %s\n", SegLabel.c_str(),
                 Seg.message().c_str());
    return 1;
  }
  Status Vec = S.vectorize(*Seg, 8);

  bool Ok = true;
  for (const trace::ScheduleDecision &D : trace::auditLogSince(Base)) {
    std::printf("schedule-audit: %s %s applied=%d%s%s\n", D.Primitive.c_str(),
                (D.Primitive == "parallelize" ? RowLabel : SegLabel).c_str(),
                D.Applied ? 1 : 0, D.Reason.empty() ? "" : " reason=",
                D.Reason.c_str());
    if (D.Primitive == "parallelize")
      Ok = Ok && D.Applied;
    if (D.Primitive == "vectorize")
      Ok = Ok && !D.Applied &&
           D.Reason.find("data-dependent") != std::string::npos;
  }
  trace::setAuditEnabled(false);
  Ok = Ok && Par.ok() && !Vec.ok();
  std::printf("check-schedule %s: row loop `%s` parallel=%s, segment loop "
              "`%s` vectorize=%s\n",
              O.Workload.c_str(), RowLabel.c_str(),
              Par.ok() ? "legal" : "REJECTED", SegLabel.c_str(),
              Vec.ok() ? "ACCEPTED (bug)" : "rejected");
  return Ok ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  Options O;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--workload" && I + 1 < argc)
      O.Workload = argv[++I];
    else if (A == "--print-ir")
      O.PrintIr = true;
    else if (A == "--print-opt-ir")
      O.PrintOptIr = true;
    else if (A == "--no-autoschedule")
      O.AutoScheduleEnabled = false;
    else if (A == "--grad")
      O.Grad = true;
    else if (A == "--profile")
      O.Profile = true;
    else if (A == "--emit-cpp" && I + 1 < argc)
      O.EmitCpp = argv[++I];
    else if (A == "--run" && I + 1 < argc)
      O.Run = std::atoi(argv[++I]);
    else if (A == "--serve" && I + 1 < argc)
      O.Serve = std::atoi(argv[++I]);
    else if (A == "--vectorize-width" && I + 1 < argc)
      O.VectorWidth = std::atoi(argv[++I]);
    else if (A == "--no-cache")
      ::setenv("FT_CACHE", "0", /*overwrite=*/1);
    else if (A == "--cache-dir" && I + 1 < argc)
      ::setenv("FT_CACHE_DIR", argv[++I], /*overwrite=*/1);
    else if (A == "--top")
      O.Top = true;
    else if (A == "--advise")
      O.Advise = true;
    else if (A == "--watch")
      O.Watch = true;
    else if (A == "--telemetry-dir" && I + 1 < argc)
      O.TelemetryDir = argv[++I];
    else if (A == "--dyn")
      O.Dyn = true;
    else if (A == "--shapes" && I + 1 < argc)
      O.Shapes = std::atoi(argv[++I]);
    else if (A == "--specialize")
      O.Specialize = true;
    else if (A == "--check-schedule")
      O.CheckSchedule = true;
    else
      return usage();
  }

  if (O.CheckSchedule)
    return runCheckSchedule(O);
  if (O.Top)
    return runTop(O);
  if (O.Advise)
    return runAdvise(O);
  if (O.Dyn)
    return runDyn(O);

  Bound B = buildWorkload(O.Workload);
  if (!B.F.Body) {
    std::fprintf(stderr, "unknown workload: %s\n", O.Workload.c_str());
    return usage();
  }
  std::printf("workload %s: %zu parameters, function `%s`\n",
              O.Workload.c_str(), B.F.Params.size(), B.F.Name.c_str());

  if (O.PrintIr)
    std::printf("\n=== staged IR ===\n%s\n", toString(B.F.Body).c_str());

  Func Opt = B.F;
  if (O.AutoScheduleEnabled) {
    AutoScheduleReport R;
    AutoScheduleOptions ASOpts;
    if (O.VectorWidth >= 0)
      ASOpts.VectorWidth = O.VectorWidth;
    Opt = autoScheduleFunc(B.F, ASOpts, &R);
    std::printf("auto-schedule: fused=%d vectorized=%d parallelized=%d "
                "localized=%d lib=%d unrolled=%d\n",
                R.Fused, R.Vectorized, R.Parallelized, R.Localized,
                R.LibCalls, R.Unrolled);
  }
  if (O.PrintOptIr)
    std::printf("\n=== scheduled IR ===\n%s\n", toString(Opt.Body).c_str());

  if (!O.EmitCpp.empty()) {
    std::string Src = generateCpp(Opt);
    if (O.EmitCpp == "-") {
      std::printf("\n=== generated C++ ===\n%s\n", Src.c_str());
    } else {
      std::ofstream Out(O.EmitCpp);
      Out << Src;
      std::printf("wrote %zu bytes of C++ to %s\n", Src.size(),
                  O.EmitCpp.c_str());
    }
  }

  if (O.Grad) {
    auto G = grad(B.F, {B.F.Params[0]});
    if (!G.ok()) {
      std::printf("grad: %s\n", G.message().c_str());
    } else {
      std::printf("grad w.r.t. `%s`: %zu tape(s)", B.F.Params[0].c_str(),
                  G->Tapes.size());
      for (const std::string &T : G->Tapes)
        std::printf(" %s", T.c_str());
      std::printf("\n");
    }
  }

  if (O.Profile && O.Run <= 0)
    O.Run = 1;

  if (O.Run > 0) {
    CodegenOptions CgOpts;
    CgOpts.Profile = O.Profile || profile::envEnabled();
    auto K = Kernel::compile(Opt, CgOpts);
    if (!K.ok()) {
      std::fprintf(stderr, "compile failed: %s\n", K.message().c_str());
      return 1;
    }
    std::printf("JIT compile: %.2f s (cache: %s)\n", K->compileSeconds(),
                nameOf(K->cacheTier()));
    std::map<std::string, Buffer *> Args;
    for (auto &[N, Buf] : B.Store)
      Args[N] = &Buf;
    Status S = K->run(Args); // Warm up.
    if (!S.ok()) {
      std::fprintf(stderr, "run failed: %s\n", S.message().c_str());
      return 1;
    }
    auto T0 = std::chrono::steady_clock::now();
    for (int I = 0; I < O.Run; ++I)
      K->run(Args);
    double Sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
    std::printf("%d runs: %.3f ms each\n", O.Run, Sec / O.Run * 1e3);
    if (K->profiled())
      std::printf("\n%s", profile::formatTable(K->profileNow()).c_str());
  }

  if (O.Serve > 0) {
    // The demo loop: a burst of identical requests against a fresh
    // executor. The first ones are answered by the interpreter while the
    // kernel compiles in the background; the stream then flips to the JIT
    // tier — the serving runtime's cold-start story in one screenful.
    serve::Executor Ex;
    std::map<std::string, Buffer *> Args;
    for (auto &[N, Buf] : B.Store)
      Args[N] = &Buf;

    std::vector<std::future<serve::Response>> Futs;
    std::vector<double> Lat;
    int Rejected = 0;
    for (int I = 0; I < O.Serve; ++I) {
      auto R = Ex.submit(Opt, Args);
      if (R.ok())
        Futs.push_back(std::move(*R));
      else
        ++Rejected;
    }
    serve::Tier PrevTier = serve::Tier::Interp;
    bool First = true;
    int DeadlineMissed = 0;
    for (size_t I = 0; I < Futs.size(); ++I) {
      serve::Response R = Futs[I].get();
      if (!R.S.ok()) {
        std::fprintf(stderr, "request %zu failed: %s\n", I,
                     R.S.message().c_str());
        return 1;
      }
      if (R.DeadlineMissed)
        ++DeadlineMissed;
      Lat.push_back(R.LatencySec);
      if (First || R.ServedBy != PrevTier) {
        std::printf("request %4zu: tier flips to %s (%.3f ms)\n", I,
                    serve::nameOf(R.ServedBy), R.LatencySec * 1e3);
        PrevTier = R.ServedBy;
        First = false;
      }
    }
    Ex.drain();

    serve::ServeStats St = Ex.stats();
    std::sort(Lat.begin(), Lat.end());
    auto Pct = [&](double Q) {
      if (Lat.empty())
        return 0.0;
      return Lat[size_t(Q * double(Lat.size() - 1))] * 1e3;
    };
    std::printf("serve: %llu requests (%d rejected) | interp %llu, jit %llu "
                "| compiles %llu (failed %llu, cache hits %llu) | batches "
                "%llu (max %llu)\n",
                (unsigned long long)St.Submitted, Rejected,
                (unsigned long long)St.InterpServed,
                (unsigned long long)St.JitServed,
                (unsigned long long)St.CompilesStarted,
                (unsigned long long)St.CompilesFailed,
                (unsigned long long)St.CacheHits,
                (unsigned long long)St.Batches,
                (unsigned long long)St.MaxBatch);
    std::printf("serve: latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n",
                Pct(0.50), Pct(0.95), Pct(0.99));
    if (std::getenv("FT_SLO_DEADLINE_MS"))
      std::printf("serve: deadline missed on %d of %zu requests\n",
                  DeadlineMissed, Futs.size());
  }
  return 0;
}
