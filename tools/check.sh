#!/usr/bin/env bash
#===- tools/check.sh - tier-1 verification + sanitizer sweep --------------===#
#
# 1. The tier-1 line from ROADMAP.md: configure, build, run every test.
# 2. Trace smoke: run a real workload with FT_TRACE and validate that the
#    Chrome-trace JSON parses and covers every compiler layer.
# 3. Kernel-cache smoke: a cold ftc run must miss, a second run must hit
#    the disk tier, and FT_CACHE=0 / --no-cache must compile fresh —
#    against a private cache directory, plain and under ASan.
# 4. SIMD smoke: the default auto-schedule must emit `omp simd` +
#    __restrict__ for proven loops; --vectorize-width 0 must fall back to
#    the legacy ivdep-hint emission — plain and under ASan.
# 5. Dynamic-shape smoke: `ftc --dyn` must serve >= 8 distinct shapes of
#    a shape-generic workload from ONE generic compile, pass the
#    differential check against the naive loops, and promote the hot
#    shape bucket to a specialized kernel — plain and under ASan.
# 6. Sparse smoke: the ragged dependence facts must prove the CSR row
#    loop parallel (accepted in the schedule audit log) and reject
#    vectorize on the data-dependent segment loop with a reasoned audit
#    entry — plain and under ASan; plus schema validation of the sparse
#    bench's BENCH_sparse.json (compiled segment loops vs the
#    materializing EagerTensor chains).
# 7. Serve smoke: the tiered serving bench must pass its acceptance
#    criteria (cold request hides the compile, >= 95% JIT after warm-up,
#    bounded queue rejects under overload) and write schema-valid
#    BENCH_serve.json — plain and under ASan.
# 8. Telemetry smoke: a serve run with FT_TELEMETRY_DIR set must publish
#    >= 2 schema-valid snapshots with strictly monotone sequence numbers
#    and no unpublished tmp files, and `ftc --top` must round-trip the
#    snapshot directory into the dashboard — including skipping a
#    deliberately truncated snapshot with a warning — plain and under
#    ASan.
# 9. Correlation smoke: a cold-then-warm serve run with FT_TRACE +
#    FT_TELEMETRY_DIR + a deadline must produce a Chrome trace where
#    every serve/request span carries its request id and >= 1 flow arrow
#    links a request to the background serve/compile span, and a final
#    snapshot whose per-fingerprint shape counts sum to the requests
#    served, with per-tenant deadline accounting that `ftc --top` and
#    `ftc --advise` render — plain and under ASan.
# 10. Bench guard: freshly written BENCH_*.json results (including the
#    dynamic-shape bench's compile-amortization and specialization
#    speedups, and the sparse bench's eager-vs-compiled speedups) are
#    compared against the committed baselines on key ratios; >25%
#    regressions fail the check (tools/bench_guard.py).
# 11. The same test suite rebuilt under ASan/UBSan (FT_SANITIZE=ON) in a
#    separate build tree, so memory and UB bugs in the analysis/schedule
#    layers cannot hide behind passing functional tests. The trace test
#    runs there too: the observability layer itself must be clean.
#
# Usage: tools/check.sh [--skip-sanitize]
# Also reachable as `cmake --build build --target check`.
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SANITIZE=0
for Arg in "$@"; do
  case "$Arg" in
  --skip-sanitize) SKIP_SANITIZE=1 ;;
  *)
    echo "unknown argument: $Arg" >&2
    exit 2
    ;;
  esac
done

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== trace smoke: FT_TRACE on example_subdivnet =="
TraceJson=/tmp/ft_check_trace.json
rm -f "$TraceJson"
FT_TRACE="$TraceJson" ./build/examples/example_subdivnet >/dev/null
python3 - "$TraceJson" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
spans = [e for e in events if e.get("ph") == "X"]
audits = [e for e in events if e.get("ph") == "i" and e.get("cat") == "audit"]
cats = {e["cat"] for e in spans}
for layer in ("frontend", "pass", "schedule", "codegen", "rt"):
    assert layer in cats, f"no '{layer}/' span in trace (cats: {sorted(cats)})"
assert audits, "no schedule-decision audit events in trace"
rejected = [a for a in audits if a["args"].get("applied") == "false"]
assert all(a["args"].get("reason") for a in rejected), \
    "rejected audit entry without a legality reason"
print(f"trace OK: {len(spans)} spans over {sorted(cats)}, "
      f"{len(audits)} audit events ({len(rejected)} rejected, all reasoned)")
PYEOF
rm -f "$TraceJson"

echo "== profile smoke: FT_PROFILE on ftc subdivnet =="
ProfileJson=/tmp/ft_check_profile.json
rm -f "$ProfileJson"
FT_PROFILE="$ProfileJson" ./build/tools/ftc --workload subdivnet \
  --profile --run 3 >/dev/null
python3 - "$ProfileJson" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
profiles = doc["profiles"]
assert profiles, "no kernel profiles recorded"
kp = profiles[0]
loops = kp["loops"]
assert loops, "profile has no loop rows"
for row in loops:
    assert row.get("resolved") is True, \
        f"loop {row.get('id')} does not resolve through the source map"
hot = max(loops, key=lambda r: r.get("est_self_ns", 0))
assert "faces" in hot["path"], \
    f"hot loop should be the faces nest, got {hot['path']}"
assert any(r.get("calls", 0) > 0 for r in loops), "no call counts recorded"
print(f"profile OK: {len(loops)} loop rows, all resolved, "
      f"hot={hot['path']} ({hot['est_self_ns']/1e6:.3f} ms est self)")
PYEOF
rm -f "$ProfileJson"

# Runs the four cache expectations against $1/ftc with a fresh private
# cache dir: cold miss, warm disk hit, FT_CACHE=0 miss, --no-cache miss.
cache_smoke() {
  local Ftc="$1"
  local CacheDir
  CacheDir="$(mktemp -d /tmp/ft_check_cache.XXXXXX)"
  local Out
  Out="$("$Ftc" --workload gat --run 1 --cache-dir "$CacheDir")"
  echo "$Out" | grep -q "cache: miss" ||
    { echo "cache smoke: first run did not miss"; echo "$Out"; return 1; }
  Out="$("$Ftc" --workload gat --run 1 --cache-dir "$CacheDir")"
  echo "$Out" | grep -q "cache: disk" ||
    { echo "cache smoke: second run did not hit disk"; echo "$Out"; return 1; }
  Out="$(FT_CACHE=0 "$Ftc" --workload gat --run 1 --cache-dir "$CacheDir")"
  echo "$Out" | grep -q "cache: miss" ||
    { echo "cache smoke: FT_CACHE=0 did not miss"; echo "$Out"; return 1; }
  Out="$("$Ftc" --workload gat --run 1 --cache-dir "$CacheDir" --no-cache)"
  echo "$Out" | grep -q "cache: miss" ||
    { echo "cache smoke: --no-cache did not miss"; echo "$Out"; return 1; }
  rm -rf "$CacheDir"
  echo "cache smoke OK: cold miss, warm disk hit, FT_CACHE=0 + --no-cache miss"
}

echo "== kernel-cache smoke: ftc cold/warm/disabled =="
cache_smoke ./build/tools/ftc

# SIMD smoke against $1/ftc: the default auto-schedule must lower proven
# loops to `#pragma omp simd` with __restrict__ parameters, and
# --vectorize-width 0 must fall back to the legacy ivdep-hint-only
# emission with neither.
simd_smoke() {
  local Ftc="$1"
  local Src
  Src="$("$Ftc" --workload longformer --emit-cpp - --no-cache)"
  echo "$Src" | grep -q "omp simd" ||
    { echo "simd smoke: default emission has no omp simd pragma"; return 1; }
  echo "$Src" | grep -q "__restrict__" ||
    { echo "simd smoke: default emission has no __restrict__ params"; return 1; }
  Src="$("$Ftc" --workload longformer --emit-cpp - --no-cache \
    --vectorize-width 0)"
  echo "$Src" | grep -q "ivdep" ||
    { echo "simd smoke: width-0 emission lost the ivdep hint"; return 1; }
  if echo "$Src" | grep -q "omp simd"; then
    echo "simd smoke: width-0 emission still carries omp simd"; return 1
  fi
  echo "simd smoke OK: default -> omp simd + __restrict__, width 0 -> ivdep"
}

echo "== simd smoke: proven lowering vs legacy hint =="
simd_smoke ./build/tools/ftc

# Dynamic-shape smoke against $1/ftc: one shape-generic compile must serve
# >= 8 distinct shapes (generic_compiles=1 in the summary line), every
# shape must match the naive C++ loops (differential=ok), and the hot
# shape bucket must promote to a specialized kernel (promoted=1) — on a
# fresh private cache dir so the compile counts are deterministic.
dynshape_smoke() {
  local Ftc="$1"
  local CacheDir
  CacheDir="$(mktemp -d /tmp/ft_check_dynshape.XXXXXX)"
  local Out
  Out="$(FT_CACHE_DIR="$CacheDir" FT_SPECIALIZE_AFTER=4 \
    "$Ftc" --dyn --workload subdivnet --serve 12 --shapes 8)" ||
    { echo "dynshape smoke: ftc --dyn failed"; echo "$Out"; return 1; }
  echo "$Out" | grep -q "dynshape: summary shapes=8 generic_compiles=1 " ||
    { echo "dynshape smoke: 8 shapes did not amortize to one generic compile"
      echo "$Out"; return 1; }
  echo "$Out" | grep -q "promoted=1 differential=ok" ||
    { echo "dynshape smoke: hot bucket not promoted or differential failed"
      echo "$Out"; return 1; }
  rm -rf "$CacheDir"
  echo "dynshape smoke OK: 8 shapes -> 1 generic compile," \
       "hot bucket promoted, differential vs naive loops ok"
}

echo "== dynshape smoke: one generic compile + hot-bucket promotion =="
dynshape_smoke ./build/tools/ftc

# Sparse smoke against $1/ftc: the ragged dependence facts must let
# parallelize through on the CSR row loop and reject vectorize on the
# data-dependent segment loop, with both verdicts in the audit log —
# exactly what `ftc --check-schedule` drives and prints.
sparse_smoke() {
  local Ftc="$1"
  local Out
  Out="$("$Ftc" --check-schedule --workload spmm)" ||
    { echo "sparse smoke: ftc --check-schedule failed"; echo "$Out"
      return 1; }
  echo "$Out" | grep -q "parallelize rows applied=1" ||
    { echo "sparse smoke: row-loop parallelize not accepted in audit log"
      echo "$Out"; return 1; }
  echo "$Out" | grep -q "vectorize spmm_seg applied=0" ||
    { echo "sparse smoke: segment-loop vectorize not rejected in audit log"
      echo "$Out"; return 1; }
  echo "$Out" | grep -q "data-dependent" ||
    { echo "sparse smoke: vectorize rejection lost its reason"
      echo "$Out"; return 1; }
  echo "sparse smoke OK: parallelize(rows) accepted," \
       "vectorize(spmm_seg) rejected as data-dependent"
}

# Schema validation of the sparse bench's JSON (run from scratch dir $2):
# three workloads, each with a positive speedup over the eager chain and
# a small output divergence, and the two-of-three acceptance bar met.
sparse_bench_smoke() {
  local Bench="$1"
  local RunDir="$2"
  (cd "$RunDir" && "$Bench") >/dev/null
  python3 - "$RunDir/BENCH_sparse.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["benchmark"] == "sparse"
rows = doc["workloads"]
assert {r["name"] for r in rows} == {"spmm", "sddmm", "segsoftmax"}, \
    f"unexpected workload set: {[r['name'] for r in rows]}"
for r in rows:
    for key in ("nnz", "eager_ms", "ft_ms", "speedup", "max_diff"):
        assert key in r, f"{r['name']} missing '{key}'"
    assert r["nnz"] > 0 and r["eager_ms"] > 0 and r["ft_ms"] > 0
    assert r["max_diff"] <= 1e-3, \
        f"{r['name']} diverges from the eager chain: {r['max_diff']}"
at_bar = sum(r["speedup"] >= 1.3 for r in rows)
assert at_bar >= 2, f"only {at_bar}/3 workloads reach 1.3x over eager"
assert doc["second_best_speedup"] >= 1.3
assert doc["pass"] is True
print(f"sparse bench OK: {at_bar}/3 workloads >= 1.3x over eager, "
      f"second-best {doc['second_best_speedup']:.2f}x")
PYEOF
}

# Serving smoke against the serve_bench binary $1 (run from scratch dir
# $2): the executor must
# answer the cold request from the interpreter, reach >= 95% JIT tier after
# warm-up, and bound the queue under overload — all asserted by the bench
# itself (exit code) and re-checked here from the JSON it writes, which
# also validates the BENCH_serve.json schema.
serve_smoke() {
  local Bench="$1"
  local RunDir="$2"
  (cd "$RunDir" && "$Bench") >/dev/null
  python3 - "$RunDir/BENCH_serve.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["benchmark"] == "serve"
cold, warm, over = doc["cold"], doc["warm"], doc["overload"]
assert cold["hidden"] is True, "cold request did not hide the compile"
assert cold["first_request_sec"] < cold["compile_ref_sec"]
assert warm["jit_fraction"] >= warm["target_fraction"], \
    f"warm jit fraction {warm['jit_fraction']} below target"
assert over["rejected"] > 0, "10x overload produced no rejections"
assert over["accepted"] + over["rejected"] == over["offered"]
for tier in ("interp", "jit"):
    t = doc["tiers"][tier]
    assert t["count"] > 0, f"no {tier}-tier samples"
    assert 0 < t["p50_us"] <= t["p95_us"] <= t["p99_us"], \
        f"non-monotonic percentiles for {tier}: {t}"
assert doc["pass"] is True
print(f"serve smoke OK: cold {cold['first_request_sec']*1e3:.1f} ms vs "
      f"compile {cold['compile_ref_sec']:.2f} s, "
      f"warm jit {warm['jit_fraction']*100:.1f}%, "
      f"overload rejected {over['rejected']}/{over['offered']}")
PYEOF
}

echo "== sparse smoke: ragged schedule legality audit =="
sparse_smoke ./build/tools/ftc

echo "== sparse bench: eager-vs-compiled speedups + JSON schema =="
sparse_bench_smoke "$(pwd)/build/bench/sparse_bench" build/bench-build

echo "== serve smoke: tiered executor bench + JSON schema =="
serve_smoke "$(pwd)/build/bench/serve_bench" build/bench-build

# Telemetry smoke against $1/ftc: a serve run with FT_TELEMETRY_DIR set
# must continuously publish snapshots (>= 2 of them, schema-versioned,
# strictly monotone seq, no leftover .tmp files from the atomic rename),
# and `ftc --top` must round-trip the directory into the dashboard.
telemetry_smoke() {
  local Ftc="$1"
  local TelDir
  TelDir="$(mktemp -d /tmp/ft_check_telemetry.XXXXXX)"
  FT_CACHE_DIR="$TelDir/cache" FT_TELEMETRY_DIR="$TelDir/snaps" \
    FT_TELEMETRY_INTERVAL_MS=50 \
    "$Ftc" --workload gat --serve 60 >/dev/null
  python3 - "$TelDir/snaps" <<'PYEOF'
import json, os, sys
d = sys.argv[1]
names = sorted(n for n in os.listdir(d)
               if n.startswith("snap-") and n.endswith(".json"))
tmps = [n for n in os.listdir(d) if ".tmp." in n]
assert not tmps, f"unpublished tmp files left behind: {tmps}"
assert len(names) >= 2, f"expected >= 2 snapshots, got {len(names)}"
seqs = []
for n in names:
    with open(os.path.join(d, n)) as f:
        doc = json.load(f)
    assert doc.get("schema") == "freetensor-telemetry/v2", \
        f"{n}: bad schema {doc.get('schema')!r}"
    for key in ("seq", "wall_unix_ms", "counters", "histograms",
                "kernels", "shapes", "tenants", "flight"):
        assert key in doc, f"{n} missing '{key}'"
    seqs.append(doc["seq"])
assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs), \
    f"seq not strictly monotone: {seqs}"
last = doc
assert last["counters"].get("serve/submitted", 0) >= 60, \
    "final snapshot lost the serve counters"
assert any(h["name"] == "serve/queue_wait_ns" and h["count"] > 0
           for h in last["histograms"]), "no queue-wait samples"
assert last["kernels"], "no hot-kernel rows in final snapshot"
assert last["flight"]["recorded"] >= 60, "flight recorder empty"
print(f"telemetry snapshots OK: {len(names)} files, "
      f"seq {seqs[0]}..{seqs[-1]}")
PYEOF
  local TopOut
  TopOut="$("$Ftc" --top --telemetry-dir "$TelDir/snaps")"
  echo "$TopOut" | grep -q "schema freetensor-telemetry/v2" ||
    { echo "telemetry smoke: --top lost the schema"; echo "$TopOut"; return 1; }
  echo "$TopOut" | grep -q "FINGERPRINT" ||
    { echo "telemetry smoke: --top shows no kernel table"; echo "$TopOut"
      return 1; }
  # A truncated (partially-written) snapshot must be skipped with a
  # warning, not abort the dashboard; zzz sorts it newest so it is hit
  # first.
  local FirstSnap
  FirstSnap="$(ls "$TelDir/snaps"/snap-*.json | head -1)"
  head -c 80 "$FirstSnap" > "$TelDir/snaps/snap-zzz-truncated.json"
  TopOut="$("$Ftc" --top --telemetry-dir "$TelDir/snaps" 2>&1)"
  echo "$TopOut" | grep -q "skipping snap-zzz-truncated.json" ||
    { echo "telemetry smoke: --top did not warn about truncated snapshot"
      echo "$TopOut"; return 1; }
  echo "$TopOut" | grep -q "FINGERPRINT" ||
    { echo "telemetry smoke: --top aborted on truncated snapshot"
      echo "$TopOut"; return 1; }
  rm -rf "$TelDir"
  echo "telemetry smoke OK: snapshots valid + ftc --top round-trip" \
       "(truncated snapshot skipped with warning)"
}

echo "== telemetry smoke: snapshot export + ftc --top =="
telemetry_smoke ./build/tools/ftc

# Correlation smoke against $1/ftc: one cold-then-warm serve run with
# FT_TRACE + FT_TELEMETRY_DIR + a default deadline. Validates the
# request-scoped observability contract end to end (DESIGN.md §15):
# every serve/request span carries its request id, at least one flow
# arrow links a request's enqueue to the background serve/compile span
# (the cold-miss story in Perfetto), the final snapshot's shape counts
# sum to the requests served, deadline accounting is present, and the
# two consumers render it (--advise nominates a hot shape, --top shows
# deadline met/missed).
correlation_smoke() {
  local Ftc="$1"
  local Dir
  Dir="$(mktemp -d /tmp/ft_check_corr.XXXXXX)"
  FT_CACHE_DIR="$Dir/cache" FT_TELEMETRY_DIR="$Dir/snaps" \
    FT_TELEMETRY_INTERVAL_MS=50 FT_TRACE="$Dir/trace.json" \
    FT_SLO_DEADLINE_MS=2000 \
    "$Ftc" --workload gat --serve 40 >/dev/null
  python3 - "$Dir" <<'PYEOF'
import json, os, sys
d = sys.argv[1]
trace = json.load(open(os.path.join(d, "trace.json")))["traceEvents"]
reqs = [e for e in trace
        if e.get("name") == "serve/request" and e.get("ph") == "X"]
assert reqs, "no serve/request spans in trace"
noid = [e for e in reqs if not e.get("args", {}).get("req")]
assert not noid, f"{len(noid)} serve/request span(s) without a request id"
flows = [e for e in trace if e.get("cat") == "flow"]
starts = {e["id"] for e in flows if e["ph"] == "s"}
fins = {e["id"] for e in flows if e["ph"] == "f"}
linked = starts & fins
assert linked, "no flow arrow links a request to the background compile"
comp = [e for e in trace if e.get("name") == "serve/compile"
        and e.get("ph") == "X"]
assert comp, "no serve/compile span (cache hit? needs a cold cache dir)"
assert any(e.get("args", {}).get("req") for e in comp), \
    "serve/compile span lost its triggering request id"
snaps = os.path.join(d, "snaps")
names = sorted(n for n in os.listdir(snaps) if n.startswith("snap-"))
snap = json.load(open(os.path.join(snaps, names[-1])))
assert snap["schema"] == "freetensor-telemetry/v2"
served = (snap["counters"].get("serve/interp_served", 0)
          + snap["counters"].get("serve/jit_served", 0))
shape_reqs = sum(r["requests"] for fp in snap["shapes"]
                 for r in fp["rows"])
shape_reqs += sum(fp["other"]["requests"] for fp in snap["shapes"])
assert shape_reqs == served, \
    f"shape-table requests {shape_reqs} != served {served}"
tenants = snap["tenants"]
assert tenants, "no per-tenant SLO section"
verdicts = sum(t["met"] + t["missed"] for t in tenants)
assert verdicts == served, \
    f"deadline verdicts {verdicts} != served {served} (every request " \
    f"carried a deadline)"
print(f"correlation OK: {len(reqs)} request spans with ids, "
      f"{len(linked)} flow link(s) to compile, "
      f"shape rows sum {shape_reqs} == served {served}, "
      f"{verdicts} deadline verdicts")
PYEOF
  local AdvOut
  AdvOut="$("$Ftc" --advise --telemetry-dir "$Dir/snaps")"
  echo "$AdvOut" | grep -q "specialize" ||
    { echo "correlation smoke: --advise printed no nomination"
      echo "$AdvOut"; return 1; }
  local TopOut
  TopOut="$("$Ftc" --top --telemetry-dir "$Dir/snaps")"
  echo "$TopOut" | grep -q "deadline met" ||
    { echo "correlation smoke: --top shows no SLO line"; echo "$TopOut"
      return 1; }
  rm -rf "$Dir"
  echo "correlation smoke OK: request ids + flow arrows + shape/SLO" \
       "sections + --advise/--top render"
}

echo "== correlation smoke: request-scoped trace + shape/SLO telemetry =="
correlation_smoke ./build/tools/ftc

echo "== telemetry overhead bench: disabled <= 5 ns, enabled <= 2% =="
(cd build/bench-build && ../bench/telemetry_overhead_bench) | tail -1

echo "== dynshape bench: compile amortization + specialization payoff =="
(cd build/bench-build && ../bench/dynshape_bench) | tail -2

echo "== bench guard: fresh results vs committed baselines =="
python3 tools/bench_guard.py --baseline-dir . --fresh-dir build/bench-build

if [ "$SKIP_SANITIZE" = 1 ]; then
  echo "== sanitizer sweep skipped (--skip-sanitize) =="
  exit 0
fi

echo "== ASan/UBSan: build + ctest =="
cmake -B build-asan -S . -DFT_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug \
  >/dev/null
cmake --build build-asan -j
(cd build-asan && ASAN_OPTIONS=detect_leaks=0 \
  ctest --output-on-failure -j)

echo "== profile smoke under ASan =="
rm -f "$ProfileJson"
ASAN_OPTIONS=detect_leaks=0 FT_PROFILE="$ProfileJson" \
  ./build-asan/tools/ftc --workload subdivnet --profile --run 3 >/dev/null
python3 -c "
import json, sys
doc = json.load(open('$ProfileJson'))
assert doc['profiles'] and doc['profiles'][0]['loops'], 'empty profile'
print('ASan profile smoke OK')
"
rm -f "$ProfileJson"

echo "== kernel-cache smoke under ASan =="
ASAN_OPTIONS=detect_leaks=0 cache_smoke ./build-asan/tools/ftc

echo "== simd smoke under ASan =="
ASAN_OPTIONS=detect_leaks=0 simd_smoke ./build-asan/tools/ftc

echo "== dynshape smoke under ASan =="
ASAN_OPTIONS=detect_leaks=0 dynshape_smoke ./build-asan/tools/ftc

echo "== sparse smoke under ASan =="
ASAN_OPTIONS=detect_leaks=0 sparse_smoke ./build-asan/tools/ftc

echo "== serve smoke under ASan =="
ASAN_OPTIONS=detect_leaks=0 \
  serve_smoke "$(pwd)/build-asan/bench/serve_bench" build-asan/bench-build

echo "== telemetry smoke under ASan =="
ASAN_OPTIONS=detect_leaks=0 telemetry_smoke ./build-asan/tools/ftc

echo "== correlation smoke under ASan =="
ASAN_OPTIONS=detect_leaks=0 correlation_smoke ./build-asan/tools/ftc

echo "== check.sh: all green =="
