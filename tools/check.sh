#!/usr/bin/env bash
#===- tools/check.sh - tier-1 verification + sanitizer sweep --------------===#
#
# 1. The tier-1 line from ROADMAP.md: configure, build, run every test.
# 2. The same test suite rebuilt under ASan/UBSan (FT_SANITIZE=ON) in a
#    separate build tree, so memory and UB bugs in the analysis/schedule
#    layers cannot hide behind passing functional tests.
#
# Usage: tools/check.sh [--skip-sanitize]
# Also reachable as `cmake --build build --target check`.
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SANITIZE=0
for Arg in "$@"; do
  case "$Arg" in
  --skip-sanitize) SKIP_SANITIZE=1 ;;
  *)
    echo "unknown argument: $Arg" >&2
    exit 2
    ;;
  esac
done

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [ "$SKIP_SANITIZE" = 1 ]; then
  echo "== sanitizer sweep skipped (--skip-sanitize) =="
  exit 0
fi

echo "== ASan/UBSan: build + ctest =="
cmake -B build-asan -S . -DFT_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug \
  >/dev/null
cmake --build build-asan -j
(cd build-asan && ASAN_OPTIONS=detect_leaks=0 \
  ctest --output-on-failure -j)

echo "== check.sh: all green =="
