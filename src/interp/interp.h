//===- interp/interp.h - Instrumented reference interpreter ------*- C++ -*-===//
///
/// \file
/// A tree-walking evaluator for the IR. It is the semantic reference the
/// JIT-compiled code is tested against, and it doubles as the measurement
/// instrument for the Figure-17 analysis: it counts loads, stores, moved
/// bytes, and floating-point operations of one "kernel" execution.
///
//===----------------------------------------------------------------------===//

#ifndef FT_INTERP_INTERP_H
#define FT_INTERP_INTERP_H

#include <map>

#include "analysis/extents.h"
#include "interp/buffer.h"
#include "ir/func.h"

namespace ft {

/// Execution counters of one interpreted run.
struct InterpStats {
  int64_t Loads = 0;
  int64_t Stores = 0;
  /// Traffic to main-memory tensors (parameters and MemType::CPU caches).
  int64_t BytesLoaded = 0;
  int64_t BytesStored = 0;
  /// Traffic to on-chip storage (MemType::CPULocal tensors and 0-D Cache
  /// scalars, which codegen keeps in registers) — the paper's
  /// registers/shared-memory tier, excluded from the DRAM proxy.
  int64_t LocalBytes = 0;
  int64_t Flops = 0;

  /// DRAM traffic estimated by the optional cache simulation (cache-line
  /// misses x line size); 0 when the simulation is off.
  int64_t SimDramBytes = 0;

  /// Per-statement execution counts, keyed by StmtNode::Id and filled when
  /// InterpOptions::CountStmts is set. Mirrors the kernel profiler's exact
  /// counters (ProfileEntry::Calls/Iters) for every For and GemmCall, so
  /// an instrumented kernel's counts can be diffed against interpreter
  /// ground truth statement by statement.
  struct StmtCount {
    uint64_t Calls = 0; ///< Times the statement was entered.
    uint64_t Iters = 0; ///< Loop iterations executed (1/call for gemm).
  };
  std::map<int64_t, StmtCount> PerStmt;

  int64_t bytesMoved() const { return BytesLoaded + BytesStored; }
};

/// Interpreter options.
struct InterpOptions {
  /// Simulate a fully-associative LRU cache in front of main-memory
  /// tensors and report estimated DRAM traffic in SimDramBytes.
  bool SimulateCache = false;
  size_t CacheBytes = 1 << 20; ///< Modeled capacity (default 1 MiB).
  size_t LineBytes = 64;
  /// Record per-statement Calls/Iters into InterpStats::PerStmt.
  bool CountStmts = false;
};

/// Runs \p F binding each parameter name to the caller-owned buffer in
/// \p Args (missing or mistyped parameters abort). Returns the counters.
InterpStats interpret(const Func &F,
                      const std::map<std::string, Buffer *> &Args,
                      const InterpOptions &Opts = {});

/// Checks that every parameter of \p F is bound in \p Args with the right
/// dtype, rank, and shape (the same contract Kernel::run enforces):
/// constant extents must match the buffer exactly, and for shape-generic
/// functions every extent parameter must be bound to an integer scalar
/// >= 1 with the symbolic dimensions it determines matching the bound
/// buffers (analysis/extents.h). Returns a typed error instead of
/// aborting — callers that accept untrusted requests (the serving
/// runtime) validate before execution.
Status validateArgs(const Func &F,
                    const std::map<std::string, Buffer *> &Args);

/// validateArgs with a precomputed extent spec — the serving executor
/// caches extentParamsOf(F) per fingerprint so the per-request check
/// skips the discovery body walk.
Status validateArgs(const Func &F,
                    const std::map<std::string, Buffer *> &Args,
                    const ExtentSpec &Extents);

/// validateArgs + interpret: the Status-returning execution entry the
/// serving runtime uses as its cold tier (a request whose kernel is not
/// yet JIT-compiled is answered by the interpreter). On success the
/// counters are written to \p Stats when non-null.
Status interpretChecked(const Func &F,
                        const std::map<std::string, Buffer *> &Args,
                        InterpStats *Stats = nullptr,
                        const InterpOptions &Opts = {});

} // namespace ft

#endif // FT_INTERP_INTERP_H
