//===- interp/buffer.h - Runtime tensor storage ------------------*- C++ -*-===//
///
/// \file
/// A typed, densely-packed (row-major) tensor buffer shared by the
/// interpreter, the JIT execution driver, and the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef FT_INTERP_BUFFER_H
#define FT_INTERP_BUFFER_H

#include <cstdint>
#include <cstring>
#include <new>
#include <vector>

#include "ir/data_type.h"
#include "support/error.h"

namespace ft {

/// Allocator keeping Buffer storage 64-byte aligned. Codegen's SIMD
/// lowering emits `aligned(p:64)` clauses for parameter pointers, which is
/// only sound because every Buffer starts on a cache-line boundary.
template <typename T> struct Aligned64Allocator {
  using value_type = T;

  Aligned64Allocator() = default;
  template <typename U> Aligned64Allocator(const Aligned64Allocator<U> &) {}

  T *allocate(size_t N) {
    return static_cast<T *>(
        ::operator new(N * sizeof(T), std::align_val_t(64)));
  }
  void deallocate(T *P, size_t) noexcept {
    ::operator delete(P, std::align_val_t(64));
  }

  template <typename U>
  bool operator==(const Aligned64Allocator<U> &) const {
    return true;
  }
};

/// A dense row-major tensor value.
class Buffer {
public:
  Buffer() = default;

  Buffer(DataType DT, std::vector<int64_t> Shape)
      : DT(DT), Shape(std::move(Shape)) {
    Data.assign(static_cast<size_t>(numel()) * sizeOf(DT), 0);
  }

  /// Builds a Float32 buffer from values.
  static Buffer fromF32(std::vector<int64_t> Shape,
                        const std::vector<float> &Vals) {
    Buffer B(DataType::Float32, std::move(Shape));
    ftAssert(static_cast<int64_t>(Vals.size()) == B.numel(),
             "fromF32 element count mismatch");
    std::memcpy(B.Data.data(), Vals.data(), Vals.size() * 4);
    return B;
  }

  /// Builds an Int64 buffer from values.
  static Buffer fromI64(std::vector<int64_t> Shape,
                        const std::vector<int64_t> &Vals) {
    Buffer B(DataType::Int64, std::move(Shape));
    ftAssert(static_cast<int64_t>(Vals.size()) == B.numel(),
             "fromI64 element count mismatch");
    std::memcpy(B.Data.data(), Vals.data(), Vals.size() * 8);
    return B;
  }

  /// Builds a 0-D Int64 buffer (scalar parameter).
  static Buffer scalarI64(int64_t V) { return fromI64({}, {V}); }

  DataType dtype() const { return DT; }
  const std::vector<int64_t> &shape() const { return Shape; }

  int64_t numel() const {
    int64_t N = 1;
    for (int64_t D : Shape)
      N *= D;
    return N;
  }

  size_t sizeBytes() const { return Data.size(); }
  void *raw() { return Data.data(); }
  const void *raw() const { return Data.data(); }

  template <typename T> T *as() { return reinterpret_cast<T *>(Data.data()); }
  template <typename T> const T *as() const {
    return reinterpret_cast<const T *>(Data.data());
  }

  /// Reads element \p I as double (any element type).
  double getF(int64_t I) const {
    checkIndex(I);
    switch (DT) {
    case DataType::Float32:
      return as<float>()[I];
    case DataType::Float64:
      return as<double>()[I];
    case DataType::Int32:
      return as<int32_t>()[I];
    case DataType::Int64:
      return static_cast<double>(as<int64_t>()[I]);
    case DataType::Bool:
      return as<uint8_t>()[I];
    }
    ftUnreachable("unknown dtype");
  }

  /// Reads element \p I as int64 (any element type).
  int64_t getI(int64_t I) const {
    checkIndex(I);
    switch (DT) {
    case DataType::Float32:
      return static_cast<int64_t>(as<float>()[I]);
    case DataType::Float64:
      return static_cast<int64_t>(as<double>()[I]);
    case DataType::Int32:
      return as<int32_t>()[I];
    case DataType::Int64:
      return as<int64_t>()[I];
    case DataType::Bool:
      return as<uint8_t>()[I];
    }
    ftUnreachable("unknown dtype");
  }

  /// Writes element \p I from a double (converted to the element type).
  void setF(int64_t I, double V) {
    checkIndex(I);
    switch (DT) {
    case DataType::Float32:
      as<float>()[I] = static_cast<float>(V);
      return;
    case DataType::Float64:
      as<double>()[I] = V;
      return;
    case DataType::Int32:
      as<int32_t>()[I] = static_cast<int32_t>(V);
      return;
    case DataType::Int64:
      as<int64_t>()[I] = static_cast<int64_t>(V);
      return;
    case DataType::Bool:
      as<uint8_t>()[I] = V != 0;
      return;
    }
    ftUnreachable("unknown dtype");
  }

  /// Writes element \p I from an int64.
  void setI(int64_t I, int64_t V) {
    checkIndex(I);
    switch (DT) {
    case DataType::Float32:
      as<float>()[I] = static_cast<float>(V);
      return;
    case DataType::Float64:
      as<double>()[I] = static_cast<double>(V);
      return;
    case DataType::Int32:
      as<int32_t>()[I] = static_cast<int32_t>(V);
      return;
    case DataType::Int64:
      as<int64_t>()[I] = V;
      return;
    case DataType::Bool:
      as<uint8_t>()[I] = V != 0;
      return;
    }
    ftUnreachable("unknown dtype");
  }

  /// Row-major flattening of a multi-index.
  int64_t flatten(const std::vector<int64_t> &Idx) const {
    ftAssert(Idx.size() == Shape.size(), "index rank mismatch");
    int64_t Flat = 0;
    for (size_t D = 0; D < Shape.size(); ++D) {
      ftAssert(Idx[D] >= 0 && Idx[D] < Shape[D],
               "index out of bounds in dimension " + std::to_string(D));
      Flat = Flat * Shape[D] + Idx[D];
    }
    return Flat;
  }

private:
  void checkIndex(int64_t I) const {
    ftAssert(I >= 0 && I < numel(), "flat index out of bounds");
  }

  DataType DT = DataType::Float32;
  std::vector<int64_t> Shape;
  std::vector<uint8_t, Aligned64Allocator<uint8_t>> Data;
};

} // namespace ft

#endif // FT_INTERP_BUFFER_H
