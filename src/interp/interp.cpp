//===- interp/interp.cpp --------------------------------------------------===//

#include "interp/interp.h"

#include <cmath>
#include <list>
#include <memory>
#include <set>
#include <unordered_map>

#include "analysis/ragged.h"
#include "math/linear.h"

using namespace ft;

namespace {

/// A scalar value during evaluation.
struct Val {
  enum class Tag { Int, Float, Bool } T = Tag::Int;
  int64_t I = 0;
  double F = 0;
  bool B = false;

  static Val ofI(int64_t V) { return {Tag::Int, V, 0, false}; }
  static Val ofF(double V) { return {Tag::Float, 0, V, false}; }
  static Val ofB(bool V) { return {Tag::Bool, 0, 0, V}; }

  double asF() const {
    switch (T) {
    case Tag::Int:
      return static_cast<double>(I);
    case Tag::Float:
      return F;
    case Tag::Bool:
      return B;
    }
    ftUnreachable("bad Val tag");
  }
  int64_t asI() const {
    switch (T) {
    case Tag::Int:
      return I;
    case Tag::Float:
      return static_cast<int64_t>(F);
    case Tag::Bool:
      return B;
    }
    ftUnreachable("bad Val tag");
  }
  bool asB() const {
    switch (T) {
    case Tag::Bool:
      return B;
    case Tag::Int:
      return I != 0;
    case Tag::Float:
      return F != 0;
    }
    ftUnreachable("bad Val tag");
  }
  bool isFloat() const { return T == Tag::Float; }
};

/// A fully-associative LRU cache model over (buffer, line) keys, used to
/// estimate DRAM traffic the way the paper's nvprof DRAM counters do.
class CacheSim {
public:
  CacheSim(size_t CapacityBytes, size_t LineBytes)
      : Lines(CapacityBytes / LineBytes), LineBytesN(LineBytes) {}

  /// Returns the DRAM bytes this access costs (0 on hit, one line on miss).
  int64_t access(const void *Base, int64_t ByteOffset) {
    uint64_t Key = reinterpret_cast<uint64_t>(Base) +
                   (static_cast<uint64_t>(ByteOffset) / LineBytesN) *
                       0x100000001b3ull;
    auto It = Map.find(Key);
    if (It != Map.end()) {
      Lru.splice(Lru.begin(), Lru, It->second);
      return 0;
    }
    Lru.push_front(Key);
    Map[Key] = Lru.begin();
    if (Map.size() > Lines) {
      Map.erase(Lru.back());
      Lru.pop_back();
    }
    return static_cast<int64_t>(LineBytesN);
  }

private:
  size_t Lines;
  size_t LineBytesN;
  std::list<uint64_t> Lru;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> Map;
};

class Interp {
public:
  Interp(const Func &F, const std::map<std::string, Buffer *> &Args,
         const InterpOptions &Opts)
      : F(F), CountStmts(Opts.CountStmts) {
    for (const auto &[Name, Buf] : Args)
      Buffers[Name] = Buf;
    if (Opts.SimulateCache)
      Sim = std::make_unique<CacheSim>(Opts.CacheBytes, Opts.LineBytes);
  }

  InterpStats run() {
    execStmt(F.Body);
    return Stats;
  }

private:
  Buffer &buf(const std::string &Name) {
    auto It = Buffers.find(Name);
    ftAssert(It != Buffers.end(), "unbound tensor: " + Name);
    return *It->second;
  }

  bool isLocal(const std::string &Name) const {
    return LocalTensors.count(Name) > 0;
  }

  std::vector<int64_t> evalIndices(const std::vector<Expr> &Indices) {
    std::vector<int64_t> Out;
    Out.reserve(Indices.size());
    for (const Expr &I : Indices)
      Out.push_back(evalExpr(I).asI());
    return Out;
  }

  Val loadFrom(Buffer &B, const std::vector<int64_t> &Idx,
               bool Local = false) {
    int64_t Flat = B.flatten(Idx);
    ++Stats.Loads;
    if (Local) {
      Stats.LocalBytes += static_cast<int64_t>(sizeOf(B.dtype()));
    } else {
      Stats.BytesLoaded += static_cast<int64_t>(sizeOf(B.dtype()));
      if (Sim)
        Stats.SimDramBytes +=
            Sim->access(B.raw(), Flat * static_cast<int64_t>(
                                            sizeOf(B.dtype())));
    }
    if (isFloat(B.dtype()))
      return Val::ofF(B.getF(Flat));
    if (B.dtype() == DataType::Bool)
      return Val::ofB(B.getI(Flat) != 0);
    return Val::ofI(B.getI(Flat));
  }

  void storeTo(Buffer &B, const std::vector<int64_t> &Idx, const Val &V,
               bool Local = false) {
    int64_t Flat = B.flatten(Idx);
    ++Stats.Stores;
    if (Local) {
      Stats.LocalBytes += static_cast<int64_t>(sizeOf(B.dtype()));
    } else {
      Stats.BytesStored += static_cast<int64_t>(sizeOf(B.dtype()));
      if (Sim)
        Stats.SimDramBytes +=
            Sim->access(B.raw(), Flat * static_cast<int64_t>(
                                            sizeOf(B.dtype())));
    }
    if (isFloat(B.dtype()))
      B.setF(Flat, V.asF());
    else
      B.setI(Flat, V.asI());
  }

  Val evalBinary(BinOpKind Op, const Val &L, const Val &R) {
    bool Fl = L.isFloat() || R.isFloat();
    if (Fl && !isCompareOp(Op) && !isLogicOp(Op))
      ++Stats.Flops;
    switch (Op) {
    case BinOpKind::Add:
      return Fl ? Val::ofF(L.asF() + R.asF()) : Val::ofI(L.asI() + R.asI());
    case BinOpKind::Sub:
      return Fl ? Val::ofF(L.asF() - R.asF()) : Val::ofI(L.asI() - R.asI());
    case BinOpKind::Mul:
      return Fl ? Val::ofF(L.asF() * R.asF()) : Val::ofI(L.asI() * R.asI());
    case BinOpKind::RealDiv:
      ++Stats.Flops;
      return Val::ofF(L.asF() / R.asF());
    case BinOpKind::FloorDiv:
      ftAssert(!Fl, "FloorDiv on floats");
      return Val::ofI(floorDiv64(L.asI(), R.asI()));
    case BinOpKind::Mod:
      ftAssert(!Fl, "Mod on floats");
      return Val::ofI(mod64(L.asI(), R.asI()));
    case BinOpKind::Min:
      return Fl ? Val::ofF(std::min(L.asF(), R.asF()))
                : Val::ofI(std::min(L.asI(), R.asI()));
    case BinOpKind::Max:
      return Fl ? Val::ofF(std::max(L.asF(), R.asF()))
                : Val::ofI(std::max(L.asI(), R.asI()));
    case BinOpKind::LT:
      return Val::ofB(Fl ? L.asF() < R.asF() : L.asI() < R.asI());
    case BinOpKind::LE:
      return Val::ofB(Fl ? L.asF() <= R.asF() : L.asI() <= R.asI());
    case BinOpKind::GT:
      return Val::ofB(Fl ? L.asF() > R.asF() : L.asI() > R.asI());
    case BinOpKind::GE:
      return Val::ofB(Fl ? L.asF() >= R.asF() : L.asI() >= R.asI());
    case BinOpKind::EQ:
      return Val::ofB(Fl ? L.asF() == R.asF() : L.asI() == R.asI());
    case BinOpKind::NE:
      return Val::ofB(Fl ? L.asF() != R.asF() : L.asI() != R.asI());
    case BinOpKind::LAnd:
      return Val::ofB(L.asB() && R.asB());
    case BinOpKind::LOr:
      return Val::ofB(L.asB() || R.asB());
    }
    ftUnreachable("unknown BinOpKind");
  }

  Val evalUnary(UnOpKind Op, const Val &X) {
    switch (Op) {
    case UnOpKind::Neg:
      if (X.isFloat()) {
        ++Stats.Flops;
        return Val::ofF(-X.asF());
      }
      return Val::ofI(-X.asI());
    case UnOpKind::LNot:
      return Val::ofB(!X.asB());
    case UnOpKind::Abs:
      if (X.isFloat()) {
        ++Stats.Flops;
        return Val::ofF(std::fabs(X.asF()));
      }
      return Val::ofI(X.asI() < 0 ? -X.asI() : X.asI());
    case UnOpKind::Sqrt:
      ++Stats.Flops;
      return Val::ofF(std::sqrt(X.asF()));
    case UnOpKind::Exp:
      ++Stats.Flops;
      return Val::ofF(std::exp(X.asF()));
    case UnOpKind::Ln:
      ++Stats.Flops;
      return Val::ofF(std::log(X.asF()));
    case UnOpKind::Sigmoid:
      ++Stats.Flops;
      return Val::ofF(1.0 / (1.0 + std::exp(-X.asF())));
    case UnOpKind::Tanh:
      ++Stats.Flops;
      return Val::ofF(std::tanh(X.asF()));
    }
    ftUnreachable("unknown UnOpKind");
  }

  Val evalExpr(const Expr &E) {
    switch (E->kind()) {
    case NodeKind::IntConst:
      return Val::ofI(cast<IntConstNode>(E)->Val);
    case NodeKind::FloatConst:
      return Val::ofF(cast<FloatConstNode>(E)->Val);
    case NodeKind::BoolConst:
      return Val::ofB(cast<BoolConstNode>(E)->Val);
    case NodeKind::Var: {
      auto V = cast<VarNode>(E);
      auto It = Iters.find(V->Name);
      ftAssert(It != Iters.end(), "unbound iterator: " + V->Name);
      return Val::ofI(It->second);
    }
    case NodeKind::Load: {
      auto L = cast<LoadNode>(E);
      return loadFrom(buf(L->Var), evalIndices(L->Indices),
                      isLocal(L->Var));
    }
    case NodeKind::Binary: {
      auto B = cast<BinaryNode>(E);
      return evalBinary(B->Op, evalExpr(B->LHS), evalExpr(B->RHS));
    }
    case NodeKind::Unary: {
      auto U = cast<UnaryNode>(E);
      return evalUnary(U->Op, evalExpr(U->Operand));
    }
    case NodeKind::IfExpr: {
      auto IE = cast<IfExprNode>(E);
      return evalExpr(IE->Cond).asB() ? evalExpr(IE->Then)
                                      : evalExpr(IE->Else);
    }
    case NodeKind::Cast: {
      auto C = cast<CastNode>(E);
      Val X = evalExpr(C->Operand);
      if (isFloat(C->Dtype)) {
        double V = X.asF();
        if (C->Dtype == DataType::Float32)
          V = static_cast<float>(V);
        return Val::ofF(V);
      }
      if (C->Dtype == DataType::Bool)
        return Val::ofB(X.asB());
      int64_t V = X.asI();
      if (C->Dtype == DataType::Int32)
        V = static_cast<int32_t>(V);
      return Val::ofI(V);
    }
    default:
      ftUnreachable("statement kind in evalExpr");
    }
  }

  void execStmt(const Stmt &S) {
    switch (S->kind()) {
    case NodeKind::StmtSeq:
      for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
        execStmt(Sub);
      return;
    case NodeKind::VarDef: {
      auto D = cast<VarDefNode>(S);
      if (D->ATy != AccessType::Cache) {
        // Parameter: must already be bound; sanity-check the dtype.
        Buffer &B = buf(D->Name);
        ftAssert(B.dtype() == D->Info.Dtype,
                 "parameter dtype mismatch for " + D->Name);
        execStmt(D->Body);
        return;
      }
      std::vector<int64_t> Shape;
      for (const Expr &Dim : D->Info.Shape)
        Shape.push_back(evalExpr(Dim).asI());
      Buffer LocalBuf(D->Info.Dtype, std::move(Shape));
      Buffer *Shadowed = nullptr;
      auto It = Buffers.find(D->Name);
      if (It != Buffers.end())
        Shadowed = It->second;
      Buffers[D->Name] = &LocalBuf;
      // Register/scratch-pad tier: CPULocal tensors and scalar caches.
      bool WasLocal = LocalTensors.count(D->Name) > 0;
      bool NowLocal =
          D->MTy == MemType::CPULocal || D->Info.Shape.empty();
      if (NowLocal)
        LocalTensors.insert(D->Name);
      else
        LocalTensors.erase(D->Name);
      execStmt(D->Body);
      if (Shadowed)
        Buffers[D->Name] = Shadowed;
      else
        Buffers.erase(D->Name);
      if (WasLocal)
        LocalTensors.insert(D->Name);
      else
        LocalTensors.erase(D->Name);
      return;
    }
    case NodeKind::Store: {
      auto St = cast<StoreNode>(S);
      std::vector<int64_t> Idx = evalIndices(St->Indices);
      storeTo(buf(St->Var), Idx, evalExpr(St->Value), isLocal(St->Var));
      return;
    }
    case NodeKind::ReduceTo: {
      auto R = cast<ReduceToNode>(S);
      std::vector<int64_t> Idx = evalIndices(R->Indices);
      Buffer &B = buf(R->Var);
      bool Local = isLocal(R->Var);
      Val Old = loadFrom(B, Idx, Local);
      Val New = evalExpr(R->Value);
      BinOpKind Op;
      switch (R->Op) {
      case ReduceOpKind::Add:
        Op = BinOpKind::Add;
        break;
      case ReduceOpKind::Mul:
        Op = BinOpKind::Mul;
        break;
      case ReduceOpKind::Min:
        Op = BinOpKind::Min;
        break;
      case ReduceOpKind::Max:
        Op = BinOpKind::Max;
        break;
      }
      storeTo(B, Idx, evalBinary(Op, Old, New), Local);
      return;
    }
    case NodeKind::For: {
      auto F = cast<ForNode>(S);
      int64_t Begin = evalExpr(F->Begin).asI();
      int64_t End = evalExpr(F->End).asI();
      if (CountStmts) {
        auto &C = Stats.PerStmt[F->Id];
        C.Calls += 1;
        C.Iters += End > Begin ? static_cast<uint64_t>(End - Begin) : 0;
      }
      for (int64_t I = Begin; I < End; ++I) {
        Iters[F->Iter] = I;
        execStmt(F->Body);
      }
      Iters.erase(F->Iter);
      return;
    }
    case NodeKind::If: {
      auto I = cast<IfNode>(S);
      if (evalExpr(I->Cond).asB())
        execStmt(I->Then);
      else if (I->Else)
        execStmt(I->Else);
      return;
    }
    case NodeKind::GemmCall: {
      auto G = cast<GemmCallNode>(S);
      if (CountStmts) {
        auto &Cnt = Stats.PerStmt[G->Id];
        Cnt.Calls += 1;
        Cnt.Iters += 1;
      }
      Buffer &A = buf(G->A), &B = buf(G->B), &C = buf(G->C);
      int64_t M = evalExpr(G->M).asI();
      int64_t N = evalExpr(G->N).asI();
      int64_t K = evalExpr(G->K).asI();
      auto At = [&](Buffer &Buf, int64_t R, int64_t Cc, int64_t Cols) {
        return Buf.getF(R * Cols + Cc);
      };
      for (int64_t I = 0; I < M; ++I)
        for (int64_t J = 0; J < N; ++J) {
          double Acc = 0;
          for (int64_t Kk = 0; Kk < K; ++Kk) {
            double AV = G->TransA ? At(A, Kk, I, M) : At(A, I, Kk, K);
            double BV = G->TransB ? At(B, J, Kk, K) : At(B, Kk, J, N);
            Acc += AV * BV;
          }
          C.setF(I * N + J, C.getF(I * N + J) + Acc);
        }
      Stats.Flops += 2 * M * N * K;
      Stats.Loads += 2 * M * N * K;
      Stats.BytesLoaded +=
          2 * M * N * K * static_cast<int64_t>(sizeOf(G->Dtype));
      Stats.Stores += M * N;
      Stats.BytesStored += M * N * static_cast<int64_t>(sizeOf(G->Dtype));
      return;
    }
    default:
      ftUnreachable("expression kind in execStmt");
    }
  }

  const Func &F;
  bool CountStmts = false;
  std::map<std::string, Buffer *> Buffers;
  std::unique_ptr<CacheSim> Sim;
  std::set<std::string> LocalTensors;
  std::map<std::string, int64_t> Iters;
  InterpStats Stats;
};

} // namespace

InterpStats ft::interpret(const Func &F,
                          const std::map<std::string, Buffer *> &Args,
                          const InterpOptions &Opts) {
  return Interp(F, Args, Opts).run();
}

Status ft::validateArgs(const Func &F,
                        const std::map<std::string, Buffer *> &Args) {
  return validateArgs(F, Args, extentParamsOf(F));
}

Status ft::validateArgs(const Func &F,
                        const std::map<std::string, Buffer *> &Args,
                        const ExtentSpec &Extents) {
  for (const std::string &P : F.Params) {
    auto It = Args.find(P);
    if (It == Args.end() || It->second == nullptr)
      return Status::error("missing argument `" + P + "`");
    auto D = findVarDef(F.Body, P);
    if (!D)
      return Status::error("parameter `" + P + "` has no VarDef");
    const Buffer &B = *It->second;
    if (B.dtype() != D->Info.Dtype)
      return Status::error("dtype mismatch for argument `" + P + "`");
    if (B.shape().size() != D->Info.Shape.size())
      return Status::error("rank mismatch for argument `" + P + "`: got " +
                           std::to_string(B.shape().size()) + ", want " +
                           std::to_string(D->Info.Shape.size()));
    // Constant extents (the static-shape case) are checked here; symbolic
    // extents are checked below against the bound extent arguments.
    for (size_t Dim = 0; Dim < D->Info.Shape.size(); ++Dim)
      if (auto C = dyn_cast<IntConstNode>(D->Info.Shape[Dim]))
        if (B.shape()[Dim] != C->Val)
          return Status::error(
              "shape mismatch for argument `" + P + "` in dimension " +
              std::to_string(Dim) + ": got " +
              std::to_string(B.shape()[Dim]) + ", want " +
              std::to_string(C->Val));
  }
  // Shape-generic functions: extent arguments must be bound, positive, and
  // consistent with every buffer dimension they determine.
  if (Status S = checkExtentArgs(F, Extents, Args); !S.ok())
    return S;
  // Ragged functions: index tensors must be non-negative, monotonically
  // non-decreasing, and within the extents they gate (analysis/ragged.h) —
  // the contract dependence analysis assumed when it proved schedules.
  return checkIndptrArgs(F, Args);
}

Status ft::interpretChecked(const Func &F,
                            const std::map<std::string, Buffer *> &Args,
                            InterpStats *Stats, const InterpOptions &Opts) {
  if (Status S = validateArgs(F, Args); !S.ok())
    return S;
  InterpStats Out = interpret(F, Args, Opts);
  if (Stats)
    *Stats = Out;
  return Status::success();
}
