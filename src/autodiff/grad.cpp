//===- autodiff/grad.cpp --------------------------------------------------===//

#include "autodiff/grad.h"

#include <functional>
#include <set>

#include "analysis/access.h"
#include "analysis/affine.h"
#include "ir/mutator.h"
#include "pass/const_fold.h"
#include "pass/flatten.h"
#include "pass/replace.h"
#include "support/trace.h"

using namespace ft;

namespace {

std::string gradNameOf(const std::string &N) { return N + ".grad"; }
std::string tapeNameOf(const std::string &N) { return N + ".tape"; }

/// Counts non-leaf expression nodes and loads (the recompute cost model).
/// Transcendental intrinsics are weighted heavily: recomputing an exp()
/// per backward use is always worse than one tape load (§5.2's balance).
void countExpr(const Expr &E, int *Ops, int *Loads) {
  switch (E->kind()) {
  case NodeKind::Load: {
    ++*Loads;
    for (const Expr &I : cast<LoadNode>(E)->Indices)
      countExpr(I, Ops, Loads);
    return;
  }
  case NodeKind::Binary: {
    ++*Ops;
    auto B = cast<BinaryNode>(E);
    countExpr(B->LHS, Ops, Loads);
    countExpr(B->RHS, Ops, Loads);
    return;
  }
  case NodeKind::Unary: {
    auto U = cast<UnaryNode>(E);
    switch (U->Op) {
    case UnOpKind::Exp:
    case UnOpKind::Ln:
    case UnOpKind::Sqrt:
    case UnOpKind::Sigmoid:
    case UnOpKind::Tanh:
      *Ops += 100;
      break;
    default:
      ++*Ops;
      break;
    }
    countExpr(U->Operand, Ops, Loads);
    return;
  }
  case NodeKind::IfExpr: {
    ++*Ops;
    auto IE = cast<IfExprNode>(E);
    countExpr(IE->Cond, Ops, Loads);
    countExpr(IE->Then, Ops, Loads);
    countExpr(IE->Else, Ops, Loads);
    return;
  }
  case NodeKind::Cast:
    countExpr(cast<CastNode>(E)->Operand, Ops, Loads);
    return;
  default:
    return;
  }
}

/// Collects every Load (recursively, including loads inside indices).
void collectLoads(const Expr &E, std::vector<Ref<LoadNode>> &Out) {
  switch (E->kind()) {
  case NodeKind::Load: {
    auto L = cast<LoadNode>(E);
    Out.push_back(L);
    for (const Expr &I : L->Indices)
      collectLoads(I, Out);
    return;
  }
  case NodeKind::Binary: {
    auto B = cast<BinaryNode>(E);
    collectLoads(B->LHS, Out);
    collectLoads(B->RHS, Out);
    return;
  }
  case NodeKind::Unary:
    collectLoads(cast<UnaryNode>(E)->Operand, Out);
    return;
  case NodeKind::IfExpr: {
    auto IE = cast<IfExprNode>(E);
    collectLoads(IE->Cond, Out);
    collectLoads(IE->Then, Out);
    collectLoads(IE->Else, Out);
    return;
  }
  case NodeKind::Cast:
    collectLoads(cast<CastNode>(E)->Operand, Out);
    return;
  default:
    return;
  }
}

/// One (load, partial-derivative) pair of an expression.
struct LoadDeriv {
  Ref<LoadNode> Load;
  Expr Deriv;
};

/// Symbolic differentiation: appends d(E)/d(load) * Seed for every Load in
/// \p E. The derivative expressions reference the original forward
/// subexpressions; the caller resolves those values afterwards.
void diffExpr(const Expr &E, const Expr &Seed, std::vector<LoadDeriv> &Out) {
  switch (E->kind()) {
  case NodeKind::Load:
    Out.push_back({cast<LoadNode>(E), Seed});
    return;
  case NodeKind::IntConst:
  case NodeKind::FloatConst:
  case NodeKind::BoolConst:
  case NodeKind::Var:
    return;
  case NodeKind::Cast: {
    auto C = cast<CastNode>(E);
    if (isFloat(C->Dtype))
      diffExpr(C->Operand, Seed, Out);
    return; // Casts to integer stop gradients.
  }
  case NodeKind::IfExpr: {
    auto IE = cast<IfExprNode>(E);
    diffExpr(IE->Then, makeIfExpr(IE->Cond, Seed, makeFloatConst(0.0)), Out);
    diffExpr(IE->Else, makeIfExpr(IE->Cond, makeFloatConst(0.0), Seed), Out);
    return;
  }
  case NodeKind::Unary: {
    auto U = cast<UnaryNode>(E);
    const Expr &X = U->Operand;
    switch (U->Op) {
    case UnOpKind::Neg:
      diffExpr(X, makeUnary(UnOpKind::Neg, Seed), Out);
      return;
    case UnOpKind::LNot:
      return;
    case UnOpKind::Abs:
      diffExpr(X,
               makeIfExpr(makeGE(X, makeFloatConst(0.0)), Seed,
                          makeUnary(UnOpKind::Neg, Seed)),
               Out);
      return;
    case UnOpKind::Sqrt:
      diffExpr(X,
               makeRealDiv(Seed, makeMul(makeFloatConst(2.0),
                                         makeUnary(UnOpKind::Sqrt, X))),
               Out);
      return;
    case UnOpKind::Exp:
      diffExpr(X, makeMul(Seed, makeUnary(UnOpKind::Exp, X)), Out);
      return;
    case UnOpKind::Ln:
      diffExpr(X, makeRealDiv(Seed, X), Out);
      return;
    case UnOpKind::Sigmoid: {
      Expr S = makeUnary(UnOpKind::Sigmoid, X);
      diffExpr(X,
               makeMul(Seed, makeMul(S, makeSub(makeFloatConst(1.0), S))),
               Out);
      return;
    }
    case UnOpKind::Tanh: {
      Expr T = makeUnary(UnOpKind::Tanh, X);
      diffExpr(X, makeMul(Seed, makeSub(makeFloatConst(1.0), makeMul(T, T))),
               Out);
      return;
    }
    }
    ftUnreachable("unknown unary in diffExpr");
  }
  case NodeKind::Binary: {
    auto B = cast<BinaryNode>(E);
    const Expr &L = B->LHS, &R = B->RHS;
    switch (B->Op) {
    case BinOpKind::Add:
      diffExpr(L, Seed, Out);
      diffExpr(R, Seed, Out);
      return;
    case BinOpKind::Sub:
      diffExpr(L, Seed, Out);
      diffExpr(R, makeUnary(UnOpKind::Neg, Seed), Out);
      return;
    case BinOpKind::Mul:
      diffExpr(L, makeMul(Seed, R), Out);
      diffExpr(R, makeMul(Seed, L), Out);
      return;
    case BinOpKind::RealDiv:
      diffExpr(L, makeRealDiv(Seed, R), Out);
      diffExpr(R,
               makeUnary(UnOpKind::Neg,
                         makeRealDiv(makeMul(Seed, L), makeMul(R, R))),
               Out);
      return;
    case BinOpKind::Min:
      diffExpr(L, makeIfExpr(makeLE(L, R), Seed, makeFloatConst(0.0)), Out);
      diffExpr(R, makeIfExpr(makeLT(R, L), Seed, makeFloatConst(0.0)), Out);
      return;
    case BinOpKind::Max:
      diffExpr(L, makeIfExpr(makeGE(L, R), Seed, makeFloatConst(0.0)), Out);
      diffExpr(R, makeIfExpr(makeGT(R, L), Seed, makeFloatConst(0.0)), Out);
      return;
    default:
      // Comparisons / logic / integer division: no gradient flows.
      return;
    }
  }
  default:
    ftUnreachable("statement kind in diffExpr");
  }
}

/// Differentiates the RHS of a write to Var[Indices]. For Stores whose
/// top-level operation is a transcendental, the derivative reuses the
/// *stored output value* (d exp(x) = out, d sigmoid = out*(1-out), ...)
/// instead of recomputing the intrinsic — the standard output-reuse rule,
/// which makes the stored tensor (tape or recompute) the only value the
/// backward pass needs.
void diffWrite(const std::string &Var, const std::vector<Expr> &Indices,
               DataType DT, const Expr &Value, bool IsStore,
               const Expr &Seed, std::vector<LoadDeriv> &Out) {
  if (IsStore) {
    if (auto U = dyn_cast<UnaryNode>(Value)) {
      Expr OutVal = makeLoad(Var, Indices, DT);
      switch (U->Op) {
      case UnOpKind::Exp:
        diffExpr(U->Operand, makeMul(Seed, OutVal), Out);
        return;
      case UnOpKind::Sqrt:
        diffExpr(U->Operand,
                 makeRealDiv(Seed, makeMul(makeFloatConst(2.0), OutVal)),
                 Out);
        return;
      case UnOpKind::Sigmoid:
        diffExpr(U->Operand,
                 makeMul(Seed, makeMul(OutVal,
                                       makeSub(makeFloatConst(1.0),
                                               OutVal))),
                 Out);
        return;
      case UnOpKind::Tanh:
        diffExpr(U->Operand,
                 makeMul(Seed, makeSub(makeFloatConst(1.0),
                                       makeMul(OutVal, OutVal))),
                 Out);
        return;
      default:
        break;
      }
    }
  }
  diffExpr(Value, Seed, Out);
}

/// Per-tensor facts gathered in one pre-pass.
struct TensorMeta {
  Ref<VarDefNode> Def;
  std::vector<Ref<ForNode>> ScopeLoops;      ///< Loops enclosing the VarDef.
  std::vector<Ref<ForNode>> StoreInnerLoops; ///< Loops around the single
                                             ///  Store, inside the VarDef.
  Ref<StoreNode> SingleStore;
  int NumStores = 0;
  bool HasReduce = false;
  bool HasNonAddReduce = false;
  bool StoreGuarded = false;
  bool ReadBeforeStore = false;
};

class GradGen {
public:
  GradGen(const Func &F, std::vector<std::string> Wrt, TapeStrategy Strategy)
      : F(F), Wrt(std::move(Wrt)), Strategy(Strategy) {}

  Result<GradResult> run() {
    collectMeta(F.Body, {});
    for (const std::string &W : Wrt) {
      auto It = Meta.find(W);
      if (It == Meta.end() || It->second.Def->ATy != AccessType::Input)
        return Result<GradResult>::error("grad: `" + W +
                                         "` is not an Input parameter");
      if (!isFloat(It->second.Def->Info.Dtype))
        return Result<GradResult>::error("grad: `" + W +
                                         "` is not a float tensor");
    }

    if (Status S = planMaterialization(); !S)
      return S;
    if (Status S = validateSupported(); !S)
      return S;

    GradResult Out;
    if (Status S = buildForward(&Out); !S)
      return S;
    if (Status S = buildBackward(&Out); !S)
      return S;
    return Out;
  }

private:
  //===-- Pre-pass ---------------------------------------------------------===//

  void collectMeta(const Stmt &S, std::vector<Ref<ForNode>> LoopStack,
                   int IfDepth = 0) {
    switch (S->kind()) {
    case NodeKind::StmtSeq:
      for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
        collectMeta(Sub, LoopStack, IfDepth);
      return;
    case NodeKind::VarDef: {
      auto D = cast<VarDefNode>(S);
      TensorMeta &M = Meta[D->Name];
      ftAssert(M.Def == nullptr, "duplicate tensor name in grad: " + D->Name);
      M.Def = D;
      M.ScopeLoops = LoopStack;
      IfDepthAtDef[D->Name] = IfDepth;
      collectMeta(D->Body, LoopStack, IfDepth);
      return;
    }
    case NodeKind::For: {
      auto L = cast<ForNode>(S);
      LoopStack.push_back(L);
      collectMeta(L->Body, LoopStack, IfDepth);
      return;
    }
    case NodeKind::If: {
      auto I = cast<IfNode>(S);
      collectMeta(I->Then, LoopStack, IfDepth + 1);
      if (I->Else)
        collectMeta(I->Else, LoopStack, IfDepth + 1);
      return;
    }
    case NodeKind::Store: {
      auto St = cast<StoreNode>(S);
      auto It = Meta.find(St->Var);
      if (It == Meta.end())
        return; // Free tensor (tests); no meta.
      TensorMeta &M = It->second;
      ++M.NumStores;
      M.SingleStore = St;
      M.StoreInnerLoops.assign(LoopStack.begin() + M.ScopeLoops.size(),
                               LoopStack.end());
      if (IfDepth > IfDepthAtDef[St->Var])
        M.StoreGuarded = true;
      // Reads of the target inside its own RHS or indices.
      std::vector<Ref<LoadNode>> Loads;
      collectLoads(St->Value, Loads);
      for (const Expr &I : St->Indices)
        collectLoads(I, Loads);
      for (const auto &L : Loads)
        if (L->Var == St->Var)
          M.ReadBeforeStore = true;
      return;
    }
    case NodeKind::ReduceTo: {
      auto R = cast<ReduceToNode>(S);
      auto It = Meta.find(R->Var);
      if (It == Meta.end())
        return;
      It->second.HasReduce = true;
      if (R->Op != ReduceOpKind::Add)
        It->second.HasNonAddReduce = true;
      return;
    }
    default:
      return;
    }
  }

  bool isCache(const std::string &N) const {
    auto It = Meta.find(N);
    return It != Meta.end() && It->second.Def->ATy == AccessType::Cache;
  }

  /// True if a gradient tensor exists for \p N.
  bool differentiable(const std::string &N) const {
    auto It = Meta.find(N);
    if (It == Meta.end())
      return false;
    const VarDefNode *D = It->second.Def.get();
    if (!isFloat(D->Info.Dtype) || D->NoGrad)
      return false;
    if (D->ATy == AccessType::Cache || D->ATy == AccessType::Output)
      return true;
    return std::find(Wrt.begin(), Wrt.end(), N) != Wrt.end();
  }

  /// True if the single Store's indices are exactly the iterators of the
  /// loops between the VarDef and the Store (the invertibility condition of
  /// inline recomputation).
  static bool storeIdxPureIters(const TensorMeta &M) {
    if (!M.SingleStore)
      return false;
    if (M.SingleStore->Indices.size() != M.StoreInnerLoops.size())
      return false;
    for (size_t I = 0; I < M.StoreInnerLoops.size(); ++I) {
      auto V = dyn_cast<VarNode>(M.SingleStore->Indices[I]);
      if (!V || V->Name != M.StoreInnerLoops[I]->Iter)
        return false;
    }
    return true;
  }

  //===-- Materialization planning (paper §5.2) ---------------------------===//

  Status planMaterialization() {
    // Seed: values appearing in derivative expressions of differentiable
    // writes, plus index expressions of gradient targets.
    std::function<void(const Stmt &)> Scan = [&](const Stmt &S) {
      switch (S->kind()) {
      case NodeKind::StmtSeq:
        for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
          Scan(Sub);
        return;
      case NodeKind::VarDef:
        Scan(cast<VarDefNode>(S)->Body);
        return;
      case NodeKind::For:
        Scan(cast<ForNode>(S)->Body);
        return;
      case NodeKind::If: {
        auto I = cast<IfNode>(S);
        // Branch conditions re-evaluate in the backward pass.
        addNeededLoads(I->Cond);
        Scan(I->Then);
        if (I->Else)
          Scan(I->Else);
        return;
      }
      case NodeKind::Store:
      case NodeKind::ReduceTo: {
        std::string Var;
        Expr Value;
        std::vector<Expr> Indices;
        if (auto St = dyn_cast<StoreNode>(S)) {
          Var = St->Var;
          Value = St->Value;
          Indices = St->Indices;
        } else {
          auto R = cast<ReduceToNode>(S);
          Var = R->Var;
          Value = R->Value;
          Indices = R->Indices;
        }
        if (!differentiable(Var))
          return;
        Expr Seed = makeLoad("$seed", {}, DataType::Float32);
        std::vector<LoadDeriv> Derivs;
        diffWrite(Var, Indices, Meta.at(Var).Def->Info.Dtype, Value,
                  isa<StoreNode>(S), Seed, Derivs);
        for (const LoadDeriv &D : Derivs) {
          if (!differentiable(D.Load->Var))
            continue;
          addNeededLoads(D.Deriv);
          // The load's own indices are re-evaluated for the accumulation.
          for (const Expr &I : D.Load->Indices)
            addNeededLoads(I);
        }
        for (const Expr &I : Indices)
          addNeededLoads(I);
        return;
      }
      case NodeKind::GemmCall: {
        auto G = cast<GemmCallNode>(S);
        if (differentiable(G->C)) {
          Needed.insert(G->A);
          Needed.insert(G->B);
        }
        return;
      }
      default:
        return;
      }
    };
    Scan(F.Body);

    // Fixpoint: decide tape vs recompute; recompute adds its RHS's loads.
    std::vector<std::string> Work(Needed.begin(), Needed.end());
    while (!Work.empty()) {
      std::string T = Work.back();
      Work.pop_back();
      if (!isCache(T) || Materialized.count(T) || Recomputed.count(T))
        continue;
      const TensorMeta &M = Meta.at(T);
      bool CanRecompute = M.NumStores == 1 && !M.HasReduce &&
                          !M.StoreGuarded && storeIdxPureIters(M);
      bool Cheap = false;
      if (CanRecompute) {
        int Ops = 0, Loads = 0;
        countExpr(M.SingleStore->Value, &Ops, &Loads);
        Cheap = Ops <= 24 && Loads <= 20;
      }
      if (Strategy == TapeStrategy::Selective && CanRecompute && Cheap) {
        Recomputed.insert(T);
        std::vector<Ref<LoadNode>> Loads;
        collectLoads(M.SingleStore->Value, Loads);
        for (const auto &L : Loads)
          if (isCache(L->Var) && !Needed.count(L->Var)) {
            Needed.insert(L->Var);
            Work.push_back(L->Var);
          }
        continue;
      }
      Materialized.insert(T);
    }
    return Status::success();
  }

  void addNeededLoads(const Expr &E) {
    std::vector<Ref<LoadNode>> Loads;
    collectLoads(E, Loads);
    for (const auto &L : Loads)
      if (isCache(L->Var))
        Needed.insert(L->Var);
  }

  //===-- Structural validation -------------------------------------------===//

  Status validateSupported() {
    IsParamFn IsParam = [&](const std::string &N) {
      auto It = Meta.find(N);
      return It != Meta.end() && It->second.Def->ATy == AccessType::Input &&
             It->second.Def->Info.Shape.empty() &&
             isInt(It->second.Def->Info.Dtype);
    };
    for (const auto &[Name, M] : Meta) {
      bool Involved = differentiable(Name) || Needed.count(Name);
      if (!Involved)
        continue;
      if (M.Def->ATy == AccessType::InOut)
        return Status::error("grad: InOut parameter `" + Name +
                             "` is unsupported");
      if (M.HasNonAddReduce && differentiable(Name))
        return Status::error(
            "grad: Min/Max/Mul reduction into `" + Name +
            "` has no gradient; mark the tensor no_grad (stop-gradient)");
      if (isCache(Name)) {
        if (M.NumStores > 1)
          return Status::error("grad: `" + Name +
                               "` is stored more than once per scope, which "
                               "AD does not support");
        if (M.ReadBeforeStore)
          return Status::error("grad: `" + Name +
                               "` is read while computing its own store");
      }
      if (Materialized.count(Name)) {
        // Tape shape must be expressible outside the scope loops.
        for (const auto &L : M.ScopeLoops) {
          auto B = toLinear(L->Begin, IsParam);
          auto E = toLinear(L->End, IsParam);
          if (!B || !E)
            return Status::error("grad: cannot size the tape of `" + Name +
                                 "`: enclosing loop bounds are not affine "
                                 "in parameters");
          for (const auto &[VarName, C] : B->coeffs())
            if (!VarName.starts_with("$"))
              return Status::error("grad: tape of `" + Name +
                                   "` needs non-rectangular versioning");
          for (const auto &[VarName, C] : E->coeffs())
            if (!VarName.starts_with("$"))
              return Status::error("grad: tape of `" + Name +
                                   "` needs non-rectangular versioning");
        }
      }
    }
    return Status::success();
  }

  //===-- Forward pass ------------------------------------------------------===//

  /// Inserts tape writes at the end of every materialized tensor's VarDef.
  class TapeInserter : public Mutator {
  public:
    TapeInserter(GradGen &G) : G(G) {}

  protected:
    Stmt visit(const VarDefNode *S) override {
      Stmt Out = Mutator::visit(S);
      if (!G.Materialized.count(S->Name))
        return Out;
      auto D = cast<VarDefNode>(Out);
      const TensorMeta &M = G.Meta.at(S->Name);
      // Tape indices: (scope iterator - begin) ... then element indices.
      std::vector<Expr> TapeIdx;
      for (const auto &L : M.ScopeLoops)
        TapeIdx.push_back(makeSub(makeVar(L->Iter), L->Begin));
      std::vector<Expr> ElemIdx;
      std::vector<std::string> Iters;
      for (size_t Dim = 0; Dim < D->Info.Shape.size(); ++Dim) {
        std::string It = "tw." + std::to_string(G.FreshCounter++);
        Iters.push_back(It);
        ElemIdx.push_back(makeVar(It));
      }
      std::vector<Expr> FullIdx = TapeIdx;
      FullIdx.insert(FullIdx.end(), ElemIdx.begin(), ElemIdx.end());
      Stmt Copy = makeStore(tapeNameOf(S->Name), FullIdx,
                            makeLoad(S->Name, ElemIdx, D->Info.Dtype));
      for (size_t Dim = D->Info.Shape.size(); Dim-- > 0;)
        Copy = makeFor(Iters[Dim], makeIntConst(0), D->Info.Shape[Dim],
                       ForProperty{}, Copy);
      Stmt NewBody = makeStmtSeq({D->Body, Copy});
      Stmt New = makeVarDef(D->Name, D->Info, D->ATy, D->MTy, NewBody,
                            D->Id);
      cast<VarDefNode>(New)->NoGrad = D->NoGrad;
      return New;
    }

  private:
    GradGen &G;
  };

  std::vector<Expr> tapeShapeOf(const std::string &Name) {
    const TensorMeta &M = Meta.at(Name);
    std::vector<Expr> Shape;
    for (const auto &L : M.ScopeLoops)
      Shape.push_back(constFold(makeSub(L->End, L->Begin)));
    for (const Expr &D : M.Def->Info.Shape)
      Shape.push_back(D);
    return Shape;
  }

  /// Shape product x element size, or 0 when an extent does not fold.
  static uint64_t tensorBytes(const std::vector<Expr> &Shape, DataType DT) {
    uint64_t Elems = 1;
    for (const Expr &D : Shape) {
      auto C = dyn_cast<IntConstNode>(constFold(D));
      if (!C || C->Val < 0)
        return 0;
      Elems *= static_cast<uint64_t>(C->Val);
    }
    return Elems * sizeOf(DT);
  }

  Status buildForward(GradResult *Out) {
    Func Fwd = F;
    Fwd.Name = F.Name + ".fwd";
    Fwd.Body = TapeInserter(*this)(Fwd.Body);
    for (const std::string &T : Materialized) {
      std::string Tape = tapeNameOf(T);
      Fwd.Params.push_back(Tape);
      std::vector<Expr> Shape = tapeShapeOf(T);
      DataType DT = Meta.at(T).Def->Info.Dtype;
      Out->TapeBytes[Tape] = tensorBytes(Shape, DT);
      Fwd.Body = makeVarDef(Tape, TensorInfo{std::move(Shape), DT},
                            AccessType::Output, MemType::CPU, Fwd.Body);
      Out->Tapes.push_back(Tape);
    }
    Out->Forward = std::move(Fwd);
    return Status::success();
  }

  //===-- Backward pass -----------------------------------------------------===//

  /// Replaces loads of intermediate tensors by their tape entries or their
  /// inlined recomputation.
  Expr resolveValue(const Expr &E, int Depth = 0) {
    if (Depth > 16) {
      Fail = Status::error("grad: recompute recursion too deep");
      return E;
    }
    switch (E->kind()) {
    case NodeKind::Load: {
      auto L = cast<LoadNode>(E);
      std::vector<Expr> Idx;
      for (const Expr &I : L->Indices)
        Idx.push_back(resolveValue(I, Depth + 1));
      if (!isCache(L->Var))
        return makeLoad(L->Var, Idx, L->Dtype);
      if (Materialized.count(L->Var)) {
        const TensorMeta &M = Meta.at(L->Var);
        std::vector<Expr> Full;
        for (const auto &Lp : M.ScopeLoops)
          Full.push_back(makeSub(makeVar(Lp->Iter), Lp->Begin));
        Full.insert(Full.end(), Idx.begin(), Idx.end());
        return makeLoad(tapeNameOf(L->Var), Full, L->Dtype);
      }
      if (Recomputed.count(L->Var)) {
        const TensorMeta &M = Meta.at(L->Var);
        Expr V = M.SingleStore->Value;
        for (size_t I = 0; I < M.StoreInnerLoops.size(); ++I)
          V = substituteIter(V, M.StoreInnerLoops[I]->Iter, Idx[I]);
        return resolveValue(V, Depth + 1);
      }
      Fail = Status::error("grad: value of `" + L->Var +
                           "` is needed by the backward pass but was "
                           "neither taped nor recomputable");
      return E;
    }
    case NodeKind::Binary: {
      auto B = cast<BinaryNode>(E);
      return makeBinary(B->Op, resolveValue(B->LHS, Depth + 1),
                        resolveValue(B->RHS, Depth + 1));
    }
    case NodeKind::Unary:
      return makeUnary(cast<UnaryNode>(E)->Op,
                       resolveValue(cast<UnaryNode>(E)->Operand, Depth + 1));
    case NodeKind::IfExpr: {
      auto IE = cast<IfExprNode>(E);
      return makeIfExpr(resolveValue(IE->Cond, Depth + 1),
                        resolveValue(IE->Then, Depth + 1),
                        resolveValue(IE->Else, Depth + 1));
    }
    case NodeKind::Cast:
      return makeCast(cast<CastNode>(E)->Dtype,
                      resolveValue(cast<CastNode>(E)->Operand, Depth + 1));
    default:
      return E;
    }
  }

  /// Zero-fills tensor \p Name of the given shape.
  Stmt makeZeroFill(const std::string &Name, const std::vector<Expr> &Shape,
                    DataType DT) {
    std::vector<Expr> Idx;
    std::vector<std::string> Iters;
    for (size_t D = 0; D < Shape.size(); ++D) {
      std::string It = "z." + std::to_string(FreshCounter++);
      Iters.push_back(It);
      Idx.push_back(makeVar(It));
    }
    Stmt Fill = makeStore(Name, Idx,
                          isFloat(DT) ? makeFloatConst(0.0)
                                      : makeIntConst(0));
    for (size_t D = Shape.size(); D-- > 0;)
      Fill = makeFor(Iters[D], makeIntConst(0), Shape[D], ForProperty{},
                     Fill);
    return Fill;
  }

  /// Emits the gradient statements for one forward Store / ReduceTo(Add).
  Stmt reverseWrite(const std::string &Var, const std::vector<Expr> &Indices,
                    const Expr &Value, bool IsStore) {
    if (!differentiable(Var))
      return makeStmtSeq({});
    DataType DT = Meta.at(Var).Def->Info.Dtype;
    std::string G = "g." + std::to_string(FreshCounter++);
    std::vector<Expr> RIdx;
    for (const Expr &I : Indices)
      RIdx.push_back(resolveValue(I));

    std::vector<Stmt> Stmts;
    Stmts.push_back(makeStore(G, {}, makeLoad(gradNameOf(Var), RIdx, DT)));
    if (IsStore && isCache(Var)) {
      // The store begins a new version: earlier (in reverse order, later in
      // forward order) contributions belong to it alone.
      Stmts.push_back(makeStore(gradNameOf(Var), RIdx, makeFloatConst(0.0)));
    }
    Expr Seed = makeLoad(G, {}, DT);
    std::vector<LoadDeriv> Derivs;
    diffWrite(Var, Indices, DT, Value, IsStore, Seed, Derivs);
    for (const LoadDeriv &D : Derivs) {
      if (!differentiable(D.Load->Var))
        continue;
      std::vector<Expr> TIdx;
      for (const Expr &I : D.Load->Indices)
        TIdx.push_back(resolveValue(I));
      Stmts.push_back(makeReduceTo(gradNameOf(D.Load->Var), TIdx,
                                   ReduceOpKind::Add,
                                   resolveValue(D.Deriv)));
    }
    return makeVarDef(G, TensorInfo{{}, DT}, AccessType::Cache,
                      MemType::CPULocal, makeStmtSeq(std::move(Stmts)));
  }

  /// True if every Load in \p E targets an Input tensor (conditions must be
  /// re-evaluable in the backward pass).
  bool condReevaluable(const Expr &E) {
    std::vector<Ref<LoadNode>> Loads;
    collectLoads(E, Loads);
    for (const auto &L : Loads) {
      auto It = Meta.find(L->Var);
      if (It == Meta.end() || It->second.Def->ATy != AccessType::Input)
        return false;
    }
    return true;
  }

  Stmt reverseStmt(const Stmt &S) {
    switch (S->kind()) {
    case NodeKind::StmtSeq: {
      auto Seq = cast<StmtSeqNode>(S);
      std::vector<Stmt> Out;
      for (auto It = Seq->Stmts.rbegin(); It != Seq->Stmts.rend(); ++It)
        Out.push_back(reverseStmt(*It));
      return makeStmtSeq(std::move(Out));
    }
    case NodeKind::VarDef: {
      auto D = cast<VarDefNode>(S);
      Stmt Inner = reverseStmt(D->Body);
      if (!differentiable(D->Name) || D->ATy != AccessType::Cache)
        return Inner;
      std::string GN = gradNameOf(D->Name);
      Stmt Init = makeZeroFill(GN, D->Info.Shape, D->Info.Dtype);
      return makeVarDef(GN, D->Info, AccessType::Cache, D->MTy,
                        makeStmtSeq({Init, Inner}));
    }
    case NodeKind::For: {
      auto L = cast<ForNode>(S);
      Stmt Inner = reverseStmt(L->Body);
      // Iteration order is deliberately NOT reversed: in the supported
      // program class (validated above) every gradient interaction across
      // iterations of one loop flows through commutative += accumulations
      // only — per-iteration gradient VarDefs are re-zeroed each
      // instantiation and element-wise tensors touch distinct elements per
      // iteration — so forward order is equivalent and keeps accesses
      // forward-strided (vectorizable, prefetch-friendly).
      return makeFor(L->Iter, L->Begin, L->End, ForProperty{}, Inner);
    }
    case NodeKind::If: {
      auto I = cast<IfNode>(S);
      if (!condReevaluable(I->Cond)) {
        Fail = Status::error("grad: a branch condition reads a non-input "
                             "tensor and cannot be re-evaluated");
        return makeStmtSeq({});
      }
      return makeIf(I->Cond, reverseStmt(I->Then),
                    I->Else ? reverseStmt(I->Else) : nullptr);
    }
    case NodeKind::Store: {
      auto St = cast<StoreNode>(S);
      return reverseWrite(St->Var, St->Indices, St->Value, /*IsStore=*/true);
    }
    case NodeKind::ReduceTo: {
      auto R = cast<ReduceToNode>(S);
      if (R->Op != ReduceOpKind::Add) {
        if (differentiable(R->Var))
          Fail = Status::error("grad: non-Add reduction into differentiable "
                               "tensor `" +
                               R->Var + "`");
        return makeStmtSeq({});
      }
      return reverseWrite(R->Var, R->Indices, R->Value, /*IsStore=*/false);
    }
    case NodeKind::GemmCall: {
      auto G = cast<GemmCallNode>(S);
      if (!differentiable(G->C))
        return makeStmtSeq({});
      if (G->TransA || G->TransB) {
        Fail = Status::error("grad: transposed GemmCall is unsupported");
        return makeStmtSeq({});
      }
      auto ParamOk = [&](const std::string &N) {
        auto It = Meta.find(N);
        return It != Meta.end() && It->second.Def->ATy != AccessType::Cache;
      };
      if (!ParamOk(G->A) || !ParamOk(G->B)) {
        Fail = Status::error("grad: GemmCall operands must be parameters");
        return makeStmtSeq({});
      }
      std::vector<Stmt> Out;
      // dA[M,K] += dC[M,N] * B[K,N]^T.
      if (differentiable(G->A))
        Out.push_back(makeGemmCall(gradNameOf(G->C), G->B, gradNameOf(G->A),
                                   G->M, G->K, G->N, false, true, G->Dtype));
      // dB[K,N] += A[M,K]^T * dC[M,N].
      if (differentiable(G->B))
        Out.push_back(makeGemmCall(G->A, gradNameOf(G->C), gradNameOf(G->B),
                                   G->K, G->N, G->M, true, false, G->Dtype));
      return makeStmtSeq(std::move(Out));
    }
    default:
      ftUnreachable("expression kind in reverseStmt");
    }
  }

  Status buildBackward(GradResult *Out) {
    // Strip the parameter VarDef chain.
    Stmt Inner = F.Body;
    std::vector<Ref<VarDefNode>> ParamDefs;
    while (auto D = dyn_cast<VarDefNode>(Inner)) {
      if (D->ATy == AccessType::Cache)
        break;
      ParamDefs.push_back(D);
      Inner = D->Body;
    }

    Stmt Body = reverseStmt(Inner);
    if (!Fail)
      return Fail;

    // Zero-fill the requested gradients up front.
    std::vector<Stmt> Top;
    for (const std::string &W : Wrt)
      Top.push_back(makeZeroFill(gradNameOf(W), Meta.at(W).Def->Info.Shape,
                                 Meta.at(W).Def->Info.Dtype));
    Top.push_back(Body);
    Body = makeStmtSeq(std::move(Top));

    Func Bwd;
    Bwd.Name = F.Name + ".bwd";
    // Parameter order: originals, tapes, output seeds, input gradients.
    struct ParamSpec {
      std::string Name;
      TensorInfo Info;
      AccessType ATy;
    };
    std::vector<ParamSpec> Specs;
    for (const auto &D : ParamDefs)
      Specs.push_back({D->Name, D->Info, AccessType::Input});
    for (const std::string &T : Materialized)
      Specs.push_back({tapeNameOf(T),
                       TensorInfo{tapeShapeOf(T),
                                  Meta.at(T).Def->Info.Dtype},
                       AccessType::Input});
    for (const auto &D : ParamDefs)
      if (D->ATy == AccessType::Output && differentiable(D->Name)) {
        std::string SN = gradNameOf(D->Name);
        Specs.push_back({SN, D->Info, AccessType::Input});
        Out->SeedNames[D->Name] = SN;
      }
    for (const std::string &W : Wrt) {
      std::string GN = gradNameOf(W);
      Specs.push_back({GN, Meta.at(W).Def->Info, AccessType::Output});
      Out->GradNames[W] = GN;
    }

    for (auto It = Specs.rbegin(); It != Specs.rend(); ++It)
      Body = makeVarDef(It->Name, It->Info, It->ATy, MemType::CPU, Body);
    for (const ParamSpec &P : Specs)
      Bwd.Params.push_back(P.Name);
    Bwd.Body = flattenStmtSeq(constFold(Body));
    Out->Backward = std::move(Bwd);
    return Status::success();
  }

  const Func &F;
  std::vector<std::string> Wrt;
  TapeStrategy Strategy;

  std::map<std::string, TensorMeta> Meta;
  std::map<std::string, int> IfDepthAtDef;
  std::set<std::string> Needed;
  std::set<std::string> Materialized;
  std::set<std::string> Recomputed;
  Status Fail;
  int FreshCounter = 0;
};

} // namespace

Result<GradResult> ft::grad(const Func &F, const std::vector<std::string> &Wrt,
                            TapeStrategy Strategy) {
  trace::Span Sp("autodiff/grad");
  if (Sp.active())
    Sp.annotate("func", F.Name);
  // Fold builder-emitted "(0 + i)" offsets first so the structural checks
  // (e.g. store-indices-are-pure-iterators) see canonical indices.
  Func FF = F;
  FF.Body = constFold(FF.Body);
  return GradGen(FF, Wrt, Strategy).run();
}
