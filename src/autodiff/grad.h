//===- autodiff/grad.h - Fine-grained reverse-mode AD ------------*- C++ -*-===//
///
/// \file
/// Source-to-source reverse-mode automatic differentiation as an AST
/// transformation (paper §5): the result is ordinary IR that enjoys the
/// same schedules and codegen as the original program.
///
/// Intermediate tensors needed by the backward pass are either
/// *materialized* — stored into a tape tensor whose leading dimensions are
/// the loops enclosing the tensor's VarDef, i.e. a compile-time symbolic
/// version number (§5.1) — or *recomputed* inline in the backward pass
/// (§5.2, Fig. 15(c)). The TapeStrategy selects between materialize-all
/// (the FT(−) configuration of Fig. 18) and the selective policy (FT(+)).
///
/// Supported program class (checked, not assumed — violations produce a
/// diagnostic): within one instantiation of a tensor's VarDef each element
/// is produced by at most one Store statement, optionally followed by
/// Add-ReduceTo accumulations, and is never read before it is written.
/// Min/Max reductions participate only as stop-gradient values (NoGrad),
/// the idiom used for softmax stabilization.
///
//===----------------------------------------------------------------------===//

#ifndef FT_AUTODIFF_GRAD_H
#define FT_AUTODIFF_GRAD_H

#include <map>
#include <vector>

#include "ir/func.h"
#include "support/error.h"

namespace ft {

/// Intermediate-tensor policy for the backward pass.
enum class TapeStrategy {
  All,       ///< Materialize every needed intermediate (FT(−) in Fig. 18).
  Selective, ///< Recompute cheap values, materialize the rest (FT(+)).
};

/// The differentiated program pair.
struct GradResult {
  /// The forward pass: the original Func plus one appended Output
  /// parameter per materialized intermediate (its tape).
  Func Forward;

  /// The backward pass: parameters are the original parameters, the tapes,
  /// one gradient seed "y.grad" per original Output (Input), and one
  /// gradient result "x.grad" per requested input (Output, zero-filled by
  /// the pass itself).
  Func Backward;

  /// Names of the tape tensors (parameters of both passes).
  std::vector<std::string> Tapes;

  /// Tape name -> its storage footprint in bytes (shape product x element
  /// size after constant folding; 0 when an extent is not compile-time
  /// constant). This is the memory half of the Fig. 18 materialize vs
  /// recompute ablation: FT(-) tapes everything, FT(+) trades recompute
  /// time against these bytes.
  std::map<std::string, uint64_t> TapeBytes;

  /// Sum of TapeBytes over every tape.
  uint64_t totalTapeBytes() const {
    uint64_t Sum = 0;
    for (const auto &[Name, Bytes] : TapeBytes)
      Sum += Bytes;
    return Sum;
  }

  /// Requested input -> its gradient parameter name.
  std::map<std::string, std::string> GradNames;

  /// Original output -> its gradient-seed parameter name.
  std::map<std::string, std::string> SeedNames;
};

/// Differentiates \p F with respect to the Input parameters listed in
/// \p Wrt. All Output parameters are treated as the function results.
Result<GradResult> grad(const Func &F, const std::vector<std::string> &Wrt,
                        TapeStrategy Strategy = TapeStrategy::Selective);

} // namespace ft

#endif // FT_AUTODIFF_GRAD_H
