//===- frontend/libop.h - Operator library in pure DSL -----------*- C++ -*-===//
///
/// \file
/// The paper's libop (§3.2): a tensor operator library implemented in pure
/// DSL code rather than native kernels. Every function is dimension-free —
/// written as a finite recursion over View::ndim() exactly as in Fig. 6(b)
/// — and is fully inlined into the caller's loop nest at staging time, so
/// it is optimized together with the rest of the program (Fig. 7/8).
///
/// All element-wise functions require operand views of equal rank and
/// (programmer-asserted) equal extents.
///
//===----------------------------------------------------------------------===//

#ifndef FT_FRONTEND_LIBOP_H
#define FT_FRONTEND_LIBOP_H

#include "frontend/builder.h"

namespace ft {
namespace libop {

/// Fills \p Out with a scalar value / with zeros.
void fill(FunctionBuilder &B, const View &Out, const Expr &Value);
void zeros(FunctionBuilder &B, const View &Out);

/// Out = X, elementwise.
void copy(FunctionBuilder &B, const View &X, const View &Out);

/// Generic elementwise maps (the building blocks for the fixed ops below).
using UnaryFn = std::function<Expr(const Expr &)>;
using BinaryFn = std::function<Expr(const Expr &, const Expr &)>;
void mapUnary(FunctionBuilder &B, const View &X, const View &Out,
              const UnaryFn &Fn);
void mapBinary(FunctionBuilder &B, const View &X, const View &Y,
               const View &Out, const BinaryFn &Fn);

/// Fixed elementwise operators.
void add(FunctionBuilder &B, const View &X, const View &Y, const View &Out);
void sub(FunctionBuilder &B, const View &X, const View &Y, const View &Out);
void mul(FunctionBuilder &B, const View &X, const View &Y, const View &Out);
void abs(FunctionBuilder &B, const View &X, const View &Out);
void exp(FunctionBuilder &B, const View &X, const View &Out);
void relu(FunctionBuilder &B, const View &X, const View &Out);
void sigmoid(FunctionBuilder &B, const View &X, const View &Out);

/// Out (0-D) += sum of all elements of X (Out must be initialized).
void accumulateSum(FunctionBuilder &B, const View &X, const View &Out);

/// Out op= X elementwise, same rank (Out need not be zero).
void accumulate(FunctionBuilder &B, const View &X, const View &Out,
                ReduceOpKind Op = ReduceOpKind::Add);

/// Out = sum of X over axis \p Axis; Out has rank X.ndim()-1. Includes the
/// zero-initialization of Out.
void reduceSum(FunctionBuilder &B, const View &X, const View &Out, int Axis);

/// Out = max of X over the last axis (rank X.ndim()-1), initialized.
void reduceMax(FunctionBuilder &B, const View &X, const View &Out, int Axis);

/// C = A @ B for 2-D views (zero-initializes C).
void matmul(FunctionBuilder &B, const View &A, const View &Bm, const View &C);

/// Out = softmax(X) along the only axis of a 1-D view. The running max used
/// for numerical stabilization is a stop-gradient local (mathematically
/// exact for softmax: the shift cancels in the derivative).
void softmax(FunctionBuilder &B, const View &X, const View &Out);

/// Out = X^T for 2-D views.
void transpose(FunctionBuilder &B, const View &X, const View &Out);

/// Out = concat(X, Y) along axis 0 (same trailing shape).
void concat0(FunctionBuilder &B, const View &X, const View &Y,
             const View &Out);

/// Out[n, o] = X[n, i] @ W[i, o] + Bias[o]: a dense layer.
void linear(FunctionBuilder &B, const View &X, const View &W,
            const View &Bias, const View &Out);

/// Out (0-D) = sum of squared differences of X and Y (any rank): an MSE
///-style loss without the mean.
void squaredError(FunctionBuilder &B, const View &X, const View &Y,
                  const View &Out);

} // namespace libop
} // namespace ft

#endif // FT_FRONTEND_LIBOP_H
