//===- frontend/expr_ops.h - Operator sugar for Expr -------------*- C++ -*-===//
///
/// \file
/// Overloaded operators and scalar-literal conversions so DSL code reads
/// like the paper's listings: `dot[k + w] += Q(j, p) * K(j + k, p)`.
/// All operators are thin wrappers over the ir factory functions.
///
//===----------------------------------------------------------------------===//

#ifndef FT_FRONTEND_EXPR_OPS_H
#define FT_FRONTEND_EXPR_OPS_H

#include "ir/expr.h"

namespace ft {

inline Expr operator+(const Expr &L, const Expr &R) { return makeAdd(L, R); }
inline Expr operator-(const Expr &L, const Expr &R) { return makeSub(L, R); }
inline Expr operator*(const Expr &L, const Expr &R) { return makeMul(L, R); }
inline Expr operator/(const Expr &L, const Expr &R) {
  return makeRealDiv(L, R);
}
inline Expr operator-(const Expr &X) { return makeUnary(UnOpKind::Neg, X); }

inline Expr operator+(const Expr &L, int64_t R) {
  return makeAdd(L, makeIntConst(R));
}
inline Expr operator+(int64_t L, const Expr &R) {
  return makeAdd(makeIntConst(L), R);
}
inline Expr operator-(const Expr &L, int64_t R) {
  return makeSub(L, makeIntConst(R));
}
inline Expr operator-(int64_t L, const Expr &R) {
  return makeSub(makeIntConst(L), R);
}
inline Expr operator*(const Expr &L, int64_t R) {
  return makeMul(L, makeIntConst(R));
}
inline Expr operator*(int64_t L, const Expr &R) {
  return makeMul(makeIntConst(L), R);
}

// Note: ==, != and ! are deliberately NOT overloaded for Expr — they would
// make ordinary shared_ptr comparisons (e.g. against nullptr) ambiguous.
// Use makeEQ / makeNE / makeLNot.
inline Expr operator<(const Expr &L, const Expr &R) { return makeLT(L, R); }
inline Expr operator<=(const Expr &L, const Expr &R) { return makeLE(L, R); }
inline Expr operator>(const Expr &L, const Expr &R) { return makeGT(L, R); }
inline Expr operator>=(const Expr &L, const Expr &R) { return makeGE(L, R); }
inline Expr operator&&(const Expr &L, const Expr &R) {
  return makeLAnd(L, R);
}
inline Expr operator||(const Expr &L, const Expr &R) { return makeLOr(L, R); }

inline Expr operator<(const Expr &L, int64_t R) {
  return makeLT(L, makeIntConst(R));
}
inline Expr operator<=(const Expr &L, int64_t R) {
  return makeLE(L, makeIntConst(R));
}
inline Expr operator>(const Expr &L, int64_t R) {
  return makeGT(L, makeIntConst(R));
}
inline Expr operator>=(const Expr &L, int64_t R) {
  return makeGE(L, makeIntConst(R));
}

/// Scalar math helpers matching libop naming.
inline Expr exp(const Expr &X) { return makeUnary(UnOpKind::Exp, X); }
inline Expr ln(const Expr &X) { return makeUnary(UnOpKind::Ln, X); }
inline Expr sqrt(const Expr &X) { return makeUnary(UnOpKind::Sqrt, X); }
inline Expr abs(const Expr &X) { return makeUnary(UnOpKind::Abs, X); }
inline Expr sigmoid(const Expr &X) { return makeUnary(UnOpKind::Sigmoid, X); }
inline Expr tanh(const Expr &X) { return makeUnary(UnOpKind::Tanh, X); }
inline Expr min(const Expr &L, const Expr &R) { return makeMin(L, R); }
inline Expr max(const Expr &L, const Expr &R) { return makeMax(L, R); }
inline Expr select(const Expr &C, const Expr &T, const Expr &F) {
  return makeIfExpr(C, T, F);
}

} // namespace ft

#endif // FT_FRONTEND_EXPR_OPS_H
