//===- frontend/libop.cpp -------------------------------------------------===//

#include "frontend/libop.h"

#include <cmath>

using namespace ft;

void libop::fill(FunctionBuilder &B, const View &Out, const Expr &Value) {
  if (Out.ndim() == 0) {
    Out.assign(Value);
    return;
  }
  B.loop("i", makeIntConst(0), Out.shape(0),
         [&](Expr I) { fill(B, Out[I], Value); });
}

void libop::zeros(FunctionBuilder &B, const View &Out) {
  fill(B, Out,
       isFloat(Out.dtype()) ? makeFloatConst(0.0) : makeIntConst(0));
}

void libop::mapUnary(FunctionBuilder &B, const View &X, const View &Out,
                     const UnaryFn &Fn) {
  ftAssert(X.ndim() == Out.ndim(), "libop rank mismatch");
  if (X.ndim() == 0) {
    Out.assign(Fn(X.load()));
    return;
  }
  B.loop("i", makeIntConst(0), X.shape(0),
         [&](Expr I) { mapUnary(B, X[I], Out[I], Fn); });
}

void libop::mapBinary(FunctionBuilder &B, const View &X, const View &Y,
                      const View &Out, const BinaryFn &Fn) {
  ftAssert(X.ndim() == Y.ndim() && X.ndim() == Out.ndim(),
           "libop rank mismatch");
  if (X.ndim() == 0) {
    Out.assign(Fn(X.load(), Y.load()));
    return;
  }
  B.loop("i", makeIntConst(0), X.shape(0),
         [&](Expr I) { mapBinary(B, X[I], Y[I], Out[I], Fn); });
}

void libop::copy(FunctionBuilder &B, const View &X, const View &Out) {
  mapUnary(B, X, Out, [](const Expr &V) { return V; });
}

void libop::add(FunctionBuilder &B, const View &X, const View &Y,
                const View &Out) {
  mapBinary(B, X, Y, Out, makeAdd);
}

void libop::sub(FunctionBuilder &B, const View &X, const View &Y,
                const View &Out) {
  mapBinary(B, X, Y, Out, makeSub);
}

void libop::mul(FunctionBuilder &B, const View &X, const View &Y,
                const View &Out) {
  mapBinary(B, X, Y, Out, makeMul);
}

void libop::abs(FunctionBuilder &B, const View &X, const View &Out) {
  mapUnary(B, X, Out,
           [](const Expr &V) { return makeUnary(UnOpKind::Abs, V); });
}

void libop::exp(FunctionBuilder &B, const View &X, const View &Out) {
  mapUnary(B, X, Out,
           [](const Expr &V) { return makeUnary(UnOpKind::Exp, V); });
}

void libop::relu(FunctionBuilder &B, const View &X, const View &Out) {
  mapUnary(B, X, Out,
           [](const Expr &V) { return makeMax(V, makeFloatConst(0.0)); });
}

void libop::sigmoid(FunctionBuilder &B, const View &X, const View &Out) {
  mapUnary(B, X, Out,
           [](const Expr &V) { return makeUnary(UnOpKind::Sigmoid, V); });
}

void libop::accumulate(FunctionBuilder &B, const View &X, const View &Out,
                       ReduceOpKind Op) {
  ftAssert(X.ndim() == Out.ndim(), "libop rank mismatch");
  if (X.ndim() == 0) {
    Out.reduce(Op, X.load());
    return;
  }
  B.loop("i", makeIntConst(0), X.shape(0),
         [&](Expr I) { accumulate(B, X[I], Out[I], Op); });
}

void libop::accumulateSum(FunctionBuilder &B, const View &X,
                          const View &Out) {
  ftAssert(Out.ndim() == 0, "accumulateSum target must be 0-D");
  if (X.ndim() == 0) {
    Out.reduce(ReduceOpKind::Add, X.load());
    return;
  }
  B.loop("i", makeIntConst(0), X.shape(0),
         [&](Expr I) { accumulateSum(B, X[I], Out); });
}

namespace {

/// Shared body of the axis reductions: Out op= X collapsed along Axis.
void accumulateAxis(FunctionBuilder &B, const View &X, const View &Out,
                    int Axis, ReduceOpKind Op) {
  ftAssert(Out.ndim() == X.ndim() - 1, "axis reduction rank mismatch");
  if (Axis == 0) {
    B.loop("r", makeIntConst(0), X.shape(0),
           [&](Expr I) { libop::accumulate(B, X[I], Out, Op); });
    return;
  }
  B.loop("i", makeIntConst(0), X.shape(0), [&](Expr I) {
    accumulateAxis(B, X[I], Out[I], Axis - 1, Op);
  });
}

} // namespace

void libop::reduceSum(FunctionBuilder &B, const View &X, const View &Out,
                      int Axis) {
  zeros(B, Out);
  accumulateAxis(B, X, Out, Axis, ReduceOpKind::Add);
}

void libop::reduceMax(FunctionBuilder &B, const View &X, const View &Out,
                      int Axis) {
  fill(B, Out, neutralValue(ReduceOpKind::Max, X.dtype()));
  accumulateAxis(B, X, Out, Axis, ReduceOpKind::Max);
}

void libop::matmul(FunctionBuilder &B, const View &A, const View &Bm,
                   const View &C) {
  ftAssert(A.ndim() == 2 && Bm.ndim() == 2 && C.ndim() == 2,
           "matmul requires 2-D views");
  B.loop("i", makeIntConst(0), A.shape(0), [&](Expr I) {
    B.loop("j", makeIntConst(0), Bm.shape(1), [&](Expr J) {
      C[I][J].assign(isFloat(C.dtype()) ? makeFloatConst(0.0)
                                        : makeIntConst(0));
      B.loop("k", makeIntConst(0), A.shape(1), [&](Expr K) {
        C[I][J] += A[I][K].load() * Bm[K][J].load();
      });
    });
  });
}

void libop::transpose(FunctionBuilder &B, const View &X, const View &Out) {
  ftAssert(X.ndim() == 2 && Out.ndim() == 2, "transpose expects 2-D views");
  B.loop("i", makeIntConst(0), X.shape(0), [&](Expr I) {
    B.loop("j", makeIntConst(0), X.shape(1),
           [&](Expr J) { Out[J][I].assign(X[I][J].load()); });
  });
}

void libop::concat0(FunctionBuilder &B, const View &X, const View &Y,
                    const View &Out) {
  ftAssert(X.ndim() == Y.ndim() && X.ndim() == Out.ndim() && X.ndim() >= 1,
           "concat0 rank mismatch");
  B.loop("i", makeIntConst(0), X.shape(0),
         [&](Expr I) { copy(B, X[I], Out[I]); });
  B.loop("i", makeIntConst(0), Y.shape(0), [&](Expr I) {
    copy(B, Y[I], Out[makeAdd(I, X.shape(0))]);
  });
}

void libop::linear(FunctionBuilder &B, const View &X, const View &W,
                   const View &Bias, const View &Out) {
  ftAssert(X.ndim() == 2 && W.ndim() == 2 && Bias.ndim() == 1 &&
               Out.ndim() == 2,
           "linear expects X[n,i], W[i,o], Bias[o], Out[n,o]");
  B.loop("n", makeIntConst(0), X.shape(0), [&](Expr N) {
    B.loop("o", makeIntConst(0), W.shape(1), [&](Expr O) {
      Out[N][O].assign(Bias[O].load());
      B.loop("k", makeIntConst(0), X.shape(1), [&](Expr K) {
        Out[N][O] += X[N][K].load() * W[K][O].load();
      });
    });
  });
}

void libop::squaredError(FunctionBuilder &B, const View &X, const View &Y,
                         const View &Out) {
  ftAssert(Out.ndim() == 0, "squaredError target must be 0-D");
  ftAssert(X.ndim() == Y.ndim(), "squaredError rank mismatch");
  if (X.ndim() == 0) {
    Expr D = X.load() - Y.load();
    Out.reduce(ReduceOpKind::Add, D * D);
    return;
  }
  B.loop("i", makeIntConst(0), X.shape(0),
         [&](Expr I) { squaredError(B, X[I], Y[I], Out); });
}

void libop::softmax(FunctionBuilder &B, const View &X, const View &Out) {
  ftAssert(X.ndim() == 1 && Out.ndim() == 1, "softmax expects 1-D views");
  View Mx = B.localNoGrad("smax.max", {}, X.dtype());
  Mx.assign(makeFloatConst(-INFINITY));
  B.loop("k", makeIntConst(0), X.shape(0),
         [&](Expr K) { Mx.reduceMax(X[K].load()); });
  View Den = B.local("smax.den", {}, X.dtype());
  Den.assign(makeFloatConst(0.0));
  View Ex = B.local("smax.exp", {X.shape(0)}, X.dtype());
  B.loop("k", makeIntConst(0), X.shape(0), [&](Expr K) {
    Ex[K].assign(ft::exp(X[K].load() - Mx.load()));
    Den += Ex[K].load();
  });
  B.loop("k", makeIntConst(0), X.shape(0), [&](Expr K) {
    Out[K].assign(Ex[K].load() / Den.load());
  });
}
