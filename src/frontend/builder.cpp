//===- frontend/builder.cpp -----------------------------------------------===//

#include "frontend/builder.h"

#include "analysis/extents.h"
#include "ir/visitor.h"
#include "support/string_utils.h"
#include "support/trace.h"

using namespace ft;

//===----------------------------------------------------------------------===//
// View
//===----------------------------------------------------------------------===//

Expr View::shape(int D) const {
  ftAssert(D >= 0 && D < ndim(), "View::shape dimension out of range");
  return Kept[D].Extent;
}

View View::select(int D, const Expr &I) const {
  ftAssert(D >= 0 && D < ndim(), "View::select dimension out of range");
  View Out = *this;
  int BaseDim = Kept[D].BaseDim;
  Out.Offsets[BaseDim] = makeAdd(Offsets[BaseDim], I);
  Out.Kept.erase(Out.Kept.begin() + D);
  return Out;
}

View View::slice(int D, const Expr &Begin, const Expr &End) const {
  ftAssert(D >= 0 && D < ndim(), "View::slice dimension out of range");
  View Out = *this;
  int BaseDim = Kept[D].BaseDim;
  Out.Offsets[BaseDim] = makeAdd(Offsets[BaseDim], Begin);
  Out.Kept[D].Extent = makeSub(End, Begin);
  return Out;
}

std::vector<Expr> View::baseIndices(const std::vector<Expr> &KeptIdx) const {
  ftAssert(KeptIdx.size() == Kept.size(),
           "index count does not match view rank");
  std::vector<Expr> Out = Offsets;
  for (size_t D = 0; D < Kept.size(); ++D)
    Out[Kept[D].BaseDim] = makeAdd(Out[Kept[D].BaseDim], KeptIdx[D]);
  return Out;
}

Expr View::load() const {
  ftAssert(ndim() == 0, "loading a non-scalar view of " + Base +
                            "; index it fully first");
  return makeLoad(Base, Offsets, Dtype);
}

void View::assign(const Expr &Value) const {
  ftAssert(Builder != nullptr, "assigning through a detached view");
  Builder->emitStore(*this, {}, Value);
}

void View::reduce(ReduceOpKind Op, const Expr &Value) const {
  ftAssert(Builder != nullptr, "reducing through a detached view");
  Builder->emitReduce(*this, {}, Op, Value);
}

//===----------------------------------------------------------------------===//
// FunctionBuilder
//===----------------------------------------------------------------------===//

FunctionBuilder::FunctionBuilder(std::string Name) : Name(std::move(Name)) {
  Blocks.emplace_back();
}

std::string FunctionBuilder::freshName(const std::string &Hint) {
  int &N = NameCounter[Hint];
  std::string Out = N == 0 ? Hint : Hint + "." + std::to_string(N);
  ++N;
  return Out;
}

View FunctionBuilder::makeView(const std::string &Name,
                               const std::vector<Expr> &Shape,
                               DataType Dtype) {
  View V;
  V.Builder = this;
  V.Base = Name;
  V.Dtype = Dtype;
  for (size_t D = 0; D < Shape.size(); ++D) {
    V.Offsets.push_back(makeIntConst(0));
    V.Kept.push_back({static_cast<int>(D), Shape[D]});
  }
  return V;
}

View FunctionBuilder::makeParam(const std::string &Name,
                                std::vector<Expr> Shape, DataType Dtype,
                                AccessType ATy) {
  std::string Unique = freshName(Name);
  ftAssert(Unique == Name, "duplicate parameter name: " + Name);
  Params.push_back({Name, TensorInfo{Shape, Dtype}, ATy});
  return makeView(Name, Shape, Dtype);
}

View FunctionBuilder::input(const std::string &Name, std::vector<Expr> Shape,
                            DataType Dtype) {
  return makeParam(Name, std::move(Shape), Dtype, AccessType::Input);
}

View FunctionBuilder::output(const std::string &Name,
                             std::vector<Expr> Shape, DataType Dtype) {
  return makeParam(Name, std::move(Shape), Dtype, AccessType::Output);
}

View FunctionBuilder::inout(const std::string &Name, std::vector<Expr> Shape,
                            DataType Dtype) {
  return makeParam(Name, std::move(Shape), Dtype, AccessType::InOut);
}

Expr FunctionBuilder::scalarInput(const std::string &Name, DataType Dtype) {
  View V = makeParam(Name, {}, Dtype, AccessType::Input);
  return V.load();
}

View FunctionBuilder::local(const std::string &Name, std::vector<Expr> Shape,
                            DataType Dtype, MemType MTy) {
  std::string Unique = freshName(Name);
  Blocks.back().Defs.push_back({Blocks.back().Stmts.size(), Unique,
                                TensorInfo{Shape, Dtype}, MTy,
                                /*NoGrad=*/false});
  return makeView(Unique, Shape, Dtype);
}

View FunctionBuilder::localNoGrad(const std::string &Name,
                                  std::vector<Expr> Shape, DataType Dtype,
                                  MemType MTy) {
  View V = local(Name, std::move(Shape), Dtype, MTy);
  Blocks.back().Defs.back().NoGrad = true;
  return V;
}

void FunctionBuilder::append(Stmt S) {
  Blocks.back().Stmts.push_back(std::move(S));
}

Stmt FunctionBuilder::closeBlock(Block &&B) {
  // Later defs wrap a suffix of earlier ones, so fold from the back.
  std::vector<Stmt> Stmts = std::move(B.Stmts);
  for (auto It = B.Defs.rbegin(); It != B.Defs.rend(); ++It) {
    std::vector<Stmt> Wrapped(Stmts.begin() + It->Pos, Stmts.end());
    Stmts.resize(It->Pos);
    Stmt Body = Wrapped.size() == 1 ? Wrapped[0]
                                    : makeStmtSeq(std::move(Wrapped));
    Stmt Def = makeVarDef(It->Name, It->Info, AccessType::Cache, It->MTy,
                          std::move(Body));
    cast<VarDefNode>(Def)->NoGrad = It->NoGrad;
    Stmts.push_back(std::move(Def));
  }
  if (Stmts.size() == 1)
    return Stmts[0];
  return makeStmtSeq(std::move(Stmts));
}

int64_t FunctionBuilder::loop(const std::string &IterHint, const Expr &Begin,
                              const Expr &End,
                              const std::function<void(Expr)> &Body,
                              const std::string &Label) {
  std::string Iter = freshName(IterHint);
  Blocks.emplace_back();
  Body(makeVar(Iter));
  Stmt BodyStmt = closeBlock(std::move(Blocks.back()));
  Blocks.pop_back();
  Stmt For = makeFor(Iter, Begin, End, ForProperty{}, std::move(BodyStmt));
  For->Label = Label;
  int64_t Id = For->Id;
  append(std::move(For));
  return Id;
}

int64_t FunctionBuilder::loop(const std::string &IterHint, int64_t Begin,
                              int64_t End,
                              const std::function<void(Expr)> &Body,
                              const std::string &Label) {
  return loop(IterHint, makeIntConst(Begin), makeIntConst(End), Body, Label);
}

void FunctionBuilder::ifThen(const Expr &Cond,
                             const std::function<void()> &Then) {
  Blocks.emplace_back();
  Then();
  Stmt ThenStmt = closeBlock(std::move(Blocks.back()));
  Blocks.pop_back();
  append(makeIf(Cond, std::move(ThenStmt)));
}

void FunctionBuilder::ifThenElse(const Expr &Cond,
                                 const std::function<void()> &Then,
                                 const std::function<void()> &Else) {
  Blocks.emplace_back();
  Then();
  Stmt ThenStmt = closeBlock(std::move(Blocks.back()));
  Blocks.pop_back();
  Blocks.emplace_back();
  Else();
  Stmt ElseStmt = closeBlock(std::move(Blocks.back()));
  Blocks.pop_back();
  append(makeIf(Cond, std::move(ThenStmt), std::move(ElseStmt)));
}

void FunctionBuilder::emitStore(const View &V, std::vector<Expr> Indices,
                                Expr Value) {
  append(makeStore(V.Base, V.baseIndices(Indices), std::move(Value)));
}

void FunctionBuilder::emitReduce(const View &V, std::vector<Expr> Indices,
                                 ReduceOpKind Op, Expr Value) {
  append(makeReduceTo(V.Base, V.baseIndices(Indices), Op, std::move(Value)));
}

Func FunctionBuilder::build() {
  trace::Span Sp("frontend/build");
  if (Sp.active())
    Sp.annotate("func", Name);
  ftAssert(Blocks.size() == 1, "build() called inside an open block");
  // A parameter's shape may reference only previously declared 0-D integer
  // parameters: the VarDef nest below wraps parameters outside-in, so any
  // later (or tensor-valued) name would be out of scope exactly where
  // codegen emits the dimension locals for the referencing parameter.
  for (size_t PI = 0; PI < Params.size(); ++PI) {
    for (const Expr &Dim : Params[PI].Info.Shape)
      for (const std::string &N : scalarLoadsOf(Dim)) {
        const ParamInfo *Decl = nullptr;
        for (size_t Q = 0; Q < PI; ++Q)
          if (Params[Q].Name == N)
            Decl = &Params[Q];
        ftAssert(Decl != nullptr,
                 "shape of parameter `" + Params[PI].Name + "` references `" +
                     N +
                     "`, which is not declared before it; declare the "
                     "extent parameter (scalarInput) first");
        ftAssert(Decl->Info.Shape.empty() && isInt(Decl->Info.Dtype),
                 "shape of parameter `" + Params[PI].Name + "` references `" +
                     N + "`, which is not a 0-D integer parameter");
      }
  }
  Stmt Body = closeBlock(std::move(Blocks.back()));
  Blocks.clear();
  // Ragged-bound validation (DESIGN.md §17): a loop bound may read a
  // tensor element only in the segment-loop idiom `for j in
  // indptr[i]..indptr[i+1]` — a single-index load of a 1-D integer Input
  // parameter. Anything else (a local, an output, a float tensor, a
  // multi-dim load) has no runtime monotonicity contract, so dependence
  // analysis and the executors could not reason about it.
  {
    class BoundLoads : public Visitor {
    public:
      std::vector<const LoadNode *> Out;

    protected:
      void visit(const LoadNode *E) override {
        if (!E->Indices.empty())
          Out.push_back(E);
        Visitor::visit(E);
      }
    };
    class RaggedIdiomCheck : public Visitor {
    public:
      RaggedIdiomCheck(const std::vector<ParamInfo> &Params,
                       const std::string &FuncName)
          : Params(Params), FuncName(FuncName) {}

    protected:
      void visit(const ForNode *S) override {
        for (const Expr &Bound : {S->Begin, S->End}) {
          BoundLoads BL;
          BL(Bound);
          for (const LoadNode *L : BL.Out)
            checkIdiom(S, L);
        }
        Visitor::visit(S);
      }

    private:
      void checkIdiom(const ForNode *S, const LoadNode *L) {
        const ParamInfo *Decl = nullptr;
        for (const ParamInfo &P : Params)
          if (P.Name == L->Var)
            Decl = &P;
        ftAssert(Decl != nullptr,
                 "in " + FuncName + ", the bounds of loop `" + S->Iter +
                     "` read tensor `" + L->Var +
                     "`, which is not a parameter; data-dependent bounds "
                     "must load a 1-D integer Input index tensor");
        ftAssert(Decl->ATy == AccessType::Input,
                 "in " + FuncName + ", the bounds of loop `" + S->Iter +
                     "` read `" + L->Var +
                     "`, which is writable (" + nameOf(Decl->ATy) +
                     "); index tensors must be read-only Inputs");
        ftAssert(Decl->Info.Shape.size() == 1 && L->Indices.size() == 1,
                 "in " + FuncName + ", the bounds of loop `" + S->Iter +
                     "` read `" + L->Var +
                     "`, which is not 1-D; index tensors carry one segment "
                     "offset per row");
        ftAssert(isInt(Decl->Info.Dtype),
                 "in " + FuncName + ", the bounds of loop `" + S->Iter +
                     "` read `" + L->Var +
                     "`, which is not an integer tensor");
      }

      const std::vector<ParamInfo> &Params;
      const std::string &FuncName;
    };
    RaggedIdiomCheck Check(Params, Name);
    Check(Body);
  }
  // Wrap parameters outside-in so the first parameter is outermost.
  for (auto It = Params.rbegin(); It != Params.rend(); ++It)
    Body = makeVarDef(It->Name, It->Info, It->ATy, MemType::CPU,
                      std::move(Body));
  Func F;
  F.Name = Name;
  for (const ParamInfo &P : Params)
    F.Params.push_back(P.Name);
  F.Body = std::move(Body);
  if (Sp.active())
    Sp.annotate("ir_nodes", static_cast<uint64_t>(countNodes(F.Body)));
  return F;
}
