//===- frontend/builder.h - The free-form DSL frontend -----------*- C++ -*-===//
///
/// \file
/// The staged frontend of the DSL (paper §3). A FunctionBuilder assembles a
/// Func while C++ code runs; tensors are first-class View values carrying
/// metadata (ndim / shape / dtype / mtype, §3.3), partial indexing produces
/// sub-views (NumPy-style rules, §3.1), and fine-grained control flow is
/// expressed with `loop` / `ifThen` taking C++ lambdas.
///
/// Because metadata is a C++ value at staging time, dimension-free library
/// functions are ordinary C++ recursion over `View::ndim()` — the finite
/// recursion of Fig. 6(b) — and every call is inlined into the emitted IR by
/// construction, which realizes the paper's partial evaluation (§4.1) and
/// always-inlined calls (Fig. 7) at the same phase of the pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef FT_FRONTEND_BUILDER_H
#define FT_FRONTEND_BUILDER_H

#include <functional>
#include <map>

#include "frontend/expr_ops.h"
#include "ir/func.h"

namespace ft {

class FunctionBuilder;

/// A (possibly partial) view of a tensor: the result of indexing/slicing.
/// Copy-by-value semantics of the *handle*; actual data is only named, and
/// reads/writes are emitted through the owning FunctionBuilder.
class View {
public:
  View() = default;

  /// Number of remaining (kept) dimensions.
  int ndim() const { return static_cast<int>(Kept.size()); }

  /// Extent of kept dimension \p D.
  Expr shape(int D) const;

  /// Element type.
  DataType dtype() const { return Dtype; }

  /// Name of the underlying tensor.
  const std::string &name() const { return Base; }

  /// Selects index \p I of the first kept dimension, dropping it.
  View operator[](const Expr &I) const { return select(0, I); }
  View operator[](int64_t I) const { return select(0, makeIntConst(I)); }

  /// Selects index \p I of kept dimension \p D, dropping it.
  View select(int D, const Expr &I) const;

  /// Restricts kept dimension \p D to [Begin, End) without dropping it.
  View slice(int D, const Expr &Begin, const Expr &End) const;

  /// Loads the scalar value (requires ndim() == 0).
  Expr load() const;

  /// Implicit read of 0-D views so they compose in expressions.
  operator Expr() const { return load(); }

  /// Emits `this = Value` (requires ndim() == 0).
  void assign(const Expr &Value) const;
  void assign(double Value) const { assign(makeFloatConst(Value)); }
  void assign(int64_t Value) const { assign(makeIntConst(Value)); }

  /// Emits a commutative accumulation `this op= Value` (ndim() == 0).
  void reduce(ReduceOpKind Op, const Expr &Value) const;
  void operator+=(const Expr &Value) const {
    reduce(ReduceOpKind::Add, Value);
  }
  void operator*=(const Expr &Value) const {
    reduce(ReduceOpKind::Mul, Value);
  }
  void reduceMax(const Expr &Value) const {
    reduce(ReduceOpKind::Max, Value);
  }
  void reduceMin(const Expr &Value) const {
    reduce(ReduceOpKind::Min, Value);
  }

private:
  friend class FunctionBuilder;

  /// Builds the full base index list from kept-dim indices.
  std::vector<Expr> baseIndices(const std::vector<Expr> &KeptIdx) const;

  FunctionBuilder *Builder = nullptr;
  std::string Base;
  DataType Dtype = DataType::Float32;
  std::vector<Expr> Offsets; ///< One per base dimension.
  struct KeptDim {
    int BaseDim;
    Expr Extent;
  };
  std::vector<KeptDim> Kept;
};

/// Builds one Func. See the file comment for the programming model.
class FunctionBuilder {
public:
  explicit FunctionBuilder(std::string Name);

  /// Declares tensor parameters. Shapes are expressions (use intConsts or
  /// scalar parameters). Parameter order is the declaration order.
  View input(const std::string &Name, std::vector<Expr> Shape,
             DataType Dtype = DataType::Float32);
  View output(const std::string &Name, std::vector<Expr> Shape,
              DataType Dtype = DataType::Float32);
  View inout(const std::string &Name, std::vector<Expr> Shape,
             DataType Dtype = DataType::Float32);

  /// Declares a read-only scalar parameter and returns its value.
  Expr scalarInput(const std::string &Name,
                   DataType Dtype = DataType::Int64);

  /// Creates a tensor local to the current block (paper's create_var). It
  /// scopes over the rest of the block; pass/sink_var can narrow it later.
  View local(const std::string &Name, std::vector<Expr> Shape,
             DataType Dtype = DataType::Float32,
             MemType MTy = MemType::CPU);

  /// Like local, but loads of the tensor are treated as constants by AD
  /// (stop-gradient), e.g. the running max in a softmax.
  View localNoGrad(const std::string &Name, std::vector<Expr> Shape,
                   DataType Dtype = DataType::Float32,
                   MemType MTy = MemType::CPU);

  /// Emits `for <name> in [Begin, End)` with \p Body receiving the
  /// iterator. Returns the For statement's ID for scheduling. The iterator
  /// name is uniquified; pass a label to address the loop later.
  int64_t loop(const std::string &IterHint, const Expr &Begin,
               const Expr &End, const std::function<void(Expr)> &Body,
               const std::string &Label = "");
  int64_t loop(const std::string &IterHint, int64_t Begin, int64_t End,
               const std::function<void(Expr)> &Body,
               const std::string &Label = "");

  /// Emits a branch.
  void ifThen(const Expr &Cond, const std::function<void()> &Then);
  void ifThenElse(const Expr &Cond, const std::function<void()> &Then,
                  const std::function<void()> &Else);

  /// Low-level emission used by View.
  void emitStore(const View &V, std::vector<Expr> Indices, Expr Value);
  void emitReduce(const View &V, std::vector<Expr> Indices, ReduceOpKind Op,
                  Expr Value);

  /// Returns a fresh name derived from \p Hint.
  std::string freshName(const std::string &Hint);

  /// Finalizes and returns the Func. The builder must be at top level.
  Func build();

private:
  friend class View;

  struct PendingDef {
    size_t Pos; ///< Wraps statements [Pos, end) of the block.
    std::string Name;
    TensorInfo Info;
    MemType MTy;
    bool NoGrad;
  };

  struct Block {
    std::vector<Stmt> Stmts;
    std::vector<PendingDef> Defs;
  };

  View makeParam(const std::string &Name, std::vector<Expr> Shape,
                 DataType Dtype, AccessType ATy);
  View makeView(const std::string &Name, const std::vector<Expr> &Shape,
                DataType Dtype);
  void append(Stmt S);
  Stmt closeBlock(Block &&B);

  std::string Name;
  std::vector<Block> Blocks;
  struct ParamInfo {
    std::string Name;
    TensorInfo Info;
    AccessType ATy;
  };
  std::vector<ParamInfo> Params;
  std::map<std::string, int> NameCounter;
};

} // namespace ft

#endif // FT_FRONTEND_BUILDER_H
