//===- ir/mutator.h - Rebuilding AST traversal -------------------*- C++ -*-===//
///
/// \file
/// Depth-first rebuilding traversal. AST nodes are immutable; a pass derives
/// from Mutator, overrides the hooks it cares about, and receives a new tree
/// sharing unchanged subtrees. Statement IDs are preserved across rebuilds
/// so schedules can keep addressing statements.
///
//===----------------------------------------------------------------------===//

#ifndef FT_IR_MUTATOR_H
#define FT_IR_MUTATOR_H

#include "ir/stmt.h"

namespace ft {

/// Rebuilding depth-first visitor.
class Mutator {
public:
  virtual ~Mutator() = default;

  /// Rewrites an expression tree. Virtual so subclasses can intercept
  /// every node uniformly (e.g. ID-based replacement).
  virtual Expr operator()(const Expr &E);

  /// Rewrites a statement tree (virtual, see above).
  virtual Stmt operator()(const Stmt &S);

protected:
  virtual Expr visit(const IntConstNode *E);
  virtual Expr visit(const FloatConstNode *E);
  virtual Expr visit(const BoolConstNode *E);
  virtual Expr visit(const VarNode *E);
  virtual Expr visit(const LoadNode *E);
  virtual Expr visit(const BinaryNode *E);
  virtual Expr visit(const UnaryNode *E);
  virtual Expr visit(const IfExprNode *E);
  virtual Expr visit(const CastNode *E);

  virtual Stmt visit(const StmtSeqNode *S);
  virtual Stmt visit(const VarDefNode *S);
  virtual Stmt visit(const StoreNode *S);
  virtual Stmt visit(const ReduceToNode *S);
  virtual Stmt visit(const ForNode *S);
  virtual Stmt visit(const IfNode *S);
  virtual Stmt visit(const GemmCallNode *S);

  /// Rewrites each index of an access.
  std::vector<Expr> mutateIndices(const std::vector<Expr> &Indices);
};

} // namespace ft

#endif // FT_IR_MUTATOR_H
