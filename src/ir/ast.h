//===- ir/ast.h - AST base node, kinds, and casting --------------*- C++ -*-===//
///
/// \file
/// The base class for FreeTensor's intermediate representation: a
/// stack-scoped abstract syntax tree (paper §4). Nodes are reference-counted
/// and treated as immutable after construction; passes rebuild subtrees via
/// the Mutator. RTTI is not used: each node carries a NodeKind tag and we
/// provide LLVM-style isa<> / cast<> / dyn_cast<> over it.
///
//===----------------------------------------------------------------------===//

#ifndef FT_IR_AST_H
#define FT_IR_AST_H

#include <cstdint>
#include <memory>

#include "support/error.h"

namespace ft {

/// Discriminator for every concrete AST node type.
enum class NodeKind : uint8_t {
  // Expressions.
  IntConst,
  FloatConst,
  BoolConst,
  Var,
  Load,
  Binary,
  Unary,
  IfExpr,
  Cast,
  // Statements.
  StmtSeq,
  VarDef,
  Store,
  ReduceTo,
  For,
  If,
  GemmCall,
};

/// Shared ownership handle for AST nodes.
template <typename T> using Ref = std::shared_ptr<T>;

/// Base of all AST nodes.
class ASTNode {
public:
  explicit ASTNode(NodeKind K) : Kind(K) {}
  virtual ~ASTNode() = default;

  ASTNode(const ASTNode &) = delete;
  ASTNode &operator=(const ASTNode &) = delete;

  /// Returns the dynamic kind tag of this node.
  NodeKind kind() const { return Kind; }

  /// Returns true if this node is an expression.
  bool isExpr() const { return Kind < NodeKind::StmtSeq; }

  /// Returns true if this node is a statement.
  bool isStmt() const { return !isExpr(); }

private:
  NodeKind Kind;
};

using AST = Ref<ASTNode>;

/// Returns true if \p Node is non-null and of dynamic type \p T.
template <typename T, typename U> bool isa(const Ref<U> &Node) {
  return Node != nullptr && T::classof(Node->kind());
}

/// Downcasts \p Node to \p T, asserting the dynamic type matches.
template <typename T, typename U> Ref<T> cast(const Ref<U> &Node) {
  ftAssert(isa<T>(Node), "cast<> to an incompatible AST node kind");
  return std::static_pointer_cast<T>(Node);
}

/// Downcasts \p Node to \p T, or returns null if the kind does not match.
template <typename T, typename U> Ref<T> dyn_cast(const Ref<U> &Node) {
  if (!isa<T>(Node))
    return nullptr;
  return std::static_pointer_cast<T>(Node);
}

} // namespace ft

#endif // FT_IR_AST_H
