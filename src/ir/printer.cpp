//===- ir/printer.cpp -----------------------------------------------------===//

#include "ir/printer.h"

#include "support/string_utils.h"

using namespace ft;

namespace {

const char *binOpToken(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add:
    return "+";
  case BinOpKind::Sub:
    return "-";
  case BinOpKind::Mul:
    return "*";
  case BinOpKind::RealDiv:
    return "/";
  case BinOpKind::FloorDiv:
    return "//";
  case BinOpKind::Mod:
    return "%";
  case BinOpKind::LT:
    return "<";
  case BinOpKind::LE:
    return "<=";
  case BinOpKind::GT:
    return ">";
  case BinOpKind::GE:
    return ">=";
  case BinOpKind::EQ:
    return "==";
  case BinOpKind::NE:
    return "!=";
  case BinOpKind::LAnd:
    return "and";
  case BinOpKind::LOr:
    return "or";
  default:
    return nullptr; // Min/Max print as calls.
  }
}

const char *unOpName(UnOpKind Op) {
  switch (Op) {
  case UnOpKind::Neg:
    return "-";
  case UnOpKind::LNot:
    return "not ";
  case UnOpKind::Abs:
    return "abs";
  case UnOpKind::Sqrt:
    return "sqrt";
  case UnOpKind::Exp:
    return "exp";
  case UnOpKind::Ln:
    return "ln";
  case UnOpKind::Sigmoid:
    return "sigmoid";
  case UnOpKind::Tanh:
    return "tanh";
  }
  return "?";
}

std::string printExpr(const Expr &E);

std::string printIndices(const std::vector<Expr> &Indices) {
  std::vector<std::string> Parts;
  Parts.reserve(Indices.size());
  for (const Expr &I : Indices)
    Parts.push_back(printExpr(I));
  return "[" + join(Parts, ", ") + "]";
}

std::string printExpr(const Expr &E) {
  switch (E->kind()) {
  case NodeKind::IntConst:
    return std::to_string(cast<IntConstNode>(E)->Val);
  case NodeKind::FloatConst:
    return fmtDouble(cast<FloatConstNode>(E)->Val);
  case NodeKind::BoolConst:
    return cast<BoolConstNode>(E)->Val ? "true" : "false";
  case NodeKind::Var:
    return cast<VarNode>(E)->Name;
  case NodeKind::Load: {
    auto L = cast<LoadNode>(E);
    if (L->Indices.empty())
      return L->Var;
    return L->Var + printIndices(L->Indices);
  }
  case NodeKind::Binary: {
    auto B = cast<BinaryNode>(E);
    if (B->Op == BinOpKind::Min || B->Op == BinOpKind::Max) {
      const char *Name = B->Op == BinOpKind::Min ? "min" : "max";
      return std::string(Name) + "(" + printExpr(B->LHS) + ", " +
             printExpr(B->RHS) + ")";
    }
    return "(" + printExpr(B->LHS) + " " + binOpToken(B->Op) + " " +
           printExpr(B->RHS) + ")";
  }
  case NodeKind::Unary: {
    auto U = cast<UnaryNode>(E);
    if (U->Op == UnOpKind::Neg || U->Op == UnOpKind::LNot)
      return "(" + std::string(unOpName(U->Op)) + printExpr(U->Operand) + ")";
    return std::string(unOpName(U->Op)) + "(" + printExpr(U->Operand) + ")";
  }
  case NodeKind::IfExpr: {
    auto IE = cast<IfExprNode>(E);
    return "(" + printExpr(IE->Then) + " if " + printExpr(IE->Cond) +
           " else " + printExpr(IE->Else) + ")";
  }
  case NodeKind::Cast: {
    auto C = cast<CastNode>(E);
    return nameOf(C->Dtype) + "(" + printExpr(C->Operand) + ")";
  }
  default:
    ftUnreachable("statement kind in printExpr");
  }
}

class StmtPrinter {
public:
  explicit StmtPrinter(const PrintOptions &Opts) : Opts(Opts) {}

  std::string print(const Stmt &S) {
    Out.clear();
    printStmt(S, 0);
    return Out;
  }

private:
  void line(int Indent, const std::string &Text, const Stmt &S) {
    Out.append(2 * Indent, ' ');
    Out += Text;
    if (Opts.ShowIds)
      Out += "  # id " + std::to_string(S->Id);
    if (Opts.ShowLabels && !S->Label.empty())
      Out += "  # " + S->Label;
    Out += "\n";
  }

  void printStmt(const Stmt &S, int Indent) {
    switch (S->kind()) {
    case NodeKind::StmtSeq: {
      for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
        printStmt(Sub, Indent);
      return;
    }
    case NodeKind::VarDef: {
      auto D = cast<VarDefNode>(S);
      std::vector<std::string> Dims;
      for (const Expr &E : D->Info.Shape)
        Dims.push_back(printExpr(E));
      line(Indent,
           "var " + D->Name + ": " + nameOf(D->Info.Dtype) + "[" +
               join(Dims, ", ") + "] @" + nameOf(D->MTy) + " " +
               nameOf(D->ATy) + (D->NoGrad ? " nograd" : "") + ":",
           S);
      printStmt(D->Body, Indent + 1);
      return;
    }
    case NodeKind::Store: {
      auto St = cast<StoreNode>(S);
      std::string LHS = St->Var;
      if (!St->Indices.empty())
        LHS += printIndices(St->Indices);
      line(Indent, LHS + " = " + printExpr(St->Value), S);
      return;
    }
    case NodeKind::ReduceTo: {
      auto R = cast<ReduceToNode>(S);
      std::string LHS = R->Var;
      if (!R->Indices.empty())
        LHS += printIndices(R->Indices);
      line(Indent,
           LHS + " " + nameOf(R->Op) + " " + printExpr(R->Value) +
               (R->Atomic ? "  # atomic" : ""),
           S);
      return;
    }
    case NodeKind::For: {
      auto F = cast<ForNode>(S);
      std::string Attrs;
      if (F->Property.Parallel)
        Attrs += "  # parallel";
      if (F->Property.VectorWidth > 0)
        Attrs += "  # vectorize(" + std::to_string(F->Property.VectorWidth) +
                 ")";
      else if (F->Property.Vectorize)
        Attrs += "  # vectorize";
      if (F->Property.UnrollFactor > 0)
        Attrs += "  # unroll(" + std::to_string(F->Property.UnrollFactor) +
                 ")";
      else if (F->Property.Unroll)
        Attrs += "  # unroll";
      line(Indent,
           "for " + F->Iter + " in " + printExpr(F->Begin) + ":" +
               printExpr(F->End) + Attrs,
           S);
      printStmt(F->Body, Indent + 1);
      return;
    }
    case NodeKind::If: {
      auto I = cast<IfNode>(S);
      line(Indent, "if " + printExpr(I->Cond) + ":", S);
      printStmt(I->Then, Indent + 1);
      if (I->Else) {
        line(Indent, "else:", S);
        printStmt(I->Else, Indent + 1);
      }
      return;
    }
    case NodeKind::GemmCall: {
      auto G = cast<GemmCallNode>(S);
      line(Indent,
           "gemm(" + G->C + " += " + G->A + (G->TransA ? "^T" : "") + " @ " +
               G->B + (G->TransB ? "^T" : "") + ", M=" + printExpr(G->M) +
               ", N=" + printExpr(G->N) + ", K=" + printExpr(G->K) + ")",
           S);
      return;
    }
    default:
      ftUnreachable("expression kind in printStmt");
    }
  }

  PrintOptions Opts;
  std::string Out;
};

} // namespace

std::string ft::toString(const Expr &E) { return printExpr(E); }

std::string ft::toString(const Stmt &S, const PrintOptions &Opts) {
  return StmtPrinter(Opts).print(S);
}
