//===- ir/expr.cpp --------------------------------------------------------===//

#include "ir/expr.h"

using namespace ft;

bool ft::isCompareOp(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::LT:
  case BinOpKind::LE:
  case BinOpKind::GT:
  case BinOpKind::GE:
  case BinOpKind::EQ:
  case BinOpKind::NE:
    return true;
  default:
    return false;
  }
}

bool ft::isLogicOp(BinOpKind Op) {
  return Op == BinOpKind::LAnd || Op == BinOpKind::LOr;
}

Expr ft::makeIntConst(int64_t Val) {
  return std::make_shared<IntConstNode>(Val);
}

Expr ft::makeFloatConst(double Val) {
  return std::make_shared<FloatConstNode>(Val);
}

Expr ft::makeBoolConst(bool Val) {
  return std::make_shared<BoolConstNode>(Val);
}

Expr ft::makeVar(const std::string &Name) {
  return std::make_shared<VarNode>(Name);
}

Expr ft::makeLoad(const std::string &Var, std::vector<Expr> Indices,
                  DataType Dtype) {
  for (const Expr &I : Indices)
    ftAssert(I != nullptr, "null index in Load of " + Var);
  return std::make_shared<LoadNode>(Var, std::move(Indices), Dtype);
}

Expr ft::makeBinary(BinOpKind Op, Expr LHS, Expr RHS) {
  ftAssert(LHS && RHS, "null operand in Binary");
  return std::make_shared<BinaryNode>(Op, std::move(LHS), std::move(RHS));
}

Expr ft::makeUnary(UnOpKind Op, Expr Operand) {
  ftAssert(Operand != nullptr, "null operand in Unary");
  return std::make_shared<UnaryNode>(Op, std::move(Operand));
}

Expr ft::makeIfExpr(Expr Cond, Expr Then, Expr Else) {
  ftAssert(Cond && Then && Else, "null operand in IfExpr");
  return std::make_shared<IfExprNode>(std::move(Cond), std::move(Then),
                                      std::move(Else));
}

Expr ft::makeCast(DataType Dtype, Expr Operand) {
  ftAssert(Operand != nullptr, "null operand in Cast");
  return std::make_shared<CastNode>(Dtype, std::move(Operand));
}

#define FT_DEFINE_BINOP(NAME, KIND)                                           \
  Expr ft::make##NAME(Expr L, Expr R) {                                       \
    return makeBinary(BinOpKind::KIND, std::move(L), std::move(R));           \
  }

FT_DEFINE_BINOP(Add, Add)
FT_DEFINE_BINOP(Sub, Sub)
FT_DEFINE_BINOP(Mul, Mul)
FT_DEFINE_BINOP(RealDiv, RealDiv)
FT_DEFINE_BINOP(FloorDiv, FloorDiv)
FT_DEFINE_BINOP(Mod, Mod)
FT_DEFINE_BINOP(Min, Min)
FT_DEFINE_BINOP(Max, Max)
FT_DEFINE_BINOP(LT, LT)
FT_DEFINE_BINOP(LE, LE)
FT_DEFINE_BINOP(GT, GT)
FT_DEFINE_BINOP(GE, GE)
FT_DEFINE_BINOP(EQ, EQ)
FT_DEFINE_BINOP(NE, NE)
FT_DEFINE_BINOP(LAnd, LAnd)
FT_DEFINE_BINOP(LOr, LOr)

#undef FT_DEFINE_BINOP

Expr ft::makeLNot(Expr X) { return makeUnary(UnOpKind::LNot, std::move(X)); }

DataType ft::dataTypeOf(const Expr &E) {
  switch (E->kind()) {
  case NodeKind::IntConst:
    return DataType::Int64;
  case NodeKind::FloatConst:
    return DataType::Float64;
  case NodeKind::BoolConst:
    return DataType::Bool;
  case NodeKind::Var:
    return DataType::Int64;
  case NodeKind::Load:
    return cast<LoadNode>(E)->Dtype;
  case NodeKind::Cast:
    return cast<CastNode>(E)->Dtype;
  case NodeKind::IfExpr: {
    auto IE = cast<IfExprNode>(E);
    return upCast(dataTypeOf(IE->Then), dataTypeOf(IE->Else));
  }
  case NodeKind::Unary: {
    auto U = cast<UnaryNode>(E);
    switch (U->Op) {
    case UnOpKind::LNot:
      return DataType::Bool;
    case UnOpKind::Neg:
    case UnOpKind::Abs:
      return dataTypeOf(U->Operand);
    default: {
      // Transcendental intrinsics stay in the operand's float width, or
      // promote integers to Float32.
      DataType T = dataTypeOf(U->Operand);
      return isFloat(T) ? T : DataType::Float32;
    }
    }
  }
  case NodeKind::Binary: {
    auto B = cast<BinaryNode>(E);
    if (isCompareOp(B->Op) || isLogicOp(B->Op))
      return DataType::Bool;
    if (B->Op == BinOpKind::RealDiv) {
      DataType T = upCast(dataTypeOf(B->LHS), dataTypeOf(B->RHS));
      return isFloat(T) ? T : DataType::Float32;
    }
    return upCast(dataTypeOf(B->LHS), dataTypeOf(B->RHS));
  }
  default:
    ftUnreachable("dataTypeOf applied to a statement");
  }
}
