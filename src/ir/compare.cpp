//===- ir/compare.cpp -----------------------------------------------------===//

#include "ir/compare.h"

#include <functional>
#include <map>
#include <vector>

using namespace ft;

namespace {

bool equalExprs(const std::vector<Expr> &A, const std::vector<Expr> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (!deepEqual(A[I], B[I]))
      return false;
  return true;
}

size_t combine(size_t Seed, size_t V) {
  // Boost-style hash combiner.
  return Seed ^ (V + 0x9e3779b97f4a7c15ull + (Seed << 6) + (Seed >> 2));
}

//===----------------------------------------------------------------------===//
// Alpha-renaming machinery
//===----------------------------------------------------------------------===//

/// Numbers binder sites (VarDef names, For iterators) in traversal order and
/// resolves occurrences to the innermost binding; a name with no live binding
/// is "free" and keeps its spelling. Hashing and equality both walk trees in
/// the same order, so alpha-equivalent trees assign identical ordinals to
/// corresponding binders — the property that keeps structuralHash consistent
/// with deepEqual.
class AlphaScope {
public:
  static constexpr size_t Free = ~size_t(0);

  size_t push(const std::string &Name) {
    size_t Ord = Next++;
    Stack[Name].push_back(Ord);
    return Ord;
  }

  void pop(const std::string &Name) {
    auto It = Stack.find(Name);
    ftAssert(It != Stack.end() && !It->second.empty(),
             "AlphaScope pop of an unbound name");
    It->second.pop_back();
  }

  /// Ordinal of the innermost binding of \p Name, or Free.
  size_t lookup(const std::string &Name) const {
    auto It = Stack.find(Name);
    if (It == Stack.end() || It->second.empty())
      return Free;
    return It->second.back();
  }

private:
  std::map<std::string, std::vector<size_t>> Stack;
  size_t Next = 0;
};

/// RAII binder for one name.
struct Bind {
  AlphaScope &Sc;
  const std::string &Name;
  Bind(AlphaScope &Sc, const std::string &Name) : Sc(Sc), Name(Name) {
    Sc.push(Name);
  }
  ~Bind() { Sc.pop(Name); }
};

size_t hashName(const AlphaScope &Sc, const std::string &Name) {
  size_t Ord = Sc.lookup(Name);
  if (Ord != AlphaScope::Free)
    return combine(0xb1, Ord);
  return combine(0xf2, std::hash<std::string>()(Name));
}

/// True when \p A (under \p ScA) and \p B (under \p ScB) denote the same
/// binding: both bound with equal ordinals, or both free with equal spelling.
bool eqName(const AlphaScope &ScA, const std::string &A, const AlphaScope &ScB,
            const std::string &B) {
  size_t OA = ScA.lookup(A), OB = ScB.lookup(B);
  if (OA != OB)
    return false;
  return OA != AlphaScope::Free || A == B;
}

size_t hashExprAlpha(const AlphaScope &Sc, const Expr &E) {
  ftAssert(E != nullptr, "hashing a null expression");
  size_t H = static_cast<size_t>(E->kind()) * 1000003u;
  switch (E->kind()) {
  case NodeKind::IntConst:
    return combine(H, std::hash<int64_t>()(cast<IntConstNode>(E)->Val));
  case NodeKind::FloatConst:
    return combine(H, std::hash<double>()(cast<FloatConstNode>(E)->Val));
  case NodeKind::BoolConst:
    return combine(H, cast<BoolConstNode>(E)->Val ? 1 : 2);
  case NodeKind::Var:
    return combine(H, hashName(Sc, cast<VarNode>(E)->Name));
  case NodeKind::Load: {
    auto L = cast<LoadNode>(E);
    H = combine(H, hashName(Sc, L->Var));
    H = combine(H, static_cast<size_t>(L->Dtype));
    H = combine(H, L->Indices.size());
    for (const Expr &I : L->Indices)
      H = combine(H, hashExprAlpha(Sc, I));
    return H;
  }
  case NodeKind::Binary: {
    auto B = cast<BinaryNode>(E);
    H = combine(H, static_cast<size_t>(B->Op));
    H = combine(H, hashExprAlpha(Sc, B->LHS));
    return combine(H, hashExprAlpha(Sc, B->RHS));
  }
  case NodeKind::Unary: {
    auto U = cast<UnaryNode>(E);
    H = combine(H, static_cast<size_t>(U->Op));
    return combine(H, hashExprAlpha(Sc, U->Operand));
  }
  case NodeKind::IfExpr: {
    auto IE = cast<IfExprNode>(E);
    H = combine(H, hashExprAlpha(Sc, IE->Cond));
    H = combine(H, hashExprAlpha(Sc, IE->Then));
    return combine(H, hashExprAlpha(Sc, IE->Else));
  }
  case NodeKind::Cast: {
    auto C = cast<CastNode>(E);
    H = combine(H, static_cast<size_t>(C->Dtype));
    return combine(H, hashExprAlpha(Sc, C->Operand));
  }
  default:
    ftUnreachable("statement kind in expression hash");
  }
}

size_t hashStmtAlpha(AlphaScope &Sc, const Stmt &S) {
  ftAssert(S != nullptr, "hashing a null statement");
  size_t H = static_cast<size_t>(S->kind()) * 1000033u;
  switch (S->kind()) {
  case NodeKind::StmtSeq: {
    auto Seq = cast<StmtSeqNode>(S);
    H = combine(H, Seq->Stmts.size());
    for (const Stmt &Sub : Seq->Stmts)
      H = combine(H, hashStmtAlpha(Sc, Sub));
    return H;
  }
  case NodeKind::VarDef: {
    auto D = cast<VarDefNode>(S);
    H = combine(H, static_cast<size_t>(D->Info.Dtype));
    H = combine(H, static_cast<size_t>(D->ATy));
    H = combine(H, static_cast<size_t>(D->MTy));
    H = combine(H, D->NoGrad ? 1 : 2);
    H = combine(H, D->Info.Shape.size());
    for (const Expr &E : D->Info.Shape) // Shape binds in the outer scope.
      H = combine(H, hashExprAlpha(Sc, E));
    Bind B(Sc, D->Name);
    return combine(H, hashStmtAlpha(Sc, D->Body));
  }
  case NodeKind::Store: {
    auto St = cast<StoreNode>(S);
    H = combine(H, hashName(Sc, St->Var));
    H = combine(H, St->Indices.size());
    for (const Expr &I : St->Indices)
      H = combine(H, hashExprAlpha(Sc, I));
    return combine(H, hashExprAlpha(Sc, St->Value));
  }
  case NodeKind::ReduceTo: {
    auto R = cast<ReduceToNode>(S);
    H = combine(H, hashName(Sc, R->Var));
    H = combine(H, static_cast<size_t>(R->Op));
    H = combine(H, R->Atomic ? 1 : 2);
    H = combine(H, R->Indices.size());
    for (const Expr &I : R->Indices)
      H = combine(H, hashExprAlpha(Sc, I));
    return combine(H, hashExprAlpha(Sc, R->Value));
  }
  case NodeKind::For: {
    auto F = cast<ForNode>(S);
    H = combine(H, hashExprAlpha(Sc, F->Begin));
    H = combine(H, hashExprAlpha(Sc, F->End));
    H = combine(H, (F->Property.Parallel ? 1 : 0) |
                       (F->Property.Vectorize ? 2 : 0) |
                       (F->Property.Unroll ? 4 : 0) |
                       (F->Property.NoDeps ? 8 : 0));
    // Explicit-width SIMD / unroll factors are part of the lowering
    // contract, so two programs differing only here must not collide
    // (the kernel cache keys on this fingerprint).
    if (F->Property.VectorWidth || F->Property.UnrollFactor)
      H = combine(H, static_cast<size_t>(F->Property.VectorWidth) * 131 +
                         static_cast<size_t>(F->Property.UnrollFactor));
    Bind B(Sc, F->Iter);
    return combine(H, hashStmtAlpha(Sc, F->Body));
  }
  case NodeKind::If: {
    auto I = cast<IfNode>(S);
    H = combine(H, hashExprAlpha(Sc, I->Cond));
    H = combine(H, hashStmtAlpha(Sc, I->Then));
    H = combine(H, I->Else != nullptr ? 1 : 2);
    if (I->Else)
      H = combine(H, hashStmtAlpha(Sc, I->Else));
    return H;
  }
  case NodeKind::GemmCall: {
    auto G = cast<GemmCallNode>(S);
    H = combine(H, hashName(Sc, G->A));
    H = combine(H, hashName(Sc, G->B));
    H = combine(H, hashName(Sc, G->C));
    H = combine(H, hashExprAlpha(Sc, G->M));
    H = combine(H, hashExprAlpha(Sc, G->N));
    H = combine(H, hashExprAlpha(Sc, G->K));
    H = combine(H, (G->TransA ? 1 : 0) | (G->TransB ? 2 : 0));
    return combine(H, static_cast<size_t>(G->Dtype));
  }
  default:
    ftUnreachable("expression kind in statement hash");
  }
}

bool eqExprAlpha(const AlphaScope &ScA, const Expr &A, const AlphaScope &ScB,
                 const Expr &B) {
  if (!A || !B)
    return A == B;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case NodeKind::IntConst:
    return cast<IntConstNode>(A)->Val == cast<IntConstNode>(B)->Val;
  case NodeKind::FloatConst:
    return cast<FloatConstNode>(A)->Val == cast<FloatConstNode>(B)->Val;
  case NodeKind::BoolConst:
    return cast<BoolConstNode>(A)->Val == cast<BoolConstNode>(B)->Val;
  case NodeKind::Var:
    return eqName(ScA, cast<VarNode>(A)->Name, ScB, cast<VarNode>(B)->Name);
  case NodeKind::Load: {
    auto LA = cast<LoadNode>(A), LB = cast<LoadNode>(B);
    if (!eqName(ScA, LA->Var, ScB, LB->Var) || LA->Dtype != LB->Dtype ||
        LA->Indices.size() != LB->Indices.size())
      return false;
    for (size_t I = 0; I < LA->Indices.size(); ++I)
      if (!eqExprAlpha(ScA, LA->Indices[I], ScB, LB->Indices[I]))
        return false;
    return true;
  }
  case NodeKind::Binary: {
    auto BA = cast<BinaryNode>(A), BB = cast<BinaryNode>(B);
    return BA->Op == BB->Op && eqExprAlpha(ScA, BA->LHS, ScB, BB->LHS) &&
           eqExprAlpha(ScA, BA->RHS, ScB, BB->RHS);
  }
  case NodeKind::Unary: {
    auto UA = cast<UnaryNode>(A), UB = cast<UnaryNode>(B);
    return UA->Op == UB->Op &&
           eqExprAlpha(ScA, UA->Operand, ScB, UB->Operand);
  }
  case NodeKind::IfExpr: {
    auto IA = cast<IfExprNode>(A), IB = cast<IfExprNode>(B);
    return eqExprAlpha(ScA, IA->Cond, ScB, IB->Cond) &&
           eqExprAlpha(ScA, IA->Then, ScB, IB->Then) &&
           eqExprAlpha(ScA, IA->Else, ScB, IB->Else);
  }
  case NodeKind::Cast: {
    auto CA = cast<CastNode>(A), CB = cast<CastNode>(B);
    return CA->Dtype == CB->Dtype &&
           eqExprAlpha(ScA, CA->Operand, ScB, CB->Operand);
  }
  default:
    ftUnreachable("statement kind in expression equality");
  }
}

bool eqStmtAlpha(AlphaScope &ScA, const Stmt &A, AlphaScope &ScB,
                 const Stmt &B) {
  if (!A || !B)
    return A == B;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case NodeKind::StmtSeq: {
    auto SA = cast<StmtSeqNode>(A), SB = cast<StmtSeqNode>(B);
    if (SA->Stmts.size() != SB->Stmts.size())
      return false;
    for (size_t I = 0; I < SA->Stmts.size(); ++I)
      if (!eqStmtAlpha(ScA, SA->Stmts[I], ScB, SB->Stmts[I]))
        return false;
    return true;
  }
  case NodeKind::VarDef: {
    auto DA = cast<VarDefNode>(A), DB = cast<VarDefNode>(B);
    if (DA->Info.Dtype != DB->Info.Dtype || DA->ATy != DB->ATy ||
        DA->MTy != DB->MTy || DA->NoGrad != DB->NoGrad ||
        DA->Info.Shape.size() != DB->Info.Shape.size())
      return false;
    for (size_t I = 0; I < DA->Info.Shape.size(); ++I)
      if (!eqExprAlpha(ScA, DA->Info.Shape[I], ScB, DB->Info.Shape[I]))
        return false;
    Bind BdA(ScA, DA->Name);
    Bind BdB(ScB, DB->Name);
    return eqStmtAlpha(ScA, DA->Body, ScB, DB->Body);
  }
  case NodeKind::Store: {
    auto SA = cast<StoreNode>(A), SB = cast<StoreNode>(B);
    if (!eqName(ScA, SA->Var, ScB, SB->Var) ||
        SA->Indices.size() != SB->Indices.size())
      return false;
    for (size_t I = 0; I < SA->Indices.size(); ++I)
      if (!eqExprAlpha(ScA, SA->Indices[I], ScB, SB->Indices[I]))
        return false;
    return eqExprAlpha(ScA, SA->Value, ScB, SB->Value);
  }
  case NodeKind::ReduceTo: {
    auto RA = cast<ReduceToNode>(A), RB = cast<ReduceToNode>(B);
    if (!eqName(ScA, RA->Var, ScB, RB->Var) || RA->Op != RB->Op ||
        RA->Atomic != RB->Atomic || RA->Indices.size() != RB->Indices.size())
      return false;
    for (size_t I = 0; I < RA->Indices.size(); ++I)
      if (!eqExprAlpha(ScA, RA->Indices[I], ScB, RB->Indices[I]))
        return false;
    return eqExprAlpha(ScA, RA->Value, ScB, RB->Value);
  }
  case NodeKind::For: {
    auto FA = cast<ForNode>(A), FB = cast<ForNode>(B);
    if (FA->Property != FB->Property ||
        !eqExprAlpha(ScA, FA->Begin, ScB, FB->Begin) ||
        !eqExprAlpha(ScA, FA->End, ScB, FB->End))
      return false;
    Bind BdA(ScA, FA->Iter);
    Bind BdB(ScB, FB->Iter);
    return eqStmtAlpha(ScA, FA->Body, ScB, FB->Body);
  }
  case NodeKind::If: {
    auto IA = cast<IfNode>(A), IB = cast<IfNode>(B);
    if ((IA->Else == nullptr) != (IB->Else == nullptr))
      return false;
    return eqExprAlpha(ScA, IA->Cond, ScB, IB->Cond) &&
           eqStmtAlpha(ScA, IA->Then, ScB, IB->Then) &&
           (!IA->Else || eqStmtAlpha(ScA, IA->Else, ScB, IB->Else));
  }
  case NodeKind::GemmCall: {
    auto GA = cast<GemmCallNode>(A), GB = cast<GemmCallNode>(B);
    return eqName(ScA, GA->A, ScB, GB->A) &&
           eqName(ScA, GA->B, ScB, GB->B) &&
           eqName(ScA, GA->C, ScB, GB->C) && GA->TransA == GB->TransA &&
           GA->TransB == GB->TransB && GA->Dtype == GB->Dtype &&
           eqExprAlpha(ScA, GA->M, ScB, GB->M) &&
           eqExprAlpha(ScA, GA->N, ScB, GB->N) &&
           eqExprAlpha(ScA, GA->K, ScB, GB->K);
  }
  default:
    ftUnreachable("expression kind in statement equality");
  }
}

} // namespace

bool ft::deepEqual(const Expr &A, const Expr &B) {
  if (A == B)
    return true;
  if (!A || !B || A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case NodeKind::IntConst:
    return cast<IntConstNode>(A)->Val == cast<IntConstNode>(B)->Val;
  case NodeKind::FloatConst:
    return cast<FloatConstNode>(A)->Val == cast<FloatConstNode>(B)->Val;
  case NodeKind::BoolConst:
    return cast<BoolConstNode>(A)->Val == cast<BoolConstNode>(B)->Val;
  case NodeKind::Var:
    return cast<VarNode>(A)->Name == cast<VarNode>(B)->Name;
  case NodeKind::Load: {
    auto LA = cast<LoadNode>(A), LB = cast<LoadNode>(B);
    return LA->Var == LB->Var && LA->Dtype == LB->Dtype &&
           equalExprs(LA->Indices, LB->Indices);
  }
  case NodeKind::Binary: {
    auto BA = cast<BinaryNode>(A), BB = cast<BinaryNode>(B);
    return BA->Op == BB->Op && deepEqual(BA->LHS, BB->LHS) &&
           deepEqual(BA->RHS, BB->RHS);
  }
  case NodeKind::Unary: {
    auto UA = cast<UnaryNode>(A), UB = cast<UnaryNode>(B);
    return UA->Op == UB->Op && deepEqual(UA->Operand, UB->Operand);
  }
  case NodeKind::IfExpr: {
    auto IA = cast<IfExprNode>(A), IB = cast<IfExprNode>(B);
    return deepEqual(IA->Cond, IB->Cond) && deepEqual(IA->Then, IB->Then) &&
           deepEqual(IA->Else, IB->Else);
  }
  case NodeKind::Cast: {
    auto CA = cast<CastNode>(A), CB = cast<CastNode>(B);
    return CA->Dtype == CB->Dtype && deepEqual(CA->Operand, CB->Operand);
  }
  default:
    ftUnreachable("statement kind in expression deepEqual");
  }
}

bool ft::deepEqual(const Stmt &A, const Stmt &B) {
  if (A == B)
    return true;
  AlphaScope ScA, ScB;
  return eqStmtAlpha(ScA, A, ScB, B);
}

size_t ft::structuralHash(const Expr &E) {
  size_t H = static_cast<size_t>(E->kind()) * 1000003u;
  switch (E->kind()) {
  case NodeKind::IntConst:
    return combine(H, std::hash<int64_t>()(cast<IntConstNode>(E)->Val));
  case NodeKind::FloatConst:
    return combine(H, std::hash<double>()(cast<FloatConstNode>(E)->Val));
  case NodeKind::BoolConst:
    return combine(H, cast<BoolConstNode>(E)->Val ? 1 : 2);
  case NodeKind::Var:
    return combine(H, std::hash<std::string>()(cast<VarNode>(E)->Name));
  case NodeKind::Load: {
    auto L = cast<LoadNode>(E);
    H = combine(H, std::hash<std::string>()(L->Var));
    for (const Expr &I : L->Indices)
      H = combine(H, structuralHash(I));
    return H;
  }
  case NodeKind::Binary: {
    auto B = cast<BinaryNode>(E);
    H = combine(H, static_cast<size_t>(B->Op));
    H = combine(H, structuralHash(B->LHS));
    return combine(H, structuralHash(B->RHS));
  }
  case NodeKind::Unary: {
    auto U = cast<UnaryNode>(E);
    H = combine(H, static_cast<size_t>(U->Op));
    return combine(H, structuralHash(U->Operand));
  }
  case NodeKind::IfExpr: {
    auto IE = cast<IfExprNode>(E);
    H = combine(H, structuralHash(IE->Cond));
    H = combine(H, structuralHash(IE->Then));
    return combine(H, structuralHash(IE->Else));
  }
  case NodeKind::Cast: {
    auto C = cast<CastNode>(E);
    H = combine(H, static_cast<size_t>(C->Dtype));
    return combine(H, structuralHash(C->Operand));
  }
  default:
    ftUnreachable("statement kind in structuralHash");
  }
}

size_t ft::structuralHash(const Stmt &S) {
  AlphaScope Sc;
  return hashStmtAlpha(Sc, S);
}

uint64_t ft::fingerprint(const Func &F) {
  // Parameter binding: map each ABI slot to the preorder position of its
  // VarDef so renaming a parameter cannot change the fingerprint but
  // swapping two parameters of equal shape does.
  std::map<std::string, size_t> DefOrder;
  size_t NextDef = 0;
  std::function<void(const Stmt &)> Walk = [&](const Stmt &S) {
    switch (S->kind()) {
    case NodeKind::StmtSeq:
      for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
        Walk(Sub);
      return;
    case NodeKind::VarDef: {
      auto D = cast<VarDefNode>(S);
      DefOrder.emplace(D->Name, NextDef++); // First (outermost) def wins.
      Walk(D->Body);
      return;
    }
    case NodeKind::For:
      return Walk(cast<ForNode>(S)->Body);
    case NodeKind::If: {
      auto I = cast<IfNode>(S);
      Walk(I->Then);
      if (I->Else)
        Walk(I->Else);
      return;
    }
    default:
      return;
    }
  };
  ftAssert(F.Body != nullptr, "fingerprint of a Func without a body");
  Walk(F.Body);

  size_t H = combine(0x46543f70, F.Params.size()); // "FT?p"
  for (const std::string &P : F.Params) {
    auto It = DefOrder.find(P);
    H = combine(H, It != DefOrder.end() ? It->second
                                        : std::hash<std::string>()(P));
  }
  return combine(H, structuralHash(F.Body));
}
