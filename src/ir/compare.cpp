//===- ir/compare.cpp -----------------------------------------------------===//

#include "ir/compare.h"

using namespace ft;

namespace {

bool equalExprs(const std::vector<Expr> &A, const std::vector<Expr> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (!deepEqual(A[I], B[I]))
      return false;
  return true;
}

size_t combine(size_t Seed, size_t V) {
  // Boost-style hash combiner.
  return Seed ^ (V + 0x9e3779b97f4a7c15ull + (Seed << 6) + (Seed >> 2));
}

} // namespace

bool ft::deepEqual(const Expr &A, const Expr &B) {
  if (A == B)
    return true;
  if (!A || !B || A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case NodeKind::IntConst:
    return cast<IntConstNode>(A)->Val == cast<IntConstNode>(B)->Val;
  case NodeKind::FloatConst:
    return cast<FloatConstNode>(A)->Val == cast<FloatConstNode>(B)->Val;
  case NodeKind::BoolConst:
    return cast<BoolConstNode>(A)->Val == cast<BoolConstNode>(B)->Val;
  case NodeKind::Var:
    return cast<VarNode>(A)->Name == cast<VarNode>(B)->Name;
  case NodeKind::Load: {
    auto LA = cast<LoadNode>(A), LB = cast<LoadNode>(B);
    return LA->Var == LB->Var && LA->Dtype == LB->Dtype &&
           equalExprs(LA->Indices, LB->Indices);
  }
  case NodeKind::Binary: {
    auto BA = cast<BinaryNode>(A), BB = cast<BinaryNode>(B);
    return BA->Op == BB->Op && deepEqual(BA->LHS, BB->LHS) &&
           deepEqual(BA->RHS, BB->RHS);
  }
  case NodeKind::Unary: {
    auto UA = cast<UnaryNode>(A), UB = cast<UnaryNode>(B);
    return UA->Op == UB->Op && deepEqual(UA->Operand, UB->Operand);
  }
  case NodeKind::IfExpr: {
    auto IA = cast<IfExprNode>(A), IB = cast<IfExprNode>(B);
    return deepEqual(IA->Cond, IB->Cond) && deepEqual(IA->Then, IB->Then) &&
           deepEqual(IA->Else, IB->Else);
  }
  case NodeKind::Cast: {
    auto CA = cast<CastNode>(A), CB = cast<CastNode>(B);
    return CA->Dtype == CB->Dtype && deepEqual(CA->Operand, CB->Operand);
  }
  default:
    ftUnreachable("statement kind in expression deepEqual");
  }
}

bool ft::deepEqual(const Stmt &A, const Stmt &B) {
  if (A == B)
    return true;
  if (!A || !B || A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case NodeKind::StmtSeq: {
    auto SA = cast<StmtSeqNode>(A), SB = cast<StmtSeqNode>(B);
    if (SA->Stmts.size() != SB->Stmts.size())
      return false;
    for (size_t I = 0; I < SA->Stmts.size(); ++I)
      if (!deepEqual(SA->Stmts[I], SB->Stmts[I]))
        return false;
    return true;
  }
  case NodeKind::VarDef: {
    auto DA = cast<VarDefNode>(A), DB = cast<VarDefNode>(B);
    return DA->Name == DB->Name && DA->Info.Dtype == DB->Info.Dtype &&
           DA->ATy == DB->ATy && DA->MTy == DB->MTy &&
           DA->NoGrad == DB->NoGrad &&
           equalExprs(DA->Info.Shape, DB->Info.Shape) &&
           deepEqual(DA->Body, DB->Body);
  }
  case NodeKind::Store: {
    auto SA = cast<StoreNode>(A), SB = cast<StoreNode>(B);
    return SA->Var == SB->Var && equalExprs(SA->Indices, SB->Indices) &&
           deepEqual(SA->Value, SB->Value);
  }
  case NodeKind::ReduceTo: {
    auto RA = cast<ReduceToNode>(A), RB = cast<ReduceToNode>(B);
    return RA->Var == RB->Var && RA->Op == RB->Op &&
           RA->Atomic == RB->Atomic && equalExprs(RA->Indices, RB->Indices) &&
           deepEqual(RA->Value, RB->Value);
  }
  case NodeKind::For: {
    auto FA = cast<ForNode>(A), FB = cast<ForNode>(B);
    return FA->Iter == FB->Iter && FA->Property == FB->Property &&
           deepEqual(FA->Begin, FB->Begin) && deepEqual(FA->End, FB->End) &&
           deepEqual(FA->Body, FB->Body);
  }
  case NodeKind::If: {
    auto IA = cast<IfNode>(A), IB = cast<IfNode>(B);
    if ((IA->Else == nullptr) != (IB->Else == nullptr))
      return false;
    return deepEqual(IA->Cond, IB->Cond) && deepEqual(IA->Then, IB->Then) &&
           (!IA->Else || deepEqual(IA->Else, IB->Else));
  }
  case NodeKind::GemmCall: {
    auto GA = cast<GemmCallNode>(A), GB = cast<GemmCallNode>(B);
    return GA->A == GB->A && GA->B == GB->B && GA->C == GB->C &&
           GA->TransA == GB->TransA && GA->TransB == GB->TransB &&
           GA->Dtype == GB->Dtype && deepEqual(GA->M, GB->M) &&
           deepEqual(GA->N, GB->N) && deepEqual(GA->K, GB->K);
  }
  default:
    ftUnreachable("expression kind in statement deepEqual");
  }
}

size_t ft::structuralHash(const Expr &E) {
  size_t H = static_cast<size_t>(E->kind()) * 1000003u;
  switch (E->kind()) {
  case NodeKind::IntConst:
    return combine(H, std::hash<int64_t>()(cast<IntConstNode>(E)->Val));
  case NodeKind::FloatConst:
    return combine(H, std::hash<double>()(cast<FloatConstNode>(E)->Val));
  case NodeKind::BoolConst:
    return combine(H, cast<BoolConstNode>(E)->Val ? 1 : 2);
  case NodeKind::Var:
    return combine(H, std::hash<std::string>()(cast<VarNode>(E)->Name));
  case NodeKind::Load: {
    auto L = cast<LoadNode>(E);
    H = combine(H, std::hash<std::string>()(L->Var));
    for (const Expr &I : L->Indices)
      H = combine(H, structuralHash(I));
    return H;
  }
  case NodeKind::Binary: {
    auto B = cast<BinaryNode>(E);
    H = combine(H, static_cast<size_t>(B->Op));
    H = combine(H, structuralHash(B->LHS));
    return combine(H, structuralHash(B->RHS));
  }
  case NodeKind::Unary: {
    auto U = cast<UnaryNode>(E);
    H = combine(H, static_cast<size_t>(U->Op));
    return combine(H, structuralHash(U->Operand));
  }
  case NodeKind::IfExpr: {
    auto IE = cast<IfExprNode>(E);
    H = combine(H, structuralHash(IE->Cond));
    H = combine(H, structuralHash(IE->Then));
    return combine(H, structuralHash(IE->Else));
  }
  case NodeKind::Cast: {
    auto C = cast<CastNode>(E);
    H = combine(H, static_cast<size_t>(C->Dtype));
    return combine(H, structuralHash(C->Operand));
  }
  default:
    ftUnreachable("statement kind in structuralHash");
  }
}
