//===- ir/data_type.cpp ---------------------------------------------------===//

#include "ir/data_type.h"

#include "support/error.h"

using namespace ft;

size_t ft::sizeOf(DataType DT) {
  switch (DT) {
  case DataType::Float32:
    return 4;
  case DataType::Float64:
    return 8;
  case DataType::Int32:
    return 4;
  case DataType::Int64:
    return 8;
  case DataType::Bool:
    return 1;
  }
  ftUnreachable("unknown DataType");
}

std::string ft::nameOf(DataType DT) {
  switch (DT) {
  case DataType::Float32:
    return "f32";
  case DataType::Float64:
    return "f64";
  case DataType::Int32:
    return "i32";
  case DataType::Int64:
    return "i64";
  case DataType::Bool:
    return "bool";
  }
  ftUnreachable("unknown DataType");
}

bool ft::isFloat(DataType DT) {
  return DT == DataType::Float32 || DT == DataType::Float64;
}

bool ft::isInt(DataType DT) {
  return DT == DataType::Int32 || DT == DataType::Int64;
}

DataType ft::upCast(DataType A, DataType B) {
  if (A == B)
    return A;
  // Bool behaves as the smallest integer in arithmetic.
  auto Rank = [](DataType T) {
    switch (T) {
    case DataType::Bool:
      return 0;
    case DataType::Int32:
      return 1;
    case DataType::Int64:
      return 2;
    case DataType::Float32:
      return 3;
    case DataType::Float64:
      return 4;
    }
    ftUnreachable("unknown DataType");
  };
  DataType R = Rank(A) >= Rank(B) ? A : B;
  return R == DataType::Bool ? DataType::Int32 : R;
}
