//===- ir/func.h - Compiled function unit ------------------------*- C++ -*-===//
///
/// \file
/// A Func is the unit of compilation: a name, an ordered parameter list
/// (the call ABI), and a body whose outermost VarDef chain declares those
/// parameters (AccessType Input / Output / InOut). A DSL function is
/// compiled to a Func, scheduled, differentiated, interpreted, or lowered
/// to native code.
///
//===----------------------------------------------------------------------===//

#ifndef FT_IR_FUNC_H
#define FT_IR_FUNC_H

#include <string>
#include <vector>

#include "ir/stmt.h"

namespace ft {

/// The unit of compilation.
struct Func {
  std::string Name;
  /// Parameter tensor names in ABI order. Each must be defined by a
  /// non-Cache VarDef in \c Body.
  std::vector<std::string> Params;
  Stmt Body;
};

/// Finds the VarDef of \p Name anywhere in \p Body, or null.
Ref<VarDefNode> findVarDef(const Stmt &Body, const std::string &Name);

/// Finds the statement with ID \p Id in \p Body, or null.
Stmt findStmt(const Stmt &Body, int64_t Id);

/// Finds the unique statement with label \p Label in \p Body, or null.
/// Asserts if the label is ambiguous.
Stmt findStmtByLabel(const Stmt &Body, const std::string &Label);

} // namespace ft

#endif // FT_IR_FUNC_H
