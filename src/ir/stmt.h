//===- ir/stmt.h - Statement nodes -------------------------------*- C++ -*-===//
///
/// \file
/// Statement nodes of the stack-scoped AST (paper §4). Each tensor is alive
/// only in the subtree of its VarDef node, which (1) keeps
/// allocation/freeing pairs intact under transformation and (2) lets
/// dependence analysis discard false dependences by scope projection
/// (paper Fig. 12(d)).
///
/// Every statement carries a stable integer ID. The Mutator preserves IDs
/// when rebuilding nodes, so schedule transformations can keep addressing
/// statements across passes; newly created statements get fresh IDs.
///
//===----------------------------------------------------------------------===//

#ifndef FT_IR_STMT_H
#define FT_IR_STMT_H

#include <string>
#include <vector>

#include "ir/expr.h"

namespace ft {

/// How a function may access a tensor parameter, or Cache for a tensor
/// created and destroyed inside the function.
enum class AccessType : uint8_t {
  Input,
  Output,
  InOut,
  Cache,
};

/// Returns "input" / "output" / "inout" / "cache".
std::string nameOf(AccessType AT);

/// Where a tensor is stored (paper §3.1 "tensors can be defined on
/// different devices"; §4.3 auto_mem_type). This reproduction generates CPU
/// code only: CPULocal marks small thread-local tensors that the code
/// generator places on the stack (the CPU analogue of registers /
/// scratch-pad in the paper).
enum class MemType : uint8_t {
  CPU,
  CPULocal,
};

/// Returns "cpu" / "cpulocal".
std::string nameOf(MemType MT);

/// Reduction operator of a ReduceTo statement.
enum class ReduceOpKind : uint8_t {
  Add,
  Mul,
  Min,
  Max,
};

/// Returns "+=", "*=", "min=", "max=".
std::string nameOf(ReduceOpKind Op);

/// Returns the identity element of \p Op for \p DT as an expression
/// (0 for Add, 1 for Mul, +/-infinity or integer extrema for Min/Max).
Expr neutralValue(ReduceOpKind Op, DataType DT);

/// Base of all statement nodes.
class StmtNode : public ASTNode {
public:
  StmtNode(NodeKind K, int64_t Id);

  static bool classof(NodeKind K) { return K >= NodeKind::StmtSeq; }

  /// Stable identity of this statement across Mutator rebuilds.
  int64_t Id;

  /// Optional user-facing label for schedule selection.
  std::string Label;
};

using Stmt = Ref<StmtNode>;

/// Allocates a fresh statement ID.
int64_t newStmtId();

/// A sequence of statements executed in order.
class StmtSeqNode : public StmtNode {
public:
  StmtSeqNode(std::vector<Stmt> Stmts, int64_t Id)
      : StmtNode(NodeKind::StmtSeq, Id), Stmts(std::move(Stmts)) {}

  static bool classof(NodeKind K) { return K == NodeKind::StmtSeq; }

  std::vector<Stmt> Stmts;
};

/// Shape and element type of a tensor.
struct TensorInfo {
  std::vector<Expr> Shape; ///< One extent per dimension; empty for scalars.
  DataType Dtype = DataType::Float32;
};

/// Defines a tensor whose lifetime is the Body subtree.
class VarDefNode : public StmtNode {
public:
  VarDefNode(std::string Name, TensorInfo Info, AccessType ATy, MemType MTy,
             Stmt Body, int64_t Id)
      : StmtNode(NodeKind::VarDef, Id), Name(std::move(Name)),
        Info(std::move(Info)), ATy(ATy), MTy(MTy), Body(std::move(Body)) {}

  static bool classof(NodeKind K) { return K == NodeKind::VarDef; }

  std::string Name;
  TensorInfo Info;
  AccessType ATy;
  MemType MTy;
  Stmt Body;

  /// If true, automatic differentiation treats loads of this tensor as
  /// constants (stop-gradient), e.g. the max used for softmax stabilization.
  bool NoGrad = false;
};

/// Writes one element: Var[Indices] = Value.
class StoreNode : public StmtNode {
public:
  StoreNode(std::string Var, std::vector<Expr> Indices, Expr Value, int64_t Id)
      : StmtNode(NodeKind::Store, Id), Var(std::move(Var)),
        Indices(std::move(Indices)), Value(std::move(Value)) {}

  static bool classof(NodeKind K) { return K == NodeKind::Store; }

  std::string Var;
  std::vector<Expr> Indices;
  Expr Value;
};

/// Accumulates into one element: Var[Indices] op= Value. Write-after-write
/// dependences between ReduceTo nodes of the same operator are ignorable
/// because reductions commute (paper Fig. 12(c)); a ReduceTo inside a
/// parallel loop may be marked Atomic (paper Fig. 13(e)).
class ReduceToNode : public StmtNode {
public:
  ReduceToNode(std::string Var, std::vector<Expr> Indices, ReduceOpKind Op,
               Expr Value, int64_t Id)
      : StmtNode(NodeKind::ReduceTo, Id), Var(std::move(Var)),
        Indices(std::move(Indices)), Op(Op), Value(std::move(Value)) {}

  static bool classof(NodeKind K) { return K == NodeKind::ReduceTo; }

  std::string Var;
  std::vector<Expr> Indices;
  ReduceOpKind Op;
  Expr Value;
  bool Atomic = false;
};

/// How a For loop is to be executed by the code generator.
struct ForProperty {
  /// Run iterations on multiple threads (paper's `parallelize`).
  bool Parallel = false;
  /// Emit a vectorization hint for the backend compiler.
  bool Vectorize = false;
  /// Ask the backend compiler to unroll (paper's `unroll` keeps the loop
  /// structure; full unrolling is a separate schedule that removes it).
  bool Unroll = false;
  /// Promise there are no loop-carried dependences (set by schedules after
  /// verification; consumed by codegen for parallel reductions).
  bool NoDeps = false;
  /// Proven SIMD width (vectorize(LoopId, Width)): > 0 means the vector
  /// legality analysis verified the loop at this width and codegen may
  /// lower it to an explicit-width `#pragma omp simd` body with a scalar
  /// remainder. 0 keeps the legacy ivdep-hint lowering.
  int VectorWidth = 0;
  /// Requested unroll factor (unroll(LoopId, Factor)): > 0 overrides the
  /// historical hard-coded `#pragma GCC unroll 8`.
  int UnrollFactor = 0;

  bool operator==(const ForProperty &) const = default;
};

/// A counted loop: for Iter in [Begin, End) step 1.
///
/// All loops are normalized to unit step; schedules like `split` express
/// strides by rewriting index expressions instead, which keeps the
/// polyhedral model simple.
class ForNode : public StmtNode {
public:
  ForNode(std::string Iter, Expr Begin, Expr End, ForProperty Property,
          Stmt Body, int64_t Id)
      : StmtNode(NodeKind::For, Id), Iter(std::move(Iter)),
        Begin(std::move(Begin)), End(std::move(End)), Property(Property),
        Body(std::move(Body)) {}

  static bool classof(NodeKind K) { return K == NodeKind::For; }

  std::string Iter;
  Expr Begin, End;
  ForProperty Property;
  Stmt Body;

  /// Returns End - Begin (not simplified).
  Expr len() const { return makeSub(End, Begin); }
};

/// A two-way branch. Else may be null.
class IfNode : public StmtNode {
public:
  IfNode(Expr Cond, Stmt Then, Stmt Else, int64_t Id)
      : StmtNode(NodeKind::If, Id), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}

  static bool classof(NodeKind K) { return K == NodeKind::If; }

  Expr Cond;
  Stmt Then;
  Stmt Else; ///< May be null.
};

/// A call to the runtime GEMM library (result of the `as_lib` schedule,
/// paper Table 1): C[M,N] += A[M,K] * B[K,N] over full row-major 2-D
/// tensors, with optional transposes folded into the operand layout.
class GemmCallNode : public StmtNode {
public:
  GemmCallNode(std::string A, std::string B, std::string C, Expr M, Expr N,
               Expr K, bool TransA, bool TransB, DataType Dtype, int64_t Id)
      : StmtNode(NodeKind::GemmCall, Id), A(std::move(A)), B(std::move(B)),
        C(std::move(C)), M(std::move(M)), N(std::move(N)), K(std::move(K)),
        TransA(TransA), TransB(TransB), Dtype(Dtype) {}

  static bool classof(NodeKind K) { return K == NodeKind::GemmCall; }

  std::string A, B, C;
  Expr M, N, K;
  bool TransA, TransB;
  DataType Dtype;
};

//===----------------------------------------------------------------------===//
// Factory helpers. Pass Id = -1 (the default) for a fresh statement ID, or
// an existing ID to preserve statement identity across a rebuild.
//===----------------------------------------------------------------------===//

Stmt makeStmtSeq(std::vector<Stmt> Stmts, int64_t Id = -1);
Stmt makeVarDef(const std::string &Name, TensorInfo Info, AccessType ATy,
                MemType MTy, Stmt Body, int64_t Id = -1);
Stmt makeStore(const std::string &Var, std::vector<Expr> Indices, Expr Value,
               int64_t Id = -1);
Stmt makeReduceTo(const std::string &Var, std::vector<Expr> Indices,
                  ReduceOpKind Op, Expr Value, int64_t Id = -1);
Stmt makeFor(const std::string &Iter, Expr Begin, Expr End,
             ForProperty Property, Stmt Body, int64_t Id = -1);
Stmt makeIf(Expr Cond, Stmt Then, Stmt Else = nullptr, int64_t Id = -1);
Stmt makeGemmCall(const std::string &A, const std::string &B,
                  const std::string &C, Expr M, Expr N, Expr K, bool TransA,
                  bool TransB, DataType Dtype, int64_t Id = -1);

} // namespace ft

#endif // FT_IR_STMT_H
