//===- ir/visitor.h - Read-only AST traversal --------------------*- C++ -*-===//
///
/// \file
/// Depth-first read-only traversal over the IR. Subclasses override the
/// per-kind hooks they care about; default implementations recurse into all
/// children.
///
//===----------------------------------------------------------------------===//

#ifndef FT_IR_VISITOR_H
#define FT_IR_VISITOR_H

#include "ir/stmt.h"

namespace ft {

/// Read-only depth-first visitor.
class Visitor {
public:
  virtual ~Visitor() = default;

  /// Dispatches on the dynamic kind of \p Node (expression or statement).
  void operator()(const AST &Node);

protected:
  virtual void visit(const IntConstNode *E) {}
  virtual void visit(const FloatConstNode *E) {}
  virtual void visit(const BoolConstNode *E) {}
  virtual void visit(const VarNode *E) {}
  virtual void visit(const LoadNode *E);
  virtual void visit(const BinaryNode *E);
  virtual void visit(const UnaryNode *E);
  virtual void visit(const IfExprNode *E);
  virtual void visit(const CastNode *E);

  virtual void visit(const StmtSeqNode *S);
  virtual void visit(const VarDefNode *S);
  virtual void visit(const StoreNode *S);
  virtual void visit(const ReduceToNode *S);
  virtual void visit(const ForNode *S);
  virtual void visit(const IfNode *S);
  virtual void visit(const GemmCallNode *S);
};

/// Number of AST nodes (expressions and statements) reachable from
/// \p Node. Used by the observability layer to annotate per-pass spans
/// with IR size deltas.
size_t countNodes(const AST &Node);

} // namespace ft

#endif // FT_IR_VISITOR_H
