//===- ir/data_type.h - Scalar element types ---------------------*- C++ -*-===//
///
/// \file
/// Scalar element types of tensors (paper §3.1: "Tensor elements can be any
/// primary scalar data type"), plus the usual promotion and size queries.
///
//===----------------------------------------------------------------------===//

#ifndef FT_IR_DATA_TYPE_H
#define FT_IR_DATA_TYPE_H

#include <cstddef>
#include <string>

namespace ft {

/// Element type of a tensor. Scalars are 0-D tensors of one of these types.
enum class DataType {
  Float32,
  Float64,
  Int32,
  Int64,
  Bool,
};

/// Returns the size of one element in bytes.
size_t sizeOf(DataType DT);

/// Returns a short name ("f32", "i64", ...), as used by printers.
std::string nameOf(DataType DT);

/// Returns true for Float32/Float64.
bool isFloat(DataType DT);

/// Returns true for Int32/Int64.
bool isInt(DataType DT);

/// Returns the common type two operands promote to in arithmetic
/// (float beats int, wider beats narrower, bool promotes to int32).
DataType upCast(DataType A, DataType B);

} // namespace ft

#endif // FT_IR_DATA_TYPE_H
