//===- ir/printer.h - Human-readable IR printing -----------------*- C++ -*-===//
///
/// \file
/// Prints the IR in a compact Python-like syntax resembling the listings in
/// the paper (Fig. 8, Fig. 10). Used by tests, diagnostics, and debugging.
///
//===----------------------------------------------------------------------===//

#ifndef FT_IR_PRINTER_H
#define FT_IR_PRINTER_H

#include <string>

#include "ir/stmt.h"

namespace ft {

/// Options controlling IR printing.
struct PrintOptions {
  bool ShowIds = false;    ///< Append "  # id N" to statements.
  bool ShowLabels = false; ///< Append "  # label" when a label is present.
};

/// Renders an expression on one line.
std::string toString(const Expr &E);

/// Renders a statement tree with 2-space indentation.
std::string toString(const Stmt &S, const PrintOptions &Opts = {});

} // namespace ft

#endif // FT_IR_PRINTER_H
