//===- ir/stmt.cpp --------------------------------------------------------===//

#include "ir/stmt.h"

#include <atomic>
#include <limits>

using namespace ft;

int64_t ft::newStmtId() {
  static std::atomic<int64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

StmtNode::StmtNode(NodeKind K, int64_t Id)
    : ASTNode(K), Id(Id < 0 ? newStmtId() : Id) {}

std::string ft::nameOf(AccessType AT) {
  switch (AT) {
  case AccessType::Input:
    return "input";
  case AccessType::Output:
    return "output";
  case AccessType::InOut:
    return "inout";
  case AccessType::Cache:
    return "cache";
  }
  ftUnreachable("unknown AccessType");
}

std::string ft::nameOf(MemType MT) {
  switch (MT) {
  case MemType::CPU:
    return "cpu";
  case MemType::CPULocal:
    return "cpulocal";
  }
  ftUnreachable("unknown MemType");
}

std::string ft::nameOf(ReduceOpKind Op) {
  switch (Op) {
  case ReduceOpKind::Add:
    return "+=";
  case ReduceOpKind::Mul:
    return "*=";
  case ReduceOpKind::Min:
    return "min=";
  case ReduceOpKind::Max:
    return "max=";
  }
  ftUnreachable("unknown ReduceOpKind");
}

Expr ft::neutralValue(ReduceOpKind Op, DataType DT) {
  bool Float = isFloat(DT);
  switch (Op) {
  case ReduceOpKind::Add:
    return Float ? makeFloatConst(0.0) : makeIntConst(0);
  case ReduceOpKind::Mul:
    return Float ? makeFloatConst(1.0) : makeIntConst(1);
  case ReduceOpKind::Min:
    return Float ? makeFloatConst(std::numeric_limits<double>::infinity())
                 : makeIntConst(std::numeric_limits<int64_t>::max());
  case ReduceOpKind::Max:
    return Float ? makeFloatConst(-std::numeric_limits<double>::infinity())
                 : makeIntConst(std::numeric_limits<int64_t>::min());
  }
  ftUnreachable("unknown ReduceOpKind");
}

Stmt ft::makeStmtSeq(std::vector<Stmt> Stmts, int64_t Id) {
  for (const Stmt &S : Stmts)
    ftAssert(S != nullptr, "null statement in StmtSeq");
  return std::make_shared<StmtSeqNode>(std::move(Stmts), Id);
}

Stmt ft::makeVarDef(const std::string &Name, TensorInfo Info, AccessType ATy,
                    MemType MTy, Stmt Body, int64_t Id) {
  ftAssert(Body != nullptr, "null body in VarDef of " + Name);
  return std::make_shared<VarDefNode>(Name, std::move(Info), ATy, MTy,
                                      std::move(Body), Id);
}

Stmt ft::makeStore(const std::string &Var, std::vector<Expr> Indices,
                   Expr Value, int64_t Id) {
  ftAssert(Value != nullptr, "null value in Store to " + Var);
  return std::make_shared<StoreNode>(Var, std::move(Indices), std::move(Value),
                                     Id);
}

Stmt ft::makeReduceTo(const std::string &Var, std::vector<Expr> Indices,
                      ReduceOpKind Op, Expr Value, int64_t Id) {
  ftAssert(Value != nullptr, "null value in ReduceTo of " + Var);
  return std::make_shared<ReduceToNode>(Var, std::move(Indices), Op,
                                        std::move(Value), Id);
}

Stmt ft::makeFor(const std::string &Iter, Expr Begin, Expr End,
                 ForProperty Property, Stmt Body, int64_t Id) {
  ftAssert(Begin && End, "null bound in For " + Iter);
  ftAssert(Body != nullptr, "null body in For " + Iter);
  return std::make_shared<ForNode>(Iter, std::move(Begin), std::move(End),
                                   Property, std::move(Body), Id);
}

Stmt ft::makeIf(Expr Cond, Stmt Then, Stmt Else, int64_t Id) {
  ftAssert(Cond != nullptr, "null condition in If");
  ftAssert(Then != nullptr, "null then-branch in If");
  return std::make_shared<IfNode>(std::move(Cond), std::move(Then),
                                  std::move(Else), Id);
}

Stmt ft::makeGemmCall(const std::string &A, const std::string &B,
                      const std::string &C, Expr M, Expr N, Expr K,
                      bool TransA, bool TransB, DataType Dtype, int64_t Id) {
  ftAssert(M && N && K, "null extent in GemmCall");
  return std::make_shared<GemmCallNode>(A, B, C, std::move(M), std::move(N),
                                        std::move(K), TransA, TransB, Dtype,
                                        Id);
}
