//===- ir/func.cpp --------------------------------------------------------===//

#include "ir/func.h"

#include <functional>

using namespace ft;

namespace {

/// Shared-handle traversal used where we must return Ref<> nodes. Counts
/// matches in \p NumFound and returns the first one.
Stmt findStmtImpl(const Stmt &S, const std::function<bool(const Stmt &)> &Pred,
                  int *NumFound) {
  Stmt Found;
  if (Pred(S)) {
    ++*NumFound;
    Found = S;
  }
  auto Check = [&](const Stmt &Sub) {
    Stmt R = findStmtImpl(Sub, Pred, NumFound);
    if (R && !Found)
      Found = R;
  };
  switch (S->kind()) {
  case NodeKind::StmtSeq:
    for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
      Check(Sub);
    break;
  case NodeKind::VarDef:
    Check(cast<VarDefNode>(S)->Body);
    break;
  case NodeKind::For:
    Check(cast<ForNode>(S)->Body);
    break;
  case NodeKind::If: {
    auto I = cast<IfNode>(S);
    Check(I->Then);
    if (I->Else)
      Check(I->Else);
    break;
  }
  default:
    break;
  }
  return Found;
}

} // namespace

Ref<VarDefNode> ft::findVarDef(const Stmt &Body, const std::string &Name) {
  int N = 0;
  Stmt S = findStmtImpl(
      Body,
      [&](const Stmt &X) {
        auto D = dyn_cast<VarDefNode>(X);
        return D != nullptr && D->Name == Name;
      },
      &N);
  return S ? cast<VarDefNode>(S) : nullptr;
}

Stmt ft::findStmt(const Stmt &Body, int64_t Id) {
  int N = 0;
  return findStmtImpl(
      Body, [&](const Stmt &X) { return X->Id == Id; }, &N);
}

Stmt ft::findStmtByLabel(const Stmt &Body, const std::string &Label) {
  int N = 0;
  Stmt S = findStmtImpl(
      Body, [&](const Stmt &X) { return X->Label == Label; }, &N);
  ftAssert(N <= 1, "ambiguous statement label: " + Label);
  return S;
}
