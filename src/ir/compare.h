//===- ir/compare.h - Structural equality, hashing, fingerprints -*- C++ -*-===//
///
/// \file
/// Structural (deep) equality and hashing over AST nodes, ignoring statement
/// IDs and labels. Expression comparison is name-exact; statement comparison
/// is *alpha-renamed*: loop iterators and VarDef names are matched by binding
/// site (binder occurrence order), not by spelling, so two programs that
/// differ only in generated variable names compare (and hash) equal. Names
/// not bound inside the compared subtree — tensor parameters seen from a
/// statement fragment, for example — still compare by spelling.
///
/// `fingerprint(Func)` extends this to a whole-program content hash that is
/// invariant to variable renaming, statement-ID renumbering and labels but
/// sensitive to everything semantic (operators, constants, shapes, dtypes,
/// access/mem types, loop properties, parameter binding order). It is the
/// identity the kernel-compilation cache (codegen/kernel_cache.h) and the
/// autoscheduler's candidate dedup key off of.
///
/// Used by tests, CSE-style passes, pattern matching, and the kernel cache.
///
//===----------------------------------------------------------------------===//

#ifndef FT_IR_COMPARE_H
#define FT_IR_COMPARE_H

#include <cstddef>
#include <cstdint>

#include "ir/func.h"

namespace ft {

/// Returns true if two expressions are structurally identical (names are
/// compared by spelling; there are no binders inside expressions).
bool deepEqual(const Expr &A, const Expr &B);

/// Returns true if two statements are alpha-equivalent: structurally
/// identical with loop iterators and VarDef names matched by binding site.
/// IDs and labels are ignored; names free in both subtrees must match by
/// spelling.
bool deepEqual(const Stmt &A, const Stmt &B);

/// Structural hash consistent with deepEqual on expressions.
size_t structuralHash(const Expr &E);

/// Structural hash consistent with deepEqual on statements: two
/// alpha-equivalent statements hash equal.
size_t structuralHash(const Stmt &S);

/// Canonical whole-program fingerprint of \p F: alpha-renamed over the body
/// plus the parameter binding order (which VarDef each ABI slot names). Two
/// Funcs that differ only in variable names, statement IDs, labels, or the
/// function name fingerprint equal; any semantic difference — down to a
/// loop's Parallel flag or a VarDef's MemType — changes it.
uint64_t fingerprint(const Func &F);

} // namespace ft

#endif // FT_IR_COMPARE_H
