//===- ir/compare.h - Structural equality and hashing ------------*- C++ -*-===//
///
/// \file
/// Structural (deep) equality and hashing over AST nodes, ignoring statement
/// IDs and labels. Used by tests, CSE-style passes, and pattern matching.
///
//===----------------------------------------------------------------------===//

#ifndef FT_IR_COMPARE_H
#define FT_IR_COMPARE_H

#include <cstddef>

#include "ir/stmt.h"

namespace ft {

/// Returns true if two expressions are structurally identical.
bool deepEqual(const Expr &A, const Expr &B);

/// Returns true if two statements are structurally identical (IDs and
/// labels are ignored; For iterator names matter).
bool deepEqual(const Stmt &A, const Stmt &B);

/// Structural hash consistent with deepEqual on expressions.
size_t structuralHash(const Expr &E);

} // namespace ft

#endif // FT_IR_COMPARE_H
