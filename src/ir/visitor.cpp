//===- ir/visitor.cpp -----------------------------------------------------===//

#include "ir/visitor.h"

using namespace ft;

void Visitor::operator()(const AST &Node) {
  ftAssert(Node != nullptr, "visiting a null AST node");
  switch (Node->kind()) {
  case NodeKind::IntConst:
    return visit(cast<IntConstNode>(Node).get());
  case NodeKind::FloatConst:
    return visit(cast<FloatConstNode>(Node).get());
  case NodeKind::BoolConst:
    return visit(cast<BoolConstNode>(Node).get());
  case NodeKind::Var:
    return visit(cast<VarNode>(Node).get());
  case NodeKind::Load:
    return visit(cast<LoadNode>(Node).get());
  case NodeKind::Binary:
    return visit(cast<BinaryNode>(Node).get());
  case NodeKind::Unary:
    return visit(cast<UnaryNode>(Node).get());
  case NodeKind::IfExpr:
    return visit(cast<IfExprNode>(Node).get());
  case NodeKind::Cast:
    return visit(cast<CastNode>(Node).get());
  case NodeKind::StmtSeq:
    return visit(cast<StmtSeqNode>(Node).get());
  case NodeKind::VarDef:
    return visit(cast<VarDefNode>(Node).get());
  case NodeKind::Store:
    return visit(cast<StoreNode>(Node).get());
  case NodeKind::ReduceTo:
    return visit(cast<ReduceToNode>(Node).get());
  case NodeKind::For:
    return visit(cast<ForNode>(Node).get());
  case NodeKind::If:
    return visit(cast<IfNode>(Node).get());
  case NodeKind::GemmCall:
    return visit(cast<GemmCallNode>(Node).get());
  }
  ftUnreachable("unknown NodeKind in Visitor dispatch");
}

void Visitor::visit(const LoadNode *E) {
  for (const Expr &I : E->Indices)
    (*this)(I);
}

void Visitor::visit(const BinaryNode *E) {
  (*this)(E->LHS);
  (*this)(E->RHS);
}

void Visitor::visit(const UnaryNode *E) { (*this)(E->Operand); }

void Visitor::visit(const IfExprNode *E) {
  (*this)(E->Cond);
  (*this)(E->Then);
  (*this)(E->Else);
}

void Visitor::visit(const CastNode *E) { (*this)(E->Operand); }

void Visitor::visit(const StmtSeqNode *S) {
  for (const Stmt &Sub : S->Stmts)
    (*this)(Sub);
}

void Visitor::visit(const VarDefNode *S) {
  for (const Expr &D : S->Info.Shape)
    (*this)(D);
  (*this)(S->Body);
}

void Visitor::visit(const StoreNode *S) {
  for (const Expr &I : S->Indices)
    (*this)(I);
  (*this)(S->Value);
}

void Visitor::visit(const ReduceToNode *S) {
  for (const Expr &I : S->Indices)
    (*this)(I);
  (*this)(S->Value);
}

void Visitor::visit(const ForNode *S) {
  (*this)(S->Begin);
  (*this)(S->End);
  (*this)(S->Body);
}

void Visitor::visit(const IfNode *S) {
  (*this)(S->Cond);
  (*this)(S->Then);
  if (S->Else)
    (*this)(S->Else);
}

void Visitor::visit(const GemmCallNode *S) {
  (*this)(S->M);
  (*this)(S->N);
  (*this)(S->K);
}

namespace {

/// Counts every node reached; each hook bumps the count and defers to the
/// base class for recursion.
class NodeCounter : public Visitor {
public:
  size_t N = 0;

protected:
  void visit(const IntConstNode *E) override { ++N; }
  void visit(const FloatConstNode *E) override { ++N; }
  void visit(const BoolConstNode *E) override { ++N; }
  void visit(const VarNode *E) override { ++N; }
  void visit(const LoadNode *E) override {
    ++N;
    Visitor::visit(E);
  }
  void visit(const BinaryNode *E) override {
    ++N;
    Visitor::visit(E);
  }
  void visit(const UnaryNode *E) override {
    ++N;
    Visitor::visit(E);
  }
  void visit(const IfExprNode *E) override {
    ++N;
    Visitor::visit(E);
  }
  void visit(const CastNode *E) override {
    ++N;
    Visitor::visit(E);
  }
  void visit(const StmtSeqNode *S) override {
    ++N;
    Visitor::visit(S);
  }
  void visit(const VarDefNode *S) override {
    ++N;
    Visitor::visit(S);
  }
  void visit(const StoreNode *S) override {
    ++N;
    Visitor::visit(S);
  }
  void visit(const ReduceToNode *S) override {
    ++N;
    Visitor::visit(S);
  }
  void visit(const ForNode *S) override {
    ++N;
    Visitor::visit(S);
  }
  void visit(const IfNode *S) override {
    ++N;
    Visitor::visit(S);
  }
  void visit(const GemmCallNode *S) override {
    ++N;
    Visitor::visit(S);
  }
};

} // namespace

size_t ft::countNodes(const AST &Node) {
  NodeCounter C;
  C(Node);
  return C.N;
}
