//===- ir/mutator.cpp -----------------------------------------------------===//

#include "ir/mutator.h"

using namespace ft;

Expr Mutator::operator()(const Expr &E) {
  ftAssert(E != nullptr, "mutating a null expression");
  switch (E->kind()) {
  case NodeKind::IntConst:
    return visit(cast<IntConstNode>(E).get());
  case NodeKind::FloatConst:
    return visit(cast<FloatConstNode>(E).get());
  case NodeKind::BoolConst:
    return visit(cast<BoolConstNode>(E).get());
  case NodeKind::Var:
    return visit(cast<VarNode>(E).get());
  case NodeKind::Load:
    return visit(cast<LoadNode>(E).get());
  case NodeKind::Binary:
    return visit(cast<BinaryNode>(E).get());
  case NodeKind::Unary:
    return visit(cast<UnaryNode>(E).get());
  case NodeKind::IfExpr:
    return visit(cast<IfExprNode>(E).get());
  case NodeKind::Cast:
    return visit(cast<CastNode>(E).get());
  default:
    ftUnreachable("statement kind in expression mutation");
  }
}

Stmt Mutator::operator()(const Stmt &S) {
  ftAssert(S != nullptr, "mutating a null statement");
  Stmt Out;
  switch (S->kind()) {
  case NodeKind::StmtSeq:
    Out = visit(cast<StmtSeqNode>(S).get());
    break;
  case NodeKind::VarDef:
    Out = visit(cast<VarDefNode>(S).get());
    break;
  case NodeKind::Store:
    Out = visit(cast<StoreNode>(S).get());
    break;
  case NodeKind::ReduceTo:
    Out = visit(cast<ReduceToNode>(S).get());
    break;
  case NodeKind::For:
    Out = visit(cast<ForNode>(S).get());
    break;
  case NodeKind::If:
    Out = visit(cast<IfNode>(S).get());
    break;
  case NodeKind::GemmCall:
    Out = visit(cast<GemmCallNode>(S).get());
    break;
  default:
    ftUnreachable("expression kind in statement mutation");
  }
  if (Out && Out->Label.empty())
    Out->Label = S->Label;
  return Out;
}

std::vector<Expr> Mutator::mutateIndices(const std::vector<Expr> &Indices) {
  std::vector<Expr> Out;
  Out.reserve(Indices.size());
  for (const Expr &I : Indices)
    Out.push_back((*this)(I));
  return Out;
}

Expr Mutator::visit(const IntConstNode *E) { return makeIntConst(E->Val); }
Expr Mutator::visit(const FloatConstNode *E) { return makeFloatConst(E->Val); }
Expr Mutator::visit(const BoolConstNode *E) { return makeBoolConst(E->Val); }
Expr Mutator::visit(const VarNode *E) { return makeVar(E->Name); }

Expr Mutator::visit(const LoadNode *E) {
  return makeLoad(E->Var, mutateIndices(E->Indices), E->Dtype);
}

Expr Mutator::visit(const BinaryNode *E) {
  return makeBinary(E->Op, (*this)(E->LHS), (*this)(E->RHS));
}

Expr Mutator::visit(const UnaryNode *E) {
  return makeUnary(E->Op, (*this)(E->Operand));
}

Expr Mutator::visit(const IfExprNode *E) {
  return makeIfExpr((*this)(E->Cond), (*this)(E->Then), (*this)(E->Else));
}

Expr Mutator::visit(const CastNode *E) {
  return makeCast(E->Dtype, (*this)(E->Operand));
}

Stmt Mutator::visit(const StmtSeqNode *S) {
  std::vector<Stmt> Stmts;
  Stmts.reserve(S->Stmts.size());
  for (const Stmt &Sub : S->Stmts)
    Stmts.push_back((*this)(Sub));
  return makeStmtSeq(std::move(Stmts), S->Id);
}

Stmt Mutator::visit(const VarDefNode *S) {
  TensorInfo Info;
  Info.Dtype = S->Info.Dtype;
  for (const Expr &D : S->Info.Shape)
    Info.Shape.push_back((*this)(D));
  Stmt Out = makeVarDef(S->Name, std::move(Info), S->ATy, S->MTy,
                        (*this)(S->Body), S->Id);
  cast<VarDefNode>(Out)->NoGrad = S->NoGrad;
  return Out;
}

Stmt Mutator::visit(const StoreNode *S) {
  return makeStore(S->Var, mutateIndices(S->Indices), (*this)(S->Value),
                   S->Id);
}

Stmt Mutator::visit(const ReduceToNode *S) {
  Stmt Out = makeReduceTo(S->Var, mutateIndices(S->Indices), S->Op,
                          (*this)(S->Value), S->Id);
  cast<ReduceToNode>(Out)->Atomic = S->Atomic;
  return Out;
}

Stmt Mutator::visit(const ForNode *S) {
  return makeFor(S->Iter, (*this)(S->Begin), (*this)(S->End), S->Property,
                 (*this)(S->Body), S->Id);
}

Stmt Mutator::visit(const IfNode *S) {
  return makeIf((*this)(S->Cond), (*this)(S->Then),
                S->Else ? (*this)(S->Else) : nullptr, S->Id);
}

Stmt Mutator::visit(const GemmCallNode *S) {
  return makeGemmCall(S->A, S->B, S->C, (*this)(S->M), (*this)(S->N),
                      (*this)(S->K), S->TransA, S->TransB, S->Dtype, S->Id);
}
