//===- ir/expr.h - Expression nodes ------------------------------*- C++ -*-===//
///
/// \file
/// Expression nodes of the FreeTensor IR. Expressions are pure: loop
/// iterators (Var), loads from tensors (Load), constants, and arithmetic /
/// comparison / logical operators, a select (IfExpr), casts, and scalar math
/// intrinsics (as Unary kinds). Fine-grained tensor indexing (paper §3.1)
/// bottoms out in Load nodes whose index expressions may be arbitrary,
/// including indirect accesses such as `e[adj[i, j], k]`.
///
//===----------------------------------------------------------------------===//

#ifndef FT_IR_EXPR_H
#define FT_IR_EXPR_H

#include <string>
#include <vector>

#include "ir/ast.h"
#include "ir/data_type.h"

namespace ft {

/// Base of all expression nodes.
class ExprNode : public ASTNode {
public:
  using ASTNode::ASTNode;

  static bool classof(NodeKind K) { return K < NodeKind::StmtSeq; }
};

using Expr = Ref<ExprNode>;

/// A signed 64-bit integer constant.
class IntConstNode : public ExprNode {
public:
  explicit IntConstNode(int64_t Val)
      : ExprNode(NodeKind::IntConst), Val(Val) {}

  static bool classof(NodeKind K) { return K == NodeKind::IntConst; }

  int64_t Val;
};

/// A floating-point constant (stored as double; Cast narrows).
class FloatConstNode : public ExprNode {
public:
  explicit FloatConstNode(double Val)
      : ExprNode(NodeKind::FloatConst), Val(Val) {}

  static bool classof(NodeKind K) { return K == NodeKind::FloatConst; }

  double Val;
};

/// A boolean constant.
class BoolConstNode : public ExprNode {
public:
  explicit BoolConstNode(bool Val)
      : ExprNode(NodeKind::BoolConst), Val(Val) {}

  static bool classof(NodeKind K) { return K == NodeKind::BoolConst; }

  bool Val;
};

/// A reference to a loop iterator (integer-valued).
class VarNode : public ExprNode {
public:
  explicit VarNode(std::string Name)
      : ExprNode(NodeKind::Var), Name(std::move(Name)) {}

  static bool classof(NodeKind K) { return K == NodeKind::Var; }

  std::string Name;
};

/// A read of one element of the tensor named \c Var. A 0-D tensor (scalar)
/// is loaded with an empty index list.
class LoadNode : public ExprNode {
public:
  LoadNode(std::string Var, std::vector<Expr> Indices, DataType Dtype)
      : ExprNode(NodeKind::Load), Var(std::move(Var)),
        Indices(std::move(Indices)), Dtype(Dtype) {}

  static bool classof(NodeKind K) { return K == NodeKind::Load; }

  std::string Var;
  std::vector<Expr> Indices;
  DataType Dtype;
};

/// Binary operator kinds. Arithmetic operators promote via upCast;
/// comparisons and logical operators yield Bool.
enum class BinOpKind : uint8_t {
  Add,
  Sub,
  Mul,
  RealDiv,  ///< Floating-point division.
  FloorDiv, ///< Integer division, rounding toward negative infinity.
  Mod,      ///< Modulo with the sign of the divisor (Python semantics).
  Min,
  Max,
  LT,
  LE,
  GT,
  GE,
  EQ,
  NE,
  LAnd,
  LOr,
};

/// Returns true for LT..NE.
bool isCompareOp(BinOpKind Op);

/// Returns true for LAnd/LOr.
bool isLogicOp(BinOpKind Op);

/// A binary operation.
class BinaryNode : public ExprNode {
public:
  BinaryNode(BinOpKind Op, Expr LHS, Expr RHS)
      : ExprNode(NodeKind::Binary), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  static bool classof(NodeKind K) { return K == NodeKind::Binary; }

  BinOpKind Op;
  Expr LHS, RHS;
};

/// Unary operator kinds, including the scalar math intrinsics the DSL's
/// libop lowers to.
enum class UnOpKind : uint8_t {
  Neg,
  LNot,
  Abs,
  Sqrt,
  Exp,
  Ln,
  Sigmoid,
  Tanh,
};

/// A unary operation.
class UnaryNode : public ExprNode {
public:
  UnaryNode(UnOpKind Op, Expr Operand)
      : ExprNode(NodeKind::Unary), Op(Op), Operand(std::move(Operand)) {}

  static bool classof(NodeKind K) { return K == NodeKind::Unary; }

  UnOpKind Op;
  Expr Operand;
};

/// A select expression: Cond ? Then : Else.
class IfExprNode : public ExprNode {
public:
  IfExprNode(Expr Cond, Expr Then, Expr Else)
      : ExprNode(NodeKind::IfExpr), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}

  static bool classof(NodeKind K) { return K == NodeKind::IfExpr; }

  Expr Cond, Then, Else;
};

/// An explicit conversion to \c Dtype.
class CastNode : public ExprNode {
public:
  CastNode(DataType Dtype, Expr Operand)
      : ExprNode(NodeKind::Cast), Dtype(Dtype), Operand(std::move(Operand)) {}

  static bool classof(NodeKind K) { return K == NodeKind::Cast; }

  DataType Dtype;
  Expr Operand;
};

//===----------------------------------------------------------------------===//
// Factory helpers. These are the only way passes should create expressions;
// they keep construction sites terse and give one place to add invariants.
//===----------------------------------------------------------------------===//

Expr makeIntConst(int64_t Val);
Expr makeFloatConst(double Val);
Expr makeBoolConst(bool Val);
Expr makeVar(const std::string &Name);
Expr makeLoad(const std::string &Var, std::vector<Expr> Indices,
              DataType Dtype);
Expr makeBinary(BinOpKind Op, Expr LHS, Expr RHS);
Expr makeUnary(UnOpKind Op, Expr Operand);
Expr makeIfExpr(Expr Cond, Expr Then, Expr Else);
Expr makeCast(DataType Dtype, Expr Operand);

Expr makeAdd(Expr L, Expr R);
Expr makeSub(Expr L, Expr R);
Expr makeMul(Expr L, Expr R);
Expr makeRealDiv(Expr L, Expr R);
Expr makeFloorDiv(Expr L, Expr R);
Expr makeMod(Expr L, Expr R);
Expr makeMin(Expr L, Expr R);
Expr makeMax(Expr L, Expr R);
Expr makeLT(Expr L, Expr R);
Expr makeLE(Expr L, Expr R);
Expr makeGT(Expr L, Expr R);
Expr makeGE(Expr L, Expr R);
Expr makeEQ(Expr L, Expr R);
Expr makeNE(Expr L, Expr R);
Expr makeLAnd(Expr L, Expr R);
Expr makeLOr(Expr L, Expr R);
Expr makeLNot(Expr X);

/// Infers the result type of \p E. Load carries its own type; Var iterators
/// are Int64; comparisons and logic are Bool; arithmetic promotes.
DataType dataTypeOf(const Expr &E);

} // namespace ft

#endif // FT_IR_EXPR_H
