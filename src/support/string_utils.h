//===- support/string_utils.h - Small string helpers ------------*- C++ -*-===//
///
/// \file
/// Minimal string formatting helpers used across the compiler. We avoid
/// <iostream> in library code; these helpers build std::strings directly.
///
//===----------------------------------------------------------------------===//

#ifndef FT_SUPPORT_STRING_UTILS_H
#define FT_SUPPORT_STRING_UTILS_H

#include <cstdint>
#include <string>
#include <vector>

namespace ft {

/// Joins \p Parts with \p Sep: join({"a","b"}, ", ") == "a, b".
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Formats a double with enough digits to round-trip (used by printers and
/// the code generator).
std::string fmtDouble(double V);

/// Escapes \p In for embedding inside a double-quoted JSON string: quotes,
/// backslashes, and every control character below 0x20 (\n, \r, \t get
/// their short forms; the rest become \u00XX). Bytes >= 0x20 pass through
/// unchanged (UTF-8 sequences survive). The one escaping path shared by
/// every JSON sink — the Chrome-trace writer, the kernel-profile snapshot,
/// and the telemetry snapshot exporter — so a hostile span or kernel-symbol
/// name cannot corrupt any of them.
std::string jsonEscape(const std::string &In);

/// Returns \p Base if unused according to \p IsUsed, otherwise the first
/// "Base.N" that is unused. Used to generate fresh variable names.
template <typename Pred>
std::string freshName(const std::string &Base, Pred IsUsed) {
  if (!IsUsed(Base))
    return Base;
  for (int I = 1;; ++I) {
    std::string Cand = Base + "." + std::to_string(I);
    if (!IsUsed(Cand))
      return Cand;
  }
}

} // namespace ft

#endif // FT_SUPPORT_STRING_UTILS_H
