//===- support/json.h - Minimal JSON document parser -------------*- C++ -*-===//
///
/// \file
/// A small recursive-descent JSON parser producing an owned DOM. The repo
/// emits JSON in several places (Chrome traces, kernel-profile snapshots,
/// BENCH_*.json, and the telemetry snapshots of serve/telemetry.h); this
/// is the consuming side, used by `ftc --top` to read telemetry snapshots
/// back and by the tests that assert every sink's escaping round-trips.
///
/// Scope: complete JSON syntax (objects, arrays, strings with escapes
/// incl. \uXXXX, numbers, true/false/null). Numbers are held as double —
/// exact for integers up to 2^53, which is why fingerprints travel as hex
/// *strings* in the telemetry schema. Errors are returned as Status
/// messages with a byte offset; no exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef FT_SUPPORT_JSON_H
#define FT_SUPPORT_JSON_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/error.h"

namespace ft::json {

/// One JSON value. Objects keep insertion order (the emitters write fixed
/// schemas; ordered iteration keeps dumps deterministic).
class Value {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool(bool Default = false) const { return isBool() ? B : Default; }
  double asNumber(double Default = 0) const {
    return isNumber() ? Num : Default;
  }
  const std::string &asString() const { return Str; }

  const std::vector<Value> &items() const { return Arr; }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Obj;
  }
  size_t size() const { return isArray() ? Arr.size() : Obj.size(); }

  /// Object member lookup; nullptr when absent or not an object.
  const Value *get(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &[Name, V] : Obj)
      if (Name == Key)
        return &V;
    return nullptr;
  }

  /// Dotted-path lookup through nested objects: at("warm.jit_fraction").
  const Value *at(const std::string &DottedPath) const;

  /// Convenience: number at \p Key, or \p Default when absent/mistyped.
  double num(const std::string &Key, double Default = 0) const {
    const Value *V = get(Key);
    return V ? V->asNumber(Default) : Default;
  }
  /// Convenience: string at \p Key, or "" when absent/mistyped.
  const std::string &str(const std::string &Key) const {
    static const std::string Empty;
    const Value *V = get(Key);
    return V && V->isString() ? V->Str : Empty;
  }

private:
  friend class Parser;
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;
};

/// Parses \p Text as one JSON document (trailing whitespace allowed,
/// trailing garbage is an error). Error statuses carry a byte offset.
Result<Value> parse(const std::string &Text);

/// Parses the file at \p Path. Error on unreadable file or invalid JSON.
Result<Value> parseFile(const std::string &Path);

} // namespace ft::json

#endif // FT_SUPPORT_JSON_H
