//===- support/error.cpp --------------------------------------------------===//

#include "support/error.h"

#include <cstdio>

void ft::reportFatal(const std::string &Msg, const char *File, int Line) {
  std::fprintf(stderr, "fatal error at %s:%d: %s\n", File, Line, Msg.c_str());
  std::fflush(stderr);
  std::abort();
}
