//===- support/stats.h - Compiler self-measurement counters ------*- C++ -*-===//
///
/// \file
/// Process-wide counters for the dependence-query engine: how many queries
/// the schedule legality checks issue, how often the memoized emptiness
/// cache and the interval/GCD pre-filter answer them without running
/// Fourier–Motzkin, and how often a Schedule reuses its cached DepAnalyzer
/// instead of re-collecting accesses.
///
/// The counters are always maintained (relaxed atomics; the increment is
/// cheap next to any query they count). When the environment variable
/// FT_STATS=1 is set, a summary is printed to stderr at process exit.
///
/// The layer also hosts the acceleration bypass switch used by the
/// differential tests and benchmarks: with the bypass on, AffineSet
/// emptiness runs the raw Fourier–Motzkin path (no canonicalization, no
/// pre-filter, no memoization) and Schedule rebuilds a DepAnalyzer per
/// primitive, reproducing the pre-acceleration behaviour bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef FT_SUPPORT_STATS_H
#define FT_SUPPORT_STATS_H

#include <cstdint>
#include <cstdio>

#include "support/metrics.h"

namespace ft::stats {

/// The dependence-engine counter block. Since the observability layer
/// landed, each member is a reference into the process-wide metrics
/// registry (support/metrics.h) under the "deps/" prefix, so FT_METRICS=1
/// and ft::trace::snapshot() see these counters alongside everything else;
/// the member API (fetch_add/load, assignment from 0) is unchanged from
/// the original raw-atomic block, so call sites did not move.
struct Counters {
  /// DepAnalyzer::mayDepend calls (one legality micro-question each).
  metrics::Counter &DepQueries;
  /// Pair sets actually constructed (not filtered out earlier).
  metrics::Counter &PairSetsBuilt;
  /// AffineSet::isEmpty calls.
  metrics::Counter &EmptinessQueries;
  /// Emptiness answered from the process-wide memo cache.
  metrics::Counter &EmptinessCacheHits;
  /// Emptiness that had to be computed (then inserted into the cache).
  metrics::Counter &EmptinessCacheMisses;
  /// Pre-filter proved the system empty (interval/GCD contradiction).
  metrics::Counter &PrefilterEmpty;
  /// Pre-filter exhibited an integer witness point (obviously feasible).
  metrics::Counter &PrefilterFeasible;
  /// Canonicalization alone decided the query (single-constraint
  /// contradiction or empty system).
  metrics::Counter &CanonicalDecided;
  /// Fourier–Motzkin variable eliminations performed.
  metrics::Counter &FmEliminations;
  /// DepAnalyzer constructions (each collects all accesses).
  metrics::Counter &AnalyzerBuilds;
  /// Schedule legality checks served by a cached DepAnalyzer.
  metrics::Counter &AnalyzerReuses;
  /// Per-access-point domain constraint sets served from cache.
  metrics::Counter &DomainCacheHits;
  metrics::Counter &DomainCacheMisses;

  Counters();
};

/// The process-wide counter block. First use arms the FT_STATS=1 atexit
/// dump.
Counters &counters();

/// True when FT_STATS=1 (checked once).
bool enabled();

/// Prints the summary table to \p Out (stderr when null).
void dump(std::FILE *Out = nullptr);

/// Resets every counter to zero (tests and benchmarks).
void reset();

/// Global switch disabling every acceleration layer (memoized emptiness,
/// canonicalization, pre-filter, analyzer reuse). Used by the differential
/// soundness tests and the before/after benchmarks.
void setAccelerationBypass(bool Bypass);
bool accelerationBypassed();

/// RAII helper: bypasses acceleration for one scope.
struct BypassGuard {
  explicit BypassGuard(bool Bypass = true) : Saved(accelerationBypassed()) {
    setAccelerationBypass(Bypass);
  }
  ~BypassGuard() { setAccelerationBypass(Saved); }
  BypassGuard(const BypassGuard &) = delete;
  BypassGuard &operator=(const BypassGuard &) = delete;

private:
  bool Saved;
};

/// Clears the process-wide emptiness memo cache (defined in
/// math/affine_set.cpp; exposed here so benchmarks can measure cold-cache
/// behaviour).
void clearEmptinessCache();

} // namespace ft::stats

#endif // FT_SUPPORT_STATS_H
