//===- support/stats.h - Compiler self-measurement counters ------*- C++ -*-===//
///
/// \file
/// Process-wide counters for the dependence-query engine: how many queries
/// the schedule legality checks issue, how often the memoized emptiness
/// cache and the interval/GCD pre-filter answer them without running
/// Fourier–Motzkin, and how often a Schedule reuses its cached DepAnalyzer
/// instead of re-collecting accesses.
///
/// The counters are always maintained (relaxed atomics; the increment is
/// cheap next to any query they count). When the environment variable
/// FT_STATS=1 is set, a summary is printed to stderr at process exit.
///
/// The layer also hosts the acceleration bypass switch used by the
/// differential tests and benchmarks: with the bypass on, AffineSet
/// emptiness runs the raw Fourier–Motzkin path (no canonicalization, no
/// pre-filter, no memoization) and Schedule rebuilds a DepAnalyzer per
/// primitive, reproducing the pre-acceleration behaviour bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef FT_SUPPORT_STATS_H
#define FT_SUPPORT_STATS_H

#include <atomic>
#include <cstdint>
#include <cstdio>

namespace ft::stats {

struct Counters {
  /// DepAnalyzer::mayDepend calls (one legality micro-question each).
  std::atomic<uint64_t> DepQueries{0};
  /// Pair sets actually constructed (not filtered out earlier).
  std::atomic<uint64_t> PairSetsBuilt{0};
  /// AffineSet::isEmpty calls.
  std::atomic<uint64_t> EmptinessQueries{0};
  /// Emptiness answered from the process-wide memo cache.
  std::atomic<uint64_t> EmptinessCacheHits{0};
  /// Emptiness that had to be computed (then inserted into the cache).
  std::atomic<uint64_t> EmptinessCacheMisses{0};
  /// Pre-filter proved the system empty (interval/GCD contradiction).
  std::atomic<uint64_t> PrefilterEmpty{0};
  /// Pre-filter exhibited an integer witness point (obviously feasible).
  std::atomic<uint64_t> PrefilterFeasible{0};
  /// Canonicalization alone decided the query (single-constraint
  /// contradiction or empty system).
  std::atomic<uint64_t> CanonicalDecided{0};
  /// Fourier–Motzkin variable eliminations performed.
  std::atomic<uint64_t> FmEliminations{0};
  /// DepAnalyzer constructions (each collects all accesses).
  std::atomic<uint64_t> AnalyzerBuilds{0};
  /// Schedule legality checks served by a cached DepAnalyzer.
  std::atomic<uint64_t> AnalyzerReuses{0};
  /// Per-access-point domain constraint sets served from cache.
  std::atomic<uint64_t> DomainCacheHits{0};
  std::atomic<uint64_t> DomainCacheMisses{0};
};

/// The process-wide counter block. First use arms the FT_STATS=1 atexit
/// dump.
Counters &counters();

/// True when FT_STATS=1 (checked once).
bool enabled();

/// Prints the summary table to \p Out (stderr when null).
void dump(std::FILE *Out = nullptr);

/// Resets every counter to zero (tests and benchmarks).
void reset();

/// Global switch disabling every acceleration layer (memoized emptiness,
/// canonicalization, pre-filter, analyzer reuse). Used by the differential
/// soundness tests and the before/after benchmarks.
void setAccelerationBypass(bool Bypass);
bool accelerationBypassed();

/// RAII helper: bypasses acceleration for one scope.
struct BypassGuard {
  explicit BypassGuard(bool Bypass = true) : Saved(accelerationBypassed()) {
    setAccelerationBypass(Bypass);
  }
  ~BypassGuard() { setAccelerationBypass(Saved); }
  BypassGuard(const BypassGuard &) = delete;
  BypassGuard &operator=(const BypassGuard &) = delete;

private:
  bool Saved;
};

/// Clears the process-wide emptiness memo cache (defined in
/// math/affine_set.cpp; exposed here so benchmarks can measure cold-cache
/// behaviour).
void clearEmptinessCache();

} // namespace ft::stats

#endif // FT_SUPPORT_STATS_H
