//===- support/string_utils.cpp -------------------------------------------===//

#include "support/string_utils.h"

#include <cmath>
#include <cstdio>

using namespace ft;

std::string ft::join(const std::vector<std::string> &Parts,
                     const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I > 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string ft::fmtDouble(double V) {
  if (std::isinf(V))
    return V > 0 ? "INFINITY" : "(-INFINITY)";
  if (std::isnan(V))
    return "NAN";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}
