//===- support/string_utils.cpp -------------------------------------------===//

#include "support/string_utils.h"

#include <cmath>
#include <cstdio>

using namespace ft;

std::string ft::join(const std::vector<std::string> &Parts,
                     const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I > 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string ft::jsonEscape(const std::string &In) {
  std::string Out;
  Out.reserve(In.size() + 2);
  for (char C : In) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string ft::fmtDouble(double V) {
  if (std::isinf(V))
    return V > 0 ? "INFINITY" : "(-INFINITY)";
  if (std::isnan(V))
    return "NAN";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}
