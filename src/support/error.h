//===- support/error.h - Error handling primitives --------------*- C++ -*-===//
//
// Part of the FreeTensor reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic-error helpers (assertions, unreachable) and recoverable-error
/// types (Status / Result). Following the compilers-pl guides we use neither
/// exceptions nor RTTI: user-facing fallible operations (e.g. an illegal
/// schedule transformation) return a Status or Result<T> carrying a message.
///
//===----------------------------------------------------------------------===//

#ifndef FT_SUPPORT_ERROR_H
#define FT_SUPPORT_ERROR_H

#include <cassert>
#include <cstdlib>
#include <string>
#include <utility>

namespace ft {

/// Prints the message to stderr and aborts. Used for violated internal
/// invariants that must be caught even in release builds.
[[noreturn]] void reportFatal(const std::string &Msg, const char *File,
                              int Line);

/// Marks a point in the program that must never be reached.
#define ftUnreachable(MSG) ::ft::reportFatal((MSG), __FILE__, __LINE__)

/// Asserts an internal invariant with a message in all build types.
#define ftAssert(COND, MSG)                                                    \
  do {                                                                         \
    if (!(COND))                                                               \
      ::ft::reportFatal(std::string("assertion failed: ") + #COND + ": " +     \
                            (MSG),                                             \
                        __FILE__, __LINE__);                                   \
  } while (false)

/// Outcome of a fallible operation: success, or an error message intended for
/// the user (e.g. "invalid schedule: loop-carried dependence on `a`").
///
/// A Status is cheap to copy and implicitly convertible to bool
/// (true == success), mirroring the common `if (auto Err = ...)` idiom with
/// the opposite polarity for readability at call sites:
/// \code
///   if (Status S = sched.fuse(a, b); !S)
///     report(S.message());
/// \endcode
class Status {
public:
  /// Constructs a success status.
  Status() = default;

  /// Constructs an error status carrying \p Msg.
  static Status error(std::string Msg) { return Status(std::move(Msg)); }

  /// Constructs a success status (explicit spelling).
  static Status success() { return Status(); }

  /// Returns true on success.
  bool ok() const { return Ok; }
  explicit operator bool() const { return Ok; }

  /// Returns the error message; empty on success.
  const std::string &message() const { return Msg; }

private:
  explicit Status(std::string Msg) : Ok(false), Msg(std::move(Msg)) {}

  bool Ok = true;
  std::string Msg;
};

/// A value of type T or an error message. Like llvm::Expected but without
/// the must-check machinery (we are exception-free; callers test `ok()`).
template <typename T> class Result {
public:
  /// Constructs a success result holding \p Value.
  Result(T Value) : Value(std::move(Value)) {}

  /// Constructs an error result from a failed Status.
  Result(Status S) : Err(std::move(S)) {
    ftAssert(!Err.ok(), "Result constructed from a success Status");
  }

  /// Constructs an error result carrying \p Msg.
  static Result<T> error(std::string Msg) {
    return Result<T>(Status::error(std::move(Msg)));
  }

  /// Returns true if a value is present.
  bool ok() const { return Err.ok(); }
  explicit operator bool() const { return ok(); }

  /// Returns the error message; empty on success.
  const std::string &message() const { return Err.message(); }

  /// Returns the underlying Status (success iff a value is present).
  const Status &status() const { return Err; }

  /// Accesses the held value. Asserts on error results.
  T &operator*() {
    ftAssert(ok(), "dereferencing an error Result: " + message());
    return Value;
  }
  const T &operator*() const {
    ftAssert(ok(), "dereferencing an error Result: " + message());
    return Value;
  }
  T *operator->() { return &operator*(); }
  const T *operator->() const { return &operator*(); }

private:
  T Value{};
  Status Err;
};

} // namespace ft

#endif // FT_SUPPORT_ERROR_H
