//===- support/trace.h - Compiler-wide tracing & audit log -------*- C++ -*-===//
///
/// \file
/// The observability layer: RAII spans with nesting, wall-clock timing and
/// key/value annotations, threaded through every stage of the pipeline
/// (frontend lowering, IR passes, schedule primitives, the auto-scheduler,
/// codegen, the JIT and kernel execution), plus the *schedule decision
/// audit log* recording every primitive tried, whether it applied, and the
/// legality reason when it was rejected.
///
/// Span taxonomy (documented in DESIGN.md §9): names are
/// `<layer>/<detail>` with layers `frontend/`, `pass/`, `schedule/`,
/// `autoschedule/`, `autodiff/`, `codegen/`, `rt/`.
///
/// Sinks:
///   FT_TRACE=out.json   write Chrome trace-event JSON at process exit
///                       (loadable in chrome://tracing or Perfetto)
///   FT_METRICS=1        print a hierarchical span summary + every
///                       registered metrics counter at process exit
///                       (subsumes the legacy FT_STATS table)
///   ft::trace::snapshot()  programmatic access for tests and benches
///
/// Cost model: when disabled (the default), constructing a span is one
/// relaxed atomic load and one branch — no allocation, no clock read — so
/// instrumented hot paths are unaffected. When enabled, spans pay one
/// clock read at open/close and one mutex-guarded push at close.
///
//===----------------------------------------------------------------------===//

#ifndef FT_SUPPORT_TRACE_H
#define FT_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "support/error.h"

namespace ft::trace {

namespace detail {
extern std::atomic<bool> Enabled;
extern std::atomic<bool> AuditOn;
} // namespace detail

/// True when span recording is on (FT_TRACE / FT_METRICS at startup, or
/// setEnabled). The single relaxed load on every instrumentation site.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

/// Programmatic switch (tests, benches). Does not arm the atexit sinks;
/// use snapshot()/writeChromeTrace() to consume what was recorded.
void setEnabled(bool On);

/// True when schedule decisions are being appended to the audit log
/// (follows enabled(), or forced by setAuditEnabled — the auto-scheduler
/// forces it for the duration of its run to compute per-rule tallies).
inline bool auditEnabled() {
  return enabled() || detail::AuditOn.load(std::memory_order_relaxed);
}

void setAuditEnabled(bool On);

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

/// One completed span, as returned by snapshot().
struct SpanEvent {
  std::string Name; ///< e.g. "pass/simplify".
  std::vector<std::pair<std::string, std::string>> Args;
  double StartUs = 0; ///< Microseconds since the trace epoch.
  double DurUs = 0;   ///< Wall-clock duration in microseconds.
  int Tid = 0;        ///< Small per-thread index (0 = first seen).
  int Depth = 0;      ///< Nesting depth on its thread when opened.
  uint64_t Seq = 0;   ///< Global completion order.
};

/// RAII span. Inert (no allocation, no clock read) unless enabled() was
/// true at construction.
class Span {
public:
  explicit Span(const char *Name) {
    if (enabled())
      open(Name);
  }
  explicit Span(const std::string &Name) {
    if (enabled())
      open(Name.c_str());
  }
  ~Span() {
    if (Active)
      close();
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// True when this span is recording (callers gate expensive annotation
  /// computation — e.g. IR node counts — on this).
  bool active() const { return Active; }

  /// Attaches a key/value annotation; exported into the JSON sink's
  /// "args" object. No-op when inactive.
  void annotate(const std::string &Key, std::string Value) {
    if (Active)
      Args.emplace_back(Key, std::move(Value));
  }
  void annotate(const std::string &Key, uint64_t Value) {
    if (Active)
      Args.emplace_back(Key, std::to_string(Value));
  }
  void annotate(const std::string &Key, int64_t Value) {
    if (Active)
      Args.emplace_back(Key, std::to_string(Value));
  }
  void annotate(const std::string &Key, double Value);

private:
  void open(const char *Name);
  void close();

  bool Active = false;
  int Depth = 0;
  double StartUs = 0;
  std::string Name;
  std::vector<std::pair<std::string, std::string>> Args;
};

//===----------------------------------------------------------------------===//
// Flow events (cross-thread correlation arrows)
//===----------------------------------------------------------------------===//

/// One flow event: a point on a named, id-keyed arrow the Chrome trace
/// viewer draws between the slices the points land inside. The serving
/// runtime emits one flow per request id — start ('s') inside the
/// submit-side enqueue span, step ('t') inside the worker's serve/request
/// span, finish ('f') inside the background serve/compile span — so
/// Perfetto can follow a cold request from enqueue to the deduplicated
/// compile it triggered.
struct FlowEvent {
  std::string Name; ///< Arrow name, e.g. "serve/req".
  uint64_t Id = 0;  ///< Binds the points of one arrow (the request id).
  char Phase = 's'; ///< 's' start, 't' step, 'f' finish.
  double TsUs = 0;  ///< Microseconds since the trace epoch.
  int Tid = 0;      ///< Same thread index space as SpanEvent::Tid.
  uint64_t Seq = 0; ///< Global emission order.
};

/// Appends one flow point at the current time on the current thread
/// (no-op when disabled). Chrome binds a flow point to the innermost
/// enclosing slice on its thread, so call this while the span the arrow
/// should attach to is open.
void emitFlow(const char *Name, uint64_t Id, char Phase);

#define FT_SPAN_CONCAT_IMPL(A, B) A##B
#define FT_SPAN_CONCAT(A, B) FT_SPAN_CONCAT_IMPL(A, B)
/// Opens an anonymous RAII span for the enclosing scope.
#define FT_SPAN(NAME)                                                          \
  ::ft::trace::Span FT_SPAN_CONCAT(FtSpan_, __COUNTER__)(NAME)

//===----------------------------------------------------------------------===//
// Schedule decision audit log
//===----------------------------------------------------------------------===//

/// One schedule-primitive attempt: applied or rejected, with the legality
/// reason and the dependence-engine work the check cost.
struct ScheduleDecision {
  std::string Primitive; ///< e.g. "reorder".
  std::string Target;    ///< Operand summary, e.g. "loops [3, 5]".
  bool Applied = false;
  std::string Reason; ///< Rejection diagnostic; empty when applied.
  uint64_t DepQueries = 0;       ///< mayDepend calls the check issued.
  uint64_t EmptinessQueries = 0; ///< AffineSet::isEmpty calls issued.
  double DurUs = 0;              ///< Wall-clock microseconds.
  double TsUs = 0; ///< Microseconds since the trace epoch (stamped by
                   ///< recordDecision).
  /// Statements this primitive targeted or created (targets first, then
  /// new ids). Statement ids are globally unique, so the kernel profiler's
  /// source map joins report rows to the decisions that shaped them
  /// through this field.
  std::vector<int64_t> StmtIds;
};

/// Appends \p D to the audit log (no-op unless auditEnabled()).
void recordDecision(ScheduleDecision D);

/// Number of decisions recorded so far (use with auditLogSince to scope a
/// range, e.g. one auto-schedule rule pass).
size_t auditSize();

/// Copy of the audit log entries from index \p From to the end.
std::vector<ScheduleDecision> auditLogSince(size_t From);

/// Copy of the whole audit log.
std::vector<ScheduleDecision> auditLog();

/// Instruments one schedule primitive: opens a "schedule/<primitive>"
/// span, captures the dependence-counter baseline, and on finish() records
/// the ScheduleDecision (applied/rejected + reason + counter deltas) and
/// mirrors it onto the span's annotations.
///
/// Usage (the wrapper pattern in schedule.cpp):
/// \code
///   Status Schedule::reorder(const std::vector<int64_t> &Order) {
///     trace::ScheduleAudit A("reorder", fmtIds(Order));
///     return A.finish(reorderImpl(Order));
///   }
/// \endcode
class ScheduleAudit {
public:
  /// \p Target is only evaluated by callers when cheap; pass an empty
  /// string when there is no useful operand summary.
  ScheduleAudit(const char *Primitive, std::string Target);
  ~ScheduleAudit();

  ScheduleAudit(const ScheduleAudit &) = delete;
  ScheduleAudit &operator=(const ScheduleAudit &) = delete;

  /// Records the outcome and passes the status through.
  Status finish(Status S) {
    finishImpl(S);
    return S;
  }

  /// Records the outcome of a Result-returning primitive.
  template <typename T> Result<T> finish(Result<T> R) {
    finishImpl(R.status());
    return R;
  }

  /// Appends statement ids to the decision's provenance set (targets
  /// first, then ids of statements the primitive created). Negative ids
  /// (the "no second loop" convention of SplitIds) are skipped. No-op
  /// unless the audit is armed; call before finish().
  void noteStmtIds(std::initializer_list<int64_t> Ids) {
    if (!Armed)
      return;
    for (int64_t Id : Ids)
      if (Id >= 0)
        StmtIds.push_back(Id);
  }
  void noteStmtIds(const std::vector<int64_t> &Ids) {
    if (!Armed)
      return;
    for (int64_t Id : Ids)
      if (Id >= 0)
        StmtIds.push_back(Id);
  }

private:
  void finishImpl(const Status &S);

  Span Sp;
  bool Armed = false;
  bool Finished = false;
  const char *Primitive;
  std::string Target;
  double StartUs = 0;
  uint64_t DepQ0 = 0;
  uint64_t EmptyQ0 = 0;
  std::vector<int64_t> StmtIds;
};

//===----------------------------------------------------------------------===//
// Sinks
//===----------------------------------------------------------------------===//

/// Everything recorded so far: completed spans (in completion order), the
/// audit log, and a snapshot of every metrics counter.
struct Snapshot {
  std::vector<SpanEvent> Spans;
  std::vector<FlowEvent> Flows;
  std::vector<ScheduleDecision> Audit;
  std::vector<std::pair<std::string, uint64_t>> Counters;
};

Snapshot snapshot();

/// Microseconds since the trace epoch — the clock SpanEvent timestamps
/// are expressed in. For layers that build SpanEvents by hand (emitSpan).
double nowMicros();

/// Appends a pre-built span to the recorded stream (no-op when disabled).
/// Fill Name/Args/StartUs/DurUs/Depth; Tid and Seq are stamped here. Used
/// by layers that reconstruct timing from outside sources — the kernel
/// profiler synthesizes per-loop spans from the counters a generated
/// kernel reports, so they nest under the rt/kernel span in the Chrome
/// trace.
void emitSpan(SpanEvent E);

/// Discards recorded spans and audit entries (counters are left alone; use
/// metrics::resetAll for those).
void clear();

/// Writes the recorded spans + audit log as a Chrome trace-event JSON file
/// (the `{"traceEvents": [...]}` schema; see DESIGN.md §9). Spans become
/// complete ("ph":"X") events; audit entries become instant ("ph":"i")
/// events in category "audit"; flow points become "ph":"s"/"t"/"f" events
/// in category "flow" (finish points carry "bp":"e" so they bind to their
/// enclosing slice, not the next one).
Status writeChromeTrace(const std::string &Path);

/// Prints the hierarchical span summary and all metrics counters to \p Out
/// (stderr when null). This is the FT_METRICS=1 atexit sink.
void writeMetricsSummary(std::FILE *Out = nullptr);

/// RAII: enables span recording (and with \p Audit also decision
/// recording) for one scope, restoring the previous flags after.
struct EnabledGuard {
  explicit EnabledGuard(bool On = true, bool Audit = true)
      : SavedEnabled(enabled()),
        SavedAudit(detail::AuditOn.load(std::memory_order_relaxed)) {
    setEnabled(On);
    setAuditEnabled(Audit);
  }
  ~EnabledGuard() {
    setEnabled(SavedEnabled);
    setAuditEnabled(SavedAudit);
  }
  EnabledGuard(const EnabledGuard &) = delete;
  EnabledGuard &operator=(const EnabledGuard &) = delete;

private:
  bool SavedEnabled;
  bool SavedAudit;
};

/// RAII: forces audit-log collection only (spans untouched). Used by the
/// auto-scheduler to compute per-rule tallies even when tracing is off.
struct AuditGuard {
  explicit AuditGuard(bool On = true)
      : Saved(detail::AuditOn.load(std::memory_order_relaxed)) {
    setAuditEnabled(On);
  }
  ~AuditGuard() { setAuditEnabled(Saved); }
  AuditGuard(const AuditGuard &) = delete;
  AuditGuard &operator=(const AuditGuard &) = delete;

private:
  bool Saved;
};

} // namespace ft::trace

#endif // FT_SUPPORT_TRACE_H
