//===- support/metrics.cpp ------------------------------------------------===//

#include "support/metrics.h"

#include <map>
#include <memory>
#include <mutex>

namespace ft::metrics {

namespace {

struct Registry {
  std::mutex M;
  /// Keyed by name; unique_ptr keeps Counter addresses stable across
  /// rehashing so counter() references never dangle.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
};

/// Leaked on purpose: counters may be touched from atexit sinks, which can
/// run after static destructors of other translation units.
Registry &registry() {
  static Registry *R = new Registry;
  return *R;
}

} // namespace

Counter &counter(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = R.Counters.find(Name);
  if (It == R.Counters.end())
    It = R.Counters.emplace(Name, std::unique_ptr<Counter>(new Counter(Name)))
             .first;
  return *It->second;
}

std::vector<std::pair<std::string, uint64_t>> snapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(R.Counters.size());
  for (const auto &[Name, C] : R.Counters)
    Out.emplace_back(Name, C->load());
  return Out;
}

void resetAll() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  for (auto &[Name, C] : R.Counters)
    C->store(0);
}

} // namespace ft::metrics
