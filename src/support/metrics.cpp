//===- support/metrics.cpp ------------------------------------------------===//

#include "support/metrics.h"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>

namespace ft::metrics {

namespace {

struct Registry {
  std::mutex M;
  /// Keyed by name; unique_ptr keeps metric addresses stable across
  /// rehashing so counter()/histogram() references never dangle.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// Leaked on purpose: metrics may be touched from atexit sinks, which can
/// run after static destructors of other translation units.
Registry &registry() {
  static Registry *R = new Registry;
  return *R;
}

bool startsWith(const std::string &S, const std::string &Prefix) {
  return S.compare(0, Prefix.size(), Prefix) == 0;
}

} // namespace

Counter &counter(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = R.Counters.find(Name);
  if (It == R.Counters.end())
    It = R.Counters.emplace(Name, std::unique_ptr<Counter>(new Counter(Name)))
             .first;
  return *It->second;
}

std::vector<std::pair<std::string, uint64_t>> snapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(R.Counters.size());
  for (const auto &[Name, C] : R.Counters)
    Out.emplace_back(Name, C->load());
  return Out;
}

void resetAll() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  for (auto &[Name, C] : R.Counters)
    C->store(0);
  for (auto &[Name, H] : R.Histograms)
    H->reset();
}

void resetPrefix(const std::string &Prefix) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  for (auto &[Name, C] : R.Counters)
    if (startsWith(Name, Prefix))
      C->store(0);
  for (auto &[Name, H] : R.Histograms)
    if (startsWith(Name, Prefix))
      H->reset();
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

uint64_t HistogramSnapshot::bucketHi(int I) {
  if (I <= 0)
    return 1; // bucket 0 holds exactly zero: [0, 1)
  if (I >= kBuckets - 1)
    return UINT64_MAX;
  return uint64_t(1) << I;
}

double HistogramSnapshot::quantile(double Q) const {
  if (Count == 0)
    return 0.0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  // Same rank convention as Sorted[size_t(Q * (n - 1))] on a sample
  // vector, so differential tests against raw timestamps line up.
  double Rank = Q * double(Count - 1);
  uint64_t Cum = 0;
  for (int I = 0; I < kBuckets; ++I) {
    if (Buckets[I] == 0)
      continue;
    if (Rank < double(Cum + Buckets[I])) {
      double Est;
      if (I == 0) {
        Est = 0.0;
      } else {
        double Frac = (Rank - double(Cum)) / double(Buckets[I]);
        if (Frac < 0)
          Frac = 0;
        if (Frac > 1)
          Frac = 1;
        // Geometric interpolation: bucket spans [2^(i-1), 2^i).
        Est = std::ldexp(1.0, I - 1) * std::exp2(Frac);
      }
      // Clamp to the observed range: a single-valued distribution
      // estimates exactly, and estimates never leave the data.
      double Lo = double(Min), Hi = double(Max);
      if (Est < Lo)
        Est = Lo;
      if (Est > Hi)
        Est = Hi;
      return Est;
    }
    Cum += Buckets[I];
  }
  return double(Max);
}

void HistogramSnapshot::merge(const HistogramSnapshot &Other) {
  if (Other.Count == 0)
    return;
  if (Count == 0) {
    Min = Other.Min;
    Max = Other.Max;
  } else {
    if (Other.Min < Min)
      Min = Other.Min;
    if (Other.Max > Max)
      Max = Other.Max;
  }
  Count += Other.Count;
  Sum += Other.Sum;
  for (int I = 0; I < kBuckets; ++I)
    Buckets[I] += Other.Buckets[I];
}

void HistogramSnapshot::add(uint64_t V) {
  ++Buckets[bucketOf(V)];
  if (Count == 0) {
    Min = V;
    Max = V;
  } else {
    if (V < Min)
      Min = V;
    if (V > Max)
      Max = V;
  }
  ++Count;
  Sum += V;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot S;
  S.Name = Name;
  S.Count = Cnt.load(std::memory_order_relaxed);
  S.Sum = Total.load(std::memory_order_relaxed);
  uint64_t Mn = MinV.load(std::memory_order_relaxed);
  S.Min = (S.Count == 0 || Mn == UINT64_MAX) ? 0 : Mn;
  S.Max = MaxV.load(std::memory_order_relaxed);
  for (int I = 0; I < kBuckets; ++I)
    S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
  return S;
}

void Histogram::reset() {
  for (int I = 0; I < kBuckets; ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
  Cnt.store(0, std::memory_order_relaxed);
  Total.store(0, std::memory_order_relaxed);
  MinV.store(UINT64_MAX, std::memory_order_relaxed);
  MaxV.store(0, std::memory_order_relaxed);
}

Histogram &histogram(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = R.Histograms.find(Name);
  if (It == R.Histograms.end())
    It = R.Histograms
             .emplace(Name, std::unique_ptr<Histogram>(new Histogram(Name)))
             .first;
  return *It->second;
}

std::vector<HistogramSnapshot> snapshotHistograms() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  std::vector<HistogramSnapshot> Out;
  Out.reserve(R.Histograms.size());
  for (const auto &[Name, H] : R.Histograms)
    Out.push_back(H->snapshot());
  return Out;
}

} // namespace ft::metrics
