//===- support/stats.cpp --------------------------------------------------===//

#include "support/stats.h"

#include <cstdlib>
#include <mutex>

namespace ft::stats {

namespace {

std::atomic<bool> Bypass{false};

void dumpAtExit() { dump(); }

} // namespace

bool enabled() {
  static const bool E = [] {
    const char *V = std::getenv("FT_STATS");
    return V != nullptr && V[0] == '1';
  }();
  return E;
}

Counters::Counters()
    : DepQueries(metrics::counter("deps/dep_queries")),
      PairSetsBuilt(metrics::counter("deps/pair_sets_built")),
      EmptinessQueries(metrics::counter("deps/emptiness_queries")),
      EmptinessCacheHits(metrics::counter("deps/emptiness_cache_hits")),
      EmptinessCacheMisses(metrics::counter("deps/emptiness_cache_misses")),
      PrefilterEmpty(metrics::counter("deps/prefilter_empty")),
      PrefilterFeasible(metrics::counter("deps/prefilter_feasible")),
      CanonicalDecided(metrics::counter("deps/canonical_decided")),
      FmEliminations(metrics::counter("deps/fm_eliminations")),
      AnalyzerBuilds(metrics::counter("deps/analyzer_builds")),
      AnalyzerReuses(metrics::counter("deps/analyzer_reuses")),
      DomainCacheHits(metrics::counter("deps/domain_cache_hits")),
      DomainCacheMisses(metrics::counter("deps/domain_cache_misses")) {}

Counters &counters() {
  // Leaked so atexit sinks (FT_STATS, FT_METRICS) can never observe a
  // destroyed block; the underlying storage lives in the metrics registry,
  // which is likewise leaked.
  static Counters *C = new Counters;
  static std::once_flag Armed;
  std::call_once(Armed, [] {
    if (enabled())
      std::atexit(dumpAtExit);
  });
  return *C;
}

void dump(std::FILE *Out) {
  if (!Out)
    Out = stderr;
  Counters &C = counters();
  auto V = [](const metrics::Counter &A) {
    return static_cast<unsigned long long>(A.load(std::memory_order_relaxed));
  };
  uint64_t Hits = C.EmptinessCacheHits.load(std::memory_order_relaxed);
  uint64_t Misses = C.EmptinessCacheMisses.load(std::memory_order_relaxed);
  double HitRate =
      Hits + Misses == 0 ? 0.0 : 100.0 * double(Hits) / double(Hits + Misses);
  std::fprintf(Out, "=== FT_STATS: dependence-query engine ===\n");
  std::fprintf(Out, "dep queries (mayDepend):     %llu\n", V(C.DepQueries));
  std::fprintf(Out, "pair sets built:             %llu\n",
               V(C.PairSetsBuilt));
  std::fprintf(Out, "emptiness queries:           %llu\n",
               V(C.EmptinessQueries));
  std::fprintf(Out,
               "  memo cache: %llu hits / %llu misses (%.1f%% hit rate)\n",
               (unsigned long long)Hits, (unsigned long long)Misses, HitRate);
  std::fprintf(Out, "  canonicalization decided:  %llu\n",
               V(C.CanonicalDecided));
  std::fprintf(Out, "  pre-filter: %llu proved empty, %llu witnessed "
                    "feasible\n",
               V(C.PrefilterEmpty), V(C.PrefilterFeasible));
  std::fprintf(Out, "FM variable eliminations:    %llu\n",
               V(C.FmEliminations));
  std::fprintf(Out, "analyzers: %llu built, %llu reused\n",
               V(C.AnalyzerBuilds), V(C.AnalyzerReuses));
  std::fprintf(Out, "domain sets: %llu cached hits / %llu misses\n",
               V(C.DomainCacheHits), V(C.DomainCacheMisses));
  std::fflush(Out);
}

void reset() {
  // The counters are plain registry entries under "deps/" — there is no
  // second storage path to clear, so reset is a registry prefix reset (the
  // single-source-of-truth contract of the FT_STATS -> metrics port).
  counters(); // ensure the block (and its registry entries) exist
  metrics::resetPrefix("deps/");
}

void setAccelerationBypass(bool B) {
  Bypass.store(B, std::memory_order_relaxed);
}

bool accelerationBypassed() {
  return Bypass.load(std::memory_order_relaxed);
}

} // namespace ft::stats
