//===- support/trace.cpp --------------------------------------------------===//

#include "support/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "support/metrics.h"
#include "support/stats.h"
#include "support/string_utils.h"

namespace ft::trace {

std::atomic<bool> detail::Enabled{false};
std::atomic<bool> detail::AuditOn{false};

namespace {

/// Recorded spans are capped so a long tracing session cannot exhaust
/// memory; drops are counted in the "trace/dropped_spans" metric.
constexpr size_t MaxSpans = size_t(1) << 20;

struct State {
  std::mutex M;
  std::vector<SpanEvent> Spans;
  std::vector<FlowEvent> Flows;
  std::vector<ScheduleDecision> Audit;
  std::map<std::thread::id, int> Tids;
  uint64_t NextSeq = 0;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  std::string TracePath;    ///< FT_TRACE destination ("" = none).
  bool MetricsAtExit = false; ///< FT_METRICS=1.
};

/// Leaked on purpose so the atexit sinks can never observe a destroyed
/// buffer regardless of static-destruction order across TUs.
State &state() {
  static State *S = new State;
  return *S;
}

thread_local int CurDepth = 0;

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - state().Epoch)
      .count();
}

int tidOfCurrentThread(State &S) {
  auto Id = std::this_thread::get_id();
  auto It = S.Tids.find(Id);
  if (It == S.Tids.end())
    It = S.Tids.emplace(Id, static_cast<int>(S.Tids.size())).first;
  return It->second;
}

void atExitSinks() {
  State &S = state();
  std::string Path;
  bool Metrics;
  {
    std::lock_guard<std::mutex> Lock(S.M);
    Path = S.TracePath;
    Metrics = S.MetricsAtExit;
  }
  if (!Path.empty()) {
    Status St = writeChromeTrace(Path);
    if (!St.ok())
      std::fprintf(stderr, "FT_TRACE: %s\n", St.message().c_str());
    else
      std::fprintf(stderr,
                   "FT_TRACE: wrote %s (open in chrome://tracing or "
                   "https://ui.perfetto.dev)\n",
                   Path.c_str());
  }
  if (Metrics)
    writeMetricsSummary();
}

/// Arms the sinks from the environment at static-initialization time.
/// Spans created before this TU initializes see Enabled == false (the
/// zero-initialized default) and are simply not recorded.
struct EnvInit {
  EnvInit() {
    State &S = state();
    bool Arm = false;
    if (const char *Path = std::getenv("FT_TRACE");
        Path != nullptr && Path[0] != '\0') {
      S.TracePath = Path;
      Arm = true;
    }
    if (const char *V = std::getenv("FT_METRICS");
        V != nullptr && V[0] == '1') {
      S.MetricsAtExit = true;
      Arm = true;
    }
    if (Arm) {
      detail::Enabled.store(true, std::memory_order_relaxed);
      std::atexit(atExitSinks);
    }
  }
} TheEnvInit;

/// The layer prefix of a span name ("pass/simplify" -> "pass").
std::string layerOf(const std::string &Name) {
  size_t Slash = Name.find('/');
  return Slash == std::string::npos ? std::string("misc")
                                    : Name.substr(0, Slash);
}

/// "[3, 7]" — statement-id lists in annotations and the JSON sink.
std::string fmtIdList(const std::vector<int64_t> &Ids) {
  std::string Out = "[";
  for (size_t I = 0; I < Ids.size(); ++I)
    Out += (I ? ", " : "") + std::to_string(Ids[I]);
  return Out + "]";
}

void writeArgsObject(std::FILE *F,
                     const std::vector<std::pair<std::string, std::string>>
                         &Args) {
  std::fprintf(F, "{");
  bool First = true;
  for (const auto &[K, V] : Args) {
    std::fprintf(F, "%s\"%s\":\"%s\"", First ? "" : ",",
                 jsonEscape(K).c_str(), jsonEscape(V).c_str());
    First = false;
  }
  std::fprintf(F, "}");
}

} // namespace

//===----------------------------------------------------------------------===//
// Switches
//===----------------------------------------------------------------------===//

void setEnabled(bool On) {
  detail::Enabled.store(On, std::memory_order_relaxed);
}

void setAuditEnabled(bool On) {
  detail::AuditOn.store(On, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Span
//===----------------------------------------------------------------------===//

void Span::open(const char *N) {
  Active = true;
  Name = N;
  Depth = CurDepth++;
  StartUs = nowUs();
}

void Span::close() {
  double EndUs = nowUs();
  --CurDepth;
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  if (S.Spans.size() >= MaxSpans) {
    metrics::counter("trace/dropped_spans").fetch_add(1);
    return;
  }
  SpanEvent E;
  E.Name = std::move(Name);
  E.Args = std::move(Args);
  E.StartUs = StartUs;
  E.DurUs = EndUs - StartUs;
  E.Tid = tidOfCurrentThread(S);
  E.Depth = Depth;
  E.Seq = S.NextSeq++;
  S.Spans.push_back(std::move(E));
}

void emitFlow(const char *Name, uint64_t Id, char Phase) {
  if (!enabled())
    return;
  FlowEvent E;
  E.Name = Name;
  E.Id = Id;
  E.Phase = Phase;
  E.TsUs = nowUs();
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  // Flows share the span cap: a point without its surrounding spans is
  // useless, so both stop together.
  if (S.Spans.size() + S.Flows.size() >= MaxSpans) {
    metrics::counter("trace/dropped_spans").fetch_add(1);
    return;
  }
  E.Tid = tidOfCurrentThread(S);
  E.Seq = S.NextSeq++;
  S.Flows.push_back(std::move(E));
}

void Span::annotate(const std::string &Key, double Value) {
  if (!Active)
    return;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  Args.emplace_back(Key, Buf);
}

//===----------------------------------------------------------------------===//
// Audit log
//===----------------------------------------------------------------------===//

void recordDecision(ScheduleDecision D) {
  if (!auditEnabled())
    return;
  D.TsUs = nowUs();
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  S.Audit.push_back(std::move(D));
}

size_t auditSize() {
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  return S.Audit.size();
}

std::vector<ScheduleDecision> auditLogSince(size_t From) {
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  if (From >= S.Audit.size())
    return {};
  return std::vector<ScheduleDecision>(S.Audit.begin() +
                                           static_cast<ptrdiff_t>(From),
                                       S.Audit.end());
}

std::vector<ScheduleDecision> auditLog() { return auditLogSince(0); }

ScheduleAudit::ScheduleAudit(const char *Primitive, std::string Target)
    : Sp(enabled() ? ("schedule/" + std::string(Primitive)).c_str() : ""),
      Primitive(Primitive), Target(std::move(Target)) {
  Armed = auditEnabled();
  if (!Armed)
    return;
  StartUs = nowUs();
  stats::Counters &C = stats::counters();
  DepQ0 = C.DepQueries.load();
  EmptyQ0 = C.EmptinessQueries.load();
}

ScheduleAudit::~ScheduleAudit() {
  // A primitive that returned without passing through finish() (early
  // internal exit) is still closed as a span; no decision is recorded
  // because the outcome is unknown.
}

void ScheduleAudit::finishImpl(const Status &S) {
  if (!Armed || Finished)
    return;
  Finished = true;
  stats::Counters &C = stats::counters();
  ScheduleDecision D;
  D.Primitive = Primitive;
  D.Target = Target;
  D.Applied = S.ok();
  D.Reason = S.message();
  D.DepQueries = C.DepQueries.load() - DepQ0;
  D.EmptinessQueries = C.EmptinessQueries.load() - EmptyQ0;
  D.DurUs = nowUs() - StartUs;
  D.StmtIds = std::move(StmtIds);
  if (Sp.active()) {
    Sp.annotate("target", Target);
    Sp.annotate("applied", std::string(D.Applied ? "true" : "false"));
    if (!D.Applied)
      Sp.annotate("reason", D.Reason);
    Sp.annotate("dep_queries", D.DepQueries);
    Sp.annotate("emptiness_queries", D.EmptinessQueries);
    if (!D.StmtIds.empty())
      Sp.annotate("stmt_ids", fmtIdList(D.StmtIds));
  }
  recordDecision(std::move(D));
}

//===----------------------------------------------------------------------===//
// Sinks
//===----------------------------------------------------------------------===//

Snapshot snapshot() {
  State &S = state();
  Snapshot Out;
  {
    std::lock_guard<std::mutex> Lock(S.M);
    Out.Spans = S.Spans;
    Out.Flows = S.Flows;
    Out.Audit = S.Audit;
  }
  Out.Counters = metrics::snapshot();
  return Out;
}

double nowMicros() { return nowUs(); }

void emitSpan(SpanEvent E) {
  if (!enabled())
    return;
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  if (S.Spans.size() >= MaxSpans) {
    metrics::counter("trace/dropped_spans").fetch_add(1);
    return;
  }
  E.Tid = tidOfCurrentThread(S);
  E.Seq = S.NextSeq++;
  S.Spans.push_back(std::move(E));
}

void clear() {
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  S.Spans.clear();
  S.Flows.clear();
  S.Audit.clear();
  S.NextSeq = 0;
}

Status writeChromeTrace(const std::string &Path) {
  Snapshot Snap = snapshot();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return Status::error("could not open trace file " + Path);
  std::fprintf(F, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  bool First = true;
  for (const SpanEvent &E : Snap.Spans) {
    std::fprintf(F,
                 "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                 "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":",
                 First ? "" : ",\n", jsonEscape(E.Name).c_str(),
                 jsonEscape(layerOf(E.Name)).c_str(), E.StartUs, E.DurUs,
                 E.Tid);
    std::vector<std::pair<std::string, std::string>> Args = E.Args;
    Args.emplace_back("depth", std::to_string(E.Depth));
    writeArgsObject(F, Args);
    std::fprintf(F, "}");
    First = false;
  }
  for (const FlowEvent &E : Snap.Flows) {
    std::fprintf(F,
                 "%s{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"%c\","
                 "\"id\":%llu,\"ts\":%.3f,\"pid\":1,\"tid\":%d%s}",
                 First ? "" : ",\n", jsonEscape(E.Name).c_str(), E.Phase,
                 static_cast<unsigned long long>(E.Id), E.TsUs, E.Tid,
                 E.Phase == 'f' ? ",\"bp\":\"e\"" : "");
    First = false;
  }
  for (const ScheduleDecision &D : Snap.Audit) {
    std::fprintf(F,
                 "%s{\"name\":\"%s\",\"cat\":\"audit\",\"ph\":\"i\","
                 "\"ts\":%.3f,\"s\":\"p\",\"pid\":1,\"tid\":0,\"args\":",
                 First ? "" : ",\n",
                 jsonEscape("audit/" + D.Primitive).c_str(), D.TsUs);
    std::vector<std::pair<std::string, std::string>> Args{
        {"primitive", D.Primitive},
        {"target", D.Target},
        {"applied", D.Applied ? "true" : "false"},
        {"reason", D.Reason},
        {"dep_queries", std::to_string(D.DepQueries)},
        {"emptiness_queries", std::to_string(D.EmptinessQueries)},
    };
    if (!D.StmtIds.empty())
      Args.emplace_back("stmt_ids", fmtIdList(D.StmtIds));
    writeArgsObject(F, Args);
    std::fprintf(F, "}");
    First = false;
  }
  std::fprintf(F, "\n]}\n");
  if (std::fclose(F) != 0)
    return Status::error("could not write trace file " + Path);
  return Status::success();
}

void writeMetricsSummary(std::FILE *Out) {
  if (!Out)
    Out = stderr;
  Snapshot Snap = snapshot();

  struct Agg {
    uint64_t Count = 0;
    double TotalUs = 0;
  };
  std::map<std::string, Agg> ByName;
  std::map<std::string, Agg> ByLayer;
  for (const SpanEvent &E : Snap.Spans) {
    Agg &N = ByName[E.Name];
    ++N.Count;
    N.TotalUs += E.DurUs;
    // Layer rollups count only top-of-layer time: nested spans of the same
    // layer (e.g. simplify -> const_fold) would double-count.
    Agg &L = ByLayer[layerOf(E.Name)];
    ++L.Count;
    L.TotalUs += E.DurUs;
  }

  std::fprintf(Out, "=== FT_METRICS: span summary (%zu spans) ===\n",
               Snap.Spans.size());
  std::string CurLayer;
  for (const auto &[Name, A] : ByName) {
    std::string Layer = layerOf(Name);
    if (Layer != CurLayer) {
      const Agg &L = ByLayer[Layer];
      std::fprintf(Out, "[%s]  %llu spans, %.3f ms\n", Layer.c_str(),
                   static_cast<unsigned long long>(L.Count),
                   L.TotalUs / 1e3);
      CurLayer = Layer;
    }
    std::fprintf(Out, "  %-38s %8llu x %12.3f ms\n", Name.c_str(),
                 static_cast<unsigned long long>(A.Count), A.TotalUs / 1e3);
  }

  if (!Snap.Audit.empty()) {
    struct Tally {
      uint64_t Applied = 0;
      uint64_t Rejected = 0;
    };
    std::map<std::string, Tally> Tallies;
    for (const ScheduleDecision &D : Snap.Audit) {
      Tally &T = Tallies[D.Primitive];
      ++(D.Applied ? T.Applied : T.Rejected);
    }
    std::fprintf(Out, "=== FT_METRICS: schedule decisions (%zu) ===\n",
                 Snap.Audit.size());
    for (const auto &[Prim, T] : Tallies)
      std::fprintf(Out, "  %-20s applied %6llu, rejected %6llu\n",
                   Prim.c_str(), static_cast<unsigned long long>(T.Applied),
                   static_cast<unsigned long long>(T.Rejected));
  }

  std::fprintf(Out, "=== FT_METRICS: counters ===\n");
  for (const auto &[Name, Val] : Snap.Counters)
    std::fprintf(Out, "  %-38s %llu\n", Name.c_str(),
                 static_cast<unsigned long long>(Val));
  std::fflush(Out);
}

} // namespace ft::trace
