//===- support/metrics.h - Named counter & histogram registry ----*- C++ -*-===//
///
/// \file
/// A process-wide registry of named metrics, the quantitative half of the
/// observability layer (the qualitative half — spans and the schedule
/// decision audit log — lives in support/trace.h). Two metric types:
///
///  - Counter: a monotonic uint64, one relaxed atomic add per bump.
///  - Histogram: a latency/size distribution over 64 fixed log2 buckets
///    (bucket i covers [2^(i-1), 2^i); bucket 0 is exactly zero, the last
///    bucket is open-ended), with count/sum/min/max tracked alongside so
///    snapshots can estimate p50/p95/p99 by geometric interpolation within
///    a bucket, clamped to the observed range. The record path is
///    lock-free: a handful of relaxed atomic ops, no allocation, no lock —
///    cheap enough for the serving runtime's per-request path.
///
/// Metrics are created on first use by hierarchical name
/// ("deps/dep_queries", "serve/queue_wait_ns", ...) and live for the whole
/// process; references returned by counter()/histogram() are stable, so
/// hot paths resolve their metric once and then pay only relaxed atomics.
/// The dependence-engine counters of support/stats.h are registered here,
/// which is what lets FT_METRICS=1 subsume the legacy FT_STATS output.
///
//===----------------------------------------------------------------------===//

#ifndef FT_SUPPORT_METRICS_H
#define FT_SUPPORT_METRICS_H

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ft::metrics {

/// One named counter. Obtain instances through counter(); never constructed
/// directly. The mutation API mirrors std::atomic<uint64_t> so call sites
/// ported from raw atomics (support/stats.h) compile unchanged.
class Counter {
public:
  void fetch_add(uint64_t N = 1,
                 std::memory_order O = std::memory_order_relaxed) {
    Val.fetch_add(N, O);
  }

  uint64_t load(std::memory_order O = std::memory_order_relaxed) const {
    return Val.load(O);
  }

  void store(uint64_t V,
             std::memory_order O = std::memory_order_relaxed) {
    Val.store(V, O);
  }

  /// Assignment form used by reset code (`C.DepQueries = 0`).
  Counter &operator=(uint64_t V) {
    store(V);
    return *this;
  }

  const std::string &name() const { return Name; }

  Counter(const Counter &) = delete;
  Counter &operator=(const Counter &) = delete;

private:
  friend Counter &counter(const std::string &Name);
  explicit Counter(std::string Name) : Name(std::move(Name)) {}

  std::string Name;
  std::atomic<uint64_t> Val{0};
};

/// The counter registered under \p Name; created (at zero) on first use.
/// Thread-safe; the returned reference is valid for the process lifetime.
Counter &counter(const std::string &Name);

/// Name/value pairs of every registered counter, sorted by name.
std::vector<std::pair<std::string, uint64_t>> snapshot();

/// Resets every registered counter and histogram to zero (tests and
/// benchmarks).
void resetAll();

/// Resets every counter and histogram whose name starts with \p Prefix
/// (e.g. "deps/" for the legacy FT_STATS reset, "serve/" between bench
/// phases).
void resetPrefix(const std::string &Prefix);

/// A relaxed-consistency copy of one histogram, taken by
/// Histogram::snapshot(). Also the unit the telemetry snapshot exporter
/// serializes, and what merge() combines across shards or processes.
struct HistogramSnapshot {
  static constexpr int kBuckets = 64;

  std::string Name;
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = 0; ///< 0 when Count == 0.
  uint64_t Max = 0;
  std::array<uint64_t, kBuckets> Buckets{};

  /// The bucket index a value falls into: 0 holds exactly zero, bucket i
  /// (1 <= i < 63) covers [2^(i-1), 2^i), bucket 63 is open-ended.
  static int bucketOf(uint64_t V) {
    if (V == 0)
      return 0;
    int B = std::bit_width(V);
    return B > kBuckets - 1 ? kBuckets - 1 : B;
  }
  /// Inclusive lower bound of bucket \p I.
  static uint64_t bucketLo(int I) {
    return I == 0 ? 0 : uint64_t(1) << (I - 1);
  }
  /// Exclusive upper bound of bucket \p I (UINT64_MAX for the last).
  static uint64_t bucketHi(int I);

  double mean() const { return Count ? double(Sum) / double(Count) : 0.0; }

  /// Estimated value at quantile \p Q in [0, 1], using the same rank
  /// convention as indexing a sorted sample vector at Q * (n - 1):
  /// geometric interpolation inside the bucket, clamped to [Min, Max] so
  /// single-bucket distributions estimate exactly. The estimate is always
  /// within one bucket width (a factor of 2) of the true sample quantile.
  double quantile(double Q) const;

  /// Accumulates \p Other into this snapshot (bucket-wise add; min/max
  /// widen). Names are not required to match — merging shards of one
  /// logical metric is the caller's contract.
  void merge(const HistogramSnapshot &Other);

  /// Records one value directly into this snapshot. Not thread-safe —
  /// for aggregation tables that already hold a lock (e.g. the telemetry
  /// shape table), where a registry-backed atomic Histogram per row would
  /// be waste.
  void add(uint64_t V);
};

/// One named histogram. Obtain instances through histogram(); never
/// constructed directly. record() is wait-free: one bucket add plus
/// count/sum adds and relaxed min/max CAS — no lock, no allocation.
class Histogram {
public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  void record(uint64_t V) {
    Buckets[HistogramSnapshot::bucketOf(V)].fetch_add(
        1, std::memory_order_relaxed);
    Cnt.fetch_add(1, std::memory_order_relaxed);
    Total.fetch_add(V, std::memory_order_relaxed);
    uint64_t Cur = MinV.load(std::memory_order_relaxed);
    while (V < Cur &&
           !MinV.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
    Cur = MaxV.load(std::memory_order_relaxed);
    while (V > Cur &&
           !MaxV.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return Cnt.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Total.load(std::memory_order_relaxed); }

  /// Relaxed-consistency copy (counts racing with record() may be off by
  /// the in-flight operations; quiesce writers for exact numbers).
  HistogramSnapshot snapshot() const;

  /// Zeroes the histogram (tests and benchmarks; racing record() calls
  /// may survive partially).
  void reset();

  const std::string &name() const { return Name; }

  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

private:
  friend Histogram &histogram(const std::string &Name);
  explicit Histogram(std::string Name) : Name(std::move(Name)) {}

  std::string Name;
  std::atomic<uint64_t> Cnt{0};
  std::atomic<uint64_t> Total{0};
  std::atomic<uint64_t> MinV{UINT64_MAX};
  std::atomic<uint64_t> MaxV{0};
  std::array<std::atomic<uint64_t>, kBuckets> Buckets{};
};

/// The histogram registered under \p Name; created (empty) on first use.
/// Thread-safe; the returned reference is valid for the process lifetime.
Histogram &histogram(const std::string &Name);

/// Snapshots of every registered histogram, sorted by name.
std::vector<HistogramSnapshot> snapshotHistograms();

} // namespace ft::metrics

#endif // FT_SUPPORT_METRICS_H
