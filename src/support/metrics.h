//===- support/metrics.h - Named-counter registry ----------------*- C++ -*-===//
///
/// \file
/// A process-wide registry of named monotonic counters, the quantitative
/// half of the observability layer (the qualitative half — spans and the
/// schedule decision audit log — lives in support/trace.h).
///
/// Counters are created on first use by hierarchical name
/// ("deps/dep_queries", "rt/kernel_invocations", ...) and live for the
/// whole process; references returned by counter() are stable, so hot
/// paths resolve their counter once and then pay only a relaxed atomic
/// increment. The dependence-engine counters of support/stats.h are
/// registered here, which is what lets FT_METRICS=1 subsume the legacy
/// FT_STATS output.
///
//===----------------------------------------------------------------------===//

#ifndef FT_SUPPORT_METRICS_H
#define FT_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ft::metrics {

/// One named counter. Obtain instances through counter(); never constructed
/// directly. The mutation API mirrors std::atomic<uint64_t> so call sites
/// ported from raw atomics (support/stats.h) compile unchanged.
class Counter {
public:
  void fetch_add(uint64_t N = 1,
                 std::memory_order O = std::memory_order_relaxed) {
    Val.fetch_add(N, O);
  }

  uint64_t load(std::memory_order O = std::memory_order_relaxed) const {
    return Val.load(O);
  }

  void store(uint64_t V,
             std::memory_order O = std::memory_order_relaxed) {
    Val.store(V, O);
  }

  /// Assignment form used by reset code (`C.DepQueries = 0`).
  Counter &operator=(uint64_t V) {
    store(V);
    return *this;
  }

  const std::string &name() const { return Name; }

  Counter(const Counter &) = delete;
  Counter &operator=(const Counter &) = delete;

private:
  friend Counter &counter(const std::string &Name);
  explicit Counter(std::string Name) : Name(std::move(Name)) {}

  std::string Name;
  std::atomic<uint64_t> Val{0};
};

/// The counter registered under \p Name; created (at zero) on first use.
/// Thread-safe; the returned reference is valid for the process lifetime.
Counter &counter(const std::string &Name);

/// Name/value pairs of every registered counter, sorted by name.
std::vector<std::pair<std::string, uint64_t>> snapshot();

/// Resets every registered counter to zero (tests and benchmarks).
void resetAll();

} // namespace ft::metrics

#endif // FT_SUPPORT_METRICS_H
