//===- support/json.cpp ---------------------------------------------------===//

#include "support/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iterator>

namespace ft::json {

const Value *Value::at(const std::string &DottedPath) const {
  const Value *Cur = this;
  size_t Pos = 0;
  while (Pos < DottedPath.size()) {
    size_t Dot = DottedPath.find('.', Pos);
    std::string Key = DottedPath.substr(
        Pos, Dot == std::string::npos ? std::string::npos : Dot - Pos);
    Cur = Cur->get(Key);
    if (!Cur)
      return nullptr;
    if (Dot == std::string::npos)
      break;
    Pos = Dot + 1;
  }
  return Cur;
}

/// Recursive-descent parser over the whole input string. Depth-capped so a
/// hostile deeply-nested document cannot blow the stack.
class Parser {
public:
  explicit Parser(const std::string &Text) : S(Text) {}

  Result<Value> run() {
    skipWs();
    Value V;
    if (Status St = parseValue(V, 0); !St.ok())
      return Result<Value>::error(St.message());
    skipWs();
    if (Pos != S.size())
      return err("trailing characters after JSON document");
    return Result<Value>(std::move(V));
  }

private:
  static constexpr int kMaxDepth = 128;

  Result<Value> err(const std::string &Msg) const {
    return Result<Value>::error(statusMsg(Msg));
  }
  std::string statusMsg(const std::string &Msg) const {
    return "json: " + Msg + " (at byte " + std::to_string(Pos) + ")";
  }
  Status fail(const std::string &Msg) const {
    return Status::error(statusMsg(Msg));
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  Status parseValue(Value &Out, int Depth) {
    if (Depth > kMaxDepth)
      return fail("nesting too deep");
    if (Pos >= S.size())
      return fail("unexpected end of input");
    switch (S[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.K = Value::Kind::String;
      return parseString(Out.Str);
    case 't':
      if (S.compare(Pos, 4, "true") == 0) {
        Pos += 4;
        Out.K = Value::Kind::Bool;
        Out.B = true;
        return Status::success();
      }
      return fail("invalid literal");
    case 'f':
      if (S.compare(Pos, 5, "false") == 0) {
        Pos += 5;
        Out.K = Value::Kind::Bool;
        Out.B = false;
        return Status::success();
      }
      return fail("invalid literal");
    case 'n':
      if (S.compare(Pos, 4, "null") == 0) {
        Pos += 4;
        Out.K = Value::Kind::Null;
        return Status::success();
      }
      return fail("invalid literal");
    default:
      return parseNumber(Out);
    }
  }

  Status parseObject(Value &Out, int Depth) {
    ++Pos; // '{'
    Out.K = Value::Kind::Object;
    skipWs();
    if (consume('}'))
      return Status::success();
    for (;;) {
      skipWs();
      if (Pos >= S.size() || S[Pos] != '"')
        return fail("expected object key string");
      std::string Key;
      if (Status St = parseString(Key); !St.ok())
        return St;
      skipWs();
      if (!consume(':'))
        return fail("expected ':' after object key");
      skipWs();
      Value V;
      if (Status St = parseValue(V, Depth + 1); !St.ok())
        return St;
      Out.Obj.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return Status::success();
      return fail("expected ',' or '}' in object");
    }
  }

  Status parseArray(Value &Out, int Depth) {
    ++Pos; // '['
    Out.K = Value::Kind::Array;
    skipWs();
    if (consume(']'))
      return Status::success();
    for (;;) {
      skipWs();
      Value V;
      if (Status St = parseValue(V, Depth + 1); !St.ok())
        return St;
      Out.Arr.push_back(std::move(V));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return Status::success();
      return fail("expected ',' or ']' in array");
    }
  }

  /// Appends \p Cp to \p Out as UTF-8.
  static void appendUtf8(std::string &Out, unsigned Cp) {
    if (Cp < 0x80) {
      Out += char(Cp);
    } else if (Cp < 0x800) {
      Out += char(0xC0 | (Cp >> 6));
      Out += char(0x80 | (Cp & 0x3F));
    } else if (Cp < 0x10000) {
      Out += char(0xE0 | (Cp >> 12));
      Out += char(0x80 | ((Cp >> 6) & 0x3F));
      Out += char(0x80 | (Cp & 0x3F));
    } else {
      Out += char(0xF0 | (Cp >> 18));
      Out += char(0x80 | ((Cp >> 12) & 0x3F));
      Out += char(0x80 | ((Cp >> 6) & 0x3F));
      Out += char(0x80 | (Cp & 0x3F));
    }
  }

  Status parseHex4(unsigned &Out) {
    if (Pos + 4 > S.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = S[Pos + I];
      unsigned D;
      if (C >= '0' && C <= '9')
        D = unsigned(C - '0');
      else if (C >= 'a' && C <= 'f')
        D = unsigned(C - 'a') + 10;
      else if (C >= 'A' && C <= 'F')
        D = unsigned(C - 'A') + 10;
      else
        return fail("invalid \\u escape digit");
      Out = Out * 16 + D;
    }
    Pos += 4;
    return Status::success();
  }

  Status parseString(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (Pos < S.size()) {
      char C = S[Pos];
      if (C == '"') {
        ++Pos;
        return Status::success();
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += C;
        ++Pos;
        continue;
      }
      ++Pos; // backslash
      if (Pos >= S.size())
        return fail("truncated escape");
      char E = S[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Cp;
        if (Status St = parseHex4(Cp); !St.ok())
          return St;
        // Surrogate pair: combine with a following \uDC00..\uDFFF.
        if (Cp >= 0xD800 && Cp <= 0xDBFF && Pos + 1 < S.size() &&
            S[Pos] == '\\' && S[Pos + 1] == 'u') {
          size_t Save = Pos;
          Pos += 2;
          unsigned Lo;
          if (Status St = parseHex4(Lo); !St.ok())
            return St;
          if (Lo >= 0xDC00 && Lo <= 0xDFFF)
            Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Lo - 0xDC00);
          else
            Pos = Save; // not a low surrogate; leave it for the next loop
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  Status parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    if (Pos < S.size() && S[Pos] == '.') {
      ++Pos;
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    if (Pos < S.size() && (S[Pos] == 'e' || S[Pos] == 'E')) {
      ++Pos;
      if (Pos < S.size() && (S[Pos] == '+' || S[Pos] == '-'))
        ++Pos;
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    if (Pos == Start || (Pos == Start + 1 && S[Start] == '-'))
      return fail("invalid number");
    char *End = nullptr;
    std::string Tok = S.substr(Start, Pos - Start);
    double V = std::strtod(Tok.c_str(), &End);
    if (End == Tok.c_str() || *End != '\0')
      return fail("invalid number");
    Out.K = Value::Kind::Number;
    Out.Num = V;
    return Status::success();
  }

  const std::string &S;
  size_t Pos = 0;
};

Result<Value> parse(const std::string &Text) { return Parser(Text).run(); }

Result<Value> parseFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Result<Value>::error("json: could not open " + Path);
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  Result<Value> R = parse(Text);
  if (!R.ok())
    return Result<Value>::error(R.message() + " in " + Path);
  return R;
}

} // namespace ft::json
