//===- math/linear.h - Linear (affine) expressions ---------------*- C++ -*-===//
///
/// \file
/// Affine expressions over named integer variables:
/// sum_i Coef_i * Var_i + Const. These are the atoms of the Presburger-lite
/// engine in math/affine_set.h, which replaces isl in this reproduction
/// (paper §4.2: "memory accesses defined as Presburger formulas").
///
/// Variables are plain strings; loop iterators and symbolic shape
/// parameters share one namespace and are distinguished by the caller.
///
//===----------------------------------------------------------------------===//

#ifndef FT_MATH_LINEAR_H
#define FT_MATH_LINEAR_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace ft {

/// An affine integer expression with 64-bit coefficients.
///
/// All arithmetic is overflow-checked: operations return std::nullopt on
/// overflow, and callers degrade conservatively (e.g. dependence analysis
/// keeps a may-dependence it cannot reason about).
class LinearExpr {
public:
  LinearExpr() = default;

  /// Constructs the constant expression \p C.
  static LinearExpr constant(int64_t C);

  /// Constructs the single-variable expression 1 * Name.
  static LinearExpr variable(const std::string &Name);

  /// Term map: variable name -> non-zero coefficient.
  const std::map<std::string, int64_t> &coeffs() const { return Coeffs; }

  /// Constant term.
  int64_t constTerm() const { return Const; }

  /// Returns the coefficient of \p Name (0 if absent).
  int64_t coeffOf(const std::string &Name) const;

  /// Returns true if the expression is a constant (no variables).
  bool isConstant() const { return Coeffs.empty(); }

  /// Sets the coefficient of \p Name (erasing the term when \p C == 0).
  void setCoeff(const std::string &Name, int64_t C);

  /// Adds \p Delta to the constant term (unchecked; callers use tryAdd for
  /// checked arithmetic).
  void addConst(int64_t Delta) { Const += Delta; }

  /// Checked addition, subtraction, and scaling.
  static std::optional<LinearExpr> tryAdd(const LinearExpr &A,
                                          const LinearExpr &B);
  static std::optional<LinearExpr> trySub(const LinearExpr &A,
                                          const LinearExpr &B);
  static std::optional<LinearExpr> tryScale(const LinearExpr &A, int64_t K);

  /// Substitutes \p Name := Repl. Returns nullopt on overflow.
  std::optional<LinearExpr> substitute(const std::string &Name,
                                       const LinearExpr &Repl) const;

  /// Renames a variable (no-op if absent; asserts the new name is unused).
  LinearExpr renamed(const std::string &From, const std::string &To) const;

  /// Divides all terms by the GCD of all coefficients and the constant,
  /// when that GCD > 1. Preserves the sign.
  void normalizeByGcd();

  /// GCD of the variable coefficients only (0 if there are none).
  int64_t coeffGcd() const;

  bool operator==(const LinearExpr &) const = default;

  /// Renders e.g. "2*i + -1*j + 3" for diagnostics.
  std::string toString() const;

private:
  std::map<std::string, int64_t> Coeffs;
  int64_t Const = 0;
};

/// Checked scalar helpers (return nullopt on int64 overflow).
std::optional<int64_t> checkedAdd(int64_t A, int64_t B);
std::optional<int64_t> checkedMul(int64_t A, int64_t B);

/// Non-negative GCD; gcd(0, x) == |x|.
int64_t gcd64(int64_t A, int64_t B);

/// Floor division rounding toward negative infinity.
int64_t floorDiv64(int64_t A, int64_t B);

/// Modulo with the sign of the divisor (Python semantics).
int64_t mod64(int64_t A, int64_t B);

} // namespace ft

#endif // FT_MATH_LINEAR_H
