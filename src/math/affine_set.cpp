//===- math/affine_set.cpp ------------------------------------------------===//

#include "math/affine_set.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_map>

#include "support/error.h"
#include "support/stats.h"

using namespace ft;

void AffineSet::addGe0(const LinearExpr &E) { Cs.push_back({E, false}); }

void AffineSet::addEq0(const LinearExpr &E) { Cs.push_back({E, true}); }

void AffineSet::addLE(const LinearExpr &A, const LinearExpr &B) {
  auto D = LinearExpr::trySub(B, A);
  if (!D) {
    markInexact();
    return;
  }
  addGe0(*D);
}

void AffineSet::addLT(const LinearExpr &A, const LinearExpr &B) {
  auto D = LinearExpr::trySub(B, A);
  if (!D) {
    markInexact();
    return;
  }
  D->addConst(-1);
  addGe0(*D);
}

void AffineSet::addEQ(const LinearExpr &A, const LinearExpr &B) {
  auto D = LinearExpr::trySub(B, A);
  if (!D) {
    markInexact();
    return;
  }
  addEq0(*D);
}

void AffineSet::addAll(const AffineSet &Other) {
  Cs.insert(Cs.end(), Other.Cs.begin(), Other.Cs.end());
  if (!Other.Exact)
    Exact = false;
}

namespace {

/// Caps on the Fourier–Motzkin working set: exceeding them makes the check
/// give up (returning "cannot prove empty", the safe answer).
constexpr size_t MaxConstraints = 4000;
constexpr int MaxVars = 64;

enum class SolveResult { Empty, NonEmpty, Unknown };

/// Normalizes one constraint in place.
///   - Equalities: divide by the coefficient GCD; if it does not divide the
///     constant, the constraint (and the whole set) is integrally
///     infeasible (the classic GCD test).
///   - Inequalities sum a_i x_i + c >= 0 with g = gcd(a_i): tighten to
///     sum (a_i/g) x_i + floor(c/g) >= 0, which is exact over integers.
/// Returns false if the constraint alone is infeasible.
bool normalizeConstraint(LinConstraint &C) {
  int64_t G = C.E.coeffGcd();
  if (G == 0) {
    // Constant constraint; leave it to the constant check.
    return true;
  }
  if (C.IsEq) {
    if (mod64(C.E.constTerm(), G) != 0)
      return false; // GCD test: no integer solution.
    if (G > 1) {
      LinearExpr E;
      for (const auto &[Name, Coef] : C.E.coeffs())
        E.setCoeff(Name, Coef / G);
      E.addConst(C.E.constTerm() / G);
      C.E = E;
    }
    return true;
  }
  if (G > 1) {
    LinearExpr E;
    for (const auto &[Name, Coef] : C.E.coeffs())
      E.setCoeff(Name, Coef / G);
    E.addConst(floorDiv64(C.E.constTerm(), G));
    C.E = E;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Layer 1: canonical form
//===----------------------------------------------------------------------===//

/// The canonical form of a constraint system: every constraint
/// GCD-normalized, equalities sign-oriented (first variable coefficient
/// positive), tautologies dropped, the rest sorted and deduplicated by
/// their rendered text. Decided is set when canonicalization alone settles
/// emptiness (a single-constraint contradiction, or no constraints left).
struct CanonicalSystem {
  std::vector<LinConstraint> Cs;
  std::vector<std::string> Texts; ///< Rendered form of each constraint.
  std::optional<bool> DecidedEmpty;
  std::string Key; ///< Memo key: all Texts joined.
};

CanonicalSystem canonicalize(const std::vector<LinConstraint> &In) {
  CanonicalSystem Out;
  std::vector<std::pair<std::string, LinConstraint>> Keyed;
  Keyed.reserve(In.size());
  for (const LinConstraint &C0 : In) {
    LinConstraint C = C0;
    if (!normalizeConstraint(C)) {
      Out.DecidedEmpty = true;
      return Out;
    }
    if (C.E.isConstant()) {
      int64_t V = C.E.constTerm();
      if (C.IsEq ? (V != 0) : (V < 0)) {
        Out.DecidedEmpty = true;
        return Out;
      }
      continue; // Tautology.
    }
    if (C.IsEq) {
      // Orient so the first (lexicographically smallest) variable has a
      // positive coefficient: E == 0 and -E == 0 are the same constraint.
      if (C.E.coeffs().begin()->second < 0) {
        auto Neg = LinearExpr::tryScale(C.E, -1);
        if (Neg) // Overflow cannot occur for coefficients > INT64_MIN.
          C.E = *Neg;
      }
    }
    Keyed.push_back({C.toString(), std::move(C)});
  }
  if (Keyed.empty()) {
    Out.DecidedEmpty = false; // No constraints: trivially satisfiable.
    return Out;
  }
  std::sort(Keyed.begin(), Keyed.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  Keyed.erase(std::unique(Keyed.begin(), Keyed.end(),
                          [](const auto &A, const auto &B) {
                            return A.first == B.first;
                          }),
              Keyed.end());
  Out.Cs.reserve(Keyed.size());
  Out.Texts.reserve(Keyed.size());
  size_t KeyLen = 0;
  for (auto &[Text, C] : Keyed)
    KeyLen += Text.size() + 1;
  Out.Key.reserve(KeyLen);
  for (auto &[Text, C] : Keyed) {
    Out.Key += Text;
    Out.Key += ';';
    Out.Texts.push_back(std::move(Text));
    Out.Cs.push_back(std::move(C));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Layer 2: interval/GCD pre-filter
//===----------------------------------------------------------------------===//

/// Cheap decision attempts before Fourier–Motzkin:
///   - derive per-variable integer intervals from single-variable
///     constraints; an empty interval proves the system empty;
///   - evaluate the system at candidate points assembled from those
///     intervals; a satisfying point is an integer witness of
///     non-emptiness.
/// Expects canonicalized constraints (single-variable constraints then have
/// coefficient ±1). Returns Unknown when neither test fires.
SolveResult prefilter(const std::vector<LinConstraint> &Cs) {
  struct Interval {
    std::optional<int64_t> Lo, Hi;
  };
  std::map<std::string, Interval> Bounds;
  for (const LinConstraint &C : Cs) {
    if (C.E.coeffs().size() != 1)
      continue;
    const auto &[Name, A] = *C.E.coeffs().begin();
    int64_t K = C.E.constTerm();
    Interval &B = Bounds[Name];
    // Canonicalized single-variable constraints have |A| == 1.
    if (C.IsEq) {
      // A*x + K == 0  =>  x == -K/A == -A*K for A in {+1, -1}.
      auto V = checkedMul(-A, K);
      if (!V)
        continue;
      if (!B.Lo || *B.Lo < *V)
        B.Lo = *V;
      if (!B.Hi || *B.Hi > *V)
        B.Hi = *V;
    } else if (A > 0) {
      // x + K >= 0  =>  x >= -K.
      auto V = checkedMul(-1, K);
      if (V && (!B.Lo || *B.Lo < *V))
        B.Lo = *V;
    } else {
      // -x + K >= 0  =>  x <= K.
      if (!B.Hi || *B.Hi > K)
        B.Hi = K;
    }
  }
  for (const auto &[Name, B] : Bounds)
    if (B.Lo && B.Hi && *B.Lo > *B.Hi)
      return SolveResult::Empty;

  // Witness test: clamp a candidate value per variable into its interval
  // and evaluate every constraint with checked arithmetic. Two candidates
  // (low-biased and high-biased) catch most obviously-feasible systems.
  auto Evaluate = [&](bool PreferLow) -> bool {
    std::map<std::string, int64_t> Val;
    auto ValueOf = [&](const std::string &Name) {
      auto It = Val.find(Name);
      if (It != Val.end())
        return It->second;
      int64_t V = 0;
      auto BIt = Bounds.find(Name);
      if (BIt != Bounds.end()) {
        const Interval &B = BIt->second;
        if (PreferLow)
          V = B.Lo ? *B.Lo : (B.Hi ? std::min<int64_t>(*B.Hi, 0) : 0);
        else
          V = B.Hi ? *B.Hi : (B.Lo ? std::max<int64_t>(*B.Lo, 0) : 0);
      }
      Val[Name] = V;
      return V;
    };
    for (const LinConstraint &C : Cs) {
      int64_t Sum = C.E.constTerm();
      for (const auto &[Name, Coef] : C.E.coeffs()) {
        auto T = checkedMul(Coef, ValueOf(Name));
        if (!T)
          return false;
        auto S = checkedAdd(Sum, *T);
        if (!S)
          return false;
        Sum = *S;
      }
      if (C.IsEq ? (Sum != 0) : (Sum < 0))
        return false;
    }
    return true;
  };
  if (Evaluate(/*PreferLow=*/true) || Evaluate(/*PreferLow=*/false))
    return SolveResult::NonEmpty;
  return SolveResult::Unknown;
}

//===----------------------------------------------------------------------===//
// Layer 3: process-wide memoized emptiness
//===----------------------------------------------------------------------===//

/// The memo cache maps a canonical constraint text to its emptiness
/// answer. The answer is a pure function of the canonical text (variable
/// names only tie constraints together within one system), so sharing the
/// cache across programs and threads is sound.
struct EmptinessMemo {
  std::mutex M;
  std::unordered_map<std::string, bool> Map;
};

EmptinessMemo &memo() {
  static EmptinessMemo M;
  return M;
}

/// Backstop against unbounded growth in very long-running processes; at
/// the cap the cache stops admitting new keys (hits keep working).
constexpr size_t MaxMemoEntries = 1 << 20;

/// One elimination step plus bookkeeping. Works on a private copy of the
/// constraints.
class EmptinessChecker {
public:
  explicit EmptinessChecker(std::vector<LinConstraint> Cs)
      : Work(std::move(Cs)) {}

  SolveResult run() {
    for (int Round = 0; Round < MaxVars; ++Round) {
      SolveResult R = simplifyAndCheckConstants();
      if (R != SolveResult::Unknown)
        return R;
      if (Work.empty())
        return SolveResult::NonEmpty;

      // Gather variables still present.
      std::set<std::string> Vars;
      for (const LinConstraint &C : Work)
        for (const auto &[Name, Coef] : C.E.coeffs())
          Vars.insert(Name);
      if (Vars.empty())
        return SolveResult::NonEmpty;

      // Prefer exact substitution through a unit-coefficient equality.
      bool Substituted = false;
      for (size_t I = 0; I < Work.size() && !Substituted; ++I) {
        if (!Work[I].IsEq)
          continue;
        for (const auto &[Name, Coef] : Work[I].E.coeffs()) {
          if (Coef != 1 && Coef != -1)
            continue;
          if (!substitute(I, Name, Coef))
            return SolveResult::Unknown; // Overflow.
          Substituted = true;
          break;
        }
      }
      if (Substituted)
        continue;

      // Expand remaining equalities into inequality pairs, then FM.
      // Index-based: push_back may reallocate Work, so re-index on every
      // access instead of holding a reference across the append.
      bool Expanded = false;
      size_t NumOrig = Work.size();
      for (size_t I = 0; I < NumOrig; ++I) {
        if (!Work[I].IsEq)
          continue;
        auto Neg = LinearExpr::tryScale(Work[I].E, -1);
        if (!Neg)
          return SolveResult::Unknown;
        Work[I].IsEq = false;
        Work.push_back({*Neg, false});
        Expanded = true;
      }
      if (Expanded)
        continue;

      // Pick the variable minimizing the pos*neg product.
      std::string Best;
      size_t BestCost = SIZE_MAX;
      for (const std::string &V : Vars) {
        size_t NumPos = 0, NumNeg = 0;
        for (const LinConstraint &C : Work) {
          int64_t Coef = C.E.coeffOf(V);
          if (Coef > 0)
            ++NumPos;
          else if (Coef < 0)
            ++NumNeg;
        }
        size_t Cost = NumPos * NumNeg;
        if (Cost < BestCost) {
          BestCost = Cost;
          Best = V;
        }
      }
      if (!fourierMotzkin(Best))
        return SolveResult::Unknown;
      if (Work.size() > MaxConstraints)
        return SolveResult::Unknown;
    }
    return SolveResult::Unknown;
  }

private:
  /// Normalizes all constraints, drops tautologies, and checks constant
  /// constraints. Returns Empty on contradiction, NonEmpty never (caller
  /// decides), Unknown to continue.
  SolveResult simplifyAndCheckConstants() {
    std::vector<LinConstraint> Kept;
    std::set<std::string> Seen;
    for (LinConstraint &C : Work) {
      if (!normalizeConstraint(C))
        return SolveResult::Empty;
      if (C.E.isConstant()) {
        int64_t V = C.E.constTerm();
        if (C.IsEq ? (V != 0) : (V < 0))
          return SolveResult::Empty;
        continue; // Tautology.
      }
      std::string Key = C.toString();
      if (Seen.insert(Key).second)
        Kept.push_back(std::move(C));
    }
    Work = std::move(Kept);
    return SolveResult::Unknown;
  }

  /// Substitutes variable \p Name using the equality Work[EqIdx] where it
  /// has coefficient \p Coef in {+1, -1}. Returns false on overflow.
  bool substitute(size_t EqIdx, const std::string &Name, int64_t Coef) {
    // Coef * Name + Rest == 0  =>  Name = -Rest / Coef = -Coef * Rest
    // (since Coef is +-1).
    LinearExpr Rest = Work[EqIdx].E;
    Rest.setCoeff(Name, 0);
    auto Repl = LinearExpr::tryScale(Rest, -Coef);
    if (!Repl)
      return false;
    std::vector<LinConstraint> Next;
    Next.reserve(Work.size() - 1);
    for (size_t I = 0; I < Work.size(); ++I) {
      if (I == EqIdx)
        continue;
      auto E2 = Work[I].E.substitute(Name, *Repl);
      if (!E2)
        return false;
      Next.push_back({*E2, Work[I].IsEq});
    }
    Work = std::move(Next);
    return true;
  }

  /// Eliminates \p Name from all (inequality) constraints. Returns false on
  /// overflow.
  bool fourierMotzkin(const std::string &Name) {
    stats::counters().FmEliminations.fetch_add(1, std::memory_order_relaxed);
    std::vector<LinConstraint> Lower, Upper, Rest;
    for (LinConstraint &C : Work) {
      ftAssert(!C.IsEq, "equality left before FM elimination");
      int64_t Coef = C.E.coeffOf(Name);
      if (Coef > 0)
        Lower.push_back(std::move(C)); // a*x + p >= 0: lower bound on x.
      else if (Coef < 0)
        Upper.push_back(std::move(C)); // -b*x + n >= 0: upper bound on x.
      else
        Rest.push_back(std::move(C));
    }
    for (const LinConstraint &L : Lower) {
      int64_t A = L.E.coeffOf(Name);
      LinearExpr P = L.E;
      P.setCoeff(Name, 0);
      for (const LinConstraint &U : Upper) {
        int64_t B = -U.E.coeffOf(Name);
        LinearExpr N = U.E;
        N.setCoeff(Name, 0);
        // From a*x >= -p and b*x <= n: b*p + a*n >= 0.
        auto BP = LinearExpr::tryScale(P, B);
        auto AN = LinearExpr::tryScale(N, A);
        if (!BP || !AN)
          return false;
        auto Sum = LinearExpr::tryAdd(*BP, *AN);
        if (!Sum)
          return false;
        Rest.push_back({*Sum, false});
      }
    }
    Work = std::move(Rest);
    return true;
  }

  std::vector<LinConstraint> Work;
};

} // namespace

void ft::stats::clearEmptinessCache() {
  EmptinessMemo &M = memo();
  std::lock_guard<std::mutex> Lock(M.M);
  M.Map.clear();
}

bool AffineSet::isEmpty() const {
  stats::Counters &Ct = stats::counters();
  Ct.EmptinessQueries.fetch_add(1, std::memory_order_relaxed);

  if (stats::accelerationBypassed())
    return EmptinessChecker(Cs).run() == SolveResult::Empty;

  CanonicalSystem Canon = canonicalize(Cs);
  if (Canon.DecidedEmpty) {
    Ct.CanonicalDecided.fetch_add(1, std::memory_order_relaxed);
    return *Canon.DecidedEmpty;
  }

  switch (prefilter(Canon.Cs)) {
  case SolveResult::Empty:
    Ct.PrefilterEmpty.fetch_add(1, std::memory_order_relaxed);
    return true;
  case SolveResult::NonEmpty:
    Ct.PrefilterFeasible.fetch_add(1, std::memory_order_relaxed);
    return false;
  case SolveResult::Unknown:
    break;
  }

  EmptinessMemo &M = memo();
  {
    std::lock_guard<std::mutex> Lock(M.M);
    auto It = M.Map.find(Canon.Key);
    if (It != M.Map.end()) {
      Ct.EmptinessCacheHits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }
  Ct.EmptinessCacheMisses.fetch_add(1, std::memory_order_relaxed);

  bool Empty = EmptinessChecker(Canon.Cs).run() == SolveResult::Empty;
  {
    std::lock_guard<std::mutex> Lock(M.M);
    if (M.Map.size() < MaxMemoEntries)
      M.Map.emplace(std::move(Canon.Key), Empty);
  }
  return Empty;
}

bool AffineSet::implies(const LinearExpr &GeZero) const {
  AffineSet Neg = *this;
  // ¬(E >= 0) over integers is E <= -1, i.e. -E - 1 >= 0.
  auto NegE = LinearExpr::tryScale(GeZero, -1);
  if (!NegE)
    return false;
  NegE->addConst(-1);
  Neg.addGe0(*NegE);
  return Neg.isEmpty();
}

std::string AffineSet::toString() const {
  std::string Out = "{";
  for (size_t I = 0; I < Cs.size(); ++I) {
    if (I > 0)
      Out += " and ";
    Out += Cs[I].toString();
  }
  return Out + "}";
}
