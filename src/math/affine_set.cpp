//===- math/affine_set.cpp ------------------------------------------------===//

#include "math/affine_set.h"

#include <algorithm>
#include <set>

#include "support/error.h"

using namespace ft;

void AffineSet::addGe0(const LinearExpr &E) { Cs.push_back({E, false}); }

void AffineSet::addEq0(const LinearExpr &E) { Cs.push_back({E, true}); }

void AffineSet::addLE(const LinearExpr &A, const LinearExpr &B) {
  auto D = LinearExpr::trySub(B, A);
  if (!D) {
    markInexact();
    return;
  }
  addGe0(*D);
}

void AffineSet::addLT(const LinearExpr &A, const LinearExpr &B) {
  auto D = LinearExpr::trySub(B, A);
  if (!D) {
    markInexact();
    return;
  }
  D->addConst(-1);
  addGe0(*D);
}

void AffineSet::addEQ(const LinearExpr &A, const LinearExpr &B) {
  auto D = LinearExpr::trySub(B, A);
  if (!D) {
    markInexact();
    return;
  }
  addEq0(*D);
}

void AffineSet::addAll(const AffineSet &Other) {
  Cs.insert(Cs.end(), Other.Cs.begin(), Other.Cs.end());
  if (!Other.Exact)
    Exact = false;
}

namespace {

/// Caps on the Fourier–Motzkin working set: exceeding them makes the check
/// give up (returning "cannot prove empty", the safe answer).
constexpr size_t MaxConstraints = 4000;
constexpr int MaxVars = 64;

enum class SolveResult { Empty, NonEmpty, Unknown };

/// Normalizes one constraint in place.
///   - Equalities: divide by the coefficient GCD; if it does not divide the
///     constant, the constraint (and the whole set) is integrally
///     infeasible (the classic GCD test).
///   - Inequalities sum a_i x_i + c >= 0 with g = gcd(a_i): tighten to
///     sum (a_i/g) x_i + floor(c/g) >= 0, which is exact over integers.
/// Returns false if the constraint alone is infeasible.
bool normalizeConstraint(LinConstraint &C) {
  int64_t G = C.E.coeffGcd();
  if (G == 0) {
    // Constant constraint; leave it to the constant check.
    return true;
  }
  if (C.IsEq) {
    if (mod64(C.E.constTerm(), G) != 0)
      return false; // GCD test: no integer solution.
    if (G > 1) {
      LinearExpr E;
      for (const auto &[Name, Coef] : C.E.coeffs())
        E.setCoeff(Name, Coef / G);
      E.addConst(C.E.constTerm() / G);
      C.E = E;
    }
    return true;
  }
  if (G > 1) {
    LinearExpr E;
    for (const auto &[Name, Coef] : C.E.coeffs())
      E.setCoeff(Name, Coef / G);
    E.addConst(floorDiv64(C.E.constTerm(), G));
    C.E = E;
  }
  return true;
}

/// One elimination step plus bookkeeping. Works on a private copy of the
/// constraints.
class EmptinessChecker {
public:
  explicit EmptinessChecker(std::vector<LinConstraint> Cs)
      : Work(std::move(Cs)) {}

  SolveResult run() {
    for (int Round = 0; Round < MaxVars; ++Round) {
      SolveResult R = simplifyAndCheckConstants();
      if (R != SolveResult::Unknown)
        return R;
      if (Work.empty())
        return SolveResult::NonEmpty;

      // Gather variables still present.
      std::set<std::string> Vars;
      for (const LinConstraint &C : Work)
        for (const auto &[Name, Coef] : C.E.coeffs())
          Vars.insert(Name);
      if (Vars.empty())
        return SolveResult::NonEmpty;

      // Prefer exact substitution through a unit-coefficient equality.
      bool Substituted = false;
      for (size_t I = 0; I < Work.size() && !Substituted; ++I) {
        if (!Work[I].IsEq)
          continue;
        for (const auto &[Name, Coef] : Work[I].E.coeffs()) {
          if (Coef != 1 && Coef != -1)
            continue;
          if (!substitute(I, Name, Coef))
            return SolveResult::Unknown; // Overflow.
          Substituted = true;
          break;
        }
      }
      if (Substituted)
        continue;

      // Expand remaining equalities into inequality pairs, then FM.
      bool Expanded = false;
      for (LinConstraint &C : Work) {
        if (!C.IsEq)
          continue;
        auto Neg = LinearExpr::tryScale(C.E, -1);
        if (!Neg)
          return SolveResult::Unknown;
        C.IsEq = false;
        Work.push_back({*Neg, false});
        Expanded = true;
      }
      if (Expanded)
        continue;

      // Pick the variable minimizing the pos*neg product.
      std::string Best;
      size_t BestCost = SIZE_MAX;
      for (const std::string &V : Vars) {
        size_t NumPos = 0, NumNeg = 0;
        for (const LinConstraint &C : Work) {
          int64_t Coef = C.E.coeffOf(V);
          if (Coef > 0)
            ++NumPos;
          else if (Coef < 0)
            ++NumNeg;
        }
        size_t Cost = NumPos * NumNeg;
        if (Cost < BestCost) {
          BestCost = Cost;
          Best = V;
        }
      }
      if (!fourierMotzkin(Best))
        return SolveResult::Unknown;
      if (Work.size() > MaxConstraints)
        return SolveResult::Unknown;
    }
    return SolveResult::Unknown;
  }

private:
  /// Normalizes all constraints, drops tautologies, and checks constant
  /// constraints. Returns Empty on contradiction, NonEmpty never (caller
  /// decides), Unknown to continue.
  SolveResult simplifyAndCheckConstants() {
    std::vector<LinConstraint> Kept;
    std::set<std::string> Seen;
    for (LinConstraint &C : Work) {
      if (!normalizeConstraint(C))
        return SolveResult::Empty;
      if (C.E.isConstant()) {
        int64_t V = C.E.constTerm();
        if (C.IsEq ? (V != 0) : (V < 0))
          return SolveResult::Empty;
        continue; // Tautology.
      }
      std::string Key = C.toString();
      if (Seen.insert(Key).second)
        Kept.push_back(std::move(C));
    }
    Work = std::move(Kept);
    return SolveResult::Unknown;
  }

  /// Substitutes variable \p Name using the equality Work[EqIdx] where it
  /// has coefficient \p Coef in {+1, -1}. Returns false on overflow.
  bool substitute(size_t EqIdx, const std::string &Name, int64_t Coef) {
    // Coef * Name + Rest == 0  =>  Name = -Rest / Coef = -Coef * Rest
    // (since Coef is +-1).
    LinearExpr Rest = Work[EqIdx].E;
    Rest.setCoeff(Name, 0);
    auto Repl = LinearExpr::tryScale(Rest, -Coef);
    if (!Repl)
      return false;
    std::vector<LinConstraint> Next;
    Next.reserve(Work.size() - 1);
    for (size_t I = 0; I < Work.size(); ++I) {
      if (I == EqIdx)
        continue;
      auto E2 = Work[I].E.substitute(Name, *Repl);
      if (!E2)
        return false;
      Next.push_back({*E2, Work[I].IsEq});
    }
    Work = std::move(Next);
    return true;
  }

  /// Eliminates \p Name from all (inequality) constraints. Returns false on
  /// overflow.
  bool fourierMotzkin(const std::string &Name) {
    std::vector<LinConstraint> Lower, Upper, Rest;
    for (LinConstraint &C : Work) {
      ftAssert(!C.IsEq, "equality left before FM elimination");
      int64_t Coef = C.E.coeffOf(Name);
      if (Coef > 0)
        Lower.push_back(std::move(C)); // a*x + p >= 0: lower bound on x.
      else if (Coef < 0)
        Upper.push_back(std::move(C)); // -b*x + n >= 0: upper bound on x.
      else
        Rest.push_back(std::move(C));
    }
    for (const LinConstraint &L : Lower) {
      int64_t A = L.E.coeffOf(Name);
      LinearExpr P = L.E;
      P.setCoeff(Name, 0);
      for (const LinConstraint &U : Upper) {
        int64_t B = -U.E.coeffOf(Name);
        LinearExpr N = U.E;
        N.setCoeff(Name, 0);
        // From a*x >= -p and b*x <= n: b*p + a*n >= 0.
        auto BP = LinearExpr::tryScale(P, B);
        auto AN = LinearExpr::tryScale(N, A);
        if (!BP || !AN)
          return false;
        auto Sum = LinearExpr::tryAdd(*BP, *AN);
        if (!Sum)
          return false;
        Rest.push_back({*Sum, false});
      }
    }
    Work = std::move(Rest);
    return true;
  }

  std::vector<LinConstraint> Work;
};

} // namespace

bool AffineSet::isEmpty() const {
  return EmptinessChecker(Cs).run() == SolveResult::Empty;
}

bool AffineSet::implies(const LinearExpr &GeZero) const {
  AffineSet Neg = *this;
  // ¬(E >= 0) over integers is E <= -1, i.e. -E - 1 >= 0.
  auto NegE = LinearExpr::tryScale(GeZero, -1);
  if (!NegE)
    return false;
  NegE->addConst(-1);
  Neg.addGe0(*NegE);
  return Neg.isEmpty();
}

std::string AffineSet::toString() const {
  std::string Out = "{";
  for (size_t I = 0; I < Cs.size(); ++I) {
    if (I > 0)
      Out += " and ";
    Out += Cs[I].toString();
  }
  return Out + "}";
}
