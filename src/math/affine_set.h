//===- math/affine_set.h - Conjunctions of affine constraints ----*- C++ -*-===//
///
/// \file
/// A Presburger-lite engine: an AffineSet is a conjunction of affine
/// equalities and inequalities over named integer variables. The one
/// decision procedure everything else reduces to is emptiness, implemented
/// with Fourier–Motzkin elimination plus integer GCD tests.
///
/// Emptiness is layered for speed (the dependence analysis issues the same
/// systems over and over across schedule primitives):
///   1. canonicalization — GCD-normalize each constraint, orient equalities,
///      drop tautologies, sort and deduplicate; a single-constraint
///      contradiction decides the query outright;
///   2. an interval/GCD pre-filter — propagate single-variable bounds to
///      reject obviously-empty systems, and test a candidate point to
///      accept obviously-feasible ones with an integer witness;
///   3. a process-wide memo cache keyed by the canonical constraint text —
///      repeated queries (the common case under schedule search) return
///      without touching Fourier–Motzkin.
/// All three layers are exact: they never change the answer, only how fast
/// it is produced. stats::setAccelerationBypass(true) disables them for
/// differential testing.
///
/// Soundness contract: isEmpty() == true is a proof that no integer point
/// satisfies the constraints; isEmpty() == false means "could not prove
/// empty" (the set may be rationally non-empty yet integrally empty, or an
/// internal overflow occurred). All clients use emptiness only in the safe
/// direction: dependence analysis keeps a dependence unless the dependence
/// set is *proved* empty, and the simplifier keeps a branch unless its
/// negation is *proved* empty. This mirrors how the paper uses isl (§4.2).
///
//===----------------------------------------------------------------------===//

#ifndef FT_MATH_AFFINE_SET_H
#define FT_MATH_AFFINE_SET_H

#include <string>
#include <vector>

#include "math/linear.h"

namespace ft {

/// One affine constraint: E == 0 (IsEq) or E >= 0.
struct LinConstraint {
  LinearExpr E;
  bool IsEq = false;

  std::string toString() const {
    return E.toString() + (IsEq ? " == 0" : " >= 0");
  }
};

/// A conjunction of affine constraints over integer variables.
class AffineSet {
public:
  /// Adds E >= 0.
  void addGe0(const LinearExpr &E);

  /// Adds E == 0.
  void addEq0(const LinearExpr &E);

  /// Adds A <= B, A < B, A == B as convenience wrappers.
  void addLE(const LinearExpr &A, const LinearExpr &B);
  void addLT(const LinearExpr &A, const LinearExpr &B);
  void addEQ(const LinearExpr &A, const LinearExpr &B);

  /// Adds all constraints of \p Other.
  void addAll(const AffineSet &Other);

  /// Marks the set as inexact (e.g. a non-affine condition was dropped).
  /// An inexact set can still prove emptiness of what remains; callers that
  /// need exactness check isExact().
  void markInexact() { Exact = false; }
  bool isExact() const { return Exact; }

  const std::vector<LinConstraint> &constraints() const { return Cs; }

  /// Attempts to prove the set has no integer points. Sound, incomplete.
  /// Answers through the canonicalization / pre-filter / memo layers
  /// unless stats::accelerationBypassed().
  bool isEmpty() const;

  /// Returns true if every point of this set provably satisfies E >= 0
  /// (i.e. this ∧ (E <= -1) is empty).
  bool implies(const LinearExpr &GeZero) const;

  /// Renders all constraints for diagnostics.
  std::string toString() const;

private:
  std::vector<LinConstraint> Cs;
  bool Exact = true;
};

} // namespace ft

#endif // FT_MATH_AFFINE_SET_H
