//===- math/linear.cpp ----------------------------------------------------===//

#include "math/linear.h"

#include <cstdlib>

#include "support/error.h"

using namespace ft;

std::optional<int64_t> ft::checkedAdd(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return std::nullopt;
  return R;
}

std::optional<int64_t> ft::checkedMul(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_mul_overflow(A, B, &R))
    return std::nullopt;
  return R;
}

int64_t ft::gcd64(int64_t A, int64_t B) {
  A = A < 0 ? -A : A;
  B = B < 0 ? -B : B;
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

int64_t ft::floorDiv64(int64_t A, int64_t B) {
  ftAssert(B != 0, "floorDiv64 by zero");
  int64_t Q = A / B, R = A % B;
  if (R != 0 && ((R < 0) != (B < 0)))
    --Q;
  return Q;
}

int64_t ft::mod64(int64_t A, int64_t B) {
  ftAssert(B != 0, "mod64 by zero");
  int64_t R = A % B;
  if (R != 0 && ((R < 0) != (B < 0)))
    R += B;
  return R;
}

LinearExpr LinearExpr::constant(int64_t C) {
  LinearExpr E;
  E.Const = C;
  return E;
}

LinearExpr LinearExpr::variable(const std::string &Name) {
  LinearExpr E;
  E.Coeffs[Name] = 1;
  return E;
}

int64_t LinearExpr::coeffOf(const std::string &Name) const {
  auto It = Coeffs.find(Name);
  return It == Coeffs.end() ? 0 : It->second;
}

void LinearExpr::setCoeff(const std::string &Name, int64_t C) {
  if (C == 0)
    Coeffs.erase(Name);
  else
    Coeffs[Name] = C;
}

std::optional<LinearExpr> LinearExpr::tryAdd(const LinearExpr &A,
                                             const LinearExpr &B) {
  LinearExpr Out = A;
  for (const auto &[Name, C] : B.Coeffs) {
    auto Sum = checkedAdd(Out.coeffOf(Name), C);
    if (!Sum)
      return std::nullopt;
    Out.setCoeff(Name, *Sum);
  }
  auto CSum = checkedAdd(Out.Const, B.Const);
  if (!CSum)
    return std::nullopt;
  Out.Const = *CSum;
  return Out;
}

std::optional<LinearExpr> LinearExpr::trySub(const LinearExpr &A,
                                             const LinearExpr &B) {
  auto NegB = tryScale(B, -1);
  if (!NegB)
    return std::nullopt;
  return tryAdd(A, *NegB);
}

std::optional<LinearExpr> LinearExpr::tryScale(const LinearExpr &A,
                                               int64_t K) {
  LinearExpr Out;
  for (const auto &[Name, C] : A.Coeffs) {
    auto P = checkedMul(C, K);
    if (!P)
      return std::nullopt;
    Out.setCoeff(Name, *P);
  }
  auto PC = checkedMul(A.Const, K);
  if (!PC)
    return std::nullopt;
  Out.Const = *PC;
  return Out;
}

std::optional<LinearExpr> LinearExpr::substitute(const std::string &Name,
                                                 const LinearExpr &Repl) const {
  int64_t C = coeffOf(Name);
  if (C == 0)
    return *this;
  LinearExpr Rest = *this;
  Rest.setCoeff(Name, 0);
  auto Scaled = tryScale(Repl, C);
  if (!Scaled)
    return std::nullopt;
  return tryAdd(Rest, *Scaled);
}

LinearExpr LinearExpr::renamed(const std::string &From,
                               const std::string &To) const {
  int64_t C = coeffOf(From);
  if (C == 0)
    return *this;
  LinearExpr Out = *this;
  Out.setCoeff(From, 0);
  ftAssert(Out.coeffOf(To) == 0, "renaming onto an existing variable: " + To);
  Out.setCoeff(To, C);
  return Out;
}

void LinearExpr::normalizeByGcd() {
  int64_t G = Const < 0 ? -Const : Const;
  for (const auto &[Name, C] : Coeffs)
    G = gcd64(G, C);
  if (G <= 1)
    return;
  for (auto &[Name, C] : Coeffs)
    C /= G;
  Const /= G;
}

int64_t LinearExpr::coeffGcd() const {
  int64_t G = 0;
  for (const auto &[Name, C] : Coeffs)
    G = gcd64(G, C);
  return G;
}

std::string LinearExpr::toString() const {
  std::string Out;
  for (const auto &[Name, C] : Coeffs) {
    if (!Out.empty())
      Out += " + ";
    Out += std::to_string(C) + "*" + Name;
  }
  if (Out.empty())
    return std::to_string(Const);
  if (Const != 0)
    Out += " + " + std::to_string(Const);
  return Out;
}
