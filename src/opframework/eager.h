//===- opframework/eager.h - Operator-based baseline framework ---*- C++ -*-===//
///
/// \file
/// "EagerTensor": a miniature eager-mode operator-based tensor framework —
/// the reproduction's stand-in for the PyTorch/JAX baselines of paper §6.
/// Every operator launches one "kernel", allocates a full materialized
/// output tensor, and is instrumented (kernel count, bytes moved, FLOPs,
/// bytes allocated) so the Figure-17 analysis can be reproduced as counts
/// and the Figure-16 comparison as measured time on the same machine as
/// the FreeTensor-compiled kernels.
///
/// Autograd is tape-based, like the baselines: every operator captures its
/// *materialized* inputs for the backward pass (this is exactly the
/// memory-and-traffic overhead FreeTensor's selective materialization
/// removes, §5.2 / Fig. 18).
///
//===----------------------------------------------------------------------===//

#ifndef FT_OPFRAMEWORK_EAGER_H
#define FT_OPFRAMEWORK_EAGER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "support/error.h"

namespace ft {
namespace eager {

/// Framework-wide instrumentation counters.
struct OpStats {
  int64_t KernelLaunches = 0;
  int64_t BytesRead = 0;
  int64_t BytesWritten = 0;
  int64_t Flops = 0;
  int64_t BytesAllocated = 0;

  int64_t bytesMoved() const { return BytesRead + BytesWritten; }
};

/// Global counters (single-threaded use).
OpStats &stats();
void resetStats();

/// A dense row-major Float32 tensor handle (copying the handle shares the
/// storage, like the baselines' reference semantics).
class Tensor {
public:
  Tensor() = default;

  static Tensor zeros(std::vector<int64_t> Shape, bool RequiresGrad = false);
  static Tensor fromVec(std::vector<int64_t> Shape, std::vector<float> Vals,
                        bool RequiresGrad = false);

  bool defined() const { return Impl != nullptr; }
  const std::vector<int64_t> &shape() const;
  int64_t numel() const;
  float *data();
  const float *data() const;
  bool requiresGrad() const;

  /// Gradient accumulated by backward() (zeros if never touched).
  Tensor grad() const;

  /// Opaque storage type (defined in eager.cpp).
  struct ImplT;

private:
  friend struct Ops;
  friend void backward(const Tensor &);
  std::shared_ptr<ImplT> Impl;
};

/// An Int64 index tensor (no gradients).
class IndexTensor {
public:
  IndexTensor() = default;
  static IndexTensor fromVec(std::vector<int64_t> Shape,
                             std::vector<int64_t> Vals);
  const std::vector<int64_t> &shape() const;
  int64_t numel() const;
  int64_t *data();
  const int64_t *data() const;

private:
  struct ImplT;
  std::shared_ptr<ImplT> Impl;
};

/// Clears the autograd tape (call between iterations).
void clearTape();

/// Runs the backward pass from \p Out with a gradient seed of all-ones,
/// accumulating .grad on every requires-grad leaf (and intermediate).
void backward(const Tensor &Out);

//===----------------------------------------------------------------------===//
// Operators. Each launches one instrumented kernel and materializes its
// output.
//===----------------------------------------------------------------------===//

Tensor add(const Tensor &A, const Tensor &B);
Tensor sub(const Tensor &A, const Tensor &B);
Tensor mul(const Tensor &A, const Tensor &B);
Tensor scale(const Tensor &A, float K);
Tensor abs(const Tensor &A);
Tensor exp(const Tensor &A);
Tensor relu(const Tensor &A);
Tensor sigmoid(const Tensor &A);

/// Sum over axis \p Axis (result drops that axis).
Tensor sumAxis(const Tensor &A, int Axis);

/// Sum of all elements (0-D result), used as a scalar loss.
Tensor sumAll(const Tensor &A);

/// Row-wise softmax over the last axis of a 2-D tensor.
Tensor softmaxLast(const Tensor &A);

/// 2-D matrix product.
Tensor matmul(const Tensor &A, const Tensor &B);

/// out[i, ...] = A[Idx[i], ...]: the gather used by SubdivNet / GAT
/// (paper Fig. 2 step 1). Out-of-range indices are a programming error.
Tensor indexSelect0(const Tensor &A, const IndexTensor &Idx);

/// out[Idx[i], ...] += A[i, ...]: scatter-add (GAT aggregation).
Tensor scatterAdd0(const Tensor &A, const IndexTensor &Idx, int64_t OutRows);

/// Circular shift by \p Shift along axis 1 of a 3-D tensor — the
/// slice+concat of paper Fig. 2 step 2 (one full copy, like torch.cat).
Tensor roll1(const Tensor &A, int64_t Shift);

/// [n, d] -> [n, 2W+1, d]: materializes each row's sliding window of
/// neighbouring rows (zero padded at the boundaries) — the pad +
/// as_strided copy of paper Fig. 1(b).
Tensor slidingWindows(const Tensor &A, int64_t W);

/// Batched vector dot: A[n, w, d], B[n, d] -> [n, w].
Tensor bmvDot(const Tensor &A, const Tensor &B);

/// Batched weighting: P[n, w], V[n, w, d] -> [n, d].
Tensor bmvWeight(const Tensor &P, const Tensor &V);

/// Fills masked positions (Mask == 0) with \p Value: used for attention
/// boundary masking. Mask carries no gradient.
Tensor maskedFill(const Tensor &A, const Tensor &Mask, float Value);

/// Further elementwise / broadcasting operators (SoftRas & GAT baselines).
Tensor divEw(const Tensor &A, const Tensor &B);
Tensor minEw(const Tensor &A, const Tensor &B);
Tensor log(const Tensor &A);
Tensor addScalar(const Tensor &A, float C);

/// out[i, j] = A[i] - B[j] (a materializing broadcast, like torch's
/// a[:, None] - b[None, :]).
Tensor outerSub(const Tensor &A, const Tensor &B);

/// out[i, j] = A[i, j] * V[j] (column broadcast).
Tensor mulCols(const Tensor &A, const Tensor &V);

/// out[i, j] = A[i, j] * R[i] (row broadcast).
Tensor mulRows(const Tensor &A, const Tensor &R);

/// Matrix-vector product: A[n, f], V[f] -> [n].
Tensor mv(const Tensor &A, const Tensor &V);

} // namespace eager
} // namespace ft

#endif // FT_OPFRAMEWORK_EAGER_H
