//===- opframework/eager.cpp ----------------------------------------------===//

#include "opframework/eager.h"

#include <algorithm>
#include <cmath>

using namespace ft;
using namespace ft::eager;

namespace {

OpStats GStats;
std::vector<std::function<void()>> GTape;

void countKernel(int64_t BytesRead, int64_t BytesWritten, int64_t Flops) {
  ++GStats.KernelLaunches;
  GStats.BytesRead += BytesRead;
  GStats.BytesWritten += BytesWritten;
  GStats.Flops += Flops;
}

int64_t numelOf(const std::vector<int64_t> &Shape) {
  int64_t N = 1;
  for (int64_t D : Shape)
    N *= D;
  return N;
}

} // namespace

OpStats &ft::eager::stats() { return GStats; }
void ft::eager::resetStats() { GStats = OpStats(); }
void ft::eager::clearTape() { GTape.clear(); }

//===----------------------------------------------------------------------===//
// Tensor / IndexTensor
//===----------------------------------------------------------------------===//

struct Tensor::ImplT {
  std::vector<int64_t> Shape;
  std::vector<float> Data;
  std::vector<float> Grad; ///< Lazily allocated.
  bool RequiresGrad = false;

  void ensureGrad() {
    if (Grad.empty()) {
      Grad.assign(Data.size(), 0.0f);
      GStats.BytesAllocated += static_cast<int64_t>(Data.size() * 4);
    }
  }
};

Tensor Tensor::zeros(std::vector<int64_t> Shape, bool RequiresGrad) {
  Tensor T;
  T.Impl = std::make_shared<ImplT>();
  T.Impl->Shape = std::move(Shape);
  T.Impl->Data.assign(numelOf(T.Impl->Shape), 0.0f);
  T.Impl->RequiresGrad = RequiresGrad;
  GStats.BytesAllocated += static_cast<int64_t>(T.Impl->Data.size() * 4);
  return T;
}

Tensor Tensor::fromVec(std::vector<int64_t> Shape, std::vector<float> Vals,
                       bool RequiresGrad) {
  Tensor T = zeros(std::move(Shape), RequiresGrad);
  ftAssert(static_cast<int64_t>(Vals.size()) == T.numel(),
           "fromVec element count mismatch");
  std::copy(Vals.begin(), Vals.end(), T.Impl->Data.begin());
  return T;
}

const std::vector<int64_t> &Tensor::shape() const {
  ftAssert(Impl != nullptr, "shape() of an undefined Tensor");
  return Impl->Shape;
}
int64_t Tensor::numel() const {
  return static_cast<int64_t>(Impl->Data.size());
}
float *Tensor::data() { return Impl->Data.data(); }
const float *Tensor::data() const { return Impl->Data.data(); }
bool Tensor::requiresGrad() const { return Impl && Impl->RequiresGrad; }

Tensor Tensor::grad() const {
  ftAssert(Impl != nullptr, "grad() of an undefined Tensor");
  Tensor G = zeros(Impl->Shape);
  if (!Impl->Grad.empty())
    std::copy(Impl->Grad.begin(), Impl->Grad.end(), G.Impl->Data.begin());
  return G;
}

struct IndexTensor::ImplT {
  std::vector<int64_t> Shape;
  std::vector<int64_t> Data;
};

IndexTensor IndexTensor::fromVec(std::vector<int64_t> Shape,
                                 std::vector<int64_t> Vals) {
  IndexTensor T;
  T.Impl = std::make_shared<ImplT>();
  T.Impl->Shape = std::move(Shape);
  ftAssert(static_cast<int64_t>(Vals.size()) == numelOf(T.Impl->Shape),
           "IndexTensor element count mismatch");
  T.Impl->Data = std::move(Vals);
  GStats.BytesAllocated += static_cast<int64_t>(T.Impl->Data.size() * 8);
  return T;
}

const std::vector<int64_t> &IndexTensor::shape() const {
  return Impl->Shape;
}
int64_t IndexTensor::numel() const {
  return static_cast<int64_t>(Impl->Data.size());
}
int64_t *IndexTensor::data() { return Impl->Data.data(); }
const int64_t *IndexTensor::data() const { return Impl->Data.data(); }

//===----------------------------------------------------------------------===//
// Op machinery
//===----------------------------------------------------------------------===//

namespace ft {
namespace eager {
/// Internal access for the operator implementations.
struct Ops {
  static std::shared_ptr<Tensor::ImplT> impl(const Tensor &T) {
    ftAssert(T.Impl != nullptr, "operator on an undefined Tensor");
    return T.Impl;
  }
  static Tensor wrap(std::shared_ptr<Tensor::ImplT> I) {
    Tensor T;
    T.Impl = std::move(I);
    return T;
  }
};
} // namespace eager
} // namespace ft

namespace {

using ImplPtr = std::shared_ptr<Tensor::ImplT>;

Tensor makeOut(std::vector<int64_t> Shape, bool RequiresGrad) {
  return Tensor::zeros(std::move(Shape), RequiresGrad);
}

/// Generic unary elementwise op with optional gradient.
Tensor unaryOp(const Tensor &A, const std::function<float(float)> &Fn,
               const std::function<float(float, float)> &DFn) {
  ImplPtr AI = Ops::impl(A);
  Tensor Out = makeOut(AI->Shape, A.requiresGrad());
  ImplPtr OI = Ops::impl(Out);
  int64_t N = static_cast<int64_t>(AI->Data.size());
  for (int64_t I = 0; I < N; ++I)
    OI->Data[I] = Fn(AI->Data[I]);
  countKernel(N * 4, N * 4, N);
  if (A.requiresGrad())
    GTape.push_back([AI, OI, DFn, N] {
      AI->ensureGrad();
      for (int64_t I = 0; I < N; ++I)
        AI->Grad[I] += DFn(AI->Data[I], OI->Data[I]) * OI->Grad[I];
      countKernel(3 * N * 4, N * 4, 2 * N);
    });
  return Out;
}

/// Generic same-shape binary elementwise op.
Tensor binaryOp(const Tensor &A, const Tensor &B,
                const std::function<float(float, float)> &Fn,
                const std::function<float(float, float)> &DA,
                const std::function<float(float, float)> &DB) {
  ImplPtr AI = Ops::impl(A), BI = Ops::impl(B);
  ftAssert(AI->Shape == BI->Shape, "elementwise shape mismatch");
  bool RG = A.requiresGrad() || B.requiresGrad();
  Tensor Out = makeOut(AI->Shape, RG);
  ImplPtr OI = Ops::impl(Out);
  int64_t N = static_cast<int64_t>(AI->Data.size());
  for (int64_t I = 0; I < N; ++I)
    OI->Data[I] = Fn(AI->Data[I], BI->Data[I]);
  countKernel(2 * N * 4, N * 4, N);
  if (RG) {
    bool NeedA = A.requiresGrad(), NeedB = B.requiresGrad();
    GTape.push_back([AI, BI, OI, DA, DB, N, NeedA, NeedB] {
      if (NeedA)
        AI->ensureGrad();
      if (NeedB)
        BI->ensureGrad();
      for (int64_t I = 0; I < N; ++I) {
        float G = OI->Grad[I];
        if (NeedA)
          AI->Grad[I] += DA(AI->Data[I], BI->Data[I]) * G;
        if (NeedB)
          BI->Grad[I] += DB(AI->Data[I], BI->Data[I]) * G;
      }
      countKernel(3 * N * 4, 2 * N * 4, 4 * N);
    });
  }
  return Out;
}

} // namespace

void ft::eager::backward(const Tensor &Out) {
  ImplPtr OI = Ops::impl(Out);
  OI->ensureGrad();
  std::fill(OI->Grad.begin(), OI->Grad.end(), 1.0f);
  countKernel(0, static_cast<int64_t>(OI->Grad.size() * 4), 0);
  for (auto It = GTape.rbegin(); It != GTape.rend(); ++It)
    (*It)();
  GTape.clear();
}

//===----------------------------------------------------------------------===//
// Operators
//===----------------------------------------------------------------------===//

Tensor ft::eager::add(const Tensor &A, const Tensor &B) {
  return binaryOp(
      A, B, [](float X, float Y) { return X + Y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
}

Tensor ft::eager::sub(const Tensor &A, const Tensor &B) {
  return binaryOp(
      A, B, [](float X, float Y) { return X - Y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor ft::eager::mul(const Tensor &A, const Tensor &B) {
  return binaryOp(
      A, B, [](float X, float Y) { return X * Y; },
      [](float, float Y) { return Y; }, [](float X, float) { return X; });
}

Tensor ft::eager::scale(const Tensor &A, float K) {
  return unaryOp(
      A, [K](float X) { return X * K; },
      [K](float, float) { return K; });
}

Tensor ft::eager::abs(const Tensor &A) {
  return unaryOp(
      A, [](float X) { return std::fabs(X); },
      [](float X, float) { return X >= 0 ? 1.0f : -1.0f; });
}

Tensor ft::eager::exp(const Tensor &A) {
  return unaryOp(
      A, [](float X) { return std::exp(X); },
      [](float, float Y) { return Y; });
}

Tensor ft::eager::relu(const Tensor &A) {
  return unaryOp(
      A, [](float X) { return X > 0 ? X : 0.0f; },
      [](float X, float) { return X > 0 ? 1.0f : 0.0f; });
}

Tensor ft::eager::sigmoid(const Tensor &A) {
  return unaryOp(
      A, [](float X) { return 1.0f / (1.0f + std::exp(-X)); },
      [](float, float Y) { return Y * (1.0f - Y); });
}

Tensor ft::eager::sumAxis(const Tensor &A, int Axis) {
  ImplPtr AI = Ops::impl(A);
  int NDim = static_cast<int>(AI->Shape.size());
  ftAssert(Axis >= 0 && Axis < NDim, "sumAxis axis out of range");
  std::vector<int64_t> OutShape;
  for (int D = 0; D < NDim; ++D)
    if (D != Axis)
      OutShape.push_back(AI->Shape[D]);
  int64_t Outer = 1, Mid = AI->Shape[Axis], Inner = 1;
  for (int D = 0; D < Axis; ++D)
    Outer *= AI->Shape[D];
  for (int D = Axis + 1; D < NDim; ++D)
    Inner *= AI->Shape[D];

  Tensor Out = makeOut(OutShape, A.requiresGrad());
  ImplPtr OI = Ops::impl(Out);
  for (int64_t O = 0; O < Outer; ++O)
    for (int64_t M = 0; M < Mid; ++M)
      for (int64_t I = 0; I < Inner; ++I)
        OI->Data[O * Inner + I] += AI->Data[(O * Mid + M) * Inner + I];
  int64_t N = Outer * Mid * Inner;
  countKernel(N * 4, Outer * Inner * 4, N);
  if (A.requiresGrad())
    GTape.push_back([AI, OI, Outer, Mid, Inner] {
      AI->ensureGrad();
      for (int64_t O = 0; O < Outer; ++O)
        for (int64_t M = 0; M < Mid; ++M)
          for (int64_t I = 0; I < Inner; ++I)
            AI->Grad[(O * Mid + M) * Inner + I] += OI->Grad[O * Inner + I];
      countKernel(Outer * Inner * 4, Outer * Mid * Inner * 4,
                  Outer * Mid * Inner);
    });
  return Out;
}

Tensor ft::eager::sumAll(const Tensor &A) {
  ImplPtr AI = Ops::impl(A);
  Tensor Out = makeOut({}, A.requiresGrad());
  ImplPtr OI = Ops::impl(Out);
  double Acc = 0;
  for (float V : AI->Data)
    Acc += V;
  OI->Data[0] = static_cast<float>(Acc);
  int64_t N = static_cast<int64_t>(AI->Data.size());
  countKernel(N * 4, 4, N);
  if (A.requiresGrad())
    GTape.push_back([AI, OI, N] {
      AI->ensureGrad();
      for (int64_t I = 0; I < N; ++I)
        AI->Grad[I] += OI->Grad[0];
      countKernel(4, N * 4, N);
    });
  return Out;
}

Tensor ft::eager::softmaxLast(const Tensor &A) {
  ImplPtr AI = Ops::impl(A);
  ftAssert(AI->Shape.size() >= 1, "softmaxLast needs at least 1-D");
  int64_t C = AI->Shape.back();
  int64_t R = static_cast<int64_t>(AI->Data.size()) / C;
  Tensor Out = makeOut(AI->Shape, A.requiresGrad());
  ImplPtr OI = Ops::impl(Out);
  for (int64_t Row = 0; Row < R; ++Row) {
    const float *X = &AI->Data[Row * C];
    float *Y = &OI->Data[Row * C];
    float Mx = X[0];
    for (int64_t I = 1; I < C; ++I)
      Mx = std::max(Mx, X[I]);
    float Den = 0;
    for (int64_t I = 0; I < C; ++I) {
      Y[I] = std::exp(X[I] - Mx);
      Den += Y[I];
    }
    for (int64_t I = 0; I < C; ++I)
      Y[I] /= Den;
  }
  int64_t N = R * C;
  countKernel(N * 4, N * 4, 4 * N);
  if (A.requiresGrad())
    GTape.push_back([AI, OI, R, C] {
      AI->ensureGrad();
      for (int64_t Row = 0; Row < R; ++Row) {
        const float *Y = &OI->Data[Row * C];
        const float *GY = &OI->Grad[Row * C];
        float Dot = 0;
        for (int64_t I = 0; I < C; ++I)
          Dot += Y[I] * GY[I];
        for (int64_t I = 0; I < C; ++I)
          AI->Grad[Row * C + I] += Y[I] * (GY[I] - Dot);
      }
      countKernel(2 * R * C * 4, R * C * 4, 4 * R * C);
    });
  return Out;
}

Tensor ft::eager::matmul(const Tensor &A, const Tensor &B) {
  ImplPtr AI = Ops::impl(A), BI = Ops::impl(B);
  ftAssert(AI->Shape.size() == 2 && BI->Shape.size() == 2,
           "matmul needs 2-D tensors");
  int64_t M = AI->Shape[0], K = AI->Shape[1], N = BI->Shape[1];
  ftAssert(BI->Shape[0] == K, "matmul inner dimension mismatch");
  bool RG = A.requiresGrad() || B.requiresGrad();
  Tensor Out = makeOut({M, N}, RG);
  ImplPtr OI = Ops::impl(Out);
  for (int64_t I = 0; I < M; ++I)
    for (int64_t Kk = 0; Kk < K; ++Kk) {
      float AV = AI->Data[I * K + Kk];
      for (int64_t J = 0; J < N; ++J)
        OI->Data[I * N + J] += AV * BI->Data[Kk * N + J];
    }
  countKernel((M * K + K * N) * 4, M * N * 4, 2 * M * N * K);
  if (RG) {
    bool NeedA = A.requiresGrad(), NeedB = B.requiresGrad();
    GTape.push_back([AI, BI, OI, M, N, K, NeedA, NeedB] {
      if (NeedA) {
        AI->ensureGrad();
        for (int64_t I = 0; I < M; ++I)
          for (int64_t J = 0; J < N; ++J) {
            float G = OI->Grad[I * N + J];
            for (int64_t Kk = 0; Kk < K; ++Kk)
              AI->Grad[I * K + Kk] += G * BI->Data[Kk * N + J];
          }
        countKernel((M * N + K * N) * 4, M * K * 4, 2 * M * N * K);
      }
      if (NeedB) {
        BI->ensureGrad();
        for (int64_t Kk = 0; Kk < K; ++Kk)
          for (int64_t I = 0; I < M; ++I) {
            float AV = AI->Data[I * K + Kk];
            for (int64_t J = 0; J < N; ++J)
              BI->Grad[Kk * N + J] += AV * OI->Grad[I * N + J];
          }
        countKernel((M * K + M * N) * 4, K * N * 4, 2 * M * N * K);
      }
    });
  }
  return Out;
}

Tensor ft::eager::indexSelect0(const Tensor &A, const IndexTensor &Idx) {
  ImplPtr AI = Ops::impl(A);
  int64_t Rows = AI->Shape[0];
  int64_t RowSize = A.numel() / Rows;
  std::vector<int64_t> OutShape = Idx.shape();
  for (size_t D = 1; D < AI->Shape.size(); ++D)
    OutShape.push_back(AI->Shape[D]);
  Tensor Out = makeOut(OutShape, A.requiresGrad());
  ImplPtr OI = Ops::impl(Out);
  int64_t NIdx = Idx.numel();
  const int64_t *IdxData = Idx.data();
  for (int64_t I = 0; I < NIdx; ++I) {
    int64_t Src = IdxData[I];
    ftAssert(Src >= 0 && Src < Rows, "indexSelect0 out of range");
    std::copy(&AI->Data[Src * RowSize], &AI->Data[(Src + 1) * RowSize],
              &OI->Data[I * RowSize]);
  }
  countKernel(NIdx * RowSize * 4 + NIdx * 8, NIdx * RowSize * 4, 0);
  if (A.requiresGrad()) {
    std::vector<int64_t> IdxCopy(IdxData, IdxData + NIdx);
    GTape.push_back([AI, OI, IdxCopy, RowSize, NIdx] {
      AI->ensureGrad();
      for (int64_t I = 0; I < NIdx; ++I)
        for (int64_t C = 0; C < RowSize; ++C)
          AI->Grad[IdxCopy[I] * RowSize + C] += OI->Grad[I * RowSize + C];
      countKernel(NIdx * RowSize * 4, NIdx * RowSize * 4, NIdx * RowSize);
    });
  }
  return Out;
}

Tensor ft::eager::scatterAdd0(const Tensor &A, const IndexTensor &Idx,
                              int64_t OutRows) {
  ImplPtr AI = Ops::impl(A);
  int64_t Rows = AI->Shape[0];
  ftAssert(Idx.numel() == Rows, "scatterAdd0 index count mismatch");
  int64_t RowSize = A.numel() / Rows;
  std::vector<int64_t> OutShape = AI->Shape;
  OutShape[0] = OutRows;
  Tensor Out = makeOut(OutShape, A.requiresGrad());
  ImplPtr OI = Ops::impl(Out);
  const int64_t *IdxData = Idx.data();
  for (int64_t I = 0; I < Rows; ++I) {
    int64_t Dst = IdxData[I];
    ftAssert(Dst >= 0 && Dst < OutRows, "scatterAdd0 out of range");
    for (int64_t C = 0; C < RowSize; ++C)
      OI->Data[Dst * RowSize + C] += AI->Data[I * RowSize + C];
  }
  countKernel(Rows * RowSize * 4 + Rows * 8, Rows * RowSize * 4,
              Rows * RowSize);
  if (A.requiresGrad()) {
    std::vector<int64_t> IdxCopy(IdxData, IdxData + Rows);
    GTape.push_back([AI, OI, IdxCopy, Rows, RowSize] {
      AI->ensureGrad();
      for (int64_t I = 0; I < Rows; ++I)
        for (int64_t C = 0; C < RowSize; ++C)
          AI->Grad[I * RowSize + C] += OI->Grad[IdxCopy[I] * RowSize + C];
      countKernel(Rows * RowSize * 4, Rows * RowSize * 4, 0);
    });
  }
  return Out;
}

Tensor ft::eager::roll1(const Tensor &A, int64_t Shift) {
  ImplPtr AI = Ops::impl(A);
  ftAssert(AI->Shape.size() == 3, "roll1 needs a 3-D tensor");
  int64_t N0 = AI->Shape[0], N1 = AI->Shape[1], N2 = AI->Shape[2];
  Tensor Out = makeOut(AI->Shape, A.requiresGrad());
  ImplPtr OI = Ops::impl(Out);
  auto Wrap = [N1](int64_t J) { return ((J % N1) + N1) % N1; };
  for (int64_t I = 0; I < N0; ++I)
    for (int64_t J = 0; J < N1; ++J) {
      int64_t SrcJ = Wrap(J + Shift);
      std::copy(&AI->Data[(I * N1 + SrcJ) * N2],
                &AI->Data[(I * N1 + SrcJ + 1) * N2],
                &OI->Data[(I * N1 + J) * N2]);
    }
  int64_t N = A.numel();
  countKernel(N * 4, N * 4, 0);
  if (A.requiresGrad())
    GTape.push_back([AI, OI, N0, N1, N2, Shift, Wrap] {
      // Gradient of a permutation is the inverse permutation.
      AI->ensureGrad();
      for (int64_t I = 0; I < N0; ++I)
        for (int64_t J = 0; J < N1; ++J) {
          int64_t SrcJ = Wrap(J + Shift);
          for (int64_t C = 0; C < N2; ++C)
            AI->Grad[(I * N1 + SrcJ) * N2 + C] +=
                OI->Grad[(I * N1 + J) * N2 + C];
        }
      countKernel(N0 * N1 * N2 * 4, N0 * N1 * N2 * 4, 0);
    });
  return Out;
}

Tensor ft::eager::slidingWindows(const Tensor &A, int64_t W) {
  ImplPtr AI = Ops::impl(A);
  ftAssert(AI->Shape.size() == 2, "slidingWindows needs a 2-D tensor");
  int64_t N = AI->Shape[0], D = AI->Shape[1];
  int64_t Win = 2 * W + 1;
  Tensor Out = makeOut({N, Win, D}, A.requiresGrad());
  ImplPtr OI = Ops::impl(Out);
  for (int64_t I = 0; I < N; ++I)
    for (int64_t K = -W; K <= W; ++K) {
      int64_t Src = I + K;
      float *Dst = &OI->Data[(I * Win + (K + W)) * D];
      if (Src < 0 || Src >= N)
        continue; // Already zero (padding).
      std::copy(&AI->Data[Src * D], &AI->Data[(Src + 1) * D], Dst);
    }
  countKernel(N * Win * D * 4, N * Win * D * 4, 0);
  if (A.requiresGrad())
    GTape.push_back([AI, OI, N, D, W, Win] {
      AI->ensureGrad();
      for (int64_t I = 0; I < N; ++I)
        for (int64_t K = -W; K <= W; ++K) {
          int64_t Src = I + K;
          if (Src < 0 || Src >= N)
            continue;
          for (int64_t C = 0; C < D; ++C)
            AI->Grad[Src * D + C] += OI->Grad[(I * Win + (K + W)) * D + C];
        }
      countKernel(N * Win * D * 4, N * Win * D * 4, N * Win * D);
    });
  return Out;
}

Tensor ft::eager::bmvDot(const Tensor &A, const Tensor &B) {
  ImplPtr AI = Ops::impl(A), BI = Ops::impl(B);
  ftAssert(AI->Shape.size() == 3 && BI->Shape.size() == 2, "bmvDot shapes");
  int64_t N = AI->Shape[0], Wn = AI->Shape[1], D = AI->Shape[2];
  ftAssert(BI->Shape[0] == N && BI->Shape[1] == D, "bmvDot shape mismatch");
  bool RG = A.requiresGrad() || B.requiresGrad();
  Tensor Out = makeOut({N, Wn}, RG);
  ImplPtr OI = Ops::impl(Out);
  for (int64_t I = 0; I < N; ++I)
    for (int64_t Wj = 0; Wj < Wn; ++Wj) {
      float Acc = 0;
      for (int64_t C = 0; C < D; ++C)
        Acc += AI->Data[(I * Wn + Wj) * D + C] * BI->Data[I * D + C];
      OI->Data[I * Wn + Wj] = Acc;
    }
  countKernel((N * Wn * D + N * D) * 4, N * Wn * 4, 2 * N * Wn * D);
  if (RG) {
    bool NeedA = A.requiresGrad(), NeedB = B.requiresGrad();
    GTape.push_back([AI, BI, OI, N, Wn, D, NeedA, NeedB] {
      if (NeedA)
        AI->ensureGrad();
      if (NeedB)
        BI->ensureGrad();
      for (int64_t I = 0; I < N; ++I)
        for (int64_t Wj = 0; Wj < Wn; ++Wj) {
          float G = OI->Grad[I * Wn + Wj];
          for (int64_t C = 0; C < D; ++C) {
            if (NeedA)
              AI->Grad[(I * Wn + Wj) * D + C] += G * BI->Data[I * D + C];
            if (NeedB)
              BI->Grad[I * D + C] += G * AI->Data[(I * Wn + Wj) * D + C];
          }
        }
      countKernel(2 * N * Wn * D * 4, 2 * N * Wn * D * 4, 4 * N * Wn * D);
    });
  }
  return Out;
}

Tensor ft::eager::bmvWeight(const Tensor &P, const Tensor &V) {
  ImplPtr PI = Ops::impl(P), VI = Ops::impl(V);
  ftAssert(PI->Shape.size() == 2 && VI->Shape.size() == 3,
           "bmvWeight shapes");
  int64_t N = PI->Shape[0], Wn = PI->Shape[1], D = VI->Shape[2];
  ftAssert(VI->Shape[0] == N && VI->Shape[1] == Wn,
           "bmvWeight shape mismatch");
  bool RG = P.requiresGrad() || V.requiresGrad();
  Tensor Out = makeOut({N, D}, RG);
  ImplPtr OI = Ops::impl(Out);
  for (int64_t I = 0; I < N; ++I)
    for (int64_t Wj = 0; Wj < Wn; ++Wj) {
      float Pv = PI->Data[I * Wn + Wj];
      for (int64_t C = 0; C < D; ++C)
        OI->Data[I * D + C] += Pv * VI->Data[(I * Wn + Wj) * D + C];
    }
  countKernel((N * Wn + N * Wn * D) * 4, N * D * 4, 2 * N * Wn * D);
  if (RG) {
    bool NeedP = P.requiresGrad(), NeedV = V.requiresGrad();
    GTape.push_back([PI, VI, OI, N, Wn, D, NeedP, NeedV] {
      if (NeedP)
        PI->ensureGrad();
      if (NeedV)
        VI->ensureGrad();
      for (int64_t I = 0; I < N; ++I)
        for (int64_t Wj = 0; Wj < Wn; ++Wj)
          for (int64_t C = 0; C < D; ++C) {
            float G = OI->Grad[I * D + C];
            if (NeedP)
              PI->Grad[I * Wn + Wj] +=
                  G * VI->Data[(I * Wn + Wj) * D + C];
            if (NeedV)
              VI->Grad[(I * Wn + Wj) * D + C] +=
                  G * PI->Data[I * Wn + Wj];
          }
      countKernel(2 * N * Wn * D * 4, 2 * N * Wn * D * 4, 4 * N * Wn * D);
    });
  }
  return Out;
}

Tensor ft::eager::divEw(const Tensor &A, const Tensor &B) {
  return binaryOp(
      A, B, [](float X, float Y) { return X / Y; },
      [](float, float Y) { return 1.0f / Y; },
      [](float X, float Y) { return -X / (Y * Y); });
}

Tensor ft::eager::minEw(const Tensor &A, const Tensor &B) {
  return binaryOp(
      A, B, [](float X, float Y) { return std::min(X, Y); },
      [](float X, float Y) { return X <= Y ? 1.0f : 0.0f; },
      [](float X, float Y) { return Y < X ? 1.0f : 0.0f; });
}

Tensor ft::eager::log(const Tensor &A) {
  return unaryOp(
      A, [](float X) { return std::log(X); },
      [](float X, float) { return 1.0f / X; });
}

Tensor ft::eager::addScalar(const Tensor &A, float C) {
  return unaryOp(
      A, [C](float X) { return X + C; },
      [](float, float) { return 1.0f; });
}

Tensor ft::eager::outerSub(const Tensor &A, const Tensor &B) {
  ImplPtr AI = Ops::impl(A), BI = Ops::impl(B);
  ftAssert(AI->Shape.size() == 1 && BI->Shape.size() == 1,
           "outerSub needs 1-D tensors");
  int64_t P = AI->Shape[0], F = BI->Shape[0];
  bool RG = A.requiresGrad() || B.requiresGrad();
  Tensor Out = makeOut({P, F}, RG);
  ImplPtr OI = Ops::impl(Out);
  for (int64_t I = 0; I < P; ++I)
    for (int64_t J = 0; J < F; ++J)
      OI->Data[I * F + J] = AI->Data[I] - BI->Data[J];
  countKernel((P + F) * 4, P * F * 4, P * F);
  if (RG) {
    bool NeedA = A.requiresGrad(), NeedB = B.requiresGrad();
    GTape.push_back([AI, BI, OI, P, F, NeedA, NeedB] {
      if (NeedA)
        AI->ensureGrad();
      if (NeedB)
        BI->ensureGrad();
      for (int64_t I = 0; I < P; ++I)
        for (int64_t J = 0; J < F; ++J) {
          float G = OI->Grad[I * F + J];
          if (NeedA)
            AI->Grad[I] += G;
          if (NeedB)
            BI->Grad[J] -= G;
        }
      countKernel(P * F * 4, (P + F) * 4, 2 * P * F);
    });
  }
  return Out;
}

namespace {

/// Shared implementation of the row/column broadcast multiplies.
Tensor broadcastMul(const Tensor &A, const Tensor &V, bool ByRow) {
  ImplPtr AI = Ops::impl(A), VI = Ops::impl(V);
  ftAssert(AI->Shape.size() == 2 && VI->Shape.size() == 1,
           "broadcast mul shapes");
  int64_t R = AI->Shape[0], C = AI->Shape[1];
  ftAssert(VI->Shape[0] == (ByRow ? R : C), "broadcast length mismatch");
  bool RG = A.requiresGrad() || V.requiresGrad();
  Tensor Out = Tensor::zeros({R, C}, RG);
  ImplPtr OI = Ops::impl(Out);
  for (int64_t I = 0; I < R; ++I)
    for (int64_t J = 0; J < C; ++J)
      OI->Data[I * C + J] =
          AI->Data[I * C + J] * VI->Data[ByRow ? I : J];
  countKernel((R * C + (ByRow ? R : C)) * 4, R * C * 4, R * C);
  if (RG) {
    bool NeedA = A.requiresGrad(), NeedV = V.requiresGrad();
    GTape.push_back([AI, VI, OI, R, C, ByRow, NeedA, NeedV] {
      if (NeedA)
        AI->ensureGrad();
      if (NeedV)
        VI->ensureGrad();
      for (int64_t I = 0; I < R; ++I)
        for (int64_t J = 0; J < C; ++J) {
          float G = OI->Grad[I * C + J];
          int64_t VIdx = ByRow ? I : J;
          if (NeedA)
            AI->Grad[I * C + J] += G * VI->Data[VIdx];
          if (NeedV)
            VI->Grad[VIdx] += G * AI->Data[I * C + J];
        }
      countKernel(2 * R * C * 4, 2 * R * C * 4, 4 * R * C);
    });
  }
  return Out;
}

} // namespace

Tensor ft::eager::mulCols(const Tensor &A, const Tensor &V) {
  return broadcastMul(A, V, /*ByRow=*/false);
}

Tensor ft::eager::mulRows(const Tensor &A, const Tensor &R) {
  return broadcastMul(A, R, /*ByRow=*/true);
}

Tensor ft::eager::mv(const Tensor &A, const Tensor &V) {
  ImplPtr AI = Ops::impl(A), VI = Ops::impl(V);
  ftAssert(AI->Shape.size() == 2 && VI->Shape.size() == 1, "mv shapes");
  int64_t N = AI->Shape[0], F = AI->Shape[1];
  ftAssert(VI->Shape[0] == F, "mv length mismatch");
  bool RG = A.requiresGrad() || V.requiresGrad();
  Tensor Out = Tensor::zeros({N}, RG);
  ImplPtr OI = Ops::impl(Out);
  for (int64_t I = 0; I < N; ++I) {
    float Acc = 0;
    for (int64_t J = 0; J < F; ++J)
      Acc += AI->Data[I * F + J] * VI->Data[J];
    OI->Data[I] = Acc;
  }
  countKernel((N * F + F) * 4, N * 4, 2 * N * F);
  if (RG) {
    bool NeedA = A.requiresGrad(), NeedV = V.requiresGrad();
    GTape.push_back([AI, VI, OI, N, F, NeedA, NeedV] {
      if (NeedA)
        AI->ensureGrad();
      if (NeedV)
        VI->ensureGrad();
      for (int64_t I = 0; I < N; ++I) {
        float G = OI->Grad[I];
        for (int64_t J = 0; J < F; ++J) {
          if (NeedA)
            AI->Grad[I * F + J] += G * VI->Data[J];
          if (NeedV)
            VI->Grad[J] += G * AI->Data[I * F + J];
        }
      }
      countKernel(2 * N * F * 4, 2 * N * F * 4, 4 * N * F);
    });
  }
  return Out;
}

Tensor ft::eager::maskedFill(const Tensor &A, const Tensor &Mask,
                             float Value) {
  ImplPtr AI = Ops::impl(A), MI = Ops::impl(Mask);
  ftAssert(AI->Shape == MI->Shape, "maskedFill shape mismatch");
  Tensor Out = makeOut(AI->Shape, A.requiresGrad());
  ImplPtr OI = Ops::impl(Out);
  int64_t N = A.numel();
  for (int64_t I = 0; I < N; ++I)
    OI->Data[I] = MI->Data[I] != 0 ? AI->Data[I] : Value;
  countKernel(2 * N * 4, N * 4, 0);
  if (A.requiresGrad())
    GTape.push_back([AI, MI, OI, N] {
      AI->ensureGrad();
      for (int64_t I = 0; I < N; ++I)
        if (MI->Data[I] != 0)
          AI->Grad[I] += OI->Grad[I];
      countKernel(2 * N * 4, N * 4, 0);
    });
  return Out;
}
