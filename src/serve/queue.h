//===- serve/queue.h - Bounded MPMC request queue ----------------*- C++ -*-===//
///
/// \file
/// The bounded multi-producer/multi-consumer queue at the front of the
/// kernel-serving runtime (serve/serve.h). Capacity is the backpressure
/// mechanism: producers either observe Full (reject policy) or block until
/// space frees (block policy); consumers block until work or close().
///
/// Beyond plain push/pop it supports the dispatcher's micro-batching scan:
/// extractIf pulls every queued element matching a predicate (same kernel
/// fingerprint) so one worker can execute them back-to-back, and the timed
/// variant keeps collecting arrivals until a deadline — the batch window.
///
//===----------------------------------------------------------------------===//

#ifndef FT_SERVE_QUEUE_H
#define FT_SERVE_QUEUE_H

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace ft::serve {

/// Outcome of a push attempt.
enum class PushResult {
  Ok,     ///< Enqueued.
  Full,   ///< Bounded capacity reached (tryPush only).
  Closed, ///< close() was called; the queue accepts nothing further.
};

/// See the file comment. All operations are linearizable under one internal
/// mutex; elements must be movable.
template <typename T> class BoundedQueue {
public:
  explicit BoundedQueue(size_t Cap) : Cap(Cap < 1 ? 1 : Cap) {}

  /// Non-blocking enqueue: Full when at capacity (the reject policy).
  PushResult tryPush(T V) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (IsClosed)
        return PushResult::Closed;
      if (Q.size() >= Cap)
        return PushResult::Full;
      Q.push_back(std::move(V));
    }
    NotEmpty.notify_one();
    return PushResult::Ok;
  }

  /// Blocking enqueue: waits while full (the block policy). Closed when the
  /// queue is closed before space frees.
  PushResult pushWait(T V) {
    {
      std::unique_lock<std::mutex> Lock(Mu);
      NotFull.wait(Lock, [&] { return IsClosed || Q.size() < Cap; });
      if (IsClosed)
        return PushResult::Closed;
      Q.push_back(std::move(V));
    }
    NotEmpty.notify_one();
    return PushResult::Ok;
  }

  /// Blocking dequeue of the oldest element; nullopt once closed and
  /// drained (the consumer's exit signal).
  std::optional<T> popWait() {
    std::optional<T> Out;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      NotEmpty.wait(Lock, [&] { return IsClosed || !Q.empty(); });
      if (Q.empty())
        return std::nullopt;
      Out = std::move(Q.front());
      Q.pop_front();
    }
    NotFull.notify_one();
    return Out;
  }

  /// Removes up to \p Max queued elements satisfying \p P (front to back,
  /// preserving order) into \p Out. Non-blocking; returns the count moved.
  template <typename Pred>
  size_t extractIf(const Pred &P, size_t Max, std::vector<T> &Out) {
    size_t Moved = 0;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Moved = extractLocked(P, Max, Out);
    }
    if (Moved > 0)
      NotFull.notify_all();
    return Moved;
  }

  /// Like extractIf, but keeps collecting matching arrivals until \p Max
  /// elements were gathered or \p Deadline passes — the micro-batch window.
  /// Non-matching elements are left queued for other consumers.
  template <typename Pred>
  size_t extractIfUntil(const Pred &P, size_t Max,
                        std::chrono::steady_clock::time_point Deadline,
                        std::vector<T> &Out) {
    size_t Moved = 0;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      for (;;) {
        Moved += extractLocked(P, Max - Moved, Out);
        if (Moved >= Max || IsClosed)
          break;
        if (NotEmpty.wait_until(Lock, Deadline) == std::cv_status::timeout) {
          Moved += extractLocked(P, Max - Moved, Out);
          break;
        }
      }
    }
    if (Moved > 0)
      NotFull.notify_all();
    return Moved;
  }

  /// Rejects all further pushes and wakes every waiter. Elements already
  /// queued stay poppable (drain-on-shutdown pops them before exiting).
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      IsClosed = true;
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return IsClosed;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Q.size();
  }

  size_t capacity() const { return Cap; }

private:
  template <typename Pred>
  size_t extractLocked(const Pred &P, size_t Max, std::vector<T> &Out) {
    size_t Moved = 0;
    for (auto It = Q.begin(); It != Q.end() && Moved < Max;) {
      if (P(*It)) {
        Out.push_back(std::move(*It));
        It = Q.erase(It);
        ++Moved;
      } else {
        ++It;
      }
    }
    return Moved;
  }

  mutable std::mutex Mu;
  std::condition_variable NotEmpty;
  std::condition_variable NotFull;
  std::deque<T> Q;
  size_t Cap;
  bool IsClosed = false;
};

} // namespace ft::serve

#endif // FT_SERVE_QUEUE_H
