//===- serve/telemetry.cpp - Serving telemetry plane ----------------------===//

#include "serve/telemetry.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>
#include <unistd.h>

#include "codegen/profile.h"
#include "support/metrics.h"
#include "support/string_utils.h"
#include "support/trace.h"

namespace fs = std::filesystem;

namespace ft::serve::telemetry {

namespace detail {
std::atomic<bool> Enabled{false};
} // namespace detail

void setEnabled(bool On) {
  detail::Enabled.store(On, std::memory_order_relaxed);
}

namespace {

long envLong(const char *Name, long Default, long Min) {
  const char *E = std::getenv(Name);
  if (!E || !*E)
    return Default;
  char *End = nullptr;
  long V = std::strtol(E, &End, 10);
  if (End == E)
    return Default;
  return V < Min ? Min : V;
}

//===----------------------------------------------------------------------===//
// Hook state
//===----------------------------------------------------------------------===//

/// Histogram references resolved once; record() is then pure relaxed
/// atomics. Grouped in a leaked singleton so the first hook call pays the
/// registry lookups, not every call.
struct Hists {
  metrics::Histogram &QueueWait = metrics::histogram("serve/queue_wait_ns");
  metrics::Histogram &RunJit = metrics::histogram("serve/run_ns_jit");
  metrics::Histogram &RunInterp = metrics::histogram("serve/run_ns_interp");
  metrics::Histogram &BatchSize = metrics::histogram("serve/batch_size");
  metrics::Histogram &CompileNs = metrics::histogram("serve/compile_ns");
};

Hists &hists() {
  static Hists *H = new Hists;
  return *H;
}

/// Per-fingerprint aggregates behind hotKernels(). One short mutex hold
/// per completed request — only paid when telemetry is on.
struct Agg {
  uint64_t Requests = 0;
  uint64_t TotalNs = 0;
  uint64_t Jit = 0;
  uint64_t Interp = 0;
  uint64_t Errors = 0;
};

std::mutex AggMu;
std::map<uint64_t, Agg> &aggs() {
  static std::map<uint64_t, Agg> *M = new std::map<uint64_t, Agg>;
  return *M;
}

std::atomic<uint64_t> NextBatchId{0};
std::atomic<uint64_t> SnapSeq{0};
std::atomic<uint64_t> SnapsWritten{0};

double nowWallMs() {
  return double(std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count());
}

std::string hexFp(uint64_t Fp) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(Fp));
  return Buf;
}

} // namespace

Config Config::fromEnv() {
  Config C;
  if (const char *E = std::getenv("FT_TELEMETRY_DIR"))
    C.Dir = E;
  C.IntervalMs =
      static_cast<int>(envLong("FT_TELEMETRY_INTERVAL_MS", C.IntervalMs, 10));
  C.Keep = static_cast<int>(envLong("FT_TELEMETRY_KEEP", C.Keep, 1));
  return C;
}

//===----------------------------------------------------------------------===//
// Hooks
//===----------------------------------------------------------------------===//

void onRequestComplete(const RequestSample &S) {
  if (!enabled())
    return;
  Hists &H = hists();
  H.QueueWait.record(S.QueueNs);
  if (S.Out == Outcome::Ok)
    (S.ServedBy == Tier::Jit ? H.RunJit : H.RunInterp).record(S.RunNs);

  FlightEvent E;
  E.TsUs = trace::nowMicros();
  E.Fingerprint = S.Fingerprint;
  E.Tier = nameOf(S.ServedBy);
  E.Out = S.Out;
  E.QueueNs = S.QueueNs;
  E.RunNs = S.RunNs;
  E.TotalNs = S.TotalNs;
  E.BatchSize = S.BatchSize;
  E.BatchId = S.BatchId;
  E.Error = S.Error;
  flightRecorder().record(std::move(E));

  std::lock_guard<std::mutex> L(AggMu);
  Agg &A = aggs()[S.Fingerprint];
  ++A.Requests;
  A.TotalNs += S.TotalNs;
  if (S.ServedBy == Tier::Jit)
    ++A.Jit;
  else
    ++A.Interp;
  if (S.Out != Outcome::Ok)
    ++A.Errors;
}

void onReject(uint64_t Fingerprint, Outcome Out) {
  if (!enabled())
    return;
  FlightEvent E;
  E.TsUs = trace::nowMicros();
  E.Fingerprint = Fingerprint;
  E.Out = Out;
  flightRecorder().record(std::move(E));
}

uint64_t onBatch(uint32_t Size) {
  if (!enabled())
    return 0;
  hists().BatchSize.record(Size);
  return NextBatchId.fetch_add(1, std::memory_order_relaxed) + 1;
}

void onCompile(uint64_t Ns, bool Ok) {
  if (!enabled())
    return;
  (void)Ok;
  hists().CompileNs.record(Ns);
}

//===----------------------------------------------------------------------===//
// Hot-kernel ranking
//===----------------------------------------------------------------------===//

std::vector<HotKernel> hotKernels(size_t TopK) {
  std::vector<HotKernel> Out;
  {
    std::lock_guard<std::mutex> L(AggMu);
    Out.reserve(aggs().size());
    for (const auto &[Fp, A] : aggs()) {
      HotKernel K;
      K.Fingerprint = Fp;
      K.Requests = A.Requests;
      K.TotalNs = A.TotalNs;
      K.MeanNs = A.Requests ? double(A.TotalNs) / double(A.Requests) : 0;
      K.Jit = A.Jit;
      K.Interp = A.Interp;
      K.Errors = A.Errors;
      Out.push_back(K);
    }
  }
  std::sort(Out.begin(), Out.end(), [](const HotKernel &A, const HotKernel &B) {
    if (A.TotalNs != B.TotalNs)
      return A.TotalNs > B.TotalNs;
    return A.Fingerprint < B.Fingerprint; // deterministic tie-break
  });
  if (TopK != 0 && Out.size() > TopK)
    Out.resize(TopK);
  return Out;
}

//===----------------------------------------------------------------------===//
// Snapshot serialization
//===----------------------------------------------------------------------===//

namespace {

void appendKeyU64(std::string &J, const char *Key, uint64_t V, bool Comma) {
  J += '"';
  J += Key;
  J += "\":";
  J += std::to_string(V);
  if (Comma)
    J += ',';
}

void appendKeyNum(std::string &J, const char *Key, double V, bool Comma) {
  J += '"';
  J += Key;
  J += "\":";
  J += fmtDouble(V);
  if (Comma)
    J += ',';
}

void appendKeyStr(std::string &J, const char *Key, const std::string &V,
                  bool Comma) {
  J += '"';
  J += Key;
  J += "\":\"";
  J += jsonEscape(V);
  J += '"';
  if (Comma)
    J += ',';
}

void appendFlightEvent(std::string &J, const FlightEvent &E) {
  J += '{';
  appendKeyU64(J, "seq", E.Seq, true);
  appendKeyNum(J, "ts_us", E.TsUs, true);
  appendKeyStr(J, "fingerprint", hexFp(E.Fingerprint), true);
  appendKeyStr(J, "tier", E.Tier, true);
  appendKeyStr(J, "outcome", nameOf(E.Out), true);
  appendKeyU64(J, "queue_ns", E.QueueNs, true);
  appendKeyU64(J, "run_ns", E.RunNs, true);
  appendKeyU64(J, "total_ns", E.TotalNs, true);
  appendKeyU64(J, "batch_size", E.BatchSize, true);
  appendKeyU64(J, "batch_id", E.BatchId, !E.Error.empty());
  if (!E.Error.empty())
    appendKeyStr(J, "error", E.Error, false);
  J += '}';
}

} // namespace

std::string writeSnapshotString() {
  uint64_t Seq = SnapSeq.fetch_add(1, std::memory_order_relaxed) + 1;

  std::string J;
  J.reserve(8192);
  J += '{';
  appendKeyStr(J, "schema", "freetensor-telemetry/v1", true);
  appendKeyU64(J, "seq", Seq, true);
  appendKeyNum(J, "wall_unix_ms", nowWallMs(), true);

  // Every registered counter, sorted by name.
  J += "\"counters\":{";
  bool First = true;
  for (const auto &[Name, Val] : metrics::snapshot()) {
    if (!First)
      J += ',';
    First = false;
    J += '"';
    J += jsonEscape(Name);
    J += "\":";
    J += std::to_string(Val);
  }
  J += "},";

  // Non-empty histograms with estimated percentiles and sparse buckets.
  J += "\"histograms\":[";
  First = true;
  for (const metrics::HistogramSnapshot &H : metrics::snapshotHistograms()) {
    if (H.Count == 0)
      continue;
    if (!First)
      J += ',';
    First = false;
    J += '{';
    appendKeyStr(J, "name", H.Name, true);
    appendKeyU64(J, "count", H.Count, true);
    appendKeyU64(J, "sum", H.Sum, true);
    appendKeyU64(J, "min", H.Min, true);
    appendKeyU64(J, "max", H.Max, true);
    appendKeyNum(J, "mean", H.mean(), true);
    appendKeyNum(J, "p50", H.quantile(0.50), true);
    appendKeyNum(J, "p95", H.quantile(0.95), true);
    appendKeyNum(J, "p99", H.quantile(0.99), true);
    J += "\"buckets\":[";
    bool FirstB = true;
    for (int I = 0; I < metrics::HistogramSnapshot::kBuckets; ++I) {
      if (H.Buckets[I] == 0)
        continue;
      if (!FirstB)
        J += ',';
      FirstB = false;
      J += '[';
      J += std::to_string(I);
      J += ',';
      J += std::to_string(H.Buckets[I]);
      J += ']';
    }
    J += "]}";
  }
  J += "],";

  // Hot kernels, heaviest first. Fingerprints travel as hex strings: the
  // JSON number type (double) cannot hold a full u64.
  J += "\"kernels\":[";
  First = true;
  for (const HotKernel &K : hotKernels()) {
    if (!First)
      J += ',';
    First = false;
    J += '{';
    appendKeyStr(J, "fingerprint", hexFp(K.Fingerprint), true);
    appendKeyU64(J, "requests", K.Requests, true);
    appendKeyU64(J, "total_ns", K.TotalNs, true);
    appendKeyNum(J, "mean_ns", K.MeanNs, true);
    appendKeyU64(J, "jit", K.Jit, true);
    appendKeyU64(J, "interp", K.Interp, true);
    appendKeyU64(J, "errors", K.Errors, false);
    J += '}';
  }
  J += "],";

  // Flight recorder: cumulative summary + the newest buffered events
  // (peeked, not drained — snapshots must not consume the black box).
  FlightSummary FS = flightRecorder().summary();
  J += "\"flight\":{";
  appendKeyU64(J, "recorded", FS.Recorded, true);
  appendKeyU64(J, "ok", FS.Ok, true);
  appendKeyU64(J, "invalid_args", FS.InvalidArgs, true);
  appendKeyU64(J, "run_errors", FS.RunErrors, true);
  appendKeyU64(J, "rejected_full", FS.RejectedFull, true);
  appendKeyU64(J, "rejected_shutdown", FS.RejectedShutdown, true);
  J += "\"recent\":[";
  First = true;
  for (const FlightEvent &E : flightRecorder().peek(64)) {
    if (!First)
      J += ',';
    First = false;
    appendFlightEvent(J, E);
  }
  J += "]},";

  // Kernel profiler join: per-loop tables when FT_PROFILE collected any.
  // profile::toJson already emits a complete JSON object per kernel.
  J += "\"profiles\":[";
  First = true;
  for (const profile::KernelProfile &P : profile::snapshotProfiles()) {
    if (!First)
      J += ',';
    First = false;
    J += profile::toJson(P);
  }
  J += "]}";
  return J;
}

//===----------------------------------------------------------------------===//
// Exporter
//===----------------------------------------------------------------------===//

namespace {

struct Exporter {
  std::mutex Mu;
  std::condition_variable Cv;
  bool StopReq = false;
  bool Running = false;
  std::thread Th;
  Config C;
};

Exporter &exporter() {
  static Exporter *E = new Exporter;
  return *E;
}

std::atomic<uint64_t> TmpCounter{0};

/// Atomic publish: write to a sibling tmp file, then rename(2) into place
/// (same pattern as the kernel cache's writeAtomic).
Status writeFileAtomic(const std::string &Dest, const std::string &Bytes) {
  std::string Tmp = Dest + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(TmpCounter.fetch_add(1));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return Status::error("telemetry: cannot open " + Tmp);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!Out)
      return Status::error("telemetry: short write to " + Tmp);
  }
  std::error_code Ec;
  fs::rename(Tmp, Dest, Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return Status::error("telemetry: rename to " + Dest + " failed");
  }
  return Status::success();
}

/// Prunes Dir to the newest \p Keep snap-*.json files. Filenames embed a
/// zero-padded epoch-ms + seq, so lexicographic order is age order even
/// across process restarts.
void applyRetention(const std::string &Dir, int Keep) {
  std::error_code Ec;
  std::vector<std::string> Names;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec)) {
    std::string N = E.path().filename().string();
    if (N.rfind("snap-", 0) == 0 && N.size() > 5 &&
        N.rfind(".json") == N.size() - 5)
      Names.push_back(N);
  }
  if (Names.size() <= size_t(Keep))
    return;
  std::sort(Names.begin(), Names.end());
  for (size_t I = 0; I + size_t(Keep) < Names.size(); ++I)
    fs::remove(fs::path(Dir) / Names[I], Ec);
}

Status writeSnapshotTo(const Config &C) {
  std::string Body = writeSnapshotString();
  uint64_t Seq = SnapSeq.load(std::memory_order_relaxed);
  char Name[64];
  std::snprintf(Name, sizeof(Name), "snap-%013llu-%06llu.json",
                static_cast<unsigned long long>(nowWallMs()),
                static_cast<unsigned long long>(Seq));
  Status S = writeFileAtomic((fs::path(C.Dir) / Name).string(), Body);
  if (S.ok()) {
    SnapsWritten.fetch_add(1, std::memory_order_relaxed);
    applyRetention(C.Dir, C.Keep);
  }
  return S;
}

void exporterLoop(Config C) {
  Exporter &E = exporter();
  for (;;) {
    {
      std::unique_lock<std::mutex> L(E.Mu);
      E.Cv.wait_for(L, std::chrono::milliseconds(C.IntervalMs),
                    [&E] { return E.StopReq; });
      if (E.StopReq) {
        // Final snapshot: the exit dump of the flight recorder.
        (void)writeSnapshotTo(C);
        return;
      }
    }
    (void)writeSnapshotTo(C);
  }
}

} // namespace

Status writeSnapshotNow() {
  Config C;
  {
    Exporter &E = exporter();
    std::lock_guard<std::mutex> L(E.Mu);
    C = E.Running ? E.C : Config::fromEnv();
  }
  if (C.Dir.empty())
    return Status::error("telemetry: no snapshot directory (FT_TELEMETRY_DIR)");
  std::error_code Ec;
  fs::create_directories(C.Dir, Ec);
  return writeSnapshotTo(C);
}

Status startExporter(const Config &C) {
  if (C.Dir.empty())
    return Status::error("telemetry: Config.Dir is empty");
  std::error_code Ec;
  fs::create_directories(C.Dir, Ec);
  if (Ec && !fs::is_directory(C.Dir))
    return Status::error("telemetry: cannot create " + C.Dir);
  stopExporter();
  setEnabled(true);
  Exporter &E = exporter();
  std::lock_guard<std::mutex> L(E.Mu);
  E.C = C;
  E.StopReq = false;
  E.Running = true;
  E.Th = std::thread(exporterLoop, C);
  return Status::success();
}

void stopExporter() {
  Exporter &E = exporter();
  std::thread Th;
  {
    std::lock_guard<std::mutex> L(E.Mu);
    if (!E.Running)
      return;
    E.StopReq = true;
    E.Running = false;
    Th = std::move(E.Th);
  }
  E.Cv.notify_all();
  if (Th.joinable())
    Th.join();
}

void autoStartFromEnv() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    Config C = Config::fromEnv();
    if (C.Dir.empty())
      return;
    if (startExporter(C).ok())
      std::atexit([] { stopExporter(); });
  });
}

uint64_t snapshotsWritten() {
  return SnapsWritten.load(std::memory_order_relaxed);
}

void reset() {
  {
    std::lock_guard<std::mutex> L(AggMu);
    aggs().clear();
  }
  flightRecorder().reset();
  SnapSeq.store(0, std::memory_order_relaxed);
}

} // namespace ft::serve::telemetry
