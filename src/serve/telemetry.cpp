//===- serve/telemetry.cpp - Serving telemetry plane ----------------------===//

#include "serve/telemetry.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <unordered_set>

#include "codegen/profile.h"
#include "support/metrics.h"
#include "support/string_utils.h"
#include "support/trace.h"

namespace fs = std::filesystem;

namespace ft::serve::telemetry {

namespace detail {
std::atomic<bool> Enabled{false};
} // namespace detail

void setEnabled(bool On) {
  detail::Enabled.store(On, std::memory_order_relaxed);
}

namespace {

long envLong(const char *Name, long Default, long Min) {
  const char *E = std::getenv(Name);
  if (!E || !*E)
    return Default;
  char *End = nullptr;
  long V = std::strtol(E, &End, 10);
  if (End == E)
    return Default;
  return V < Min ? Min : V;
}

//===----------------------------------------------------------------------===//
// Hook state
//===----------------------------------------------------------------------===//

/// Histogram references resolved once; record() is then pure relaxed
/// atomics. Grouped in a leaked singleton so the first hook call pays the
/// registry lookups, not every call.
struct Hists {
  metrics::Histogram &QueueWait = metrics::histogram("serve/queue_wait_ns");
  metrics::Histogram &RunJit = metrics::histogram("serve/run_ns_jit");
  metrics::Histogram &RunInterp = metrics::histogram("serve/run_ns_interp");
  metrics::Histogram &BatchSize = metrics::histogram("serve/batch_size");
  metrics::Histogram &CompileNs = metrics::histogram("serve/compile_ns");
  /// Time-to-deadline headroom of met requests / overage of missed ones.
  metrics::Histogram &SloSlack = metrics::histogram("serve/slo_slack_ns");
  metrics::Histogram &SloOverrun = metrics::histogram("serve/slo_overrun_ns");
  metrics::Counter &DeadlineMet = metrics::counter("serve/deadline_met");
  metrics::Counter &DeadlineMissed =
      metrics::counter("serve/deadline_missed");
};

Hists &hists() {
  static Hists *H = new Hists;
  return *H;
}

/// Per-fingerprint aggregates behind hotKernels(). One short mutex hold
/// per completed request — only paid when telemetry is on.
struct Agg {
  uint64_t Requests = 0;
  uint64_t TotalNs = 0;
  uint64_t Jit = 0;
  uint64_t Interp = 0;
  uint64_t Errors = 0;
};

std::mutex AggMu;
std::map<uint64_t, Agg> &aggs() {
  static std::map<uint64_t, Agg> *M = new std::map<uint64_t, Agg>;
  return *M;
}

/// One (fingerprint, shape) cell of the workload table.
struct ShapeAgg {
  uint64_t Requests = 0;
  uint64_t TotalNs = 0;
  metrics::HistogramSnapshot Lat; ///< submit→completion ns.
};

/// One fingerprint's shape rows, bounded by shapeTableCap(): once the cap
/// is reached, new distinct shapes fold into Other (with a distinct-shape
/// count so the overflow is visible, not silent).
struct FpShapes {
  std::map<std::string, ShapeAgg> Shapes;
  ShapeAgg Other;
  /// Hashes of shapes folded into Other, for a distinct count. Bounded
  /// (the whole point of the cap is bounded memory): past 4096 distinct
  /// overflow shapes the count saturates and stops admitting hashes.
  std::unordered_set<uint64_t> OtherSeen;
  uint64_t OtherDistinct = 0; ///< Distinct shapes folded into Other.

  static constexpr size_t kMaxOtherSeen = 4096;

  void noteOverflow(const std::string &ShapeKey) {
    if (OtherSeen.size() >= kMaxOtherSeen)
      return;
    if (OtherSeen.insert(std::hash<std::string>{}(ShapeKey)).second)
      ++OtherDistinct;
  }
};

std::map<uint64_t, FpShapes> &shapeAggs() {
  static std::map<uint64_t, FpShapes> *M = new std::map<uint64_t, FpShapes>;
  return *M;
}

/// Per-tenant SLO aggregate (TenantSlo minus the name).
struct TenantAgg {
  uint64_t Requests = 0;
  uint64_t Met = 0;
  uint64_t Missed = 0;
  uint64_t TotalNs = 0;
  metrics::HistogramSnapshot Slack;
};

std::map<std::string, TenantAgg> &tenantAggs() {
  static std::map<std::string, TenantAgg> *M =
      new std::map<std::string, TenantAgg>;
  return *M;
}

/// Shape-table cap: the setter overrides FT_SHAPE_TABLE_CAP (tests); the
/// env is read once.
std::atomic<long> ShapeCapOverride{-1};

std::atomic<uint64_t> NextBatchId{0};
std::atomic<uint64_t> SnapSeq{0};
std::atomic<uint64_t> SnapsWritten{0};

double nowWallMs() {
  return double(std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count());
}

std::string hexFp(uint64_t Fp) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(Fp));
  return Buf;
}

} // namespace

Config Config::fromEnv() {
  Config C;
  if (const char *E = std::getenv("FT_TELEMETRY_DIR"))
    C.Dir = E;
  C.IntervalMs =
      static_cast<int>(envLong("FT_TELEMETRY_INTERVAL_MS", C.IntervalMs, 10));
  C.Keep = static_cast<int>(envLong("FT_TELEMETRY_KEEP", C.Keep, 1));
  return C;
}

//===----------------------------------------------------------------------===//
// Hooks
//===----------------------------------------------------------------------===//

void onRequestComplete(const RequestSample &S) {
  if (!enabled())
    return;
  Hists &H = hists();
  H.QueueWait.record(S.QueueNs);
  if (S.Out == Outcome::Ok)
    (S.ServedBy == Tier::Jit ? H.RunJit : H.RunInterp).record(S.RunNs);

  const bool HasDeadline = S.DeadlineNs > 0;
  const bool Missed = HasDeadline && S.TotalNs > S.DeadlineNs;
  if (HasDeadline) {
    if (Missed) {
      H.DeadlineMissed.fetch_add(1);
      H.SloOverrun.record(S.TotalNs - S.DeadlineNs);
    } else {
      H.DeadlineMet.fetch_add(1);
      H.SloSlack.record(S.DeadlineNs - S.TotalNs);
    }
  }

  FlightEvent E;
  E.TsUs = trace::nowMicros();
  E.Fingerprint = S.Fingerprint;
  E.ReqId = S.ReqId;
  E.Tenant = S.Tenant;
  E.Tier = nameOf(S.ServedBy);
  E.Out = S.Out;
  E.QueueNs = S.QueueNs;
  E.RunNs = S.RunNs;
  E.TotalNs = S.TotalNs;
  E.BatchSize = S.BatchSize;
  E.BatchId = S.BatchId;
  E.DeadlineNs = S.DeadlineNs;
  E.DeadlineMissed = Missed;
  E.Error = S.Error;
  flightRecorder().record(std::move(E));

  std::lock_guard<std::mutex> L(AggMu);
  Agg &A = aggs()[S.Fingerprint];
  ++A.Requests;
  A.TotalNs += S.TotalNs;
  if (S.ServedBy == Tier::Jit)
    ++A.Jit;
  else
    ++A.Interp;
  if (S.Out != Outcome::Ok)
    ++A.Errors;

  if (!S.ShapeKey.empty()) {
    FpShapes &FS = shapeAggs()[S.Fingerprint];
    ShapeAgg *SA;
    auto It = FS.Shapes.find(S.ShapeKey);
    if (It != FS.Shapes.end()) {
      SA = &It->second;
    } else if (FS.Shapes.size() < shapeTableCap()) {
      SA = &FS.Shapes[S.ShapeKey];
    } else {
      FS.noteOverflow(S.ShapeKey);
      SA = &FS.Other;
    }
    ++SA->Requests;
    SA->TotalNs += S.TotalNs;
    SA->Lat.add(S.TotalNs);
  }

  TenantAgg &T = tenantAggs()[S.Tenant];
  ++T.Requests;
  T.TotalNs += S.TotalNs;
  if (HasDeadline) {
    if (Missed)
      ++T.Missed;
    else {
      ++T.Met;
      T.Slack.add(S.DeadlineNs - S.TotalNs);
    }
  }
}

void onReject(uint64_t Fingerprint, Outcome Out, uint64_t ReqId,
              const std::string &Tenant) {
  if (!enabled())
    return;
  FlightEvent E;
  E.TsUs = trace::nowMicros();
  E.Fingerprint = Fingerprint;
  E.ReqId = ReqId;
  E.Tenant = Tenant;
  E.Out = Out;
  flightRecorder().record(std::move(E));
}

uint64_t onBatch(uint32_t Size) {
  if (!enabled())
    return 0;
  hists().BatchSize.record(Size);
  return NextBatchId.fetch_add(1, std::memory_order_relaxed) + 1;
}

void onCompile(uint64_t Ns, bool Ok) {
  if (!enabled())
    return;
  (void)Ok;
  hists().CompileNs.record(Ns);
}

//===----------------------------------------------------------------------===//
// Hot-kernel ranking
//===----------------------------------------------------------------------===//

std::vector<HotKernel> hotKernels(size_t TopK) {
  std::vector<HotKernel> Out;
  {
    std::lock_guard<std::mutex> L(AggMu);
    Out.reserve(aggs().size());
    for (const auto &[Fp, A] : aggs()) {
      HotKernel K;
      K.Fingerprint = Fp;
      K.Requests = A.Requests;
      K.TotalNs = A.TotalNs;
      K.MeanNs = A.Requests ? double(A.TotalNs) / double(A.Requests) : 0;
      K.Jit = A.Jit;
      K.Interp = A.Interp;
      K.Errors = A.Errors;
      Out.push_back(K);
    }
  }
  std::sort(Out.begin(), Out.end(), [](const HotKernel &A, const HotKernel &B) {
    if (A.TotalNs != B.TotalNs)
      return A.TotalNs > B.TotalNs;
    return A.Fingerprint < B.Fingerprint; // deterministic tie-break
  });
  if (TopK != 0 && Out.size() > TopK)
    Out.resize(TopK);
  return Out;
}

//===----------------------------------------------------------------------===//
// Shape table & tenant SLO
//===----------------------------------------------------------------------===//

size_t shapeTableCap() {
  long O = ShapeCapOverride.load(std::memory_order_relaxed);
  if (O >= 0)
    return static_cast<size_t>(O);
  static const size_t EnvCap =
      static_cast<size_t>(envLong("FT_SHAPE_TABLE_CAP", 32, 1));
  return EnvCap;
}

void setShapeTableCap(size_t Cap) {
  ShapeCapOverride.store(Cap < 1 ? 1 : static_cast<long>(Cap),
                         std::memory_order_relaxed);
}

namespace {

ShapeStat toStat(uint64_t Fp, std::string Key, const ShapeAgg &A) {
  ShapeStat S;
  S.Fingerprint = Fp;
  S.ShapeKey = std::move(Key);
  S.Requests = A.Requests;
  S.TotalNs = A.TotalNs;
  S.MeanNs = A.Requests ? double(A.TotalNs) / double(A.Requests) : 0;
  S.Lat = A.Lat;
  return S;
}

} // namespace

std::vector<ShapeStat> hotShapes(size_t TopK) {
  std::vector<ShapeStat> Out;
  {
    std::lock_guard<std::mutex> L(AggMu);
    for (const auto &[Fp, FS] : shapeAggs())
      for (const auto &[Key, A] : FS.Shapes)
        Out.push_back(toStat(Fp, Key, A));
  }
  std::sort(Out.begin(), Out.end(), [](const ShapeStat &A, const ShapeStat &B) {
    if (A.TotalNs != B.TotalNs)
      return A.TotalNs > B.TotalNs;
    if (A.Fingerprint != B.Fingerprint)
      return A.Fingerprint < B.Fingerprint; // deterministic tie-break
    return A.ShapeKey < B.ShapeKey;
  });
  if (TopK != 0 && Out.size() > TopK)
    Out.resize(TopK);
  return Out;
}

std::vector<ShapeStat> shapeTable() {
  std::vector<ShapeStat> Out;
  std::lock_guard<std::mutex> L(AggMu);
  for (const auto &[Fp, FS] : shapeAggs()) {
    for (const auto &[Key, A] : FS.Shapes)
      Out.push_back(toStat(Fp, Key, A));
    if (FS.Other.Requests > 0)
      Out.push_back(toStat(Fp, "other", FS.Other));
  }
  return Out;
}

std::vector<TenantSlo> tenantSlo() {
  std::vector<TenantSlo> Out;
  std::lock_guard<std::mutex> L(AggMu);
  Out.reserve(tenantAggs().size());
  for (const auto &[Name, A] : tenantAggs()) {
    TenantSlo T;
    T.Tenant = Name;
    T.Requests = A.Requests;
    T.Met = A.Met;
    T.Missed = A.Missed;
    T.TotalNs = A.TotalNs;
    T.Slack = A.Slack;
    Out.push_back(std::move(T));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Snapshot serialization
//===----------------------------------------------------------------------===//

namespace {

void appendKeyU64(std::string &J, const char *Key, uint64_t V, bool Comma) {
  J += '"';
  J += Key;
  J += "\":";
  J += std::to_string(V);
  if (Comma)
    J += ',';
}

void appendKeyNum(std::string &J, const char *Key, double V, bool Comma) {
  J += '"';
  J += Key;
  J += "\":";
  J += fmtDouble(V);
  if (Comma)
    J += ',';
}

void appendKeyStr(std::string &J, const char *Key, const std::string &V,
                  bool Comma) {
  J += '"';
  J += Key;
  J += "\":\"";
  J += jsonEscape(V);
  J += '"';
  if (Comma)
    J += ',';
}

void appendKeyBool(std::string &J, const char *Key, bool V, bool Comma) {
  J += '"';
  J += Key;
  J += "\":";
  J += V ? "true" : "false";
  if (Comma)
    J += ',';
}

void appendFlightEvent(std::string &J, const FlightEvent &E) {
  J += '{';
  appendKeyU64(J, "seq", E.Seq, true);
  appendKeyNum(J, "ts_us", E.TsUs, true);
  appendKeyStr(J, "fingerprint", hexFp(E.Fingerprint), true);
  appendKeyU64(J, "req_id", E.ReqId, true);
  appendKeyStr(J, "tenant", E.Tenant, true);
  appendKeyStr(J, "tier", E.Tier, true);
  appendKeyStr(J, "outcome", nameOf(E.Out), true);
  appendKeyU64(J, "queue_ns", E.QueueNs, true);
  appendKeyU64(J, "run_ns", E.RunNs, true);
  appendKeyU64(J, "total_ns", E.TotalNs, true);
  appendKeyU64(J, "batch_size", E.BatchSize, true);
  appendKeyU64(J, "batch_id", E.BatchId, true);
  appendKeyU64(J, "deadline_ns", E.DeadlineNs, true);
  appendKeyBool(J, "deadline_missed", E.DeadlineMissed, !E.Error.empty());
  if (!E.Error.empty())
    appendKeyStr(J, "error", E.Error, false);
  J += '}';
}

/// The latency-distribution keys a ShapeAgg/TenantAgg row carries.
void appendLocalHist(std::string &J, const metrics::HistogramSnapshot &H,
                     bool Comma) {
  appendKeyU64(J, "count", H.Count, true);
  appendKeyU64(J, "min_ns", H.Min, true);
  appendKeyU64(J, "max_ns", H.Max, true);
  appendKeyNum(J, "mean_ns", H.mean(), true);
  appendKeyNum(J, "p50_ns", H.quantile(0.50), true);
  appendKeyNum(J, "p95_ns", H.quantile(0.95), true);
  appendKeyNum(J, "p99_ns", H.quantile(0.99), Comma);
}

} // namespace

std::string writeSnapshotString() {
  uint64_t Seq = SnapSeq.fetch_add(1, std::memory_order_relaxed) + 1;

  std::string J;
  J.reserve(8192);
  J += '{';
  appendKeyStr(J, "schema", "freetensor-telemetry/v2", true);
  appendKeyU64(J, "seq", Seq, true);
  appendKeyNum(J, "wall_unix_ms", nowWallMs(), true);

  // Every registered counter, sorted by name.
  J += "\"counters\":{";
  bool First = true;
  for (const auto &[Name, Val] : metrics::snapshot()) {
    if (!First)
      J += ',';
    First = false;
    J += '"';
    J += jsonEscape(Name);
    J += "\":";
    J += std::to_string(Val);
  }
  J += "},";

  // Non-empty histograms with estimated percentiles and sparse buckets.
  J += "\"histograms\":[";
  First = true;
  for (const metrics::HistogramSnapshot &H : metrics::snapshotHistograms()) {
    if (H.Count == 0)
      continue;
    if (!First)
      J += ',';
    First = false;
    J += '{';
    appendKeyStr(J, "name", H.Name, true);
    appendKeyU64(J, "count", H.Count, true);
    appendKeyU64(J, "sum", H.Sum, true);
    appendKeyU64(J, "min", H.Min, true);
    appendKeyU64(J, "max", H.Max, true);
    appendKeyNum(J, "mean", H.mean(), true);
    appendKeyNum(J, "p50", H.quantile(0.50), true);
    appendKeyNum(J, "p95", H.quantile(0.95), true);
    appendKeyNum(J, "p99", H.quantile(0.99), true);
    J += "\"buckets\":[";
    bool FirstB = true;
    for (int I = 0; I < metrics::HistogramSnapshot::kBuckets; ++I) {
      if (H.Buckets[I] == 0)
        continue;
      if (!FirstB)
        J += ',';
      FirstB = false;
      J += '[';
      J += std::to_string(I);
      J += ',';
      J += std::to_string(H.Buckets[I]);
      J += ']';
    }
    J += "]}";
  }
  J += "],";

  // Hot kernels, heaviest first. Fingerprints travel as hex strings: the
  // JSON number type (double) cannot hold a full u64.
  J += "\"kernels\":[";
  First = true;
  for (const HotKernel &K : hotKernels()) {
    if (!First)
      J += ',';
    First = false;
    J += '{';
    appendKeyStr(J, "fingerprint", hexFp(K.Fingerprint), true);
    appendKeyU64(J, "requests", K.Requests, true);
    appendKeyU64(J, "total_ns", K.TotalNs, true);
    appendKeyNum(J, "mean_ns", K.MeanNs, true);
    appendKeyU64(J, "jit", K.Jit, true);
    appendKeyU64(J, "interp", K.Interp, true);
    appendKeyU64(J, "errors", K.Errors, false);
    J += '}';
  }
  J += "],";

  // Workload characterization: the per-fingerprint shape table, each row
  // with its own latency distribution. The "other" bucket aggregates the
  // shapes past the table cap so counts always sum to requests served.
  {
    std::lock_guard<std::mutex> L(AggMu);
    J += "\"shapes\":[";
    First = true;
    for (const auto &[Fp, FS] : shapeAggs()) {
      if (!First)
        J += ',';
      First = false;
      J += '{';
      appendKeyStr(J, "fingerprint", hexFp(Fp), true);
      appendKeyU64(J, "table_cap", shapeTableCap(), true);
      J += "\"rows\":[";
      bool FirstRow = true;
      for (const auto &[Key, A] : FS.Shapes) {
        if (!FirstRow)
          J += ',';
        FirstRow = false;
        J += '{';
        appendKeyStr(J, "shape", Key, true);
        appendKeyU64(J, "requests", A.Requests, true);
        appendKeyU64(J, "total_ns", A.TotalNs, true);
        appendLocalHist(J, A.Lat, false);
        J += '}';
      }
      J += "],\"other\":{";
      appendKeyU64(J, "requests", FS.Other.Requests, true);
      appendKeyU64(J, "total_ns", FS.Other.TotalNs, true);
      appendKeyU64(J, "distinct_shapes", FS.OtherDistinct, false);
      J += "}}";
    }
    J += "],";

    // SLO monitoring: per-tenant deadline accounting. "slack" is the
    // time-to-deadline headroom distribution of met requests.
    J += "\"tenants\":[";
    First = true;
    for (const auto &[Name, A] : tenantAggs()) {
      if (!First)
        J += ',';
      First = false;
      J += '{';
      appendKeyStr(J, "tenant", Name, true);
      appendKeyU64(J, "requests", A.Requests, true);
      appendKeyU64(J, "met", A.Met, true);
      appendKeyU64(J, "missed", A.Missed, true);
      appendKeyU64(J, "total_ns", A.TotalNs, true);
      J += "\"slack\":{";
      appendLocalHist(J, A.Slack, false);
      J += "}}";
    }
    J += "],";
  }

  // Flight recorder: cumulative summary + the newest buffered events
  // (peeked, not drained — snapshots must not consume the black box).
  FlightSummary FS = flightRecorder().summary();
  J += "\"flight\":{";
  appendKeyU64(J, "recorded", FS.Recorded, true);
  appendKeyU64(J, "ok", FS.Ok, true);
  appendKeyU64(J, "invalid_args", FS.InvalidArgs, true);
  appendKeyU64(J, "run_errors", FS.RunErrors, true);
  appendKeyU64(J, "rejected_full", FS.RejectedFull, true);
  appendKeyU64(J, "rejected_shutdown", FS.RejectedShutdown, true);
  J += "\"recent\":[";
  First = true;
  for (const FlightEvent &E : flightRecorder().peek(64)) {
    if (!First)
      J += ',';
    First = false;
    appendFlightEvent(J, E);
  }
  J += "]},";

  // Kernel profiler join: per-loop tables when FT_PROFILE collected any.
  // profile::toJson already emits a complete JSON object per kernel.
  J += "\"profiles\":[";
  First = true;
  for (const profile::KernelProfile &P : profile::snapshotProfiles()) {
    if (!First)
      J += ',';
    First = false;
    J += profile::toJson(P);
  }
  J += "]}";
  return J;
}

//===----------------------------------------------------------------------===//
// Exporter
//===----------------------------------------------------------------------===//

namespace {

/// One exporter lifetime (start → stop). Each startExporter() creates a
/// fresh run with its own stop flag: the flag of a run that is being
/// stopped can never be cleared by a concurrent restart, which is what
/// made the previous single-struct design able to wedge — a restart racing
/// a stop could reset StopReq before the old thread observed it, leaving
/// the stopper joining a thread that would never exit. C is written once
/// before the run is published and never mutated, so readers need no lock
/// for it.
struct ExporterRun {
  std::mutex Mu;
  std::condition_variable Cv;
  bool StopReq = false;
  std::thread Th;
  Config C;
};

/// Guards the current-run pointer only. stopExporter swaps the pointer out
/// under this lock and joins outside it, so concurrent stops are safe:
/// exactly one caller obtains the run, the rest see null.
struct Exporter {
  std::mutex Mu;
  std::shared_ptr<ExporterRun> Cur;
};

Exporter &exporter() {
  static Exporter *E = new Exporter;
  return *E;
}

std::atomic<uint64_t> TmpCounter{0};

/// Atomic publish: write to a sibling tmp file, then rename(2) into place
/// (same pattern as the kernel cache's writeAtomic).
Status writeFileAtomic(const std::string &Dest, const std::string &Bytes) {
  std::string Tmp = Dest + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(TmpCounter.fetch_add(1));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return Status::error("telemetry: cannot open " + Tmp);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!Out)
      return Status::error("telemetry: short write to " + Tmp);
  }
  std::error_code Ec;
  fs::rename(Tmp, Dest, Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return Status::error("telemetry: rename to " + Dest + " failed");
  }
  return Status::success();
}

/// Prunes Dir to the newest \p Keep snap-*.json files. Filenames embed a
/// zero-padded epoch-ms + seq, so lexicographic order is age order even
/// across process restarts.
void applyRetention(const std::string &Dir, int Keep) {
  std::error_code Ec;
  std::vector<std::string> Names;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec)) {
    std::string N = E.path().filename().string();
    if (N.rfind("snap-", 0) == 0 && N.size() > 5 &&
        N.rfind(".json") == N.size() - 5)
      Names.push_back(N);
  }
  if (Names.size() <= size_t(Keep))
    return;
  std::sort(Names.begin(), Names.end());
  for (size_t I = 0; I + size_t(Keep) < Names.size(); ++I)
    fs::remove(fs::path(Dir) / Names[I], Ec);
}

Status writeSnapshotTo(const Config &C) {
  std::string Body = writeSnapshotString();
  uint64_t Seq = SnapSeq.load(std::memory_order_relaxed);
  char Name[64];
  std::snprintf(Name, sizeof(Name), "snap-%013llu-%06llu.json",
                static_cast<unsigned long long>(nowWallMs()),
                static_cast<unsigned long long>(Seq));
  Status S = writeFileAtomic((fs::path(C.Dir) / Name).string(), Body);
  if (S.ok()) {
    SnapsWritten.fetch_add(1, std::memory_order_relaxed);
    applyRetention(C.Dir, C.Keep);
  }
  return S;
}

void exporterLoop(std::shared_ptr<ExporterRun> R) {
  for (;;) {
    {
      std::unique_lock<std::mutex> L(R->Mu);
      R->Cv.wait_for(L, std::chrono::milliseconds(R->C.IntervalMs),
                     [&R] { return R->StopReq; });
      if (R->StopReq) {
        // Final snapshot: the exit dump of the flight recorder.
        (void)writeSnapshotTo(R->C);
        return;
      }
    }
    (void)writeSnapshotTo(R->C);
  }
}

} // namespace

Status writeSnapshotNow() {
  Config C;
  {
    Exporter &E = exporter();
    std::lock_guard<std::mutex> L(E.Mu);
    C = E.Cur ? E.Cur->C : Config::fromEnv();
  }
  if (C.Dir.empty())
    return Status::error("telemetry: no snapshot directory (FT_TELEMETRY_DIR)");
  std::error_code Ec;
  fs::create_directories(C.Dir, Ec);
  return writeSnapshotTo(C);
}

Status startExporter(const Config &C) {
  if (C.Dir.empty())
    return Status::error("telemetry: Config.Dir is empty");
  std::error_code Ec;
  fs::create_directories(C.Dir, Ec);
  if (Ec && !fs::is_directory(C.Dir))
    return Status::error("telemetry: cannot create " + C.Dir);
  stopExporter();
  setEnabled(true);
  auto R = std::make_shared<ExporterRun>();
  R->C = C; // Published before the thread starts and before Cur is set.
  R->Th = std::thread(exporterLoop, R);
  Exporter &E = exporter();
  std::shared_ptr<ExporterRun> Displaced;
  {
    std::lock_guard<std::mutex> L(E.Mu);
    Displaced = std::move(E.Cur);
    E.Cur = std::move(R);
  }
  // A concurrent startExporter may have installed its run between our
  // stopExporter() above and the swap; stop the displaced run rather than
  // leak its thread. (Sequential callers never hit this: Displaced is
  // null after stopExporter.)
  if (Displaced) {
    {
      std::lock_guard<std::mutex> L(Displaced->Mu);
      Displaced->StopReq = true;
    }
    Displaced->Cv.notify_all();
    if (Displaced->Th.joinable())
      Displaced->Th.join();
  }
  return Status::success();
}

void stopExporter() {
  std::shared_ptr<ExporterRun> R;
  {
    Exporter &E = exporter();
    std::lock_guard<std::mutex> L(E.Mu);
    R = std::move(E.Cur);
  }
  if (!R)
    return; // Already stopped (or never started) — idempotent.
  {
    std::lock_guard<std::mutex> L(R->Mu);
    R->StopReq = true;
  }
  R->Cv.notify_all();
  if (R->Th.joinable())
    R->Th.join();
}

void autoStartFromEnv() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    Config C = Config::fromEnv();
    if (C.Dir.empty())
      return;
    if (startExporter(C).ok())
      std::atexit([] { stopExporter(); });
  });
}

uint64_t snapshotsWritten() {
  return SnapsWritten.load(std::memory_order_relaxed);
}

void reset() {
  {
    std::lock_guard<std::mutex> L(AggMu);
    aggs().clear();
    shapeAggs().clear();
    tenantAggs().clear();
  }
  flightRecorder().reset();
  SnapSeq.store(0, std::memory_order_relaxed);
}

} // namespace ft::serve::telemetry
