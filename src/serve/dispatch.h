//===- serve/dispatch.h - Per-fingerprint kernel directory -------*- C++ -*-===//
///
/// \file
/// The executor's routing table: one entry per kernel fingerprint, holding
/// the tier state machine that decides how a request is served and dedups
/// background compiles.
///
///     Cold ──► Compiling ──► Ready   (compiled kernel serves the JIT tier)
///                     └────► Failed  (pinned to the interpreter forever)
///
/// Exactly one submitter wins the Cold→Compiling transition per fingerprint
/// (beginCompile), so N concurrent cache misses enqueue one compile job.
/// Entries also carry RunMu, which serializes executions of the same
/// kernel: generated kernels keep non-atomic per-chunk profile slots and a
/// private thread pool, so two simultaneous runs of one kernel would race.
/// Different fingerprints run fully in parallel.
///
//===----------------------------------------------------------------------===//

#ifndef FT_SERVE_DISPATCH_H
#define FT_SERVE_DISPATCH_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "analysis/extents.h"
#include "analysis/ragged.h"
#include "codegen/jit.h"
#include "ir/func.h"

namespace ft::serve {

/// Compile/tier state of one fingerprint. See the file comment.
enum class KernelState : uint8_t { Cold, Compiling, Ready, Failed };

/// Returns "cold" / "compiling" / "ready" / "failed".
const char *nameOf(KernelState S);

/// One fingerprint's entry. State fields are guarded by Mu; RunMu is held
/// while (and only while) the kernel or the interpreter executes requests
/// of this fingerprint.
struct KernelEntry {
  /// The full cache key (kernel_cache::Key::Full) identifying this entry.
  const uint64_t Key;
  /// The function as first submitted — the background compile input. All
  /// later submissions with the same key are semantically identical
  /// programs (the key hashes the whole program), so any one serves.
  const Func F;

  /// The extent-parameter signature of F — non-empty iff this fingerprint
  /// is shape-generic. Computed once at intern (a body walk per request
  /// would tax the hot path). A specialized entry's spec holds only the
  /// extents specialization left symbolic: empty for dense buckets, the
  /// residual ragged extents (`nnz`) for sparse ones, so one specialized
  /// kernel serves a whole nnz bucket.
  const ExtentSpec Extents;

  /// The ragged structure of F (segment loops, index tensors, nnz-sized
  /// dims) — empty for dense programs. Computed once at intern; per
  /// request it picks the bucketed shape key and survives into specialized
  /// entries so their residual nnz extents stay symbolic.
  const RaggedInfo Ragged;

  /// True for a specialized shape-bucket entry (DESIGN.md §16): F has its
  /// extents constant-folded, and the compile thread schedules it
  /// (simplify + autoschedule) and compiles at Config::SpecOptFlags
  /// instead of serving F as submitted.
  const bool IsSpec;

  explicit KernelEntry(uint64_t Key, Func F, ExtentSpec Extents = {},
                       RaggedInfo Ragged = {}, bool IsSpec = false)
      : Key(Key), F(std::move(F)), Extents(std::move(Extents)),
        Ragged(std::move(Ragged)), IsSpec(IsSpec) {}

  /// The id of the request whose submit won beginCompile() — the compile
  /// thread stamps it on the serve/compile span and closes that request's
  /// trace flow arrow there, so a cold request visibly links to the one
  /// background compile it triggered. Written exactly once, by the
  /// beginCompile winner before the job is enqueued (the compile queue's
  /// lock orders the write before the compile thread's read); 0 until
  /// then and for cache-hit promotions that never reach the compile
  /// thread.
  uint64_t TriggerReqId = 0;

  /// If this entry is Cold, moves it to Compiling and returns true — the
  /// caller is now responsible for enqueueing exactly one compile job.
  /// Returns false in every other state (someone else already did, or the
  /// outcome is already known).
  bool beginCompile();

  /// Publishes a successful compile: installs the kernel and moves to
  /// Ready.
  void finishCompile(Kernel K);

  /// Publishes a failed compile: records the message, moves to Failed.
  /// Every future request of this fingerprint is served by the
  /// interpreter.
  void failCompile(std::string Msg);

  KernelState state() const;

  /// The compiled kernel when Ready, nullopt otherwise.
  std::optional<Kernel> kernel() const;

  /// The compile failure message (empty unless Failed).
  std::string failure() const;

  /// Serializes execution of this fingerprint (see the file comment).
  std::mutex RunMu;

  /// One shape bucket of a generic entry: request tally plus the
  /// specialized entry once the bucket is nominated (null before). The
  /// specialized entry reuses the full Cold→Compiling→Ready machinery, so
  /// nomination, compile dedup, and hot-swap are the same code path as the
  /// generic compile.
  struct SpecBucket {
    uint64_t Hits = 0;
    std::shared_ptr<KernelEntry> Entry;
  };

  /// Shape-bucket table (generic entries only), keyed by the canonical
  /// shape key (serve/shape_key.h). Guarded by SpecMu — never taken
  /// together with Mu.
  std::mutex SpecMu;
  std::map<std::string, SpecBucket> Spec;
  size_t SpecCount = 0; ///< Buckets nominated (bounds Config::SpecializeMax).

private:
  mutable std::mutex Mu;
  KernelState State = KernelState::Cold;
  std::optional<Kernel> K;
  std::string FailMsg;
};

/// The fingerprint → entry map. intern() is the only mutation; entries are
/// shared_ptrs so requests and the compile thread hold them across the
/// directory lock.
class KernelDirectory {
public:
  /// The entry for \p Key, created (Cold, holding a copy of \p F) on first
  /// sight.
  std::shared_ptr<KernelEntry> intern(uint64_t Key, const Func &F);

  /// Distinct fingerprints interned so far.
  size_t size() const;

private:
  mutable std::mutex Mu;
  std::unordered_map<uint64_t, std::shared_ptr<KernelEntry>> Map;
};

} // namespace ft::serve

#endif // FT_SERVE_DISPATCH_H
