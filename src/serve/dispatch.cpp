//===- serve/dispatch.cpp -------------------------------------------------===//

#include "serve/dispatch.h"

using namespace ft;
using namespace ft::serve;

const char *ft::serve::nameOf(KernelState S) {
  switch (S) {
  case KernelState::Cold:
    return "cold";
  case KernelState::Compiling:
    return "compiling";
  case KernelState::Ready:
    return "ready";
  case KernelState::Failed:
    return "failed";
  }
  return "?";
}

bool KernelEntry::beginCompile() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (State != KernelState::Cold)
    return false;
  State = KernelState::Compiling;
  return true;
}

void KernelEntry::finishCompile(Kernel Kern) {
  std::lock_guard<std::mutex> Lock(Mu);
  K = std::move(Kern);
  State = KernelState::Ready;
}

void KernelEntry::failCompile(std::string Msg) {
  std::lock_guard<std::mutex> Lock(Mu);
  FailMsg = std::move(Msg);
  State = KernelState::Failed;
}

KernelState KernelEntry::state() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return State;
}

std::optional<Kernel> KernelEntry::kernel() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return State == KernelState::Ready ? K : std::nullopt;
}

std::string KernelEntry::failure() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return FailMsg;
}

std::shared_ptr<KernelEntry> KernelDirectory::intern(uint64_t Key,
                                                     const Func &F) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It != Map.end())
    return It->second;
  auto E = std::make_shared<KernelEntry>(Key, F, extentParamsOf(F),
                                         analyzeRagged(F));
  Map.emplace(Key, E);
  return E;
}

size_t KernelDirectory::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Map.size();
}
