//===- serve/telemetry.h - Serving telemetry plane ---------------*- C++ -*-===//
///
/// \file
/// The serving runtime's telemetry plane (DESIGN.md §14), three layers on
/// top of the metrics registry:
///
///  1. Request hooks. The executor calls onRequestComplete / onReject /
///     onBatch / onCompile at the natural points of a request's life. Each
///     hook fans one sample out to (a) the "serve/..." histograms
///     (queue-wait, per-tier run latency, batch size, compile time), (b)
///     the flight recorder ring (serve/flight_recorder.h), and (c) a
///     per-fingerprint aggregate table behind hotKernels(). Every hook
///     early-returns on a single relaxed atomic load when telemetry is
///     off, so the disabled request path costs a call + load + branch —
///     no clock read, no lock, no allocation.
///
///  2. Snapshot exporter. A background thread serializes everything —
///     metrics counters, histogram snapshots, hot-kernel table, the
///     per-fingerprint shape table, per-tenant SLO aggregates, flight
///     summary + recent events, and the kernel profiler's per-loop tables
///     when FT_PROFILE collected any — into one versioned JSON document
///     ("schema": "freetensor-telemetry/v2", monotonic "seq") every
///     FT_TELEMETRY_INTERVAL_MS, published atomically (tmp + rename) into
///     FT_TELEMETRY_DIR as snap-<epoch_ms>-<seq>.json. Old snapshots are
///     pruned to FT_TELEMETRY_KEEP files; a final snapshot (the flight
///     recorder's exit dump) is written on stopExporter()/process exit.
///
///  3. Consumers. `ftc --top` tails the snapshot directory and renders the
///     hot-kernel dashboard; tests parse snapshots back with support/json.h.
///
/// Setting FT_TELEMETRY_DIR is the one switch: the first Executor
/// constructed auto-starts the exporter and enables the hooks.
///
//===----------------------------------------------------------------------===//

#ifndef FT_SERVE_TELEMETRY_H
#define FT_SERVE_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/flight_recorder.h"
#include "serve/serve.h"
#include "support/error.h"
#include "support/metrics.h"

namespace ft::serve::telemetry {

namespace detail {
extern std::atomic<bool> Enabled;
} // namespace detail

/// True when the hooks record. The single relaxed load the disabled
/// request path pays.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

/// Programmatic switch (tests, benches). startExporter() turns it on.
void setEnabled(bool On);

/// Exporter configuration (FT_TELEMETRY_* environment variables).
struct Config {
  /// Snapshot directory; empty disables the exporter (FT_TELEMETRY_DIR).
  std::string Dir;
  /// Milliseconds between snapshots (FT_TELEMETRY_INTERVAL_MS, default
  /// 1000, floor 10).
  int IntervalMs = 1000;
  /// Newest snapshots retained in Dir (FT_TELEMETRY_KEEP, default 16,
  /// floor 1).
  int Keep = 16;

  static Config fromEnv();
};

//===----------------------------------------------------------------------===//
// Hooks (called by the executor)
//===----------------------------------------------------------------------===//

/// One completed request, as the executor saw it.
struct RequestSample {
  uint64_t Fingerprint = 0;
  uint64_t ReqId = 0;      ///< RequestContext::Id.
  std::string Tenant;      ///< SLO bucket; empty = unattributed.
  uint64_t DeadlineNs = 0; ///< submit→completion budget; 0 = none.
  std::string ShapeKey; ///< Argument-shape signature (the executor builds
                        ///< it only when telemetry is enabled); empty =
                        ///< not recorded.
  Tier ServedBy = Tier::Interp;
  Outcome Out = Outcome::Ok; ///< Ok / InvalidArgs / RunError.
  uint64_t QueueNs = 0;      ///< submit -> execution start.
  uint64_t RunNs = 0;        ///< execution start -> completion.
  uint64_t TotalNs = 0;      ///< submit -> completion.
  uint32_t BatchSize = 1;
  uint64_t BatchId = 0;
  std::string Error; ///< Status message when Out != Ok.
};

/// Records a completed request: queue-wait histogram, per-tier run-latency
/// histogram (successful runs only — errors and bad bindings never pollute
/// the latency distributions), flight event, hot-kernel aggregate,
/// per-fingerprint shape table, and the tenant's SLO aggregate (deadline
/// met/missed + time-to-deadline headroom) when the request carried a
/// deadline.
void onRequestComplete(const RequestSample &S);

/// Records a request bounced at submit (Out must be RejectedFull or
/// RejectedShutdown): flight event + outcome tally only — rejected
/// requests never touch the latency histograms. \p ReqId / \p Tenant
/// attribute the bounce when the submit got far enough to stamp them.
void onReject(uint64_t Fingerprint, Outcome Out, uint64_t ReqId = 0,
              const std::string &Tenant = {});

/// Records one executed micro-batch into the "serve/batch_size" histogram
/// and returns a process-unique batch id for the requests it carried
/// (0 when telemetry is off).
uint64_t onBatch(uint32_t Size);

/// Records one background-compile attempt into "serve/compile_ns".
void onCompile(uint64_t Ns, bool Ok);

//===----------------------------------------------------------------------===//
// Hot-kernel ranking
//===----------------------------------------------------------------------===//

/// Per-fingerprint serving aggregate. Score = TotalNs (request count x
/// mean latency); hotKernels() sorts by it descending.
struct HotKernel {
  uint64_t Fingerprint = 0;
  uint64_t Requests = 0; ///< Completed requests (any outcome).
  uint64_t TotalNs = 0;  ///< Sum of submit->completion ns.
  double MeanNs = 0;     ///< TotalNs / Requests.
  uint64_t Jit = 0;
  uint64_t Interp = 0;
  uint64_t Errors = 0; ///< InvalidArgs + RunError completions.
};

/// The hottest fingerprints by total served nanoseconds, heaviest first.
/// \p TopK == 0 returns all. Trend lines (req/s deltas) are computed by
/// `ftc --top` from consecutive snapshots, not here.
std::vector<HotKernel> hotKernels(size_t TopK = 0);

//===----------------------------------------------------------------------===//
// Workload characterization: per-fingerprint shape table
//===----------------------------------------------------------------------===//

/// One (fingerprint, argument-shape) row of the workload table. The shape
/// key is the executor's signature of a request's argument bindings, e.g.
/// "x:f32[8192] y:f32[8192]" — what ROADMAP items 1 (dynamic-shape
/// bucketing) and 5 (fleet re-optimization) nominate candidates from.
struct ShapeStat {
  uint64_t Fingerprint = 0;
  std::string ShapeKey;  ///< "other" for the overflow bucket.
  uint64_t Requests = 0; ///< Completed requests at this shape.
  uint64_t TotalNs = 0;  ///< Sum of submit→completion ns.
  double MeanNs = 0;     ///< TotalNs / Requests.
  /// Latency distribution (submit→completion) at this shape.
  metrics::HistogramSnapshot Lat;
};

/// Distinct shapes tracked per fingerprint before new shapes collapse into
/// the "other" bucket (FT_SHAPE_TABLE_CAP, default 32, floor 1). The
/// setter overrides the environment (tests).
size_t shapeTableCap();
void setShapeTableCap(size_t Cap);

/// The hottest (fingerprint, shape) rows ranked by TotalNs — requests ×
/// mean ns — heaviest first, "other" overflow rows excluded (an overflow
/// bucket aggregates many shapes; nominating it would be meaningless).
/// \p TopK == 0 returns all. `ftc --advise` renders these as "specialize
/// this fingerprint at this shape" suggestions.
std::vector<ShapeStat> hotShapes(size_t TopK = 0);

/// Every shape row, including "other" overflow buckets, grouped by
/// fingerprint (snapshot serialization and tests).
std::vector<ShapeStat> shapeTable();

//===----------------------------------------------------------------------===//
// SLO monitoring: per-tenant deadline tracking
//===----------------------------------------------------------------------===//

/// Deadline accounting for one tenant. Requests without a deadline count
/// toward Requests but neither Met nor Missed; Slack holds the
/// time-to-deadline headroom (DeadlineNs - TotalNs) of met requests, so
/// its low quantiles say how close the tenant is to missing.
struct TenantSlo {
  std::string Tenant;
  uint64_t Requests = 0; ///< Completed requests (any outcome).
  uint64_t Met = 0;      ///< Deadline set and TotalNs <= DeadlineNs.
  uint64_t Missed = 0;   ///< Deadline set and TotalNs > DeadlineNs.
  uint64_t TotalNs = 0;  ///< Sum of submit→completion ns.
  metrics::HistogramSnapshot Slack; ///< Headroom ns of met requests.
};

/// Per-tenant SLO aggregates, sorted by tenant name.
std::vector<TenantSlo> tenantSlo();

//===----------------------------------------------------------------------===//
// Snapshot exporter
//===----------------------------------------------------------------------===//

/// Serializes the full telemetry state as one JSON document (stamping the
/// next sequence number). Exposed for tests; the exporter thread and
/// writeSnapshotNow() call this.
std::string writeSnapshotString();

/// Writes one snapshot into the running exporter's directory (or
/// Config::fromEnv().Dir when no exporter runs). Atomic tmp + rename;
/// applies retention.
Status writeSnapshotNow();

/// Starts the background exporter: enables the hooks, creates C.Dir, and
/// writes a snapshot every C.IntervalMs until stopExporter(). Restarting
/// while running stops the previous exporter first. Error when C.Dir is
/// empty or cannot be created.
///
/// Lifecycle contract: each start creates an independent exporter run with
/// its own stop flag, so start → stop → start cycles any number of times;
/// a restart can never un-stop (and thereby wedge) a previous run that is
/// still joining.
Status startExporter(const Config &C);

/// Stops the exporter thread, writing one final snapshot (the exit dump:
/// it carries whatever the flight recorder holds). Idempotent and safe to
/// call from any number of threads concurrently — exactly one caller
/// joins the thread, the rest return immediately — and safe to interleave
/// with startExporter (the atexit hook installed by autoStartFromEnv may
/// race an explicit stop/restart). Does not flip enabled() back off.
/// No-op when no exporter runs.
void stopExporter();

/// One-shot: when FT_TELEMETRY_DIR is set, starts the exporter with
/// Config::fromEnv() and arranges stopExporter() at process exit. Called
/// by the Executor constructor so serving binaries need no code changes.
void autoStartFromEnv();

/// Snapshots successfully published since process start.
uint64_t snapshotsWritten();

/// Test isolation: clears the hot-kernel aggregates, the shape table, the
/// tenant SLO aggregates, the flight recorder, and the snapshot sequence
/// counter. Histograms live in the metrics registry — use
/// metrics::resetPrefix("serve/") for those.
void reset();

} // namespace ft::serve::telemetry

#endif // FT_SERVE_TELEMETRY_H
