//===- serve/serve.h - Tiered kernel-serving runtime -------------*- C++ -*-===//
///
/// \file
/// The kernel-serving runtime (DESIGN.md §12): an in-process executor that
/// accepts kernel-execution requests and answers them from a tiered backend,
/// turning the compile-then-run library into something shaped like an
/// inference server.
///
///   submit() ──► bounded request queue ──► worker pool ──► dispatch
///                                                            │
///                                      ┌─────────────────────┴───┐
///                                      ▼                         ▼
///                               JIT tier (hot)           interpreter tier
///                            cached compiled kernel     (cold / fallback)
///
/// The life of a fingerprint: the first request finds no compiled kernel, is
/// answered by the reference interpreter (slow but immediate — no request
/// ever waits on the host C++ compiler), and enqueues exactly one background
/// compile regardless of how many requests race in (in-flight dedup). Once
/// the compile lands, subsequent requests are served by the JIT'd kernel. If
/// the compile fails, the fingerprint is pinned to the interpreter forever
/// and the failure is counted — degraded, never broken.
///
/// Same-fingerprint requests arriving within a short window are micro-batched:
/// one worker executes them back-to-back while the kernel's code and the
/// request's metadata are hot, amortizing per-dispatch overhead.
///
/// Configuration comes from Config::fromEnv (FT_SERVE_* variables; see the
/// README's environment table). Every executor mirrors its counters into the
/// global metrics registry under "serve/" and opens a "serve/request" span
/// per request when tracing is on.
///
//===----------------------------------------------------------------------===//

#ifndef FT_SERVE_SERVE_H
#define FT_SERVE_SERVE_H

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>

#include "interp/buffer.h"
#include "ir/func.h"
#include "serve/request_context.h"
#include "support/error.h"

namespace ft::serve {

/// Which backend answered a request.
enum class Tier : uint8_t {
  Interp, ///< Reference interpreter (cold start or permanent fallback).
  Jit,    ///< Compiled kernel (cache hit or background compile landed).
};

/// Returns "interp" / "jit".
const char *nameOf(Tier T);

/// Executor configuration. Defaults match Config::fromEnv with no FT_SERVE_*
/// variables set.
struct Config {
  /// Worker threads executing requests (FT_SERVE_THREADS, default 2).
  int Threads = 2;
  /// Bounded request-queue capacity (FT_SERVE_QUEUE_CAP, default 64).
  size_t QueueCap = 64;
  /// Backpressure policy when the queue is full (FT_SERVE_ON_FULL):
  /// false = "reject" (submit returns a typed error immediately),
  /// true = "block" (submit waits for space).
  bool BlockOnFull = false;
  /// Micro-batch collection window in microseconds
  /// (FT_SERVE_BATCH_WINDOW_US, default 200; 0 batches only what is
  /// already queued, never waiting).
  int BatchWindowUs = 200;
  /// Largest micro-batch one worker executes back-to-back
  /// (FT_SERVE_MAX_BATCH, default 16; 1 disables batching).
  size_t MaxBatch = 16;
  /// Host-compiler flags for background compiles (FT_SERVE_OPT_FLAGS,
  /// default "-O2": server-style workloads prefer compile latency over the
  /// last few percent of kernel speed).
  std::string OptFlags = "-O2";
  /// Total kernel worker threads budgeted across every concurrently
  /// executing kernel (FT_SERVE_RT_THREADS, default
  /// hardware_concurrency). Each compiled kernel is capped at
  /// max(1, budget / Threads) via Kernel::setMaxThreads so Threads
  /// concurrent kernels cannot oversubscribe the machine.
  int RtThreadBudget = 0; ///< 0 = hardware_concurrency.
  /// Tenant label stamped on requests that pass no SubmitOptions::Tenant
  /// (FT_SLO_TENANT, default "default") — SLO accounting always has a
  /// bucket to land in.
  std::string DefaultTenant = "default";
  /// Deadline stamped on requests that pass no SubmitOptions::DeadlineNs
  /// (FT_SLO_DEADLINE_MS, converted to ns; default 0 = no deadline).
  uint64_t DefaultDeadlineNs = 0;
  /// Profile-guided shape-bucket specialization of shape-generic
  /// fingerprints (FT_SPECIALIZE, default on; 0 disables). The generic
  /// kernel serves every shape from request 1; hot buckets additionally
  /// get a background specialized compile that hot-swaps in when ready.
  bool Specialize = true;
  /// Requests a shape bucket must accumulate before it is nominated for a
  /// specialized compile (FT_SPECIALIZE_AFTER, default 16, floor 1).
  uint64_t SpecializeAfter = 16;
  /// Most specialized compiles per generic fingerprint — the advise cap K
  /// (FT_SPECIALIZE_MAX, default 4; 0 disables nomination).
  size_t SpecializeMax = 4;
  /// Host-compiler flags for specialized compiles (FT_SPECIALIZE_OPT_FLAGS,
  /// default "-O3": a specialized kernel is compiled once per hot bucket
  /// and served many times, so it buys the full optimization budget the
  /// generic tier's OptFlags trades away).
  std::string SpecOptFlags = "-O3";

  /// Reads FT_SERVE_* / FT_SLO_* from the environment, falling back to the
  /// defaults above on unset or unparsable values.
  static Config fromEnv();
};

/// Per-submission overrides for the request's SLO identity. Fields left at
/// their defaults fall back to the Config values above.
struct SubmitOptions {
  std::string Tenant;      ///< Empty = Config::DefaultTenant.
  uint64_t DeadlineNs = 0; ///< 0 = Config::DefaultDeadlineNs.
};

/// Outcome of one served request, delivered through the future submit()
/// returned.
struct Response {
  /// Execution outcome. An error here is per-request (bad argument binding,
  /// kernel runtime error) — the executor itself keeps running.
  Status S;
  Tier ServedBy = Tier::Interp;
  /// Wall-clock seconds from submit() to completion.
  double LatencySec = 0;
  /// Seconds the request waited in the queue before execution started.
  double QueueSec = 0;
  /// Size of the micro-batch this request was executed in (1 = unbatched).
  int BatchSize = 1;
  /// The process-unique request id submit() stamped (RequestContext::Id) —
  /// the join key into spans, flow arrows, flight events, and snapshots.
  uint64_t ReqId = 0;
  /// True when the request carried a deadline and submit→completion
  /// exceeded it. The request still ran to completion — a missed deadline
  /// is an SLO fact, not an execution error.
  bool DeadlineMissed = false;
  /// True when ServedBy == Jit and the kernel was a shape-bucket
  /// specialization rather than the shape-generic compile.
  bool Specialized = false;
};

/// Monotonic executor counters (a consistent-enough snapshot; fields are
/// read individually with relaxed ordering). Storage is the global
/// "serve/..." metrics registry — stats() reports deltas from the values
/// at this executor's construction, so concurrently-live executors see
/// each other's traffic (existing drivers use executors sequentially).
struct ServeStats {
  uint64_t Submitted = 0;       ///< Requests accepted into the queue.
  uint64_t Rejected = 0;        ///< Submissions refused: queue full.
  uint64_t InterpServed = 0;    ///< Requests answered by the interpreter.
  uint64_t JitServed = 0;       ///< Requests answered by a compiled kernel.
  uint64_t CompilesStarted = 0; ///< Background compiles enqueued (deduped).
  uint64_t CompilesFailed = 0;  ///< Compiles that failed => pinned fallback.
  uint64_t CacheHits = 0;       ///< Kernels acquired from the kernel cache
                                ///< without running the host compiler.
  uint64_t Batches = 0;         ///< Micro-batches executed (incl. size 1).
  uint64_t MaxBatch = 0;        ///< Largest batch observed.
  uint64_t RunErrors = 0;       ///< Requests completed with an error Status.
  uint64_t SpecServed = 0;      ///< JitServed subset answered by a
                                ///< shape-bucket specialization.
  uint64_t SpecCompilesStarted = 0; ///< Specialized compiles enqueued.
  uint64_t SpecCompilesFailed = 0;  ///< Specialized compiles that failed
                                    ///< (bucket falls back to the generic
                                    ///< kernel — degraded, never broken).
};

/// The serving executor. Owns a fixed worker pool, one background compile
/// thread, and the bounded request queue. Thread-safe: any thread may
/// submit. Destruction shuts down gracefully (pending requests complete).
class Executor {
public:
  explicit Executor(const Config &C = Config::fromEnv());
  ~Executor();

  Executor(const Executor &) = delete;
  Executor &operator=(const Executor &) = delete;

  /// Enqueues one execution request: run \p F binding parameter names to
  /// the caller-owned buffers in \p Args. The caller must keep every
  /// buffer alive (and not read results) until the returned future
  /// resolves. Errors are typed and immediate:
  ///   - queue full (reject policy): "serve: queue full ..."
  ///   - executor shut down:         "serve: executor is shut down"
  /// Per-request execution errors travel inside Response::S instead.
  Result<std::future<Response>> submit(const Func &F,
                                       const std::map<std::string, Buffer *> &Args);

  /// submit() with an explicit tenant label and/or deadline; the two-arg
  /// overload forwards here with defaults (see SubmitOptions).
  Result<std::future<Response>> submit(const Func &F,
                                       const std::map<std::string, Buffer *> &Args,
                                       const SubmitOptions &Opts);

  /// Blocks until every accepted request has completed AND every enqueued
  /// background compile has finished. The executor stays usable after.
  void drain();

  /// Stops accepting work, completes everything already accepted (requests
  /// and background compiles), and joins all threads. Idempotent; the
  /// destructor calls it.
  void shutdown();

  /// Snapshot of the executor counters.
  ServeStats stats() const;

  /// Requests currently waiting in the queue.
  size_t queueDepth() const;

  /// Number of distinct kernel fingerprints this executor has seen.
  size_t directorySize() const;

  const Config &config() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace ft::serve

#endif // FT_SERVE_SERVE_H
