//===- serve/shape_key.cpp ------------------------------------------------===//

#include "serve/shape_key.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

using namespace ft;
using namespace ft::serve;

namespace {

/// The smallest power of two >= \p V (V < 1 buckets to 1). This is the
/// ragged size bucket: sparse inputs whose nnz drifts a few percent between
/// requests must not each mint a fresh specialization bucket.
int64_t pow2BucketOf(int64_t V) {
  int64_t B = 1;
  while (B < V && B < (int64_t{1} << 62))
    B <<= 1;
  return B;
}

/// One signature segment for parameter \p Name bound to \p B. Ragged sizes
/// (per \p RI; null = none) are bucketed and spelled `~bucket`.
std::string segmentOf(const std::string &Name, const Buffer *B,
                      const RaggedInfo *RI) {
  std::string P = Name;
  P += ':';
  P += nameOf(B->dtype());
  const std::vector<int64_t> &Sh = B->shape();
  if (Sh.empty() && isInt(B->dtype())) {
    const int64_t V = B->getI(0);
    if (RI && RI->isRaggedExtent(Name)) {
      P += '~';
      P += std::to_string(pow2BucketOf(V));
    } else {
      P += '=';
      P += std::to_string(V);
    }
  } else {
    const std::set<int> *Ragged = nullptr;
    if (RI) {
      auto It = RI->RaggedDims.find(Name);
      if (It != RI->RaggedDims.end())
        Ragged = &It->second;
    }
    P += '[';
    for (size_t I = 0; I < Sh.size(); ++I) {
      if (I)
        P += 'x';
      if (Ragged && Ragged->count(static_cast<int>(I))) {
        P += '~';
        P += std::to_string(pow2BucketOf(Sh[I]));
      } else {
        P += std::to_string(Sh[I]);
      }
    }
    P += ']';
  }
  return P;
}

std::string keyOf(const std::map<std::string, Buffer *> &Args,
                  const RaggedInfo *RI) {
  // Collect then sort explicitly: the signature must be canonical for any
  // caller-side container, not an accident of std::map iteration order.
  std::vector<std::pair<std::string, std::string>> Parts;
  Parts.reserve(Args.size());
  for (const auto &[Name, B] : Args) {
    if (!B)
      continue;
    Parts.emplace_back(Name, segmentOf(Name, B, RI));
  }
  std::sort(Parts.begin(), Parts.end());
  std::string K;
  for (const auto &[Name, P] : Parts) {
    if (!K.empty())
      K += ' ';
    K += P;
  }
  return K;
}

} // namespace

std::string ft::serve::shapeKeyOf(const std::map<std::string, Buffer *> &Args) {
  return keyOf(Args, nullptr);
}

std::string
ft::serve::bucketedShapeKeyOf(const std::map<std::string, Buffer *> &Args,
                              const RaggedInfo &RI) {
  return keyOf(Args, RI.empty() ? nullptr : &RI);
}

Result<std::map<std::string, int64_t>>
ft::serve::parseScalarExtents(const std::string &Key) {
  std::map<std::string, int64_t> Out;
  size_t Pos = 0;
  while (Pos < Key.size()) {
    size_t End = Key.find(' ', Pos);
    if (End == std::string::npos)
      End = Key.size();
    const std::string Seg = Key.substr(Pos, End - Pos);
    Pos = End + 1;
    size_t Colon = Seg.find(':');
    size_t Eq = Seg.find('=');
    if (Colon == std::string::npos || Eq == std::string::npos || Eq < Colon)
      continue; // Tensor ([...]) or bucketed (~) segment: not a binding.
    // A scalar binding names a dtype between `:` and `=`; only an integer
    // scalar can bind an extent parameter. Accepting `n:f32=3` here would
    // silently specialize at a truncated float — reject it instead.
    const std::string DT = Seg.substr(Colon + 1, Eq - Colon - 1);
    if (DT != nameOf(DataType::Int32) && DT != nameOf(DataType::Int64))
      return Status::error("shape key: scalar extent `" +
                           Seg.substr(0, Colon) + "` has non-integer dtype `" +
                           DT + "` in segment `" + Seg + "`");
    char *Stop = nullptr;
    const std::string ValStr = Seg.substr(Eq + 1);
    long long V = std::strtoll(ValStr.c_str(), &Stop, 10);
    if (!Stop || *Stop != '\0' || ValStr.empty())
      return Status::error("shape key: unparsable scalar value in segment `" +
                           Seg + "`");
    Out[Seg.substr(0, Colon)] = static_cast<int64_t>(V);
  }
  return Out;
}
