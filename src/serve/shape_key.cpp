//===- serve/shape_key.cpp ------------------------------------------------===//

#include "serve/shape_key.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

using namespace ft;
using namespace ft::serve;

std::string ft::serve::shapeKeyOf(const std::map<std::string, Buffer *> &Args) {
  // Collect then sort explicitly: the signature must be canonical for any
  // caller-side container, not an accident of std::map iteration order.
  std::vector<std::pair<std::string, std::string>> Parts;
  Parts.reserve(Args.size());
  for (const auto &[Name, B] : Args) {
    if (!B)
      continue;
    std::string P = Name;
    P += ':';
    P += nameOf(B->dtype());
    const std::vector<int64_t> &Sh = B->shape();
    if (Sh.empty() && isInt(B->dtype())) {
      P += '=';
      P += std::to_string(B->getI(0));
    } else {
      P += '[';
      for (size_t I = 0; I < Sh.size(); ++I) {
        if (I)
          P += 'x';
        P += std::to_string(Sh[I]);
      }
      P += ']';
    }
    Parts.emplace_back(Name, std::move(P));
  }
  std::sort(Parts.begin(), Parts.end());
  std::string K;
  for (const auto &[Name, P] : Parts) {
    if (!K.empty())
      K += ' ';
    K += P;
  }
  return K;
}

std::map<std::string, int64_t>
ft::serve::parseScalarExtents(const std::string &Key) {
  std::map<std::string, int64_t> Out;
  size_t Pos = 0;
  while (Pos < Key.size()) {
    size_t End = Key.find(' ', Pos);
    if (End == std::string::npos)
      End = Key.size();
    const std::string Seg = Key.substr(Pos, End - Pos);
    Pos = End + 1;
    size_t Colon = Seg.find(':');
    size_t Eq = Seg.find('=');
    if (Colon == std::string::npos || Eq == std::string::npos || Eq < Colon)
      continue;
    char *Stop = nullptr;
    const std::string ValStr = Seg.substr(Eq + 1);
    long long V = std::strtoll(ValStr.c_str(), &Stop, 10);
    if (!Stop || *Stop != '\0' || ValStr.empty())
      continue;
    Out[Seg.substr(0, Colon)] = static_cast<int64_t>(V);
  }
  return Out;
}
