//===- serve/executor.cpp - Serving executor ------------------------------===//
///
/// \file
/// Implementation of serve::Executor (serve/serve.h). Threading model:
///
///   - Submitters (any thread) intern the fingerprint, win-or-lose the
///     single compile trigger, and push a Request onto the bounded queue.
///   - `Config::Threads` workers pop requests, gather a same-fingerprint
///     micro-batch, and execute it under the entry's RunMu on whichever
///     tier the entry currently offers.
///   - One compile thread drains the compile queue; each job runs the host
///     compiler once and flips its entry to Ready or Failed.
///
/// Drain accounting: `Outstanding` (accepted, promise not yet fulfilled)
/// and `PendingCompiles` are both guarded by DrainMu so drain() cannot miss
/// a transition between a queue pop and the counter update.
///
//===----------------------------------------------------------------------===//

#include "serve/serve.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "analysis/extents.h"
#include "autoschedule/autoschedule.h"
#include "codegen/jit.h"
#include "codegen/kernel_cache.h"
#include "interp/interp.h"
#include "pass/simplify.h"
#include "pass/specialize.h"
#include "serve/dispatch.h"
#include "serve/queue.h"
#include "serve/shape_key.h"
#include "serve/telemetry.h"
#include "support/metrics.h"
#include "support/trace.h"

using namespace ft;
using namespace ft::serve;

namespace {

using Clock = std::chrono::steady_clock;

double secondsBetween(Clock::time_point A, Clock::time_point B) {
  return std::chrono::duration<double>(B - A).count();
}

long envLong(const char *Name, long Default, long Min) {
  const char *E = std::getenv(Name);
  if (!E || !*E)
    return Default;
  char *End = nullptr;
  long V = std::strtol(E, &End, 10);
  if (End == E)
    return Default;
  return V < Min ? Min : V;
}

} // namespace

const char *ft::serve::nameOf(Tier T) {
  return T == Tier::Jit ? "jit" : "interp";
}

Config Config::fromEnv() {
  Config C;
  C.Threads = static_cast<int>(envLong("FT_SERVE_THREADS", C.Threads, 1));
  C.QueueCap = static_cast<size_t>(
      envLong("FT_SERVE_QUEUE_CAP", static_cast<long>(C.QueueCap), 1));
  if (const char *E = std::getenv("FT_SERVE_ON_FULL"))
    C.BlockOnFull = std::strcmp(E, "block") == 0;
  C.BatchWindowUs = static_cast<int>(
      envLong("FT_SERVE_BATCH_WINDOW_US", C.BatchWindowUs, 0));
  C.MaxBatch = static_cast<size_t>(
      envLong("FT_SERVE_MAX_BATCH", static_cast<long>(C.MaxBatch), 1));
  if (const char *E = std::getenv("FT_SERVE_OPT_FLAGS"))
    if (*E)
      C.OptFlags = E;
  C.RtThreadBudget = static_cast<int>(
      envLong("FT_SERVE_RT_THREADS", C.RtThreadBudget, 0));
  if (const char *E = std::getenv("FT_SLO_TENANT"))
    if (*E)
      C.DefaultTenant = E;
  C.DefaultDeadlineNs =
      static_cast<uint64_t>(envLong("FT_SLO_DEADLINE_MS", 0, 0)) * 1'000'000;
  if (const char *E = std::getenv("FT_SPECIALIZE"))
    C.Specialize = std::strcmp(E, "0") != 0;
  C.SpecializeAfter = static_cast<uint64_t>(envLong(
      "FT_SPECIALIZE_AFTER", static_cast<long>(C.SpecializeAfter), 1));
  C.SpecializeMax = static_cast<size_t>(envLong(
      "FT_SPECIALIZE_MAX", static_cast<long>(C.SpecializeMax), 0));
  if (const char *E = std::getenv("FT_SPECIALIZE_OPT_FLAGS"))
    if (*E)
      C.SpecOptFlags = E;
  return C;
}

namespace {

/// One accepted request, queued until a worker executes it.
struct Request {
  std::shared_ptr<KernelEntry> E;
  std::map<std::string, Buffer *> Args;
  std::promise<Response> P;
  Clock::time_point SubmitT;
  RequestContext Ctx; ///< Stamped at submit, carried by value.
};

// The argument-shape signature (telemetry row key + specialization bucket
// key) is the canonical sorted-by-name serve::shapeKeyOf in
// serve/shape_key.h — one definition for both consumers, so a bucket the
// executor specializes and a row `ftc --advise` nominates can never drift
// apart.

/// The executor's counters, stored once: in the global metrics registry.
/// References are resolved at construction so every bump is one relaxed
/// add, not a map lookup. Executor::stats() reports per-executor numbers
/// as saturating deltas from a construction-time baseline (MaxBatch is a
/// max-gauge, not summable, and stays a per-executor atomic in Impl).
struct StatsRefs {
  metrics::Counter &Submitted = metrics::counter("serve/submitted");
  metrics::Counter &Rejected = metrics::counter("serve/rejected");
  metrics::Counter &InterpServed = metrics::counter("serve/interp_served");
  metrics::Counter &JitServed = metrics::counter("serve/jit_served");
  metrics::Counter &CompilesStarted = metrics::counter("serve/compiles_started");
  metrics::Counter &CompilesFailed = metrics::counter("serve/compiles_failed");
  metrics::Counter &CacheHits = metrics::counter("serve/cache_hits");
  metrics::Counter &Batches = metrics::counter("serve/batches");
  metrics::Counter &RunErrors = metrics::counter("serve/run_errors");
  metrics::Counter &SpecServed = metrics::counter("serve/spec_served");
  metrics::Counter &SpecCompilesStarted =
      metrics::counter("serve/spec_compiles_started");
  metrics::Counter &SpecCompilesFailed =
      metrics::counter("serve/spec_compiles_failed");
};

/// Registry values when this executor was built. A metrics::resetAll()
/// while an executor is live makes its deltas saturate to zero rather
/// than wrap; concurrently-live executors see each other's traffic (the
/// registry is process-global — documented in serve.h).
struct StatsBaseline {
  uint64_t Submitted, Rejected, InterpServed, JitServed, CompilesStarted,
      CompilesFailed, CacheHits, Batches, RunErrors, SpecServed,
      SpecCompilesStarted, SpecCompilesFailed;

  explicit StatsBaseline(const StatsRefs &R)
      : Submitted(R.Submitted.load()), Rejected(R.Rejected.load()),
        InterpServed(R.InterpServed.load()), JitServed(R.JitServed.load()),
        CompilesStarted(R.CompilesStarted.load()),
        CompilesFailed(R.CompilesFailed.load()),
        CacheHits(R.CacheHits.load()), Batches(R.Batches.load()),
        RunErrors(R.RunErrors.load()), SpecServed(R.SpecServed.load()),
        SpecCompilesStarted(R.SpecCompilesStarted.load()),
        SpecCompilesFailed(R.SpecCompilesFailed.load()) {}
};

uint64_t satDelta(uint64_t Cur, uint64_t Base) {
  return Cur >= Base ? Cur - Base : 0;
}

uint64_t toNs(Clock::time_point A, Clock::time_point B) {
  auto D = std::chrono::duration_cast<std::chrono::nanoseconds>(B - A).count();
  return D < 0 ? 0 : static_cast<uint64_t>(D);
}

} // namespace

struct Executor::Impl {
  explicit Impl(const Config &Cfg)
      : C(sanitize(Cfg)), Q(C.QueueCap), CompileQ(4096), Base(Stats),
        QueueDepth(metrics::counter("serve/queue_depth")) {}

  static Config sanitize(Config C) {
    if (C.Threads < 1)
      C.Threads = 1;
    if (C.QueueCap < 1)
      C.QueueCap = 1;
    if (C.MaxBatch < 1)
      C.MaxBatch = 1;
    if (C.BatchWindowUs < 0)
      C.BatchWindowUs = 0;
    return C;
  }

  const Config C;
  KernelDirectory Dir;
  BoundedQueue<Request> Q;
  BoundedQueue<std::shared_ptr<KernelEntry>> CompileQ;
  std::vector<std::thread> Workers;
  std::thread Compiler;
  StatsRefs Stats;
  StatsBaseline Base;
  std::atomic<uint64_t> MaxBatch{0}; ///< Largest batch this executor ran.
  metrics::Counter &QueueDepth;      ///< Gauge: current queue size.

  std::atomic<bool> ShuttingDown{false};

  /// Drain accounting (see file comment).
  std::mutex DrainMu;
  std::condition_variable DrainCv;
  uint64_t Outstanding = 0;      ///< Accepted, promise not yet fulfilled.
  uint64_t PendingCompiles = 0;  ///< Compile jobs enqueued, not finished.

  /// Joined-state guard: shutdown() must be idempotent and callable
  /// concurrently with the destructor.
  std::mutex ShutdownMu;
  bool Joined = false;

  /// Per-kernel worker-thread cap so `Threads` concurrently executing
  /// kernels stay within the host budget (satellite #2 of the PR: without
  /// the cap, K kernels each sized to hardware_concurrency oversubscribe
  /// the machine K-fold).
  void capThreads(const Kernel &K) const {
    int Budget = C.RtThreadBudget > 0
                     ? C.RtThreadBudget
                     : static_cast<int>(std::thread::hardware_concurrency());
    if (Budget < 1)
      Budget = 1;
    int Per = Budget / C.Threads;
    K.setMaxThreads(Per < 1 ? 1 : Per);
  }

  void bumpOutstanding() {
    std::lock_guard<std::mutex> Lock(DrainMu);
    ++Outstanding;
  }
  void dropOutstanding() {
    {
      std::lock_guard<std::mutex> Lock(DrainMu);
      --Outstanding;
    }
    DrainCv.notify_all();
  }
  void bumpPendingCompiles() {
    std::lock_guard<std::mutex> Lock(DrainMu);
    ++PendingCompiles;
  }
  void dropPendingCompiles() {
    {
      std::lock_guard<std::mutex> Lock(DrainMu);
      --PendingCompiles;
    }
    DrainCv.notify_all();
  }

  /// First sight of a Cold fingerprint: probe the kernel cache (no host
  /// compiler); a hit makes the very first request JIT-tier. On a miss the
  /// beginCompile winner enqueues the one background compile job.
  void triggerCompile(const std::shared_ptr<KernelEntry> &E,
                      uint64_t TriggerReqId) {
    if (E->state() != KernelState::Cold || !E->beginCompile())
      return;
    if (std::optional<Kernel> K = Kernel::tryCached(E->F, {}, C.OptFlags)) {
      capThreads(*K);
      Stats.CacheHits.fetch_add(1);
      E->finishCompile(std::move(*K));
      return;
    }
    // The beginCompile winner's request id — written before the push, read
    // by the compile thread after the pop (the queue lock orders them).
    E->TriggerReqId = TriggerReqId;
    Stats.CompilesStarted.fetch_add(1);
    bumpPendingCompiles();
    if (CompileQ.tryPush(E) != PushResult::Ok) {
      // Queue closed (shutdown raced in) or full beyond any plausible
      // working set: pin to the interpreter rather than wedge in
      // Compiling.
      dropPendingCompiles();
      Stats.CompilesFailed.fetch_add(1);
      E->failCompile("serve: compile queue unavailable");
    }
  }

  /// Enqueues the one background compile of a nominated shape-bucket
  /// specialization. No cache probe here: the compile job schedules the
  /// specialized function first, and Kernel::compile's own probe (keyed on
  /// the scheduled program) catches warm artifacts — including ones
  /// pre-compiled by `ftc --advise --specialize`.
  void triggerSpecCompile(const std::shared_ptr<KernelEntry> &E,
                          uint64_t TriggerReqId) {
    if (E->state() != KernelState::Cold || !E->beginCompile())
      return;
    E->TriggerReqId = TriggerReqId;
    Stats.SpecCompilesStarted.fetch_add(1);
    bumpPendingCompiles();
    if (CompileQ.tryPush(E) != PushResult::Ok) {
      dropPendingCompiles();
      Stats.SpecCompilesFailed.fetch_add(1);
      E->failCompile("serve: compile queue unavailable");
    }
  }

  /// Shape-bucket bookkeeping for one request of a shape-generic entry:
  /// tallies the bucket, nominates a specialized compile once the bucket
  /// crosses SpecializeAfter (at most SpecializeMax buckets per
  /// fingerprint), and returns the bucket's specialized kernel when its
  /// background compile has landed. Null = serve the generic tier.
  std::optional<Kernel> specKernelFor(KernelEntry *E, const Request &Req) {
    // Ragged entries bucket by the pow2-rounded key: one bucket (and one
    // specialized kernel) per nnz octave instead of one per exact nnz.
    const std::string Bucket = bucketedShapeKeyOf(Req.Args, E->Ragged);
    std::shared_ptr<KernelEntry> SE;
    {
      std::lock_guard<std::mutex> Lock(E->SpecMu);
      KernelEntry::SpecBucket &B = E->Spec[Bucket];
      ++B.Hits;
      if (!B.Entry && C.SpecializeMax > 0 && E->SpecCount < C.SpecializeMax &&
          B.Hits >= C.SpecializeAfter) {
        std::map<std::string, int64_t> Ext;
        bool Bindable = bindExtentArgs(E->Extents, Req.Args, Ext).ok();
        for (const auto &[Name, Val] : Ext)
          Bindable = Bindable && Val >= 1;
        // Ragged extents stay symbolic: folding the nominating request's
        // exact nnz would bake a constant every other request in the
        // bucket violates. Dense extents fold; nnz rides through as the
        // specialized entry's residual extent spec, bound per request by
        // Kernel::run.
        for (const std::string &Name : E->Ragged.RaggedExtents)
          Ext.erase(Name);
        if (Bindable && !Ext.empty()) {
          Func SF = specializeFunc(E->F, Ext);
          uint64_t SKey = kernel_cache::cacheKey(SF, {}, C.SpecOptFlags).Full;
          ExtentSpec Residual = extentParamsOf(SF);
          B.Entry = std::make_shared<KernelEntry>(
              SKey, std::move(SF), std::move(Residual), E->Ragged,
              /*IsSpec=*/true);
          ++E->SpecCount;
        }
      }
      SE = B.Entry;
    }
    if (!SE)
      return std::nullopt;
    triggerSpecCompile(SE, Req.Ctx.Id);
    return SE->kernel();
  }

  void compileLoop() {
    while (std::optional<std::shared_ptr<KernelEntry>> Job =
               CompileQ.popWait()) {
      std::shared_ptr<KernelEntry> E = *Job;
      trace::Span Sp("serve/compile");
      if (Sp.active() && E->TriggerReqId != 0)
        // Close the triggering request's flow arrow inside this span:
        // Perfetto draws enqueue → dispatch → this compile as one chain.
        trace::emitFlow("serve/req", E->TriggerReqId, 'f');
      Clock::time_point T0 = Clock::now();
      // A specialized job's input has its extents constant-folded already;
      // re-arm the static-shape optimization stack on it (simplify +
      // autoschedule: SIMD proofs, stack placement, parallelization) and
      // spend the full host-compiler budget. Generic jobs compile the
      // submitted program as-is at the serving OptFlags.
      Func In = E->F;
      const std::string &Flags = E->IsSpec ? C.SpecOptFlags : C.OptFlags;
      if (E->IsSpec)
        In = autoScheduleFunc(simplify(In));
      Result<Kernel> R = Kernel::compile(In, {}, Flags);
      telemetry::onCompile(toNs(T0, Clock::now()), R.ok());
      if (Sp.active()) {
        Sp.annotate("key", E->Key);
        Sp.annotate("req", E->TriggerReqId);
        Sp.annotate("spec", std::string(E->IsSpec ? "true" : "false"));
        Sp.annotate("ok", std::string(R.ok() ? "true" : "false"));
      }
      if (R.ok()) {
        capThreads(*R);
        E->finishCompile(std::move(*R));
      } else {
        (E->IsSpec ? Stats.SpecCompilesFailed : Stats.CompilesFailed)
            .fetch_add(1);
        E->failCompile(R.message());
      }
      dropPendingCompiles();
    }
  }

  void workerLoop() {
    std::vector<Request> Batch;
    while (std::optional<Request> R = Q.popWait()) {
      Batch.clear();
      Batch.push_back(std::move(*R));
      KernelEntry *E = Batch.front().E.get();
      auto SameEntry = [E](const Request &Req) { return Req.E.get() == E; };
      if (C.MaxBatch > 1) {
        if (C.BatchWindowUs > 0)
          Q.extractIfUntil(SameEntry, C.MaxBatch - 1,
                           Clock::now() +
                               std::chrono::microseconds(C.BatchWindowUs),
                           Batch);
        else
          Q.extractIf(SameEntry, C.MaxBatch - 1, Batch);
      }
      QueueDepth.store(Q.size());
      executeBatch(Batch);
    }
  }

  void executeBatch(std::vector<Request> &Batch) {
    std::shared_ptr<KernelEntry> E = Batch.front().E;
    // Serialize same-fingerprint execution: one kernel's runtime (profile
    // slots, private thread pool) is not reentrant. Distinct fingerprints
    // proceed in parallel on other workers.
    std::lock_guard<std::mutex> RunLock(E->RunMu);
    std::optional<Kernel> K = E->kernel();

    Stats.Batches.fetch_add(1);
    uint64_t Prev = MaxBatch.load();
    while (Batch.size() > Prev &&
           !MaxBatch.compare_exchange_weak(Prev, Batch.size())) {
    }
    const uint64_t BatchId =
        telemetry::onBatch(static_cast<uint32_t>(Batch.size()));

    for (Request &Req : Batch) {
      trace::Span Sp("serve/request");
      if (Sp.active())
        // Flow step inside the dispatch span: the arrow started at this
        // request's enqueue passes through here.
        trace::emitFlow("serve/req", Req.Ctx.Id, 't');
      Clock::time_point Start = Clock::now();
      // Validate on both tiers: requests are untrusted, and a compiled
      // kernel would otherwise execute a bad binding unchecked. The cached
      // extent spec saves the per-request body walk validateArgs would
      // otherwise redo.
      Status S = validateArgs(E->F, Req.Args, E->Extents);
      const bool ArgsOk = S.ok();
      // Tier selection is per request: on a shape-generic entry, a request
      // whose shape bucket has a landed specialization is served by that
      // kernel; everything else takes the generic kernel (or the
      // interpreter while it compiles).
      std::optional<Kernel> UseK = K;
      bool Specialized = false;
      if (ArgsOk && C.Specialize && !E->Extents.empty())
        if (std::optional<Kernel> SK = specKernelFor(E.get(), Req)) {
          UseK = std::move(SK);
          Specialized = true;
        }
      const Tier T = UseK ? Tier::Jit : Tier::Interp;
      if (ArgsOk)
        S = UseK ? UseK->run(Req.Args, Req.Ctx.Id)
                 : interpretChecked(E->F, Req.Args);
      Clock::time_point End = Clock::now();

      if (T == Tier::Jit)
        Stats.JitServed.fetch_add(1);
      else
        Stats.InterpServed.fetch_add(1);
      if (Specialized)
        Stats.SpecServed.fetch_add(1);
      if (!S)
        Stats.RunErrors.fetch_add(1);
      if (Sp.active()) {
        Sp.annotate("req", Req.Ctx.Id);
        Sp.annotate("tenant", Req.Ctx.Tenant);
        Sp.annotate("tier", std::string(nameOf(T)));
        Sp.annotate("batch", static_cast<uint64_t>(Batch.size()));
        Sp.annotate("key", E->Key);
      }
      const uint64_t TotalNs = toNs(Req.SubmitT, End);
      const bool DeadlineMissed =
          Req.Ctx.DeadlineNs > 0 && TotalNs > Req.Ctx.DeadlineNs;
      if (telemetry::enabled()) {
        telemetry::RequestSample TS;
        TS.Fingerprint = E->Key;
        TS.ReqId = Req.Ctx.Id;
        TS.Tenant = Req.Ctx.Tenant;
        TS.DeadlineNs = Req.Ctx.DeadlineNs;
        // Ragged entries report the bucketed key: nnz that churns every
        // request would otherwise shatter the shape table into
        // one-hit-wonder rows `--advise` can never nominate.
        TS.ShapeKey = bucketedShapeKeyOf(Req.Args, E->Ragged);
        TS.ServedBy = T;
        TS.Out = S.ok() ? Outcome::Ok
                        : (ArgsOk ? Outcome::RunError : Outcome::InvalidArgs);
        TS.QueueNs = toNs(Req.SubmitT, Start);
        TS.RunNs = toNs(Start, End);
        TS.TotalNs = TotalNs;
        TS.BatchSize = static_cast<uint32_t>(Batch.size());
        TS.BatchId = BatchId;
        if (!S.ok())
          TS.Error = S.message();
        telemetry::onRequestComplete(TS);
      }

      Response Resp;
      Resp.S = std::move(S);
      Resp.ServedBy = T;
      Resp.LatencySec = secondsBetween(Req.SubmitT, End);
      Resp.QueueSec = secondsBetween(Req.SubmitT, Start);
      Resp.BatchSize = static_cast<int>(Batch.size());
      Resp.ReqId = Req.Ctx.Id;
      Resp.DeadlineMissed = DeadlineMissed;
      Resp.Specialized = Specialized;
      Req.P.set_value(std::move(Resp));
      dropOutstanding();
    }
  }
};

Executor::Executor(const Config &Cfg) : I(std::make_unique<Impl>(Cfg)) {
  telemetry::autoStartFromEnv();
  I->Compiler = std::thread([Impl = I.get()] { Impl->compileLoop(); });
  I->Workers.reserve(static_cast<size_t>(I->C.Threads));
  for (int W = 0; W < I->C.Threads; ++W)
    I->Workers.emplace_back([Impl = I.get()] { Impl->workerLoop(); });
}

Executor::~Executor() { shutdown(); }

Result<std::future<Response>>
Executor::submit(const Func &F, const std::map<std::string, Buffer *> &Args) {
  return submit(F, Args, SubmitOptions{});
}

Result<std::future<Response>>
Executor::submit(const Func &F, const std::map<std::string, Buffer *> &Args,
                 const SubmitOptions &Opts) {
  RequestContext Ctx;
  Ctx.Id = nextRequestId();
  Ctx.Tenant = Opts.Tenant.empty() ? I->C.DefaultTenant : Opts.Tenant;
  Ctx.DeadlineNs =
      Opts.DeadlineNs != 0 ? Opts.DeadlineNs : I->C.DefaultDeadlineNs;

  if (I->ShuttingDown.load(std::memory_order_acquire)) {
    I->Stats.Rejected.fetch_add(1);
    // Fingerprint 0: rejected before the key was computed.
    telemetry::onReject(0, Outcome::RejectedShutdown, Ctx.Id, Ctx.Tenant);
    return Result<std::future<Response>>::error("serve: executor is shut down");
  }

  uint64_t Key = kernel_cache::cacheKey(F, {}, I->C.OptFlags).Full;
  std::shared_ptr<KernelEntry> E = I->Dir.intern(Key, F);
  I->triggerCompile(E, Ctx.Id);

  Request R;
  R.E = std::move(E);
  R.Args = Args;
  R.SubmitT = Clock::now();
  R.Ctx = Ctx;
  std::future<Response> Fut = R.P.get_future();

  I->bumpOutstanding();
  PushResult PR;
  {
    // The flow arrow starts inside this span: Perfetto binds a flow point
    // to the slice enclosing it, and the push is the moment the request
    // enters the system.
    trace::Span Sp("serve/enqueue");
    if (Sp.active()) {
      Sp.annotate("req", Ctx.Id);
      Sp.annotate("tenant", Ctx.Tenant);
      Sp.annotate("key", Key);
      trace::emitFlow("serve/req", Ctx.Id, 's');
    }
    PR = I->C.BlockOnFull ? I->Q.pushWait(std::move(R))
                          : I->Q.tryPush(std::move(R));
  }
  if (PR != PushResult::Ok) {
    I->dropOutstanding();
    I->Stats.Rejected.fetch_add(1);
    if (PR == PushResult::Closed) {
      telemetry::onReject(Key, Outcome::RejectedShutdown, Ctx.Id, Ctx.Tenant);
      return Result<std::future<Response>>::error(
          "serve: executor is shut down");
    }
    telemetry::onReject(Key, Outcome::RejectedFull, Ctx.Id, Ctx.Tenant);
    return Result<std::future<Response>>::error(
        "serve: queue full (capacity " + std::to_string(I->C.QueueCap) +
        "); retry or set FT_SERVE_ON_FULL=block");
  }
  I->Stats.Submitted.fetch_add(1);
  I->QueueDepth.store(I->Q.size());
  return Fut;
}

void Executor::drain() {
  std::unique_lock<std::mutex> Lock(I->DrainMu);
  I->DrainCv.wait(Lock, [this] {
    return I->Outstanding == 0 && I->PendingCompiles == 0;
  });
}

void Executor::shutdown() {
  I->ShuttingDown.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> Lock(I->ShutdownMu);
  if (I->Joined)
    return;
  // Closing the queues stops intake but lets consumers pop what is already
  // queued, so every accepted request completes and every enqueued compile
  // finishes before the threads exit.
  I->Q.close();
  I->CompileQ.close();
  for (std::thread &W : I->Workers)
    W.join();
  if (I->Compiler.joinable())
    I->Compiler.join();
  I->Joined = true;
}

ServeStats Executor::stats() const {
  ServeStats S;
  S.Submitted = satDelta(I->Stats.Submitted.load(), I->Base.Submitted);
  S.Rejected = satDelta(I->Stats.Rejected.load(), I->Base.Rejected);
  S.InterpServed =
      satDelta(I->Stats.InterpServed.load(), I->Base.InterpServed);
  S.JitServed = satDelta(I->Stats.JitServed.load(), I->Base.JitServed);
  S.CompilesStarted =
      satDelta(I->Stats.CompilesStarted.load(), I->Base.CompilesStarted);
  S.CompilesFailed =
      satDelta(I->Stats.CompilesFailed.load(), I->Base.CompilesFailed);
  S.CacheHits = satDelta(I->Stats.CacheHits.load(), I->Base.CacheHits);
  S.Batches = satDelta(I->Stats.Batches.load(), I->Base.Batches);
  S.MaxBatch = I->MaxBatch.load();
  S.RunErrors = satDelta(I->Stats.RunErrors.load(), I->Base.RunErrors);
  S.SpecServed = satDelta(I->Stats.SpecServed.load(), I->Base.SpecServed);
  S.SpecCompilesStarted = satDelta(I->Stats.SpecCompilesStarted.load(),
                                   I->Base.SpecCompilesStarted);
  S.SpecCompilesFailed = satDelta(I->Stats.SpecCompilesFailed.load(),
                                  I->Base.SpecCompilesFailed);
  return S;
}

size_t Executor::queueDepth() const { return I->Q.size(); }

size_t Executor::directorySize() const { return I->Dir.size(); }

const Config &Executor::config() const { return I->C; }
