//===- serve/shape_key.h - Canonical argument-shape signature ----*- C++ -*-===//
///
/// \file
/// The canonical signature of one request's argument bindings — the row key
/// of the telemetry shape table and the bucket key of profile-guided
/// specialization (DESIGN.md §16). The key is sorted by parameter name
/// regardless of the container the caller iterates, so the same bindings
/// always produce the same string:
///
///   tensors:        "x:f32[256x64]"
///   0-D scalars:    "n:i64=256"   (the *value*, not just the rank — an
///                    extent that only appears in loop bounds still has to
///                    distinguish shape buckets)
///
/// joined with single spaces. parseScalarExtents() inverts the scalar
/// entries, which is how `ftc --advise --specialize` turns a nominated
/// shape key back into the extent bindings to specialize at.
///
/// Ragged (nnz-sized) programs get a *bucketed* variant: sizes the ragged
/// analysis (analysis/ragged.h) marks data-dependent are rounded up to the
/// next power of two and spelled with `~` instead of an exact size
/// (`nnz:i64~8192`, `val:f32[~8192]`), so sparse traffic whose nnz churns
/// request-to-request still lands in a handful of stable telemetry rows and
/// specialization buckets (DESIGN.md §17).
///
//===----------------------------------------------------------------------===//

#ifndef FT_SERVE_SHAPE_KEY_H
#define FT_SERVE_SHAPE_KEY_H

#include <cstdint>
#include <map>
#include <string>

#include "analysis/ragged.h"
#include "interp/buffer.h"
#include "support/error.h"

namespace ft::serve {

/// The canonical sorted-by-name signature of \p Args. Null bindings are
/// skipped (their absence is validateArgs' error to report).
std::string shapeKeyOf(const std::map<std::string, Buffer *> &Args);

/// The ragged-aware signature: like shapeKeyOf, but every size \p RI marks
/// ragged — ragged scalar extents (`nnz`) and ragged tensor dimensions
/// (`val`'s leading dim) — is rounded up to the next power of two and
/// prefixed with `~`. With an empty \p RI this is exactly shapeKeyOf.
std::string bucketedShapeKeyOf(const std::map<std::string, Buffer *> &Args,
                               const RaggedInfo &RI);

/// Extracts the `name:iNN=value` scalar entries of a shape key produced by
/// shapeKeyOf. Tensor entries (`[...]`) and bucketed entries (`~`) are
/// skipped — a bucket names a range, not a bindable value. A scalar entry
/// whose dtype is not an integer type is a typed error (a float cannot bind
/// an extent parameter), as is an unparsable value after `=`.
Result<std::map<std::string, int64_t>>
parseScalarExtents(const std::string &Key);

} // namespace ft::serve

#endif // FT_SERVE_SHAPE_KEY_H
