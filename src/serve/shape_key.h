//===- serve/shape_key.h - Canonical argument-shape signature ----*- C++ -*-===//
///
/// \file
/// The canonical signature of one request's argument bindings — the row key
/// of the telemetry shape table and the bucket key of profile-guided
/// specialization (DESIGN.md §16). The key is sorted by parameter name
/// regardless of the container the caller iterates, so the same bindings
/// always produce the same string:
///
///   tensors:        "x:f32[256x64]"
///   0-D scalars:    "n:i64=256"   (the *value*, not just the rank — an
///                    extent that only appears in loop bounds still has to
///                    distinguish shape buckets)
///
/// joined with single spaces. parseScalarExtents() inverts the scalar
/// entries, which is how `ftc --advise --specialize` turns a nominated
/// shape key back into the extent bindings to specialize at.
///
//===----------------------------------------------------------------------===//

#ifndef FT_SERVE_SHAPE_KEY_H
#define FT_SERVE_SHAPE_KEY_H

#include <cstdint>
#include <map>
#include <string>

#include "interp/buffer.h"

namespace ft::serve {

/// The canonical sorted-by-name signature of \p Args. Null bindings are
/// skipped (their absence is validateArgs' error to report).
std::string shapeKeyOf(const std::map<std::string, Buffer *> &Args);

/// Extracts the `name:iNN=value` scalar entries of a shape key produced by
/// shapeKeyOf. Malformed segments are skipped.
std::map<std::string, int64_t> parseScalarExtents(const std::string &Key);

} // namespace ft::serve

#endif // FT_SERVE_SHAPE_KEY_H
