//===- serve/flight_recorder.cpp ------------------------------------------===//

#include "serve/flight_recorder.h"

#include <cstdlib>
#include <deque>
#include <iterator>
#include <mutex>

namespace ft::serve {

namespace {
constexpr size_t kMaxErrorBytes = 160;

size_t capFromEnv() {
  if (const char *E = std::getenv("FT_FLIGHT_CAP")) {
    char *End = nullptr;
    long V = std::strtol(E, &End, 10);
    if (End != E && V > 0)
      return size_t(V);
  }
  return 512;
}
} // namespace

const char *nameOf(Outcome O) {
  switch (O) {
  case Outcome::Ok:
    return "ok";
  case Outcome::InvalidArgs:
    return "invalid_args";
  case Outcome::RunError:
    return "run_error";
  case Outcome::RejectedFull:
    return "rejected_full";
  case Outcome::RejectedShutdown:
    return "rejected_shutdown";
  }
  return "unknown";
}

struct FlightRecorder::Impl {
  mutable std::mutex Mu;
  std::deque<FlightEvent> Ring;
  size_t Cap;
  uint64_t NextSeq = 0;
  FlightSummary Sum;
};

FlightRecorder::FlightRecorder(size_t Cap) : I(std::make_unique<Impl>()) {
  I->Cap = Cap == 0 ? 1 : Cap;
}

FlightRecorder::~FlightRecorder() = default;

void FlightRecorder::record(FlightEvent E) {
  if (E.Error.size() > kMaxErrorBytes) {
    E.Error.resize(kMaxErrorBytes - 3);
    E.Error += "...";
  }
  std::lock_guard<std::mutex> L(I->Mu);
  E.Seq = I->NextSeq++;
  ++I->Sum.Recorded;
  switch (E.Out) {
  case Outcome::Ok:
    ++I->Sum.Ok;
    break;
  case Outcome::InvalidArgs:
    ++I->Sum.InvalidArgs;
    break;
  case Outcome::RunError:
    ++I->Sum.RunErrors;
    break;
  case Outcome::RejectedFull:
    ++I->Sum.RejectedFull;
    break;
  case Outcome::RejectedShutdown:
    ++I->Sum.RejectedShutdown;
    break;
  }
  if (I->Ring.size() >= I->Cap)
    I->Ring.pop_front();
  I->Ring.push_back(std::move(E));
}

std::vector<FlightEvent> FlightRecorder::drain() {
  std::lock_guard<std::mutex> L(I->Mu);
  std::vector<FlightEvent> Out(std::make_move_iterator(I->Ring.begin()),
                               std::make_move_iterator(I->Ring.end()));
  I->Ring.clear();
  return Out;
}

std::vector<FlightEvent> FlightRecorder::peek(size_t Max) const {
  std::lock_guard<std::mutex> L(I->Mu);
  size_t N = I->Ring.size();
  size_t Take = (Max == 0 || Max > N) ? N : Max;
  std::vector<FlightEvent> Out;
  Out.reserve(Take);
  // Newest Take events, still emitted oldest-first.
  for (size_t J = N - Take; J < N; ++J)
    Out.push_back(I->Ring[J]);
  return Out;
}

FlightSummary FlightRecorder::summary() const {
  std::lock_guard<std::mutex> L(I->Mu);
  return I->Sum;
}

size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> L(I->Mu);
  return I->Cap;
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> L(I->Mu);
  return I->Ring.size();
}

void FlightRecorder::setCapacity(size_t Cap) {
  std::lock_guard<std::mutex> L(I->Mu);
  I->Cap = Cap == 0 ? 1 : Cap;
  while (I->Ring.size() > I->Cap)
    I->Ring.pop_front();
}

void FlightRecorder::reset() {
  std::lock_guard<std::mutex> L(I->Mu);
  I->Ring.clear();
  I->Sum = FlightSummary{};
  I->NextSeq = 0;
}

FlightRecorder &flightRecorder() {
  static FlightRecorder *R = new FlightRecorder(capFromEnv());
  return *R;
}

} // namespace ft::serve
