//===- serve/flight_recorder.h - Per-request flight recorder -----*- C++ -*-===//
///
/// \file
/// A bounded ring buffer of structured request events — the serving
/// runtime's black box. Every completed (or rejected) request leaves one
/// FlightEvent behind: request id + tenant, fingerprint, tier served,
/// queue-wait/run/total nanoseconds, micro-batch id and size, the deadline
/// verdict when the request carried one, and a typed outcome (ok, invalid
/// arguments, runtime error, rejected-full, rejected-shutdown) with the
/// error message when there was one. The ring keeps the last N events
/// (FT_FLIGHT_CAP, default 512), so the recent history of a node is always
/// reconstructible: drain() hands the events to a caller (ordered, oldest
/// first, removing them), peek() copies without consuming (the telemetry
/// snapshot exporter), and the exporter dumps the ring on process exit.
///
/// Cumulative per-outcome totals are kept next to the ring so a summary
/// survives however many times the ring wrapped.
///
/// Recording takes one short mutex hold; the recorder is only fed when
/// serve::telemetry::enabled() — the disabled request path never touches
/// it (see serve/telemetry.h for the gate).
///
//===----------------------------------------------------------------------===//

#ifndef FT_SERVE_FLIGHT_RECORDER_H
#define FT_SERVE_FLIGHT_RECORDER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ft::serve {

/// How one request left the system.
enum class Outcome : uint8_t {
  Ok,               ///< Served successfully.
  InvalidArgs,      ///< Rejected by validateArgs (bad binding/shape/type).
  RunError,         ///< Backend executed and returned an error.
  RejectedFull,     ///< Bounced at submit: queue full (reject policy).
  RejectedShutdown, ///< Bounced at submit: executor shut down.
};

/// Returns "ok" / "invalid_args" / "run_error" / "rejected_full" /
/// "rejected_shutdown".
const char *nameOf(Outcome O);

/// One recorded request. Tier is kept as the tier name ("jit"/"interp";
/// "-" for requests that never executed) so the event is self-describing
/// in dumps.
struct FlightEvent {
  uint64_t Seq = 0;         ///< Monotonic per-process event number.
  double TsUs = 0;          ///< Completion time, trace-epoch microseconds.
  uint64_t Fingerprint = 0; ///< Whole-program cache key (0 when unknown).
  uint64_t ReqId = 0;       ///< RequestContext::Id (0 when unknown).
  std::string Tenant;       ///< SLO bucket label; empty = unattributed.
  const char *Tier = "-";
  Outcome Out = Outcome::Ok;
  uint64_t QueueNs = 0; ///< submit -> execution start.
  uint64_t RunNs = 0;   ///< execution start -> completion.
  uint64_t TotalNs = 0; ///< submit -> completion.
  uint32_t BatchSize = 1;
  uint64_t BatchId = 0;
  uint64_t DeadlineNs = 0;     ///< The request's budget; 0 = none.
  bool DeadlineMissed = false; ///< TotalNs > DeadlineNs (deadline set).
  std::string Error; ///< Truncated message; empty when Out == Ok.
};

/// Cumulative totals since process start (not reset by drain()).
struct FlightSummary {
  uint64_t Recorded = 0;
  uint64_t Ok = 0;
  uint64_t InvalidArgs = 0;
  uint64_t RunErrors = 0;
  uint64_t RejectedFull = 0;
  uint64_t RejectedShutdown = 0;
};

/// The ring buffer. One process-wide instance, obtained via
/// flightRecorder(); separate instances exist only in tests.
class FlightRecorder {
public:
  explicit FlightRecorder(size_t Cap = 512);

  /// Appends \p E (stamping Seq), evicting the oldest event when full.
  /// Error messages are truncated to 160 bytes.
  void record(FlightEvent E);

  /// Removes and returns all buffered events, oldest first. The summary
  /// is unaffected.
  std::vector<FlightEvent> drain();

  /// Copies the buffered events, oldest first, without consuming them;
  /// at most \p Max (0 = all).
  std::vector<FlightEvent> peek(size_t Max = 0) const;

  FlightSummary summary() const;

  size_t capacity() const;
  size_t size() const;

  /// Resizes the ring (keeps the newest events that fit). Also resets
  /// nothing else — capacity changes are cheap and rare (env/init, tests).
  void setCapacity(size_t Cap);

  /// Drops buffered events and zeroes the summary (tests).
  void reset();

private:
  struct Impl;
  // Leaked-on-purpose singleton pattern is handled by flightRecorder();
  // the recorder itself is a normal value type.
  std::unique_ptr<Impl> I;

public:
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder &) = delete;
  FlightRecorder &operator=(const FlightRecorder &) = delete;
};

/// The process-wide recorder (capacity from FT_FLIGHT_CAP on first use).
FlightRecorder &flightRecorder();

} // namespace ft::serve

#endif // FT_SERVE_FLIGHT_RECORDER_H
