//===- serve/request_context.h - Per-request identity & SLO ------*- C++ -*-===//
///
/// \file
/// The identity one serving request carries through the system (DESIGN.md
/// §15). A RequestContext is created at Executor::submit and propagated by
/// value through the bounded queue, tiered dispatch, micro-batching, the
/// background-compile trigger, and into Kernel::run — so every observation
/// a layer makes (span, flow arrow, flight event, shape sample, profiler
/// row) can be joined back to the request that produced it.
///
///  - Id: process-unique, never 0 for a real request (0 is the "no
///    request" sentinel throughout — e.g. a compile triggered outside
///    serving, or telemetry rows predating this header).
///  - Tenant: free-form workload label for SLO accounting. Defaults to
///    Config::DefaultTenant ("default", or FT_SLO_TENANT) so single-tenant
///    deployments get one well-named bucket without passing options.
///  - DeadlineNs: the submit→completion budget. 0 means no deadline; when
///    set, the executor stamps Response::DeadlineMissed and telemetry
///    tallies per-tenant met/missed plus a time-to-deadline histogram.
///
/// The context is plain data: copying it is two words plus one small
/// string (tenant labels are short; "default" fits in SSO, so the disabled
/// telemetry path never allocates for it).
///
//===----------------------------------------------------------------------===//

#ifndef FT_SERVE_REQUEST_CONTEXT_H
#define FT_SERVE_REQUEST_CONTEXT_H

#include <atomic>
#include <cstdint>
#include <string>

namespace ft::serve {

/// The per-request identity. See the file comment.
struct RequestContext {
  uint64_t Id = 0;        ///< Process-unique; 0 = no request.
  std::string Tenant;     ///< SLO bucket label; empty = unattributed.
  uint64_t DeadlineNs = 0; ///< submit→completion budget; 0 = none.
};

namespace detail {
inline std::atomic<uint64_t> NextRequestIdBlock{0};
/// Ids a thread claims per fetch_add. Amortizes the contended atomic to
/// 1/256 of submits; the common-case cost is a thread-local increment,
/// which keeps id allocation inside the disabled-path nanosecond budget
/// (bench/telemetry_overhead_bench.cpp).
inline constexpr uint64_t kRequestIdBlock = 256;
} // namespace detail

/// The next process-unique request id; never returns 0, so 0 stays the
/// "no request" sentinel. Ids are allocated to threads in blocks: unique
/// across the process and sequential within a thread, but not globally
/// ordered — correlation keys, not a submission order.
inline uint64_t nextRequestId() {
  thread_local uint64_t Cur = 0, End = 0;
  if (Cur == End) {
    Cur = detail::NextRequestIdBlock.fetch_add(detail::kRequestIdBlock,
                                               std::memory_order_relaxed) +
          1;
    End = Cur + detail::kRequestIdBlock;
  }
  return Cur++;
}

} // namespace ft::serve

#endif // FT_SERVE_REQUEST_CONTEXT_H
