//===- pass/const_fold.h - Constant folding ----------------------*- C++ -*-===//
///
/// \file
/// Folds constant subexpressions and algebraic identities (x+0, x*1, x*0
/// for integers, true&&x, ...). Together with the bound-driven simplifier
/// this implements the IR half of the paper's partial evaluation (§4.1) and
/// the "simplification on mathematical expressions" of §4.3.
///
//===----------------------------------------------------------------------===//

#ifndef FT_PASS_CONST_FOLD_H
#define FT_PASS_CONST_FOLD_H

#include "ir/mutator.h"

namespace ft {

/// Folds constants in an expression.
Expr constFold(const Expr &E);

/// Folds constants everywhere in a statement tree.
Stmt constFold(const Stmt &S);

} // namespace ft

#endif // FT_PASS_CONST_FOLD_H
