//===- pass/specialize.h - Extent specialization -----------------*- C++ -*-===//
///
/// \file
/// Constant-folds a shape-generic function at one shape bucket (DESIGN.md
/// §16): every 0-D load of a bound extent parameter — in tensor shapes,
/// loop bounds, gemm extents, and ordinary arithmetic — is replaced by the
/// bucket's integer constant. The parameter list and its VarDefs are left
/// untouched, so the specialized function keeps the generic ABI: the
/// serving runtime hot-swaps it behind the same kernel entry and binds the
/// identical argument set (the now-redundant extent scalars included).
///
/// The resulting program is fully static, which re-arms everything the
/// symbolic form had to forgo: exact dependence polyhedra, vector-legality
/// proofs, stack placement of small caches, and compile-time-known trip
/// counts for the host compiler. Callers typically follow with simplify()
/// and the autoscheduler before compiling at full optimization.
///
//===----------------------------------------------------------------------===//

#ifndef FT_PASS_SPECIALIZE_H
#define FT_PASS_SPECIALIZE_H

#include <cstdint>
#include <map>
#include <string>

#include "ir/func.h"

namespace ft {

/// Returns \p F with every 0-D load of a name in \p Extents replaced by
/// its constant. Params and VarDefs are preserved (same ABI); statement
/// IDs are preserved. Binding a name that is not a 0-D integer parameter
/// of \p F is the caller's bug and asserts.
Func specializeFunc(const Func &F,
                    const std::map<std::string, int64_t> &Extents);

} // namespace ft

#endif // FT_PASS_SPECIALIZE_H
