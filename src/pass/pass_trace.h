//===- pass/pass_trace.h - Per-pass span instrumentation ---------*- C++ -*-===//
///
/// \file
/// The one-liner every pass entry point uses to participate in the
/// observability layer: wraps the pass body in a "pass/<name>" span
/// annotated with the IR node count before and after (the per-pass IR
/// delta). Node counting only happens when tracing is enabled, so
/// uninstrumented builds and disabled-mode runs pay a single relaxed
/// atomic load.
///
//===----------------------------------------------------------------------===//

#ifndef FT_PASS_PASS_TRACE_H
#define FT_PASS_PASS_TRACE_H

#include "ir/visitor.h"
#include "support/trace.h"

namespace ft::pass_detail {

/// Runs \p Body (the pass implementation) under a "pass/<name>" span with
/// ir_nodes_before / ir_nodes_after annotations.
template <typename Fn>
Stmt tracedPass(const char *SpanName, const Stmt &In, Fn &&Body) {
  trace::Span Sp(SpanName);
  if (Sp.active())
    Sp.annotate("ir_nodes_before", static_cast<uint64_t>(countNodes(In)));
  Stmt Out = Body();
  if (Sp.active())
    Sp.annotate("ir_nodes_after", static_cast<uint64_t>(countNodes(Out)));
  return Out;
}

} // namespace ft::pass_detail

#endif // FT_PASS_PASS_TRACE_H
