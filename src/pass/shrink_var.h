//===- pass/shrink_var.h - Tighten tensor allocations ------------*- C++ -*-===//
///
/// \file
/// Recomputes the bounding box actually accessed for each Cache tensor
/// (the Fig.-14 bound analysis, applied as a standalone pass) and shrinks
/// the allocation when it is provably smaller than the declared shape,
/// remapping all accesses. Useful after transformations that narrow a
/// tensor's use, and before auto_mem_type decides what fits close to the
/// processor.
///
//===----------------------------------------------------------------------===//

#ifndef FT_PASS_SHRINK_VAR_H
#define FT_PASS_SHRINK_VAR_H

#include "ir/mutator.h"

namespace ft {

/// Shrinks all shrinkable Cache tensors. Conservative: tensors with
/// non-affine accesses or unprovable bounds are left unchanged.
Stmt shrinkVars(const Stmt &S);

} // namespace ft

#endif // FT_PASS_SHRINK_VAR_H
