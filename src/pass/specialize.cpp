//===- pass/specialize.cpp ------------------------------------------------===//

#include "pass/specialize.h"

#include "ir/mutator.h"

using namespace ft;

namespace {

class Specializer : public Mutator {
public:
  explicit Specializer(const std::map<std::string, int64_t> &Extents)
      : Extents(Extents) {}

protected:
  Expr visit(const LoadNode *E) override {
    if (E->Indices.empty()) {
      auto It = Extents.find(E->Var);
      if (It != Extents.end()) {
        Expr C = makeIntConst(It->second);
        if (E->Dtype != DataType::Int64)
          C = makeCast(E->Dtype, C);
        return C;
      }
    }
    return Mutator::visit(E);
  }

private:
  const std::map<std::string, int64_t> &Extents;
};

} // namespace

Func ft::specializeFunc(const Func &F,
                        const std::map<std::string, int64_t> &Extents) {
  for (const auto &[Name, Val] : Extents) {
    auto D = findVarDef(F.Body, Name);
    ftAssert(D && D->ATy != AccessType::Cache && D->Info.Shape.empty() &&
                 isInt(D->Info.Dtype),
             "specializeFunc: `" + Name +
                 "` is not a 0-D integer parameter of " + F.Name);
    ftAssert(Val >= 1, "specializeFunc: extent `" + Name +
                           "` bound to non-positive " + std::to_string(Val));
  }
  Func Out = F;
  Out.Body = Specializer(Extents)(F.Body);
  return Out;
}
