//===- pass/make_reduction.cpp --------------------------------------------===//

#include "pass/make_reduction.h"

#include "ir/compare.h"
#include "pass/pass_trace.h"
#include "pass/replace.h"

using namespace ft;

namespace {

bool sameAccess(const StoreNode *S, const Expr &E) {
  auto L = dyn_cast<LoadNode>(E);
  if (!L || L->Var != S->Var || L->Indices.size() != S->Indices.size())
    return false;
  for (size_t I = 0; I < L->Indices.size(); ++I)
    if (!deepEqual(L->Indices[I], S->Indices[I]))
      return false;
  return true;
}

/// Returns true if \p E contains any access to tensor \p Var.
bool readsVar(const Expr &E, const std::string &Var) {
  switch (E->kind()) {
  case NodeKind::Load: {
    auto L = cast<LoadNode>(E);
    if (L->Var == Var)
      return true;
    for (const Expr &I : L->Indices)
      if (readsVar(I, Var))
        return true;
    return false;
  }
  case NodeKind::Binary: {
    auto B = cast<BinaryNode>(E);
    return readsVar(B->LHS, Var) || readsVar(B->RHS, Var);
  }
  case NodeKind::Unary:
    return readsVar(cast<UnaryNode>(E)->Operand, Var);
  case NodeKind::IfExpr: {
    auto IE = cast<IfExprNode>(E);
    return readsVar(IE->Cond, Var) || readsVar(IE->Then, Var) ||
           readsVar(IE->Else, Var);
  }
  case NodeKind::Cast:
    return readsVar(cast<CastNode>(E)->Operand, Var);
  default:
    return false;
  }
}

class ReductionMaker : public Mutator {
protected:
  Stmt visit(const StoreNode *S) override {
    Stmt M = Mutator::visit(S);
    auto St = cast<StoreNode>(M);
    auto B = dyn_cast<BinaryNode>(St->Value);
    if (!B)
      return M;
    ReduceOpKind Op;
    switch (B->Op) {
    case BinOpKind::Add:
      Op = ReduceOpKind::Add;
      break;
    case BinOpKind::Mul:
      Op = ReduceOpKind::Mul;
      break;
    case BinOpKind::Min:
      Op = ReduceOpKind::Min;
      break;
    case BinOpKind::Max:
      Op = ReduceOpKind::Max;
      break;
    case BinOpKind::Sub:
      // a[i] = a[i] - e  ->  a[i] += -e.
      if (sameAccess(St.get(), B->LHS) && !readsVar(B->RHS, St->Var))
        return makeReduceTo(St->Var, St->Indices, ReduceOpKind::Add,
                            makeUnary(UnOpKind::Neg, B->RHS), St->Id);
      return M;
    default:
      return M;
    }
    // The target must appear as exactly one side and nowhere else.
    if (sameAccess(St.get(), B->LHS) && !readsVar(B->RHS, St->Var))
      return makeReduceTo(St->Var, St->Indices, Op, B->RHS, St->Id);
    if (sameAccess(St.get(), B->RHS) && !readsVar(B->LHS, St->Var))
      return makeReduceTo(St->Var, St->Indices, Op, B->LHS, St->Id);
    return M;
  }
};

} // namespace

Stmt ft::makeReduction(const Stmt &S) {
  return pass_detail::tracedPass("pass/make_reduction", S,
                                 [&] { return ReductionMaker()(S); });
}
