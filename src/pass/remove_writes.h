//===- pass/remove_writes.h - Dead write & dead tensor removal ---*- C++ -*-===//
///
/// \file
/// Removes Cache tensors that are never read together with all writes to
/// them, iterating to a fixed point (a removed write may make another
/// tensor dead). Part of the §4.3 cleanup ("merging or removing redundant
/// memory access").
///
//===----------------------------------------------------------------------===//

#ifndef FT_PASS_REMOVE_WRITES_H
#define FT_PASS_REMOVE_WRITES_H

#include "ir/mutator.h"

namespace ft {

/// Removes dead Cache tensors and their writes.
Stmt removeDeadWrites(const Stmt &S);

} // namespace ft

#endif // FT_PASS_REMOVE_WRITES_H
