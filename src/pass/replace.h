//===- pass/replace.h - Substitution utilities -------------------*- C++ -*-===//
///
/// \file
/// Small rebuilding utilities shared by schedules and passes: substituting
/// a loop iterator by an expression, renaming tensor accesses, and
/// remapping access indices.
///
//===----------------------------------------------------------------------===//

#ifndef FT_PASS_REPLACE_H
#define FT_PASS_REPLACE_H

#include <functional>

#include "ir/mutator.h"

namespace ft {

/// Replaces every Var named \p Name with \p Repl.
Stmt substituteIter(const Stmt &S, const std::string &Name, const Expr &Repl);
Expr substituteIter(const Expr &E, const std::string &Name, const Expr &Repl);

/// Renames every access (Load/Store/ReduceTo/GemmCall operand) of tensor
/// \p From to \p To.
Stmt renameTensor(const Stmt &S, const std::string &From,
                  const std::string &To);

/// Rewrites the index lists of all accesses to tensor \p Var through
/// \p Remap (given the old indices, returns the new ones). Used by the
/// memory-layout schedules (var_split / var_reorder / var_merge) and by
/// cache.
using IndexRemapFn =
    std::function<std::vector<Expr>(const std::vector<Expr> &)>;
Stmt remapIndices(const Stmt &S, const std::string &Var,
                  const IndexRemapFn &Remap);

/// Returns true if tensor \p Var is accessed (loaded, stored, reduced, or
/// used by a GemmCall) anywhere in \p S.
bool isTensorUsed(const Stmt &S, const std::string &Var);

/// Returns true if tensor \p Var is read (Load or GemmCall input) in \p S.
bool isTensorRead(const Stmt &S, const std::string &Var);

/// Returns true if the iterator \p Name occurs as a Var in \p S.
bool isIterUsed(const Stmt &S, const std::string &Name);

/// Deep-copies \p S giving every statement a fresh ID (used when a
/// transformation duplicates a subtree, e.g. unroll or separate_tail, so
/// statement IDs stay unique within the program).
Stmt copyWithFreshIds(const Stmt &S);

/// Returns \p Root with the statement whose ID is \p Id replaced by
/// \p Repl (which may be an empty StmtSeq to delete it). Asserts the ID
/// exists.
Stmt replaceStmt(const Stmt &Root, int64_t Id, const Stmt &Repl);

} // namespace ft

#endif // FT_PASS_REPLACE_H
