//===- pass/flatten.cpp ---------------------------------------------------===//

#include "pass/flatten.h"

#include "pass/pass_trace.h"

using namespace ft;

bool ft::isEmptyStmt(const Stmt &S) {
  auto Seq = dyn_cast<StmtSeqNode>(S);
  return Seq != nullptr && Seq->Stmts.empty();
}

namespace {

class Flattener : public Mutator {
protected:
  Stmt visit(const StmtSeqNode *S) override {
    std::vector<Stmt> Out;
    for (const Stmt &Sub : S->Stmts) {
      Stmt M = (*this)(Sub);
      if (isEmptyStmt(M))
        continue;
      if (auto Inner = dyn_cast<StmtSeqNode>(M)) {
        // Keep labeled sequences intact so they stay addressable.
        if (Inner->Label.empty()) {
          Out.insert(Out.end(), Inner->Stmts.begin(), Inner->Stmts.end());
          continue;
        }
      }
      Out.push_back(std::move(M));
    }
    if (Out.size() == 1 && S->Label.empty())
      return Out[0];
    return makeStmtSeq(std::move(Out), S->Id);
  }

  Stmt visit(const IfNode *S) override {
    Stmt M = Mutator::visit(S);
    auto I = cast<IfNode>(M);
    if (I->Else && isEmptyStmt(I->Else))
      return isEmptyStmt(I->Then)
                 ? makeStmtSeq({}, I->Id)
                 : makeIf(I->Cond, I->Then, nullptr, I->Id);
    if (isEmptyStmt(I->Then) && !I->Else)
      return makeStmtSeq({}, I->Id);
    if (isEmptyStmt(I->Then) && I->Else)
      return makeIf(makeLNot(I->Cond), I->Else, nullptr, I->Id);
    return M;
  }

  Stmt visit(const ForNode *S) override {
    Stmt M = Mutator::visit(S);
    auto F = cast<ForNode>(M);
    if (isEmptyStmt(F->Body))
      return makeStmtSeq({}, F->Id);
    return M;
  }

  Stmt visit(const VarDefNode *S) override {
    Stmt M = Mutator::visit(S);
    auto D = cast<VarDefNode>(M);
    if (isEmptyStmt(D->Body) && D->ATy == AccessType::Cache)
      return makeStmtSeq({}, D->Id);
    return M;
  }
};

} // namespace

Stmt ft::flattenStmtSeq(const Stmt &S) {
  return pass_detail::tracedPass("pass/flatten_stmt_seq", S,
                                 [&] { return Flattener()(S); });
}
