//===- pass/simplify.cpp --------------------------------------------------===//

#include "pass/simplify.h"

#include "analysis/bounds.h"
#include "ir/compare.h"
#include "ir/printer.h"
#include "pass/const_fold.h"
#include "pass/flatten.h"
#include "pass/pass_trace.h"
#include "pass/replace.h"

using namespace ft;

namespace {

class Simplifier : public Mutator {
public:
  explicit Simplifier(const Stmt &Root)
      : Defs(), PC(makeIsParam(Root)) {}

private:
  IsParamFn makeIsParam(const Stmt &Root) {
    collectDefs(Root);
    // Copy the map into the closure: the callback outlives local state.
    auto DefsCopy = Defs;
    return [DefsCopy](const std::string &Name) {
      auto It = DefsCopy.find(Name);
      return It != DefsCopy.end() && It->second->ATy == AccessType::Input &&
             It->second->Info.Shape.empty() && isInt(It->second->Info.Dtype);
    };
  }

  void collectDefs(const Stmt &S) {
    switch (S->kind()) {
    case NodeKind::StmtSeq:
      for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
        collectDefs(Sub);
      return;
    case NodeKind::VarDef: {
      auto D = cast<VarDefNode>(S);
      Defs[D->Name] = D;
      collectDefs(D->Body);
      return;
    }
    case NodeKind::For:
      collectDefs(cast<ForNode>(S)->Body);
      return;
    case NodeKind::If: {
      auto I = cast<IfNode>(S);
      collectDefs(I->Then);
      if (I->Else)
        collectDefs(I->Else);
      return;
    }
    default:
      return;
    }
  }

protected:
  Expr visit(const BinaryNode *E) override {
    Expr M = Mutator::visit(E);
    auto B = dyn_cast<BinaryNode>(M);
    if (!B)
      return M;
    if (isCompareOp(B->Op)) {
      if (PC.provablyTrue(M))
        return makeBoolConst(true);
      if (PC.provablyFalse(M))
        return makeBoolConst(false);
      return M;
    }
    if (B->Op == BinOpKind::Min || B->Op == BinOpKind::Max) {
      Expr LLeR = makeLE(B->LHS, B->RHS);
      if (PC.provablyTrue(LLeR))
        return B->Op == BinOpKind::Min ? B->LHS : B->RHS;
      if (PC.provablyFalse(LLeR))
        return B->Op == BinOpKind::Min ? B->RHS : B->LHS;
    }
    return M;
  }

  Expr visit(const IfExprNode *E) override {
    Expr Cond = (*this)(E->Cond);
    if (PC.provablyTrue(Cond))
      return (*this)(E->Then);
    if (PC.provablyFalse(Cond))
      return (*this)(E->Else);
    return makeIfExpr(Cond, (*this)(E->Then), (*this)(E->Else));
  }

  Stmt visit(const ForNode *S) override {
    Expr Begin = (*this)(S->Begin);
    Expr End = (*this)(S->End);
    Expr NonEmpty = makeLT(Begin, End);
    if (PC.provablyFalse(NonEmpty))
      return makeStmtSeq({}, S->Id);
    // Single-iteration loops inline their body with Iter := Begin, which
    // both removes loop overhead and unlocks further proofs.
    Expr SingleIter = makeEQ(End, makeAdd(Begin, makeIntConst(1)));
    if (PC.provablyTrue(SingleIter) && S->Property == ForProperty{}) {
      Stmt Body = substituteIter(S->Body, S->Iter, Begin);
      return (*this)(Body);
    }
    PC.pushLoop(S->Iter, Begin, End);
    Stmt Body = (*this)(S->Body);
    PC.popLoop();
    return makeFor(S->Iter, Begin, End, S->Property, Body, S->Id);
  }

  Stmt visit(const IfNode *S) override {
    Expr Cond = (*this)(S->Cond);
    if (PC.provablyTrue(Cond)) {
      PC.pushCond(Cond, /*Negate=*/false);
      Stmt Then = (*this)(S->Then);
      PC.popCond();
      return Then;
    }
    if (PC.provablyFalse(Cond)) {
      if (!S->Else)
        return makeStmtSeq({}, S->Id);
      PC.pushCond(Cond, /*Negate=*/true);
      Stmt Else = (*this)(S->Else);
      PC.popCond();
      return Else;
    }
    PC.pushCond(Cond, /*Negate=*/false);
    Stmt Then = (*this)(S->Then);
    PC.popCond();
    Stmt Else;
    if (S->Else) {
      PC.pushCond(Cond, /*Negate=*/true);
      Else = (*this)(S->Else);
      PC.popCond();
    }
    return makeIf(Cond, Then, Else, S->Id);
  }

private:
  std::map<std::string, Ref<VarDefNode>> Defs;
  ProofContext PC;
};

} // namespace

Stmt ft::simplify(const Stmt &S) {
  return pass_detail::tracedPass("pass/simplify", S, [&] {
    Stmt Cur = S;
    for (int Round = 0; Round < 4; ++Round) {
      Stmt Next = flattenStmtSeq(constFold(Simplifier(Cur)(constFold(Cur))));
      if (deepEqual(Next, Cur))
        return Next;
      Cur = Next;
    }
    return Cur;
  });
}

Func ft::simplify(Func F) {
  F.Body = simplify(F.Body);
  return F;
}
