//===- pass/make_reduction.h - Recognize reductions --------------*- C++ -*-===//
///
/// \file
/// Rewrites `a[i] = a[i] op e` stores into ReduceTo nodes (paper §4.2.1:
/// "FreeTensor introduces a ReduceTo node to process any a=a+b like
/// statements"), unlocking the commutativity exemptions in dependence
/// analysis and parallel reductions / atomics in codegen.
///
//===----------------------------------------------------------------------===//

#ifndef FT_PASS_MAKE_REDUCTION_H
#define FT_PASS_MAKE_REDUCTION_H

#include "ir/mutator.h"

namespace ft {

/// Converts eligible Stores into ReduceTo statements.
Stmt makeReduction(const Stmt &S);

} // namespace ft

#endif // FT_PASS_MAKE_REDUCTION_H
