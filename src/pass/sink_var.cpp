//===- pass/sink_var.cpp --------------------------------------------------===//

#include "pass/sink_var.h"

#include <memory>

#include "analysis/deps.h"
#include "ir/compare.h"
#include "pass/pass_trace.h"
#include "pass/replace.h"

using namespace ft;

namespace {

/// Returns true if every read of \p Var inside \p Body is preceded, in the
/// same iteration, by an unconditional Store to the identical location —
/// i.e. no value of \p Var flows into an iteration from outside. This is
/// the kill test that lets a VarDef sink through a loop even though
/// memory-based dependences (without kill information) look loop-carried.
bool readsDominatedByStores(const Stmt &Body, const std::string &Var) {
  AccessCollection AC = collectAccesses(Body);
  for (const AccessPoint &R : AC.Points) {
    if (R.Var != Var || R.Kind == AccessKind::Write)
      continue;
    bool Dominated = false;
    for (const AccessPoint &W : AC.Points) {
      if (W.Var != Var || W.Kind != AccessKind::Write || !W.Conds.empty())
        continue;
      if (W.Seq >= R.Seq || W.Indices.size() != R.Indices.size())
        continue;
      bool Same = true;
      for (size_t D = 0; D < W.Indices.size(); ++D)
        Same &= deepEqual(W.Indices[D], R.Indices[D]);
      if (Same) {
        Dominated = true;
        break;
      }
    }
    if (!Dominated)
      return false;
  }
  return true;
}

/// One sinking round over the whole tree. Needs the root for dependence
/// queries when sinking through loops.
class VarSinker : public Mutator {
public:
  explicit VarSinker(const Stmt &Root) : Root(Root) {}

  bool Changed = false;

protected:
  Stmt visit(const VarDefNode *S) override {
    if (S->ATy != AccessType::Cache)
      return Mutator::visit(S);

    // Case 1: body is a StmtSeq — wrap only the contiguous use range.
    if (auto Seq = dyn_cast<StmtSeqNode>(S->Body)) {
      int First = -1, Last = -1;
      for (size_t I = 0; I < Seq->Stmts.size(); ++I) {
        if (isTensorUsed(Seq->Stmts[I], S->Name)) {
          if (First < 0)
            First = static_cast<int>(I);
          Last = static_cast<int>(I);
        }
      }
      if (First < 0) // Dead tensor: let removeDeadWrites handle it.
        return Mutator::visit(S);
      bool Narrower =
          First > 0 || Last + 1 < static_cast<int>(Seq->Stmts.size());
      if (Narrower) {
        Changed = true;
        std::vector<Stmt> Out;
        for (int I = 0; I < First; ++I)
          Out.push_back((*this)(Seq->Stmts[I]));
        std::vector<Stmt> Wrapped(Seq->Stmts.begin() + First,
                                  Seq->Stmts.begin() + Last + 1);
        Stmt Inner = Wrapped.size() == 1 ? Wrapped[0]
                                         : makeStmtSeq(std::move(Wrapped));
        Stmt NewDef = makeVarDef(S->Name, S->Info, S->ATy, S->MTy,
                                 (*this)(Inner), S->Id);
        cast<VarDefNode>(NewDef)->NoGrad = S->NoGrad;
        Out.push_back(NewDef);
        for (size_t I = Last + 1; I < Seq->Stmts.size(); ++I)
          Out.push_back((*this)(Seq->Stmts[I]));
        return makeStmtSeq(std::move(Out), Seq->Id);
      }
    }

    // Case 2: body is a For — sink through when no dependence on this
    // tensor is carried by the loop and neither bounds nor shape use the
    // iterator (shape cannot: it is defined outside).
    if (auto For = dyn_cast<ForNode>(S->Body)) {
      bool ShapeUsesVar = false;
      for (const Expr &D : S->Info.Shape)
        if (isIterUsed(makeStore("_", {}, D), For->Iter))
          ShapeUsesVar = true;
      if (!ShapeUsesVar) {
        bool Carried = false;
        for (const FoundDep &D : deps().carriedBy(For->Id))
          if (D.Earlier->Var == S->Name)
            Carried = true;
        if (Carried && readsDominatedByStores(For->Body, S->Name))
          Carried = false; // Each iteration fully overwrites before reading.
        if (!Carried) {
          Changed = true;
          Stmt NewDef = makeVarDef(S->Name, S->Info, S->ATy, S->MTy,
                                   (*this)(For->Body), S->Id);
          cast<VarDefNode>(NewDef)->NoGrad = S->NoGrad;
          return makeFor(For->Iter, For->Begin, For->End, For->Property,
                         NewDef, For->Id);
        }
      }
    }
    return Mutator::visit(S);
  }

private:
  /// Built on first use: most rounds (and most programs) have no Cache
  /// VarDef directly above a loop, so the access collection is often never
  /// needed at all.
  const DepAnalyzer &deps() {
    if (!DA)
      DA = std::make_unique<DepAnalyzer>(Root);
    return *DA;
  }

  const Stmt &Root;
  std::unique_ptr<DepAnalyzer> DA;
};

} // namespace

Stmt ft::sinkVars(const Stmt &S) {
  return pass_detail::tracedPass("pass/sink_var", S, [&] {
    Stmt Cur = S;
    for (int Round = 0; Round < 16; ++Round) {
      VarSinker Sinker(Cur);
      Stmt Next = Sinker(Cur);
      Cur = Next;
      if (!Sinker.Changed)
        break;
    }
    return Cur;
  });
}
