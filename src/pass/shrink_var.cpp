//===- pass/shrink_var.cpp ------------------------------------------------===//

#include "pass/shrink_var.h"

#include "analysis/access.h"
#include "analysis/bounds.h"
#include "ir/compare.h"
#include "pass/const_fold.h"
#include "pass/pass_trace.h"
#include "pass/replace.h"

using namespace ft;

namespace {

/// Rebuilds the tree, shrinking Cache VarDefs where provably profitable.
/// Maintains a ProofContext of the enclosing loop ranges so bounds that
/// reference outer iterators can still be compared against shapes.
class Shrinker : public Mutator {
public:
  explicit Shrinker(IsParamFn IsParam)
      : IsParam(IsParam), PC(std::move(IsParam)) {}

  bool Changed = false;

protected:
  Stmt visit(const ForNode *S) override {
    PC.pushLoop(S->Iter, S->Begin, S->End);
    Stmt Out = Mutator::visit(S);
    PC.popLoop();
    return Out;
  }

  Stmt visit(const IfNode *S) override {
    PC.pushCond(S->Cond, /*Negate=*/false);
    Stmt Then = (*this)(S->Then);
    PC.popCond();
    Stmt Else;
    if (S->Else) {
      PC.pushCond(S->Cond, /*Negate=*/true);
      Else = (*this)(S->Else);
      PC.popCond();
    }
    return makeIf(S->Cond, Then, Else, S->Id);
  }

  Stmt visit(const VarDefNode *S) override {
    Stmt Rebuilt = Mutator::visit(S);
    auto D = cast<VarDefNode>(Rebuilt);
    if (D->ATy != AccessType::Cache || D->Info.Shape.empty())
      return Rebuilt;
    auto Result = tryShrink(D);
    if (!Result)
      return Rebuilt;
    Changed = true;
    return *Result;
  }

private:
  /// Attempts the Fig.-14 bounding-box analysis on \p D.
  std::optional<Stmt> tryShrink(const Ref<VarDefNode> &D) {
    AccessCollection AC = collectAccesses(D->Body);
    size_t NDim = D->Info.Shape.size();
    std::vector<std::vector<Expr>> Lows(NDim), Highs(NDim);
    for (const AccessPoint &P : AC.Points) {
      if (P.Var != D->Name)
        continue;
      if (P.WholeTensor || P.Indices.size() != NDim)
        return std::nullopt;
      for (size_t Dim = 0; Dim < NDim; ++Dim) {
        auto Lin = toLinear(P.Indices[Dim], IsParam);
        if (!Lin)
          return std::nullopt;
        std::vector<IterRange> Inner;
        for (const LoopAxis &L : P.Loops)
          Inner.push_back({L.Iter, L.Begin, L.End});
        auto BP = eliminateIters(*Lin, Inner, IsParam);
        if (!BP)
          return std::nullopt;
        Lows[Dim].push_back(linearToExpr(BP->Lower));
        Highs[Dim].push_back(linearToExpr(BP->Upper));
      }
    }
    if (Lows[0].empty())
      return std::nullopt; // Unused; removeDeadWrites handles it.

    std::vector<Expr> Lower, Extent;
    bool AnyTighter = false;
    for (size_t Dim = 0; Dim < NDim; ++Dim) {
      Expr Lo = Lows[Dim][0], Hi = Highs[Dim][0];
      for (size_t I = 1; I < Lows[Dim].size(); ++I) {
        Lo = makeMin(Lo, Lows[Dim][I]);
        Hi = makeMax(Hi, Highs[Dim][I]);
      }
      Lo = constFold(Lo);
      Expr Ext = constFold(makeAdd(makeSub(Hi, Lo), makeIntConst(1)));
      if (auto LinE = toLinear(Ext, IsParam))
        Ext = linearToExpr(*LinE);
      // Safety: the box must lie inside the original allocation.
      if (!PC.provablyTrue(makeGE(Lo, makeIntConst(0))) ||
          !PC.provablyTrue(makeLE(makeAdd(Lo, Ext), D->Info.Shape[Dim])))
        return std::nullopt;
      if (PC.provablyTrue(makeLT(Ext, D->Info.Shape[Dim])))
        AnyTighter = true;
      Lower.push_back(Lo);
      Extent.push_back(Ext);
    }
    if (!AnyTighter)
      return std::nullopt;

    Stmt Body = remapIndices(D->Body, D->Name,
                             [&](const std::vector<Expr> &Idx) {
                               std::vector<Expr> Out;
                               for (size_t Dim = 0; Dim < NDim; ++Dim)
                                 Out.push_back(constFold(
                                     makeSub(Idx[Dim], Lower[Dim])));
                               return Out;
                             });
    Stmt Out = makeVarDef(D->Name, TensorInfo{Extent, D->Info.Dtype},
                          D->ATy, D->MTy, Body, D->Id);
    cast<VarDefNode>(Out)->NoGrad = D->NoGrad;
    return Out;
  }

  IsParamFn IsParam;
  ProofContext PC;
};

} // namespace

Stmt ft::shrinkVars(const Stmt &S) {
  return pass_detail::tracedPass("pass/shrink_var", S, [&] {
    AccessCollection AC = collectAccesses(S);
    auto Defs = AC.Defs;
    IsParamFn IsParam = [Defs](const std::string &Name) {
      auto It = Defs.find(Name);
      return It != Defs.end() && It->second->ATy == AccessType::Input &&
             It->second->Info.Shape.empty() && isInt(It->second->Info.Dtype);
    };
    Shrinker Sh(IsParam);
    return constFold(Sh(S));
  });
}
