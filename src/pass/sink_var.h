//===- pass/sink_var.h - Narrow tensor scopes --------------------*- C++ -*-===//
///
/// \file
/// Moves VarDefs as deep into the tree as legality allows: into a
/// StmtSeq sub-range covering all uses, and through loops when no
/// dependence on the tensor is carried by the loop. Narrow scopes are what
/// make the stack-scoped AST effective — they eliminate false dependences
/// (paper Fig. 12(d)) and shrink AD tapes.
///
//===----------------------------------------------------------------------===//

#ifndef FT_PASS_SINK_VAR_H
#define FT_PASS_SINK_VAR_H

#include "ir/mutator.h"

namespace ft {

/// Sinks all Cache VarDefs as deep as possible.
Stmt sinkVars(const Stmt &S);

} // namespace ft

#endif // FT_PASS_SINK_VAR_H
