//===- pass/const_fold.cpp ------------------------------------------------===//

#include "pass/const_fold.h"

#include <cmath>

#include "ir/compare.h"
#include "math/linear.h"
#include "pass/pass_trace.h"

using namespace ft;

namespace {

struct ConstVal {
  enum class Tag { Int, Float, Bool } T;
  int64_t I = 0;
  double F = 0;
  bool B = false;

  double asFloat() const { return T == Tag::Int ? double(I) : F; }
};

std::optional<ConstVal> asConst(const Expr &E) {
  if (auto I = dyn_cast<IntConstNode>(E))
    return ConstVal{ConstVal::Tag::Int, I->Val, 0, false};
  if (auto F = dyn_cast<FloatConstNode>(E))
    return ConstVal{ConstVal::Tag::Float, 0, F->Val, false};
  if (auto B = dyn_cast<BoolConstNode>(E))
    return ConstVal{ConstVal::Tag::Bool, 0, 0, B->Val};
  return std::nullopt;
}

Expr fromInt(int64_t V) { return makeIntConst(V); }
Expr fromFloat(double V) { return makeFloatConst(V); }
Expr fromBool(bool V) { return makeBoolConst(V); }

bool isIntZero(const Expr &E) {
  auto I = dyn_cast<IntConstNode>(E);
  return I != nullptr && I->Val == 0;
}

bool isZero(const Expr &E) {
  if (isIntZero(E))
    return true;
  auto F = dyn_cast<FloatConstNode>(E);
  return F != nullptr && F->Val == 0.0;
}

bool isOne(const Expr &E) {
  if (auto I = dyn_cast<IntConstNode>(E))
    return I->Val == 1;
  auto F = dyn_cast<FloatConstNode>(E);
  return F != nullptr && F->Val == 1.0;
}

Expr foldBinary(BinOpKind Op, const Expr &L, const Expr &R) {
  auto CL = asConst(L), CR = asConst(R);
  bool BothInt = CL && CR && CL->T == ConstVal::Tag::Int &&
                 CR->T == ConstVal::Tag::Int;
  bool BothBool = CL && CR && CL->T == ConstVal::Tag::Bool &&
                  CR->T == ConstVal::Tag::Bool;
  bool BothNum = CL && CR && CL->T != ConstVal::Tag::Bool &&
                 CR->T != ConstVal::Tag::Bool;

  switch (Op) {
  case BinOpKind::Add:
    if (BothInt)
      if (auto S = checkedAdd(CL->I, CR->I))
        return fromInt(*S);
    if (BothNum && !BothInt)
      return fromFloat(CL->asFloat() + CR->asFloat());
    if (isZero(L))
      return R;
    if (isZero(R))
      return L;
    break;
  case BinOpKind::Sub:
    if (BothInt)
      if (auto S = checkedAdd(CL->I, -CR->I))
        return fromInt(*S);
    if (BothNum && !BothInt)
      return fromFloat(CL->asFloat() - CR->asFloat());
    if (isZero(R))
      return L;
    break;
  case BinOpKind::Mul:
    if (BothInt)
      if (auto P = checkedMul(CL->I, CR->I))
        return fromInt(*P);
    if (BothNum && !BothInt)
      return fromFloat(CL->asFloat() * CR->asFloat());
    if (isOne(L))
      return R;
    if (isOne(R))
      return L;
    // x * 0 folds only for integers: float multiplication by zero must keep
    // NaN/Inf semantics.
    if ((isIntZero(L) && isInt(dataTypeOf(R))) ||
        (isIntZero(R) && isInt(dataTypeOf(L))))
      return fromInt(0);
    break;
  case BinOpKind::RealDiv:
    if (BothNum && CR->asFloat() != 0.0)
      return fromFloat(CL->asFloat() / CR->asFloat());
    break;
  case BinOpKind::FloorDiv:
    if (BothInt && CR->I != 0)
      return fromInt(floorDiv64(CL->I, CR->I));
    if (isOne(R))
      return L;
    break;
  case BinOpKind::Mod:
    if (BothInt && CR->I != 0)
      return fromInt(mod64(CL->I, CR->I));
    if (isOne(R))
      return fromInt(0);
    break;
  case BinOpKind::Min:
    if (BothInt)
      return fromInt(std::min(CL->I, CR->I));
    if (BothNum && !BothInt)
      return fromFloat(std::min(CL->asFloat(), CR->asFloat()));
    if (deepEqual(L, R))
      return L;
    break;
  case BinOpKind::Max:
    if (BothInt)
      return fromInt(std::max(CL->I, CR->I));
    if (BothNum && !BothInt)
      return fromFloat(std::max(CL->asFloat(), CR->asFloat()));
    if (deepEqual(L, R))
      return L;
    break;
  case BinOpKind::LT:
    if (BothNum)
      return fromBool(BothInt ? CL->I < CR->I
                              : CL->asFloat() < CR->asFloat());
    break;
  case BinOpKind::LE:
    if (BothNum)
      return fromBool(BothInt ? CL->I <= CR->I
                              : CL->asFloat() <= CR->asFloat());
    break;
  case BinOpKind::GT:
    if (BothNum)
      return fromBool(BothInt ? CL->I > CR->I
                              : CL->asFloat() > CR->asFloat());
    break;
  case BinOpKind::GE:
    if (BothNum)
      return fromBool(BothInt ? CL->I >= CR->I
                              : CL->asFloat() >= CR->asFloat());
    break;
  case BinOpKind::EQ:
    if (BothNum)
      return fromBool(BothInt ? CL->I == CR->I
                              : CL->asFloat() == CR->asFloat());
    break;
  case BinOpKind::NE:
    if (BothNum)
      return fromBool(BothInt ? CL->I != CR->I
                              : CL->asFloat() != CR->asFloat());
    break;
  case BinOpKind::LAnd:
    if (BothBool)
      return fromBool(CL->B && CR->B);
    if (CL && CL->T == ConstVal::Tag::Bool)
      return CL->B ? R : fromBool(false);
    if (CR && CR->T == ConstVal::Tag::Bool)
      return CR->B ? L : fromBool(false);
    break;
  case BinOpKind::LOr:
    if (BothBool)
      return fromBool(CL->B || CR->B);
    if (CL && CL->T == ConstVal::Tag::Bool)
      return CL->B ? fromBool(true) : R;
    if (CR && CR->T == ConstVal::Tag::Bool)
      return CR->B ? fromBool(true) : L;
    break;
  }
  return makeBinary(Op, L, R);
}

Expr foldUnary(UnOpKind Op, const Expr &X) {
  auto C = asConst(X);
  if (C) {
    switch (Op) {
    case UnOpKind::Neg:
      if (C->T == ConstVal::Tag::Int)
        return fromInt(-C->I);
      if (C->T == ConstVal::Tag::Float)
        return fromFloat(-C->F);
      break;
    case UnOpKind::LNot:
      if (C->T == ConstVal::Tag::Bool)
        return fromBool(!C->B);
      break;
    case UnOpKind::Abs:
      if (C->T == ConstVal::Tag::Int)
        return fromInt(C->I < 0 ? -C->I : C->I);
      if (C->T == ConstVal::Tag::Float)
        return fromFloat(std::fabs(C->F));
      break;
    case UnOpKind::Sqrt:
      if (C->T != ConstVal::Tag::Bool)
        return fromFloat(std::sqrt(C->asFloat()));
      break;
    case UnOpKind::Exp:
      if (C->T != ConstVal::Tag::Bool)
        return fromFloat(std::exp(C->asFloat()));
      break;
    case UnOpKind::Ln:
      if (C->T != ConstVal::Tag::Bool)
        return fromFloat(std::log(C->asFloat()));
      break;
    default:
      break;
    }
  }
  return makeUnary(Op, X);
}

class ConstFolder : public Mutator {
protected:
  Expr visit(const BinaryNode *E) override {
    return foldBinary(E->Op, (*this)(E->LHS), (*this)(E->RHS));
  }

  Expr visit(const UnaryNode *E) override {
    return foldUnary(E->Op, (*this)(E->Operand));
  }

  Expr visit(const IfExprNode *E) override {
    Expr Cond = (*this)(E->Cond);
    if (auto B = dyn_cast<BoolConstNode>(Cond))
      return B->Val ? (*this)(E->Then) : (*this)(E->Else);
    return makeIfExpr(Cond, (*this)(E->Then), (*this)(E->Else));
  }

  Expr visit(const CastNode *E) override {
    Expr X = (*this)(E->Operand);
    if (auto C = asConst(X)) {
      if (isInt(E->Dtype) && C->T == ConstVal::Tag::Float)
        return fromInt(static_cast<int64_t>(C->F));
      if (isInt(E->Dtype) && C->T == ConstVal::Tag::Int)
        return X;
      if (isFloat(E->Dtype) && C->T != ConstVal::Tag::Bool)
        return fromFloat(C->asFloat());
    }
    if (dataTypeOf(X) == E->Dtype)
      return X;
    return makeCast(E->Dtype, X);
  }
};

} // namespace

Expr ft::constFold(const Expr &E) { return ConstFolder()(E); }

Stmt ft::constFold(const Stmt &S) {
  return pass_detail::tracedPass("pass/const_fold", S,
                                 [&] { return ConstFolder()(S); });
}
