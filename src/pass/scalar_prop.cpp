//===- pass/scalar_prop.cpp -----------------------------------------------===//

#include "pass/scalar_prop.h"

#include <functional>
#include <optional>

#include "analysis/access.h"
#include "pass/flatten.h"
#include "pass/pass_trace.h"
#include "pass/remove_writes.h"
#include "pass/replace.h"

using namespace ft;

namespace {

/// One propagation opportunity.
struct Candidate {
  std::string Var;
  int64_t StoreId = -1;
  Expr Value;
};

/// Whether re-evaluating \p E costs no more than reading the scalar it
/// replaces: a constant, a variable, or a single load (possibly cast).
/// Anything with arithmetic — and especially transcendentals like the
/// per-segment `exp(e[j] - max) / sum` of softmax — is NOT cheap.
bool cheapToReplicate(const Expr &E) {
  Expr Cur = E;
  while (Cur && Cur->kind() == NodeKind::Cast)
    Cur = cast<CastNode>(Cur)->Operand;
  if (!Cur)
    return false;
  switch (Cur->kind()) {
  case NodeKind::IntConst:
  case NodeKind::FloatConst:
  case NodeKind::Var:
  case NodeKind::Load:
    return true;
  default:
    return false;
  }
}

/// Finds a propagatable scalar inside \p Def's body, or nullopt.
std::optional<Candidate> findCandidate(const Ref<VarDefNode> &Def) {
  if (Def->ATy != AccessType::Cache || !Def->Info.Shape.empty())
    return std::nullopt;
  AccessCollection AC = collectAccesses(Def->Body);

  const AccessPoint *Write = nullptr, *Read = nullptr;
  for (const AccessPoint &P : AC.Points) {
    if (P.Var != Def->Name)
      continue;
    if (P.Kind == AccessKind::Reduce)
      return std::nullopt;
    if (P.Kind == AccessKind::Write) {
      if (Write)
        return std::nullopt; // More than one write.
      Write = &P;
    } else {
      if (Read)
        return std::nullopt; // More than one read.
      Read = &P;
    }
  }
  if (!Write || !Read || Read->Seq < Write->Seq)
    return std::nullopt;
  // The store must be unconditional and not inside a loop of the body, so
  // its RHS is evaluated once per instantiation and its iterators are in
  // scope at the read site.
  if (!Write->Loops.empty() || !Write->Conds.empty())
    return std::nullopt;
  // If the read sits in a loop the store is not in, folding re-evaluates
  // the RHS once per iteration of that loop — a net loss unless the RHS
  // is no more expensive than the scalar read it replaces. The segment
  // idiom hits this hard: `w = exp(e[j] - mx) / sum` read in the feature
  // loop would recompute the exp() Feats times per edge.
  Stmt StoreStmt = findStmt(Def->Body, Write->StmtId);
  auto St = dyn_cast<StoreNode>(StoreStmt);
  if (!St)
    return std::nullopt;
  if (!Read->Loops.empty() && !cheapToReplicate(St->Value))
    return std::nullopt;

  // Interference: none of the RHS's operand tensors may be written inside
  // the body (so re-evaluating the RHS at the read site sees the same
  // values), and the RHS must not read the scalar itself.
  std::vector<std::string> Operands;
  std::function<void(const Expr &)> Gather = [&](const Expr &E) {
    if (auto L = dyn_cast<LoadNode>(E)) {
      Operands.push_back(L->Var);
      for (const Expr &I : L->Indices)
        Gather(I);
      return;
    }
    if (auto B = dyn_cast<BinaryNode>(E)) {
      Gather(B->LHS);
      Gather(B->RHS);
      return;
    }
    if (auto U = dyn_cast<UnaryNode>(E))
      return Gather(U->Operand);
    if (auto C = dyn_cast<CastNode>(E))
      return Gather(C->Operand);
    if (auto IE = dyn_cast<IfExprNode>(E)) {
      Gather(IE->Cond);
      Gather(IE->Then);
      Gather(IE->Else);
    }
  };
  Gather(St->Value);
  for (const std::string &Op : Operands) {
    if (Op == Def->Name)
      return std::nullopt;
    for (const AccessPoint &P : AC.Points)
      if (P.Var == Op && P.Kind != AccessKind::Read)
        return std::nullopt;
  }
  return Candidate{Def->Name, St->Id, St->Value};
}

/// Substitutes the (single) Load of Var by Value and deletes the store.
class Propagator : public Mutator {
public:
  explicit Propagator(Candidate C) : C(std::move(C)) {}

  using Mutator::operator();
  Stmt operator()(const Stmt &S) override {
    if (S->Id == C.StoreId)
      return makeStmtSeq({});
    return Mutator::operator()(S);
  }

protected:
  Expr visit(const LoadNode *E) override {
    if (E->Var == C.Var)
      return C.Value;
    return Mutator::visit(E);
  }

private:
  Candidate C;
};

/// Walks the tree looking for one candidate; applies it; reports success.
class OneRound : public Mutator {
public:
  bool Changed = false;

protected:
  Stmt visit(const VarDefNode *S) override {
    if (!Changed) {
      // Re-wrap to get a shared handle for analysis.
      Stmt Self = makeVarDef(S->Name, S->Info, S->ATy, S->MTy, S->Body,
                             S->Id);
      if (auto C = findCandidate(cast<VarDefNode>(Self))) {
        Changed = true;
        Stmt NewBody = Propagator(*C)(S->Body);
        Stmt Out =
            makeVarDef(S->Name, S->Info, S->ATy, S->MTy, NewBody, S->Id);
        cast<VarDefNode>(Out)->NoGrad = S->NoGrad;
        return Out;
      }
    }
    return Mutator::visit(S);
  }
};

} // namespace

Stmt ft::propagateScalars(const Stmt &S) {
  return pass_detail::tracedPass("pass/scalar_prop", S, [&] {
    Stmt Cur = S;
    for (int Round = 0; Round < 32; ++Round) {
      OneRound R;
      Stmt Next = R(Cur);
      Cur = std::move(Next);
      if (!R.Changed)
        break;
    }
    return removeDeadWrites(flattenStmtSeq(Cur));
  });
}
