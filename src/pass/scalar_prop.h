//===- pass/scalar_prop.h - Single-use scalar propagation --------*- C++ -*-===//
///
/// \file
/// Forward-substitutes Cache scalars that are written exactly once and
/// read exactly once with no interfering writes in between — the
/// "merging or removing redundant memory access" cleanup of paper §4.3.
/// Typical target: the `d` temporary of `d = a - b; y += |d|` after
/// inlining libop calls, which folds back into `y += |a - b|`.
///
//===----------------------------------------------------------------------===//

#ifndef FT_PASS_SCALAR_PROP_H
#define FT_PASS_SCALAR_PROP_H

#include "ir/mutator.h"

namespace ft {

/// Propagates single-write single-read Cache scalars; runs
/// removeDeadWrites afterwards so the emptied temporaries disappear.
Stmt propagateScalars(const Stmt &S);

} // namespace ft

#endif // FT_PASS_SCALAR_PROP_H
