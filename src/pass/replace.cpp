//===- pass/replace.cpp ---------------------------------------------------===//

#include "pass/replace.h"

#include "ir/visitor.h"

using namespace ft;

namespace {

class IterSubst : public Mutator {
public:
  IterSubst(std::string Name, Expr Repl)
      : Name(std::move(Name)), Repl(std::move(Repl)) {}

protected:
  Expr visit(const VarNode *E) override {
    if (E->Name == Name)
      return Repl;
    return Mutator::visit(E);
  }

private:
  std::string Name;
  Expr Repl;
};

class TensorRename : public Mutator {
public:
  TensorRename(std::string From, std::string To)
      : From(std::move(From)), To(std::move(To)) {}

protected:
  Expr visit(const LoadNode *E) override {
    Expr Out = Mutator::visit(E);
    auto L = cast<LoadNode>(Out);
    if (L->Var == From)
      return makeLoad(To, L->Indices, L->Dtype);
    return Out;
  }

  Stmt visit(const StoreNode *S) override {
    Stmt Out = Mutator::visit(S);
    auto St = cast<StoreNode>(Out);
    if (St->Var == From)
      return makeStore(To, St->Indices, St->Value, St->Id);
    return Out;
  }

  Stmt visit(const ReduceToNode *S) override {
    Stmt Out = Mutator::visit(S);
    auto R = cast<ReduceToNode>(Out);
    if (R->Var == From) {
      Stmt New = makeReduceTo(To, R->Indices, R->Op, R->Value, R->Id);
      cast<ReduceToNode>(New)->Atomic = R->Atomic;
      return New;
    }
    return Out;
  }

  Stmt visit(const GemmCallNode *S) override {
    Stmt Out = Mutator::visit(S);
    auto G = cast<GemmCallNode>(Out);
    auto Sub = [&](const std::string &V) { return V == From ? To : V; };
    if (G->A == From || G->B == From || G->C == From)
      return makeGemmCall(Sub(G->A), Sub(G->B), Sub(G->C), G->M, G->N, G->K,
                          G->TransA, G->TransB, G->Dtype, G->Id);
    return Out;
  }

private:
  std::string From, To;
};

class IndexRemapper : public Mutator {
public:
  IndexRemapper(std::string Var, IndexRemapFn Remap)
      : Var(std::move(Var)), Remap(std::move(Remap)) {}

protected:
  Expr visit(const LoadNode *E) override {
    Expr Out = Mutator::visit(E);
    auto L = cast<LoadNode>(Out);
    if (L->Var == Var)
      return makeLoad(L->Var, Remap(L->Indices), L->Dtype);
    return Out;
  }

  Stmt visit(const StoreNode *S) override {
    Stmt Out = Mutator::visit(S);
    auto St = cast<StoreNode>(Out);
    if (St->Var == Var)
      return makeStore(St->Var, Remap(St->Indices), St->Value, St->Id);
    return Out;
  }

  Stmt visit(const ReduceToNode *S) override {
    Stmt Out = Mutator::visit(S);
    auto R = cast<ReduceToNode>(Out);
    if (R->Var == Var) {
      Stmt New = makeReduceTo(R->Var, Remap(R->Indices), R->Op, R->Value,
                              R->Id);
      cast<ReduceToNode>(New)->Atomic = R->Atomic;
      return New;
    }
    return Out;
  }

private:
  std::string Var;
  IndexRemapFn Remap;
};

class UsageChecker : public Visitor {
public:
  UsageChecker(std::string Var, bool ReadsOnly)
      : Var(std::move(Var)), ReadsOnly(ReadsOnly) {}

  bool Used = false;

protected:
  void visit(const LoadNode *E) override {
    if (E->Var == Var)
      Used = true;
    Visitor::visit(E);
  }
  void visit(const StoreNode *S) override {
    if (!ReadsOnly && S->Var == Var)
      Used = true;
    Visitor::visit(S);
  }
  void visit(const ReduceToNode *S) override {
    if (!ReadsOnly && S->Var == Var)
      Used = true;
    Visitor::visit(S);
  }
  void visit(const GemmCallNode *S) override {
    if (S->A == Var || S->B == Var)
      Used = true;
    if (!ReadsOnly && S->C == Var)
      Used = true;
    Visitor::visit(S);
  }

private:
  std::string Var;
  bool ReadsOnly;
};

class IterUseChecker : public Visitor {
public:
  explicit IterUseChecker(std::string Name) : Name(std::move(Name)) {}

  bool Used = false;

protected:
  void visit(const VarNode *E) override {
    if (E->Name == Name)
      Used = true;
  }

private:
  std::string Name;
};

} // namespace

Stmt ft::substituteIter(const Stmt &S, const std::string &Name,
                        const Expr &Repl) {
  return IterSubst(Name, Repl)(S);
}

Expr ft::substituteIter(const Expr &E, const std::string &Name,
                        const Expr &Repl) {
  return IterSubst(Name, Repl)(E);
}

Stmt ft::renameTensor(const Stmt &S, const std::string &From,
                      const std::string &To) {
  return TensorRename(From, To)(S);
}

Stmt ft::remapIndices(const Stmt &S, const std::string &Var,
                      const IndexRemapFn &Remap) {
  return IndexRemapper(Var, Remap)(S);
}

bool ft::isTensorUsed(const Stmt &S, const std::string &Var) {
  UsageChecker C(Var, /*ReadsOnly=*/false);
  C(S);
  return C.Used;
}

bool ft::isTensorRead(const Stmt &S, const std::string &Var) {
  UsageChecker C(Var, /*ReadsOnly=*/true);
  C(S);
  return C.Used;
}

bool ft::isIterUsed(const Stmt &S, const std::string &Name) {
  IterUseChecker C(Name);
  C(S);
  return C.Used;
}

namespace {

/// Rebuilds every statement with a fresh ID (labels dropped to keep them
/// unique program-wide).
class IdRefresher : public Mutator {
protected:
  Stmt visit(const StmtSeqNode *S) override {
    std::vector<Stmt> Stmts;
    for (const Stmt &Sub : S->Stmts)
      Stmts.push_back((*this)(Sub));
    return makeStmtSeq(std::move(Stmts));
  }
  Stmt visit(const VarDefNode *S) override {
    Stmt Out = makeVarDef(S->Name, S->Info, S->ATy, S->MTy, (*this)(S->Body));
    cast<VarDefNode>(Out)->NoGrad = S->NoGrad;
    return Out;
  }
  Stmt visit(const StoreNode *S) override {
    return makeStore(S->Var, mutateIndices(S->Indices), (*this)(S->Value));
  }
  Stmt visit(const ReduceToNode *S) override {
    Stmt Out =
        makeReduceTo(S->Var, mutateIndices(S->Indices), S->Op,
                     (*this)(S->Value));
    cast<ReduceToNode>(Out)->Atomic = S->Atomic;
    return Out;
  }
  Stmt visit(const ForNode *S) override {
    return makeFor(S->Iter, (*this)(S->Begin), (*this)(S->End), S->Property,
                   (*this)(S->Body));
  }
  Stmt visit(const IfNode *S) override {
    return makeIf((*this)(S->Cond), (*this)(S->Then),
                  S->Else ? (*this)(S->Else) : nullptr);
  }
  Stmt visit(const GemmCallNode *S) override {
    return makeGemmCall(S->A, S->B, S->C, (*this)(S->M), (*this)(S->N),
                        (*this)(S->K), S->TransA, S->TransB, S->Dtype);
  }
};

/// Clears labels in place. Safe: copyWithFreshIds rebuilt every node.
void clearLabels(const Stmt &S) {
  S->Label.clear();
  switch (S->kind()) {
  case NodeKind::StmtSeq:
    for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
      clearLabels(Sub);
    return;
  case NodeKind::VarDef:
    return clearLabels(cast<VarDefNode>(S)->Body);
  case NodeKind::For:
    return clearLabels(cast<ForNode>(S)->Body);
  case NodeKind::If: {
    auto I = cast<IfNode>(S);
    clearLabels(I->Then);
    if (I->Else)
      clearLabels(I->Else);
    return;
  }
  default:
    return;
  }
}

} // namespace

Stmt ft::copyWithFreshIds(const Stmt &S) {
  Stmt Out = IdRefresher()(S);
  clearLabels(Out);
  return Out;
}

namespace {

class StmtReplacer : public Mutator {
public:
  StmtReplacer(int64_t Id, Stmt Repl) : Id(Id), Repl(std::move(Repl)) {}

  bool Found = false;

  using Mutator::operator();

  Stmt operator()(const Stmt &S) override {
    if (S->Id == Id) {
      ftAssert(!Found, "duplicate statement ID in replaceStmt");
      Found = true;
      return Repl;
    }
    return Mutator::operator()(S);
  }

private:
  int64_t Id;
  Stmt Repl;
};

} // namespace

Stmt ft::replaceStmt(const Stmt &Root, int64_t Id, const Stmt &Repl) {
  StmtReplacer R(Id, Repl);
  Stmt Out = R(Root);
  ftAssert(R.Found, "replaceStmt: statement ID not found");
  return Out;
}
