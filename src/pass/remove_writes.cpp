//===- pass/remove_writes.cpp ---------------------------------------------===//

#include "pass/remove_writes.h"

#include "pass/flatten.h"
#include "pass/pass_trace.h"
#include "pass/replace.h"

using namespace ft;

namespace {

/// Deletes all Store/ReduceTo statements targeting \p Var.
class WriteEraser : public Mutator {
public:
  explicit WriteEraser(std::string Var) : Var(std::move(Var)) {}

protected:
  Stmt visit(const StoreNode *S) override {
    if (S->Var == Var)
      return makeStmtSeq({});
    return Mutator::visit(S);
  }
  Stmt visit(const ReduceToNode *S) override {
    if (S->Var == Var)
      return makeStmtSeq({});
    return Mutator::visit(S);
  }

private:
  std::string Var;
};

/// One round: unwrap dead Cache VarDefs and erase writes to them.
class DeadDefRemover : public Mutator {
public:
  bool Changed = false;

protected:
  Stmt visit(const VarDefNode *S) override {
    if (S->ATy == AccessType::Cache && !isTensorRead(S->Body, S->Name)) {
      Changed = true;
      Stmt Body = WriteEraser(S->Name)(S->Body);
      return (*this)(Body);
    }
    return Mutator::visit(S);
  }
};

} // namespace

Stmt ft::removeDeadWrites(const Stmt &S) {
  return pass_detail::tracedPass("pass/remove_dead_writes", S, [&] {
    Stmt Cur = S;
    for (int Round = 0; Round < 16; ++Round) {
      DeadDefRemover R;
      Stmt Next = flattenStmtSeq(R(Cur));
      Cur = Next;
      if (!R.Changed)
        break;
    }
    return Cur;
  });
}
