//===- pass/flatten.h - Statement-sequence normalization ---------*- C++ -*-===//
///
/// \file
/// Flattens nested StmtSeq nodes, drops empty sequences and empty branches,
/// and unwraps single-statement sequences. Run after most transformations
/// to keep the tree canonical.
///
//===----------------------------------------------------------------------===//

#ifndef FT_PASS_FLATTEN_H
#define FT_PASS_FLATTEN_H

#include "ir/mutator.h"

namespace ft {

/// Returns true if \p S is an empty statement (an empty StmtSeq).
bool isEmptyStmt(const Stmt &S);

/// Normalizes statement sequences as described in the file comment.
Stmt flattenStmtSeq(const Stmt &S);

} // namespace ft

#endif // FT_PASS_FLATTEN_H
