//===- pass/simplify.h - Bound-driven simplification -------------*- C++ -*-===//
///
/// \file
/// The workhorse cleanup pass (paper §4.3: "simplification on mathematical
/// expressions ... removing redundant branches"). Walks the program with a
/// ProofContext and:
///   - folds constants (via pass/const_fold),
///   - removes branches whose condition is provably true/false in context,
///   - resolves Min/Max/IfExpr/comparisons provable from loop ranges,
///   - deletes loops with provably empty ranges and inlines single-
///     iteration loops,
///   - normalizes statement sequences (via pass/flatten).
///
//===----------------------------------------------------------------------===//

#ifndef FT_PASS_SIMPLIFY_H
#define FT_PASS_SIMPLIFY_H

#include "ir/func.h"

namespace ft {

/// Runs the simplifier to a fixed point (bounded number of rounds).
Stmt simplify(const Stmt &S);

/// Simplifies a whole function body.
Func simplify(Func F);

} // namespace ft

#endif // FT_PASS_SIMPLIFY_H
