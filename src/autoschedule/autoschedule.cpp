//===- autoschedule/autoschedule.cpp --------------------------------------===//

#include "autoschedule/autoschedule.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <limits>
#include <set>
#include <thread>

#include "analysis/affine.h"
#include "codegen/jit.h"
#include "ir/compare.h"
#include "ir/func.h"
#include "ir/printer.h"
#include "pass/const_fold.h"
#include "pass/scalar_prop.h"
#include "pass/shrink_var.h"
#include "support/metrics.h"
#include "support/trace.h"

using namespace ft;

namespace {

struct LoopInfo {
  Ref<ForNode> Node;
  int Depth = 0;       ///< Number of enclosing loops.
  bool Innermost = true;
};

void collectLoops(const Stmt &S, int Depth, std::vector<LoopInfo> &Out) {
  switch (S->kind()) {
  case NodeKind::StmtSeq:
    for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
      collectLoops(Sub, Depth, Out);
    return;
  case NodeKind::VarDef:
    collectLoops(cast<VarDefNode>(S)->Body, Depth, Out);
    return;
  case NodeKind::If: {
    auto I = cast<IfNode>(S);
    collectLoops(I->Then, Depth, Out);
    if (I->Else)
      collectLoops(I->Else, Depth, Out);
    return;
  }
  case NodeKind::For: {
    auto L = cast<ForNode>(S);
    size_t Mark = Out.size();
    Out.push_back({L, Depth, true});
    collectLoops(L->Body, Depth + 1, Out);
    if (Out.size() > Mark + 1)
      Out[Mark].Innermost = false;
    return;
  }
  default:
    return;
  }
}

std::vector<LoopInfo> collectLoops(const Stmt &Root) {
  std::vector<LoopInfo> Out;
  collectLoops(Root, 0, Out);
  return Out;
}

std::optional<int64_t> constLen(const Ref<ForNode> &L) {
  Expr Len = constFold(L->len());
  if (auto I = dyn_cast<IntConstNode>(Len))
    return I->Val;
  return std::nullopt;
}

/// Adjacent sibling For pairs in any StmtSeq.
void collectAdjacentPairs(const Stmt &S,
                          std::vector<std::pair<int64_t, int64_t>> &Out) {
  switch (S->kind()) {
  case NodeKind::StmtSeq: {
    auto Seq = cast<StmtSeqNode>(S);
    for (size_t I = 0; I + 1 < Seq->Stmts.size(); ++I)
      if (isa<ForNode>(Seq->Stmts[I]) && isa<ForNode>(Seq->Stmts[I + 1]))
        Out.push_back({Seq->Stmts[I]->Id, Seq->Stmts[I + 1]->Id});
    for (const Stmt &Sub : Seq->Stmts)
      collectAdjacentPairs(Sub, Out);
    return;
  }
  case NodeKind::VarDef:
    collectAdjacentPairs(cast<VarDefNode>(S)->Body, Out);
    return;
  case NodeKind::For:
    collectAdjacentPairs(cast<ForNode>(S)->Body, Out);
    return;
  case NodeKind::If: {
    auto I = cast<IfNode>(S);
    collectAdjacentPairs(I->Then, Out);
    if (I->Else)
      collectAdjacentPairs(I->Else, Out);
    return;
  }
  default:
    return;
  }
}

/// True if some access in the loop body walks the last tensor dimension
/// with this iterator (the contiguity heuristic of auto_vectorize).
bool accessesContiguously(const Ref<ForNode> &L) {
  bool Found = false;
  std::function<void(const Expr &)> ScanE = [&](const Expr &E) {
    if (auto Ld = dyn_cast<LoadNode>(E)) {
      if (!Ld->Indices.empty())
        if (auto V = dyn_cast<VarNode>(Ld->Indices.back()))
          Found |= V->Name == L->Iter;
      for (const Expr &I : Ld->Indices)
        ScanE(I);
      return;
    }
    if (auto B = dyn_cast<BinaryNode>(E)) {
      ScanE(B->LHS);
      ScanE(B->RHS);
      return;
    }
    if (auto U = dyn_cast<UnaryNode>(E))
      return ScanE(U->Operand);
    if (auto C = dyn_cast<CastNode>(E))
      return ScanE(C->Operand);
    if (auto IE = dyn_cast<IfExprNode>(E)) {
      ScanE(IE->Cond);
      ScanE(IE->Then);
      ScanE(IE->Else);
    }
  };
  std::function<void(const Stmt &)> ScanS = [&](const Stmt &S) {
    switch (S->kind()) {
    case NodeKind::StmtSeq:
      for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
        ScanS(Sub);
      return;
    case NodeKind::VarDef:
      return ScanS(cast<VarDefNode>(S)->Body);
    case NodeKind::For:
      return ScanS(cast<ForNode>(S)->Body);
    case NodeKind::If: {
      auto I = cast<IfNode>(S);
      ScanS(I->Then);
      if (I->Else)
        ScanS(I->Else);
      return;
    }
    case NodeKind::Store: {
      auto St = cast<StoreNode>(S);
      if (!St->Indices.empty())
        if (auto V = dyn_cast<VarNode>(St->Indices.back()))
          Found |= V->Name == L->Iter;
      ScanE(St->Value);
      return;
    }
    case NodeKind::ReduceTo:
      ScanE(cast<ReduceToNode>(S)->Value);
      return;
    default:
      return;
    }
  };
  ScanS(L->Body);
  return Found;
}

/// For pairs separated by exactly one statement: (loop, stmt, loop).
void collectNearPairs(
    const Stmt &S,
    std::vector<std::tuple<int64_t, int64_t, int64_t>> &Out) {
  if (auto Seq = dyn_cast<StmtSeqNode>(S)) {
    for (size_t I = 0; I + 2 < Seq->Stmts.size(); ++I)
      if (isa<ForNode>(Seq->Stmts[I]) && !isa<ForNode>(Seq->Stmts[I + 1]) &&
          isa<ForNode>(Seq->Stmts[I + 2]))
        Out.push_back({Seq->Stmts[I]->Id, Seq->Stmts[I + 1]->Id,
                       Seq->Stmts[I + 2]->Id});
    for (const Stmt &Sub : Seq->Stmts)
      collectNearPairs(Sub, Out);
    return;
  }
  if (auto D = dyn_cast<VarDefNode>(S))
    return collectNearPairs(D->Body, Out);
  if (auto L = dyn_cast<ForNode>(S))
    return collectNearPairs(L->Body, Out);
  if (auto I = dyn_cast<IfNode>(S)) {
    collectNearPairs(I->Then, Out);
    if (I->Else)
      collectNearPairs(I->Else, Out);
  }
}

int autoFuse(Schedule &S) {
  int N = 0;
  for (int Round = 0; Round < 64; ++Round) {
    std::vector<std::pair<int64_t, int64_t>> Pairs;
    collectAdjacentPairs(S.ast(), Pairs);
    bool Changed = false;
    for (const auto &[A, B] : Pairs)
      if (S.fuse(A, B).ok()) {
        ++N;
        Changed = true;
        break; // IDs shifted; rescan.
      }
    if (Changed)
      continue;
    // "Other transformations like swap may be applied to enable it"
    // (paper §4.3): move an interposed statement out of the way first.
    std::vector<std::tuple<int64_t, int64_t, int64_t>> Near;
    collectNearPairs(S.ast(), Near);
    for (const auto &[L1, Mid, L2] : Near) {
      if (!S.swap(Mid, L2).ok())
        continue;
      if (S.fuse(L1, L2).ok()) {
        ++N;
        Changed = true;
      } else {
        // Undo the swap if the fusion still failed.
        (void)S.swap(L2, Mid);
      }
      break;
    }
    if (!Changed)
      break;
  }
  return N;
}

int autoUseLib(Schedule &S) {
  int N = 0;
  for (int Round = 0; Round < 64; ++Round) {
    bool Changed = false;
    for (const LoopInfo &L : collectLoops(S.ast()))
      if (S.asLib(L.Node->Id).ok()) {
        ++N;
        Changed = true;
        break;
      }
    if (!Changed)
      break;
  }
  return N;
}

int autoVectorize(Schedule &S, int Width) {
  int N = 0;
  for (const LoopInfo &L : collectLoops(S.ast())) {
    if (!L.Innermost || L.Node->Property.Parallel ||
        L.Node->Property.Vectorize)
      continue;
    // The explicit-width form carries its own legality proof (and admits
    // single-accumulator reductions, which the legacy form must reject), so
    // it is attempted on every innermost loop; the contiguity heuristic
    // only gates the unproven hint-only fallback.
    if (Width > 0 && S.vectorize(L.Node->Id, Width).ok()) {
      ++N;
      continue;
    }
    if (!accessesContiguously(L.Node))
      continue;
    if (S.vectorize(L.Node->Id).ok())
      ++N;
  }
  // Multi-accumulator reduction bodies (e.g. GAT's two running dot
  // products) defeat the single-accumulator proof. Fission such a loop into
  // one piece per reduction and prove each piece; the attempt is rolled
  // back unless every piece vectorizes, so a failed try leaves no
  // structural change behind.
  if (Width > 0) {
    for (bool Changed = true; Changed;) {
      Changed = false;
      for (const LoopInfo &L : collectLoops(S.ast())) {
        if (!L.Innermost || L.Node->Property.Parallel ||
            L.Node->Property.Vectorize)
          continue;
        auto Seq = dyn_cast<StmtSeqNode>(L.Node->Body);
        if (!Seq || Seq->Stmts.size() < 2)
          continue;
        bool AllReduce = true;
        for (const Stmt &St : Seq->Stmts)
          AllReduce = AllReduce && isa<ReduceToNode>(St);
        if (!AllReduce)
          continue;
        Func Saved = S.func();
        bool Ok = true;
        int64_t Cur = L.Node->Id;
        size_t Pieces = Seq->Stmts.size();
        for (size_t P = 0; P + 1 < Pieces && Ok; ++P) {
          Ref<ForNode> CurL;
          for (const LoopInfo &L2 : collectLoops(S.ast()))
            if (L2.Node->Id == Cur)
              CurL = L2.Node;
          auto CurSeq = CurL ? dyn_cast<StmtSeqNode>(CurL->Body) : nullptr;
          if (!CurSeq || CurSeq->Stmts.empty()) {
            Ok = false;
            break;
          }
          auto FR = S.fission(Cur, CurSeq->Stmts.front()->Id);
          if (!FR.ok()) {
            Ok = false;
            break;
          }
          Ok = S.vectorize(FR->First, Width).ok();
          Cur = FR->Second;
        }
        Ok = Ok && S.vectorize(Cur, Width).ok();
        if (!Ok) {
          S = Schedule(std::move(Saved));
          continue;
        }
        N += static_cast<int>(Pieces);
        Changed = true;
        break; // Structure changed; rescan.
      }
    }
  }
  return N;
}

int autoParallelize(Schedule &S, int NumThreads) {
  // Architecture-aware rule (the paper's passes are "driven by heuristics
  // considering specific architectures"): with a single hardware thread,
  // threading and the atomics it requires are pure overhead.
  if (NumThreads == 0)
    NumThreads = static_cast<int>(std::thread::hardware_concurrency());
  if (NumThreads <= 1)
    return 0;
  int N = 0;
  // Parallelize top-level loops; when one is rejected, descend one level of
  // its perfect nest and retry.
  std::vector<int64_t> Candidates;
  for (const LoopInfo &L : collectLoops(S.ast()))
    if (L.Depth == 0)
      Candidates.push_back(L.Node->Id);
  for (int64_t Id : Candidates) {
    if (S.parallelize(Id).ok()) {
      ++N;
      continue;
    }
    auto Nest = S.perfectNest(Id);
    if (Nest.size() >= 2 && S.parallelize(Nest[1]->Id).ok())
      ++N;
  }
  return N;
}

int autoMemType(Schedule &S, int64_t Limit) {
  int N = 0;
  std::vector<std::string> Names;
  std::function<void(const Stmt &)> Scan = [&](const Stmt &St) {
    switch (St->kind()) {
    case NodeKind::StmtSeq:
      for (const Stmt &Sub : cast<StmtSeqNode>(St)->Stmts)
        Scan(Sub);
      return;
    case NodeKind::VarDef: {
      auto D = cast<VarDefNode>(St);
      if (D->ATy == AccessType::Cache && D->MTy == MemType::CPU) {
        int64_t Numel = 1;
        bool AllConst = true;
        for (const Expr &E : D->Info.Shape) {
          if (auto I = dyn_cast<IntConstNode>(constFold(E)))
            Numel *= I->Val;
          else
            AllConst = false;
        }
        if (AllConst && Numel <= Limit)
          Names.push_back(D->Name);
      }
      Scan(D->Body);
      return;
    }
    case NodeKind::For:
      return Scan(cast<ForNode>(St)->Body);
    case NodeKind::If: {
      auto I = cast<IfNode>(St);
      Scan(I->Then);
      if (I->Else)
        Scan(I->Else);
      return;
    }
    default:
      return;
    }
  };
  Scan(S.ast());
  for (const std::string &Name : Names)
    if (S.setMemType(Name, MemType::CPULocal).ok())
      ++N;
  return N;
}

int autoUnroll(Schedule &S, int64_t Limit) {
  int N = 0;
  for (int Round = 0; Round < 64; ++Round) {
    bool Changed = false;
    for (const LoopInfo &L : collectLoops(S.ast())) {
      if (!L.Innermost || L.Node->Property.Parallel)
        continue;
      auto Len = constLen(L.Node);
      if (!Len || *Len > Limit || *Len < 2)
        continue;
      if (S.unroll(L.Node->Id, /*Full=*/true).ok()) {
        ++N;
        Changed = true;
        break;
      }
    }
    if (!Changed)
      break;
  }
  return N;
}

} // namespace

AutoScheduleReport ft::autoSchedule(Schedule &S,
                                    const AutoScheduleOptions &Opts) {
  AutoScheduleReport R;
  trace::Span Sp("autoschedule/run");
  // Force audit-log collection for the duration of the run so the per-rule
  // tallies are available even when tracing is off.
  trace::AuditGuard Audit;
  // Runs one rule pass under an "autoschedule/<name>" span, then tallies
  // the schedule decisions the pass generated.
  auto RunRule = [&](const char *Name, int &Slot, auto &&Rule) {
    size_t Mark = trace::auditSize();
    trace::Span RuleSp(std::string("autoschedule/") + Name);
    Slot = Rule();
    RuleTally &T = R.Rules[Name];
    for (const trace::ScheduleDecision &D : trace::auditLogSince(Mark)) {
      ++T.Tried;
      ++(D.Applied ? T.Applied : T.Rejected);
    }
    if (RuleSp.active()) {
      RuleSp.annotate("applied", static_cast<int64_t>(T.Applied));
      RuleSp.annotate("rejected", static_cast<int64_t>(T.Rejected));
    }
  };
  S.cleanup();
  if (Opts.Cleanup) {
    Func F2 = S.func();
    F2.Body = shrinkVars(propagateScalars(F2.Body));
    S = Schedule(std::move(F2));
    S.cleanup();
  }
  if (Opts.Fuse)
    RunRule("auto_fuse", R.Fused, [&] { return autoFuse(S); });
  if (Opts.Vectorize)
    RunRule("auto_vectorize", R.Vectorized,
            [&] { return autoVectorize(S, Opts.VectorWidth); });
  if (Opts.Parallelize)
    RunRule("auto_parallelize", R.Parallelized,
            [&] { return autoParallelize(S, Opts.NumThreads); });
  if (Opts.MemType)
    RunRule("auto_mem_type", R.Localized,
            [&] { return autoMemType(S, Opts.LocalSizeLimit); });
  if (Opts.UseLib)
    RunRule("auto_use_lib", R.LibCalls, [&] { return autoUseLib(S); });
  if (Opts.Unroll)
    RunRule("auto_unroll", R.Unrolled,
            [&] { return autoUnroll(S, Opts.UnrollLimit); });
  if (Opts.Vectorize && Opts.Unroll && Opts.VectorWidth > 0) {
    // Fully unrolling a short reduction loop (e.g. the 3-neighbor loop of
    // SubdivNet) exposes a new innermost loop whose carried dependences are
    // now provably empty — give the vectorize rule a second look. Width 0
    // keeps the pre-SIMD pass order (and its emission) exactly.
    int More = 0;
    RunRule("auto_vectorize", More,
            [&] { return autoVectorize(S, Opts.VectorWidth); });
    R.Vectorized += More;
  }
  S.cleanup();
  return R;
}

Func ft::autoScheduleFunc(Func F, const AutoScheduleOptions &Opts,
                          AutoScheduleReport *Report) {
  Schedule S(std::move(F));
  AutoScheduleReport R = autoSchedule(S, Opts);
  if (Report)
    *Report = R;
  return S.func();
}

//===----------------------------------------------------------------------===//
// Measurement-driven search
//===----------------------------------------------------------------------===//

namespace {

/// xorshift64: deterministic, seedable, and plenty for picking mutations.
struct Rng {
  uint64_t S;
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  size_t pick(size_t N) { return N ? static_cast<size_t>(next() % N) : 0; }
};

/// Applies one random schedule mutation. Every primitive is legality-checked
/// by Schedule itself; a rejected one leaves the program unchanged, which
/// the caller detects — and skips — via fingerprint dedup.
void mutateOnce(Schedule &S, Rng &R) {
  auto Loops = collectLoops(S.ast());
  if (Loops.empty())
    return;
  switch (R.next() % 8) {
  case 0: {
    static const int64_t Factors[] = {2, 4, 8, 16, 32};
    (void)S.split(Loops[R.pick(Loops.size())].Node->Id,
                  Factors[R.pick(std::size(Factors))]);
    return;
  }
  case 1:
    (void)S.parallelize(Loops[R.pick(Loops.size())].Node->Id);
    return;
  case 2: {
    const LoopInfo &L = Loops[R.pick(Loops.size())];
    if (L.Innermost)
      (void)S.unroll(L.Node->Id, /*Full=*/constLen(L.Node).has_value());
    return;
  }
  case 3: {
    const LoopInfo &L = Loops[R.pick(Loops.size())];
    if (L.Innermost)
      (void)S.vectorize(L.Node->Id);
    return;
  }
  case 4: {
    std::vector<std::pair<int64_t, int64_t>> Pairs;
    collectAdjacentPairs(S.ast(), Pairs);
    if (!Pairs.empty()) {
      const auto &[A, B] = Pairs[R.pick(Pairs.size())];
      (void)S.fuse(A, B);
    }
    return;
  }
  case 5: {
    const LoopInfo &L = Loops[R.pick(Loops.size())];
    auto Nest = S.perfectNest(L.Node->Id);
    if (Nest.size() >= 2)
      (void)S.reorder({Nest[1]->Id, Nest[0]->Id});
    return;
  }
  case 6: {
    // Explicit-width vectorize: unlike case 3's hint-only form, this one
    // proves legality (and admits single-accumulator reductions).
    static const int Widths[] = {4, 8, 16};
    const LoopInfo &L = Loops[R.pick(Loops.size())];
    if (L.Innermost)
      (void)S.vectorize(L.Node->Id, Widths[R.pick(std::size(Widths))]);
    return;
  }
  case 7: {
    // Composite split -> reorder -> vectorize: tile the top two loops of a
    // perfect nest and vectorize the resulting inner point loop.
    static const int64_t Tiles[] = {8, 16, 32};
    const LoopInfo &L = Loops[R.pick(Loops.size())];
    auto Nest = S.perfectNest(L.Node->Id);
    if (Nest.size() < 2)
      return;
    auto R0 = S.split(Nest[0]->Id, Tiles[R.pick(std::size(Tiles))]);
    auto R1 = S.split(Nest[1]->Id, Tiles[R.pick(std::size(Tiles))]);
    if (!R0.ok() || !R1.ok())
      return;
    S.cleanup(); // Simplify away divisible-split guards so the band is
                 // perfectly nested again.
    if (S.reorder({R0->First, R1->First, R0->Second, R1->Second}).ok())
      if (!S.vectorize(R1->Second, 8).ok())
        (void)S.vectorize(R1->Second);
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Cache-footprint-driven tile candidates
//===----------------------------------------------------------------------===//

/// One deterministic tiling candidate: tile the top two loops of a perfect
/// nest by (TileI, TileJ) via split -> reorder, then vectorize the inner
/// point loop.
struct TilePlan {
  int64_t OuterId = -1;
  int64_t InnerId = -1;
  int64_t TileI = 1;
  int64_t TileJ = 1;
  double FootprintBytes = 0;
};

/// Estimated bytes one iteration tile touches. For every distinct access in
/// the nest body, each index dimension spans
///   1 + sum_iter |coeff(iter)| * (span(iter) - 1)
/// elements, where span() is the tile size for tiled iterators and the full
/// constant extent for untiled nest iterators; a non-affine index dimension
/// falls back to a pessimistic constant span. The per-access element counts
/// multiply across dimensions and sum across tensors, scaled by element
/// size. Duplicate accesses (same tensor, same index text) count once —
/// reuse is the point of tiling, not extra footprint.
double tileFootprintBytes(const Func &F, const Stmt &Body,
                          const std::map<std::string, int64_t> &IterSpan) {
  IsParamFn IsParam = [&](const std::string &N) {
    auto D = findVarDef(F.Body, N);
    return D && D->ATy == AccessType::Input && D->Info.Shape.empty() &&
           isInt(D->Info.Dtype);
  };
  constexpr double kNonAffineSpan = 8;
  double Total = 0;
  std::set<std::string> Seen;
  auto Account = [&](const std::string &Var, const std::vector<Expr> &Idx) {
    std::string Key = Var;
    for (const Expr &E : Idx)
      Key += "[" + toString(E) + "]";
    if (!Seen.insert(Key).second)
      return;
    double Elems = 1;
    for (const Expr &E : Idx) {
      auto Lin = toLinear(E, IsParam);
      if (!Lin) {
        Elems *= kNonAffineSpan;
        continue;
      }
      double Span = 1;
      for (const auto &[Iter, Width] : IterSpan)
        Span += static_cast<double>(std::abs(Lin->coeffOf(Iter))) *
                static_cast<double>(Width - 1);
      Elems *= Span;
    }
    double ESize = 4;
    if (auto D = findVarDef(F.Body, Var))
      ESize = static_cast<double>(sizeOf(D->Info.Dtype));
    Total += ESize * Elems;
  };
  std::function<void(const Expr &)> ScanE = [&](const Expr &E) {
    if (auto Ld = dyn_cast<LoadNode>(E)) {
      Account(Ld->Var, Ld->Indices);
      for (const Expr &I : Ld->Indices)
        ScanE(I);
      return;
    }
    if (auto B = dyn_cast<BinaryNode>(E)) {
      ScanE(B->LHS);
      ScanE(B->RHS);
      return;
    }
    if (auto U = dyn_cast<UnaryNode>(E))
      return ScanE(U->Operand);
    if (auto C = dyn_cast<CastNode>(E))
      return ScanE(C->Operand);
    if (auto IE = dyn_cast<IfExprNode>(E)) {
      ScanE(IE->Cond);
      ScanE(IE->Then);
      ScanE(IE->Else);
    }
  };
  std::function<void(const Stmt &)> ScanS = [&](const Stmt &St) {
    switch (St->kind()) {
    case NodeKind::StmtSeq:
      for (const Stmt &Sub : cast<StmtSeqNode>(St)->Stmts)
        ScanS(Sub);
      return;
    case NodeKind::VarDef:
      return ScanS(cast<VarDefNode>(St)->Body);
    case NodeKind::For:
      return ScanS(cast<ForNode>(St)->Body);
    case NodeKind::If: {
      auto I = cast<IfNode>(St);
      ScanE(I->Cond);
      ScanS(I->Then);
      if (I->Else)
        ScanS(I->Else);
      return;
    }
    case NodeKind::Store: {
      auto W = cast<StoreNode>(St);
      Account(W->Var, W->Indices);
      for (const Expr &I : W->Indices)
        ScanE(I);
      ScanE(W->Value);
      return;
    }
    case NodeKind::ReduceTo: {
      auto Red = cast<ReduceToNode>(St);
      Account(Red->Var, Red->Indices);
      for (const Expr &I : Red->Indices)
        ScanE(I);
      ScanE(Red->Value);
      return;
    }
    default:
      return;
    }
  };
  ScanS(Body);
  return Total;
}

/// Enumerates power-of-two tile pairs that exactly divide the constant
/// extents of the first depth>=2 perfect nest, ranked by how well one
/// iteration tile's estimated footprint fills L1 (any L1 fit beats any
/// L2-only fit, which beats any overflow; within a class, fuller is
/// better). Returns the best \p TopK plans.
std::vector<TilePlan> tilePlans(const Func &Seed, size_t TopK) {
  constexpr double kL1Bytes = 32 * 1024.0;
  constexpr double kL2Bytes = 256 * 1024.0;
  std::vector<TilePlan> Plans;
  Schedule S(Seed);
  for (const LoopInfo &L : collectLoops(S.ast())) {
    if (L.Depth != 0)
      continue;
    auto Nest = S.perfectNest(L.Node->Id);
    if (Nest.size() < 2)
      continue;
    auto N0 = constLen(Nest[0]);
    auto N1 = constLen(Nest[1]);
    if (!N0 || !N1 || *N0 < 4 || *N1 < 4)
      continue;
    const Stmt &Body = Nest.back()->Body;
    for (int64_t TI = 2; TI <= *N0 / 2; TI *= 2) {
      if (*N0 % TI != 0)
        continue;
      for (int64_t TJ = 2; TJ <= *N1 / 2; TJ *= 2) {
        if (*N1 % TJ != 0)
          continue;
        std::map<std::string, int64_t> Span;
        Span[Nest[0]->Iter] = TI;
        Span[Nest[1]->Iter] = TJ;
        // Deeper nest loops are not tiled: they sweep their full extent
        // inside one tile (pessimistic 64 when the extent is symbolic).
        for (size_t K = 2; K < Nest.size(); ++K)
          Span[Nest[K]->Iter] = constLen(Nest[K]).value_or(64);
        Plans.push_back({Nest[0]->Id, Nest[1]->Id, TI, TJ,
                         tileFootprintBytes(Seed, Body, Span)});
      }
    }
    break; // First suitable nest only: bounds the candidate count.
  }
  auto Score = [&](const TilePlan &P) {
    if (P.FootprintBytes <= kL1Bytes)
      return kL1Bytes - P.FootprintBytes;
    if (P.FootprintBytes <= kL2Bytes)
      return kL1Bytes + (kL2Bytes - P.FootprintBytes);
    return kL1Bytes + kL2Bytes + P.FootprintBytes;
  };
  std::sort(Plans.begin(), Plans.end(),
            [&](const TilePlan &A, const TilePlan &B) {
              if (Score(A) != Score(B))
                return Score(A) < Score(B);
              return std::make_pair(A.TileI, A.TileJ) <
                     std::make_pair(B.TileI, B.TileJ);
            });
  if (Plans.size() > TopK)
    Plans.resize(TopK);
  return Plans;
}

/// Builds the tiled candidate for one plan. A rejected primitive leaves the
/// program unchanged, and fingerprint dedup then collapses the candidate
/// onto one already measured — failure is cheap by construction.
Func applyTilePlan(const Func &Seed, const TilePlan &P, int VecWidth) {
  Schedule S(Seed);
  auto R0 = S.split(P.OuterId, P.TileI);
  auto R1 = S.split(P.InnerId, P.TileJ);
  if (R0.ok() && R1.ok()) {
    S.cleanup(); // Divisible splits: simplify removes the guards, restoring
                 // a perfectly nested band for reorder.
    (void)S.reorder({R0->First, R1->First, R0->Second, R1->Second});
  }
  for (const LoopInfo &L : collectLoops(S.ast())) {
    if (!L.Innermost || L.Node->Property.Parallel ||
        L.Node->Property.Vectorize)
      continue;
    if (!accessesContiguously(L.Node))
      continue;
    if (VecWidth <= 0 || !S.vectorize(L.Node->Id, VecWidth).ok())
      (void)S.vectorize(L.Node->Id);
  }
  S.cleanup();
  return S.func();
}

/// Compiles \p F (through the kernel cache) and returns the best-of-\p Runs
/// wall time of running it on \p Args, in milliseconds.
Result<double> measureMs(const Func &F,
                         const std::map<std::string, Buffer *> &Args,
                         int Runs, const std::string &OptFlags) {
  auto KR = Kernel::compile(F, OptFlags);
  if (!KR.ok())
    return Result<double>::error(KR.message());
  double Best = std::numeric_limits<double>::infinity();
  for (int I = 0; I < std::max(1, Runs); ++I) {
    auto T0 = std::chrono::steady_clock::now();
    if (Status St = KR->run(Args); !St.ok())
      return Result<double>::error(St.message());
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
    Best = std::min(Best, Ms);
  }
  return Best;
}

} // namespace

Result<Func> ft::autoTuneFunc(const Func &F,
                              const std::map<std::string, Buffer *> &Args,
                              const SearchOptions &Opts,
                              AutoScheduleReport *Report) {
  trace::Span Sp("autoschedule/search");
  auto &Dedup = metrics::counter("autoschedule/candidates_deduped");
  AutoScheduleReport R;
  Func Best = Opts.RulesFirst ? autoScheduleFunc(F, Opts.Rules, &R) : F;

  // Measurements memoized per whole-program fingerprint: structurally
  // identical candidates (however their loops happen to be named) compile
  // and run exactly once per search.
  std::map<uint64_t, double> Memo;
  auto Measure = [&](const Func &Cand) -> Result<double> {
    ++R.CandidatesTried;
    uint64_t FP = fingerprint(Cand);
    if (auto It = Memo.find(FP); It != Memo.end()) {
      ++R.CandidatesDeduped;
      Dedup.fetch_add(1);
      return It->second;
    }
    auto MsR = measureMs(Cand, Args, Opts.MeasureRuns, Opts.OptFlags);
    if (!MsR.ok())
      return MsR;
    ++R.CandidatesMeasured;
    Memo[FP] = *MsR;
    return MsR;
  };

  auto SeedMs = Measure(Best);
  if (!SeedMs.ok())
    return Result<Func>::error(SeedMs.message());
  double BestMs = *SeedMs;

  // Deterministic tile candidates from the cache-footprint heuristic run
  // before the random walk: they seed the search with the tilings most
  // likely to fit L1, and the walk then refines from whichever wins.
  const Func TileSeed = Best;
  for (const TilePlan &P : tilePlans(TileSeed, /*TopK=*/4)) {
    Func Cand = applyTilePlan(TileSeed, P, Opts.Rules.VectorWidth);
    auto MsR = Measure(Cand);
    if (MsR.ok() && *MsR < BestMs) {
      BestMs = *MsR;
      Best = std::move(Cand);
    }
  }

  Rng Rand{Opts.Seed ? Opts.Seed : 0x9e3779b97f4a7c15ull};
  for (int Round = 0; Round < Opts.Rounds; ++Round) {
    Schedule S(Best); // Mutators rebuild; the incumbent's tree is safe.
    int NMut = 1 + static_cast<int>(Rand.next() % 2);
    for (int M = 0; M < NMut; ++M)
      mutateOnce(S, Rand);
    S.cleanup();
    Func Cand = S.func();
    auto MsR = Measure(Cand);
    if (!MsR.ok())
      continue; // A candidate that fails to build or run is just discarded.
    if (*MsR < BestMs) {
      BestMs = *MsR;
      Best = std::move(Cand);
    }
  }

  R.BestMs = BestMs;
  if (Sp.active()) {
    Sp.annotate("tried", static_cast<int64_t>(R.CandidatesTried));
    Sp.annotate("deduped", static_cast<int64_t>(R.CandidatesDeduped));
    Sp.annotate("measured", static_cast<int64_t>(R.CandidatesMeasured));
    Sp.annotate("best_ms", BestMs);
  }
  if (Report)
    *Report = R;
  return Best;
}
