//===- autoschedule/autoschedule.h - Rule-based auto-transform ---*- C++ -*-===//
///
/// \file
/// The rule-based auto-transforming strategy of paper §4.3: six passes,
/// invoked one by one, that aggressively *try* transformations — legality is
/// guaranteed by the dependence analysis inside Schedule, so a rejected
/// attempt simply leaves the program unchanged.
///
///   1. auto_fuse        fuse nearby loops for locality
///   2. auto_vectorize   mark contiguous innermost loops for SIMD
///   3. auto_parallelize merge outer loops and run them on threads
///   4. auto_mem_type    put small tensors close to the processor
///   5. auto_use_lib     call the vendor GEMM for matmul patterns
///   6. auto_unroll      unroll very short innermost loops
///
/// On top of the rules sits a measurement-driven search (autoTuneFunc): a
/// deterministic random walk over schedule mutations that compiles and
/// times each candidate, keeping the fastest. Candidates are deduplicated
/// by whole-program fingerprint (ir/compare.h) *before* compiling — a
/// rejected primitive leaves the program unchanged, so many mutation
/// rounds collapse onto already-measured programs — and every compile goes
/// through the kernel cache, so re-running a search is nearly free.
///
//===----------------------------------------------------------------------===//

#ifndef FT_AUTOSCHEDULE_AUTOSCHEDULE_H
#define FT_AUTOSCHEDULE_AUTOSCHEDULE_H

#include <map>
#include <string>

#include "interp/buffer.h"
#include "schedule/schedule.h"
#include "support/error.h"

namespace ft {

/// Tuning knobs for the rule passes.
struct AutoScheduleOptions {
  /// Pre-pass cleanups: fold single-use scalar temporaries and shrink
  /// over-sized Cache tensors before the rule passes run.
  bool Cleanup = true;
  bool Fuse = true;
  bool Vectorize = true;
  bool Parallelize = true;
  bool MemType = true;
  bool UseLib = true;
  bool Unroll = true;
  /// Tensors with at most this many (constant) elements move to CPULocal.
  int64_t LocalSizeLimit = 4096;
  /// Loops with at most this constant length are marked for unrolling.
  int64_t UnrollLimit = 8;
  /// Explicit SIMD width auto_vectorize proves loops at (the two-argument
  /// vectorize(LoopId, Width), falling back to the legacy hint-only form
  /// when the proof fails). 0 skips the proof entirely and keeps the
  /// legacy ivdep-hint lowering — benchmarks use that as the baseline.
  int VectorWidth = 16;
  /// Thread count the parallelize rule targets; 0 = autodetect. With one
  /// thread, parallelization (and its atomics) is skipped as pure
  /// overhead — the paper's rules are architecture-aware (§4.3).
  int NumThreads = 0;
};

/// Per-rule primitive tally, sourced from the schedule decision audit log
/// (support/trace.h): how many primitives the rule tried, and of those how
/// many the dependence analysis let through vs rejected.
struct RuleTally {
  int Tried = 0;
  int Applied = 0;
  int Rejected = 0;
};

/// Statistics of what the rules applied (for tests and reporting).
struct AutoScheduleReport {
  int Fused = 0;
  int Vectorized = 0;
  int Parallelized = 0;
  int Localized = 0;
  int LibCalls = 0;
  int Unrolled = 0;
  /// Keyed by rule name ("auto_fuse", "auto_vectorize", ...). Collected
  /// even when tracing is off — autoSchedule forces the audit log on for
  /// the duration of its run.
  std::map<std::string, RuleTally> Rules;

  // Filled by the measurement-driven search (autoTuneFunc) only.
  int CandidatesTried = 0; ///< Mutation rounds evaluated (incl. the seed).
  int CandidatesDeduped =
      0; ///< Skipped: fingerprint seen before, measurement reused.
  int CandidatesMeasured = 0; ///< Actually compiled and timed.
  double BestMs = 0;          ///< Best-of-runs time of the winner.
};

/// Runs the six passes on \p S in order. Returns what was applied.
AutoScheduleReport autoSchedule(Schedule &S,
                                const AutoScheduleOptions &Opts = {});

/// Convenience: schedules a Func and returns the optimized one.
Func autoScheduleFunc(Func F, const AutoScheduleOptions &Opts = {},
                      AutoScheduleReport *Report = nullptr);

/// Knobs for the measurement-driven search (autoTuneFunc).
struct SearchOptions {
  int Rounds = 24;     ///< Mutation rounds after the seed candidate.
  int MeasureRuns = 3; ///< Timed runs per candidate; best-of is kept.
  uint64_t Seed = 0x5eed; ///< Mutation stream seed — same seed, same walk.
  bool RulesFirst = true; ///< Seed the search with the rule passes' output.
  AutoScheduleOptions Rules; ///< Options for that rule pre-pass.
  std::string OptFlags = "-O2"; ///< Host-compiler flags for candidates.
};

/// Measurement-driven schedule search over \p F. Each round copies the
/// incumbent, applies one or two random schedule mutations (split /
/// parallelize / unroll / vectorize / fuse / reorder — an illegal one is
/// rejected by the dependence analysis and leaves the program unchanged),
/// fingerprints the result, and only compiles + times candidates whose
/// fingerprint has not been measured yet (`autoschedule/candidates_deduped`
/// counts the skips; measurements are memoized per fingerprint). \p Args
/// must bind every parameter of \p F to a live Buffer; output buffers are
/// overwritten by the timing runs. Returns the fastest schedule found.
Result<Func> autoTuneFunc(const Func &F,
                          const std::map<std::string, Buffer *> &Args,
                          const SearchOptions &Opts = {},
                          AutoScheduleReport *Report = nullptr);

} // namespace ft

#endif // FT_AUTOSCHEDULE_AUTOSCHEDULE_H
