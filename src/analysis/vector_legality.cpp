//===- analysis/vector_legality.cpp ---------------------------------------===//

#include "analysis/vector_legality.h"

#include <algorithm>
#include <functional>
#include <set>

#include "analysis/ragged.h"

using namespace ft;

namespace {

/// True when \p E mentions the plain variable \p Name anywhere.
bool mentionsVar(const Expr &E, const std::string &Name) {
  if (!E)
    return false;
  switch (E->kind()) {
  case NodeKind::Var:
    return cast<VarNode>(E)->Name == Name;
  case NodeKind::Load: {
    auto L = cast<LoadNode>(E);
    for (const Expr &I : L->Indices)
      if (mentionsVar(I, Name))
        return true;
    return false;
  }
  case NodeKind::Cast:
    return mentionsVar(cast<CastNode>(E)->Operand, Name);
  case NodeKind::Unary:
    return mentionsVar(cast<UnaryNode>(E)->Operand, Name);
  case NodeKind::Binary: {
    auto B = cast<BinaryNode>(E);
    return mentionsVar(B->LHS, Name) || mentionsVar(B->RHS, Name);
  }
  case NodeKind::IfExpr: {
    auto IE = cast<IfExprNode>(E);
    return mentionsVar(IE->Cond, Name) || mentionsVar(IE->Then, Name) ||
           mentionsVar(IE->Else, Name);
  }
  default:
    return false;
  }
}

/// Classifies one indexed access against the vectorized iterator \p Iter.
VecAccess classifyOne(const std::string &Var, AccessKind Kind,
                      const std::vector<Expr> &Indices,
                      const std::string &Iter, const IsParamFn &IsParam) {
  VecAccess A;
  A.Var = Var;
  A.Kind = Kind;
  bool AnyMention = false;
  for (const Expr &I : Indices)
    AnyMention = AnyMention || mentionsVar(I, Iter);
  if (!AnyMention) {
    A.Class = VecAccessClass::Broadcast;
    return A;
  }
  // The iterator participates. Gather unless every iterator-bearing index
  // is affine in it.
  int64_t LastCoeff = 0;
  bool IterInNonLast = false;
  for (size_t D = 0; D < Indices.size(); ++D) {
    if (!mentionsVar(Indices[D], Iter))
      continue;
    auto Lin = toLinear(Indices[D], IsParam);
    if (!Lin) {
      A.Class = VecAccessClass::Gather;
      return A;
    }
    int64_t C = Lin->coeffOf(Iter);
    if (D + 1 == Indices.size())
      LastCoeff = C;
    if (D + 1 != Indices.size() && C != 0)
      IterInNonLast = true;
  }
  if (!IterInNonLast && LastCoeff == 1) {
    A.Class = VecAccessClass::Stride1;
    A.Stride = 1;
    return A;
  }
  A.Class = VecAccessClass::Strided;
  A.Stride = IterInNonLast ? 0 : LastCoeff;
  return A;
}

void scanExpr(const Expr &E, const std::string &Iter, const IsParamFn &IsParam,
              std::vector<VecAccess> &Out) {
  if (!E)
    return;
  switch (E->kind()) {
  case NodeKind::Load: {
    auto L = cast<LoadNode>(E);
    Out.push_back(
        classifyOne(L->Var, AccessKind::Read, L->Indices, Iter, IsParam));
    for (const Expr &I : L->Indices)
      scanExpr(I, Iter, IsParam, Out);
    return;
  }
  case NodeKind::Cast:
    return scanExpr(cast<CastNode>(E)->Operand, Iter, IsParam, Out);
  case NodeKind::Unary:
    return scanExpr(cast<UnaryNode>(E)->Operand, Iter, IsParam, Out);
  case NodeKind::Binary: {
    auto B = cast<BinaryNode>(E);
    scanExpr(B->LHS, Iter, IsParam, Out);
    scanExpr(B->RHS, Iter, IsParam, Out);
    return;
  }
  case NodeKind::IfExpr: {
    auto IE = cast<IfExprNode>(E);
    scanExpr(IE->Cond, Iter, IsParam, Out);
    scanExpr(IE->Then, Iter, IsParam, Out);
    scanExpr(IE->Else, Iter, IsParam, Out);
    return;
  }
  default:
    return;
  }
}

void scanStmt(const Stmt &S, const std::string &Iter, const IsParamFn &IsParam,
              std::vector<VecAccess> &Out) {
  switch (S->kind()) {
  case NodeKind::StmtSeq:
    for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
      scanStmt(Sub, Iter, IsParam, Out);
    return;
  case NodeKind::VarDef:
    return scanStmt(cast<VarDefNode>(S)->Body, Iter, IsParam, Out);
  case NodeKind::For: {
    auto L = cast<ForNode>(S);
    scanExpr(L->Begin, Iter, IsParam, Out);
    scanExpr(L->End, Iter, IsParam, Out);
    return scanStmt(L->Body, Iter, IsParam, Out);
  }
  case NodeKind::If: {
    auto I = cast<IfNode>(S);
    scanExpr(I->Cond, Iter, IsParam, Out);
    scanStmt(I->Then, Iter, IsParam, Out);
    if (I->Else)
      scanStmt(I->Else, Iter, IsParam, Out);
    return;
  }
  case NodeKind::Store: {
    auto St = cast<StoreNode>(S);
    Out.push_back(
        classifyOne(St->Var, AccessKind::Write, St->Indices, Iter, IsParam));
    for (const Expr &I : St->Indices)
      scanExpr(I, Iter, IsParam, Out);
    scanExpr(St->Value, Iter, IsParam, Out);
    return;
  }
  case NodeKind::ReduceTo: {
    auto R = cast<ReduceToNode>(S);
    Out.push_back(
        classifyOne(R->Var, AccessKind::Reduce, R->Indices, Iter, IsParam));
    for (const Expr &I : R->Indices)
      scanExpr(I, Iter, IsParam, Out);
    scanExpr(R->Value, Iter, IsParam, Out);
    return;
  }
  case NodeKind::GemmCall: {
    // Opaque whole-tensor accesses: the library walks each operand with its
    // own loop structure, which the lane model cannot describe.
    auto G = cast<GemmCallNode>(S);
    for (const std::string &V : {G->A, G->B, G->C}) {
      VecAccess A;
      A.Var = V;
      A.Kind = V == G->C ? AccessKind::Write : AccessKind::Read;
      A.Class = VecAccessClass::Gather;
      Out.push_back(A);
    }
    return;
  }
  default:
    return;
  }
}

const char *depTypeName(DepType T) {
  switch (T) {
  case DepType::RAW:
    return "RAW";
  case DepType::WAR:
    return "WAR";
  case DepType::WAW:
    return "WAW";
  }
  return "?";
}

} // namespace

std::string ft::nameOf(VecAccessClass C) {
  switch (C) {
  case VecAccessClass::Stride1:
    return "stride-1";
  case VecAccessClass::Broadcast:
    return "broadcast";
  case VecAccessClass::Strided:
    return "strided";
  case VecAccessClass::Gather:
    return "gather";
  }
  return "?";
}

bool ft::isValidVectorWidth(int Width) {
  return Width >= 2 && Width <= 64 && (Width & (Width - 1)) == 0;
}

std::optional<VectorReduction> ft::matchVectorReduction(const Ref<ForNode> &L) {
  Stmt B = L->Body;
  while (auto Seq = dyn_cast<StmtSeqNode>(B)) {
    if (Seq->Stmts.size() != 1)
      return std::nullopt;
    B = Seq->Stmts[0];
  }
  auto R = dyn_cast<ReduceToNode>(B);
  if (!R)
    return std::nullopt;
  // The accumulator must name one element for the whole loop: privatizing
  // it per lane is only sound when every iteration reduces into the same
  // location.
  for (const Expr &I : R->Indices)
    if (mentionsVar(I, L->Iter))
      return std::nullopt;
  return VectorReduction{R};
}

std::vector<VecAccess>
ft::classifyVectorAccesses(const Ref<ForNode> &L, const IsParamFn &IsParam) {
  std::vector<VecAccess> Out;
  scanStmt(L->Body, L->Iter, IsParam, Out);
  return Out;
}

VectorLegality ft::analyzeVectorLegality(const DepAnalyzer &DA,
                                         const Ref<ForNode> &L, int Width,
                                         const IsParamFn &IsParam) {
  VectorLegality V;
  V.Accesses = classifyVectorAccesses(L, IsParam);
  std::set<std::string> Stride1;
  for (const VecAccess &A : V.Accesses)
    if (A.Class == VecAccessClass::Stride1)
      Stride1.insert(A.Var);
  V.Stride1Vars.assign(Stride1.begin(), Stride1.end());

  if (!isValidVectorWidth(Width)) {
    V.Reason = "vectorize width must be a power of two in [2, 64], got " +
               std::to_string(Width);
    return V;
  }

  // Ragged segment loops (DESIGN.md §17) never vectorize: the trip count
  // is data (`indptr[i+1] - indptr[i]`), so the fixed-width lane model and
  // its remainder math have no compile-time footing. Rejecting up front
  // gives the schedule audit a precise reason instead of a generic
  // dependence message.
  for (const Expr &Bound : {L->Begin, L->End})
    if (auto RB = raggedBoundOf(Bound)) {
      V.Reason = "cannot vectorize at width " + std::to_string(Width) +
                 ": loop bound is data-dependent (ragged segment bound `" +
                 RB->Tensor + "[...]`); per-row trip counts are only known "
                 "at run time";
      return V;
    }

  auto ClassOf = [&](const std::string &Var) -> std::string {
    for (const VecAccess &A : V.Accesses)
      if (A.Var == Var)
        return nameOf(A.Class);
    return "unknown";
  };

  std::vector<FoundDep> Carried = DA.carriedBy(L->Id);
  if (Carried.empty()) {
    V.Legal = true;
    return V;
  }

  for (const FoundDep &D : Carried) {
    if (D.SameOpReduce)
      continue;
    // A genuine (non-reduction) carried dependence: lanes of one SIMD
    // iteration would execute out of the required order.
    V.Reason = "cannot vectorize at width " + std::to_string(Width) +
               ": loop-carried " + std::string(depTypeName(D.Type)) +
               " dependence on `" + D.Earlier->Var + "` (" +
               ClassOf(D.Earlier->Var) + " access)";
    return V;
  }

  // Every carried dependence is a same-operator reduction. That is only
  // lowerable when the body is the single-accumulator pattern codegen can
  // privatize; otherwise partial sums of distinct statements would merge.
  std::optional<VectorReduction> M = matchVectorReduction(L);
  if (!M) {
    V.Reason = "cannot vectorize at width " + std::to_string(Width) +
               ": loop-carried reduction on `" + Carried.front().Earlier->Var +
               "` does not match the single-accumulator pattern "
               "(body must be exactly one reduction with a loop-invariant "
               "target)";
    return V;
  }
  for (const FoundDep &D : Carried) {
    if (D.Earlier->StmtId != M->Red->Id || D.Later->StmtId != M->Red->Id) {
      V.Reason = "cannot vectorize at width " + std::to_string(Width) +
                 ": carried reduction dependences involve statements besides "
                 "the single accumulator";
      return V;
    }
  }
  V.Legal = true;
  V.Reduction = true;
  return V;
}
