//===- analysis/bounds.h - Symbolic bounds & condition proving ---*- C++ -*-===//
///
/// \file
/// Two services built on the affine engine:
///
///  1. ProofContext — accumulates the iteration domain (loop ranges and
///     branch conditions) during a traversal and proves or refutes
///     conditions within it. Drives the simplifier's branch elimination and
///     separate_tail.
///
///  2. eliminateIters — computes affine lower/upper bounds of an index
///     expression after eliminating inner loop iterators, the analysis the
///     paper's cache transformation uses to size the introduced tensor
///     ("we look for the tightest bound, which is [i, i+m)", §4.2.3).
///
//===----------------------------------------------------------------------===//

#ifndef FT_ANALYSIS_BOUNDS_H
#define FT_ANALYSIS_BOUNDS_H

#include <optional>

#include "analysis/affine.h"
#include "ir/stmt.h"

namespace ft {

/// Accumulates the active iteration domain during a structural walk.
class ProofContext {
public:
  explicit ProofContext(IsParamFn IsParam) : IsParam(std::move(IsParam)) {}

  /// Enters / leaves a loop's range Begin <= Iter < End.
  void pushLoop(const std::string &Iter, const Expr &Begin, const Expr &End);
  void popLoop();

  /// Enters / leaves a branch condition (negated for else-branches).
  void pushCond(const Expr &Cond, bool Negate);
  void popCond();

  /// Returns true if the current domain proves \p Cond always holds.
  bool provablyTrue(const Expr &Cond) const;

  /// Returns true if the current domain proves \p Cond never holds.
  bool provablyFalse(const Expr &Cond) const;

  /// Returns true if the current domain is provably unreachable.
  bool unreachable() const;

  /// The accumulated domain.
  const AffineSet &domain() const { return Domain; }

private:
  struct Frame {
    size_t NumConstraints;
    bool WasExact;
  };

  void pushFrame();
  void popFrame();

  IsParamFn IsParam;
  AffineSet Domain;
  std::vector<Frame> Frames;
};

/// An inclusive affine interval.
struct BoundPair {
  LinearExpr Lower;
  LinearExpr Upper;
};

/// A loop axis for bound elimination: iterator plus its range.
struct IterRange {
  std::string Iter;
  Expr Begin, End;
};

/// Replaces each iterator of \p Inner (given outermost first) appearing in
/// \p E with its extreme loop-bound value, yielding bounds of E over the
/// remaining variables. Returns nullopt if any needed bound is non-affine.
std::optional<BoundPair>
eliminateIters(const LinearExpr &E, const std::vector<IterRange> &Inner,
               const IsParamFn &IsParam);

/// Converts an affine expression back to IR ("$name" variables become
/// scalar Loads, others become iterator Vars).
Expr linearToExpr(const LinearExpr &E);

} // namespace ft

#endif // FT_ANALYSIS_BOUNDS_H
