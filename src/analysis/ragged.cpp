//===- analysis/ragged.cpp ------------------------------------------------===//

#include "analysis/ragged.h"

#include <algorithm>

#include "analysis/extents.h"
#include "ir/visitor.h"

using namespace ft;

std::optional<RaggedBound> ft::raggedBoundOf(const Expr &Bound) {
  Expr E = Bound;
  while (E && E->kind() == NodeKind::Cast)
    E = cast<CastNode>(E)->Operand;
  if (!E || E->kind() != NodeKind::Load)
    return std::nullopt;
  auto L = cast<LoadNode>(E);
  if (L->Indices.size() != 1)
    return std::nullopt;
  return RaggedBound{L->Var, L->Indices[0]};
}

bool RaggedInfo::isRaggedExtent(const std::string &Name) const {
  return std::binary_search(RaggedExtents.begin(), RaggedExtents.end(), Name);
}

namespace {

/// Walks one function body collecting segment loops and ragged sizes.
class RaggedAnalyzer : public Visitor {
public:
  RaggedInfo Info;

  void finalize() {
    std::set<std::string> Extents;
    for (const auto &[Param, Dims] : Info.RaggedDims) {
      auto It = Shapes.find(Param);
      if (It == Shapes.end())
        continue;
      for (int D : Dims) {
        if (D >= static_cast<int>(It->second.size()))
          continue;
        for (const std::string &N : scalarLoadsOf(It->second[D]))
          Extents.insert(N);
      }
    }
    Info.RaggedExtents.assign(Extents.begin(), Extents.end());
    Info.IndexTensors.assign(IndexSet.begin(), IndexSet.end());
  }

protected:
  void visit(const VarDefNode *S) override {
    Defs[S->Name] = S;
    // Shapes outlives the scope stack: finalize() reads it after the walk.
    Shapes[S->Name] = S->Info.Shape;
    Visitor::visit(S);
    Defs.erase(S->Name);
  }

  void visit(const ForNode *S) override {
    (*this)(S->Begin);
    (*this)(S->End);
    std::string Tensor;
    for (const Expr &B : {S->Begin, S->End})
      if (auto RB = raggedBoundOf(B); RB && isIndexTensor(RB->Tensor))
        Tensor = RB->Tensor;
    if (!Tensor.empty()) {
      Info.Loops.push_back({S->Id, S->Iter, Tensor});
      IndexSet.insert(Tensor);
      SegIters[S->Iter] = Tensor;
      (*this)(S->Body);
      SegIters.erase(S->Iter);
      return;
    }
    (*this)(S->Body);
  }

  void visit(const LoadNode *E) override {
    noteAccess(E->Var, E->Indices);
    Visitor::visit(E);
  }

  void visit(const StoreNode *S) override {
    noteAccess(S->Var, S->Indices);
    Visitor::visit(S);
  }

  void visit(const ReduceToNode *S) override {
    noteAccess(S->Var, S->Indices);
    Visitor::visit(S);
  }

private:
  bool isIndexTensor(const std::string &Name) const {
    auto It = Defs.find(Name);
    return It != Defs.end() && It->second->ATy == AccessType::Input &&
           It->second->Info.Shape.size() == 1 &&
           isInt(It->second->Info.Dtype);
  }

  bool isParam(const std::string &Name) const {
    auto It = Defs.find(Name);
    return It != Defs.end() && It->second->ATy != AccessType::Cache;
  }

  /// The variable an index expression reduces to, if it is an iterator up
  /// to the frontend's `0 + idx` offset wrapping and integer casts.
  static const VarNode *bareVarOf(const Expr &E) {
    Expr Cur = E;
    for (;;) {
      if (!Cur)
        return nullptr;
      if (Cur->kind() == NodeKind::Cast) {
        Cur = cast<CastNode>(Cur)->Operand;
        continue;
      }
      if (Cur->kind() == NodeKind::Binary) {
        auto A = cast<BinaryNode>(Cur);
        if (A->Op != BinOpKind::Add)
          return nullptr;
        if (auto L = dyn_cast<IntConstNode>(A->LHS); L && L->Val == 0) {
          Cur = A->RHS;
          continue;
        }
        if (auto R = dyn_cast<IntConstNode>(A->RHS); R && R->Val == 0) {
          Cur = A->LHS;
          continue;
        }
        return nullptr;
      }
      return Cur->kind() == NodeKind::Var ? cast<VarNode>(Cur).get() : nullptr;
    }
  }

  /// A dimension addressed by the *bare* iterator of a segment loop is
  /// ragged-sized; its leading-dim tensors bound the index tensor's values.
  void noteAccess(const std::string &Var, const std::vector<Expr> &Indices) {
    if (!isParam(Var))
      return;
    for (size_t D = 0; D < Indices.size(); ++D) {
      const VarNode *I = bareVarOf(Indices[D]);
      if (!I)
        continue;
      auto It = SegIters.find(I->Name);
      if (It == SegIters.end())
        continue;
      Info.RaggedDims[Var].insert(static_cast<int>(D));
      if (D == 0)
        Info.BoundedParams[It->second].insert(Var);
    }
  }

  std::map<std::string, const VarDefNode *> Defs;
  std::map<std::string, std::vector<Expr>> Shapes;
  std::map<std::string, std::string> SegIters; ///< iterator -> index tensor.
  std::set<std::string> IndexSet;
};

} // namespace

RaggedInfo ft::analyzeRagged(const Func &F) {
  RaggedAnalyzer A;
  A(F.Body);
  A.finalize();
  return A.Info;
}

Status ft::checkIndptrArgs(const RaggedInfo &RI,
                           const std::map<std::string, Buffer *> &Args) {
  for (const std::string &T : RI.IndexTensors) {
    auto It = Args.find(T);
    if (It == Args.end() || It->second == nullptr)
      return Status::error("index tensor `" + T + "` is not bound");
    const Buffer &B = *It->second;
    if (B.shape().size() != 1 || !isInt(B.dtype()))
      return Status::error("index tensor `" + T +
                           "` must be a 1-D integer tensor");
    int64_t N = B.shape()[0];
    if (N > 0 && B.getI(0) < 0)
      return Status::error("index tensor `" + T + "` starts below zero (" +
                           std::to_string(B.getI(0)) +
                           "); segment offsets must be >= 0");
    for (int64_t I = 0; I + 1 < N; ++I)
      if (B.getI(I) > B.getI(I + 1))
        return Status::error(
            "index tensor `" + T + "` is not monotonically non-decreasing: " +
            T + "[" + std::to_string(I) + "]=" + std::to_string(B.getI(I)) +
            " > " + T + "[" + std::to_string(I + 1) +
            "]=" + std::to_string(B.getI(I + 1)));
    if (N == 0)
      continue;
    int64_t Last = B.getI(N - 1);
    auto BP = RI.BoundedParams.find(T);
    if (BP == RI.BoundedParams.end())
      continue;
    for (const std::string &P : BP->second) {
      auto AIt = Args.find(P);
      if (AIt == Args.end() || AIt->second == nullptr ||
          AIt->second->shape().empty())
        continue; // Unbound / rank errors are validateArgs's findings.
      int64_t Extent = AIt->second->shape()[0];
      if (Last > Extent)
        return Status::error("index tensor `" + T + "` ends at " +
                             std::to_string(Last) +
                             ", past the leading extent " +
                             std::to_string(Extent) + " of `" + P +
                             "` it indexes");
    }
  }
  return Status::success();
}

Status ft::checkIndptrArgs(const Func &F,
                           const std::map<std::string, Buffer *> &Args) {
  return checkIndptrArgs(analyzeRagged(F), Args);
}
