//===- analysis/bounds.cpp ------------------------------------------------===//

#include "analysis/bounds.h"

using namespace ft;

void ProofContext::pushFrame() {
  Frames.push_back({Domain.constraints().size(), Domain.isExact()});
}

void ProofContext::popFrame() {
  ftAssert(!Frames.empty(), "ProofContext pop without push");
  Frame F = Frames.back();
  Frames.pop_back();
  AffineSet Restored;
  for (size_t I = 0; I < F.NumConstraints; ++I) {
    const LinConstraint &C = Domain.constraints()[I];
    if (C.IsEq)
      Restored.addEq0(C.E);
    else
      Restored.addGe0(C.E);
  }
  if (!F.WasExact)
    Restored.markInexact();
  Domain = std::move(Restored);
}

void ProofContext::pushLoop(const std::string &Iter, const Expr &Begin,
                            const Expr &End) {
  pushFrame();
  LinearExpr IterVar = LinearExpr::variable(Iter);
  if (auto B = toLinear(Begin, IsParam))
    Domain.addLE(*B, IterVar);
  else
    Domain.markInexact();
  if (auto E = toLinear(End, IsParam))
    Domain.addLT(IterVar, *E);
  else
    Domain.markInexact();
}

void ProofContext::popLoop() { popFrame(); }

void ProofContext::pushCond(const Expr &Cond, bool Negate) {
  pushFrame();
  addCondConstraints(Domain, Cond, Negate, IsParam);
}

void ProofContext::popCond() { popFrame(); }

bool ProofContext::provablyTrue(const Expr &Cond) const {
  AffineSet S = Domain;
  // Domain ∧ ¬Cond empty ⇒ Cond holds everywhere in Domain. When the
  // negation cannot be represented exactly we only *drop* constraints
  // (over-approximating the set), so emptiness remains a sound proof —
  // except when nothing at all was contributed; detect that by requiring
  // the check below to rely on added constraints only if exact. In
  // practice an inexact negation simply fails to prove.
  addCondConstraints(S, Cond, /*Negate=*/true, IsParam);
  return S.isEmpty();
}

bool ProofContext::provablyFalse(const Expr &Cond) const {
  AffineSet S = Domain;
  addCondConstraints(S, Cond, /*Negate=*/false, IsParam);
  return S.isEmpty();
}

bool ProofContext::unreachable() const { return Domain.isEmpty(); }

std::optional<BoundPair>
ft::eliminateIters(const LinearExpr &E, const std::vector<IterRange> &Inner,
                   const IsParamFn &IsParam) {
  BoundPair Out{E, E};
  // Innermost first: inner loop bounds may reference outer iterators of the
  // same set, which are eliminated later.
  for (auto It = Inner.rbegin(); It != Inner.rend(); ++It) {
    auto SubstOne = [&](LinearExpr &Dst, bool WantLower) -> bool {
      int64_t C = Dst.coeffOf(It->Iter);
      if (C == 0)
        return true;
      // Positive coefficient: the expression is minimized at Begin and
      // maximized at End-1; negative coefficient swaps them.
      bool UseBegin = (C > 0) == WantLower;
      auto Bound = toLinear(UseBegin ? It->Begin : It->End, IsParam);
      if (!Bound)
        return false;
      if (!UseBegin)
        Bound->addConst(-1); // End is exclusive.
      auto R = Dst.substitute(It->Iter, *Bound);
      if (!R)
        return false;
      Dst = *R;
      return true;
    };
    if (!SubstOne(Out.Lower, /*WantLower=*/true) ||
        !SubstOne(Out.Upper, /*WantLower=*/false))
      return std::nullopt;
  }
  return Out;
}

Expr ft::linearToExpr(const LinearExpr &E) {
  Expr Out;
  auto Accumulate = [&](Expr Term) {
    Out = Out ? makeAdd(Out, std::move(Term)) : std::move(Term);
  };
  for (const auto &[Name, C] : E.coeffs()) {
    Expr V = Name.starts_with("$")
                 ? makeLoad(Name.substr(1), {}, DataType::Int64)
                 : makeVar(Name);
    Accumulate(C == 1 ? V : makeMul(makeIntConst(C), V));
  }
  if (E.constTerm() != 0 || !Out)
    Accumulate(makeIntConst(E.constTerm()));
  return Out;
}
