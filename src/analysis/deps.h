//===- analysis/deps.h - Instance-wise dependence analysis -------*- C++ -*-===//
///
/// \file
/// The dependence analysis at the core of every schedule legality check
/// (paper §4.2). Access pairs are tested for may-dependence at
/// instance-of-statement precision: the pair's iteration domains, the
/// equality of their (affine) index expressions, the stack-scope filtering
/// of Fig. 12(d), and a caller-supplied per-loop iteration relation are all
/// encoded as one AffineSet whose emptiness proves independence.
///
/// The analysis is conservative: anything it cannot express (indirect
/// indices like `e[adj[i, j]]`, non-affine bounds, disjunctive conditions)
/// weakens constraints, so a dependence is only ever reported *absent* when
/// that is proved.
///
//===----------------------------------------------------------------------===//

#ifndef FT_ANALYSIS_DEPS_H
#define FT_ANALYSIS_DEPS_H

#include <map>
#include <optional>

#include "analysis/access.h"
#include "math/affine_set.h"

namespace ft {

/// Required relation between the earlier access's iteration p and the later
/// access's iteration q of one common loop.
enum class IterRel : uint8_t {
  Any, ///< Unconstrained.
  Eq,  ///< p == q.
  Lt,  ///< p < q (the dependence crosses the loop forward).
  Gt,  ///< p > q (backward; kills "earlier happens first").
};

/// Classification of a found dependence (later depends on earlier).
enum class DepType : uint8_t { RAW, WAR, WAW };

/// One may-dependence found by a query.
struct FoundDep {
  const AccessPoint *Earlier = nullptr;
  const AccessPoint *Later = nullptr;
  DepType Type = DepType::RAW;

  /// True if both endpoints are ReduceTo with the same operator — such
  /// dependences are reorderable (commutativity, paper Fig. 12(c)) and
  /// parallelizable via reduction/atomics (Fig. 13(d)(e)).
  bool SameOpReduce = false;
};

/// Per-loop relation pattern keyed by For statement ID. Loops not listed
/// default to IterRel::Any.
using RelMap = std::map<int64_t, IterRel>;

/// Dependence analysis over one program snapshot. Build it once per AST
/// version; it caches the access collection, buckets accesses per tensor
/// (queries only ever pair accesses of one tensor), and lazily caches each
/// access point's domain constraints so buildPairSet only adds the
/// pair-specific constraints on top.
class DepAnalyzer {
public:
  explicit DepAnalyzer(const Stmt &Root);

  const AccessCollection &accesses() const { return AC; }

  /// Tests whether a dependence from \p E (earlier) to \p L (later) may
  /// exist under the per-loop relations \p Rels. Returns false only when
  /// independence (or impossibility of the ordering) is proved.
  bool mayDepend(const AccessPoint &E, const AccessPoint &L,
                 const RelMap &Rels) const;

  /// Builds the conjunction of both accesses' iteration domains, the
  /// stack-scope equalities, the index equalities, and \p Rels. Iterators
  /// of \p E are renamed "p.<iter>", of \p L "q.<iter>". Exposed so
  /// schedules (e.g. fuse) can add custom constraints before testing.
  AffineSet buildPairSet(const AccessPoint &E, const AccessPoint &L,
                         const RelMap &Rels) const;

  /// Checks whether "E executes before L" is consistent with \p Rels
  /// (lexicographic order over common loops; textual order plus the
  /// reads-before-writes phase rule when all common loops are equal).
  bool orderingPossible(const AccessPoint &E, const AccessPoint &L,
                        const RelMap &Rels) const;

  /// Returns the common enclosing loops of two accesses (outermost first).
  static std::vector<LoopAxis> commonLoops(const AccessPoint &A,
                                           const AccessPoint &B);

  /// All may-dependences carried by the loop with ID \p LoopId: both
  /// accesses inside the loop, common outer loops at equal iterations, and
  /// the carrying loop's iterations strictly ordered.
  std::vector<FoundDep> carriedBy(int64_t LoopId) const;

  /// All may-dependences between an access inside statement \p AId and one
  /// inside statement \p BId, at equal iterations of all common loops
  /// (used by swap; textual order decides direction).
  std::vector<FoundDep> betweenAtEqualIters(int64_t AId, int64_t BId) const;

  /// Classifies a pair (assumes at least one endpoint writes).
  static DepType classify(const AccessPoint &E, const AccessPoint &L);

  /// True if both are ReduceTo with the same operator.
  static bool sameOpReducePair(const AccessPoint &E, const AccessPoint &L);

private:
  bool addDomain(AffineSet &S, const AccessPoint &P,
                 const std::string &Prefix) const;

  /// Appends \p P's iteration-domain constraints (renamed with the earlier
  /// "p." or later "q." prefix) to \p S, serving them from the per-point
  /// cache when \p P belongs to this analyzer's collection.
  void appendDomain(AffineSet &S, const AccessPoint &P, bool Later) const;

  /// Index of \p P in AC.Points, or nullopt for foreign points.
  std::optional<size_t> indexOf(const AccessPoint &P) const;

  AccessCollection AC;
  /// Lazily filled domain constraint sets, one slot per access point, for
  /// the "p." (earlier) and "q." (later) renamings.
  mutable std::vector<std::optional<AffineSet>> DomEarlier, DomLater;
};

} // namespace ft

#endif // FT_ANALYSIS_DEPS_H
