//===- analysis/affine.h - IR -> affine form extraction ----------*- C++ -*-===//
///
/// \file
/// Bridges the IR to the Presburger-lite engine: converts index expressions,
/// loop bounds and branch conditions into LinearExpr / AffineSet form where
/// possible. Loop iterators map to variables named after the iterator;
/// read-only scalar tensors (shape parameters like `n`) map to variables
/// named "$<name>". Anything else is non-affine and callers degrade
/// conservatively.
///
//===----------------------------------------------------------------------===//

#ifndef FT_ANALYSIS_AFFINE_H
#define FT_ANALYSIS_AFFINE_H

#include <functional>
#include <optional>

#include "ir/expr.h"
#include "math/affine_set.h"

namespace ft {

/// Tells toLinear which Load targets may be treated as symbolic constants:
/// returns true for tensors that are never written (AccessType Input).
using IsParamFn = std::function<bool(const std::string &)>;

/// Converts \p E to an affine expression over iterator variables and "$name"
/// parameters. Returns nullopt if \p E is not affine.
std::optional<LinearExpr> toLinear(const Expr &E, const IsParamFn &IsParam);

/// Adds the constraints of the boolean expression \p Cond (negated if
/// \p Negate) to \p S. Conjunctions decompose exactly; conditions that
/// cannot be represented exactly (disjunctions in positive position,
/// non-affine atoms) mark \p S inexact and add nothing, which over-
/// approximates the set — the safe direction for all clients.
void addCondConstraints(AffineSet &S, const Expr &Cond, bool Negate,
                        const IsParamFn &IsParam);

/// Renames every variable of \p E that appears in \p Iters by prefixing it
/// with \p Prefix ("$params" are shared and left untouched).
LinearExpr renameIters(const LinearExpr &E, const std::string &Prefix,
                       const std::vector<std::string> &Iters);

} // namespace ft

#endif // FT_ANALYSIS_AFFINE_H
