//===- analysis/access.cpp ------------------------------------------------===//

#include "analysis/access.h"

#include <algorithm>

#include "ir/visitor.h"

using namespace ft;

bool AccessPoint::isInside(int64_t Id) const {
  return std::find(EnclosingStmts.begin(), EnclosingStmts.end(), Id) !=
         EnclosingStmts.end();
}

bool AccessPoint::isInsideLoop(int64_t Id) const {
  for (const LoopAxis &L : Loops)
    if (L.ForId == Id)
      return true;
  return false;
}

const std::vector<size_t> &
AccessCollection::pointsOf(const std::string &Var) const {
  static const std::vector<size_t> None;
  auto It = ByVar.find(Var);
  return It == ByVar.end() ? None : It->second;
}

void AccessCollection::buildIndex() {
  ByVar.clear();
  for (size_t I = 0; I < Points.size(); ++I)
    ByVar[Points[I].Var].push_back(I);
}

bool AccessCollection::isParam(const std::string &Name) const {
  auto It = Defs.find(Name);
  if (It == Defs.end())
    return false;
  const VarDefNode *D = It->second.get();
  return D->ATy == AccessType::Input && D->Info.Shape.empty() &&
         isInt(D->Info.Dtype);
}

namespace {

/// Collects accesses with full context. Works on shared handles (not the
/// raw-pointer Visitor) because AccessPoints keep Expr references.
class AccessCollector {
public:
  AccessCollection run(const Stmt &Root) {
    // Pre-pass: record all VarDefs so reads of shape parameters are
    // classified correctly even before their use site is reached.
    collectDefs(Root);
    visitStmt(Root);
    return std::move(Out);
  }

private:
  void collectDefs(const Stmt &S) {
    switch (S->kind()) {
    case NodeKind::StmtSeq:
      for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
        collectDefs(Sub);
      return;
    case NodeKind::VarDef: {
      auto D = cast<VarDefNode>(S);
      Out.Defs[D->Name] = D;
      collectDefs(D->Body);
      return;
    }
    case NodeKind::For:
      collectDefs(cast<ForNode>(S)->Body);
      return;
    case NodeKind::If: {
      auto I = cast<IfNode>(S);
      collectDefs(I->Then);
      if (I->Else)
        collectDefs(I->Else);
      return;
    }
    default:
      return;
    }
  }

  AccessPoint baseline(int64_t StmtId, int Phase) const {
    AccessPoint P;
    P.StmtId = StmtId;
    P.Seq = Seq;
    P.Phase = Phase;
    P.Loops = LoopStack;
    P.Conds = CondStack;
    P.EnclosingStmts = StmtStack;
    return P;
  }

  void finishPoint(AccessPoint P, const std::string &Var) {
    P.Var = Var;
    auto It = ScopeDepthOf.find(Var);
    // Tensors without a visible VarDef (free names in tests) scope at the
    // root: no enclosing loop creates fresh instances.
    P.ScopeDepth = It == ScopeDepthOf.end() ? 0 : It->second;
    Out.Points.push_back(std::move(P));
  }

  /// Records all Loads inside \p E as reads belonging to statement
  /// \p StmtId.
  void collectReads(const Expr &E, int64_t StmtId) {
    switch (E->kind()) {
    case NodeKind::Load: {
      auto L = cast<LoadNode>(E);
      for (const Expr &I : L->Indices)
        collectReads(I, StmtId);
      AccessPoint P = baseline(StmtId, /*Phase=*/0);
      P.Kind = AccessKind::Read;
      P.Indices = L->Indices;
      finishPoint(std::move(P), L->Var);
      return;
    }
    case NodeKind::Binary: {
      auto B = cast<BinaryNode>(E);
      collectReads(B->LHS, StmtId);
      collectReads(B->RHS, StmtId);
      return;
    }
    case NodeKind::Unary:
      collectReads(cast<UnaryNode>(E)->Operand, StmtId);
      return;
    case NodeKind::IfExpr: {
      auto IE = cast<IfExprNode>(E);
      collectReads(IE->Cond, StmtId);
      collectReads(IE->Then, StmtId);
      collectReads(IE->Else, StmtId);
      return;
    }
    case NodeKind::Cast:
      collectReads(cast<CastNode>(E)->Operand, StmtId);
      return;
    default:
      return;
    }
  }

  void visitStmt(const Stmt &S) {
    ++Seq;
    StmtStack.push_back(S->Id);
    switch (S->kind()) {
    case NodeKind::StmtSeq:
      for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
        visitStmt(Sub);
      break;
    case NodeKind::VarDef: {
      auto D = cast<VarDefNode>(S);
      for (const Expr &Dim : D->Info.Shape)
        collectReads(Dim, S->Id);
      int Saved = -1;
      auto It = ScopeDepthOf.find(D->Name);
      if (It != ScopeDepthOf.end())
        Saved = It->second;
      ScopeDepthOf[D->Name] = static_cast<int>(LoopStack.size());
      visitStmt(D->Body);
      if (Saved >= 0)
        ScopeDepthOf[D->Name] = Saved;
      else
        ScopeDepthOf.erase(D->Name);
      break;
    }
    case NodeKind::Store: {
      auto St = cast<StoreNode>(S);
      for (const Expr &I : St->Indices)
        collectReads(I, S->Id);
      collectReads(St->Value, S->Id);
      AccessPoint P = baseline(S->Id, /*Phase=*/1);
      P.Kind = AccessKind::Write;
      P.Indices = St->Indices;
      finishPoint(std::move(P), St->Var);
      break;
    }
    case NodeKind::ReduceTo: {
      auto R = cast<ReduceToNode>(S);
      for (const Expr &I : R->Indices)
        collectReads(I, S->Id);
      collectReads(R->Value, S->Id);
      AccessPoint P = baseline(S->Id, /*Phase=*/1);
      P.Kind = AccessKind::Reduce;
      P.RedOp = R->Op;
      P.Indices = R->Indices;
      finishPoint(std::move(P), R->Var);
      break;
    }
    case NodeKind::For: {
      auto F = cast<ForNode>(S);
      collectReads(F->Begin, S->Id);
      collectReads(F->End, S->Id);
      for (const LoopAxis &L : LoopStack)
        ftAssert(L.Iter != F->Iter,
                 "shadowed loop iterator in dependence analysis: " + F->Iter);
      LoopStack.push_back(
          {F->Iter, F->Begin, F->End, F->Id, F->Property.Parallel});
      visitStmt(F->Body);
      LoopStack.pop_back();
      break;
    }
    case NodeKind::If: {
      auto I = cast<IfNode>(S);
      collectReads(I->Cond, S->Id);
      CondStack.push_back(I->Cond);
      visitStmt(I->Then);
      CondStack.pop_back();
      if (I->Else) {
        CondStack.push_back(makeLNot(I->Cond));
        visitStmt(I->Else);
        CondStack.pop_back();
      }
      break;
    }
    case NodeKind::GemmCall: {
      auto G = cast<GemmCallNode>(S);
      for (const std::string &In : {G->A, G->B}) {
        AccessPoint P = baseline(S->Id, /*Phase=*/0);
        P.Kind = AccessKind::Read;
        P.WholeTensor = true;
        finishPoint(std::move(P), In);
      }
      AccessPoint P = baseline(S->Id, /*Phase=*/1);
      P.Kind = AccessKind::Reduce;
      P.RedOp = ReduceOpKind::Add;
      P.WholeTensor = true;
      finishPoint(std::move(P), G->C);
      break;
    }
    default:
      ftUnreachable("expression kind in statement traversal");
    }
    StmtStack.pop_back();
  }

  AccessCollection Out;
  std::vector<LoopAxis> LoopStack;
  std::vector<Expr> CondStack;
  std::vector<int64_t> StmtStack;
  std::map<std::string, int> ScopeDepthOf;
  int64_t Seq = 0;
};

} // namespace

AccessCollection ft::collectAccesses(const Stmt &Root) {
  AccessCollection AC = AccessCollector().run(Root);
  AC.buildIndex();
  return AC;
}
