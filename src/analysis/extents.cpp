//===- analysis/extents.cpp -----------------------------------------------===//

#include "analysis/extents.h"

#include <algorithm>
#include <set>

#include "ir/ast.h"

using namespace ft;

namespace {

/// Collects names loaded with an empty index list (0-D scalar reads) into
/// \p Out — the only way an extent parameter can appear in a shape.
void collectScalarLoads(const Expr &E, std::set<std::string> &Out) {
  if (!E)
    return;
  switch (E->kind()) {
  case NodeKind::Load: {
    auto L = cast<LoadNode>(E);
    if (L->Indices.empty())
      Out.insert(L->Var);
    for (const Expr &I : L->Indices)
      collectScalarLoads(I, Out);
    return;
  }
  case NodeKind::Binary: {
    auto B = cast<BinaryNode>(E);
    collectScalarLoads(B->LHS, Out);
    collectScalarLoads(B->RHS, Out);
    return;
  }
  case NodeKind::Unary:
    collectScalarLoads(cast<UnaryNode>(E)->Operand, Out);
    return;
  case NodeKind::Cast:
    collectScalarLoads(cast<CastNode>(E)->Operand, Out);
    return;
  case NodeKind::IfExpr: {
    auto I = cast<IfExprNode>(E);
    collectScalarLoads(I->Cond, Out);
    collectScalarLoads(I->Then, Out);
    collectScalarLoads(I->Else, Out);
    return;
  }
  default:
    return;
  }
}

/// Walks every shape expression, loop bound, and gemm extent in \p S.
void collectExtentUses(const Stmt &S, std::set<std::string> &Out) {
  if (!S)
    return;
  switch (S->kind()) {
  case NodeKind::StmtSeq:
    for (const Stmt &C : cast<StmtSeqNode>(S)->Stmts)
      collectExtentUses(C, Out);
    return;
  case NodeKind::VarDef: {
    auto D = cast<VarDefNode>(S);
    for (const Expr &Dim : D->Info.Shape)
      collectScalarLoads(Dim, Out);
    collectExtentUses(D->Body, Out);
    return;
  }
  case NodeKind::For: {
    auto F = cast<ForNode>(S);
    collectScalarLoads(F->Begin, Out);
    collectScalarLoads(F->End, Out);
    collectExtentUses(F->Body, Out);
    return;
  }
  case NodeKind::If: {
    auto I = cast<IfNode>(S);
    collectExtentUses(I->Then, Out);
    collectExtentUses(I->Else, Out);
    return;
  }
  case NodeKind::GemmCall: {
    auto G = cast<GemmCallNode>(S);
    collectScalarLoads(G->M, Out);
    collectScalarLoads(G->N, Out);
    collectScalarLoads(G->K, Out);
    return;
  }
  default:
    return;
  }
}

} // namespace

bool ExtentSpec::contains(const std::string &Name) const {
  return std::binary_search(Params.begin(), Params.end(), Name);
}

std::vector<std::string> ft::scalarLoadsOf(const Expr &E) {
  std::set<std::string> Out;
  collectScalarLoads(E, Out);
  return {Out.begin(), Out.end()};
}

ExtentSpec ft::extentParamsOf(const Func &F) {
  std::set<std::string> Used;
  collectExtentUses(F.Body, Used);

  ExtentSpec Spec;
  for (const std::string &P : F.Params) {
    if (!Used.count(P))
      continue;
    auto D = findVarDef(F.Body, P);
    if (!D || D->ATy == AccessType::Cache)
      continue;
    if (!D->Info.Shape.empty() || !isInt(D->Info.Dtype))
      continue;
    Spec.Params.push_back(P);
  }
  std::sort(Spec.Params.begin(), Spec.Params.end());
  return Spec;
}

std::optional<int64_t>
ft::evalExtentExpr(const Expr &E,
                   const std::map<std::string, int64_t> &Bindings) {
  if (!E)
    return std::nullopt;
  switch (E->kind()) {
  case NodeKind::IntConst:
    return cast<IntConstNode>(E)->Val;
  case NodeKind::Load: {
    auto L = cast<LoadNode>(E);
    if (!L->Indices.empty())
      return std::nullopt;
    auto It = Bindings.find(L->Var);
    if (It == Bindings.end())
      return std::nullopt;
    return It->second;
  }
  case NodeKind::Binary: {
    auto B = cast<BinaryNode>(E);
    auto L = evalExtentExpr(B->LHS, Bindings);
    auto R = evalExtentExpr(B->RHS, Bindings);
    if (!L || !R)
      return std::nullopt;
    switch (B->Op) {
    case BinOpKind::Add:
      return *L + *R;
    case BinOpKind::Sub:
      return *L - *R;
    case BinOpKind::Mul:
      return *L * *R;
    case BinOpKind::FloorDiv: {
      if (*R == 0)
        return std::nullopt;
      int64_t Q = *L / *R;
      if ((*L % *R != 0) && ((*L < 0) != (*R < 0)))
        --Q;
      return Q;
    }
    case BinOpKind::Mod: {
      if (*R == 0)
        return std::nullopt;
      int64_t M = *L % *R;
      if (M != 0 && ((M < 0) != (*R < 0)))
        M += *R;
      return M;
    }
    case BinOpKind::Min:
      return std::min(*L, *R);
    case BinOpKind::Max:
      return std::max(*L, *R);
    default:
      return std::nullopt;
    }
  }
  case NodeKind::Unary: {
    auto U = cast<UnaryNode>(E);
    if (U->Op != UnOpKind::Neg)
      return std::nullopt;
    auto V = evalExtentExpr(U->Operand, Bindings);
    return V ? std::optional<int64_t>(-*V) : std::nullopt;
  }
  case NodeKind::Cast: {
    auto C = cast<CastNode>(E);
    if (!isInt(C->Dtype))
      return std::nullopt;
    return evalExtentExpr(C->Operand, Bindings);
  }
  default:
    return std::nullopt;
  }
}

Status ft::bindExtentArgs(const ExtentSpec &Spec,
                          const std::map<std::string, Buffer *> &Args,
                          std::map<std::string, int64_t> &Out) {
  for (const std::string &Name : Spec.Params) {
    auto It = Args.find(Name);
    if (It == Args.end() || It->second == nullptr)
      return Status::error("missing extent argument `" + Name + "`");
    const Buffer &B = *It->second;
    if (!B.shape().empty())
      return Status::error("extent argument `" + Name +
                           "` must be a 0-D scalar, got rank " +
                           std::to_string(B.shape().size()));
    if (!isInt(B.dtype()))
      return Status::error("extent argument `" + Name +
                           "` must be an integer scalar");
    Out[Name] = B.getI(0);
  }
  return Status::success();
}

Status ft::checkExtentArgs(const Func &F, const ExtentSpec &Spec,
                           const std::map<std::string, Buffer *> &Args) {
  if (Spec.empty())
    return Status::success();
  std::map<std::string, int64_t> Bindings;
  if (Status S = bindExtentArgs(Spec, Args, Bindings); !S.ok())
    return S;
  for (const auto &[Name, Val] : Bindings)
    if (Val < 1)
      return Status::error("extent argument `" + Name +
                           "` must be >= 1, got " + std::to_string(Val));
  for (const std::string &P : F.Params) {
    auto It = Args.find(P);
    if (It == Args.end() || It->second == nullptr)
      continue; // the caller's presence check owns this error
    auto D = findVarDef(F.Body, P);
    if (!D)
      continue;
    const Buffer &B = *It->second;
    if (B.shape().size() != D->Info.Shape.size())
      continue; // the caller's rank check owns this error
    for (size_t Dim = 0; Dim < D->Info.Shape.size(); ++Dim) {
      if (isa<IntConstNode>(D->Info.Shape[Dim]))
        continue; // constant extents are the caller's check
      auto Want = evalExtentExpr(D->Info.Shape[Dim], Bindings);
      if (Want && B.shape()[Dim] != *Want)
        return Status::error(
            "shape mismatch for argument `" + P + "` in dimension " +
            std::to_string(Dim) + ": got " + std::to_string(B.shape()[Dim]) +
            ", want " + std::to_string(*Want) +
            " (from the bound extent arguments)");
    }
  }
  return Status::success();
}
