//===- analysis/access.h - Memory access collection --------------*- C++ -*-===//
///
/// \file
/// Collects every memory access (read / write / reduction) in a program
/// together with its full execution context: the enclosing loop nest,
/// enclosing branch conditions, the position of the VarDef that scopes the
/// accessed tensor, and a preorder sequence number for textual ordering.
/// This is the instance-of-statement-wise precision the paper requires
/// (§4.2: "an instance of a statement refers to a statement in a specific
/// loop iteration").
///
//===----------------------------------------------------------------------===//

#ifndef FT_ANALYSIS_ACCESS_H
#define FT_ANALYSIS_ACCESS_H

#include <map>
#include <vector>

#include "ir/func.h"

namespace ft {

/// One level of the enclosing loop nest.
struct LoopAxis {
  std::string Iter;
  Expr Begin, End;
  int64_t ForId = -1;
  bool Parallel = false;
};

/// How an access touches memory.
enum class AccessKind : uint8_t {
  Read,
  Write,
  Reduce, ///< Read-modify-write by a commutative ReduceTo.
};

/// One memory access with its execution context.
struct AccessPoint {
  AccessKind Kind = AccessKind::Read;
  ReduceOpKind RedOp = ReduceOpKind::Add; ///< Valid when Kind == Reduce.
  std::string Var;                        ///< Accessed tensor.
  int64_t StmtId = -1;  ///< Enclosing Store/ReduceTo/If/For/GemmCall ID.
  int64_t Seq = 0;      ///< Preorder sequence number (textual order).
  int Phase = 0;        ///< 0 = read side, 1 = write side of a statement.
  bool WholeTensor = false; ///< True for opaque accesses (GemmCall).
  std::vector<Expr> Indices;
  std::vector<LoopAxis> Loops; ///< Enclosing loops, outermost first.
  std::vector<Expr> Conds;     ///< Enclosing conditions (polarity folded).
  /// Number of leading entries of Loops that enclose the tensor's VarDef
  /// (dependences across their iterations are false: each iteration has a
  /// fresh tensor instance — paper Fig. 12(d)).
  int ScopeDepth = 0;
  /// IDs of all enclosing statements (innermost last), used to restrict
  /// queries to a subtree.
  std::vector<int64_t> EnclosingStmts;

  /// Returns true if this access is (transitively) inside statement \p Id.
  bool isInside(int64_t Id) const;

  /// Returns true if this access is inside the loop with ID \p Id.
  bool isInsideLoop(int64_t Id) const;
};

/// All accesses of a program plus tensor metadata.
struct AccessCollection {
  std::vector<AccessPoint> Points;
  /// Tensor name -> its VarDef (dtype, shape, access type).
  std::map<std::string, Ref<VarDefNode>> Defs;
  /// Tensor name -> indices into Points, in Points order. Dependence
  /// queries only ever pair accesses of one tensor, so iterating a bucket
  /// replaces the O(points²) scan over the whole program.
  std::map<std::string, std::vector<size_t>> ByVar;

  /// Returns true if \p Name is a read-only scalar usable as a symbolic
  /// parameter in affine reasoning.
  bool isParam(const std::string &Name) const;

  /// Returns the bucket for \p Var (empty if the tensor is never
  /// accessed).
  const std::vector<size_t> &pointsOf(const std::string &Var) const;

  /// Rebuilds ByVar from Points (collectAccesses calls this; callers that
  /// hand-edit Points must re-call it).
  void buildIndex();
};

/// Walks \p Root and collects every access.
AccessCollection collectAccesses(const Stmt &Root);

} // namespace ft

#endif // FT_ANALYSIS_ACCESS_H
