//===- analysis/vector_legality.h - SIMD legality proof ----------*- C++ -*-===//
///
/// \file
/// The legality analysis behind `vectorize(LoopId, Width)`: before codegen
/// may lower a loop to an explicit-width `#pragma omp simd` body, this pass
///
///   1. classifies every memory access in the loop body by how it moves
///      with the vectorized iterator — stride-1 (contiguous lanes),
///      broadcast (loop-invariant), strided (affine, non-unit stride) or
///      gather (the iterator feeds a non-affine index, e.g. `e[adj[i], k]`
///      with `i` vectorized);
///   2. proves, with the instance-wise dependence engine (analysis/deps.h),
///      that the loop carries no dependence — or that every carried
///      dependence is a same-operator reduction whose body matches the
///      single-accumulator pattern codegen knows how to privatize;
///   3. records which tensors are accessed stride-1: their parameter base
///      pointers are alignment candidates for the `aligned(p:64)` clause
///      (the runtime Buffer allocates 64-byte-aligned storage).
///
/// Rejections return a human-readable reason that the schedule layer feeds
/// into the schedule-decision audit log, so an auto-scheduler (or a user)
/// can see exactly why a loop stayed scalar.
///
/// The classification half (`classifyVectorAccesses`, `matchVectorReduction`)
/// is purely syntactic and shared with codegen: both the prover and the
/// emitter look at the same pattern, so a loop approved here can never be
/// lowered differently there.
///
//===----------------------------------------------------------------------===//

#ifndef FT_ANALYSIS_VECTOR_LEGALITY_H
#define FT_ANALYSIS_VECTOR_LEGALITY_H

#include <optional>
#include <string>
#include <vector>

#include "analysis/access.h"
#include "analysis/affine.h"
#include "analysis/deps.h"
#include "ir/stmt.h"

namespace ft {

/// How one access moves with the vectorized iterator.
enum class VecAccessClass : uint8_t {
  Stride1,   ///< Last index is iter + invariant: adjacent lanes adjacent.
  Broadcast, ///< No index mentions the iterator: one value for all lanes.
  Strided,   ///< Affine in the iterator, but not unit-stride in the last dim.
  Gather,    ///< The iterator feeds a non-affine index (indirect access).
};

/// Returns "stride-1" / "broadcast" / "strided" / "gather".
std::string nameOf(VecAccessClass C);

/// One classified access of the loop body.
struct VecAccess {
  std::string Var;
  AccessKind Kind = AccessKind::Read;
  VecAccessClass Class = VecAccessClass::Broadcast;
  /// Element stride in the last dimension when provable (1 for Stride1,
  /// 0 when unknown or loop-invariant).
  int64_t Stride = 0;
};

/// The single-accumulator reduction pattern: the loop body is exactly one
/// ReduceTo whose target indices are loop-invariant. Codegen privatizes the
/// accumulator per lane (`reduction(op:acc)`) and folds once after the loop.
struct VectorReduction {
  Ref<ReduceToNode> Red;
};

/// Matches \p L's body against the reduction pattern (shared by the
/// schedule-side proof and the codegen-side lowering — one source of truth).
std::optional<VectorReduction> matchVectorReduction(const Ref<ForNode> &L);

/// Classifies every access in \p L's body (syntactic + affine; no
/// dependence queries). \p IsParam names read-only scalar tensors usable as
/// symbolic constants in affine index reasoning.
std::vector<VecAccess> classifyVectorAccesses(const Ref<ForNode> &L,
                                              const IsParamFn &IsParam);

/// True for the widths the lowering supports: powers of two in [2, 64].
bool isValidVectorWidth(int Width);

/// The verdict of the full analysis.
struct VectorLegality {
  bool Legal = false;
  /// Legal via the reduction pattern (carried same-op reduction privatized
  /// by codegen) rather than via proven independence.
  bool Reduction = false;
  /// Human-readable rejection reason; empty when Legal. Flows into the
  /// schedule-decision audit log via the rejecting Status.
  std::string Reason;
  std::vector<VecAccess> Accesses;
  /// Tensors with at least one stride-1 access: their parameter base
  /// pointers may carry an `aligned(p:64)` clause (Buffer storage is
  /// 64-byte aligned).
  std::vector<std::string> Stride1Vars;
};

/// Proves (or refutes, with a reason) that loop \p L may be vectorized at
/// \p Width. \p DA must be built over the program containing \p L.
VectorLegality analyzeVectorLegality(const DepAnalyzer &DA,
                                     const Ref<ForNode> &L, int Width,
                                     const IsParamFn &IsParam);

} // namespace ft

#endif // FT_ANALYSIS_VECTOR_LEGALITY_H
