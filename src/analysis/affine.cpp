//===- analysis/affine.cpp ------------------------------------------------===//

#include "analysis/affine.h"

#include <algorithm>

using namespace ft;

std::optional<LinearExpr> ft::toLinear(const Expr &E,
                                       const IsParamFn &IsParam) {
  switch (E->kind()) {
  case NodeKind::IntConst:
    return LinearExpr::constant(cast<IntConstNode>(E)->Val);
  case NodeKind::Var:
    return LinearExpr::variable(cast<VarNode>(E)->Name);
  case NodeKind::Load: {
    auto L = cast<LoadNode>(E);
    if (!L->Indices.empty() || !isInt(L->Dtype) || !IsParam(L->Var))
      return std::nullopt;
    return LinearExpr::variable("$" + L->Var);
  }
  case NodeKind::Cast: {
    auto C = cast<CastNode>(E);
    if (!isInt(C->Dtype))
      return std::nullopt;
    return toLinear(C->Operand, IsParam);
  }
  case NodeKind::Unary: {
    auto U = cast<UnaryNode>(E);
    if (U->Op != UnOpKind::Neg)
      return std::nullopt;
    auto X = toLinear(U->Operand, IsParam);
    if (!X)
      return std::nullopt;
    return LinearExpr::tryScale(*X, -1);
  }
  case NodeKind::Binary: {
    auto B = cast<BinaryNode>(E);
    auto L = toLinear(B->LHS, IsParam);
    auto R = toLinear(B->RHS, IsParam);
    switch (B->Op) {
    case BinOpKind::Add:
      if (!L || !R)
        return std::nullopt;
      return LinearExpr::tryAdd(*L, *R);
    case BinOpKind::Sub:
      if (!L || !R)
        return std::nullopt;
      return LinearExpr::trySub(*L, *R);
    case BinOpKind::Mul:
      if (!L || !R)
        return std::nullopt;
      if (L->isConstant())
        return LinearExpr::tryScale(*R, L->constTerm());
      if (R->isConstant())
        return LinearExpr::tryScale(*L, R->constTerm());
      return std::nullopt;
    case BinOpKind::FloorDiv:
      // Exact only when the dividend's coefficients and constant are all
      // divisible by a constant divisor.
      if (!L || !R || !R->isConstant() || R->constTerm() == 0)
        return std::nullopt;
      {
        int64_t D = R->constTerm();
        for (const auto &[Name, C] : L->coeffs())
          if (C % D != 0)
            return std::nullopt;
        if (L->constTerm() % D != 0)
          return std::nullopt;
        LinearExpr Out;
        for (const auto &[Name, C] : L->coeffs())
          Out.setCoeff(Name, C / D);
        Out.addConst(L->constTerm() / D);
        return Out;
      }
    default:
      return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

void ft::addCondConstraints(AffineSet &S, const Expr &Cond, bool Negate,
                            const IsParamFn &IsParam) {
  if (auto BC = dyn_cast<BoolConstNode>(Cond)) {
    if (BC->Val == Negate) // Constant-false condition: empty set.
      S.addGe0(LinearExpr::constant(-1));
    return;
  }
  if (auto U = dyn_cast<UnaryNode>(Cond)) {
    if (U->Op == UnOpKind::LNot)
      return addCondConstraints(S, U->Operand, !Negate, IsParam);
    S.markInexact();
    return;
  }
  auto B = dyn_cast<BinaryNode>(Cond);
  if (!B) {
    S.markInexact();
    return;
  }
  // Conjunction in positive position / disjunction under negation decompose
  // exactly; the other polarity is a disjunction, which a single conjunctive
  // set cannot represent: over-approximate by dropping it.
  if (B->Op == BinOpKind::LAnd || B->Op == BinOpKind::LOr) {
    bool IsConj = (B->Op == BinOpKind::LAnd) != Negate;
    if (IsConj) {
      addCondConstraints(S, B->LHS, Negate, IsParam);
      addCondConstraints(S, B->RHS, Negate, IsParam);
    } else {
      S.markInexact();
    }
    return;
  }
  if (!isCompareOp(B->Op)) {
    S.markInexact();
    return;
  }
  auto L = toLinear(B->LHS, IsParam);
  auto R = toLinear(B->RHS, IsParam);
  if (!L || !R) {
    S.markInexact();
    return;
  }
  BinOpKind Op = B->Op;
  if (Negate) {
    switch (Op) {
    case BinOpKind::LT:
      Op = BinOpKind::GE;
      break;
    case BinOpKind::LE:
      Op = BinOpKind::GT;
      break;
    case BinOpKind::GT:
      Op = BinOpKind::LE;
      break;
    case BinOpKind::GE:
      Op = BinOpKind::LT;
      break;
    case BinOpKind::EQ:
      Op = BinOpKind::NE;
      break;
    case BinOpKind::NE:
      Op = BinOpKind::EQ;
      break;
    default:
      ftUnreachable("non-comparison in comparison negation");
    }
  }
  switch (Op) {
  case BinOpKind::LT:
    S.addLT(*L, *R);
    return;
  case BinOpKind::LE:
    S.addLE(*L, *R);
    return;
  case BinOpKind::GT:
    S.addLT(*R, *L);
    return;
  case BinOpKind::GE:
    S.addLE(*R, *L);
    return;
  case BinOpKind::EQ:
    S.addEQ(*L, *R);
    return;
  case BinOpKind::NE: {
    // x != y is a disjunction in general; decide it when the difference is
    // constant, otherwise over-approximate.
    auto D = LinearExpr::trySub(*L, *R);
    if (D && D->isConstant()) {
      if (D->constTerm() == 0)
        S.addGe0(LinearExpr::constant(-1)); // Contradiction.
      return;
    }
    S.markInexact();
    return;
  }
  default:
    ftUnreachable("unexpected comparison kind");
  }
}

LinearExpr ft::renameIters(const LinearExpr &E, const std::string &Prefix,
                           const std::vector<std::string> &Iters) {
  LinearExpr Out = E;
  for (const std::string &It : Iters)
    Out = Out.renamed(It, Prefix + It);
  return Out;
}
