//===- analysis/deps.cpp --------------------------------------------------===//

#include "analysis/deps.h"

#include "analysis/affine.h"

using namespace ft;

DepAnalyzer::DepAnalyzer(const Stmt &Root) : AC(collectAccesses(Root)) {}

std::vector<LoopAxis> DepAnalyzer::commonLoops(const AccessPoint &A,
                                               const AccessPoint &B) {
  std::vector<LoopAxis> Out;
  size_t N = std::min(A.Loops.size(), B.Loops.size());
  for (size_t I = 0; I < N; ++I) {
    if (A.Loops[I].ForId != B.Loops[I].ForId)
      break;
    Out.push_back(A.Loops[I]);
  }
  return Out;
}

DepType DepAnalyzer::classify(const AccessPoint &E, const AccessPoint &L) {
  bool EWrites = E.Kind != AccessKind::Read;
  bool LWrites = L.Kind != AccessKind::Read;
  ftAssert(EWrites || LWrites, "classifying a read-read pair");
  if (EWrites && LWrites)
    return DepType::WAW;
  return EWrites ? DepType::RAW : DepType::WAR;
}

bool DepAnalyzer::sameOpReducePair(const AccessPoint &E,
                                   const AccessPoint &L) {
  return E.Kind == AccessKind::Reduce && L.Kind == AccessKind::Reduce &&
         E.RedOp == L.RedOp;
}

bool DepAnalyzer::orderingPossible(const AccessPoint &E, const AccessPoint &L,
                                   const RelMap &Rels) const {
  for (const LoopAxis &Loop : commonLoops(E, L)) {
    auto It = Rels.find(Loop.ForId);
    IterRel R = It == Rels.end() ? IterRel::Any : It->second;
    switch (R) {
    case IterRel::Eq:
      continue;
    case IterRel::Lt:
    case IterRel::Any:
      // The earlier access can run in a strictly earlier iteration of this
      // loop, so it precedes the later access regardless of inner structure.
      return true;
    case IterRel::Gt:
      return false;
    }
  }
  // All common loops at equal iterations: textual order decides, with reads
  // (phase 0) preceding the write (phase 1) inside one statement instance.
  if (E.Seq != L.Seq)
    return E.Seq < L.Seq;
  return E.Phase < L.Phase;
}

bool DepAnalyzer::addDomain(AffineSet &S, const AccessPoint &P,
                            const std::string &Prefix) const {
  IsParamFn IsParam = [this](const std::string &N) { return AC.isParam(N); };
  std::vector<std::string> Iters;
  Iters.reserve(P.Loops.size());
  for (const LoopAxis &L : P.Loops)
    Iters.push_back(L.Iter);

  for (const LoopAxis &L : P.Loops) {
    LinearExpr IterVar = LinearExpr::variable(Prefix + L.Iter);
    if (auto B = toLinear(L.Begin, IsParam))
      S.addLE(renameIters(*B, Prefix, Iters), IterVar);
    else
      S.markInexact();
    if (auto Ed = toLinear(L.End, IsParam))
      S.addLT(IterVar, renameIters(*Ed, Prefix, Iters));
    else
      S.markInexact();
  }
  for (const Expr &Cond : P.Conds) {
    AffineSet Tmp;
    addCondConstraints(Tmp, Cond, /*Negate=*/false, IsParam);
    if (!Tmp.isExact())
      S.markInexact();
    for (const LinConstraint &C : Tmp.constraints()) {
      LinConstraint RC{renameIters(C.E, Prefix, Iters), C.IsEq};
      if (RC.IsEq)
        S.addEq0(RC.E);
      else
        S.addGe0(RC.E);
    }
  }
  return true;
}

AffineSet DepAnalyzer::buildPairSet(const AccessPoint &E,
                                    const AccessPoint &L,
                                    const RelMap &Rels) const {
  IsParamFn IsParam = [this](const std::string &N) { return AC.isParam(N); };
  AffineSet S;
  addDomain(S, E, "p.");
  addDomain(S, L, "q.");

  std::vector<LoopAxis> Common = commonLoops(E, L);

  // Stack-scope filtering (paper Fig. 12(d)): iterations of loops enclosing
  // the tensor's VarDef each see a fresh instance, so dependences require
  // equal iterations there.
  int ScopeDepth = std::min(E.ScopeDepth, L.ScopeDepth);
  ftAssert(ScopeDepth <= static_cast<int>(Common.size()),
           "VarDef-enclosing loops must be common to both accesses");
  for (int I = 0; I < ScopeDepth; ++I)
    S.addEQ(LinearExpr::variable("p." + Common[I].Iter),
            LinearExpr::variable("q." + Common[I].Iter));

  // Caller-required relations on common loops.
  for (const LoopAxis &Loop : Common) {
    auto It = Rels.find(Loop.ForId);
    if (It == Rels.end())
      continue;
    LinearExpr P = LinearExpr::variable("p." + Loop.Iter);
    LinearExpr Q = LinearExpr::variable("q." + Loop.Iter);
    switch (It->second) {
    case IterRel::Any:
      break;
    case IterRel::Eq:
      S.addEQ(P, Q);
      break;
    case IterRel::Lt:
      S.addLT(P, Q);
      break;
    case IterRel::Gt:
      S.addLT(Q, P);
      break;
    }
  }

  // Same-location constraints: equate affine index dimensions. Non-affine
  // dimensions (indirect indexing) contribute no constraint, i.e. they may
  // alias anything.
  if (!E.WholeTensor && !L.WholeTensor) {
    std::vector<std::string> EIters, LIters;
    for (const LoopAxis &Lp : E.Loops)
      EIters.push_back(Lp.Iter);
    for (const LoopAxis &Lp : L.Loops)
      LIters.push_back(Lp.Iter);
    size_t Dims = std::min(E.Indices.size(), L.Indices.size());
    for (size_t D = 0; D < Dims; ++D) {
      auto IA = toLinear(E.Indices[D], IsParam);
      auto IB = toLinear(L.Indices[D], IsParam);
      if (!IA || !IB) {
        S.markInexact();
        continue;
      }
      S.addEQ(renameIters(*IA, "p.", EIters), renameIters(*IB, "q.", LIters));
    }
  } else {
    S.markInexact();
  }
  return S;
}

bool DepAnalyzer::mayDepend(const AccessPoint &E, const AccessPoint &L,
                            const RelMap &Rels) const {
  if (E.Var != L.Var)
    return false;
  if (E.Kind == AccessKind::Read && L.Kind == AccessKind::Read)
    return false;
  if (!orderingPossible(E, L, Rels))
    return false;
  return !buildPairSet(E, L, Rels).isEmpty();
}

std::vector<FoundDep> DepAnalyzer::carriedBy(int64_t LoopId) const {
  std::vector<FoundDep> Out;
  for (const AccessPoint &E : AC.Points) {
    if (!E.isInsideLoop(LoopId))
      continue;
    for (const AccessPoint &L : AC.Points) {
      if (!L.isInsideLoop(LoopId))
        continue;
      if (E.Var != L.Var ||
          (E.Kind == AccessKind::Read && L.Kind == AccessKind::Read))
        continue;
      // Equal iterations for loops enclosing the carrier; strictly ordered
      // at the carrier; anything inside.
      RelMap Rels;
      for (const LoopAxis &Loop : E.Loops) {
        if (Loop.ForId == LoopId) {
          Rels[Loop.ForId] = IterRel::Lt;
          break;
        }
        Rels[Loop.ForId] = IterRel::Eq;
      }
      if (!mayDepend(E, L, Rels))
        continue;
      Out.push_back({&E, &L, classify(E, L), sameOpReducePair(E, L)});
    }
  }
  return Out;
}

std::vector<FoundDep> DepAnalyzer::betweenAtEqualIters(int64_t AId,
                                                       int64_t BId) const {
  std::vector<FoundDep> Out;
  for (const AccessPoint &E : AC.Points) {
    if (!E.isInside(AId))
      continue;
    for (const AccessPoint &L : AC.Points) {
      if (!L.isInside(BId))
        continue;
      if (E.Var != L.Var ||
          (E.Kind == AccessKind::Read && L.Kind == AccessKind::Read))
        continue;
      RelMap Rels;
      for (const LoopAxis &Loop : commonLoops(E, L))
        Rels[Loop.ForId] = IterRel::Eq;
      if (!mayDepend(E, L, Rels))
        continue;
      Out.push_back({&E, &L, classify(E, L), sameOpReducePair(E, L)});
    }
  }
  return Out;
}
