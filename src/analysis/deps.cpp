//===- analysis/deps.cpp --------------------------------------------------===//

#include "analysis/deps.h"

#include <algorithm>

#include "analysis/affine.h"
#include "analysis/extents.h"
#include "analysis/ragged.h"
#include "support/stats.h"

using namespace ft;

namespace {

/// True when \p Name is a valid ragged index tensor in this function: a
/// 1-D integer Input that is never written. Loads of it in loop bounds may
/// then be modeled as opaque symbols constrained by the runtime contract
/// of analysis/ragged.h (checkIndptrArgs).
bool isRaggedIndexTensor(const AccessCollection &AC, const std::string &Name) {
  auto It = AC.Defs.find(Name);
  if (It == AC.Defs.end())
    return false;
  const Ref<VarDefNode> &D = It->second;
  if (D->ATy != AccessType::Input || D->Info.Shape.size() != 1 ||
      !isInt(D->Info.Dtype))
    return false;
  auto BV = AC.ByVar.find(Name);
  if (BV != AC.ByVar.end())
    for (size_t I : BV->second)
      if (AC.Points[I].Kind != AccessKind::Read)
        return false;
  return true;
}

/// One opaque ragged-bound symbol occurring in a pair set: the value of
/// `Tensor[Idx]` with Idx already renamed into the p./q. iteration space.
struct RaggedSym {
  std::string Tensor;
  LinearExpr Idx;
  std::string Name;
};

/// The canonical symbol for a ragged bound. Both addDomain and the
/// monotonicity bridging below must render identically, so the name is
/// derived from the renamed index's canonical string form.
RaggedSym raggedSymOf(const std::string &Tensor, const LinearExpr &Idx) {
  return {Tensor, Idx, "$rg:" + Tensor + "[" + Idx.toString() + "]"};
}

/// Matches a loop bound that addDomain models as a ragged symbol: the
/// idiom load of a valid index tensor with an affine index. Returns the
/// symbol with \p Prefix applied to iterator names.
std::optional<RaggedSym>
raggedSymForBound(const AccessCollection &AC, const Expr &Bound,
                  const IsParamFn &IsParam, const std::string &Prefix,
                  const std::vector<std::string> &Iters) {
  auto RB = raggedBoundOf(Bound);
  if (!RB || !isRaggedIndexTensor(AC, RB->Tensor))
    return std::nullopt;
  auto Idx = toLinear(RB->Index, IsParam);
  if (!Idx)
    return std::nullopt;
  return raggedSymOf(RB->Tensor, renameIters(*Idx, Prefix, Iters));
}

} // namespace

DepAnalyzer::DepAnalyzer(const Stmt &Root) : AC(collectAccesses(Root)) {
  stats::counters().AnalyzerBuilds.fetch_add(1, std::memory_order_relaxed);
  DomEarlier.resize(AC.Points.size());
  DomLater.resize(AC.Points.size());
}

std::vector<LoopAxis> DepAnalyzer::commonLoops(const AccessPoint &A,
                                               const AccessPoint &B) {
  std::vector<LoopAxis> Out;
  size_t N = std::min(A.Loops.size(), B.Loops.size());
  for (size_t I = 0; I < N; ++I) {
    if (A.Loops[I].ForId != B.Loops[I].ForId)
      break;
    Out.push_back(A.Loops[I]);
  }
  return Out;
}

DepType DepAnalyzer::classify(const AccessPoint &E, const AccessPoint &L) {
  bool EWrites = E.Kind != AccessKind::Read;
  bool LWrites = L.Kind != AccessKind::Read;
  ftAssert(EWrites || LWrites, "classifying a read-read pair");
  if (EWrites && LWrites)
    return DepType::WAW;
  return EWrites ? DepType::RAW : DepType::WAR;
}

bool DepAnalyzer::sameOpReducePair(const AccessPoint &E,
                                   const AccessPoint &L) {
  return E.Kind == AccessKind::Reduce && L.Kind == AccessKind::Reduce &&
         E.RedOp == L.RedOp;
}

bool DepAnalyzer::orderingPossible(const AccessPoint &E, const AccessPoint &L,
                                   const RelMap &Rels) const {
  for (const LoopAxis &Loop : commonLoops(E, L)) {
    auto It = Rels.find(Loop.ForId);
    IterRel R = It == Rels.end() ? IterRel::Any : It->second;
    switch (R) {
    case IterRel::Eq:
      continue;
    case IterRel::Lt:
    case IterRel::Any:
      // The earlier access can run in a strictly earlier iteration of this
      // loop, so it precedes the later access regardless of inner structure.
      return true;
    case IterRel::Gt:
      return false;
    }
  }
  // All common loops at equal iterations: textual order decides, with reads
  // (phase 0) preceding the write (phase 1) inside one statement instance.
  if (E.Seq != L.Seq)
    return E.Seq < L.Seq;
  return E.Phase < L.Phase;
}

bool DepAnalyzer::addDomain(AffineSet &S, const AccessPoint &P,
                            const std::string &Prefix) const {
  IsParamFn IsParam = [this](const std::string &N) { return AC.isParam(N); };
  std::vector<std::string> Iters;
  Iters.reserve(P.Loops.size());
  for (const LoopAxis &L : P.Loops)
    Iters.push_back(L.Iter);

  for (const LoopAxis &L : P.Loops) {
    LinearExpr IterVar = LinearExpr::variable(Prefix + L.Iter);
    // Data-dependent (ragged) bounds become opaque symbols instead of
    // dropped constraints: `Begin = indptr[i]` contributes
    // `$rg:indptr[p.i] <= p.j` with the symbol >= 0 by the runtime
    // contract (analysis/ragged.h). buildPairSet later bridges symbols of
    // the same tensor with monotonicity facts, which is what lets segment
    // loops over distinct rows prove independent.
    if (auto B = toLinear(L.Begin, IsParam)) {
      S.addLE(renameIters(*B, Prefix, Iters), IterVar);
    } else if (auto Sym =
                   raggedSymForBound(AC, L.Begin, IsParam, Prefix, Iters)) {
      LinearExpr SymVar = LinearExpr::variable(Sym->Name);
      S.addLE(SymVar, IterVar);
      S.addLE(LinearExpr::constant(0), SymVar);
    } else {
      S.markInexact();
    }
    if (auto Ed = toLinear(L.End, IsParam)) {
      S.addLT(IterVar, renameIters(*Ed, Prefix, Iters));
    } else if (auto Sym =
                   raggedSymForBound(AC, L.End, IsParam, Prefix, Iters)) {
      LinearExpr SymVar = LinearExpr::variable(Sym->Name);
      S.addLT(IterVar, SymVar);
      S.addLE(LinearExpr::constant(0), SymVar);
    } else {
      S.markInexact();
    }
    // Extent parameters in the bounds are opaque runtime values, but the
    // request-side contract (analysis/extents.h) guarantees them >= 1;
    // recording that tightens the domain without assuming any value.
    for (const Expr &Bound : {L.Begin, L.End})
      for (const std::string &N : scalarLoadsOf(Bound))
        if (AC.isParam(N))
          S.addLE(LinearExpr::constant(1), LinearExpr::variable("$" + N));
  }
  for (const Expr &Cond : P.Conds) {
    AffineSet Tmp;
    addCondConstraints(Tmp, Cond, /*Negate=*/false, IsParam);
    if (!Tmp.isExact())
      S.markInexact();
    for (const LinConstraint &C : Tmp.constraints()) {
      LinConstraint RC{renameIters(C.E, Prefix, Iters), C.IsEq};
      if (RC.IsEq)
        S.addEq0(RC.E);
      else
        S.addGe0(RC.E);
    }
  }
  return true;
}

std::optional<size_t> DepAnalyzer::indexOf(const AccessPoint &P) const {
  if (AC.Points.empty())
    return std::nullopt;
  const AccessPoint *Base = AC.Points.data();
  if (&P < Base || &P >= Base + AC.Points.size())
    return std::nullopt;
  return static_cast<size_t>(&P - Base);
}

void DepAnalyzer::appendDomain(AffineSet &S, const AccessPoint &P,
                               bool Later) const {
  std::optional<size_t> Idx = indexOf(P);
  if (!Idx || stats::accelerationBypassed()) {
    // Foreign point (or bypass mode): compute without caching. The cached
    // and direct paths produce the identical constraint sequence.
    addDomain(S, P, Later ? "q." : "p.");
    return;
  }
  auto &Cache = Later ? DomLater : DomEarlier;
  std::optional<AffineSet> &Slot = Cache[*Idx];
  stats::Counters &Ct = stats::counters();
  if (!Slot) {
    Ct.DomainCacheMisses.fetch_add(1, std::memory_order_relaxed);
    AffineSet D;
    addDomain(D, P, Later ? "q." : "p.");
    Slot = std::move(D);
  } else {
    Ct.DomainCacheHits.fetch_add(1, std::memory_order_relaxed);
  }
  S.addAll(*Slot);
}

AffineSet DepAnalyzer::buildPairSet(const AccessPoint &E,
                                    const AccessPoint &L,
                                    const RelMap &Rels) const {
  stats::counters().PairSetsBuilt.fetch_add(1, std::memory_order_relaxed);
  IsParamFn IsParam = [this](const std::string &N) { return AC.isParam(N); };
  AffineSet S;
  appendDomain(S, E, /*Later=*/false);
  appendDomain(S, L, /*Later=*/true);

  std::vector<LoopAxis> Common = commonLoops(E, L);

  // Stack-scope filtering (paper Fig. 12(d)): iterations of loops enclosing
  // the tensor's VarDef each see a fresh instance, so dependences require
  // equal iterations there.
  int ScopeDepth = std::min(E.ScopeDepth, L.ScopeDepth);
  ftAssert(ScopeDepth <= static_cast<int>(Common.size()),
           "VarDef-enclosing loops must be common to both accesses");
  for (int I = 0; I < ScopeDepth; ++I)
    S.addEQ(LinearExpr::variable("p." + Common[I].Iter),
            LinearExpr::variable("q." + Common[I].Iter));

  // Caller-required relations on common loops.
  for (const LoopAxis &Loop : Common) {
    auto It = Rels.find(Loop.ForId);
    if (It == Rels.end())
      continue;
    LinearExpr P = LinearExpr::variable("p." + Loop.Iter);
    LinearExpr Q = LinearExpr::variable("q." + Loop.Iter);
    switch (It->second) {
    case IterRel::Any:
      break;
    case IterRel::Eq:
      S.addEQ(P, Q);
      break;
    case IterRel::Lt:
      S.addLT(P, Q);
      break;
    case IterRel::Gt:
      S.addLT(Q, P);
      break;
    }
  }

  // Same-location constraints: equate affine index dimensions. Non-affine
  // dimensions (indirect indexing) contribute no constraint, i.e. they may
  // alias anything.
  if (!E.WholeTensor && !L.WholeTensor) {
    std::vector<std::string> EIters, LIters;
    for (const LoopAxis &Lp : E.Loops)
      EIters.push_back(Lp.Iter);
    for (const LoopAxis &Lp : L.Loops)
      LIters.push_back(Lp.Iter);
    size_t Dims = std::min(E.Indices.size(), L.Indices.size());
    for (size_t D = 0; D < Dims; ++D) {
      auto IA = toLinear(E.Indices[D], IsParam);
      auto IB = toLinear(L.Indices[D], IsParam);
      if (!IA || !IB) {
        S.markInexact();
        continue;
      }
      S.addEQ(renameIters(*IA, "p.", EIters), renameIters(*IB, "q.", LIters));
    }
  } else {
    S.markInexact();
  }

  // Monotonicity bridging for ragged bounds (DESIGN.md §17): the runtime
  // contract makes index tensors non-decreasing, so whenever the set
  // already proves idxA <= idxB for two loads of the same index tensor,
  // `T[idxA] <= T[idxB]` is a fact. With the caller's `p.i < q.i` this
  // chains `p.j < indptr[p.i+1] <= indptr[q.i] <= q.j`, which contradicts
  // same-location constraints like `p.j == q.j` — distinct rows' segments
  // are disjoint. Facts are judged against the set before any are added
  // (one-round bridging): sound, and sufficient since the implications
  // come from iterator constraints, not from other bridged facts.
  std::vector<RaggedSym> Syms;
  auto CollectSyms = [&](const AccessPoint &P, const std::string &Prefix) {
    std::vector<std::string> Iters;
    for (const LoopAxis &Lp : P.Loops)
      Iters.push_back(Lp.Iter);
    for (const LoopAxis &Lp : P.Loops)
      for (const Expr &Bound : {Lp.Begin, Lp.End}) {
        if (toLinear(Bound, IsParam))
          continue;
        if (auto Sym = raggedSymForBound(AC, Bound, IsParam, Prefix, Iters))
          if (std::none_of(Syms.begin(), Syms.end(),
                           [&](const RaggedSym &O) {
                             return O.Name == Sym->Name;
                           }))
            Syms.push_back(std::move(*Sym));
      }
  };
  CollectSyms(E, "p.");
  CollectSyms(L, "q.");
  if (Syms.size() > 1) {
    std::vector<std::pair<const RaggedSym *, const RaggedSym *>> Facts;
    for (const RaggedSym &A : Syms)
      for (const RaggedSym &B : Syms) {
        if (&A == &B || A.Tensor != B.Tensor)
          continue;
        auto Diff = LinearExpr::trySub(B.Idx, A.Idx);
        if (Diff && S.implies(*Diff))
          Facts.emplace_back(&A, &B);
      }
    for (const auto &[A, B] : Facts)
      S.addLE(LinearExpr::variable(A->Name), LinearExpr::variable(B->Name));
  }
  return S;
}

bool DepAnalyzer::mayDepend(const AccessPoint &E, const AccessPoint &L,
                            const RelMap &Rels) const {
  stats::counters().DepQueries.fetch_add(1, std::memory_order_relaxed);
  if (E.Var != L.Var)
    return false;
  if (E.Kind == AccessKind::Read && L.Kind == AccessKind::Read)
    return false;
  if (!orderingPossible(E, L, Rels))
    return false;
  return !buildPairSet(E, L, Rels).isEmpty();
}

namespace {

/// A found dependence plus the point indices of its endpoints, used to
/// emit results in the historical Points-major order regardless of the
/// per-tensor bucket iteration.
struct IndexedDep {
  size_t EIdx, LIdx;
  FoundDep D;
};

std::vector<FoundDep> sortedDeps(std::vector<IndexedDep> Found) {
  std::sort(Found.begin(), Found.end(),
            [](const IndexedDep &A, const IndexedDep &B) {
              return A.EIdx != B.EIdx ? A.EIdx < B.EIdx : A.LIdx < B.LIdx;
            });
  std::vector<FoundDep> Out;
  Out.reserve(Found.size());
  for (IndexedDep &I : Found)
    Out.push_back(I.D);
  return Out;
}

} // namespace

std::vector<FoundDep> DepAnalyzer::carriedBy(int64_t LoopId) const {
  std::vector<IndexedDep> Found;
  std::vector<size_t> In; // Bucket members inside the carrier loop.
  for (const auto &[Var, Bucket] : AC.ByVar) {
    In.clear();
    bool AnyWrite = false;
    for (size_t I : Bucket) {
      const AccessPoint &P = AC.Points[I];
      if (!P.isInsideLoop(LoopId))
        continue;
      In.push_back(I);
      AnyWrite |= P.Kind != AccessKind::Read;
    }
    // Hoisted filters: a pair needs a common tensor (the bucket), both
    // endpoints inside the carrier, and at least one writer.
    if (In.empty() || !AnyWrite)
      continue;
    for (size_t EI : In) {
      const AccessPoint &E = AC.Points[EI];
      // Position of the carrier in the (shared) loop stack, and the
      // relation pattern: equal iterations outside, strictly ordered at
      // the carrier.
      RelMap Rels;
      int CarrierPos = 0;
      for (const LoopAxis &Loop : E.Loops) {
        if (Loop.ForId == LoopId) {
          Rels[Loop.ForId] = IterRel::Lt;
          break;
        }
        Rels[Loop.ForId] = IterRel::Eq;
        ++CarrierPos;
      }
      for (size_t LI : In) {
        const AccessPoint &L = AC.Points[LI];
        if (E.Kind == AccessKind::Read && L.Kind == AccessKind::Read)
          continue;
        // Stack-scope early reject: when the tensor's VarDef sits inside
        // the carrier loop for both endpoints, every carrier iteration
        // sees a fresh instance, so p(carrier) < q(carrier) contradicts
        // the scope equality — provably no dependence (the pair set the
        // full query would build is empty for the same reason).
        if (std::min(E.ScopeDepth, L.ScopeDepth) > CarrierPos)
          continue;
        if (!mayDepend(E, L, Rels))
          continue;
        Found.push_back(
            {EI, LI, {&E, &L, classify(E, L), sameOpReducePair(E, L)}});
      }
    }
  }
  return sortedDeps(std::move(Found));
}

std::vector<FoundDep> DepAnalyzer::betweenAtEqualIters(int64_t AId,
                                                       int64_t BId) const {
  std::vector<IndexedDep> Found;
  std::vector<size_t> InA, InB;
  for (const auto &[Var, Bucket] : AC.ByVar) {
    InA.clear();
    InB.clear();
    bool AnyWrite = false;
    for (size_t I : Bucket) {
      const AccessPoint &P = AC.Points[I];
      bool A = P.isInside(AId), B = P.isInside(BId);
      if (!A && !B)
        continue;
      if (A)
        InA.push_back(I);
      if (B)
        InB.push_back(I);
      AnyWrite |= P.Kind != AccessKind::Read;
    }
    if (InA.empty() || InB.empty() || !AnyWrite)
      continue;
    for (size_t EI : InA) {
      const AccessPoint &E = AC.Points[EI];
      for (size_t LI : InB) {
        const AccessPoint &L = AC.Points[LI];
        // A point paired with itself at equal iterations is the same
        // access instance: no ordering, no dependence.
        if (EI == LI)
          continue;
        if (E.Kind == AccessKind::Read && L.Kind == AccessKind::Read)
          continue;
        RelMap Rels;
        for (const LoopAxis &Loop : commonLoops(E, L))
          Rels[Loop.ForId] = IterRel::Eq;
        if (!mayDepend(E, L, Rels))
          continue;
        Found.push_back(
            {EI, LI, {&E, &L, classify(E, L), sameOpReducePair(E, L)}});
      }
    }
  }
  return sortedDeps(std::move(Found));
}
