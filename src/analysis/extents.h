//===- analysis/extents.h - Symbolic extent parameters -----------*- C++ -*-===//
///
/// \file
/// Symbolic-extent discovery and runtime binding checks (DESIGN.md §16).
///
/// A function is *shape-generic* when some tensor extents are not integer
/// literals but loads of 0-D integer Input parameters ("extent parameters",
/// the frontend's `scalarInput`). One compiled kernel then serves every
/// shape: the extents travel with the request as ordinary scalar arguments,
/// loop bounds and buffer strides are computed from them at run time, and
/// the whole-program fingerprint — which never sees a literal extent —
/// stays the same across shapes.
///
/// This header centralizes the request-side contract both execution tiers
/// enforce (validateArgs for the interpreter, Kernel::run for the JIT):
/// every extent parameter must be bound to a value >= 1, and every tensor
/// dimension whose symbolic shape folds to a constant under those bindings
/// must match the bound buffer exactly.
///
//===----------------------------------------------------------------------===//

#ifndef FT_ANALYSIS_EXTENTS_H
#define FT_ANALYSIS_EXTENTS_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "interp/buffer.h"
#include "ir/func.h"
#include "support/error.h"

namespace ft {

/// The extent-parameter signature of a function: the 0-D integer Input
/// parameters whose values appear in some tensor shape, loop bound, or
/// gemm extent. Sorted by name; empty for fully static programs.
struct ExtentSpec {
  std::vector<std::string> Params;

  bool empty() const { return Params.empty(); }
  bool contains(const std::string &Name) const;
};

/// Discovers the extent parameters of \p F (one full body walk; serving
/// code paths compute this once per fingerprint and reuse it per request).
ExtentSpec extentParamsOf(const Func &F);

/// Names loaded with an empty index list (0-D scalar reads) anywhere in
/// \p E — the only form an extent parameter can take inside a shape
/// expression. Sorted, deduplicated.
std::vector<std::string> scalarLoadsOf(const Expr &E);

/// Folds a shape/bound expression to a constant under \p Bindings
/// (extent-parameter name -> value). Handles integer constants, 0-D loads
/// of bound names, integer arithmetic (+ - * floordiv mod min max), unary
/// negation, and integer casts. Returns nullopt when the expression
/// references an unbound name or a non-foldable node.
std::optional<int64_t>
evalExtentExpr(const Expr &E, const std::map<std::string, int64_t> &Bindings);

/// Reads the extent values of \p Spec out of \p Args into \p Out. Error
/// when an extent parameter is unbound, non-scalar, or non-integer.
/// Positivity is checked by checkExtentArgs, not here.
Status bindExtentArgs(const ExtentSpec &Spec,
                      const std::map<std::string, Buffer *> &Args,
                      std::map<std::string, int64_t> &Out);

/// The per-request extent contract: every extent parameter of \p Spec is
/// bound in \p Args with a value >= 1, and every parameter-tensor dimension
/// of \p F whose symbolic extent folds under those bindings matches the
/// bound buffer's dimension. Constant extents are the caller's business
/// (validateArgs / Kernel::run already check them).
Status checkExtentArgs(const Func &F, const ExtentSpec &Spec,
                       const std::map<std::string, Buffer *> &Args);

} // namespace ft

#endif // FT_ANALYSIS_EXTENTS_H
