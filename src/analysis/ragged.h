//===- analysis/ragged.h - Ragged (data-dependent) iteration ----*- C++ -*-===//
///
/// \file
/// The ragged iteration model (DESIGN.md §17): a *segment loop* is a For
/// whose begin/end are loads from a 1-D integer Input tensor (the *index
/// tensor*, CSR's `indptr`):
///
///     for j in indptr[i] .. indptr[i+1]:   # row i's segment
///
/// The loop's trip count is data, not shape, so nothing about it is known
/// at compile time — except the runtime contract this header centralizes,
/// mirroring the extent contract of analysis/extents.h:
///
///   (1) every index-tensor value is >= 0,
///   (2) values are monotonically non-decreasing, and
///   (3) values never exceed the leading extent of any tensor the segment
///       iterator addresses directly (`val[j]`, `indices[j]`).
///
/// Both execution tiers enforce the contract per request (`checkIndptrArgs`
/// from validateArgs and Kernel::run), which is what entitles dependence
/// analysis to assume `indptr[i] <= indptr[i+1]` when proving row segments
/// independent (analysis/deps.cpp).
///
/// analyzeRagged() also discovers which tensor dimensions and which extent
/// parameters are *ragged-sized* (nnz-like): dimensions addressed directly
/// by a segment iterator, and the extent parameters appearing in their
/// symbolic shapes. The serving plane buckets those by powers of two in
/// shape keys, so sparse traffic with churning nnz still aggregates into
/// stable telemetry rows and specialization buckets (serve/shape_key.h).
///
//===----------------------------------------------------------------------===//

#ifndef FT_ANALYSIS_RAGGED_H
#define FT_ANALYSIS_RAGGED_H

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "interp/buffer.h"
#include "ir/func.h"
#include "support/error.h"

namespace ft {

/// A data-dependent loop bound: the load `Tensor[Index]` of a 1-D index
/// tensor. Matched purely syntactically; whether Tensor actually is a
/// valid index tensor is the analyzer's business.
struct RaggedBound {
  std::string Tensor;
  Expr Index;
};

/// Matches the ragged-bound idiom on a loop bound expression: a Load with
/// exactly one index (possibly wrapped in integer casts). Returns nullopt
/// for affine bounds and scalar (0-D) extent loads.
std::optional<RaggedBound> raggedBoundOf(const Expr &Bound);

/// One segment loop of a function.
struct SegmentLoop {
  int64_t ForId = 0;
  std::string Iter;
  /// An index tensor read by the loop's bounds (when both bounds read
  /// index tensors, the one read by End — CSR's `indptr[i+1]`).
  std::string IndexTensor;
};

/// Everything the rest of the pipeline needs to know about a function's
/// ragged structure. Computed by one body walk; serving code paths compute
/// it once per fingerprint and reuse it per request.
struct RaggedInfo {
  std::vector<SegmentLoop> Loops;

  /// Sorted unique names of all index tensors (1-D integer Inputs read by
  /// segment-loop bounds).
  std::vector<std::string> IndexTensors;

  /// Index tensor -> parameter tensors whose leading dimension is
  /// addressed directly (bare iterator) by one of its segment iterators.
  /// Contract (3) above: every index-tensor value must be <= that
  /// dimension's runtime extent.
  std::map<std::string, std::set<std::string>> BoundedParams;

  /// Parameter -> dimensions whose extent is ragged-sized (addressed
  /// directly by a segment iterator). Bucketed in sparse shape keys.
  std::map<std::string, std::set<int>> RaggedDims;

  /// Sorted unique extent parameters (analysis/extents.h) appearing in the
  /// symbolic shape of some ragged dimension — `nnz` and friends. Serving
  /// buckets their values and keeps them *symbolic* under specialization,
  /// so one specialized kernel serves a whole nnz bucket.
  std::vector<std::string> RaggedExtents;

  bool empty() const { return IndexTensors.empty(); }
  bool isRaggedExtent(const std::string &Name) const;
};

/// Discovers the segment loops, index tensors, and ragged sizes of \p F.
RaggedInfo analyzeRagged(const Func &F);

/// The per-request index-tensor contract, next to checkExtentArgs: every
/// index tensor of \p RI is bound in \p Args to a 1-D integer buffer whose
/// values are >= 0, monotonically non-decreasing, and within the leading
/// extents of the tensors it gates. Returns a typed error, never aborts.
Status checkIndptrArgs(const RaggedInfo &RI,
                       const std::map<std::string, Buffer *> &Args);

/// Convenience form analyzing \p F on the fly (one body walk).
Status checkIndptrArgs(const Func &F,
                       const std::map<std::string, Buffer *> &Args);

} // namespace ft

#endif // FT_ANALYSIS_RAGGED_H
