//===- codegen/profile.cpp ------------------------------------------------===//

#include "codegen/profile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>

#include "ir/printer.h"
#include "support/string_utils.h"

namespace ft::profile {

namespace {

//===----------------------------------------------------------------------===//
// Source-map construction
//===----------------------------------------------------------------------===//

/// Best-effort constant evaluation of extents (gemm operand sizes are
/// constant in practice after const folding; anything else estimates 0).
std::optional<int64_t> evalConstInt(const Expr &E) {
  if (!E)
    return std::nullopt;
  switch (E->kind()) {
  case NodeKind::IntConst:
    return cast<IntConstNode>(E)->Val;
  case NodeKind::Binary: {
    auto B = cast<BinaryNode>(E);
    auto L = evalConstInt(B->LHS), R = evalConstInt(B->RHS);
    if (!L || !R)
      return std::nullopt;
    switch (B->Op) {
    case BinOpKind::Add:
      return *L + *R;
    case BinOpKind::Sub:
      return *L - *R;
    case BinOpKind::Mul:
      return *L * *R;
    default:
      return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

/// Bytes touched by the Load nodes in \p E (indices included — an indirect
/// access like e[adj[i], k] really does read adj).
uint64_t exprBytes(const Expr &E) {
  if (!E)
    return 0;
  switch (E->kind()) {
  case NodeKind::Load: {
    auto L = cast<LoadNode>(E);
    uint64_t B = sizeOf(L->Dtype);
    for (const Expr &I : L->Indices)
      B += exprBytes(I);
    return B;
  }
  case NodeKind::Binary: {
    auto B = cast<BinaryNode>(E);
    return exprBytes(B->LHS) + exprBytes(B->RHS);
  }
  case NodeKind::Unary:
    return exprBytes(cast<UnaryNode>(E)->Operand);
  case NodeKind::Cast:
    return exprBytes(cast<CastNode>(E)->Operand);
  case NodeKind::IfExpr: {
    auto IE = cast<IfExprNode>(E);
    return exprBytes(IE->Cond) + exprBytes(IE->Then) + exprBytes(IE->Else);
  }
  default:
    return 0;
  }
}

struct MapBuilder {
  SourceMap Map;
  std::map<std::string, DataType> VarTypes;
  std::vector<std::string> Path;

  void addEntry(StmtSourceInfo Info) {
    Map.ById[Info.Id] = Map.Stmts.size();
    Map.Stmts.push_back(std::move(Info));
  }

  /// Walks \p S accumulating direct-access bytes into \p DirectBytes (the
  /// per-iteration cost of the nearest enclosing instrumented statement);
  /// nested For/GemmCall statements get entries of their own and
  /// contribute nothing to the parent.
  void walk(const Stmt &S, int64_t ParentId, int Depth,
            uint64_t &DirectBytes) {
    switch (S->kind()) {
    case NodeKind::StmtSeq:
      for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
        walk(Sub, ParentId, Depth, DirectBytes);
      return;
    case NodeKind::VarDef: {
      auto D = cast<VarDefNode>(S);
      VarTypes[D->Name] = D->Info.Dtype;
      walk(D->Body, ParentId, Depth, DirectBytes);
      return;
    }
    case NodeKind::Store: {
      auto St = cast<StoreNode>(S);
      DirectBytes += exprBytes(St->Value) + varBytes(St->Var);
      for (const Expr &I : St->Indices)
        DirectBytes += exprBytes(I);
      return;
    }
    case NodeKind::ReduceTo: {
      auto R = cast<ReduceToNode>(S);
      // Read-modify-write: the element is both loaded and stored.
      DirectBytes += exprBytes(R->Value) + 2 * varBytes(R->Var);
      for (const Expr &I : R->Indices)
        DirectBytes += exprBytes(I);
      return;
    }
    case NodeKind::If: {
      // Both branches are charged: a static estimate cannot know the
      // taken ratio, and loop-invariant guards usually pick one branch
      // for the whole loop anyway.
      auto I = cast<IfNode>(S);
      DirectBytes += exprBytes(I->Cond);
      walk(I->Then, ParentId, Depth, DirectBytes);
      if (I->Else)
        walk(I->Else, ParentId, Depth, DirectBytes);
      return;
    }
    case NodeKind::For: {
      auto L = cast<ForNode>(S);
      StmtSourceInfo Info;
      Info.Id = L->Id;
      Info.Kind = "for";
      Info.Label = L->Label;
      Info.Iter = L->Iter;
      Info.Name =
          (L->Label.empty() ? L->Iter : L->Label) + "#" + std::to_string(L->Id);
      Info.Extent = toString(L->Begin) + ":" + toString(L->End);
      Info.Parallel = L->Property.Parallel;
      Info.ParentId = ParentId;
      Info.Depth = Depth;
      Path.push_back(Info.Name);
      Info.Path = Path;
      Info.QualName = Map.FuncName + "/" + Info.Name;
      size_t Idx = Map.Stmts.size();
      addEntry(std::move(Info));
      uint64_t Bytes = 0;
      walk(L->Body, L->Id, Depth + 1, Bytes);
      Map.Stmts[Idx].DirectAccessBytesPerIter = Bytes;
      Path.pop_back();
      return;
    }
    case NodeKind::GemmCall: {
      auto G = cast<GemmCallNode>(S);
      StmtSourceInfo Info;
      Info.Id = G->Id;
      Info.Kind = "gemm";
      Info.Label = G->Label;
      Info.Name = (G->Label.empty() ? std::string("gemm") : G->Label) + "#" +
                  std::to_string(G->Id);
      Info.Extent = toString(G->M) + "x" + toString(G->N) + "x" +
                    toString(G->K);
      Info.ParentId = ParentId;
      Info.Depth = Depth;
      Path.push_back(Info.Name);
      Info.Path = Path;
      Info.QualName = Map.FuncName + "/" + Info.Name;
      // One gemm "iteration" touches A, B, and C (read + write).
      auto M = evalConstInt(G->M), N = evalConstInt(G->N),
           K = evalConstInt(G->K);
      if (M && N && K)
        Info.DirectAccessBytesPerIter = uint64_t(*M * *K + *K * *N +
                                                 2 * *M * *N) *
                                        sizeOf(G->Dtype);
      addEntry(std::move(Info));
      Path.pop_back();
      return;
    }
    default:
      return;
    }
  }

  uint64_t varBytes(const std::string &Var) const {
    auto It = VarTypes.find(Var);
    return It == VarTypes.end() ? 0 : sizeOf(It->second);
  }
};



std::string joinPath(const std::vector<std::string> &Path) {
  std::string Out;
  for (size_t I = 0; I < Path.size(); ++I)
    Out += (I ? ";" : "") + Path[I];
  return Out;
}

std::string fmtBytes(uint64_t B) {
  char Buf[64];
  if (B >= (uint64_t(1) << 20))
    std::snprintf(Buf, sizeof(Buf), "%.1f MiB", double(B) / (1 << 20));
  else if (B >= 1024)
    std::snprintf(Buf, sizeof(Buf), "%.1f KiB", double(B) / 1024);
  else
    std::snprintf(Buf, sizeof(Buf), "%llu B",
                  static_cast<unsigned long long>(B));
  return Buf;
}

//===----------------------------------------------------------------------===//
// Registry + FT_PROFILE sink
//===----------------------------------------------------------------------===//

enum class SinkMode { Off, StderrTable, FileTable, Folded, Json };

/// Request ids kept per symbol in the attribution ring.
constexpr size_t kMaxRecentRequestIds = 16;

struct Registry {
  std::mutex M;
  std::vector<KernelProfile> Profiles;
  /// Serving-request join: per-symbol attribution, fed by noteRequest()
  /// on every request-carrying run and folded into the profile when it is
  /// pulled (jit.cpp's pullProfile).
  std::map<std::string, RequestAttribution> Attr;
  SinkMode Mode = SinkMode::Off;
  std::string Path;
};

/// Leaked so the atexit sink never races static destruction (same pattern
/// as trace.cpp's State).
Registry &reg() {
  static Registry *R = new Registry;
  return *R;
}

bool endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

void atExitSink() {
  Registry &R = reg();
  std::vector<KernelProfile> Profiles;
  SinkMode Mode;
  std::string Path;
  {
    std::lock_guard<std::mutex> Lock(R.M);
    Profiles = R.Profiles;
    Mode = R.Mode;
    Path = R.Path;
  }
  if (Mode == SinkMode::Off)
    return;
  if (Mode == SinkMode::StderrTable) {
    for (const KernelProfile &P : Profiles)
      std::fprintf(stderr, "%s", formatTable(P).c_str());
    return;
  }
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "FT_PROFILE: could not open %s\n", Path.c_str());
    return;
  }
  std::string Out;
  switch (Mode) {
  case SinkMode::Folded:
    for (const KernelProfile &P : Profiles)
      Out += toFolded(P);
    break;
  case SinkMode::Json:
    Out = snapshotJson();
    break;
  default:
    for (const KernelProfile &P : Profiles)
      Out += formatTable(P);
    break;
  }
  std::fwrite(Out.data(), 1, Out.size(), F);
  std::fclose(F);
  std::fprintf(stderr, "FT_PROFILE: wrote %s (%zu kernel%s)\n", Path.c_str(),
               Profiles.size(), Profiles.size() == 1 ? "" : "s");
}

/// Arms the sink from FT_PROFILE at static-initialization time (mirrors
/// trace.cpp's EnvInit).
struct EnvInit {
  EnvInit() {
    const char *V = std::getenv("FT_PROFILE");
    if (V == nullptr || V[0] == '\0' || std::string(V) == "0")
      return;
    Registry &R = reg();
    std::string S(V);
    if (S == "1" || S == "stderr") {
      R.Mode = SinkMode::StderrTable;
    } else {
      R.Path = S;
      R.Mode = endsWith(S, ".folded") ? SinkMode::Folded
               : endsWith(S, ".json") ? SinkMode::Json
                                      : SinkMode::FileTable;
    }
    std::atexit(atExitSink);
  }
} TheEnvInit;

} // namespace

//===----------------------------------------------------------------------===//
// SourceMap / KernelProfile
//===----------------------------------------------------------------------===//

SourceMap buildSourceMap(const Func &F,
                         const std::vector<trace::ScheduleDecision> &Audit) {
  MapBuilder B;
  B.Map.FuncName = F.Name;
  B.Path.push_back(F.Name);

  StmtSourceInfo Root;
  Root.Id = -1;
  Root.Kind = "kernel";
  Root.Name = F.Name;
  Root.ParentId = -2;
  Root.Depth = 0;
  Root.Path = B.Path;
  Root.QualName = F.Name;
  B.addEntry(std::move(Root));

  uint64_t RootBytes = 0;
  B.walk(F.Body, -1, 1, RootBytes);
  B.Map.Stmts[0].DirectAccessBytesPerIter = RootBytes;

  // Join the audit log through ScheduleDecision::StmtIds. Only applied
  // decisions shape the loop nest; each decision is attached at most once
  // per statement even when it lists an id twice (split reuses the target
  // id for one of its outputs).
  for (const trace::ScheduleDecision &D : Audit) {
    if (!D.Applied || D.StmtIds.empty())
      continue;
    std::vector<int64_t> Ids = D.StmtIds;
    std::sort(Ids.begin(), Ids.end());
    Ids.erase(std::unique(Ids.begin(), Ids.end()), Ids.end());
    std::string Entry = D.Primitive;
    if (!D.Target.empty())
      Entry += "(" + D.Target + ")";
    for (int64_t Id : Ids) {
      auto It = B.Map.ById.find(Id);
      if (It != B.Map.ById.end())
        B.Map.Stmts[It->second].Provenance.push_back(Entry);
    }
  }
  return B.Map;
}

const LoopSample *KernelProfile::sample(int64_t StmtId) const {
  for (const LoopSample &S : Samples)
    if (S.StmtId == StmtId)
      return &S;
  return nullptr;
}

double KernelProfile::selfNs(int64_t StmtId) const {
  const LoopSample *S = sample(StmtId);
  if (!S)
    return 0;
  double Self = S->estNs();
  for (const StmtSourceInfo &Info : Map.Stmts)
    if (Info.ParentId == StmtId)
      if (const LoopSample *C = sample(Info.Id))
        Self -= C->estNs();
  return Self < 0 ? 0 : Self;
}

//===----------------------------------------------------------------------===//
// Renderers
//===----------------------------------------------------------------------===//

std::string formatTable(const KernelProfile &P) {
  std::string Out;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "=== kernel profile: %s ===\n",
                P.Symbol.c_str());
  Out += Buf;
  std::snprintf(
      Buf, sizeof(Buf),
      "invocations %llu | peak live %s | allocated %s in %llu blocks\n",
      static_cast<unsigned long long>(P.Invocations),
      fmtBytes(P.PeakBytes).c_str(), fmtBytes(P.TotalAllocBytes).c_str(),
      static_cast<unsigned long long>(P.AllocCount));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "%-46s %9s %12s %11s %11s %9s %9s\n",
                "loop", "calls", "iters", "total ms", "self ms", "ns/iter",
                "est MiB");
  Out += Buf;

  // Rows in source-map order (pre-order over the loop nest); statements
  // the runtime never entered still show, with zero counters.
  for (const StmtSourceInfo &Info : P.Map.Stmts) {
    const LoopSample *S = P.sample(Info.Id);
    LoopSample Zero;
    if (!S)
      S = &Zero;
    std::string Name(2 * size_t(Info.Depth), ' ');
    Name += Info.Name;
    if (!Info.Extent.empty())
      Name += " [" + Info.Extent + "]";
    if (Info.Parallel)
      Name += " par";
    double TotalNs = S->estNs();
    double SelfNs = P.selfNs(Info.Id);
    double NsPerIter = S->Iters ? TotalNs / double(S->Iters) : 0;
    double EstMiB =
        double(Info.DirectAccessBytesPerIter) * double(S->Iters) / (1 << 20);
    std::snprintf(Buf, sizeof(Buf),
                  "%-46s %9llu %12llu %11.3f %11.3f %9.1f %9.2f\n",
                  Name.c_str(), static_cast<unsigned long long>(S->Calls),
                  static_cast<unsigned long long>(S->Iters), TotalNs / 1e6,
                  SelfNs / 1e6, NsPerIter, EstMiB);
    Out += Buf;
    if (!Info.Provenance.empty()) {
      std::string Prov(2 * size_t(Info.Depth) + 2, ' ');
      Prov += "^ after ";
      for (size_t I = 0; I < Info.Provenance.size(); ++I)
        Prov += (I ? ", " : "") + Info.Provenance[I];
      Out += Prov + "\n";
    }
  }
  // Samples the source map cannot name would mean map and kernel are out
  // of sync; surface them rather than dropping silently.
  for (const LoopSample &S : P.Samples)
    if (!P.Map.find(S.StmtId)) {
      std::snprintf(Buf, sizeof(Buf),
                    "stmt#%lld (unresolved) %9llu calls %12llu iters\n",
                    static_cast<long long>(S.StmtId),
                    static_cast<unsigned long long>(S.Calls),
                    static_cast<unsigned long long>(S.Iters));
      Out += Buf;
    }
  return Out;
}

std::string toFolded(const KernelProfile &P) {
  std::string Out;
  for (const StmtSourceInfo &Info : P.Map.Stmts) {
    const LoopSample *S = P.sample(Info.Id);
    if (!S || S->Calls == 0)
      continue;
    long long Self = llround(P.selfNs(Info.Id));
    if (Self <= 0 && Info.Id != -1)
      continue;
    Out += joinPath(Info.Path) + " " + std::to_string(Self < 0 ? 0 : Self) +
           "\n";
  }
  return Out;
}

std::string toJson(const KernelProfile &P) {
  std::string Out = "{";
  Out += "\"symbol\":\"" + jsonEscape(P.Symbol) + "\",";
  Out += "\"func\":\"" + jsonEscape(P.Map.FuncName) + "\",";
  Out += "\"invocations\":" + std::to_string(P.Invocations) + ",";
  Out += "\"current_bytes\":" + std::to_string(P.CurrentBytes) + ",";
  Out += "\"peak_bytes\":" + std::to_string(P.PeakBytes) + ",";
  Out += "\"total_alloc_bytes\":" + std::to_string(P.TotalAllocBytes) + ",";
  Out += "\"alloc_count\":" + std::to_string(P.AllocCount) + ",";
  Out += "\"attributed_runs\":" + std::to_string(P.AttributedRuns) + ",";
  Out += "\"recent_request_ids\":[";
  for (size_t I = 0; I < P.RecentRequestIds.size(); ++I)
    Out += (I ? "," : "") + std::to_string(P.RecentRequestIds[I]);
  Out += "],";
  Out += "\"loops\":[";
  bool First = true;
  auto emitRow = [&](const LoopSample &S, const StmtSourceInfo *Info) {
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"id\":" + std::to_string(S.StmtId);
    Out += ",\"resolved\":";
    Out += Info ? "true" : "false";
    if (Info) {
      Out += ",\"kind\":\"" + jsonEscape(Info->Kind) + "\"";
      Out += ",\"name\":\"" + jsonEscape(Info->Name) + "\"";
      Out += ",\"qual_name\":\"" + jsonEscape(Info->QualName) + "\"";
      Out += ",\"label\":\"" + jsonEscape(Info->Label) + "\"";
      Out += ",\"iter\":\"" + jsonEscape(Info->Iter) + "\"";
      Out += ",\"extent\":\"" + jsonEscape(Info->Extent) + "\"";
      Out += ",\"parallel\":";
      Out += Info->Parallel ? "true" : "false";
      Out += ",\"parent\":" + std::to_string(Info->ParentId);
      Out += ",\"depth\":" + std::to_string(Info->Depth);
      Out += ",\"path\":\"" + jsonEscape(joinPath(Info->Path)) + "\"";
      Out += ",\"provenance\":[";
      for (size_t I = 0; I < Info->Provenance.size(); ++I)
        Out += (I ? "," : "") + ("\"" + jsonEscape(Info->Provenance[I]) +
                                 "\"");
      Out += "]";
      Out += ",\"bytes_per_iter\":" +
             std::to_string(Info->DirectAccessBytesPerIter);
      Out += ",\"est_bytes_moved\":" +
             std::to_string(Info->DirectAccessBytesPerIter * S.Iters);
    }
    Out += ",\"calls\":" + std::to_string(S.Calls);
    Out += ",\"iters\":" + std::to_string(S.Iters);
    Out += ",\"ns\":" + std::to_string(S.Ns);
    Out += ",\"timed_calls\":" + std::to_string(S.TimedCalls);
    Out += ",\"timed_iters\":" + std::to_string(S.TimedIters);
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), ",\"est_total_ns\":%.0f", S.estNs());
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf), ",\"est_self_ns\":%.0f",
                  P.selfNs(S.StmtId));
    Out += Buf;
    Out += "}";
  };
  for (const LoopSample &S : P.Samples)
    emitRow(S, P.Map.find(S.StmtId));
  Out += "]}";
  return Out;
}

//===----------------------------------------------------------------------===//
// Registry API
//===----------------------------------------------------------------------===//

void record(KernelProfile P) {
  emitTraceSpans(P);
  Registry &R = reg();
  std::lock_guard<std::mutex> Lock(R.M);
  R.Profiles.push_back(std::move(P));
}

std::vector<KernelProfile> snapshotProfiles() {
  Registry &R = reg();
  std::lock_guard<std::mutex> Lock(R.M);
  return R.Profiles;
}

void clearProfiles() {
  Registry &R = reg();
  std::lock_guard<std::mutex> Lock(R.M);
  R.Profiles.clear();
  R.Attr.clear();
}

void noteRequest(const std::string &Symbol, uint64_t RequestId) {
  if (RequestId == 0)
    return;
  Registry &R = reg();
  std::lock_guard<std::mutex> Lock(R.M);
  RequestAttribution &A = R.Attr[Symbol];
  ++A.AttributedRuns;
  A.RecentRequestIds.push_back(RequestId);
  if (A.RecentRequestIds.size() > kMaxRecentRequestIds)
    A.RecentRequestIds.erase(A.RecentRequestIds.begin());
}

RequestAttribution requestAttribution(const std::string &Symbol) {
  Registry &R = reg();
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = R.Attr.find(Symbol);
  return It == R.Attr.end() ? RequestAttribution{} : It->second;
}

std::string snapshotJson() {
  std::vector<KernelProfile> Profiles = snapshotProfiles();
  std::string Out = "{\"profiles\":[";
  for (size_t I = 0; I < Profiles.size(); ++I)
    Out += (I ? "," : "") + toJson(Profiles[I]);
  Out += "]}\n";
  return Out;
}

bool envEnabled() { return reg().Mode != SinkMode::Off; }

void emitTraceSpans(const KernelProfile &P) {
  if (!trace::enabled())
    return;
  // The runtime reports totals, not timestamps, so the spans are laid out
  // synthetically: the kernel root starts "now", children run sequentially
  // inside their parent with their estimated durations.
  double Anchor = trace::nowMicros();
  // Cursor per parent id: where the next child of that parent starts.
  std::map<int64_t, double> Cursor;
  std::map<int64_t, double> Start;
  for (const StmtSourceInfo &Info : P.Map.Stmts) {
    const LoopSample *S = P.sample(Info.Id);
    if (!S || S->Calls == 0)
      continue;
    double StartUs =
        Info.Id == -1 ? Anchor
                      : (Cursor.count(Info.ParentId)
                             ? Cursor[Info.ParentId]
                             : Start[Info.ParentId]);
    double DurUs = S->estNs() / 1e3;
    Start[Info.Id] = StartUs;
    Cursor[Info.Id] = StartUs;
    Cursor[Info.ParentId] = StartUs + DurUs;

    trace::SpanEvent E;
    E.Name = "profile/" + Info.QualName;
    E.StartUs = StartUs;
    E.DurUs = DurUs;
    E.Depth = Info.Depth;
    E.Args.emplace_back("calls", std::to_string(S->Calls));
    E.Args.emplace_back("iters", std::to_string(S->Iters));
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.0f", P.selfNs(Info.Id));
    E.Args.emplace_back("est_self_ns", Buf);
    if (!Info.Provenance.empty()) {
      std::string Prov;
      for (size_t I = 0; I < Info.Provenance.size(); ++I)
        Prov += (I ? ", " : "") + Info.Provenance[I];
      E.Args.emplace_back("provenance", Prov);
    }
    trace::emitSpan(std::move(E));
  }
}

} // namespace ft::profile
