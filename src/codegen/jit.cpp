//===- codegen/jit.cpp ----------------------------------------------------===//

#include "codegen/jit.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <dlfcn.h>
#include <fstream>
#include <sys/stat.h>
#include <vector>

#include "codegen/codegen.h"
#include "support/metrics.h"
#include "support/trace.h"

using namespace ft;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

} // namespace

struct Kernel::Impl {
  std::string Source;
  std::string Symbol;
  std::vector<std::string> Params;
  std::map<std::string, DataType> ParamTypes;
  void *Handle = nullptr;
  void (*Entry)(void **) = nullptr;
  /// Optional telemetry export emitted by codegen; reads the kernel .so's
  /// private rt::KernelStats (invocations, parallelFor regions/iterations,
  /// gemm calls).
  void (*RtStats)(uint64_t *) = nullptr;
  double CompileSec = 0;
  std::string SpanName; ///< "rt/kernel/<symbol>", precomputed.

  ~Impl() {
    if (Handle)
      dlclose(Handle);
  }
};

Result<Kernel> Kernel::compile(const Func &F, const std::string &OptFlags) {
  trace::Span Sp("codegen/jit");
  if (Sp.active())
    Sp.annotate("func", F.Name);
  metrics::counter("codegen/jit_compiles").fetch_add(1);
  auto I = std::make_shared<Impl>();
  I->Source = generateCpp(F);
  I->Symbol = kernelSymbol(F);
  I->Params = F.Params;
  for (const std::string &P : F.Params) {
    auto D = findVarDef(F.Body, P);
    if (!D)
      return Result<Kernel>::error("parameter `" + P + "` has no VarDef");
    I->ParamTypes[P] = D->Info.Dtype;
  }

  static std::atomic<int> Counter{0};
  std::string Dir = "/tmp/ftjit." + std::to_string(getpid()) + "." +
                    std::to_string(Counter.fetch_add(1));
  if (mkdir(Dir.c_str(), 0755) != 0)
    return Result<Kernel>::error("could not create JIT directory " + Dir);
  std::string Src = Dir + "/kernel.cpp";
  std::string Lib = Dir + "/kernel.so";
  std::string Log = Dir + "/compile.log";
  {
    std::ofstream Out(Src);
    Out << I->Source;
  }

  std::string Cmd = "g++ -std=c++20 " + OptFlags +
                    " -march=native -fPIC -shared -I " FT_RUNTIME_INCLUDE_DIR
                    " \"" +
                    Src + "\" -o \"" + Lib + "\" -pthread > \"" + Log +
                    "\" 2>&1";
  auto T0 = std::chrono::steady_clock::now();
  int Rc = std::system(Cmd.c_str());
  auto T1 = std::chrono::steady_clock::now();
  I->CompileSec = std::chrono::duration<double>(T1 - T0).count();
  if (Rc != 0)
    return Result<Kernel>::error("host compiler failed:\n" + readFile(Log));

  I->Handle = dlopen(Lib.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!I->Handle)
    return Result<Kernel>::error(std::string("dlopen failed: ") + dlerror());
  I->Entry = reinterpret_cast<void (*)(void **)>(
      dlsym(I->Handle, I->Symbol.c_str()));
  if (!I->Entry)
    return Result<Kernel>::error("kernel symbol not found: " + I->Symbol);
  // Optional: kernels generated before the telemetry export existed (or
  // hand-written ones) simply lack the symbol.
  I->RtStats = reinterpret_cast<void (*)(uint64_t *)>(
      dlsym(I->Handle, (I->Symbol + "_rt_stats").c_str()));
  I->SpanName = "rt/kernel/" + I->Symbol;

  if (Sp.active()) {
    Sp.annotate("compile_sec", I->CompileSec);
    Sp.annotate("source_bytes", static_cast<uint64_t>(I->Source.size()));
  }
  Kernel K;
  K.I = std::move(I);
  return K;
}

Status Kernel::run(const std::map<std::string, Buffer *> &Args) const {
  ftAssert(I != nullptr, "running an empty Kernel");
  std::vector<void *> Ptrs;
  Ptrs.reserve(I->Params.size());
  for (const std::string &P : I->Params) {
    auto It = Args.find(P);
    if (It == Args.end() || It->second == nullptr)
      return Status::error("missing argument `" + P + "`");
    if (It->second->dtype() != I->ParamTypes.at(P))
      return Status::error("dtype mismatch for argument `" + P + "`");
    Ptrs.push_back(It->second->raw());
  }
  trace::Span Sp(I->SpanName);
  I->Entry(Ptrs.data());
  metrics::counter("rt/kernel_invocations").fetch_add(1);
  if (Sp.active() && I->RtStats) {
    // Cumulative counts from the kernel .so's private KernelStats copy.
    uint64_t S[4] = {0, 0, 0, 0};
    I->RtStats(S);
    Sp.annotate("invocations", S[0]);
    Sp.annotate("parallel_fors", S[1]);
    Sp.annotate("parallel_iters", S[2]);
    Sp.annotate("gemm_calls", S[3]);
  }
  return Status::success();
}

double Kernel::compileSeconds() const { return I ? I->CompileSec : 0; }

const std::string &Kernel::source() const {
  ftAssert(I != nullptr, "source() on an empty Kernel");
  return I->Source;
}
