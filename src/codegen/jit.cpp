//===- codegen/jit.cpp ----------------------------------------------------===//

#include "codegen/jit.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <dlfcn.h>
#include <fstream>
#include <set>
#include <sys/stat.h>
#include <vector>

#include "analysis/extents.h"
#include "analysis/ragged.h"
#include "codegen/codegen.h"
#include "codegen/kernel_cache.h"
#include "codegen/profile.h"
#include "codegen/rt/ft_runtime.h"
#include "support/metrics.h"
#include "support/trace.h"

using namespace ft;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

/// Single-quotes \p S for sh(1): safe against spaces and every shell
/// metacharacter (FT_CACHE_DIR, $HOME and /tmp paths all flow into the
/// std::system command line).
std::string shellQuote(const std::string &S) {
  std::string Out = "'";
  for (char C : S) {
    if (C == '\'')
      Out += "'\\''";
    else
      Out += C;
  }
  Out += "'";
  return Out;
}

/// Removes the JIT scratch directory and its known contents on scope exit —
/// success and failure paths alike (the dlopen'd .so stays mapped after its
/// directory entry is unlinked).
struct ScratchDir {
  std::string Path;
  ~ScratchDir() {
    if (Path.empty())
      return;
    for (const char *F : {"/kernel.cpp", "/kernel.so", "/compile.log"})
      ::unlink((Path + F).c_str());
    ::rmdir(Path.c_str());
  }
};

/// True when some loop was proven for explicit-width SIMD
/// (vectorize(LoopId, Width)). Codegen then emits __restrict__ parameter
/// bindings, so Kernel::run must enforce the no-aliasing contract.
bool hasExplicitSimdLoop(const Stmt &S) {
  switch (S->kind()) {
  case NodeKind::StmtSeq:
    for (const Stmt &Sub : cast<StmtSeqNode>(S)->Stmts)
      if (hasExplicitSimdLoop(Sub))
        return true;
    return false;
  case NodeKind::VarDef:
    return hasExplicitSimdLoop(cast<VarDefNode>(S)->Body);
  case NodeKind::If: {
    auto I = cast<IfNode>(S);
    return hasExplicitSimdLoop(I->Then) ||
           (I->Else != nullptr && hasExplicitSimdLoop(I->Else));
  }
  case NodeKind::For: {
    auto L = cast<ForNode>(S);
    return L->Property.VectorWidth > 0 || hasExplicitSimdLoop(L->Body);
  }
  default:
    return false;
  }
}

/// Reads and validates the versioned `<symbol>_rt_stats` export.
KernelRtStats readRtStats(void (*Fn)(uint64_t *)) {
  KernelRtStats Out;
  if (!Fn)
    return Out;
  uint64_t S[1 + rt::KernelStats::kNumFields] = {0};
  Fn(S);
  // Header word: (abi version << 32) | field count. A kernel built against
  // a different runtime is reported invalid instead of misread.
  if ((S[0] >> 32) != rt::KernelStats::kAbiVersion ||
      (S[0] & 0xffffffffu) != rt::KernelStats::kNumFields)
    return Out;
  Out.Valid = true;
  Out.Invocations = S[1 + rt::KernelStats::FInvocations];
  Out.ParallelFors = S[1 + rt::KernelStats::FParallelFors];
  Out.ParallelIters = S[1 + rt::KernelStats::FParallelIters];
  Out.GemmCalls = S[1 + rt::KernelStats::FGemmCalls];
  Out.CurrentBytes = S[1 + rt::KernelStats::FCurrentBytes];
  Out.PeakBytes = S[1 + rt::KernelStats::FPeakBytes];
  Out.TotalAllocBytes = S[1 + rt::KernelStats::FTotalAllocBytes];
  Out.AllocCount = S[1 + rt::KernelStats::FAllocCount];
  return Out;
}

} // namespace

struct Kernel::Impl {
  std::string Source;
  std::string Symbol;
  std::vector<std::string> Params;
  std::map<std::string, DataType> ParamTypes;
  /// Declared shape of each parameter — Exprs, not ints, because a
  /// shape-generic kernel's extents are loads of extent parameters.
  std::map<std::string, std::vector<Expr>> ParamShapes;
  /// Extent parameters of the compiled Func: run() binds and range-checks
  /// them per call, mirroring validateArgs, so the generated code never
  /// sees a non-positive extent or an inconsistent tensor/extent pair.
  ExtentSpec Extents;
  /// Ragged structure of the compiled Func (segment loops, index tensors):
  /// run() re-checks the index-tensor contract per call — schedules were
  /// proven legal under the monotonicity facts, so a kernel must never see
  /// a decreasing or out-of-range indptr (analysis/ragged.h).
  RaggedInfo Ragged;
  void *Handle = nullptr;
  void (*Entry)(void **) = nullptr;
  /// Optional telemetry export emitted by codegen; reads the kernel .so's
  /// private rt::KernelStats (invocations, parallelFor regions/iterations,
  /// gemm calls, memory accounting) behind a version/field-count header.
  void (*RtStats)(uint64_t *) = nullptr;
  /// Optional thread-budget setter: caps the kernel's private ThreadPool
  /// (rt::setPoolCap) so concurrent kernels cannot oversubscribe the host.
  void (*RtSetThreads)(int) = nullptr;
  /// Profile-mode export: fills the per-statement counter table; called
  /// with (nullptr, 0) it returns the buffer size in words.
  uint64_t (*RtProfile)(uint64_t *, uint64_t) = nullptr;
  bool Profiled = false;
  profile::SourceMap Map;
  std::string SpanName; ///< "rt/kernel/<symbol>", precomputed.
  /// True when the kernel was compiled with __restrict__ parameters (some
  /// loop proven for explicit SIMD): run() must reject aliasing arguments,
  /// or the compiled code's no-overlap assumption would be a silent lie.
  bool RequiresDistinctParams = false;
  /// Parameters the kernel writes (Output/InOut). Two arguments may only
  /// share a pointer when neither is written.
  std::set<std::string> WrittenParams;

  profile::KernelProfile pullProfile() const {
    profile::KernelProfile P;
    P.Symbol = Symbol;
    P.Map = Map;
    if (RtProfile) {
      uint64_t Need = RtProfile(nullptr, 0);
      std::vector<uint64_t> Buf(Need, 0);
      if (RtProfile(Buf.data(), Need) == Need && Need >= 2 &&
          (Buf[0] >> 32) == rt::kProfileAbiVersion &&
          (Buf[0] & 0xffffffffu) == rt::kProfileFieldsPerSlot) {
        uint64_t N = Buf[1];
        for (uint64_t S = 0; S < N; ++S) {
          const uint64_t *R = Buf.data() + 2 + S * rt::kProfileFieldsPerSlot;
          profile::LoopSample L;
          L.StmtId = static_cast<int64_t>(R[0]);
          L.Calls = R[1];
          L.Iters = R[2];
          L.Ns = R[3];
          L.TimedCalls = R[4];
          L.TimedIters = R[5];
          P.Samples.push_back(L);
        }
      }
    }
    KernelRtStats St = readRtStats(RtStats);
    if (St.Valid) {
      P.Invocations = St.Invocations;
      P.CurrentBytes = St.CurrentBytes;
      P.PeakBytes = St.PeakBytes;
      P.TotalAllocBytes = St.TotalAllocBytes;
      P.AllocCount = St.AllocCount;
    }
    profile::RequestAttribution A = profile::requestAttribution(Symbol);
    P.AttributedRuns = A.AttributedRuns;
    P.RecentRequestIds = std::move(A.RecentRequestIds);
    return P;
  }

  ~Impl() {
    // The accumulated profile outlives the kernel library: recorded into
    // the host-side registry (FT_PROFILE sink, snapshotJson) before the
    // .so — and its private counters — are unloaded.
    if (Profiled && Handle && RtProfile) {
      profile::KernelProfile P = pullProfile();
      if (P.Invocations > 0 || !P.Samples.empty())
        profile::record(std::move(P));
    }
    if (Handle)
      dlclose(Handle);
  }

  /// Builds the host-side half of an Impl from the Func alone (everything
  /// that does not require the compiled library): symbol, profile source
  /// map, parameter binding. Shared by the miss path and the disk-hit path.
  static Result<std::shared_ptr<Impl>> makeSkeleton(const Func &F,
                                                    const CodegenOptions &Opts);

  /// dlopens \p LibPath and resolves the entry plus the telemetry exports.
  /// With \p NeedProfileExport the `<symbol>_rt_profile` export is required.
  Status loadLibrary(const std::string &LibPath, bool NeedProfileExport);
};

Result<std::shared_ptr<Kernel::Impl>>
Kernel::Impl::makeSkeleton(const Func &F, const CodegenOptions &Opts) {
  auto I = std::make_shared<Impl>();
  I->Symbol = kernelSymbol(F);
  I->Profiled = Opts.Profile;
  if (Opts.Profile)
    I->Map = profile::buildSourceMap(F, trace::auditLog());
  I->Params = F.Params;
  I->RequiresDistinctParams = hasExplicitSimdLoop(F.Body);
  I->Extents = extentParamsOf(F);
  I->Ragged = analyzeRagged(F);
  for (const std::string &P : F.Params) {
    auto D = findVarDef(F.Body, P);
    if (!D)
      return Result<std::shared_ptr<Impl>>::error("parameter `" + P +
                                                  "` has no VarDef");
    I->ParamTypes[P] = D->Info.Dtype;
    I->ParamShapes[P] = D->Info.Shape;
    if (D->ATy == AccessType::Output || D->ATy == AccessType::InOut)
      I->WrittenParams.insert(P);
  }
  I->SpanName = "rt/kernel/" + I->Symbol;
  return I;
}

Status Kernel::Impl::loadLibrary(const std::string &LibPath,
                                 bool NeedProfileExport) {
  Handle = dlopen(LibPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle)
    return Status::error(std::string("dlopen failed: ") + dlerror());
  Entry = reinterpret_cast<void (*)(void **)>(dlsym(Handle, Symbol.c_str()));
  if (!Entry)
    return Status::error("kernel symbol not found: " + Symbol);
  // Optional: kernels generated before the telemetry export existed (or
  // hand-written ones) simply lack the symbol.
  RtStats = reinterpret_cast<void (*)(uint64_t *)>(
      dlsym(Handle, (Symbol + "_rt_stats").c_str()));
  RtSetThreads = reinterpret_cast<void (*)(int)>(
      dlsym(Handle, (Symbol + "_rt_set_threads").c_str()));
  if (NeedProfileExport) {
    RtProfile = reinterpret_cast<uint64_t (*)(uint64_t *, uint64_t)>(
        dlsym(Handle, (Symbol + "_rt_profile").c_str()));
    if (!RtProfile)
      return Status::error("profile export not found: " + Symbol +
                           "_rt_profile");
  }
  return Status::success();
}

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

const char *ft::nameOf(KernelCacheTier T) {
  switch (T) {
  case KernelCacheTier::Compiled:
    return "miss";
  case KernelCacheTier::Memory:
    return "mem";
  case KernelCacheTier::Disk:
    return "disk";
  }
  return "?";
}

Result<Kernel> Kernel::compile(const Func &F, const std::string &OptFlags) {
  CodegenOptions Opts;
  Opts.Profile = profile::envEnabled();
  return compile(F, Opts, OptFlags);
}

std::optional<Kernel> Kernel::tryCached(const Func &F,
                                        const CodegenOptions &Opts,
                                        const std::string &OptFlags) {
  kernel_cache::Config Cfg = kernel_cache::config();
  if (!Cfg.Enabled)
    return std::nullopt;
  trace::Span Sp("codegen/kernel_cache.probe");
  auto T0 = std::chrono::steady_clock::now();
  kernel_cache::Key CK = kernel_cache::cacheKey(F, Opts, OptFlags);
  if (Sp.active())
    Sp.annotate("key", CK.hex());
  // Memory tier (skipped for profiled kernels; see compile()).
  if (!Opts.Profile) {
    if (std::optional<Kernel> K = kernel_cache::memLookup(CK.Full)) {
      metrics::counter("codegen/jit_cache_hit_mem").fetch_add(1);
      Sp.annotate("hit", "mem");
      K->Tier = KernelCacheTier::Memory;
      K->CompileSec = secondsSince(T0);
      return K;
    }
  }
  // Disk tier: dlopen the stored object. Corrupt entries are evicted, and
  // the probe reports a miss — it never compiles.
  std::string So = kernel_cache::diskLookup(Cfg, CK);
  if (!So.empty()) {
    if (auto SkelR = Impl::makeSkeleton(F, Opts); SkelR.ok()) {
      std::shared_ptr<Impl> I = *SkelR;
      if (Status L = I->loadLibrary(So, Opts.Profile); L.ok()) {
        I->Source = kernel_cache::storedSource(Cfg, CK);
        metrics::counter("codegen/jit_cache_hit_disk").fetch_add(1);
        Sp.annotate("hit", "disk");
        Kernel K;
        K.I = std::move(I);
        K.Tier = KernelCacheTier::Disk;
        K.CompileSec = secondsSince(T0);
        if (!Opts.Profile)
          kernel_cache::memInsert(CK.Full, K, Cfg.MemEntries);
        return K;
      }
      kernel_cache::evictDisk(Cfg, CK);
    }
  }
  // Deliberately not counted against codegen/jit_cache_miss: a probe miss
  // is expected serving traffic (the cold tier handles it), not a compile.
  Sp.annotate("hit", "none");
  return std::nullopt;
}

Result<Kernel> Kernel::compile(const Func &F, const CodegenOptions &Opts,
                               const std::string &OptFlags) {
  trace::Span Sp("codegen/jit");
  if (Sp.active())
    Sp.annotate("func", F.Name);
  metrics::counter("codegen/jit_compiles").fetch_add(1);
  auto T0 = std::chrono::steady_clock::now();

  // Resolve the cache counters eagerly so all three always show up in the
  // FT_METRICS exit summary, hits or not.
  auto &HitMem = metrics::counter("codegen/jit_cache_hit_mem");
  auto &HitDisk = metrics::counter("codegen/jit_cache_hit_disk");
  auto &Miss = metrics::counter("codegen/jit_cache_miss");

  kernel_cache::Config Cfg = kernel_cache::config();
  kernel_cache::Key CK;
  {
    trace::Span LSp("codegen/kernel_cache.lookup");
    if (Cfg.Enabled) {
      CK = kernel_cache::cacheKey(F, Opts, OptFlags);
      if (LSp.active())
        LSp.annotate("key", CK.hex());
      // Memory tier. Profiled kernels skip it: a shared handle would merge
      // the per-statement profile counters of unrelated call sites.
      if (!Opts.Profile) {
        if (std::optional<Kernel> K = kernel_cache::memLookup(CK.Full)) {
          HitMem.fetch_add(1);
          LSp.annotate("hit", "mem");
          if (Sp.active())
            Sp.annotate("cache", "mem");
          K->Tier = KernelCacheTier::Memory;
          K->CompileSec = secondsSince(T0);
          return *K;
        }
      }
      // Disk tier: dlopen the stored object, skipping codegen + cc. A
      // corrupt or truncated entry fails to load; evict it and fall
      // through to a fresh compile.
      std::string So = kernel_cache::diskLookup(Cfg, CK);
      if (!So.empty()) {
        auto SkelR = Impl::makeSkeleton(F, Opts);
        if (!SkelR.ok())
          return Result<Kernel>::error(SkelR.message());
        std::shared_ptr<Impl> I = *SkelR;
        if (Status L = I->loadLibrary(So, Opts.Profile); L.ok()) {
          I->Source = kernel_cache::storedSource(Cfg, CK);
          HitDisk.fetch_add(1);
          LSp.annotate("hit", "disk");
          if (Sp.active())
            Sp.annotate("cache", "disk");
          Kernel K;
          K.I = std::move(I);
          K.Tier = KernelCacheTier::Disk;
          K.CompileSec = secondsSince(T0);
          if (!Opts.Profile)
            kernel_cache::memInsert(CK.Full, K, Cfg.MemEntries);
          return K;
        }
        kernel_cache::evictDisk(Cfg, CK);
      }
    }
    Miss.fetch_add(1);
    LSp.annotate("hit", "none");
  }

  auto SkelR = Impl::makeSkeleton(F, Opts);
  if (!SkelR.ok())
    return Result<Kernel>::error(SkelR.message());
  std::shared_ptr<Impl> I = *SkelR;
  I->Source = generateCpp(F, Opts);

  static std::atomic<int> Counter{0};
  ScratchDir Scratch; // Removes the directory on every exit path below.
  std::string Dir = "/tmp/ftjit." + std::to_string(getpid()) + "." +
                    std::to_string(Counter.fetch_add(1));
  if (mkdir(Dir.c_str(), 0755) != 0)
    return Result<Kernel>::error("could not create JIT directory " + Dir);
  Scratch.Path = Dir;
  std::string Src = Dir + "/kernel.cpp";
  std::string Lib = Dir + "/kernel.so";
  std::string Log = Dir + "/compile.log";
  {
    std::ofstream Out(Src);
    Out << I->Source;
  }

  // -fno-gnu-unique is load-bearing: without it, the function-local
  // statics of the header-only runtime (KernelStats, ProfileTable,
  // ThreadPool singletons) are emitted as STB_GNU_UNIQUE symbols, which
  // the dynamic linker resolves process-wide even under RTLD_LOCAL and
  // which pin the .so against dlclose. Every kernel would then share the
  // first-loaded kernel's runtime state — cross-kernel stats pollution,
  // and a heap overflow when a later kernel indexes the first kernel's
  // (smaller) profiler slot arrays.
  // -fopenmp-simd honors `#pragma omp simd` (and its reduction/aligned
  // clauses) without linking the OpenMP runtime — no new dependency.
  std::string Cmd = "g++ -std=c++20 " + OptFlags +
                    " -march=native -fopenmp-simd -fPIC -fno-gnu-unique "
                    "-shared -I " +
                    shellQuote(FT_RUNTIME_INCLUDE_DIR) + " " +
                    shellQuote(Src) + " -o " + shellQuote(Lib) +
                    " -pthread > " + shellQuote(Log) + " 2>&1";
  auto TCc = std::chrono::steady_clock::now();
  int Rc = std::system(Cmd.c_str());
  double CcSec = secondsSince(TCc);
  if (Rc != 0)
    return Result<Kernel>::error("host compiler failed:\n" + readFile(Log));
  if (!fileExists(Lib)) {
    // Some toolchain wrappers exit 0 after failing (e.g. a ccache/distcc
    // front-end dying on signal); the log is the only evidence.
    return Result<Kernel>::error(
        "host compiler exited 0 but produced no output .so; compile log:\n" +
        readFile(Log));
  }

  if (Status L = I->loadLibrary(Lib, Opts.Profile); !L.ok())
    return Result<Kernel>::error(L.message());

  if (Cfg.Enabled)
    kernel_cache::publish(Cfg, CK, Lib, I->Source);

  if (Sp.active()) {
    Sp.annotate("compile_sec", CcSec);
    Sp.annotate("source_bytes", static_cast<uint64_t>(I->Source.size()));
    Sp.annotate("cache", "miss");
  }
  Kernel K;
  K.I = std::move(I);
  K.CompileSec = CcSec;
  if (Cfg.Enabled && !Opts.Profile)
    kernel_cache::memInsert(CK.Full, K, Cfg.MemEntries);
  return K;
}

Status Kernel::run(const std::map<std::string, Buffer *> &Args) const {
  return run(Args, /*RequestId=*/0);
}

Status Kernel::run(const std::map<std::string, Buffer *> &Args,
                   uint64_t RequestId) const {
  ftAssert(I != nullptr, "running an empty Kernel");
  std::vector<void *> Ptrs;
  Ptrs.reserve(I->Params.size());
  for (const std::string &P : I->Params) {
    auto It = Args.find(P);
    if (It == Args.end() || It->second == nullptr)
      return Status::error("missing argument `" + P + "`");
    if (It->second->dtype() != I->ParamTypes.at(P))
      return Status::error("dtype mismatch for argument `" + P + "`");
    if (It->second->shape().size() != I->ParamShapes.at(P).size())
      return Status::error(
          "rank mismatch for argument `" + P + "`: got " +
          std::to_string(It->second->shape().size()) + ", want " +
          std::to_string(I->ParamShapes.at(P).size()));
    Ptrs.push_back(It->second->raw());
  }
  if (!I->Extents.empty()) {
    // Shape-generic kernel: bind the extent arguments, require them >= 1
    // (a non-positive extent would zero or invert every loop bound computed
    // from it), and require each tensor dimension whose symbolic extent
    // folds under the bindings to match the bound buffer — the compiled
    // strides are computed from the extents, not from the buffers.
    std::map<std::string, int64_t> Ext;
    if (Status S = bindExtentArgs(I->Extents, Args, Ext); !S.ok())
      return S;
    for (const auto &[Name, Val] : Ext)
      if (Val < 1)
        return Status::error("extent argument `" + Name +
                             "` must be >= 1, got " + std::to_string(Val));
    for (const std::string &P : I->Params) {
      const std::vector<Expr> &Shape = I->ParamShapes.at(P);
      const Buffer &B = *Args.at(P);
      for (size_t Dim = 0; Dim < Shape.size(); ++Dim) {
        auto Want = evalExtentExpr(Shape[Dim], Ext);
        if (Want && B.shape()[Dim] != *Want)
          return Status::error(
              "shape mismatch for argument `" + P + "` in dimension " +
              std::to_string(Dim) + ": got " + std::to_string(B.shape()[Dim]) +
              ", want " + std::to_string(*Want) +
              " (from the bound extent arguments)");
      }
    }
  }
  if (!I->Ragged.empty())
    if (Status S = checkIndptrArgs(I->Ragged, Args); !S.ok())
      return S;
  if (I->RequiresDistinctParams) {
    for (size_t A = 0; A < Ptrs.size(); ++A)
      for (size_t B = A + 1; B < Ptrs.size(); ++B)
        if (Ptrs[A] == Ptrs[B] && (I->WrittenParams.count(I->Params[A]) ||
                                   I->WrittenParams.count(I->Params[B])))
          return Status::error(
              "arguments `" + I->Params[A] + "` and `" + I->Params[B] +
              "` alias, but the kernel was compiled with proven no-aliasing "
              "(__restrict__ parameters for SIMD lowering)");
  }
  trace::Span Sp(I->SpanName);
  if (RequestId != 0) {
    if (Sp.active())
      Sp.annotate("req", RequestId);
    if (I->Profiled)
      profile::noteRequest(I->Symbol, RequestId);
  }
  I->Entry(Ptrs.data());
  metrics::counter("rt/kernel_invocations").fetch_add(1);
  if (Sp.active()) {
    // Cumulative counts from the kernel .so's private KernelStats copy.
    KernelRtStats S = readRtStats(I->RtStats);
    if (S.Valid) {
      Sp.annotate("invocations", S.Invocations);
      Sp.annotate("parallel_fors", S.ParallelFors);
      Sp.annotate("parallel_iters", S.ParallelIters);
      Sp.annotate("gemm_calls", S.GemmCalls);
      if (I->Profiled) {
        Sp.annotate("peak_bytes", S.PeakBytes);
        Sp.annotate("total_alloc_bytes", S.TotalAllocBytes);
      }
    }
  }
  return Status::success();
}

bool Kernel::setMaxThreads(int N) const {
  if (!I || !I->RtSetThreads)
    return false;
  I->RtSetThreads(N < 1 ? 1 : N);
  return true;
}

double Kernel::compileSeconds() const { return CompileSec; }

KernelCacheTier Kernel::cacheTier() const { return Tier; }

const std::string &Kernel::source() const {
  ftAssert(I != nullptr, "source() on an empty Kernel");
  return I->Source;
}

KernelRtStats Kernel::rtStats() const {
  return I ? readRtStats(I->RtStats) : KernelRtStats{};
}

bool Kernel::profiled() const { return I && I->Profiled; }

const profile::SourceMap &Kernel::sourceMap() const {
  ftAssert(I != nullptr, "sourceMap() on an empty Kernel");
  return I->Map;
}

profile::KernelProfile Kernel::profileNow() const {
  ftAssert(I != nullptr, "profileNow() on an empty Kernel");
  return I->pullProfile();
}
