//===- codegen/jit.cpp ----------------------------------------------------===//

#include "codegen/jit.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <dlfcn.h>
#include <fstream>
#include <sys/stat.h>
#include <vector>

#include "codegen/codegen.h"
#include "codegen/profile.h"
#include "codegen/rt/ft_runtime.h"
#include "support/metrics.h"
#include "support/trace.h"

using namespace ft;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

/// Reads and validates the versioned `<symbol>_rt_stats` export.
KernelRtStats readRtStats(void (*Fn)(uint64_t *)) {
  KernelRtStats Out;
  if (!Fn)
    return Out;
  uint64_t S[1 + rt::KernelStats::kNumFields] = {0};
  Fn(S);
  // Header word: (abi version << 32) | field count. A kernel built against
  // a different runtime is reported invalid instead of misread.
  if ((S[0] >> 32) != rt::KernelStats::kAbiVersion ||
      (S[0] & 0xffffffffu) != rt::KernelStats::kNumFields)
    return Out;
  Out.Valid = true;
  Out.Invocations = S[1 + rt::KernelStats::FInvocations];
  Out.ParallelFors = S[1 + rt::KernelStats::FParallelFors];
  Out.ParallelIters = S[1 + rt::KernelStats::FParallelIters];
  Out.GemmCalls = S[1 + rt::KernelStats::FGemmCalls];
  Out.CurrentBytes = S[1 + rt::KernelStats::FCurrentBytes];
  Out.PeakBytes = S[1 + rt::KernelStats::FPeakBytes];
  Out.TotalAllocBytes = S[1 + rt::KernelStats::FTotalAllocBytes];
  Out.AllocCount = S[1 + rt::KernelStats::FAllocCount];
  return Out;
}

} // namespace

struct Kernel::Impl {
  std::string Source;
  std::string Symbol;
  std::vector<std::string> Params;
  std::map<std::string, DataType> ParamTypes;
  void *Handle = nullptr;
  void (*Entry)(void **) = nullptr;
  /// Optional telemetry export emitted by codegen; reads the kernel .so's
  /// private rt::KernelStats (invocations, parallelFor regions/iterations,
  /// gemm calls, memory accounting) behind a version/field-count header.
  void (*RtStats)(uint64_t *) = nullptr;
  /// Profile-mode export: fills the per-statement counter table; called
  /// with (nullptr, 0) it returns the buffer size in words.
  uint64_t (*RtProfile)(uint64_t *, uint64_t) = nullptr;
  bool Profiled = false;
  profile::SourceMap Map;
  double CompileSec = 0;
  std::string SpanName; ///< "rt/kernel/<symbol>", precomputed.

  profile::KernelProfile pullProfile() const {
    profile::KernelProfile P;
    P.Symbol = Symbol;
    P.Map = Map;
    if (RtProfile) {
      uint64_t Need = RtProfile(nullptr, 0);
      std::vector<uint64_t> Buf(Need, 0);
      if (RtProfile(Buf.data(), Need) == Need && Need >= 2 &&
          (Buf[0] >> 32) == rt::kProfileAbiVersion &&
          (Buf[0] & 0xffffffffu) == rt::kProfileFieldsPerSlot) {
        uint64_t N = Buf[1];
        for (uint64_t S = 0; S < N; ++S) {
          const uint64_t *R = Buf.data() + 2 + S * rt::kProfileFieldsPerSlot;
          profile::LoopSample L;
          L.StmtId = static_cast<int64_t>(R[0]);
          L.Calls = R[1];
          L.Iters = R[2];
          L.Ns = R[3];
          L.TimedCalls = R[4];
          L.TimedIters = R[5];
          P.Samples.push_back(L);
        }
      }
    }
    KernelRtStats St = readRtStats(RtStats);
    if (St.Valid) {
      P.Invocations = St.Invocations;
      P.CurrentBytes = St.CurrentBytes;
      P.PeakBytes = St.PeakBytes;
      P.TotalAllocBytes = St.TotalAllocBytes;
      P.AllocCount = St.AllocCount;
    }
    return P;
  }

  ~Impl() {
    // The accumulated profile outlives the kernel library: recorded into
    // the host-side registry (FT_PROFILE sink, snapshotJson) before the
    // .so — and its private counters — are unloaded.
    if (Profiled && Handle && RtProfile) {
      profile::KernelProfile P = pullProfile();
      if (P.Invocations > 0 || !P.Samples.empty())
        profile::record(std::move(P));
    }
    if (Handle)
      dlclose(Handle);
  }
};

Result<Kernel> Kernel::compile(const Func &F, const std::string &OptFlags) {
  CodegenOptions Opts;
  Opts.Profile = profile::envEnabled();
  return compile(F, Opts, OptFlags);
}

Result<Kernel> Kernel::compile(const Func &F, const CodegenOptions &Opts,
                               const std::string &OptFlags) {
  trace::Span Sp("codegen/jit");
  if (Sp.active())
    Sp.annotate("func", F.Name);
  metrics::counter("codegen/jit_compiles").fetch_add(1);
  auto I = std::make_shared<Impl>();
  I->Source = generateCpp(F, Opts);
  I->Symbol = kernelSymbol(F);
  I->Profiled = Opts.Profile;
  if (Opts.Profile)
    I->Map = profile::buildSourceMap(F, trace::auditLog());
  I->Params = F.Params;
  for (const std::string &P : F.Params) {
    auto D = findVarDef(F.Body, P);
    if (!D)
      return Result<Kernel>::error("parameter `" + P + "` has no VarDef");
    I->ParamTypes[P] = D->Info.Dtype;
  }

  static std::atomic<int> Counter{0};
  std::string Dir = "/tmp/ftjit." + std::to_string(getpid()) + "." +
                    std::to_string(Counter.fetch_add(1));
  if (mkdir(Dir.c_str(), 0755) != 0)
    return Result<Kernel>::error("could not create JIT directory " + Dir);
  std::string Src = Dir + "/kernel.cpp";
  std::string Lib = Dir + "/kernel.so";
  std::string Log = Dir + "/compile.log";
  {
    std::ofstream Out(Src);
    Out << I->Source;
  }

  // -fno-gnu-unique is load-bearing: without it, the function-local
  // statics of the header-only runtime (KernelStats, ProfileTable,
  // ThreadPool singletons) are emitted as STB_GNU_UNIQUE symbols, which
  // the dynamic linker resolves process-wide even under RTLD_LOCAL and
  // which pin the .so against dlclose. Every kernel would then share the
  // first-loaded kernel's runtime state — cross-kernel stats pollution,
  // and a heap overflow when a later kernel indexes the first kernel's
  // (smaller) profiler slot arrays.
  std::string Cmd = "g++ -std=c++20 " + OptFlags +
                    " -march=native -fPIC -fno-gnu-unique -shared -I "
                    FT_RUNTIME_INCLUDE_DIR " \"" +
                    Src + "\" -o \"" + Lib + "\" -pthread > \"" + Log +
                    "\" 2>&1";
  auto T0 = std::chrono::steady_clock::now();
  int Rc = std::system(Cmd.c_str());
  auto T1 = std::chrono::steady_clock::now();
  I->CompileSec = std::chrono::duration<double>(T1 - T0).count();
  if (Rc != 0)
    return Result<Kernel>::error("host compiler failed:\n" + readFile(Log));

  I->Handle = dlopen(Lib.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!I->Handle)
    return Result<Kernel>::error(std::string("dlopen failed: ") + dlerror());
  I->Entry = reinterpret_cast<void (*)(void **)>(
      dlsym(I->Handle, I->Symbol.c_str()));
  if (!I->Entry)
    return Result<Kernel>::error("kernel symbol not found: " + I->Symbol);
  // Optional: kernels generated before the telemetry export existed (or
  // hand-written ones) simply lack the symbol.
  I->RtStats = reinterpret_cast<void (*)(uint64_t *)>(
      dlsym(I->Handle, (I->Symbol + "_rt_stats").c_str()));
  if (Opts.Profile) {
    I->RtProfile = reinterpret_cast<uint64_t (*)(uint64_t *, uint64_t)>(
        dlsym(I->Handle, (I->Symbol + "_rt_profile").c_str()));
    if (!I->RtProfile)
      return Result<Kernel>::error("profile export not found: " + I->Symbol +
                                   "_rt_profile");
  }
  I->SpanName = "rt/kernel/" + I->Symbol;

  if (Sp.active()) {
    Sp.annotate("compile_sec", I->CompileSec);
    Sp.annotate("source_bytes", static_cast<uint64_t>(I->Source.size()));
  }
  Kernel K;
  K.I = std::move(I);
  return K;
}

Status Kernel::run(const std::map<std::string, Buffer *> &Args) const {
  ftAssert(I != nullptr, "running an empty Kernel");
  std::vector<void *> Ptrs;
  Ptrs.reserve(I->Params.size());
  for (const std::string &P : I->Params) {
    auto It = Args.find(P);
    if (It == Args.end() || It->second == nullptr)
      return Status::error("missing argument `" + P + "`");
    if (It->second->dtype() != I->ParamTypes.at(P))
      return Status::error("dtype mismatch for argument `" + P + "`");
    Ptrs.push_back(It->second->raw());
  }
  trace::Span Sp(I->SpanName);
  I->Entry(Ptrs.data());
  metrics::counter("rt/kernel_invocations").fetch_add(1);
  if (Sp.active()) {
    // Cumulative counts from the kernel .so's private KernelStats copy.
    KernelRtStats S = readRtStats(I->RtStats);
    if (S.Valid) {
      Sp.annotate("invocations", S.Invocations);
      Sp.annotate("parallel_fors", S.ParallelFors);
      Sp.annotate("parallel_iters", S.ParallelIters);
      Sp.annotate("gemm_calls", S.GemmCalls);
      if (I->Profiled) {
        Sp.annotate("peak_bytes", S.PeakBytes);
        Sp.annotate("total_alloc_bytes", S.TotalAllocBytes);
      }
    }
  }
  return Status::success();
}

double Kernel::compileSeconds() const { return I ? I->CompileSec : 0; }

const std::string &Kernel::source() const {
  ftAssert(I != nullptr, "source() on an empty Kernel");
  return I->Source;
}

KernelRtStats Kernel::rtStats() const {
  return I ? readRtStats(I->RtStats) : KernelRtStats{};
}

bool Kernel::profiled() const { return I && I->Profiled; }

const profile::SourceMap &Kernel::sourceMap() const {
  ftAssert(I != nullptr, "sourceMap() on an empty Kernel");
  return I->Map;
}

profile::KernelProfile Kernel::profileNow() const {
  ftAssert(I != nullptr, "profileNow() on an empty Kernel");
  return I->pullProfile();
}
