//===- codegen/kernel_cache.cpp -------------------------------------------===//

#include "codegen/kernel_cache.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <list>
#include <mutex>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#include <unordered_map>
#include <vector>

#include "codegen/codegen.h"
#include "ir/compare.h"

using namespace ft;
using namespace ft::kernel_cache;

namespace {

size_t combine(size_t Seed, size_t V) {
  return Seed ^ (V + 0x9e3779b97f4a7c15ull + (Seed << 6) + (Seed >> 2));
}

size_t hashStr(const std::string &S) { return std::hash<std::string>()(S); }

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISREG(St.st_mode);
}

/// mkdir -p. Returns true when the directory exists afterwards.
bool makeDirs(const std::string &Path) {
  if (Path.empty())
    return false;
  std::string Cur;
  for (size_t I = 0; I < Path.size(); ++I) {
    Cur += Path[I];
    if (Path[I] == '/' || I + 1 == Path.size()) {
      if (Cur == "/" || Cur.empty())
        continue;
      std::string D = Cur;
      while (!D.empty() && D.back() == '/')
        D.pop_back();
      if (D.empty())
        continue;
      if (::mkdir(D.c_str(), 0755) != 0 && errno != EEXIST)
        return false;
    }
  }
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
}

std::string readWholeFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return "";
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

/// Writes \p Bytes to \p Dest via a unique temp file in the same directory
/// plus rename(2), so concurrent publishers of the same key are safe and a
/// reader never observes a half-written entry.
bool writeAtomic(const std::string &Dest, const std::string &Bytes) {
  static std::atomic<int> Counter{0};
  std::string Tmp = Dest + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(Counter.fetch_add(1));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!Out.good()) {
      Out.close();
      ::unlink(Tmp.c_str());
      return false;
    }
  }
  if (::rename(Tmp.c_str(), Dest.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return false;
  }
  return true;
}

/// Preorder statement-ID sequence; the extra key material for profiled
/// kernels (profile slots are addressed by statement ID in the emitted
/// code, so an ID renumbering must be a different entry).
size_t hashStmtIds(const Stmt &S) {
  size_t H = 0x1d5;
  std::function<void(const Stmt &)> Walk = [&](const Stmt &St) {
    H = combine(H, static_cast<size_t>(St->Id));
    switch (St->kind()) {
    case NodeKind::StmtSeq:
      for (const Stmt &Sub : cast<StmtSeqNode>(St)->Stmts)
        Walk(Sub);
      return;
    case NodeKind::VarDef:
      return Walk(cast<VarDefNode>(St)->Body);
    case NodeKind::For:
      return Walk(cast<ForNode>(St)->Body);
    case NodeKind::If: {
      auto I = cast<IfNode>(St);
      Walk(I->Then);
      if (I->Else)
        Walk(I->Else);
      return;
    }
    default:
      return;
    }
  };
  Walk(S);
  return H;
}

/// The memory-tier LRU. Intentionally leaked: entries hold dlopen'd
/// libraries, and dlclosing from a static destructor would race other
/// atexit sinks (same policy as the trace/metrics singletons).
struct MemTier {
  std::mutex Mu;
  std::list<std::pair<uint64_t, Kernel>> Order; ///< Front = MRU.
  std::unordered_map<uint64_t, std::list<std::pair<uint64_t, Kernel>>::iterator>
      Index;
};

MemTier &memTier() {
  static MemTier *T = new MemTier;
  return *T;
}

std::string entryBase(const Config &Cfg, const Key &K) {
  if (Cfg.Dir.empty())
    return "";
  return Cfg.Dir + "/" + K.hex();
}

} // namespace

Config ft::kernel_cache::config() {
  Config C;
  if (const char *E = std::getenv("FT_CACHE")) {
    std::string V = E;
    if (V == "0" || V == "false" || V == "off" || V == "OFF")
      C.Enabled = false;
  }
  if (const char *D = std::getenv("FT_CACHE_DIR")) {
    C.Dir = D;
  } else if (const char *X = std::getenv("XDG_CACHE_HOME")) {
    C.Dir = std::string(X) + "/freetensor";
  } else if (const char *H = std::getenv("HOME")) {
    C.Dir = std::string(H) + "/.cache/freetensor";
  } else {
    C.Dir = "/tmp/freetensor-cache." + std::to_string(::getuid());
  }
  if (const char *M = std::getenv("FT_CACHE_MEM_ENTRIES")) {
    char *End = nullptr;
    long N = std::strtol(M, &End, 10);
    if (End != M && N >= 0)
      C.MemEntries = static_cast<size_t>(N);
  }
  return C;
}

uint64_t ft::kernel_cache::compilerId() {
  static uint64_t Id = [] {
    size_t H = 0xcc1d;
    // `cc --version` first line changes on any toolchain upgrade.
    if (std::FILE *P = ::popen("g++ --version 2>/dev/null", "r")) {
      char Buf[4096];
      std::string Out;
      size_t N;
      while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
        Out.append(Buf, N);
      ::pclose(P);
      H = combine(H, hashStr(Out));
    }
    // Kernels compile with -march=native, so the effective target flags are
    // part of the binary's identity: two nodes sharing a cache directory
    // must not exchange `.so`s built for different micro-architectures.
    if (std::FILE *P =
            ::popen("g++ -march=native -Q --help=target 2>/dev/null", "r")) {
      char Buf[4096];
      std::string Out;
      size_t N;
      while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
        Out.append(Buf, N);
      ::pclose(P);
      H = combine(H, hashStr(Out));
    }
    // The runtime header is compiled into every kernel; changing it changes
    // the binary's behavior even for identical IR.
    H = combine(H, hashStr(readWholeFile(std::string(FT_RUNTIME_INCLUDE_DIR) +
                                         "/ft_runtime.h")));
    return static_cast<uint64_t>(H);
  }();
  return Id;
}

std::string Key::hex() const {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Full));
  return Buf;
}

Key ft::kernel_cache::cacheKey(const Func &F, const CodegenOptions &Opts,
                               const std::string &OptFlags) {
  Key K;
  K.Fingerprint = fingerprint(F);
  size_t H = static_cast<size_t>(K.Fingerprint);
  // The symbol (derived from the Func name) is baked into the .so, and the
  // parameter-name list is the host-side run() binding — both must match
  // for a stored entry to be usable as-is.
  H = combine(H, hashStr(kernelSymbol(F)));
  for (const std::string &P : F.Params)
    H = combine(H, hashStr(P));
  H = combine(H, Opts.Profile ? 0x9f0f11e : 0x91a1);
  if (Opts.Profile)
    H = combine(H, hashStmtIds(F.Body));
  H = combine(H, hashStr(OptFlags));
  H = combine(H, static_cast<size_t>(compilerId()));
  H = combine(H, static_cast<size_t>(kSchemaVersion));
  K.Full = static_cast<uint64_t>(H);
  return K;
}

std::optional<Kernel> ft::kernel_cache::memLookup(uint64_t FullKey) {
  MemTier &T = memTier();
  std::lock_guard<std::mutex> Lock(T.Mu);
  auto It = T.Index.find(FullKey);
  if (It == T.Index.end())
    return std::nullopt;
  T.Order.splice(T.Order.begin(), T.Order, It->second);
  return T.Order.front().second;
}

void ft::kernel_cache::memInsert(uint64_t FullKey, const Kernel &K,
                                 size_t Cap) {
  MemTier &T = memTier();
  std::lock_guard<std::mutex> Lock(T.Mu);
  if (Cap == 0)
    return;
  auto It = T.Index.find(FullKey);
  if (It != T.Index.end()) {
    // First writer wins: keep the resident handle (it may already be
    // shared out by memLookup) and just refresh its LRU position.
    T.Order.splice(T.Order.begin(), T.Order, It->second);
  } else {
    T.Order.emplace_front(FullKey, K);
    T.Index[FullKey] = T.Order.begin();
  }
  while (T.Order.size() > Cap) {
    T.Index.erase(T.Order.back().first);
    T.Order.pop_back();
  }
}

size_t ft::kernel_cache::memSize() {
  MemTier &T = memTier();
  std::lock_guard<std::mutex> Lock(T.Mu);
  return T.Order.size();
}

void ft::kernel_cache::memReset() {
  MemTier &T = memTier();
  std::lock_guard<std::mutex> Lock(T.Mu);
  T.Index.clear();
  T.Order.clear();
}

std::string ft::kernel_cache::diskLookup(const Config &Cfg, const Key &K) {
  std::string Base = entryBase(Cfg, K);
  if (Base.empty())
    return "";
  std::string So = Base + ".so";
  return fileExists(So) ? So : "";
}

std::string ft::kernel_cache::storedSource(const Config &Cfg, const Key &K) {
  std::string Base = entryBase(Cfg, K);
  if (Base.empty())
    return "";
  return readWholeFile(Base + ".cpp");
}

void ft::kernel_cache::publish(const Config &Cfg, const Key &K,
                               const std::string &SoPath,
                               const std::string &Source) {
  std::string Base = entryBase(Cfg, K);
  if (Base.empty() || !makeDirs(Cfg.Dir))
    return;
  std::string SoBytes = readWholeFile(SoPath);
  if (SoBytes.empty())
    return;
  // Source first: a reader that sees the .so may read the .cpp next.
  writeAtomic(Base + ".cpp", Source);
  if (writeAtomic(Base + ".so", SoBytes))
    ::chmod((Base + ".so").c_str(), 0755);
}

void ft::kernel_cache::evictDisk(const Config &Cfg, const Key &K) {
  std::string Base = entryBase(Cfg, K);
  if (Base.empty())
    return;
  ::unlink((Base + ".so").c_str());
  ::unlink((Base + ".cpp").c_str());
}
