//===- codegen/rt/ft_runtime.h - Runtime for generated kernels ---*- C++ -*-===//
///
/// \file
/// Header-only runtime linked into every JIT-compiled kernel: a persistent
/// thread pool backing `parallelFor` (the CPU lowering of the paper's
/// `parallelize` schedule), atomic reductions (Fig. 13(e)), Python-style
/// integer division, and a reference GEMM used by the `as_lib` schedule.
///
//===----------------------------------------------------------------------===//

#ifndef FT_CODEGEN_RT_FT_RUNTIME_H
#define FT_CODEGEN_RT_FT_RUNTIME_H

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ft {
namespace rt {

/// Per-kernel runtime telemetry. Header-only and RTLD_LOCAL means every
/// JIT-compiled .so carries its own private copy, so the numbers are per
/// kernel library; codegen exports a `<symbol>_rt_stats` reader that the
/// host JIT dlsym's to pull them back into the compiler's trace (the
/// "generated programs report their own execution counts" half of the
/// observability layer).
struct KernelStats {
  std::atomic<uint64_t> Invocations{0};   ///< Kernel entry calls.
  std::atomic<uint64_t> ParallelFors{0};  ///< parallelFor regions run.
  std::atomic<uint64_t> ParallelIters{0}; ///< Iterations across regions.
  std::atomic<uint64_t> GemmCalls{0};     ///< Library gemm invocations.

  static KernelStats &instance() {
    static KernelStats S;
    return S;
  }

  /// Field order of the `<symbol>_rt_stats(uint64_t[4])` export.
  void read(uint64_t *Out) const {
    Out[0] = Invocations.load(std::memory_order_relaxed);
    Out[1] = ParallelFors.load(std::memory_order_relaxed);
    Out[2] = ParallelIters.load(std::memory_order_relaxed);
    Out[3] = GemmCalls.load(std::memory_order_relaxed);
  }
};

/// A minimal persistent thread pool. Work items are half-open index ranges;
/// the calling thread participates, so a pool on a single-core machine
/// degenerates to a plain loop.
class ThreadPool {
public:
  static ThreadPool &instance() {
    static ThreadPool Pool;
    return Pool;
  }

  int numThreads() const { return NumThreads; }

  /// Runs Fn(i) for i in [Begin, End), statically chunked over workers.
  void parallelFor(int64_t Begin, int64_t End,
                   const std::function<void(int64_t)> &Fn) {
    int64_t N = End - Begin;
    if (N <= 0)
      return;
    KernelStats &KS = KernelStats::instance();
    KS.ParallelFors.fetch_add(1, std::memory_order_relaxed);
    KS.ParallelIters.fetch_add(static_cast<uint64_t>(N),
                               std::memory_order_relaxed);
    int Workers = NumThreads;
    if (N < Workers || Workers <= 1) {
      for (int64_t I = Begin; I < End; ++I)
        Fn(I);
      return;
    }
    std::atomic<int> Remaining{Workers - 1};
    std::mutex DoneMutex;
    std::condition_variable DoneCv;
    auto RunChunk = [&](int W) {
      int64_t Chunk = (N + Workers - 1) / Workers;
      int64_t B = Begin + W * Chunk;
      int64_t E = std::min(End, B + Chunk);
      for (int64_t I = B; I < E; ++I)
        Fn(I);
    };
    {
      std::lock_guard<std::mutex> Lock(TaskMutex);
      for (int W = 1; W < Workers; ++W)
        Tasks.push_back([&, W] {
          RunChunk(W);
          if (Remaining.fetch_sub(1) == 1) {
            std::lock_guard<std::mutex> DL(DoneMutex);
            DoneCv.notify_one();
          }
        });
    }
    TaskCv.notify_all();
    RunChunk(0);
    std::unique_lock<std::mutex> DL(DoneMutex);
    DoneCv.wait(DL, [&] { return Remaining.load() == 0; });
  }

private:
  ThreadPool() {
    NumThreads = static_cast<int>(std::thread::hardware_concurrency());
    if (NumThreads < 1)
      NumThreads = 1;
    for (int W = 1; W < NumThreads; ++W)
      Threads.emplace_back([this] { workerLoop(); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(TaskMutex);
      Stop = true;
    }
    TaskCv.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(TaskMutex);
        TaskCv.wait(Lock, [this] { return Stop || !Tasks.empty(); });
        if (Stop && Tasks.empty())
          return;
        Task = std::move(Tasks.back());
        Tasks.pop_back();
      }
      Task();
    }
  }

  int NumThreads = 1;
  std::vector<std::thread> Threads;
  std::vector<std::function<void()>> Tasks;
  std::mutex TaskMutex;
  std::condition_variable TaskCv;
  bool Stop = false;
};

inline void parallelFor(int64_t Begin, int64_t End,
                        const std::function<void(int64_t)> &Fn) {
  ThreadPool::instance().parallelFor(Begin, End, Fn);
}

/// Floor division / modulo with Python semantics (divisor sign).
inline int64_t floorDiv(int64_t A, int64_t B) {
  int64_t Q = A / B, R = A % B;
  if (R != 0 && ((R < 0) != (B < 0)))
    --Q;
  return Q;
}

inline int64_t floorMod(int64_t A, int64_t B) {
  int64_t R = A % B;
  if (R != 0 && ((R < 0) != (B < 0)))
    R += B;
  return R;
}

/// Atomic read-modify-write via compare-exchange (works for any scalar).
template <typename T, typename OpFn>
inline void atomicRmw(T *Addr, T Val, OpFn Op) {
  std::atomic_ref<T> Ref(*Addr);
  T Old = Ref.load(std::memory_order_relaxed);
  while (!Ref.compare_exchange_weak(Old, Op(Old, Val),
                                    std::memory_order_relaxed)) {
  }
}

template <typename T> inline void atomicAdd(T *Addr, T Val) {
  atomicRmw(Addr, Val, [](T A, T B) { return A + B; });
}
template <typename T> inline void atomicMul(T *Addr, T Val) {
  atomicRmw(Addr, Val, [](T A, T B) { return A * B; });
}
template <typename T> inline void atomicMin(T *Addr, T Val) {
  atomicRmw(Addr, Val, [](T A, T B) { return A < B ? A : B; });
}
template <typename T> inline void atomicMax(T *Addr, T Val) {
  atomicRmw(Addr, Val, [](T A, T B) { return A > B ? A : B; });
}

template <typename T> inline T sigmoid(T X) {
  return T(1) / (T(1) + std::exp(-X));
}

/// C[M x N] += op(A) * op(B), row-major, with a register-blocked k-inner
/// loop. The "vendor library" of the as_lib schedule.
template <typename T>
inline void gemm(bool TransA, bool TransB, int64_t M, int64_t N, int64_t K,
                 const T *A, const T *B, T *C) {
  KernelStats::instance().GemmCalls.fetch_add(1, std::memory_order_relaxed);
  auto AAt = [&](int64_t I, int64_t Kk) {
    return TransA ? A[Kk * M + I] : A[I * K + Kk];
  };
  auto BAt = [&](int64_t Kk, int64_t J) {
    return TransB ? B[J * K + Kk] : B[Kk * N + J];
  };
  constexpr int64_t Tile = 48;
  for (int64_t I0 = 0; I0 < M; I0 += Tile)
    for (int64_t K0 = 0; K0 < K; K0 += Tile)
      for (int64_t I = I0; I < std::min(M, I0 + Tile); ++I)
        for (int64_t Kk = K0; Kk < std::min(K, K0 + Tile); ++Kk) {
          T AV = AAt(I, Kk);
          for (int64_t J = 0; J < N; ++J)
            C[I * N + J] += AV * BAt(Kk, J);
        }
}

} // namespace rt
} // namespace ft

#endif // FT_CODEGEN_RT_FT_RUNTIME_H
