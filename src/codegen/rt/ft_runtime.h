//===- codegen/rt/ft_runtime.h - Runtime for generated kernels ---*- C++ -*-===//
///
/// \file
/// Header-only runtime linked into every JIT-compiled kernel: a persistent
/// thread pool backing `parallelFor` (the CPU lowering of the paper's
/// `parallelize` schedule), atomic reductions (Fig. 13(e)), Python-style
/// integer division, and a reference GEMM used by the `as_lib` schedule.
///
//===----------------------------------------------------------------------===//

#ifndef FT_CODEGEN_RT_FT_RUNTIME_H
#define FT_CODEGEN_RT_FT_RUNTIME_H

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ft {
namespace rt {

/// Per-kernel runtime telemetry. Header-only and RTLD_LOCAL means every
/// JIT-compiled .so carries its own private copy, so the numbers are per
/// kernel library; codegen exports a `<symbol>_rt_stats` reader that the
/// host JIT dlsym's to pull them back into the compiler's trace (the
/// "generated programs report their own execution counts" half of the
/// observability layer).
struct KernelStats {
  /// Field order of the versioned `<symbol>_rt_stats` export. Append-only:
  /// new fields go before kNumFields and bump kAbiVersion.
  enum Field : uint32_t {
    FInvocations = 0,   ///< Kernel entry calls.
    FParallelFors,      ///< parallelFor regions run.
    FParallelIters,     ///< Iterations across regions.
    FGemmCalls,         ///< Library gemm invocations.
    FCurrentBytes,      ///< Live kernel-allocated tensor bytes right now.
    FPeakBytes,         ///< High-water mark of FCurrentBytes.
    FTotalAllocBytes,   ///< Cumulative bytes ever allocated.
    FAllocCount,        ///< Number of tracked allocations.
    kNumFields,
  };

  /// Bumped whenever the field list above changes. The export writes a
  /// header word `(kAbiVersion << 32) | kNumFields` ahead of the fields so
  /// a host built against a different runtime can detect the skew instead
  /// of silently misreading counters.
  static constexpr uint32_t kAbiVersion = 2;

  std::atomic<uint64_t> Invocations{0};
  std::atomic<uint64_t> ParallelFors{0};
  std::atomic<uint64_t> ParallelIters{0};
  std::atomic<uint64_t> GemmCalls{0};
  std::atomic<uint64_t> CurrentBytes{0};
  std::atomic<uint64_t> PeakBytes{0};
  std::atomic<uint64_t> TotalAllocBytes{0};
  std::atomic<uint64_t> AllocCount{0};

  static KernelStats &instance() {
    static KernelStats S;
    return S;
  }

  /// Writes the header word followed by the kNumFields counters into
  /// \p Out, which must hold at least 1 + kNumFields words.
  void read(uint64_t *Out) const {
    Out[0] = (uint64_t(kAbiVersion) << 32) | uint64_t(kNumFields);
    Out[1 + FInvocations] = Invocations.load(std::memory_order_relaxed);
    Out[1 + FParallelFors] = ParallelFors.load(std::memory_order_relaxed);
    Out[1 + FParallelIters] = ParallelIters.load(std::memory_order_relaxed);
    Out[1 + FGemmCalls] = GemmCalls.load(std::memory_order_relaxed);
    Out[1 + FCurrentBytes] = CurrentBytes.load(std::memory_order_relaxed);
    Out[1 + FPeakBytes] = PeakBytes.load(std::memory_order_relaxed);
    Out[1 + FTotalAllocBytes] =
        TotalAllocBytes.load(std::memory_order_relaxed);
    Out[1 + FAllocCount] = AllocCount.load(std::memory_order_relaxed);
  }
};

//===----------------------------------------------------------------------===//
// Memory accounting (profile-mode codegen wraps every kernel-allocated
// tensor in a ScopedAlloc; parameters are caller-owned and not counted).
//===----------------------------------------------------------------------===//

inline void trackAlloc(uint64_t Bytes) {
  KernelStats &KS = KernelStats::instance();
  KS.AllocCount.fetch_add(1, std::memory_order_relaxed);
  KS.TotalAllocBytes.fetch_add(Bytes, std::memory_order_relaxed);
  uint64_t Cur =
      KS.CurrentBytes.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
  uint64_t Peak = KS.PeakBytes.load(std::memory_order_relaxed);
  while (Cur > Peak && !KS.PeakBytes.compare_exchange_weak(
                           Peak, Cur, std::memory_order_relaxed)) {
  }
}

inline void trackFree(uint64_t Bytes) {
  KernelStats::instance().CurrentBytes.fetch_sub(Bytes,
                                                 std::memory_order_relaxed);
}

/// RAII live-byte tracker emitted next to a tensor's storage declaration;
/// its scope is the tensor's VarDef scope, so CurrentBytes follows the
/// stack-scoped lifetimes of the IR.
struct ScopedAlloc {
  uint64_t Bytes;
  explicit ScopedAlloc(uint64_t B) : Bytes(B) { trackAlloc(B); }
  ~ScopedAlloc() { trackFree(Bytes); }
  ScopedAlloc(const ScopedAlloc &) = delete;
  ScopedAlloc &operator=(const ScopedAlloc &) = delete;
};

//===----------------------------------------------------------------------===//
// Per-statement profiler (codegen profile mode)
//===----------------------------------------------------------------------===//

/// Counters for one instrumented statement (a For, a GemmCall, or the
/// kernel body itself). Hot inner ("leaf") loops are timed on a 1-in-64
/// call sample to keep overhead low; TimedCalls/TimedIters record exactly
/// which share of the work the Ns field covers, so the host extrapolates
/// EstNs = Ns * Iters / TimedIters. Calls and Iters are always exact.
struct ProfileEntry {
  uint64_t Calls = 0;      ///< Times the statement was entered.
  uint64_t Iters = 0;      ///< Loop iterations executed (1/call for gemm).
  uint64_t Ns = 0;         ///< Wall-clock ns over the timed entries only.
  uint64_t TimedCalls = 0; ///< Entries covered by Ns.
  uint64_t TimedIters = 0; ///< Iterations covered by Ns.
};

/// Words per slot record in the `<symbol>_rt_profile` export:
/// [StmtId, Calls, Iters, Ns, TimedCalls, TimedIters].
constexpr uint32_t kProfileFieldsPerSlot = 6;
/// Version of the profile export layout (header word ahead of the slots).
constexpr uint32_t kProfileAbiVersion = 1;

/// Timestamp for the instrumentation brackets. On x86 this is rdtsc — a
/// plain two-register instruction, not a function call, so the sampled
/// bracket does not clobber vector registers and the compiler stays free
/// to cache accumulators across iterations of the surrounding loops (a
/// clock_gettime call on the sampled path costs >20% on fine-grained
/// kernels even when almost never executed, purely from the call-clobber
/// pessimization). Ticks are converted to nanoseconds only on the read
/// path via profNsPerTick().
inline uint64_t profClock() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Nanoseconds per profClock() tick, calibrated once per module against
/// the steady clock over a ~2 ms window. Cold path only (profile export);
/// never touched by generated loop code.
inline double profNsPerTick() {
#if defined(__x86_64__) || defined(__i386__)
  static const double NsPerTick = [] {
    auto T0 = std::chrono::steady_clock::now();
    uint64_t C0 = __builtin_ia32_rdtsc();
    for (;;) {
      auto T1 = std::chrono::steady_clock::now();
      if (T1 - T0 >= std::chrono::milliseconds(2)) {
        uint64_t C1 = __builtin_ia32_rdtsc();
        double Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        T1 - T0)
                        .count();
        return C1 > C0 ? Ns / double(C1 - C0) : 1.0;
      }
    }
  }();
  return NsPerTick;
#else
  return 1.0;
#endif
}

/// The per-kernel profile accumulator. Each executing identity — 0 for
/// the thread calling the kernel entry (which also runs chunk 0 of every
/// parallelFor), 1.. for pool worker chunks, plumbed into parallelFor
/// bodies as an explicit argument — owns a private slot array, so the
/// per-iteration hot path is a plain non-atomic add; read() merges all
/// arrays. Worker threads are joined before any read (parallelFor blocks
/// until the region drains), so the merge observes quiescent buffers.
///
/// Deliberately NO thread_local anywhere in this class: a kernel .so
/// lives and dies by dlopen/dlclose, and glibc recycles both the module
/// load address and its static-TLS block without zeroing — a reloaded
/// kernel can observe the previous module's TLS bytes, turning a "cached"
/// slot pointer into a dangling write into freed host heap. Identity by
/// value cannot go stale.
class ProfileTable {
public:
  /// Worker identities: ThreadPool clamps to 256 threads, plus the
  /// calling thread.
  static constexpr uint32_t kMaxWorkers = 257;

  static ProfileTable &instance() {
    static ProfileTable T;
    return T;
  }

  ~ProfileTable() {
    for (auto &S : Slots)
      delete[] S.load(std::memory_order_relaxed);
  }

  /// The slot array for identity \p W, sized for \p NumSlots statements
  /// (one kernel per .so, so NumSlots is the same for every call). After
  /// the first touch per identity this is one acquire load and a compare.
  ProfileEntry *workerSlots(uint32_t W, uint32_t NumSlots) {
    if (W >= kMaxWorkers)
      W = kMaxWorkers - 1;
    ProfileEntry *P = Slots[W].load(std::memory_order_acquire);
    if (P)
      return P;
    std::lock_guard<std::mutex> Lock(M);
    P = Slots[W].load(std::memory_order_relaxed);
    if (!P) {
      P = new ProfileEntry[NumSlots]();
      Slots[W].store(P, std::memory_order_release);
    }
    return P;
  }

  /// Merges every identity's counters. \p Out receives NumSlots records
  /// of kProfileFieldsPerSlot words each, slot s labeled with StmtIds[s].
  void read(const int64_t *StmtIds, uint32_t NumSlots, uint64_t *Out) {
    std::lock_guard<std::mutex> Lock(M);
    for (uint32_t S = 0; S < NumSlots; ++S) {
      ProfileEntry Sum;
      for (const auto &SlotPtr : Slots) {
        const ProfileEntry *B = SlotPtr.load(std::memory_order_acquire);
        if (!B)
          continue;
        const ProfileEntry &E = B[S];
        Sum.Calls += E.Calls;
        Sum.Iters += E.Iters;
        Sum.Ns += E.Ns;
        Sum.TimedCalls += E.TimedCalls;
        Sum.TimedIters += E.TimedIters;
      }
      uint64_t *R = Out + uint64_t(S) * kProfileFieldsPerSlot;
      R[0] = static_cast<uint64_t>(StmtIds[S]);
      R[1] = Sum.Calls;
      R[2] = Sum.Iters;
      // Ns accumulates raw profClock() ticks; exported as nanoseconds.
      R[3] = static_cast<uint64_t>(double(Sum.Ns) * profNsPerTick());
      R[4] = Sum.TimedCalls;
      R[5] = Sum.TimedIters;
    }
  }

private:
  std::mutex M;
  std::array<std::atomic<ProfileEntry *>, kMaxWorkers> Slots{};
};

/// Kernel-entry slot array (identity 0).
inline ProfileEntry *profSlots(uint32_t NumSlots) {
  return ProfileTable::instance().workerSlots(0, NumSlots);
}

/// Slot array for one parallelFor chunk; \p W is the chunk index the pool
/// passes into worker-aware bodies (0 = the calling thread, same array as
/// the kernel entry's).
inline ProfileEntry *profWorkerSlots(int W, uint32_t NumSlots) {
  return ProfileTable::instance().workerSlots(static_cast<uint32_t>(W),
                                              NumSlots);
}

/// Upper bound on the workers this kernel's pool may use, settable from the
/// host through the `<symbol>_rt_set_threads` export (Kernel::setMaxThreads).
/// Each JIT-compiled .so carries a private ThreadPool that would otherwise
/// size itself from FT_NUM_THREADS / hardware_concurrency independently, so
/// K concurrently-running kernels would oversubscribe the machine K times;
/// the host divides its thread budget across the kernels it intends to run
/// concurrently (the serving executor caps every kernel it loads). The cap
/// is honored both at pool construction (threads are never spawned past it)
/// and per parallelFor region (a later, lower cap idles excess workers).
inline std::atomic<int> &poolCap() {
  static std::atomic<int> Cap{1 << 30};
  return Cap;
}

inline void setPoolCap(int N) {
  poolCap().store(N < 1 ? 1 : N, std::memory_order_relaxed);
}

/// A minimal persistent thread pool. Work items are half-open index ranges;
/// the calling thread participates, so a pool on a single-core machine
/// degenerates to a plain loop.
class ThreadPool {
public:
  static ThreadPool &instance() {
    static ThreadPool Pool;
    return Pool;
  }

  int numThreads() const { return NumThreads; }

  /// Runs Fn(i) for i in [Begin, End), statically chunked over workers.
  void parallelFor(int64_t Begin, int64_t End,
                   const std::function<void(int64_t)> &Fn) {
    int64_t N = End - Begin;
    if (N <= 0)
      return;
    KernelStats &KS = KernelStats::instance();
    KS.ParallelFors.fetch_add(1, std::memory_order_relaxed);
    KS.ParallelIters.fetch_add(static_cast<uint64_t>(N),
                               std::memory_order_relaxed);
    int Workers = cappedWorkers();
    if (N < Workers || Workers <= 1) {
      for (int64_t I = Begin; I < End; ++I)
        Fn(I);
      return;
    }
    std::atomic<int> Remaining{Workers - 1};
    std::mutex DoneMutex;
    std::condition_variable DoneCv;
    auto RunChunk = [&](int W) {
      int64_t Chunk = (N + Workers - 1) / Workers;
      int64_t B = Begin + W * Chunk;
      int64_t E = std::min(End, B + Chunk);
      for (int64_t I = B; I < E; ++I)
        Fn(I);
    };
    {
      std::lock_guard<std::mutex> Lock(TaskMutex);
      for (int W = 1; W < Workers; ++W)
        Tasks.push_back([&, W] {
          RunChunk(W);
          if (Remaining.fetch_sub(1) == 1) {
            std::lock_guard<std::mutex> DL(DoneMutex);
            DoneCv.notify_one();
          }
        });
    }
    TaskCv.notify_all();
    RunChunk(0);
    std::unique_lock<std::mutex> DL(DoneMutex);
    DoneCv.wait(DL, [&] { return Remaining.load() == 0; });
  }

  /// Worker-aware variant used by profiled kernels: Fn additionally
  /// receives the chunk index W in [0, numThreads()), 0 being the calling
  /// thread. Distinct chunks of one region never share a W, which is what
  /// lets the profiler keep non-atomic per-chunk counter arrays without
  /// any thread-local state (see ProfileTable). A nested region entered
  /// from a worker reuses W = 0 for its caller and may therefore lose
  /// counter increments to a benign race with the true chunk-0 thread;
  /// counts stay exact for the non-nested regions schedules produce today.
  void parallelFor(int64_t Begin, int64_t End,
                   const std::function<void(int64_t, int)> &Fn) {
    int64_t N = End - Begin;
    if (N <= 0)
      return;
    KernelStats &KS = KernelStats::instance();
    KS.ParallelFors.fetch_add(1, std::memory_order_relaxed);
    KS.ParallelIters.fetch_add(static_cast<uint64_t>(N),
                               std::memory_order_relaxed);
    int Workers = cappedWorkers();
    if (N < Workers || Workers <= 1) {
      for (int64_t I = Begin; I < End; ++I)
        Fn(I, 0);
      return;
    }
    std::atomic<int> Remaining{Workers - 1};
    std::mutex DoneMutex;
    std::condition_variable DoneCv;
    auto RunChunk = [&](int W) {
      int64_t Chunk = (N + Workers - 1) / Workers;
      int64_t B = Begin + W * Chunk;
      int64_t E = std::min(End, B + Chunk);
      for (int64_t I = B; I < E; ++I)
        Fn(I, W);
    };
    {
      std::lock_guard<std::mutex> Lock(TaskMutex);
      for (int W = 1; W < Workers; ++W)
        Tasks.push_back([&, W] {
          RunChunk(W);
          if (Remaining.fetch_sub(1) == 1) {
            std::lock_guard<std::mutex> DL(DoneMutex);
            DoneCv.notify_one();
          }
        });
    }
    TaskCv.notify_all();
    RunChunk(0);
    std::unique_lock<std::mutex> DL(DoneMutex);
    DoneCv.wait(DL, [&] { return Remaining.load() == 0; });
  }

private:
  /// Active workers for the next region: the configured pool size clamped
  /// by the host-set cap (the cap can drop below NumThreads after the pool
  /// was built; the surplus threads then simply receive no tasks).
  int cappedWorkers() const {
    int Cap = poolCap().load(std::memory_order_relaxed);
    int W = NumThreads < Cap ? NumThreads : Cap;
    return W < 1 ? 1 : W;
  }

  ThreadPool() {
    NumThreads = static_cast<int>(std::thread::hardware_concurrency());
    // FT_NUM_THREADS overrides hardware_concurrency (clamped to [1, 256]);
    // the only way to exercise multi-thread parallelFor paths
    // deterministically on a small machine, and to pin them to 1 on a big
    // one.
    if (const char *Env = std::getenv("FT_NUM_THREADS");
        Env != nullptr && Env[0] != '\0') {
      char *End = nullptr;
      long V = std::strtol(Env, &End, 10);
      if (End != Env && *End == '\0')
        NumThreads = static_cast<int>(V < 1 ? 1 : (V > 256 ? 256 : V));
    }
    if (NumThreads < 1)
      NumThreads = 1;
    // A cap installed before first use (the host calls setMaxThreads right
    // after dlopen, before the kernel ever runs) bounds the threads we
    // spawn at all, not just the ones we use.
    int Cap = poolCap().load(std::memory_order_relaxed);
    if (NumThreads > Cap)
      NumThreads = Cap < 1 ? 1 : Cap;
    for (int W = 1; W < NumThreads; ++W)
      Threads.emplace_back([this] { workerLoop(); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(TaskMutex);
      Stop = true;
    }
    TaskCv.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(TaskMutex);
        TaskCv.wait(Lock, [this] { return Stop || !Tasks.empty(); });
        if (Stop && Tasks.empty())
          return;
        Task = std::move(Tasks.back());
        Tasks.pop_back();
      }
      Task();
    }
  }

  int NumThreads = 1;
  std::vector<std::thread> Threads;
  std::vector<std::function<void()>> Tasks;
  std::mutex TaskMutex;
  std::condition_variable TaskCv;
  bool Stop = false;
};

inline void parallelFor(int64_t Begin, int64_t End,
                        const std::function<void(int64_t)> &Fn) {
  ThreadPool::instance().parallelFor(Begin, End, Fn);
}

/// Worker-aware variant (profiled kernels); see ThreadPool::parallelFor.
inline void parallelFor(int64_t Begin, int64_t End,
                        const std::function<void(int64_t, int)> &Fn) {
  ThreadPool::instance().parallelFor(Begin, End, Fn);
}

/// Floor division / modulo with Python semantics (divisor sign).
inline int64_t floorDiv(int64_t A, int64_t B) {
  int64_t Q = A / B, R = A % B;
  if (R != 0 && ((R < 0) != (B < 0)))
    --Q;
  return Q;
}

inline int64_t floorMod(int64_t A, int64_t B) {
  int64_t R = A % B;
  if (R != 0 && ((R < 0) != (B < 0)))
    R += B;
  return R;
}

/// Atomic read-modify-write via compare-exchange (works for any scalar).
template <typename T, typename OpFn>
inline void atomicRmw(T *Addr, T Val, OpFn Op) {
  std::atomic_ref<T> Ref(*Addr);
  T Old = Ref.load(std::memory_order_relaxed);
  while (!Ref.compare_exchange_weak(Old, Op(Old, Val),
                                    std::memory_order_relaxed)) {
  }
}

template <typename T> inline void atomicAdd(T *Addr, T Val) {
  atomicRmw(Addr, Val, [](T A, T B) { return A + B; });
}
template <typename T> inline void atomicMul(T *Addr, T Val) {
  atomicRmw(Addr, Val, [](T A, T B) { return A * B; });
}
template <typename T> inline void atomicMin(T *Addr, T Val) {
  atomicRmw(Addr, Val, [](T A, T B) { return A < B ? A : B; });
}
template <typename T> inline void atomicMax(T *Addr, T Val) {
  atomicRmw(Addr, Val, [](T A, T B) { return A > B ? A : B; });
}

template <typename T> inline T sigmoid(T X) {
  return T(1) / (T(1) + std::exp(-X));
}

/// C[M x N] += op(A) * op(B), row-major, with a register-blocked k-inner
/// loop. The "vendor library" of the as_lib schedule.
template <typename T>
inline void gemm(bool TransA, bool TransB, int64_t M, int64_t N, int64_t K,
                 const T *A, const T *B, T *C) {
  KernelStats::instance().GemmCalls.fetch_add(1, std::memory_order_relaxed);
  auto AAt = [&](int64_t I, int64_t Kk) {
    return TransA ? A[Kk * M + I] : A[I * K + Kk];
  };
  auto BAt = [&](int64_t Kk, int64_t J) {
    return TransB ? B[J * K + Kk] : B[Kk * N + J];
  };
  constexpr int64_t Tile = 48;
  for (int64_t I0 = 0; I0 < M; I0 += Tile)
    for (int64_t K0 = 0; K0 < K; K0 += Tile)
      for (int64_t I = I0; I < std::min(M, I0 + Tile); ++I)
        for (int64_t Kk = K0; Kk < std::min(K, K0 + Tile); ++Kk) {
          T AV = AAt(I, Kk);
          for (int64_t J = 0; J < N; ++J)
            C[I * N + J] += AV * BAt(Kk, J);
        }
}

} // namespace rt
} // namespace ft

#endif // FT_CODEGEN_RT_FT_RUNTIME_H
