//===- codegen/profile.h - Kernel profile: source map & reports --*- C++ -*-===//
///
/// \file
/// Host side of the statement-level kernel profiler (DESIGN.md §10). The
/// generated kernel counts calls/iterations/time per For and GemmCall in
/// per-thread slots (see CodegenOptions::Profile and rt::ProfileTable);
/// this layer turns the raw counters the JIT pulls back into something a
/// human can act on:
///
///  - SourceMap: stmt-Id -> {frontend label, extent, nesting path, and the
///    schedule-audit decisions that created or moved the statement}, so a
///    report row reads "subdivnet/faces#3 (after split(...), cache(...))"
///    instead of a bare id. Built from the *scheduled* Func at compile
///    time, joined with trace::auditLog() through ScheduleDecision::StmtIds.
///  - KernelProfile: the merged runtime samples + memory accounting for one
///    kernel, with renderers for a hierarchical per-loop table, a
///    collapsed-stack flamegraph (flamegraph.pl / speedscope format), and a
///    JSON snapshot.
///  - A process-wide registry + FT_PROFILE env sink:
///      FT_PROFILE=1           per-loop table on stderr at exit
///      FT_PROFILE=out.folded  collapsed-stack flamegraph file
///      FT_PROFILE=out.json    JSON snapshot file
///      FT_PROFILE=out.txt     per-loop table into a file
///    Setting FT_PROFILE also switches Kernel::compile into profile mode,
///    so existing drivers gain profiling without code changes.
///
//===----------------------------------------------------------------------===//

#ifndef FT_CODEGEN_PROFILE_H
#define FT_CODEGEN_PROFILE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/func.h"
#include "support/trace.h"

namespace ft::profile {

/// Merged runtime counters for one instrumented statement, as pulled back
/// through the `<symbol>_rt_profile` export. Calls and Iters are exact;
/// Ns covers only the timed entries (leaf loops sample 1-in-64 calls), so
/// estimates extrapolate through TimedCalls/TimedIters.
struct LoopSample {
  int64_t StmtId = -1; ///< -1 is the kernel body itself.
  uint64_t Calls = 0;
  uint64_t Iters = 0;
  uint64_t Ns = 0;
  uint64_t TimedCalls = 0;
  uint64_t TimedIters = 0;

  /// Extrapolated total wall-clock nanoseconds for this statement.
  double estNs() const {
    if (TimedIters > 0)
      return double(Ns) * (double(Iters) / double(TimedIters));
    if (TimedCalls > 0)
      return double(Ns) * (double(Calls) / double(TimedCalls));
    return 0;
  }
};

/// Static description of one instrumented statement, from the scheduled IR.
struct StmtSourceInfo {
  int64_t Id = -1;
  std::string Kind;  ///< "kernel", "for", or "gemm".
  std::string Label; ///< Frontend label, may be empty.
  std::string Name;  ///< Display name: label (or iterator) + "#" + id.
  std::string Iter;  ///< Loop iterator name ("" for gemm/kernel).
  std::string Extent; ///< "begin:end" in IR syntax ("" for gemm/kernel).
  bool Parallel = false;
  int64_t ParentId = -2; ///< Enclosing instrumented stmt; -2 above the root.
  int Depth = 0;         ///< Nesting depth (kernel root = 0).
  std::vector<std::string> Path; ///< Root-to-here names, Path[0] = func.
  std::string QualName;          ///< "<func>/<name>" ("<func>" for root).
  /// Applied schedule decisions whose StmtIds include this statement,
  /// formatted "primitive(target)", in application order.
  std::vector<std::string> Provenance;
  /// Statically estimated bytes touched per iteration by accesses directly
  /// in this statement's body (nested instrumented statements excluded —
  /// they account for their own). Multiplied by the runtime Iters this
  /// gives the table's "est. bytes moved" column.
  uint64_t DirectAccessBytesPerIter = 0;
};

/// The stmt-Id -> source-info table emitted alongside a profiled kernel.
struct SourceMap {
  std::string FuncName;
  std::vector<StmtSourceInfo> Stmts; ///< Pre-order; [0] is the kernel root.
  std::map<int64_t, size_t> ById;

  const StmtSourceInfo *find(int64_t Id) const {
    auto It = ById.find(Id);
    return It == ById.end() ? nullptr : &Stmts[It->second];
  }
};

/// Builds the source map for (scheduled) \p F, joining \p Audit entries to
/// statements through ScheduleDecision::StmtIds (ids are globally unique,
/// so decisions about other functions never match).
SourceMap buildSourceMap(const Func &F,
                         const std::vector<trace::ScheduleDecision> &Audit);

/// One kernel's complete profile: source map, merged samples, and the
/// memory accounting pulled from the widened rt_stats export. Counters are
/// cumulative over every run of the kernel.
struct KernelProfile {
  std::string Symbol;
  SourceMap Map;
  std::vector<LoopSample> Samples; ///< Export order; [0] is the kernel root.
  uint64_t Invocations = 0;
  uint64_t CurrentBytes = 0;
  uint64_t PeakBytes = 0;
  uint64_t TotalAllocBytes = 0;
  uint64_t AllocCount = 0;
  /// Serving-request join (DESIGN.md §15): runs of this kernel that
  /// carried a request id, and the most recent of those ids (oldest
  /// first, bounded) — filled from requestAttribution() when the profile
  /// is pulled, so hot-loop rows can be joined back to the requests that
  /// produced them.
  uint64_t AttributedRuns = 0;
  std::vector<uint64_t> RecentRequestIds;

  const LoopSample *sample(int64_t StmtId) const;
  /// estNs() of \p StmtId minus its direct children's (clamped at 0).
  double selfNs(int64_t StmtId) const;
};

/// Hierarchical per-loop table (the FT_PROFILE=1 report).
std::string formatTable(const KernelProfile &P);

/// Collapsed-stack flamegraph: one "frame;frame;frame selfNs" line per
/// statement with a positive sample.
std::string toFolded(const KernelProfile &P);

/// JSON snapshot of one kernel profile (schema in DESIGN.md §10).
std::string toJson(const KernelProfile &P);

/// Appends \p P to the process-wide registry consumed by the FT_PROFILE
/// sink and snapshotJson(). Also re-emits the profile as synthetic
/// "profile/<loop>" spans into the trace stream when tracing is enabled,
/// so flame-style per-loop timing shows up inside the FT_TRACE Chrome
/// trace.
void record(KernelProfile P);

/// Copies of every profile recorded so far.
std::vector<KernelProfile> snapshotProfiles();

/// Drops all recorded profiles and the request-attribution table (tests).
void clearProfiles();

/// Serving-request join: notes that request \p RequestId ran the profiled
/// kernel \p Symbol. Kernel::run calls this when it executes on behalf of
/// a serving request, so the per-loop rows a profile reports can be tied
/// back to the requests that produced them. Keeps a bounded ring of the
/// most recent ids per symbol. No-op when \p RequestId == 0.
void noteRequest(const std::string &Symbol, uint64_t RequestId);

/// The attribution recorded for \p Symbol so far: total attributed runs
/// and the most recent request ids, oldest first (empty when none).
struct RequestAttribution {
  uint64_t AttributedRuns = 0;
  std::vector<uint64_t> RecentRequestIds;
};
RequestAttribution requestAttribution(const std::string &Symbol);

/// All recorded profiles as one JSON document: {"profiles":[...]}.
std::string snapshotJson();

/// True when FT_PROFILE requests profiling (anything but unset/""/"0").
/// Kernel::compile(F) consults this to auto-enable profile codegen.
bool envEnabled();

/// Renders \p P as synthetic nested spans via trace::emitSpan (no-op when
/// tracing is disabled). Time is reconstructed from the per-loop estimates
/// starting at the current trace clock, children laid out sequentially
/// inside their parent.
void emitTraceSpans(const KernelProfile &P);

} // namespace ft::profile

#endif // FT_CODEGEN_PROFILE_H
