//===- codegen/jit.h - Compile-and-load execution driver ---------*- C++ -*-===//
///
/// \file
/// Drives the end of the paper's pipeline (§4.3): the generated C++ source
/// is handed to the host compiler, built into a shared library, and loaded
/// for execution ("a DSL function is finally compiled as a shared library,
/// which can be dynamically loaded ... to run").
///
//===----------------------------------------------------------------------===//

#ifndef FT_CODEGEN_JIT_H
#define FT_CODEGEN_JIT_H

#include <map>
#include <memory>

#include "interp/buffer.h"
#include "ir/func.h"
#include "support/error.h"

namespace ft {

/// A compiled, loaded kernel. Copyable handle; the library stays loaded as
/// long as any handle lives.
class Kernel {
public:
  /// Compiles \p F with the host C++ compiler. \p OptFlags defaults to an
  /// optimized build.
  static Result<Kernel> compile(const Func &F,
                                const std::string &OptFlags = "-O3");

  /// Runs the kernel binding each parameter by name.
  Status run(const std::map<std::string, Buffer *> &Args) const;

  /// Wall-clock seconds the host compiler took.
  double compileSeconds() const;

  /// The generated C++ source (for inspection/tests).
  const std::string &source() const;

private:
  struct Impl;
  std::shared_ptr<Impl> I;
};

} // namespace ft

#endif // FT_CODEGEN_JIT_H
