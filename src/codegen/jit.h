//===- codegen/jit.h - Compile-and-load execution driver ---------*- C++ -*-===//
///
/// \file
/// Drives the end of the paper's pipeline (§4.3): the generated C++ source
/// is handed to the host compiler, built into a shared library, and loaded
/// for execution ("a DSL function is finally compiled as a shared library,
/// which can be dynamically loaded ... to run").
///
/// Compilation is backed by the two-tier content-addressed kernel cache
/// (codegen/kernel_cache.h): a whole-program fingerprint keys an in-process
/// LRU of loaded kernels and an on-disk store of compiled objects, so the
/// host compiler only ever runs for programs this machine has not built
/// before. FT_CACHE=0 disables it.
///
//===----------------------------------------------------------------------===//

#ifndef FT_CODEGEN_JIT_H
#define FT_CODEGEN_JIT_H

#include <map>
#include <memory>
#include <optional>

#include "codegen/codegen.h"
#include "codegen/profile.h"
#include "interp/buffer.h"
#include "ir/func.h"
#include "support/error.h"

namespace ft {

/// The kernel-side KernelStats counters as read back through the versioned
/// `<symbol>_rt_stats` export (see rt::KernelStats::Field). Valid is false
/// when the kernel lacks the export or was built against a different ABI
/// version.
struct KernelRtStats {
  bool Valid = false;
  uint64_t Invocations = 0;
  uint64_t ParallelFors = 0;
  uint64_t ParallelIters = 0;
  uint64_t GemmCalls = 0;
  uint64_t CurrentBytes = 0;
  uint64_t PeakBytes = 0;
  uint64_t TotalAllocBytes = 0;
  uint64_t AllocCount = 0;
};

/// How a Kernel was obtained (see codegen/kernel_cache.h).
enum class KernelCacheTier : uint8_t {
  Compiled, ///< Cache miss (or cache disabled): the host compiler ran.
  Memory,   ///< In-process LRU hit: shared already-loaded handle.
  Disk,     ///< On-disk store hit: dlopen of a previously compiled object.
};

/// Returns "miss" / "mem" / "disk".
const char *nameOf(KernelCacheTier T);

/// A compiled, loaded kernel. Copyable handle; the library stays loaded as
/// long as any handle lives.
class Kernel {
public:
  /// Compiles \p F with the host C++ compiler. \p OptFlags defaults to an
  /// optimized build. This overload consults FT_PROFILE: when the env sink
  /// is armed, the kernel is compiled in profile mode automatically.
  static Result<Kernel> compile(const Func &F,
                                const std::string &OptFlags = "-O3");

  /// Compiles with explicit codegen options. With Opts.Profile the kernel
  /// is instrumented, a source map is built from \p F plus the current
  /// schedule audit log, and the accumulated profile is recorded to the
  /// profile registry when the last handle is dropped.
  static Result<Kernel> compile(const Func &F, const CodegenOptions &Opts,
                                const std::string &OptFlags = "-O3");

  /// Cache-only acquisition: returns the kernel when the fingerprint hits
  /// the in-process LRU or the on-disk store, nullopt on a miss — the host
  /// compiler never runs. This is the serving runtime's hot-tier probe
  /// (src/serve/): a miss there falls back to the interpreter while a
  /// background task calls compile(). Thread-safe; concurrent probes and
  /// compiles of the same program are allowed.
  static std::optional<Kernel> tryCached(const Func &F,
                                         const CodegenOptions &Opts = {},
                                         const std::string &OptFlags = "-O3");

  /// Runs the kernel binding each parameter by name.
  Status run(const std::map<std::string, Buffer *> &Args) const;

  /// Runs the kernel on behalf of serving request \p RequestId
  /// (RequestContext::Id; 0 = no request). A nonzero id is annotated onto
  /// the kernel's trace span and, when the kernel is profiled, noted in
  /// the profile registry's request-attribution table — so hot-loop rows
  /// join back to the requests that produced them (DESIGN.md §15).
  Status run(const std::map<std::string, Buffer *> &Args,
             uint64_t RequestId) const;

  /// Caps this kernel's runtime thread pool at \p N workers (>= 1) via the
  /// `<symbol>_rt_set_threads` export. Call before the first run to also
  /// bound thread creation, not just thread use. The serving executor caps
  /// every kernel it loads so K concurrent kernels cannot oversubscribe
  /// the machine K-fold. No-op (returns false) for kernels predating the
  /// export.
  bool setMaxThreads(int N) const;

  /// Wall-clock seconds spent acquiring this kernel: host-compiler time on
  /// a cache miss, lookup + dlopen time on a cache hit.
  double compileSeconds() const;

  /// Which cache tier (if any) produced this kernel.
  KernelCacheTier cacheTier() const;

  /// The generated C++ source (for inspection/tests).
  const std::string &source() const;

  /// Cumulative kernel-side counters (invocations, parallel regions,
  /// gemm calls, memory accounting). Valid==false when unavailable.
  KernelRtStats rtStats() const;

  /// True when this kernel was compiled in profile mode.
  bool profiled() const;

  /// The statement-level source map (empty unless profiled).
  const profile::SourceMap &sourceMap() const;

  /// Pulls the current per-statement counters from the kernel and joins
  /// them with the source map. Counters are cumulative over all runs.
  /// Returns an empty profile (no samples) unless profiled().
  profile::KernelProfile profileNow() const;

private:
  struct Impl;
  std::shared_ptr<Impl> I;
  // Per-handle acquisition record: a memory-tier hit shares the Impl (the
  // loaded library) with the handle that first compiled it, so how *this*
  // handle was obtained — and how long that took — lives on the handle.
  KernelCacheTier Tier = KernelCacheTier::Compiled;
  double CompileSec = 0;
};

} // namespace ft

#endif // FT_CODEGEN_JIT_H
