//===- codegen/codegen.h - C++ source emission -------------------*- C++ -*-===//
///
/// \file
/// Lowers a scheduled Func to a self-contained C++ translation unit (the
/// CPU backend of paper §4.3: "we generate OpenMP or CUDA code from the AST
/// and invoke dedicated backend compilers"). Parallel loops lower to the
/// runtime thread pool, vectorize/unroll properties become pragmas, atomic
/// reductions become CAS loops, and GemmCall becomes a library call.
///
/// The kernel ABI is `extern "C" void <name>(void **params)` with one
/// pointer per Func parameter, in order.
///
//===----------------------------------------------------------------------===//

#ifndef FT_CODEGEN_CODEGEN_H
#define FT_CODEGEN_CODEGEN_H

#include <string>

#include "ir/func.h"

namespace ft {

/// Code-generation switches.
struct CodegenOptions {
  /// Instrument the emitted kernel with the statement-level profiler:
  /// every For (and GemmCall) gets per-thread call/iteration/time counters
  /// keyed by its StmtNode::Id (hot leaf loops are timed on a 1-in-64 call
  /// sample), kernel-allocated tensors are wrapped in live-byte tracking,
  /// and a versioned `<symbol>_rt_profile` export is emitted next to
  /// `<symbol>_rt_stats` so the host JIT can pull the table back. Off by
  /// default; the profile-off emission is byte-identical to a build
  /// without this option.
  bool Profile = false;
};

/// Emits a complete C++ source file implementing \p F.
std::string generateCpp(const Func &F, const CodegenOptions &Opts);
std::string generateCpp(const Func &F);

/// The exported symbol name of the kernel generated for \p F.
std::string kernelSymbol(const Func &F);

} // namespace ft

#endif // FT_CODEGEN_CODEGEN_H
