//===- codegen/kernel_cache.h - Two-tier content-addressed cache -*- C++ -*-===//
///
/// \file
/// The kernel-compilation cache (DESIGN.md §11). The JIT's dominant cost is
/// shelling out to the host compiler; this subsystem makes recompiling a
/// program the process (or the machine) has already compiled nearly free:
///
///   - **Memory tier**: a process-wide LRU of loaded Kernel handles keyed by
///     the full cache key. A hit returns the shared handle with no syscall.
///     Bounded by FT_CACHE_MEM_ENTRIES (default 64; 0 disables the tier).
///   - **Disk tier**: a content-addressed store of compiled `.so` files (and
///     their generated `.cpp`, so Kernel::source() keeps working) under
///     FT_CACHE_DIR (default `~/.cache/freetensor`). A hit dlopens the
///     stored object, skipping codegen and the host compiler entirely.
///     Entries are published atomically (temp file + rename within the cache
///     directory), so concurrent processes can share one directory.
///
/// The cache key is derived from the whole-program fingerprint
/// (ir/compare.h: alpha-renamed, statement-ID- and label-invariant) combined
/// with everything else that shapes the emitted binary: the kernel symbol
/// (derived from the Func name), the ABI parameter-name list (the host-side
/// run() binding), CodegenOptions (a profiled kernel additionally keys on
/// the statement-ID preorder sequence, because profile slots are addressed
/// by statement ID inside the generated code — so profiled and plain
/// kernels can never share an entry, and a profiled entry only hits when
/// the IDs line up exactly), the OptFlags string, the host compiler
/// identity (`cc --version` plus the runtime header bytes, probed once),
/// and kSchemaVersion.
///
/// FT_CACHE=0 disables both tiers. Configuration is re-read from the
/// environment on every lookup so tests can flip it between cases.
///
//===----------------------------------------------------------------------===//

#ifndef FT_CODEGEN_KERNEL_CACHE_H
#define FT_CODEGEN_KERNEL_CACHE_H

#include <optional>
#include <string>

#include "codegen/jit.h"

namespace ft::kernel_cache {

/// Bump whenever the key derivation, the on-disk layout, or the meaning of
/// the emitted code changes (e.g. a codegen bugfix that alters semantics
/// without changing the IR): stale entries from older schemas then simply
/// never hit.
/// v2: kernels gained the `<symbol>_rt_set_threads` thread-budget export.
/// v3: compilerId() additionally hashes the -march=native target state, so
///     a `.so` compiled on one micro-architecture can never hit on another
///     node sharing the cache directory (the old key let an AVX-512 binary
///     migrate to a machine without those units — SIGILL at best).
inline constexpr uint64_t kSchemaVersion = 3;

/// Cache configuration as read from the environment.
struct Config {
  bool Enabled = true;    ///< FT_CACHE=0|false|off disables both tiers.
  std::string Dir;        ///< FT_CACHE_DIR override, else ~/.cache/freetensor.
  size_t MemEntries = 64; ///< FT_CACHE_MEM_ENTRIES; 0 = memory tier off.
};

/// Re-reads the environment (cheap; called once per Kernel::compile).
Config config();

/// Hash of `cc --version` output, the resolved `-march=native` target
/// flags, and the JIT runtime header bytes, probed once per process. A
/// compiler upgrade, a different host micro-architecture, or a
/// runtime-header change moves every key, invalidating the store without
/// touching it.
uint64_t compilerId();

/// A derived cache key.
struct Key {
  /// fingerprint(F): invariant to variable/statement-ID/label renaming.
  uint64_t Fingerprint = 0;
  /// Fingerprint combined with symbol, parameter names, options, flags,
  /// compiler identity and schema version — the content address.
  uint64_t Full = 0;

  /// 16-hex-digit file stem of Full.
  std::string hex() const;
};

/// Derives the cache key for compiling \p F with \p Opts and \p OptFlags.
Key cacheKey(const Func &F, const CodegenOptions &Opts,
             const std::string &OptFlags);

//===----------------------------------------------------------------------===//
// Memory tier
//===----------------------------------------------------------------------===//

/// Returns the cached Kernel for \p FullKey (moving it to the MRU slot), or
/// nullopt.
std::optional<Kernel> memLookup(uint64_t FullKey);

/// Inserts \p K under \p FullKey, evicting LRU entries beyond \p Cap.
/// First writer wins on a duplicate key (the entry is only refreshed to
/// MRU): when N threads race to compile the same program, later finishers
/// converge on the handle already shared out by memLookup instead of
/// installing N distinct loaded libraries.
void memInsert(uint64_t FullKey, const Kernel &K, size_t Cap);

/// Number of currently resident memory-tier entries.
size_t memSize();

/// Drops every memory-tier entry (tests, benchmarks — forces the disk tier).
void memReset();

//===----------------------------------------------------------------------===//
// Disk tier
//===----------------------------------------------------------------------===//

/// Path of the stored shared object for \p K, or "" when absent (or the
/// cache directory cannot be determined).
std::string diskLookup(const Config &Cfg, const Key &K);

/// Stored generated C++ for \p K, or "" when absent.
std::string storedSource(const Config &Cfg, const Key &K);

/// Atomically publishes the built artifacts: copies \p SoPath and writes
/// \p Source next to it, each via temp-file + rename inside the cache
/// directory. Best-effort — a full disk or unwritable directory degrades to
/// "no cache", never to an error.
void publish(const Config &Cfg, const Key &K, const std::string &SoPath,
             const std::string &Source);

/// Removes the on-disk entry for \p K (corrupt-entry fallback path).
void evictDisk(const Config &Cfg, const Key &K);

} // namespace ft::kernel_cache

#endif // FT_CODEGEN_KERNEL_CACHE_H
